// Smoke tests: the CLI builds, parses its flags, and regenerates each
// figure header end to end.
package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "gossiplb")
	out, err := exec.Command("go", "build", "-o", path, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building gossiplb: %v\n%s", err, out)
	}
	return path
}

func TestSmokeFigures(t *testing.T) {
	tool := buildTool(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-figure", "4"}, "Fig. 4"},
		{[]string{"-figure", "5", "-degrees", "2", "-periods", "3,4"}, "Fig. 5"},
		{[]string{"-figure", "6", "-degrees", "2"}, "Fig. 6"},
		{[]string{"-figure", "8", "-degrees", "2", "-periods", "3,0"}, "Fig. 8"},
	}
	for _, tc := range cases {
		out, err := exec.Command(tool, tc.args...).CombinedOutput()
		if err != nil {
			t.Fatalf("gossiplb %v failed: %v\n%s", tc.args, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("gossiplb %v output missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}

func TestSmokeBadFlags(t *testing.T) {
	tool := buildTool(t)
	if out, err := exec.Command(tool, "-figure", "9").CombinedOutput(); err == nil {
		t.Fatalf("unknown figure accepted:\n%s", out)
	}
	if out, err := exec.Command(tool, "-figure", "4", "-periods", "x").CombinedOutput(); err == nil {
		t.Fatalf("malformed period list accepted:\n%s", out)
	}
}
