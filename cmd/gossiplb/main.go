// Command gossiplb regenerates the lower-bound tables of the paper
// (Figs. 4, 5, 6 and 8) through the public systolic API.
//
// Usage:
//
//	gossiplb -figure 4
//	gossiplb -figure 5 -degrees 2,3,4 -periods 3,4,5,6,7,8
//	gossiplb -figure 6
//	gossiplb -figure 8 -periods 3,4,8,0     (0 = s→∞)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/systolic"
)

func main() {
	figure := flag.Int("figure", 4, "paper figure to regenerate: 4, 5, 6 or 8")
	degrees := flag.String("degrees", "2,3", "comma-separated degree parameters d")
	periods := flag.String("periods", "3,4,5,6,7,8,0", "comma-separated systolic periods (0 = non-systolic)")
	flag.Parse()

	ds, err := parseInts(*degrees)
	if err != nil {
		fatalf("bad -degrees: %v", err)
	}
	ps, err := parseInts(*periods)
	if err != nil {
		fatalf("bad -periods: %v", err)
	}

	switch *figure {
	case 4:
		fmt.Println("Fig. 4 — general lower bound, directed & half-duplex: t ≥ e(s)·log2(n) − O(log log n)")
		fmt.Print(systolic.FormatFig4(systolic.Fig4(ps)))
	case 5:
		sys := withoutInfinity(ps)
		fmt.Println("Fig. 5 — systolic lower bounds for specific networks, half-duplex: t ≥ e(s)·log2(n)·(1−o(1))")
		fmt.Print(systolic.FormatTopologyTable(systolic.Fig5(ds, sys), sys))
	case 6:
		fmt.Println("Fig. 6 — non-systolic lower bounds for specific networks, half-duplex (coefficients of log2(n))")
		inf := []int{systolic.NonSystolic}
		fmt.Print(systolic.FormatTopologyTable(systolic.Fig6(ds), inf))
	case 8:
		fmt.Println("Fig. 8 — full-duplex lower bounds: t ≥ e(s)·log2(n)·(1−o(1))")
		fmt.Print(systolic.FormatTopologyTable(systolic.Fig8(ds, ps), ps))
	default:
		fatalf("unknown figure %d (choose 4, 5, 6 or 8)", *figure)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func withoutInfinity(ps []int) []int {
	var out []int
	for _, p := range ps {
		if p != systolic.NonSystolic {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []int{3, 4, 5, 6, 7, 8}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gossiplb: "+format+"\n", args...)
	os.Exit(1)
}
