// Smoke tests: the CLI builds, parses its flags, and checks the local
// delay-matrix lemmas end to end in both modes.
package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "delaytool")
	out, err := exec.Command("go", "build", "-o", path, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building delaytool: %v\n%s", err, out)
	}
	return path
}

func TestSmokeLocalMatrices(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-l", "2,1", "-r", "1,2", "-lambda", "0.618", "-h", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("delaytool failed: %v\n%s", err, out)
	}
	for _, want := range []string{"Lemma 4.2 check: OK", "Lemma 4.3", "Lemma 2.2"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeFullDuplex(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-fullduplex", "-s", "4", "-t", "8", "-lambda", "0.5").CombinedOutput()
	if err != nil {
		t.Fatalf("delaytool -fullduplex failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Lemma 6.1") {
		t.Errorf("full-duplex output missing the Lemma 6.1 check:\n%s", out)
	}
}

func TestSmokeBadFlags(t *testing.T) {
	tool := buildTool(t)
	if out, err := exec.Command(tool, "-l", "nope").CombinedOutput(); err == nil {
		t.Fatalf("malformed block list accepted:\n%s", out)
	}
}
