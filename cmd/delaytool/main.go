// Command delaytool explores the local delay matrices of Section 4: given a
// local protocol (the (l_j, r_j) block sequences seen at one vertex), it
// prints Mx(λ), the reduced matrices Nx(λ) and Ox(λ) of Fig. 3, the
// semi-eigenvector of Lemma 4.2, and checks the Lemma 4.3 norm bound.
//
// Usage:
//
//	delaytool -l 2,1 -r 1,2 -lambda 0.618 -h 4
//	delaytool -fullduplex -s 4 -t 8 -lambda 0.5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/delay"
	"repro/internal/matrix"
	"repro/systolic"
)

func main() {
	lStr := flag.String("l", "2,1", "left activation block lengths l_0,…,l_{k-1}")
	rStr := flag.String("r", "1,2", "right activation block lengths r_0,…,r_{k-1}")
	lambda := flag.Float64("lambda", 0.618, "λ in (0,1)")
	h := flag.Int("h", 4, "number of activation blocks to materialize (h ≥ k)")
	full := flag.Bool("fullduplex", false, "build the full-duplex banded matrix of Fig. 7 instead")
	s := flag.Int("s", 4, "systolic period (full-duplex mode)")
	t := flag.Int("t", 8, "rounds (full-duplex mode)")
	extract := flag.String("extract", "", "extract local protocols from a schedule file (see gossipsim -save) and report the worst vertex")
	n := flag.Int("n", 0, "number of network vertices for -extract (0 = infer from arcs)")
	flag.Parse()

	if *extract != "" {
		if err := runExtract(*extract, *n, *lambda); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *full {
		m := delay.FullDuplexMx(*s, *t, *lambda)
		fmt.Printf("Full-duplex local matrix Mx(λ=%.4f), s=%d, t=%d (Fig. 7):\n%s", *lambda, *s, *t, m)
		norm, bound := delay.Lemma61Check(*s, *t, *lambda)
		fmt.Printf("‖Mx‖ = %.6f ≤ λ+…+λ^(s−1) = %.6f (Lemma 6.1)\n", norm, bound)
		return
	}

	L, err := parseInts(*lStr)
	if err != nil {
		fatalf("bad -l: %v", err)
	}
	R, err := parseInts(*rStr)
	if err != nil {
		fatalf("bad -r: %v", err)
	}
	lp, err := delay.NewLocalProtocol(L, R)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("Local protocol: L=%v R=%v (k=%d, s=%d)\n\n", lp.L, lp.R, lp.K(), lp.S())

	mx := lp.Mx(*lambda, *h)
	fmt.Printf("Mx(λ=%.4f), h=%d (Fig. 1 layout):\n%s\n", *lambda, *h, mx)
	fmt.Printf("Nx(λ) (Fig. 3):\n%s\n", lp.Nx(*lambda, *h))
	fmt.Printf("Ox(λ) (Fig. 3):\n%s\n", lp.Ox(*lambda, *h))

	e := lp.SemiEigenvector(*lambda, *h)
	fmt.Printf("Semi-eigenvector e (Lemma 4.2): %v\n", rounded(e))
	if err := lp.Lemma42Check(*lambda, *h, 1e-9); err != nil {
		fmt.Printf("Lemma 4.2 check: FAILED: %v\n", err)
	} else {
		fmt.Println("Lemma 4.2 check: OK")
	}

	norm := matrix.Norm2(mx)
	bound := lp.NormBound(*lambda)
	fmt.Printf("‖Mx(λ)‖ = %.6f ≤ λ·√p⌈s/2⌉·√p⌊s/2⌋ = %.6f (Lemma 4.3)\n", norm, bound)
	rho := matrix.SpectralRadius(lp.Ox(*lambda, *h).Mul(lp.Nx(*lambda, *h)))
	fmt.Printf("√ρ(Ox·Nx) = %.6f (must equal ‖Mx‖, Lemma 2.2)\n", math.Sqrt(rho))
}

// runExtract loads a systolic schedule, extracts the local protocol at every
// vertex (Section 4's per-vertex view), and reports each vertex's local norm
// against its Lemma 4.3 cap, flagging the extremal vertex.
func runExtract(path string, n int, lambda float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	p, err := systolic.LoadProtocol(f)
	if err != nil {
		return err
	}
	if n == 0 {
		for _, round := range p.Rounds {
			for _, a := range round {
				if a.From >= n {
					n = a.From + 1
				}
				if a.To >= n {
					n = a.To + 1
				}
			}
		}
	}
	fmt.Printf("Schedule %s: %v, period %d, %d vertices\n\n", path, p.Mode, p.Period, n)
	worst, worstV := 0.0, -1
	for v := 0; v < n; v++ {
		lp, err := delay.ExtractLocal(p, v)
		if err != nil {
			fmt.Printf("  vertex %3d: %v\n", v, err)
			continue
		}
		norm := matrix.Norm2(lp.Mx(lambda, lp.K()+4))
		fmt.Printf("  vertex %3d: L=%v R=%v  ‖Mx(λ)‖=%.4f ≤ cap %.4f\n",
			v, lp.L, lp.R, norm, lp.NormBound(lambda))
		if norm > worst {
			worst, worstV = norm, v
		}
	}
	if worstV >= 0 {
		fmt.Printf("\nextremal vertex: %d with ‖Mx(λ=%.4f)‖ = %.4f\n", worstV, lambda, worst)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func rounded(v matrix.Vector) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1e4+0.5)) / 1e4
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "delaytool: "+format+"\n", args...)
	os.Exit(1)
}
