// Command gossipvet runs the repository's custom static-analysis suite
// (internal/analysis): hotalloc, determinism, cachekey and errdiscipline.
// It enforces at vet time the invariants the test suite pins at run time —
// zero-allocation hot paths, byte-reproducible executions, collision-free
// cache keys and typed public errors.
//
// Two modes:
//
//	gossipvet [packages]              standalone: analyzes the whole module
//	                                  containing the working directory, with
//	                                  full cross-package transitive analysis
//	go vet -vettool=$(which gossipvet) ./...
//	                                  unit mode: gossipvet speaks the vet
//	                                  tool protocol (-V=full, -flags,
//	                                  package.cfg) and analyzes one
//	                                  compilation unit at a time; hotalloc
//	                                  then checks transitive callees within
//	                                  the unit only
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// go vet tool protocol handshakes.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// No analyzer flags: report an empty flag set to cmd/go.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitCheck(args[0])
		return
	}

	// Standalone whole-module mode. Package patterns are accepted for
	// familiarity (gossipvet ./...) but the analysis always loads the full
	// module: hotalloc's transitive walk and cachekey's writer pairing need
	// every package's syntax anyway.
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(os.Stderr, "gossipvet: unknown flag %s\n", a)
			os.Exit(2)
		}
	}
	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gossipvet: %v\n", err)
		os.Exit(2)
	}
	m, err := analysis.LoadTree(root, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gossipvet: load: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(m, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gossipvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Fprintln(os.Stderr, rel)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gossipvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModule locates the enclosing go.mod and returns its directory and
// module path.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s has no module directive", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
