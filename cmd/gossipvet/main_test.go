package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildErr  error
	toolPath  string
)

// buildTool compiles gossipvet once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gossipvet-test")
		if err != nil {
			buildErr = err
			return
		}
		toolPath = filepath.Join(dir, "gossipvet")
		out, err := exec.Command("go", "build", "-o", toolPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("go build: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building gossipvet: %v", buildErr)
	}
	return toolPath
}

// scratchModule writes a module named repro (so the package-path-scoped
// rules fire) containing one determinism violation in a strict package and
// one hot-path allocation at the root.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module repro\n\ngo 1.24\n")
	write("hot.go", `package hot

//gossip:hotpath
func Step(xs []int, n int) []int {
	return append(xs, n)
}
`)
	write("internal/scenario/clock.go", `package scenario

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	return dir
}

// TestVersionHandshake: the -V=full protocol line is what cmd/go caches
// vet results under; it must carry a content-derived build ID.
func TestVersionHandshake(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("gossipvet -V=full: %v", err)
	}
	got := strings.TrimSpace(string(out))
	if !strings.HasPrefix(got, "gossipvet version ") || !strings.Contains(got, "buildID=") {
		t.Fatalf("handshake line %q lacks the name/buildID shape cmd/go parses", got)
	}
}

// TestStandaloneFindsSeededViolations: whole-module mode walks the tree
// from the working directory's go.mod and exits 1 with findings.
func TestStandaloneFindsSeededViolations(t *testing.T) {
	tool := buildTool(t)
	dir := scratchModule(t)
	cmd := exec.Command(tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit = %v (output %s), want exit status 1", err, out)
	}
	text := string(out)
	for _, wantFragment := range []string{
		"hotalloc: append may grow its backing array",
		"determinism: time.Now is ambient entropy",
	} {
		if !strings.Contains(text, wantFragment) {
			t.Errorf("standalone output lacks %q:\n%s", wantFragment, text)
		}
	}
}

// TestVetToolProtocol: the go vet -vettool integration end to end — cmd/go
// drives gossipvet through -V=full, -flags and per-unit .cfg files, and
// the findings surface as vet diagnostics with a non-zero exit.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain per compilation unit")
	}
	tool := buildTool(t)
	dir := scratchModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on seeded violations:\n%s", out)
	}
	text := string(out)
	for _, wantFragment := range []string{
		"hotalloc: append may grow its backing array",
		"determinism: time.Now is ambient entropy",
	} {
		if !strings.Contains(text, wantFragment) {
			t.Errorf("vet output lacks %q:\n%s", wantFragment, text)
		}
	}
}
