package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON configuration file cmd/go hands a -vettool
// for each compilation unit (see golang.org/x/tools/go/analysis/unitchecker
// for the reference implementation of the protocol; the field set below is
// the stable subset gossipvet needs).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one compilation unit under the go vet tool protocol.
func unitCheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgFile, err)
	}

	// gossipvet exchanges no facts between units, but cmd/go requires the
	// facts file to exist for caching; write it empty up front.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// Canonicalize through the unit's import map (vendoring, test
		// variants), then open the export data the toolchain prepared.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	m, err := analysis.LoadFiles(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("%v", err)
	}
	findings, err := analysis.Run(m, analysis.All())
	if err != nil {
		fatalf("%v", err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// printVersion implements the -V=full handshake: cmd/go uses the output
// line as the tool's build ID for vet result caching, so it must change
// when the binary does — hash the executable.
func printVersion() {
	name := "gossipvet"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gossipvet: "+format+"\n", args...)
	os.Exit(1)
}
