package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/systolic/serve"
)

// loadtestMix is the request workload: a rotation of small, fast analyses
// and certifications, two Monte-Carlo scenario certifications, a
// single-source broadcast, and two broadcast scans (all sources and a
// subset), so a run exercises cold simulations, the certification pipeline
// (program + delay-plan caches), the scenario trial fan-out, the packed
// scan kernel and (heavily) the result cache/dedup path. Bodies are
// pre-marshaled JSON.
var loadtestMix = []struct {
	path string
	body string
}{
	{"/v1/analyze", `{"kind":"debruijn","params":{"degree":2,"diameter":4},"protocol":"periodic-half"}`},
	{"/v1/analyze", `{"kind":"debruijn","params":{"degree":2,"diameter":5},"protocol":"periodic-half"}`},
	{"/v1/certify", `{"kind":"debruijn","params":{"degree":2,"diameter":5},"protocol":"periodic-half"}`},
	{"/v1/analyze", `{"kind":"kautz","params":{"degree":2,"diameter":3},"protocol":"periodic-full"}`},
	{"/v1/analyze", `{"kind":"kautz","params":{"degree":2,"diameter":4},"protocol":"periodic-full"}`},
	{"/v1/certify", `{"kind":"kautz","params":{"degree":2,"diameter":4},"protocol":"periodic-full"}`},
	{"/v1/analyze", `{"kind":"hypercube","params":{"dimension":4},"protocol":"hypercube"}`},
	{"/v1/analyze", `{"kind":"hypercube","params":{"dimension":5},"protocol":"hypercube"}`},
	{"/v1/certify", `{"kind":"hypercube","params":{"dimension":5},"protocol":"hypercube"}`},
	{"/v1/analyze", `{"kind":"complete","params":{"nodes":16},"protocol":"doubling"}`},
	{"/v1/certify", `{"kind":"debruijn","params":{"degree":2,"diameter":4},"protocol":"periodic-half","scenario":{"loss":0.05,"seed":1,"trials":16}}`},
	{"/v1/certify", `{"kind":"hypercube","params":{"dimension":5},"protocol":"hypercube","scenario":{"loss":0.1,"seed":2,"crashes":[{"node":1,"from":0,"to":4}],"trials":16}}`},
	{"/v1/broadcast", `{"kind":"hypercube","params":{"dimension":5},"source":0}`},
	{"/v1/broadcast", `{"kind":"hypercube","params":{"dimension":7},"sources":{"all":true}}`},
	{"/v1/broadcast", `{"kind":"debruijn","params":{"degree":2,"diameter":6},"sources":{"list":[0,7,31,63]}}`},
	{"/v1/sweep", `{"jobs":[{"kind":"debruijn","params":{"degree":2,"diameter":4},"protocol":"periodic-half"},{"kind":"kautz","params":{"degree":2,"diameter":3},"protocol":"periodic-full"}]}`},
}

// runLoadtest hammers base (or an in-process server when base is empty)
// with the mixed workload for the given duration and reports client-side
// latency percentiles plus, in-process, the server's own cache statistics.
// It fails when more than 1% of requests error — the contract the CI smoke
// step relies on.
func runLoadtest(cfg serve.Config, base string, duration time.Duration, concurrency int) error {
	if concurrency < 1 {
		concurrency = 1
	}
	client := http.DefaultClient
	var srv *serve.Server
	if base == "" {
		var err error
		srv, err = serve.New(cfg)
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		base = ts.URL
		client = ts.Client()
	}

	type worker struct {
		lat    []time.Duration
		errors int
	}
	workers := make([]worker, concurrency)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := &workers[w]
			for i := w; time.Now().Before(deadline); i++ {
				req := loadtestMix[i%len(loadtestMix)]
				start := time.Now()
				resp, err := client.Post(base+req.path, "application/json", bytes.NewReader([]byte(req.body)))
				if err != nil {
					me.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					me.errors++
					continue
				}
				me.lat = append(me.lat, time.Since(start))
			}
		}(w)
	}
	wg.Wait()

	var all []time.Duration
	errors := 0
	for _, w := range workers {
		all = append(all, w.lat...)
		errors += w.errors
	}
	total := len(all) + errors
	if total == 0 {
		return fmt.Errorf("loadtest: no requests completed in %v", duration)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return all[idx]
	}
	fmt.Fprintf(os.Stdout, "gossipd loadtest: %d requests in %v (%d ok, %d errors, %.0f req/s, %d clients)\n",
		total, duration, len(all), errors, float64(total)/duration.Seconds(), concurrency)
	fmt.Fprintf(os.Stdout, "latency: p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	if srv != nil {
		snap := srv.Metrics().Snapshot()
		fmt.Fprintf(os.Stdout, "server: cache hit ratio %.3f, %d simulations, %d dedup shares, %d rounds simulated, %d rejected\n",
			snap.HitRatio(), snap.Simulations, snap.DedupShared, snap.Rounds, snap.Rejected)
		fmt.Fprintf(os.Stdout, "programs: %d compiled, %d reused from the program cache\n",
			snap.ProgramMisses, snap.ProgramHits)
		fmt.Fprintf(os.Stdout, "delay plans: %d compiled, %d reused from the plan cache\n",
			snap.PlanMisses, snap.PlanHits)
		fmt.Fprintf(os.Stdout, "scenarios: %d Monte-Carlo trials (%d truncated), %.0f trials/s\n",
			snap.ScenarioTrials, snap.ScenarioTruncated,
			float64(snap.ScenarioTrials)/duration.Seconds())
		fmt.Fprintf(os.Stdout, "broadcast scans: %d sources measured, %.0f sources/s\n",
			snap.BroadcastSources, float64(snap.BroadcastSources)/duration.Seconds())
	}
	if float64(errors) > 0.01*float64(total) {
		return fmt.Errorf("loadtest: %d/%d requests failed", errors, total)
	}
	return nil
}
