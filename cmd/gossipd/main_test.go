// Smoke test: the loadtest mode drives an in-process server end to end —
// the same path the CI bench-smoke step exercises via `go run`.
package main

import (
	"testing"
	"time"

	"repro/systolic/serve"
)

func TestLoadtestInProcess(t *testing.T) {
	if err := runLoadtest(serve.Config{}, "", 200*time.Millisecond, 4); err != nil {
		t.Fatalf("loadtest against the in-process server failed: %v", err)
	}
}
