// Command gossipd is the long-running gossip-analysis service: an HTTP JSON
// front end (see repro/systolic/serve for the wire schema) that multiplexes
// many concurrent analyze/broadcast/sweep requests over the systolic engine,
// with a sharded result cache, request deduplication, a bounded worker pool
// and Prometheus-style metrics.
//
//	gossipd -addr :8080 -workers 8 -queue 64 -cache 4096 -spool /var/spool/gossipd
//
// The server drains gracefully on SIGINT/SIGTERM: in-flight sessions finish
// (up to -drain-timeout), new computations get 503.
//
// Loadtest mode hammers a server with a mixed request workload and reports
// latency percentiles — the built-in smoke and regression driver:
//
//	gossipd -loadtest -duration 1s -concurrency 16          # in-process server
//	gossipd -loadtest -url http://localhost:8080 -duration 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"repro/systolic/serve"
)

// version is stamped at build time with
// -ldflags "-X main.version=v1.2.3"; unset, the module build info (or
// "dev") stands in. /healthz reports it.
var version string

func buildVersion() string {
	if version != "" {
		return version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued computations before 429 (0 = default 64)")
	cache := flag.Int("cache", 0, "result cache entries (0 = default 1024)")
	programCache := flag.Int("program-cache", 0, "compiled-program cache entries (0 = default 256)")
	planCache := flag.Int("plan-cache", 0, "compiled delay-plan cache entries (0 = default 256)")
	spool := flag.String("spool", "", "directory persisting async job results and checkpoints")
	maxScanNodes := flag.Int("max-scan-nodes", 0, "largest network (vertices) a broadcast scan may target (0 = default 2^24)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown budget")
	loadtest := flag.Bool("loadtest", false, "run the load generator instead of serving")
	duration := flag.Duration("duration", time.Second, "loadtest duration")
	concurrency := flag.Int("concurrency", 16, "loadtest concurrent clients")
	target := flag.String("url", "", "loadtest target base URL (empty = in-process server)")
	flag.Parse()

	cfg := serve.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheSize:          *cache,
		ProgramCacheSize:   *programCache,
		DelayPlanCacheSize: *planCache,
		SpoolDir:           *spool,
		MaxScanNodes:       *maxScanNodes,
		Version:            buildVersion(),
	}
	if *loadtest {
		if err := runLoadtest(cfg, *target, *duration, *concurrency); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if err := run(cfg, *addr, *drainTimeout, *pprofOn); err != nil {
		fatalf("%v", err)
	}
}

// withPprof mounts the net/http/pprof handlers next to the API handler.
// Profiling stays opt-in (-pprof): the endpoints expose heap contents and
// can stall the process under load, so a production deployment must choose
// them deliberately.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(cfg serve.Config, addr string, drainTimeout time.Duration, pprofOn bool) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if pprofOn {
		handler = withPprof(handler)
	}
	hs := &http.Server{Addr: addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gossipd: serving on %s\n", addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "gossipd: draining (up to %v)\n", drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	serr := hs.Shutdown(shutdownCtx)
	derr := srv.Drain(shutdownCtx)
	srv.Close()
	if serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	return derr
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gossipd: "+format+"\n", args...)
	os.Exit(1)
}
