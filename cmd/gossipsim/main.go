// Command gossipsim builds a topology and a gossip protocol, simulates the
// protocol to completion, and reports the measured time against the paper's
// lower bound (the upper-vs-lower comparison of the evaluation).
//
// Usage:
//
//	gossipsim -topology debruijn -a 2 -b 5 -protocol periodic-half
//	gossipsim -topology hypercube -a 6 -protocol hypercube
//	gossipsim -topology wbf -a 2 -b 4 -protocol periodic-full
//	gossipsim -topology path -a 32 -protocol zigzag
//	gossipsim -topology kautz -a 2 -b 5 -protocol greedy-half
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/protocols"
)

func main() {
	topo := flag.String("topology", "debruijn", "network kind (see error message for list)")
	a := flag.Int("a", 2, "first topology parameter (n, D, d or rows depending on kind)")
	b := flag.Int("b", 4, "second topology parameter (D, depth or cols; ignored when unused)")
	proto := flag.String("protocol", "periodic-half", "protocol: periodic-half, periodic-full, periodic-interleaved, round-robin, greedy-half, greedy-directed, greedy-full, hypercube, doubling, zigzag, cycle2")
	budget := flag.Int("budget", 100000, "maximum simulated rounds")
	load := flag.String("load", "", "load the protocol from a schedule file instead of -protocol")
	save := flag.String("save", "", "write the constructed protocol to a schedule file")
	trace := flag.Bool("trace", false, "print the per-round dissemination curve")
	flag.Parse()

	net, err := core.NewNetwork(*topo, *a, *b)
	if err != nil {
		fatalf("%v", err)
	}

	var p *gossip.Protocol
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatalf("%v", err)
		}
		p, err = gossip.Decode(f)
		f.Close()
		if err != nil {
			fatalf("loading %s: %v", *load, err)
		}
		*proto = "loaded:" + *load
	} else {
		p, err = buildProtocol(*proto, net, *budget)
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatalf("%v", err)
		}
		if err := p.Encode(f); err != nil {
			fatalf("saving: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("saving: %v", err)
		}
	}
	if *trace {
		tr, err := gossip.TraceGossip(net.G, p, *budget)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("trace:      %s\n", tr)
	}

	rep, err := core.Analyze(net, p, *budget)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("network:    %s (n=%d, arcs=%d)\n", net.Name, net.G.N(), net.G.M())
	fmt.Printf("protocol:   %s (%v mode, period %d)\n", *proto, p.Mode, p.Period)
	fmt.Printf("measured:   %d rounds\n", rep.Measured)
	fmt.Printf("lowerbound: %v\n", rep.LowerBound)
	fmt.Printf("delay DG:   %d activations, %d delay arcs, ‖M(λ₀)‖ = %.4f\n",
		rep.DelayVerts, rep.DelayArcs, rep.NormAtRoot)
	fmt.Printf("Theorem 4.1 respected: %v\n", rep.TheoremRespected)
}

func buildProtocol(kind string, net *core.Network, budget int) (*gossip.Protocol, error) {
	switch kind {
	case "periodic-half":
		return protocols.PeriodicHalfDuplex(net.G), nil
	case "periodic-full":
		return protocols.PeriodicFullDuplex(net.G), nil
	case "periodic-interleaved":
		return protocols.PeriodicInterleavedHalfDuplex(net.G), nil
	case "round-robin":
		return protocols.RoundRobinDirected(net.G), nil
	case "greedy-half":
		return protocols.GreedyGossip(net.G, gossip.HalfDuplex, budget)
	case "greedy-directed":
		return protocols.GreedyGossip(net.G, gossip.Directed, budget)
	case "greedy-full":
		return protocols.GreedyGossipFullDuplex(net.G, budget)
	case "hypercube":
		D := 0
		for n := net.G.N(); n > 1; n >>= 1 {
			D++
		}
		return protocols.HypercubeExchange(D), nil
	case "doubling":
		return protocols.CompleteDoubling(net.G.N()), nil
	case "zigzag":
		return protocols.PathZigZag(net.G.N()), nil
	case "cycle2":
		return protocols.CycleTwoPhase(net.G.N()), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", kind)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gossipsim: "+format+"\n", args...)
	os.Exit(1)
}
