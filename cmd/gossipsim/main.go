// Command gossipsim builds a topology and a gossip protocol through the
// public systolic API, drives a resumable simulation session to completion,
// and reports the measured time against the paper's lower bound (the
// upper-vs-lower comparison of the evaluation).
//
// Topology parameters are named; only the ones the chosen kind requires
// are used (systolic.Lookup reports which):
//
//	gossipsim -topology debruijn -degree 2 -diameter 5 -protocol periodic-half
//	gossipsim -topology hypercube -dimension 6 -protocol hypercube
//	gossipsim -topology wbf -degree 2 -diameter 4 -protocol periodic-full
//	gossipsim -topology path -nodes 32 -protocol zigzag
//	gossipsim -topology grid -rows 4 -cols 5 -protocol greedy-half
//
// Long runs checkpoint and resume through the session API: -checkpoint FILE
// writes a JSON checkpoint when the run stops (completion or budget), and
// -resume FILE restores one before running — rebuild the same topology and
// protocol flags, raise -budget, and the simulation continues where it
// left off. -progress streams one JSON object per round to stdout
// ({"round":…,"knowledge":…,"target":…}), the machine-readable twin of
// -trace; the human-readable report moves to stderr so stdout stays pure
// JSON lines.
//
// Scenario mode runs the protocol under a deterministic fault model instead
// of the fault-free analysis: -loss P injects uniform per-arc message loss,
// -crash "node@from-to,…" takes nodes down for half-open round windows,
// -delete "from>to,…" removes arcs for the whole run, -seed roots the PRNG
// (same seed, same distribution), and -trials sets the Monte-Carlo trial
// count. Any of them switches the run to systolic.CertifyScenario and
// prints the statistical certificate:
//
//	gossipsim -topology hypercube -dimension 10 -protocol periodic-full \
//	  -loss 0.05 -seed 1 -trials 256
//
// Scale mode (-implicit) streams everything through the generator kernel —
// the arcs are computed on the fly, never materialized. It runs two demos
// back to back: a 64-source eccentricity scan (round profile, wall time,
// heap footprint), then a simulation of -protocol compiled to a generator
// program (rounds, resident set size, arcs streamed per round). Past the
// materialization threshold the registry builds such topologies implicitly
// anyway, so this demonstrates instances far beyond what adjacency lists
// could hold:
//
//	gossipsim -topology hypercube -dimension 24 -implicit -protocol hypercube
//
// -cpuprofile FILE and -memprofile FILE write pprof profiles for any mode.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/systolic"
)

func main() {
	topo := flag.String("topology", "debruijn", "network kind (see error message for list)")
	nodes := flag.Int("nodes", 16, "vertex count n (path, cycle, complete)")
	degree := flag.Int("degree", 2, "degree parameter d (paper families, tree)")
	diameter := flag.Int("diameter", 4, "diameter parameter D (paper families)")
	dimension := flag.Int("dimension", 4, "dimension D (hypercube, shuffle-exchange, ccc)")
	rows := flag.Int("rows", 4, "grid/torus rows")
	cols := flag.Int("cols", 4, "grid/torus cols")
	depth := flag.Int("depth", 3, "tree depth")
	proto := flag.String("protocol", "periodic-half", "protocol: "+strings.Join(systolic.ProtocolKinds(), ", "))
	budget := flag.Int("budget", 100000, "maximum simulated rounds")
	load := flag.String("load", "", "load the protocol from a schedule file instead of -protocol")
	save := flag.String("save", "", "write the constructed protocol to a schedule file")
	trace := flag.Bool("trace", false, "print the per-round dissemination curve")
	progress := flag.Bool("progress", false, "stream per-round progress as JSON lines on stdout")
	checkpoint := flag.String("checkpoint", "", "write a session checkpoint to this file when the run stops")
	resume := flag.String("resume", "", "restore the session from this checkpoint file before running")
	loss := flag.Float64("loss", 0, "scenario: per-arc per-round message loss probability in [0,1]")
	crash := flag.String("crash", "", "scenario: crash windows, comma-separated node@from-to (rounds, half-open)")
	deleteArcs := flag.String("delete", "", "scenario: deleted arcs, comma-separated from>to")
	seed := flag.Uint64("seed", 0, "scenario: PRNG seed (part of the distribution's identity)")
	trials := flag.Int("trials", 0, "scenario: Monte-Carlo trial count (any scenario flag implies 64)")
	implicitDemo := flag.Bool("implicit", false, "scale demo: stream a 64-source eccentricity scan plus a generator-program protocol simulation, arcs computed on the fly")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file when the run ends")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	// Map the named flags onto the parameters the chosen kind requires.
	flagFor := map[string]*int{
		systolic.ParamNodes:     nodes,
		systolic.ParamDegree:    degree,
		systolic.ParamDiameter:  diameter,
		systolic.ParamDimension: dimension,
		systolic.ParamRows:      rows,
		systolic.ParamCols:      cols,
		systolic.ParamDepth:     depth,
	}
	paramFor := map[string]func(int) systolic.Param{
		systolic.ParamNodes:     systolic.Nodes,
		systolic.ParamDegree:    systolic.Degree,
		systolic.ParamDiameter:  systolic.Diameter,
		systolic.ParamDimension: systolic.Dimension,
		systolic.ParamRows:      systolic.Rows,
		systolic.ParamCols:      systolic.Cols,
		systolic.ParamDepth:     systolic.Depth,
	}
	t, ok := systolic.Lookup(*topo)
	if !ok {
		fatalf("unknown topology %q (accepted: %s)", *topo, strings.Join(systolic.Kinds(), ", "))
	}
	var params []systolic.Param
	for _, name := range t.ParamNames() {
		ctor, fv := paramFor[name], flagFor[name]
		if ctor == nil || fv == nil {
			fatalf("topology %q requires parameter %q, which this CLI has no flag for", *topo, name)
		}
		params = append(params, ctor(*fv))
	}
	net, err := systolic.New(*topo, params...)
	if err != nil {
		fatalf("%v", err)
	}

	if *implicitDemo {
		runImplicitDemo(net, *proto, *budget)
		return
	}

	var p *systolic.Protocol
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatalf("%v", err)
		}
		p, err = systolic.LoadProtocol(f)
		f.Close()
		if err != nil {
			fatalf("loading %s: %v", *load, err)
		}
		*proto = "loaded:" + *load
	} else {
		p, err = systolic.NewProtocol(*proto, net, *budget)
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatalf("%v", err)
		}
		if err := systolic.SaveProtocol(f, p); err != nil {
			fatalf("saving: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("saving: %v", err)
		}
	}

	if *loss != 0 || *crash != "" || *deleteArcs != "" || *seed != 0 || *trials != 0 {
		if *resume != "" || *checkpoint != "" || *progress {
			fatalf("scenario mode (-loss/-crash/-delete/-seed/-trials) is a batch Monte-Carlo run; it does not combine with -resume, -checkpoint or -progress")
		}
		runScenario(net, p, *proto, *loss, *crash, *deleteArcs, *seed, *trials, *budget)
		return
	}

	opts := []systolic.Option{systolic.WithRoundBudget(*budget)}
	var curve []int
	var observers []systolic.Observer
	if *trace {
		observers = append(observers, systolic.ObserverFunc(func(_, knowledge, _ int) {
			curve = append(curve, knowledge)
		}))
	}
	if *progress {
		enc := json.NewEncoder(os.Stdout)
		observers = append(observers, systolic.ObserverFunc(func(round, knowledge, target int) {
			enc.Encode(struct {
				Round     int `json:"round"`
				Knowledge int `json:"knowledge"`
				Target    int `json:"target"`
			}{round, knowledge, target})
		}))
	}
	if len(observers) > 0 {
		obs := observers
		opts = append(opts, systolic.WithTrace(systolic.ObserverFunc(func(round, knowledge, target int) {
			for _, o := range obs {
				o.Round(round, knowledge, target)
			}
		})))
	}

	// With -progress, stdout carries only the JSON lines; everything meant
	// for humans goes to stderr.
	human := os.Stdout
	if *progress {
		human = os.Stderr
	}

	sess, err := systolic.NewEngine(net, p, opts...)
	if err != nil {
		fatalf("%v", err)
	}
	defer sess.Close()
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatalf("%v", err)
		}
		ck, err := systolic.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			fatalf("resuming %s: %v", *resume, err)
		}
		if err := sess.Restore(ck); err != nil {
			fatalf("resuming %s: %v", *resume, err)
		}
		fmt.Fprintf(human, "resumed:    %s at round %d (knowledge %d/%d)\n",
			*resume, sess.Rounds(), sess.Knowledge(), sess.Target())
	}

	rep, err := sess.Analyze(context.Background())
	if err != nil {
		if errors.Is(err, systolic.ErrIncomplete) && *checkpoint != "" {
			writeCheckpoint(sess, *checkpoint)
			fmt.Fprintf(human, "incomplete: stopped at round %d with knowledge %d/%d; resume with -resume %s -budget N\n",
				sess.Rounds(), sess.Knowledge(), sess.Target(), *checkpoint)
			return
		}
		fatalf("%v", err)
	}
	if *checkpoint != "" {
		writeCheckpoint(sess, *checkpoint)
	}
	if *trace {
		fmt.Fprintf(human, "trace:      knowledge per round %v (target %d)\n", curve, sess.Target())
	}
	fmt.Fprintf(human, "network:    %s (n=%d, arcs=%d)\n", net.Name, net.G.N(), net.G.M())
	fmt.Fprintf(human, "protocol:   %s (%v mode, period %d)\n", *proto, p.Mode, p.Period)
	fmt.Fprintf(human, "measured:   %d rounds\n", rep.Measured)
	fmt.Fprintf(human, "lowerbound: %v\n", rep.LowerBound)
	fmt.Fprintf(human, "delay DG:   %d activations, %d delay arcs, ‖M(λ₀)‖ = %.4f\n",
		rep.DelayVerts, rep.DelayArcs, rep.NormAtRoot)
	fmt.Fprintf(human, "Theorem 4.1 respected: %v\n", rep.TheoremRespected)
}

// runImplicitDemo streams a 64-source eccentricity scan through the
// generator kernel and reports the round profile, wall time and heap
// footprint — the scale-tier demonstration. It needs a generator-eligible
// topology; past the materialization threshold the network is implicit and
// would stream anyway, below it WithImplicitScan forces the streaming
// kernel so the demo is honest at any size.
func runImplicitDemo(net *systolic.Network, proto string, budget int) {
	if net.Gen == nil {
		fatalf("-implicit needs a generator-eligible topology (hypercube, cycle, torus, ccc, butterfly, debruijn[-digraph], kautz[-digraph])")
	}
	n := net.N()
	count := 64
	if n < count {
		count = n
	}
	stride := n / count
	sources := make([]int, count)
	for i := range sources {
		sources[i] = i * stride
	}
	start := time.Now()
	rep, err := systolic.AnalyzeBroadcastAll(context.Background(), net,
		systolic.WithSources(sources), systolic.WithImplicitScan(), systolic.WithRoundBudget(budget))
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("network:    %s (n=%d, implicit=%v, streaming generator kernel)\n", net.Name, n, net.Implicit())
	fmt.Printf("scan:       %d sources in %v\n", len(rep.Rounds), elapsed.Round(time.Millisecond))
	fmt.Printf("rounds:     worst=%d (source %d) best=%d (source %d) mean=%.2f\n",
		rep.Worst, rep.WorstSource, rep.Best, rep.BestSource, rep.MeanRounds)
	fmt.Printf("memory:     heap in use %d MiB, total from OS %d MiB\n", ms.HeapInuse>>20, ms.Sys>>20)
	runImplicitProtocol(net, proto, budget)
}

// runImplicitProtocol is the second half of the scale demo: it compiles
// -protocol to a generator program — every round's exchange arcs computed
// from the vertex id, never stored — simulates the broadcast to completion
// and prints rounds, resident set size and arcs streamed per round. Below
// the materialization threshold the network is re-wrapped as implicit so
// the demo exercises the streaming path at any size.
func runImplicitProtocol(net *systolic.Network, proto string, budget int) {
	demo := net
	if !net.Implicit() {
		imp := systolic.PlainImplicit(net.Name, net.Gen, net.DegreeParam)
		imp.Sched = net.Sched
		demo = imp
	}
	p, err := systolic.NewProtocol(proto, demo, budget)
	if err != nil {
		fmt.Printf("protocol:   %s does not compile to a generator program (eligible: %s)\n",
			proto, strings.Join(systolic.GenProtocolKinds(), ", "))
		return
	}
	pr, err := systolic.CompileProtocol(demo, p)
	if err != nil {
		fatalf("%v", err)
	}
	gp := pr.GenProgram()
	sess, err := systolic.NewEngineFromProgram(pr, systolic.WithRoundBudget(budget))
	if err != nil {
		fatalf("%v", err)
	}
	defer sess.Close()
	start := time.Now()
	rep, err := sess.AnalyzeBroadcast(context.Background())
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start)
	var arcs, periodArcs int64
	for r := 0; r < rep.Measured; r++ {
		arcs += int64(gp.RoundArcs(r))
	}
	for r := 0; r < gp.Period(); r++ {
		periodArcs += int64(gp.RoundArcs(r))
	}
	perRound := float64(arcs) / float64(max(rep.Measured, 1))
	fmt.Printf("protocol:   %s (%v mode, period %d) as generator program %s\n",
		proto, p.Mode, p.Period, gp.Fingerprint())
	fmt.Printf("simulated:  broadcast from source %d in %d rounds ≥ certified bound %d (%v)\n",
		rep.Source, rep.Measured, rep.CBound, elapsed.Round(time.Millisecond))
	fmt.Printf("streamed:   %d arcs total, %.0f arcs/round, 0 stored (a CSR program would hold ~%d MiB)\n",
		arcs, perRound, periodArcs*16>>20)
	fmt.Printf("memory:     resident set %d MiB\n", rssBytes()>>20)
}

// rssBytes reports the process's resident set size from /proc/self/statm,
// falling back to the Go runtime's OS-reserved total where procfs is
// unavailable.
func rssBytes() int64 {
	if b, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(b))
		if len(fields) >= 2 {
			if pages, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				return pages * int64(os.Getpagesize())
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// writeMemProfile snapshots the heap into path (after a GC, so the profile
// reflects live objects rather than garbage).
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("memprofile: %v", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fatalf("memprofile: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("memprofile: %v", err)
	}
}

// runScenario drives the Monte-Carlo scenario certification and prints the
// statistical certificate.
func runScenario(net *systolic.Network, p *systolic.Protocol, proto string, loss float64, crash, deleteArcs string, seed uint64, trials, budget int) {
	sc := &systolic.Scenario{Loss: loss, Seed: seed}
	var err error
	if sc.Crashes, err = parseCrashSpec(crash); err != nil {
		fatalf("%v", err)
	}
	if sc.DeleteArcs, err = parseArcSpec(deleteArcs); err != nil {
		fatalf("%v", err)
	}
	if trials == 0 {
		trials = 64
	}
	cert, err := systolic.CertifyScenario(context.Background(), net, p, sc, trials,
		systolic.WithRoundBudget(budget))
	if err != nil {
		fatalf("%v", err)
	}
	st := cert.Trials
	fmt.Printf("network:    %s (n=%d, arcs=%d)\n", net.Name, net.G.N(), net.G.M())
	fmt.Printf("protocol:   %s (%v mode, period %d)\n", proto, p.Mode, p.Period)
	fmt.Printf("scenario:   %s\n", cert.Scenario.Canonical())
	fmt.Printf("trials:     %d (%d completed, %d truncated at budget %d)\n",
		st.Trials, st.Completed, st.Truncated, cert.Budget)
	fmt.Printf("rounds:     p50/p90/p99 = %d/%d/%d, mean %.2f, min %d, max %d\n",
		st.P50, st.P90, st.P99, st.MeanRounds, st.MinRounds, st.MaxRounds)
	fmt.Printf("lowerbound: %v respected by median: %v\n", cert.LowerBound, cert.BoundRespected)
	if cert.Deterministic != nil {
		fmt.Printf("drift:      %+.2f rounds over the fault-free run (%d)\n",
			cert.MeanDriftRounds, cert.Deterministic.Measured)
	}
	fmt.Printf("replay:     -seed %d reproduces distribution %s\n", cert.Scenario.Seed, st.DistributionFP)
}

// parseCrashSpec parses "node@from-to,node@from-to,…" (empty spec → nil).
func parseCrashSpec(spec string) ([]systolic.CrashWindow, error) {
	var out []systolic.CrashWindow
	for _, part := range splitSpec(spec) {
		nodeStr, window, ok := strings.Cut(part, "@")
		fromStr, toStr, ok2 := strings.Cut(window, "-")
		if !ok || !ok2 {
			return nil, fmt.Errorf("crash window %q: want node@from-to", part)
		}
		node, err1 := strconv.Atoi(nodeStr)
		from, err2 := strconv.Atoi(fromStr)
		to, err3 := strconv.Atoi(toStr)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("crash window %q: want node@from-to", part)
		}
		out = append(out, systolic.CrashWindow{Node: node, From: from, To: to})
	}
	return out, nil
}

// parseArcSpec parses "from>to,from>to,…" (empty spec → nil).
func parseArcSpec(spec string) ([][2]int, error) {
	var out [][2]int
	for _, part := range splitSpec(spec) {
		fromStr, toStr, ok := strings.Cut(part, ">")
		if !ok {
			return nil, fmt.Errorf("deleted arc %q: want from>to", part)
		}
		from, err1 := strconv.Atoi(fromStr)
		to, err2 := strconv.Atoi(toStr)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("deleted arc %q: want from>to", part)
		}
		out = append(out, [2]int{from, to})
	}
	return out, nil
}

func splitSpec(spec string) []string {
	var parts []string
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part != "" {
			parts = append(parts, part)
		}
	}
	return parts
}

func writeCheckpoint(sess *systolic.Session, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("checkpoint: %v", err)
	}
	if err := systolic.WriteCheckpoint(f, sess.Snapshot()); err != nil {
		f.Close()
		fatalf("checkpoint: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("checkpoint: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gossipsim: "+format+"\n", args...)
	os.Exit(1)
}
