// Command gossipsim builds a topology and a gossip protocol through the
// public systolic API, simulates the protocol to completion, and reports
// the measured time against the paper's lower bound (the upper-vs-lower
// comparison of the evaluation).
//
// Topology parameters are named; only the ones the chosen kind requires
// are used (systolic.Lookup reports which):
//
//	gossipsim -topology debruijn -degree 2 -diameter 5 -protocol periodic-half
//	gossipsim -topology hypercube -dimension 6 -protocol hypercube
//	gossipsim -topology wbf -degree 2 -diameter 4 -protocol periodic-full
//	gossipsim -topology path -nodes 32 -protocol zigzag
//	gossipsim -topology grid -rows 4 -cols 5 -protocol greedy-half
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/systolic"
)

func main() {
	topo := flag.String("topology", "debruijn", "network kind (see error message for list)")
	nodes := flag.Int("nodes", 16, "vertex count n (path, cycle, complete)")
	degree := flag.Int("degree", 2, "degree parameter d (paper families, tree)")
	diameter := flag.Int("diameter", 4, "diameter parameter D (paper families)")
	dimension := flag.Int("dimension", 4, "dimension D (hypercube, shuffle-exchange, ccc)")
	rows := flag.Int("rows", 4, "grid/torus rows")
	cols := flag.Int("cols", 4, "grid/torus cols")
	depth := flag.Int("depth", 3, "tree depth")
	proto := flag.String("protocol", "periodic-half", "protocol: "+strings.Join(systolic.ProtocolKinds(), ", "))
	budget := flag.Int("budget", 100000, "maximum simulated rounds")
	load := flag.String("load", "", "load the protocol from a schedule file instead of -protocol")
	save := flag.String("save", "", "write the constructed protocol to a schedule file")
	trace := flag.Bool("trace", false, "print the per-round dissemination curve")
	flag.Parse()

	// Map the named flags onto the parameters the chosen kind requires.
	flagFor := map[string]*int{
		systolic.ParamNodes:     nodes,
		systolic.ParamDegree:    degree,
		systolic.ParamDiameter:  diameter,
		systolic.ParamDimension: dimension,
		systolic.ParamRows:      rows,
		systolic.ParamCols:      cols,
		systolic.ParamDepth:     depth,
	}
	paramFor := map[string]func(int) systolic.Param{
		systolic.ParamNodes:     systolic.Nodes,
		systolic.ParamDegree:    systolic.Degree,
		systolic.ParamDiameter:  systolic.Diameter,
		systolic.ParamDimension: systolic.Dimension,
		systolic.ParamRows:      systolic.Rows,
		systolic.ParamCols:      systolic.Cols,
		systolic.ParamDepth:     systolic.Depth,
	}
	t, ok := systolic.Lookup(*topo)
	if !ok {
		fatalf("unknown topology %q (accepted: %s)", *topo, strings.Join(systolic.Kinds(), ", "))
	}
	var params []systolic.Param
	for _, name := range t.ParamNames() {
		ctor, fv := paramFor[name], flagFor[name]
		if ctor == nil || fv == nil {
			fatalf("topology %q requires parameter %q, which this CLI has no flag for", *topo, name)
		}
		params = append(params, ctor(*fv))
	}
	net, err := systolic.New(*topo, params...)
	if err != nil {
		fatalf("%v", err)
	}

	var p *systolic.Protocol
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatalf("%v", err)
		}
		p, err = systolic.LoadProtocol(f)
		f.Close()
		if err != nil {
			fatalf("loading %s: %v", *load, err)
		}
		*proto = "loaded:" + *load
	} else {
		p, err = systolic.NewProtocol(*proto, net, *budget)
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatalf("%v", err)
		}
		if err := systolic.SaveProtocol(f, p); err != nil {
			fatalf("saving: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("saving: %v", err)
		}
	}

	opts := []systolic.Option{systolic.WithRoundBudget(*budget)}
	var curve []int
	if *trace {
		opts = append(opts, systolic.WithTrace(systolic.ObserverFunc(func(_, knowledge, _ int) {
			curve = append(curve, knowledge)
		})))
	}

	rep, err := systolic.Analyze(context.Background(), net, p, opts...)
	if err != nil {
		fatalf("%v", err)
	}
	if *trace {
		fmt.Printf("trace:      knowledge per round %v (target %d)\n", curve, net.G.N()*net.G.N())
	}
	fmt.Printf("network:    %s (n=%d, arcs=%d)\n", net.Name, net.G.N(), net.G.M())
	fmt.Printf("protocol:   %s (%v mode, period %d)\n", *proto, p.Mode, p.Period)
	fmt.Printf("measured:   %d rounds\n", rep.Measured)
	fmt.Printf("lowerbound: %v\n", rep.LowerBound)
	fmt.Printf("delay DG:   %d activations, %d delay arcs, ‖M(λ₀)‖ = %.4f\n",
		rep.DelayVerts, rep.DelayArcs, rep.NormAtRoot)
	fmt.Printf("Theorem 4.1 respected: %v\n", rep.TheoremRespected)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gossipsim: "+format+"\n", args...)
	os.Exit(1)
}
