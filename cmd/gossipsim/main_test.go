// Smoke tests: the CLI builds, parses its flags, and drives one tiny
// simulation end to end (including the checkpoint/resume round trip).
package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "gossipsim")
	out, err := exec.Command("go", "build", "-o", path, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building gossipsim: %v\n%s", err, out)
	}
	return path
}

func TestSmokeAnalyze(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool,
		"-topology", "debruijn", "-degree", "2", "-diameter", "4",
		"-protocol", "periodic-half").CombinedOutput()
	if err != nil {
		t.Fatalf("gossipsim failed: %v\n%s", err, out)
	}
	for _, want := range []string{"network:", "measured:", "Theorem 4.1 respected: true"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeCheckpointResume(t *testing.T) {
	tool := buildTool(t)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt.json")
	out, err := exec.Command(tool,
		"-topology", "debruijn", "-degree", "2", "-diameter", "4",
		"-protocol", "periodic-half", "-budget", "5", "-checkpoint", ckpt).CombinedOutput()
	if err != nil {
		t.Fatalf("budget-capped run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "incomplete:") {
		t.Fatalf("capped run did not report incomplete:\n%s", out)
	}
	out, err = exec.Command(tool,
		"-topology", "debruijn", "-degree", "2", "-diameter", "4",
		"-protocol", "periodic-half", "-budget", "100000", "-resume", ckpt).CombinedOutput()
	if err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, out)
	}
	for _, want := range []string{"resumed:", "measured:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("resumed output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeScenario(t *testing.T) {
	tool := buildTool(t)
	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(tool, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("gossipsim %v failed: %v\n%s", args, err, out)
		}
		return string(out)
	}
	args := []string{
		"-topology", "debruijn", "-degree", "2", "-diameter", "4",
		"-protocol", "periodic-half",
		"-loss", "0.1", "-crash", "1@0-3", "-delete", "0>1",
		"-seed", "7", "-trials", "16",
	}
	out := run(args...)
	for _, want := range []string{
		"scenario:   loss=0.1;crash=1@0-3;del=0>1;seed=7",
		"trials:     16 (16 completed",
		"respected by median: true",
		"drift:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario output missing %q:\n%s", want, out)
		}
	}
	// Same seed, same distribution — the replay line pins the fingerprint.
	if again := run(args...); again != out {
		t.Errorf("identical seeds diverged:\n%s\nvs\n%s", out, again)
	}
}

func TestSmokeScenarioBadSpecs(t *testing.T) {
	tool := buildTool(t)
	for _, tc := range [][]string{
		{"-crash", "nope"},
		{"-delete", "3-4"},
		{"-loss", "0.1", "-checkpoint", "x.json"},
	} {
		args := append([]string{"-topology", "debruijn", "-degree", "2", "-diameter", "4",
			"-protocol", "periodic-half"}, tc...)
		if out, err := exec.Command(tool, args...).CombinedOutput(); err == nil {
			t.Errorf("%v accepted:\n%s", tc, out)
		}
	}
}

func TestSmokeBadFlags(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-topology", "mobius").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown topology accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown topology") {
		t.Errorf("error message unhelpful:\n%s", out)
	}
}
