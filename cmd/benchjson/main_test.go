package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/gossip
cpu: Some CPU @ 2.40GHz
BenchmarkStep-8            	   10000	     11000 ns/op	       0 B/op	       0 allocs/op
BenchmarkStep-8            	   12000	     10000 ns/op	       0 B/op	       0 allocs/op
BenchmarkStep-8            	   11000	     10500 ns/op	       0 B/op	       0 allocs/op
BenchmarkFrontierStep-8    	  500000	      2000 ns/op	       0 B/op	       0 allocs/op
BenchmarkFrontierStep-8    	  600000	      1900 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/gossip	2.0s
pkg: repro
BenchmarkSessionRun-8      	     100	    500000 ns/op	   20000 B/op	     150 allocs/op
ok  	repro	1.0s
`

func TestParseBenchAggregates(t *testing.T) {
	suite, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(suite.Benchmarks))
	}
	step := suite.Benchmarks["BenchmarkStep"]
	if step.NsOp != 10000 {
		t.Errorf("BenchmarkStep min ns/op = %v, want 10000", step.NsOp)
	}
	if step.Samples != 3 {
		t.Errorf("BenchmarkStep samples = %d, want 3", step.Samples)
	}
	if want := (11000.0 + 10000 + 10500) / 3; step.NsOpMean != want {
		t.Errorf("BenchmarkStep mean = %v, want %v", step.NsOpMean, want)
	}
	if step.Pkg != "repro/internal/gossip" {
		t.Errorf("BenchmarkStep pkg = %q", step.Pkg)
	}
	if step.AllocsOp != 0 || step.BOp != 0 {
		t.Errorf("BenchmarkStep allocs/B = %d/%d, want 0/0", step.AllocsOp, step.BOp)
	}
	sess := suite.Benchmarks["BenchmarkSessionRun"]
	if sess.NsOp != 500000 || sess.AllocsOp != 150 || sess.BOp != 20000 || sess.Pkg != "repro" {
		t.Errorf("BenchmarkSessionRun parsed wrong: %+v", sess)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1.0s\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestCheckRegressions(t *testing.T) {
	baseline := &Suite{Benchmarks: map[string]Result{
		"BenchmarkStep":         {NsOp: 10000, AllocsOp: 0},
		"BenchmarkFrontierStep": {NsOp: 2000, AllocsOp: 0},
	}}
	require := []string{"BenchmarkStep", "BenchmarkFrontierStep"}

	// Within threshold: 15% slower passes at 20%.
	ok := &Suite{Benchmarks: map[string]Result{
		"BenchmarkStep":         {NsOp: 11500, AllocsOp: 0},
		"BenchmarkFrontierStep": {NsOp: 2100, AllocsOp: 0},
	}}
	if v := checkRegressions(baseline, ok, require, 20); len(v) != 0 {
		t.Errorf("in-threshold run flagged: %v", v)
	}

	// Beyond threshold fails.
	slow := &Suite{Benchmarks: map[string]Result{
		"BenchmarkStep":         {NsOp: 12100, AllocsOp: 0},
		"BenchmarkFrontierStep": {NsOp: 2000, AllocsOp: 0},
	}}
	v := checkRegressions(baseline, slow, require, 20)
	if len(v) != 1 || !strings.Contains(v[0], "BenchmarkStep") {
		t.Errorf("21%% regression not flagged correctly: %v", v)
	}

	// New allocations on a zero-alloc hot path fail regardless of speed.
	alloc := &Suite{Benchmarks: map[string]Result{
		"BenchmarkStep":         {NsOp: 9000, AllocsOp: 1},
		"BenchmarkFrontierStep": {NsOp: 2000, AllocsOp: 0},
	}}
	v = checkRegressions(baseline, alloc, require, 20)
	if len(v) != 1 || !strings.Contains(v[0], "allocs") {
		t.Errorf("alloc regression not flagged: %v", v)
	}

	// A required benchmark missing from the candidate fails.
	missing := &Suite{Benchmarks: map[string]Result{
		"BenchmarkStep": {NsOp: 10000},
	}}
	v = checkRegressions(baseline, missing, require, 20)
	if len(v) != 1 || !strings.Contains(v[0], "missing from candidate") {
		t.Errorf("missing benchmark not flagged: %v", v)
	}

	// A benchmark absent from the baseline fails too (the gate must never
	// silently skip).
	v = checkRegressions(&Suite{Benchmarks: map[string]Result{}}, ok, require, 20)
	if len(v) != 2 {
		t.Errorf("missing baseline entries not flagged: %v", v)
	}
}

func TestParseBenchExtraMetrics(t *testing.T) {
	// Custom b.ReportMetric units land between ns/op and the -benchmem
	// columns; the pair walk must keep all three standard fields and
	// preserve the custom one from the fastest repetition.
	out := `pkg: repro/internal/gossip
BenchmarkGenProgramStep-8	  100	 15000 ns/op	 4.250 bytes/node	 8 B/op	 1 allocs/op
BenchmarkGenProgramStep-8	  100	 14000 ns/op	 4.500 bytes/node	 0 B/op	 0 allocs/op
`
	suite, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	res := suite.Benchmarks["BenchmarkGenProgramStep"]
	if res.NsOp != 14000 || res.BOp != 0 || res.AllocsOp != 0 || res.Samples != 2 {
		t.Fatalf("standard fields parsed wrong: %+v", res)
	}
	if res.Extra["bytes/node"] != 4.5 {
		t.Fatalf("extra metric of fastest repetition = %v, want 4.5", res.Extra)
	}
}

func TestGateNames(t *testing.T) {
	baseline := &Suite{
		Gate: []string{"BenchmarkB", "BenchmarkA"},
		Benchmarks: map[string]Result{
			"BenchmarkA": {}, "BenchmarkB": {}, "BenchmarkC": {},
		},
	}
	// Explicit -require wins over the baseline's gate.
	if got := gateNames("BenchmarkC, BenchmarkA", baseline); len(got) != 2 || got[0] != "BenchmarkC" || got[1] != "BenchmarkA" {
		t.Fatalf("explicit require: %v", got)
	}
	// Empty -require reads the baseline's gate list, order preserved.
	if got := gateNames("", baseline); len(got) != 2 || got[0] != "BenchmarkB" || got[1] != "BenchmarkA" {
		t.Fatalf("baseline gate: %v", got)
	}
	// A gate-less baseline gates on everything it holds, sorted.
	baseline.Gate = nil
	if got := gateNames("", baseline); len(got) != 3 || got[0] != "BenchmarkA" || got[2] != "BenchmarkC" {
		t.Fatalf("fallback gate: %v", got)
	}
}
