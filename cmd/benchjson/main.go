// Command benchjson converts `go test -bench` output into a stable JSON
// document and gates benchmark regressions against a committed baseline —
// the two halves of the CI bench job.
//
// Convert (reads the bench output on stdin):
//
//	go test -bench=. -benchmem -count=6 ./... | benchjson -out BENCH_PR3.json
//
// Repeated runs of one benchmark (-count) aggregate into a single entry
// holding the minimum ns/op (the noise-robust statistic), the mean, and the
// B/op / allocs/op of the fastest run. Pass -gate to embed the baseline's
// gate list (the benchmarks later checks hold it responsible for).
//
// Check (compares a candidate conversion against the baseline):
//
//	benchjson -check -baseline BENCH_PR3.json -candidate new.json \
//	    -require BenchmarkStep,BenchmarkFrontierStep -threshold 20
//
// With no -require the check gates on the baseline's own "gate" list (the
// benchmarks the baseline declares itself responsible for), falling back to
// every benchmark the baseline holds — so CI can loop one identical check
// step over all BENCH_*.json files.
//
// The check fails (exit 1) when a required benchmark is missing from either
// file, its candidate ns/op exceeds the baseline by more than -threshold
// percent, or its allocs/op grew at all (the hot paths are pinned at zero).
//
// Custom b.ReportMetric values ("bytes/node", "rounds", …) are preserved
// under each benchmark's "extra" map, taken from the fastest repetition.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Suite is the JSON document: benchmark name → aggregated result, plus the
// gate list a -check with no -require reads its required names from.
type Suite struct {
	Schema     int               `json:"schema"`
	Gate       []string          `json:"gate,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Result aggregates the repetitions of one benchmark.
type Result struct {
	Pkg      string             `json:"pkg,omitempty"`
	NsOp     float64            `json:"ns_op"`      // minimum across repetitions
	NsOpMean float64            `json:"ns_op_mean"` // mean across repetitions
	BOp      int64              `json:"b_op"`       // of the fastest repetition
	AllocsOp int64              `json:"allocs_op"`  // of the fastest repetition
	Samples  int                `json:"samples"`
	Extra    map[string]float64 `json:"extra,omitempty"` // custom metrics, fastest repetition
}

var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

// parseBench reads `go test -bench` output and aggregates it into a Suite.
// A result line is the benchmark name, the iteration count, then
// value-unit pairs in any order (custom b.ReportMetric units can appear
// between the standard ones, so the pairs are walked, not pattern-matched).
func parseBench(r io.Reader) (*Suite, error) {
	suite := &Suite{Schema: 1, Benchmarks: make(map[string]Result)}
	sums := make(map[string]float64)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		m := benchName.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := m[1]
		var ns float64
		var bop, allocs int64
		var extra map[string]float64
		nsSeen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				ns, nsSeen = v, true
			case "B/op":
				bop = int64(v)
			case "allocs/op":
				allocs = int64(v)
			default:
				if extra == nil {
					extra = make(map[string]float64)
				}
				extra[unit] = v
			}
		}
		if !nsSeen {
			continue
		}
		res, seen := suite.Benchmarks[name]
		if !seen || ns < res.NsOp {
			res.NsOp = ns
			res.BOp = bop
			res.AllocsOp = allocs
			res.Pkg = pkg
			res.Extra = extra
		}
		res.Samples++
		sums[name] += ns
		suite.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading bench output: %v", err)
	}
	for name, res := range suite.Benchmarks {
		res.NsOpMean = sums[name] / float64(res.Samples)
		suite.Benchmarks[name] = res
	}
	if len(suite.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	return suite, nil
}

// checkRegressions compares candidate against baseline for the required
// benchmarks and returns the list of violations (empty = pass).
func checkRegressions(baseline, candidate *Suite, require []string, thresholdPct float64) []string {
	var violations []string
	for _, name := range require {
		base, ok := baseline.Benchmarks[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from baseline", name))
			continue
		}
		cand, ok := candidate.Benchmarks[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from candidate run", name))
			continue
		}
		limit := base.NsOp * (1 + thresholdPct/100)
		if cand.NsOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: %.1f ns/op exceeds baseline %.1f ns/op by more than %.0f%% (limit %.1f)",
				name, cand.NsOp, base.NsOp, thresholdPct, limit))
		}
		if cand.AllocsOp > base.AllocsOp {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op grew from baseline %d", name, cand.AllocsOp, base.AllocsOp))
		}
	}
	return violations
}

// gateNames resolves the benchmarks a check gates on: an explicit -require
// list wins, then the baseline's own gate declaration, then every benchmark
// the baseline holds (sorted, so runs are reproducible).
func gateNames(require string, baseline *Suite) []string {
	if require != "" {
		names := strings.Split(require, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		return names
	}
	if len(baseline.Gate) > 0 {
		return baseline.Gate
	}
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func loadSuite(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %v", err)
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %v", path, err)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("benchjson: %s holds no benchmarks", path)
	}
	return &s, nil
}

func writeSuite(path string, s *Suite) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	check := flag.Bool("check", false, "compare -candidate against -baseline instead of converting")
	out := flag.String("out", "-", "output path for the converted JSON (- = stdout)")
	baselinePath := flag.String("baseline", "", "baseline suite JSON (check mode)")
	candidatePath := flag.String("candidate", "", "candidate suite JSON (check mode)")
	require := flag.String("require", "",
		"comma-separated benchmarks the check gates on (default: the baseline's gate list, else every baseline benchmark)")
	gate := flag.String("gate", "",
		"comma-separated gate list embedded in the converted JSON (convert mode)")
	threshold := flag.Float64("threshold", 20, "allowed ns/op regression percentage")
	flag.Parse()

	if *check {
		if *baselinePath == "" || *candidatePath == "" {
			fatalf("check mode needs -baseline and -candidate")
		}
		baseline, err := loadSuite(*baselinePath)
		if err != nil {
			fatalf("%v", err)
		}
		candidate, err := loadSuite(*candidatePath)
		if err != nil {
			fatalf("%v", err)
		}
		names := gateNames(*require, baseline)
		violations := checkRegressions(baseline, candidate, names, *threshold)
		for _, name := range names {
			if b, ok := baseline.Benchmarks[name]; ok {
				if c, ok := candidate.Benchmarks[name]; ok {
					fmt.Printf("%s: baseline %.1f ns/op, candidate %.1f ns/op (%+.1f%%), allocs %d -> %d\n",
						name, b.NsOp, c.NsOp, 100*(c.NsOp-b.NsOp)/b.NsOp, b.AllocsOp, c.AllocsOp)
				}
			}
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("benchjson: no regressions")
		return
	}

	suite, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("%v", err)
	}
	if *gate != "" {
		for _, name := range strings.Split(*gate, ",") {
			name = strings.TrimSpace(name)
			if _, ok := suite.Benchmarks[name]; !ok {
				fatalf("gate entry %s is not in the converted run", name)
			}
			suite.Gate = append(suite.Gate, name)
		}
	}
	if err := writeSuite(*out, suite); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(suite.Benchmarks), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
