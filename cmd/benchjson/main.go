// Command benchjson converts `go test -bench` output into a stable JSON
// document and gates benchmark regressions against a committed baseline —
// the two halves of the CI bench job.
//
// Convert (reads the bench output on stdin):
//
//	go test -bench=. -benchmem -count=6 ./... | benchjson -out BENCH_PR3.json
//
// Repeated runs of one benchmark (-count) aggregate into a single entry
// holding the minimum ns/op (the noise-robust statistic), the mean, and the
// B/op / allocs/op of the fastest run.
//
// Check (compares a candidate conversion against the baseline):
//
//	benchjson -check -baseline BENCH_PR3.json -candidate new.json \
//	    -require BenchmarkStep,BenchmarkFrontierStep -threshold 20
//
// The check fails (exit 1) when a required benchmark is missing from either
// file, its candidate ns/op exceeds the baseline by more than -threshold
// percent, or its allocs/op grew at all (the hot paths are pinned at zero).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Suite is the JSON document: benchmark name → aggregated result.
type Suite struct {
	Schema     int               `json:"schema"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Result aggregates the repetitions of one benchmark.
type Result struct {
	Pkg      string  `json:"pkg,omitempty"`
	NsOp     float64 `json:"ns_op"`      // minimum across repetitions
	NsOpMean float64 `json:"ns_op_mean"` // mean across repetitions
	BOp      int64   `json:"b_op"`       // of the fastest repetition
	AllocsOp int64   `json:"allocs_op"`  // of the fastest repetition
	Samples  int     `json:"samples"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench reads `go test -bench` output and aggregates it into a Suite.
func parseBench(r io.Reader) (*Suite, error) {
	suite := &Suite{Schema: 1, Benchmarks: make(map[string]Result)}
	sums := make(map[string]float64)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", line, err)
		}
		var bop, allocs int64
		if m[3] != "" {
			bop, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			allocs, _ = strconv.ParseInt(m[4], 10, 64)
		}
		res, seen := suite.Benchmarks[name]
		if !seen || ns < res.NsOp {
			res.NsOp = ns
			res.BOp = bop
			res.AllocsOp = allocs
			res.Pkg = pkg
		}
		res.Samples++
		sums[name] += ns
		suite.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading bench output: %v", err)
	}
	for name, res := range suite.Benchmarks {
		res.NsOpMean = sums[name] / float64(res.Samples)
		suite.Benchmarks[name] = res
	}
	if len(suite.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	return suite, nil
}

// checkRegressions compares candidate against baseline for the required
// benchmarks and returns the list of violations (empty = pass).
func checkRegressions(baseline, candidate *Suite, require []string, thresholdPct float64) []string {
	var violations []string
	for _, name := range require {
		base, ok := baseline.Benchmarks[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from baseline", name))
			continue
		}
		cand, ok := candidate.Benchmarks[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from candidate run", name))
			continue
		}
		limit := base.NsOp * (1 + thresholdPct/100)
		if cand.NsOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: %.1f ns/op exceeds baseline %.1f ns/op by more than %.0f%% (limit %.1f)",
				name, cand.NsOp, base.NsOp, thresholdPct, limit))
		}
		if cand.AllocsOp > base.AllocsOp {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op grew from baseline %d", name, cand.AllocsOp, base.AllocsOp))
		}
	}
	return violations
}

func loadSuite(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %v", err)
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %v", path, err)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("benchjson: %s holds no benchmarks", path)
	}
	return &s, nil
}

func writeSuite(path string, s *Suite) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	check := flag.Bool("check", false, "compare -candidate against -baseline instead of converting")
	out := flag.String("out", "-", "output path for the converted JSON (- = stdout)")
	baselinePath := flag.String("baseline", "", "baseline suite JSON (check mode)")
	candidatePath := flag.String("candidate", "", "candidate suite JSON (check mode)")
	require := flag.String("require", "BenchmarkStep,BenchmarkFrontierStep",
		"comma-separated benchmarks the check gates on")
	threshold := flag.Float64("threshold", 20, "allowed ns/op regression percentage")
	flag.Parse()

	if *check {
		if *baselinePath == "" || *candidatePath == "" {
			fatalf("check mode needs -baseline and -candidate")
		}
		baseline, err := loadSuite(*baselinePath)
		if err != nil {
			fatalf("%v", err)
		}
		candidate, err := loadSuite(*candidatePath)
		if err != nil {
			fatalf("%v", err)
		}
		names := strings.Split(*require, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		violations := checkRegressions(baseline, candidate, names, *threshold)
		for _, name := range names {
			if b, ok := baseline.Benchmarks[name]; ok {
				if c, ok := candidate.Benchmarks[name]; ok {
					fmt.Printf("%s: baseline %.1f ns/op, candidate %.1f ns/op (%+.1f%%), allocs %d -> %d\n",
						name, b.NsOp, c.NsOp, 100*(c.NsOp-b.NsOp)/b.NsOp, b.AllocsOp, c.AllocsOp)
				}
			}
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("benchjson: no regressions")
		return
	}

	suite, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("%v", err)
	}
	if err := writeSuite(*out, suite); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(suite.Benchmarks), *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
