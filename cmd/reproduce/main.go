// Command reproduce is the one-shot reproduction driver: it regenerates all
// four numeric tables (Figs. 4, 5, 6, 8), checks every in-text golden value,
// verifies the Lemma 3.1 separators by BFS (including the literal-vs-marker
// de Bruijn finding), and runs the upper-vs-lower protocol sweep. Output is
// the live counterpart of EXPERIMENTS.md.
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/protocols"
	"repro/internal/separator"
	"repro/internal/topology"
)

var failed bool

func check(name string, got, want, tol float64) {
	status := "ok"
	if math.Abs(got-want) > tol {
		status = "MISMATCH"
		failed = true
	}
	fmt.Printf("  %-38s paper %-8.4f ours %-10.6f %s\n", name, want, got, status)
}

func main() {
	fmt.Println("== Golden values (all in-text constants) ==")
	for _, c := range []struct {
		name string
		s    int
		want float64
	}{
		{"e(3)", 3, 2.8808}, {"e(4)", 4, 1.8133}, {"e(5)", 5, 1.6502},
		{"e(6)", 6, 1.5363}, {"e(7)", 7, 1.5021}, {"e(8)", 8, 1.4721},
	} {
		e, _ := bounds.GeneralHalfDuplex(c.s)
		check(c.name, e, c.want, 1.01e-4)
	}
	eInf, lamInf := bounds.GeneralHalfDuplexInfinity()
	check("e(inf)", eInf, 1.4404, 1.01e-4)
	check("lambda(inf) = 1/phi", lamInf, 0.6180, 1.01e-4)
	wbf := bounds.LemmaSeparator(bounds.WBF, 2)
	db := bounds.LemmaSeparator(bounds.DB, 2)
	eW4, _ := bounds.SeparatorHalfDuplex(wbf, 4)
	check("WBF(2,D) s=4", eW4, 2.0218, 2e-4)
	check("DB(2,D) s=4", bounds.BestHalfDuplex(db, 4), 1.8133, 1.01e-4)
	eWInf, _ := bounds.SeparatorHalfDuplexInfinity(wbf)
	check("WBF(2,D) s=inf", eWInf, 1.9750, 1.01e-4)
	eDInf, _ := bounds.SeparatorHalfDuplexInfinity(db)
	check("DB(2,D) s=inf", eDInf, 1.5876, 1.01e-4)
	check("c(2)", bounds.BroadcastConstant(2), 1.4404, 1.01e-4)
	check("c(3)", bounds.BroadcastConstant(3), 1.1374, 1.01e-4)
	check("c(4)", bounds.BroadcastConstant(4), 1.0562, 1.01e-4)

	fmt.Println("\n== Fig. 4 ==")
	fmt.Print(bounds.FormatFig4(bounds.Fig4(bounds.Fig4Periods)))
	fmt.Println("\n== Fig. 5 (d = 2, 3) ==")
	sys := []int{3, 4, 5, 6, 7, 8}
	fmt.Print(bounds.FormatTopologyTable(bounds.Fig5([]int{2, 3}, sys), sys))
	fmt.Println("\n== Fig. 6 (d = 2, 3, 4) ==")
	fmt.Print(bounds.FormatTopologyTable(bounds.Fig6([]int{2, 3, 4}), []int{bounds.SInfinity}))
	fmt.Println("\n== Fig. 8 (d = 2, 3) ==")
	fd := []int{3, 4, 5, 6, 7, 8, bounds.SInfinity}
	fmt.Print(bounds.FormatTopologyTable(bounds.Fig8([]int{2, 3}, fd), fd))

	fmt.Println("\n== Separator verification (BFS) ==")
	verifySeparators()

	fmt.Println("\n== Upper vs lower (simulated protocols) ==")
	sweep()

	if failed {
		fmt.Println("\nREPRODUCTION: MISMATCHES FOUND")
		os.Exit(1)
	}
	fmt.Println("\nREPRODUCTION: all checks passed")
}

func verifySeparators() {
	bf := topology.NewButterfly(2, 4)
	report(separator.Butterfly(bf).Verify(bf.G))
	wd := topology.NewWrappedButterflyDigraph(2, 4)
	report(separator.WrappedButterflyDirected(wd).Verify(wd.G))
	w := topology.NewWrappedButterfly(2, 8)
	report(separator.WrappedButterfly(w).Verify(w.G))
	dbg := topology.NewDeBruijnDigraph(2, 9)
	lit := separator.DeBruijnLiteral(dbg)
	litDist := dbg.G.DistBetweenSets(lit.V1, lit.V2)
	fmt.Printf("  %-24s measured %2d  -- FAILS the claimed D-O(sqrt D) (shift evasion; see DESIGN.md)\n",
		lit.Name, litDist)
	report(separator.DeBruijnMarker(dbg).Verify(dbg.G))
	k := topology.NewKautzDigraph(2, 8)
	report(separator.KautzMarker(k).Verify(k.G))
}

func report(measured int, err error) {
	if err != nil {
		fmt.Printf("  VERIFY FAILED: %v\n", err)
		failed = true
		return
	}
	fmt.Printf("  separator verified: min distance %d meets its promise\n", measured)
}

func sweep() {
	type run struct {
		kind  string
		a, b  int
		build func(net *core.Network) (*gossip.Protocol, error)
		label string
	}
	runs := []run{
		{"debruijn", 2, 5, func(n *core.Network) (*gossip.Protocol, error) {
			return protocols.PeriodicHalfDuplex(n.G), nil
		}, "periodic half-duplex"},
		{"wbf", 2, 4, func(n *core.Network) (*gossip.Protocol, error) {
			return protocols.PeriodicHalfDuplex(n.G), nil
		}, "periodic half-duplex"},
		{"kautz", 2, 4, func(n *core.Network) (*gossip.Protocol, error) {
			return protocols.PeriodicFullDuplex(n.G), nil
		}, "periodic full-duplex"},
		{"butterfly", 2, 3, func(n *core.Network) (*gossip.Protocol, error) {
			return protocols.PeriodicFullDuplex(n.G), nil
		}, "periodic full-duplex"},
		{"hypercube", 6, 0, func(n *core.Network) (*gossip.Protocol, error) {
			return protocols.HypercubeExchange(6), nil
		}, "dimension exchange"},
		{"debruijn", 2, 5, func(n *core.Network) (*gossip.Protocol, error) {
			return protocols.GreedyGossip(n.G, gossip.HalfDuplex, 100000)
		}, "greedy non-systolic"},
	}
	for _, r := range runs {
		net, err := core.NewNetwork(r.kind, r.a, r.b)
		if err != nil {
			fmt.Printf("  %s: %v\n", r.kind, err)
			failed = true
			continue
		}
		p, err := r.build(net)
		if err != nil {
			fmt.Printf("  %s: %v\n", net.Name, err)
			failed = true
			continue
		}
		rep, err := core.Analyze(net, p, 200000)
		if err != nil {
			fmt.Printf("  %s: %v\n", net.Name, err)
			failed = true
			continue
		}
		ok := "ok"
		if rep.Measured < rep.LowerBound.Rounds || !rep.TheoremRespected {
			ok = "VIOLATION"
			failed = true
		}
		fmt.Printf("  %-10s %-22s n=%-4d measured %4d >= bound %3d  norm@root %.4f  %s\n",
			net.Name, r.label, net.G.N(), rep.Measured, rep.LowerBound.Rounds, rep.NormAtRoot, ok)
	}
}
