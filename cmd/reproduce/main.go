// Command reproduce is the one-shot reproduction driver: it regenerates all
// four numeric tables (Figs. 4, 5, 6, 8), checks every in-text golden value,
// verifies the Lemma 3.1 separators by BFS (including the literal-vs-marker
// de Bruijn finding), and certifies the upper-vs-lower protocol grid through
// the unified certification pipeline (systolic.Certify, jobs in parallel,
// deterministic output order). Output is the live counterpart of
// EXPERIMENTS.md.
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"

	"repro/internal/bounds"
	"repro/internal/separator"
	"repro/internal/topology"
	"repro/systolic"
)

var failed bool

func check(name string, got, want, tol float64) {
	status := "ok"
	if math.Abs(got-want) > tol {
		status = "MISMATCH"
		failed = true
	}
	fmt.Printf("  %-38s paper %-8.4f ours %-10.6f %s\n", name, want, got, status)
}

func main() {
	fmt.Println("== Golden values (all in-text constants) ==")
	for _, c := range []struct {
		name string
		s    int
		want float64
	}{
		{"e(3)", 3, 2.8808}, {"e(4)", 4, 1.8133}, {"e(5)", 5, 1.6502},
		{"e(6)", 6, 1.5363}, {"e(7)", 7, 1.5021}, {"e(8)", 8, 1.4721},
	} {
		e, _ := systolic.GeneralBound(systolic.HalfDuplex, c.s)
		check(c.name, e, c.want, 1.01e-4)
	}
	eInf, lamInf := systolic.GeneralBound(systolic.HalfDuplex, systolic.NonSystolic)
	check("e(inf)", eInf, 1.4404, 1.01e-4)
	check("lambda(inf) = 1/phi", lamInf, 0.6180, 1.01e-4)
	wbf := bounds.LemmaSeparator(bounds.WBF, 2)
	db := bounds.LemmaSeparator(bounds.DB, 2)
	eW4, _ := bounds.SeparatorHalfDuplex(wbf, 4)
	check("WBF(2,D) s=4", eW4, 2.0218, 2e-4)
	check("DB(2,D) s=4", bounds.BestHalfDuplex(db, 4), 1.8133, 1.01e-4)
	eWInf, _ := bounds.SeparatorHalfDuplexInfinity(wbf)
	check("WBF(2,D) s=inf", eWInf, 1.9750, 1.01e-4)
	eDInf, _ := bounds.SeparatorHalfDuplexInfinity(db)
	check("DB(2,D) s=inf", eDInf, 1.5876, 1.01e-4)
	check("c(2)", bounds.BroadcastConstant(2), 1.4404, 1.01e-4)
	check("c(3)", bounds.BroadcastConstant(3), 1.1374, 1.01e-4)
	check("c(4)", bounds.BroadcastConstant(4), 1.0562, 1.01e-4)

	fmt.Println("\n== Fig. 4 ==")
	fmt.Print(bounds.FormatFig4(bounds.Fig4(bounds.Fig4Periods)))
	fmt.Println("\n== Fig. 5 (d = 2, 3) ==")
	sys := []int{3, 4, 5, 6, 7, 8}
	fmt.Print(bounds.FormatTopologyTable(bounds.Fig5([]int{2, 3}, sys), sys))
	fmt.Println("\n== Fig. 6 (d = 2, 3, 4) ==")
	fmt.Print(bounds.FormatTopologyTable(bounds.Fig6([]int{2, 3, 4}), []int{bounds.SInfinity}))
	fmt.Println("\n== Fig. 8 (d = 2, 3) ==")
	fd := []int{3, 4, 5, 6, 7, 8, bounds.SInfinity}
	fmt.Print(bounds.FormatTopologyTable(bounds.Fig8([]int{2, 3}, fd), fd))

	fmt.Println("\n== Separator verification (BFS) ==")
	verifySeparators()

	fmt.Println("\n== Upper vs lower (certified protocols) ==")
	sweep()

	fmt.Println("\n== Monte-Carlo scenarios (lossy / churning executions) ==")
	scenarios()

	if failed {
		fmt.Println("\nREPRODUCTION: MISMATCHES FOUND")
		os.Exit(1)
	}
	fmt.Println("\nREPRODUCTION: all checks passed")
}

func verifySeparators() {
	bf := topology.NewButterfly(2, 4)
	report(separator.Butterfly(bf).Verify(bf.G))
	wd := topology.NewWrappedButterflyDigraph(2, 4)
	report(separator.WrappedButterflyDirected(wd).Verify(wd.G))
	w := topology.NewWrappedButterfly(2, 8)
	report(separator.WrappedButterfly(w).Verify(w.G))
	dbg := topology.NewDeBruijnDigraph(2, 9)
	lit := separator.DeBruijnLiteral(dbg)
	litDist := dbg.G.DistBetweenSets(lit.V1, lit.V2)
	fmt.Printf("  %-24s measured %2d  -- FAILS the claimed D-O(sqrt D) (shift evasion; see DESIGN.md)\n",
		lit.Name, litDist)
	report(separator.DeBruijnMarker(dbg).Verify(dbg.G))
	k := topology.NewKautzDigraph(2, 8)
	report(separator.KautzMarker(k).Verify(k.G))
}

func report(measured int, err error) {
	if err != nil {
		fmt.Printf("  VERIFY FAILED: %v\n", err)
		failed = true
		return
	}
	fmt.Printf("  separator verified: min distance %d meets its promise\n", measured)
}

// sweep drives the upper-vs-lower grid through the unified certification
// pipeline: each job runs systolic.Certify (compiled program + compiled
// delay plan + zero-alloc λ evaluations) and the certificate's typed
// verdicts — completeness, Theorem 4.1 applicability/respect, the
// ‖M(λ₀)‖ ≤ 1 structural check — replace the hand-rolled report
// comparisons. Jobs run concurrently; rows print in grid order.
func sweep() {
	jobs := []systolic.SweepJob{
		{Label: "periodic half-duplex", Kind: "debruijn",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(5)},
			Protocol: systolic.UseProtocol("periodic-half", 0)},
		{Label: "periodic half-duplex", Kind: "wbf",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(4)},
			Protocol: systolic.UseProtocol("periodic-half", 0)},
		{Label: "periodic full-duplex", Kind: "kautz",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(4)},
			Protocol: systolic.UseProtocol("periodic-full", 0)},
		{Label: "periodic full-duplex", Kind: "butterfly",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(3)},
			Protocol: systolic.UseProtocol("periodic-full", 0)},
		{Label: "dimension exchange", Kind: "hypercube",
			Params:   []systolic.Param{systolic.Dimension(6)},
			Protocol: systolic.UseProtocol("hypercube", 0)},
		{Label: "greedy non-systolic", Kind: "debruijn",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(5)},
			Protocol: systolic.UseProtocol("greedy-half", 100000)},
	}
	type certRow struct {
		cert *systolic.Certificate
		n    int
		err  error
	}
	rows := make([]certRow, len(jobs))
	done := make(chan int, len(jobs))
	// Bounded fan-out: at most GOMAXPROCS jobs certify at once, like the
	// sweep engine's worker pool — growing the grid must not oversubscribe
	// the host.
	feed := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range feed {
				rows[i].cert, rows[i].n, rows[i].err = certifyJob(jobs[i])
				done <- i
			}
		}()
	}
	go func() {
		for i := range jobs {
			feed <- i
		}
		close(feed)
	}()
	// Completed rows are held back until their predecessors print, so the
	// table stays in grid order while each row still prints as early as
	// possible — long greedy jobs don't silence the whole section.
	ready := make([]bool, len(jobs))
	next := 0
	for range jobs {
		ready[<-done] = true
		for next < len(jobs) && ready[next] {
			printCertRow(jobs[next].Label, rows[next].cert, rows[next].n, rows[next].err)
			next++
		}
	}
}

// scenarios stresses the certified protocols under faults: the paper's
// bounds are proved for fault-free executions, so every lossy or churning
// run must finish at or above the deterministic lower bound — a median
// below it would witness a broken simulator. Each row is a Monte-Carlo
// scenario certification (fixed seed, so the table is reproducible).
func scenarios() {
	rows := []struct {
		label    string
		kind     string
		params   []systolic.Param
		protocol string
		sc       systolic.Scenario
	}{
		{"5% uniform loss", "debruijn",
			[]systolic.Param{systolic.Degree(2), systolic.Diameter(5)},
			"periodic-half", systolic.Scenario{Loss: 0.05, Seed: 1}},
		{"10% loss + crash", "hypercube",
			[]systolic.Param{systolic.Dimension(6)},
			"hypercube", systolic.Scenario{Loss: 0.10, Seed: 2,
				Crashes: []systolic.CrashWindow{{Node: 1, From: 0, To: 6}}}},
		{"adversarial arc cut", "kautz",
			[]systolic.Param{systolic.Degree(2), systolic.Diameter(4)},
			"periodic-full", systolic.Scenario{Seed: 3,
				DeleteArcs: [][2]int{{0, 1}}}},
	}
	for _, row := range rows {
		net, err := systolic.New(row.kind, row.params...)
		if err == nil {
			var p *systolic.Protocol
			if p, err = systolic.NewProtocol(row.protocol, net, 0); err == nil {
				var cert *systolic.StatisticalCertificate
				cert, err = systolic.CertifyScenario(context.Background(), net, p, &row.sc, 64,
					systolic.WithRoundBudget(200000))
				if err == nil {
					ok := "ok"
					if !cert.BoundRespected || cert.Trials.Completed != cert.Trials.Trials {
						ok = "VIOLATION"
						failed = true
					}
					fmt.Printf("  %-10s %-20s trials %3d  p50 %3d >= bound %3d  drift %+6.2f  %s\n",
						cert.Network, row.label, cert.Trials.Trials,
						cert.Trials.P50, cert.LowerBound.Rounds, cert.MeanDriftRounds, ok)
					continue
				}
			}
		}
		fmt.Printf("  %s: %v\n", row.label, err)
		failed = true
	}
}

// certifyJob instantiates one grid cell and certifies it. Each job keeps
// its session serial — the jobs themselves already run concurrently.
func certifyJob(job systolic.SweepJob) (*systolic.Certificate, int, error) {
	net, err := systolic.New(job.Kind, job.Params...)
	if err != nil {
		return nil, 0, err
	}
	p, err := job.Protocol(net)
	if err != nil {
		return nil, 0, err
	}
	cert, err := systolic.Certify(context.Background(), net, p,
		systolic.WithRoundBudget(200000), systolic.WithWorkers(1))
	return cert, net.G.N(), err
}

func printCertRow(label string, cert *systolic.Certificate, n int, err error) {
	if err != nil {
		fmt.Printf("  %s: %v\n", label, err)
		failed = true
		return
	}
	ok := "ok"
	if !cert.Complete || !cert.TheoremApplicable || !cert.TheoremRespected ||
		cert.Measured < cert.LowerBound.Rounds || (cert.NormChecked && !cert.NormRespected) {
		ok = "VIOLATION"
		failed = true
	}
	fmt.Printf("  %-10s %-22s n=%-4d measured %4d >= bound %3d  norm@root %.4f  %s\n",
		cert.Network, label, n, cert.Measured, cert.LowerBound.Rounds, cert.NormAtRoot, ok)
}
