// Smoke test: the full reproduction driver builds and passes every check
// end to end — golden values, all four figures, separator verification and
// the upper-vs-lower sweep.
package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestSmokeFullReproduction(t *testing.T) {
	tool := filepath.Join(t.TempDir(), "reproduce")
	out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building reproduce: %v\n%s", err, out)
	}
	out, err = exec.Command(tool).CombinedOutput()
	if err != nil {
		t.Fatalf("reproduce failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"Fig. 4", "Fig. 5", "Fig. 6", "Fig. 8",
		"separator verified",
		"Monte-Carlo scenarios",
		"REPRODUCTION: all checks passed",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(string(out), "MISMATCH") {
		t.Errorf("reproduction reported mismatches:\n%s", out)
	}
}
