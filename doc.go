// Package repro reproduces "Lower bounds on systolic gossip" by Michele
// Flammini and Stéphane Pérennès (IPPS 1997; journal version Information and
// Computation 196, 2005).
//
// The public API is the top-level systolic package (repro/systolic): a
// self-registering topology catalog instantiated from named parameters, a
// resumable zero-allocation simulation engine (NewEngine/Session with
// Step/Run/Snapshot/Restore and JSON checkpoints, sharded across a worker
// pool on large networks), option-based context-aware one-shot wrappers
// (Analyze/Simulate/AnalyzeBroadcast) with JSON-serializable Report/Bound
// results, and a parallel sweep engine (SweepStream streams results as jobs
// finish; Sweep returns them in deterministic job order). On top of it sits
// the serving layer repro/systolic/serve — an HTTP JSON service (cmd/gossipd)
// with canonical request keys (RequestKey), a sharded result cache,
// singleflight deduplication, a bounded worker pool, async jobs and
// Prometheus-style metrics. See README.md for a quickstart.
//
// The substrates live under internal/: the delay-digraph machinery
// (internal/delay), the numeric lower-bound solvers (internal/bounds), the
// topology generators (internal/topology), the gossip protocol model and
// simulator (internal/gossip), concrete protocol constructions
// (internal/protocols), separator constructions (internal/separator) and
// the linear-algebra substrate (internal/matrix). The benchmark harness in
// bench_test.go regenerates every table and figure of the paper; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured values.
package repro
