// Package repro reproduces "Lower bounds on systolic gossip" by Michele
// Flammini and Stéphane Pérennès (IPPS 1997; journal version Information and
// Computation 196, 2005).
//
// The public API is the top-level systolic package (repro/systolic): a
// self-registering topology catalog instantiated from named parameters, the
// option-based context-aware Analyze/Simulate/Evaluate entry points with
// JSON-serializable Report/Bound results, and a parallel Sweep engine that
// fans evaluation grids across a worker pool with deterministic result
// ordering. See README.md for a quickstart.
//
// The substrates live under internal/: the delay-digraph machinery
// (internal/delay), the numeric lower-bound solvers (internal/bounds), the
// topology generators (internal/topology), the gossip protocol model and
// simulator (internal/gossip), concrete protocol constructions
// (internal/protocols), separator constructions (internal/separator) and
// the linear-algebra substrate (internal/matrix). The benchmark harness in
// bench_test.go regenerates every table and figure of the paper; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured values.
package repro
