// Package repro reproduces "Lower bounds on systolic gossip" by Michele
// Flammini and Stéphane Pérennès (IPPS 1997; journal version Information and
// Computation 196, 2005).
//
// The library lives under internal/: the delay-digraph machinery
// (internal/delay), the numeric lower-bound solvers (internal/bounds), the
// topology generators (internal/topology), the gossip protocol model and
// simulator (internal/gossip), concrete protocol constructions
// (internal/protocols), separator constructions (internal/separator), the
// linear-algebra substrate (internal/matrix) and the public facade
// (internal/core). The benchmark harness in bench_test.go regenerates every
// table and figure of the paper; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured values.
package repro
