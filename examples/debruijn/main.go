// De Bruijn / Kautz study: prints the refined lower bounds of Sections 5–6
// for DB(d,D) and K(d,D) across systolic periods and modes, measures real
// protocols against them, and demonstrates the reproduction finding about
// the paper's literal de Bruijn separator sets (shift evasion) together
// with the marker construction that restores the claimed parameters.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/separator"
	"repro/internal/topology"
	"repro/systolic"
)

func main() {
	ctx := context.Background()

	fmt.Println("=== DB(2,D) and K(2,D) lower-bound coefficients (×log n) ===")
	db := bounds.LemmaSeparator(bounds.DB, 2)
	kz := bounds.LemmaSeparator(bounds.Kautz, 2)
	fmt.Printf("%4s %12s %12s %14s\n", "s", "DB half-dx", "K half-dx", "DB full-dx")
	for _, s := range []int{3, 4, 6, 8} {
		fmt.Printf("%4d %12.4f %12.4f %14.4f\n", s,
			bounds.BestHalfDuplex(db, s), bounds.BestHalfDuplex(kz, s), bounds.BestFullDuplex(db, s))
	}
	dbInf, _ := bounds.SeparatorHalfDuplexInfinity(db)
	fmt.Printf("%4s %12.4f %12s %14s   (paper quotes 1.5876 for DB(2,D))\n\n", "inf", dbInf, "-", "-")

	fmt.Println("=== Upper vs lower: periodic protocols on DB(2,D) ===")
	for _, D := range []int{4, 5, 6} {
		net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(D))
		if err != nil {
			log.Fatal(err)
		}
		p, err := systolic.NewProtocol("periodic-half", net, 0)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := systolic.Analyze(ctx, net, p, systolic.WithRoundBudget(200000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  DB(2,%d): n=%3d  measured %3d rounds  >=  bound %2d rounds (s=%d)\n",
			D, net.G.N(), rep.Measured, rep.LowerBound.Rounds, p.Period)
	}

	fmt.Println("\n=== Greedy non-systolic gossip (s→∞ comparison) ===")
	for _, D := range []int{4, 5} {
		net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(D))
		if err != nil {
			log.Fatal(err)
		}
		p, err := systolic.NewProtocol("greedy-half", net, 10000)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := systolic.Analyze(ctx, net, p, systolic.WithRoundBudget(10000))
		if err != nil {
			log.Fatal(err)
		}
		lb := systolic.Evaluate(net, systolic.Request{Mode: systolic.HalfDuplex, Period: systolic.NonSystolic})
		fmt.Printf("  DB(2,%d): greedy %3d rounds >= %.4f·log n = %d rounds (%s)\n",
			D, rep.Measured, lb.Coefficient, lb.Rounds, lb.Source)
	}

	fmt.Println("\n=== Reproduction finding: literal Lemma 3.1 sets vs shifts ===")
	D := 9
	dbg := topology.NewDeBruijnDigraph(2, D)
	lit := separator.DeBruijnLiteral(dbg)
	dist := dbg.G.DistBetweenSets(lit.V1, lit.V2)
	fmt.Printf("  Literal spread-position sets on DB(2,%d): measured min distance %d (claimed ~D−O(√D) = %d-ish)\n",
		D, dist, D-3)
	if u, v, ok := separator.DemonstrateShiftEvasion(2, D); ok {
		fmt.Printf("  Witness pair at distance 1: u = %v -> v = %v\n", u, v)
	}
	mk := separator.DeBruijnMarker(dbg)
	mdist, err := mk.Verify(dbg.G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Marker sets (%s): measured min distance %d >= promised %d — the ⟨log d, 1/log d⟩ parameters hold\n",
		mk.Name, mdist, mk.PromisedMin)
}
