// Quickstart: compute the paper's general lower-bound coefficients e(s)
// (Fig. 4), evaluate the best bound for a concrete de Bruijn network, run a
// real systolic protocol on it, and confirm the measured gossiping time
// respects the bound.
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/protocols"
)

func main() {
	// 1. The general systolic lower bound (Corollary 4.4): any s-systolic
	// gossip protocol on any n-vertex network, directed or half-duplex,
	// needs at least e(s)·log2(n) − O(log log n) rounds.
	fmt.Println("General half-duplex coefficients e(s):")
	for _, s := range []int{3, 4, 5, 6, 7, 8} {
		e, lambda := bounds.GeneralHalfDuplex(s)
		fmt.Printf("  s=%d: e=%.4f (λ₀=%.4f)\n", s, e, lambda)
	}
	eInf, _ := bounds.GeneralHalfDuplexInfinity()
	fmt.Printf("  s=∞: e=%.4f (the 1.4404·log n bound of Even–Monien et al.)\n\n", eInf)

	// 2. A concrete network: the undirected de Bruijn graph DB(2,6).
	net, err := core.NewNetwork("debruijn", 2, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Network %s: n=%d vertices\n", net.Name, net.G.N())

	// 3. The refined bound of Theorem 5.1 via the ⟨α,ℓ⟩-separator.
	b := core.Evaluate(net, core.Request{Mode: gossip.HalfDuplex, Period: 4})
	fmt.Printf("4-systolic half-duplex lower bound: %v\n\n", b)

	// 4. Run a real periodic protocol and compare.
	p := protocols.PeriodicHalfDuplex(net.G)
	rep, err := core.Analyze(net, p, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
}
