// Quickstart for the public systolic API: compute the paper's general
// lower-bound coefficients e(s) (Fig. 4), evaluate the best bound for a
// concrete de Bruijn network built from named parameters, run a real
// systolic protocol on it, and confirm the measured gossiping time respects
// the bound.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/systolic"
)

func main() {
	// 1. The general systolic lower bound (Corollary 4.4): any s-systolic
	// gossip protocol on any n-vertex network, directed or half-duplex,
	// needs at least e(s)·log2(n) − O(log log n) rounds.
	fmt.Println("General half-duplex coefficients e(s):")
	for _, s := range []int{3, 4, 5, 6, 7, 8} {
		e, lambda := systolic.GeneralBound(systolic.HalfDuplex, s)
		fmt.Printf("  s=%d: e=%.4f (λ₀=%.4f)\n", s, e, lambda)
	}
	eInf, _ := systolic.GeneralBound(systolic.HalfDuplex, systolic.NonSystolic)
	fmt.Printf("  s=∞: e=%.4f (the 1.4404·log n bound of Even–Monien et al.)\n\n", eInf)

	// 2. A concrete network from the topology registry: the undirected
	// de Bruijn graph DB(2,6), instantiated with named parameters.
	net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Network %s: n=%d vertices\n", net.Name, net.G.N())

	// 3. The refined bound of Theorem 5.1 via the ⟨α,ℓ⟩-separator.
	b := systolic.Evaluate(net, systolic.Request{Mode: systolic.HalfDuplex, Period: 4})
	fmt.Printf("4-systolic half-duplex lower bound: %v\n\n", b)

	// 4. Run a real periodic protocol from the catalog and compare.
	p, err := systolic.NewProtocol("periodic-half", net, 0)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := systolic.Analyze(context.Background(), net, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
}
