// Quickstart for the public systolic API: compute the paper's general
// lower-bound coefficients e(s) (Fig. 4), evaluate the best bound for a
// concrete de Bruijn network built from named parameters, then drive a real
// systolic protocol through a resumable simulation session — stepping it in
// chunks, checkpointing mid-flight, restoring into a second session — and
// confirm the measured gossiping time respects the bound.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/systolic"
)

func main() {
	ctx := context.Background()

	// 1. The general systolic lower bound (Corollary 4.4): any s-systolic
	// gossip protocol on any n-vertex network, directed or half-duplex,
	// needs at least e(s)·log2(n) − O(log log n) rounds.
	fmt.Println("General half-duplex coefficients e(s):")
	for _, s := range []int{3, 4, 5, 6, 7, 8} {
		e, lambda := systolic.GeneralBound(systolic.HalfDuplex, s)
		fmt.Printf("  s=%d: e=%.4f (λ₀=%.4f)\n", s, e, lambda)
	}
	eInf, _ := systolic.GeneralBound(systolic.HalfDuplex, systolic.NonSystolic)
	fmt.Printf("  s=∞: e=%.4f (the 1.4404·log n bound of Even–Monien et al.)\n\n", eInf)

	// 2. A concrete network from the topology registry: the undirected
	// de Bruijn graph DB(2,6), instantiated with named parameters.
	net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Network %s: n=%d vertices\n", net.Name, net.G.N())

	// 3. The refined bound of Theorem 5.1 via the ⟨α,ℓ⟩-separator.
	b := systolic.Evaluate(net, systolic.Request{Mode: systolic.HalfDuplex, Period: 4})
	fmt.Printf("4-systolic half-duplex lower bound: %v\n\n", b)

	// 4. Run a real periodic protocol from the catalog through a session:
	// step it a few rounds at a time and watch the knowledge spread.
	p, err := systolic.NewProtocol("periodic-half", net, 0)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := systolic.NewEngine(net, p)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	for !sess.Done() {
		if _, err := sess.Step(ctx, 5); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  round %3d: knowledge %5d / %d\n", sess.Rounds(), sess.Knowledge(), sess.Target())
	}

	// 5. Sessions checkpoint and resume: snapshot this finished run, restore
	// it into a fresh session, and analyze from there — the report is built
	// on the restored state without re-simulating a single round.
	ck := sess.Snapshot()
	resumed, err := systolic.NewEngine(net, p)
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.Restore(ck); err != nil {
		log.Fatal(err)
	}
	rep, err := resumed.Analyze(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(rep)
}
