// Full-duplex study (Section 6) plus the Section 7 extension: prints the
// Fig. 8 full-duplex coefficients, confirms the "full-duplex general bound =
// broadcasting bound" identity, compares the optimal hypercube protocol and
// traffic-light grid protocols against their bounds, and applies the
// matrix-norm technique to weighted-digraph diameters as the conclusion
// suggests.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/delay"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/topology"
	"repro/systolic"
)

func main() {
	ctx := context.Background()

	fmt.Println("=== General full-duplex bound = broadcasting bound (Section 6) ===")
	for _, s := range []int{3, 4, 5, 8} {
		e, _ := systolic.GeneralBound(systolic.FullDuplex, s)
		fmt.Printf("  e_fd(%d) = %.4f  =  c(%d) = %.4f (d-bonacci)\n",
			s, e, s-1, bounds.BroadcastConstant(s-1))
	}

	fmt.Println("\n=== Fig. 8 rows for d=2 ===")
	periods := []int{3, 4, 6, 8, systolic.NonSystolic}
	fmt.Print(systolic.FormatTopologyTable(systolic.Fig8([]int{2}, periods), periods))

	fmt.Println("\n=== Optimal protocols meeting their bounds ===")
	netQ, err := systolic.New("hypercube", systolic.Dimension(6))
	if err != nil {
		log.Fatal(err)
	}
	pQ, err := systolic.NewProtocol("hypercube", netQ, 0)
	if err != nil {
		log.Fatal(err)
	}
	repQ, err := systolic.Analyze(ctx, netQ, pQ, systolic.WithRoundBudget(100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Q6 dimension exchange: %d rounds = log2(n) exactly\n", repQ.Measured)

	netG, err := systolic.New("grid", systolic.Rows(6), systolic.Cols(6))
	if err != nil {
		log.Fatal(err)
	}
	p := protocols.GridFullDuplex(6, 6)
	res, err := systolic.Simulate(ctx, netG, p, systolic.WithRoundBudget(10000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  6x6 grid traffic-light: %d rounds (diameter %d, Θ(a+b) as in [20,14,11])\n",
		res.Rounds, netG.G.Diameter())

	fmt.Println("\n=== Section 7 extension: weighted-digraph diameter bounds ===")
	for _, D := range []int{5, 6, 7} {
		db := topology.NewDeBruijnDigraph(2, D)
		w := graph.UnitWeights(db.G)
		bound, lam, err := delay.BestWeightedDiameterBound(db.G, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  DB->(2,%d): matrix-norm bound %d ≤ true diameter %d (λ*=%.2f)\n",
			D, bound, db.G.Diameter(), lam)
	}
}
