// Butterfly study: for Wrapped Butterflies WBF(2,D) this example
// (a) verifies the Lemma 3.1 separator sets by BFS,
// (b) prints the paper's refined systolic and non-systolic lower bounds, and
// (c) measures real protocols against them across increasing D —
// reproducing the upper-vs-lower comparison that motivates Section 5
// (the paper quotes g(WBF(2,D)) ≤ 2.5·log n + O(√log n) against the new
// lower bound 2.0218·log n at s=4).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/separator"
	"repro/internal/topology"
	"repro/systolic"
)

func main() {
	fmt.Println("=== Separator verification (Lemma 3.1) ===")
	for _, D := range []int{4, 6, 8} {
		w := topology.NewWrappedButterfly(2, D)
		s := separator.WrappedButterfly(w)
		measured, err := s.Verify(w.G)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  WBF(2,%d): |V1|=%d |V2|=%d, min distance %d (3D/2 = %d)\n",
			D, len(s.V1), len(s.V2), measured, 3*D/2)
	}
	for _, D := range []int{3, 4, 5} {
		wd := topology.NewWrappedButterflyDigraph(2, D)
		s := separator.WrappedButterflyDirected(wd)
		measured, err := s.Verify(wd.G)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  WBF->(2,%d): min distance %d (promise 2D-1 = %d, exact)\n",
			D, measured, 2*D-1)
	}

	fmt.Println("\n=== Lower-bound coefficients for WBF(2,D) (Fig. 5 / Fig. 6 rows) ===")
	sep := bounds.LemmaSeparator(bounds.WBF, 2)
	for _, s := range []int{3, 4, 5, 6, 7, 8} {
		fmt.Printf("  s=%d: %.4f·log n\n", s, bounds.BestHalfDuplex(sep, s))
	}
	eInf, _ := bounds.SeparatorHalfDuplexInfinity(sep)
	fmt.Printf("  s=∞: %.4f·log n (vs 1.4404 general; paper quotes 1.9750)\n", eInf)

	fmt.Println("\n=== Upper vs lower on concrete instances ===")
	ctx := context.Background()
	for _, D := range []int{3, 4, 5} {
		net, err := systolic.New("wbf", systolic.Degree(2), systolic.Diameter(D))
		if err != nil {
			log.Fatal(err)
		}
		p, err := systolic.NewProtocol("periodic-half", net, 0)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := systolic.Analyze(ctx, net, p, systolic.WithRoundBudget(200000))
		if err != nil {
			log.Fatal(err)
		}
		lb := systolic.Evaluate(net, systolic.Request{Mode: systolic.HalfDuplex, Period: p.Period})
		fmt.Printf("  WBF(2,%d): n=%4d  measured %4d rounds  >=  bound %3d rounds (%.4f·log n, %s)\n",
			D, net.G.N(), rep.Measured, lb.Rounds, lb.Coefficient, lb.Source)
	}
}
