// Delay-matrix walkthrough: builds the delay digraph (Definition 3.3) of a
// real systolic protocol, evaluates its delay matrix M(λ) (Definition 3.4),
// and verifies the paper's chain of results numerically:
//
//   - the block decomposition by network vertex (norm property 8),
//   - the Lemma 4.3 norm cap λ·√p⌈s/2⌉·√p⌊s/2⌋,
//   - Theorem 4.1's inequality against the measured gossip time.
//
// The simulation runs through a systolic.Session stepped one round at a
// time, reading the dissemination curve off the live engine.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/bounds"
	"repro/internal/delay"
	"repro/systolic"
)

func main() {
	// A 4-systolic half-duplex protocol on the path P12.
	n := 12
	net, err := systolic.New("path", systolic.Nodes(n))
	if err != nil {
		log.Fatal(err)
	}
	p, err := systolic.NewProtocol("zigzag", net, 0)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := systolic.NewEngine(net, p, systolic.WithRoundBudget(10000))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	var curve []int
	for !sess.Done() {
		if _, err := sess.Step(context.Background(), 1); err != nil {
			log.Fatal(err)
		}
		curve = append(curve, sess.Knowledge())
	}
	res := systolic.Result{Rounds: sess.Rounds(), N: n}
	fmt.Printf("PathZigZag on P%d: gossip completes in %d rounds (s=%d systolic)\n", n, res.Rounds, p.Period)
	fmt.Printf("Dissemination curve (total knowledge per round, target %d): %v\n", n*n, curve)
	fmt.Printf("Frontier (newly learned items per round): %v\n\n", sess.Frontier())

	dg, err := delay.Build(net.G, p, res.Rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Delay digraph: %d activations, %d delay arcs (weights in [1,%d))\n\n",
		len(dg.Verts), len(dg.Arcs), dg.Horizon)

	fmt.Println("λ        ‖M(λ)‖    max-local   Lemma 4.3 cap")
	for _, lambda := range []float64{0.30, 0.50, 0.618, 0.6823, 0.80} {
		global := dg.Norm(lambda)
		local := dg.MaxLocalNorm(lambda)
		cap := bounds.WHalfDuplex(p.Period, lambda)
		fmt.Printf("%.4f   %.5f   %.5f     %.5f\n", lambda, global, local, cap)
	}

	// At the root λ₀ of the s=4 bound, ‖M(λ₀)‖ ≤ 1, so Theorem 4.1 applies:
	e, lambda0 := systolic.GeneralBound(systolic.HalfDuplex, p.Period)
	fmt.Printf("\nAt the root λ₀ = %.4f (e(4) = %.4f): ‖M(λ₀)‖ = %.4f ≤ 1\n",
		lambda0, e, dg.Norm(lambda0))
	logInv := math.Log2(1 / lambda0)
	rhs := math.Log2(float64(n))/logInv - 2*math.Log2(float64(res.Rounds))/logInv
	fmt.Printf("Theorem 4.1: measured t = %d > log₂(n)/log₂(1/λ₀) − 2log₂(t)/log₂(1/λ₀) = %.2f ✓\n",
		res.Rounds, rhs)
	fmt.Printf("(For a path the trivial bound n−1 = %d is stronger — the paper's bound is\n"+
		" logarithmic and shines on expander-like networks, not paths.)\n", n-1)
}
