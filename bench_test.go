// Benchmark harness: one benchmark per table/figure of the paper plus
// workload benchmarks for the substrates. Each figure benchmark regenerates
// the corresponding table from scratch per iteration and reports the
// headline coefficient as a metric, so `go test -bench=. -benchmem` both
// exercises and documents the reproduction. The printed tables themselves
// come from `go run ./cmd/gossiplb -figure N`.
package repro

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/bounds"
	"repro/internal/delay"
	"repro/internal/gossip"
	"repro/internal/matrix"
	"repro/internal/protocols"
	"repro/internal/search"
	"repro/internal/separator"
	"repro/internal/topology"
	"repro/systolic"
)

// BenchmarkFig4GeneralLowerBound regenerates the general e(s) table
// (Fig. 4): bisection solves of λ·√p⌈s/2⌉·√p⌊s/2⌋ = 1 for s = 3…8 and ∞.
func BenchmarkFig4GeneralLowerBound(b *testing.B) {
	var rows []bounds.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = bounds.Fig4(bounds.Fig4Periods)
	}
	b.ReportMetric(rows[0].E, "e(3)")
	b.ReportMetric(rows[len(rows)-1].E, "e(inf)")
}

// BenchmarkFig5TopologySystolic regenerates the per-topology systolic table
// (Fig. 5): Theorem 5.1 optimizations over λ for every family, degree and
// period, combined with the general bound per the paper's footnote.
func BenchmarkFig5TopologySystolic(b *testing.B) {
	periods := []int{3, 4, 5, 6, 7, 8}
	var rows []bounds.TopologyRow
	for i := 0; i < b.N; i++ {
		rows = bounds.Fig5([]int{2, 3}, periods)
	}
	// Headline cell: WBF(2,D) at s=4 (paper: 2.0218).
	for _, r := range rows {
		if r.Family == bounds.WBF && r.D == 2 && r.S == 4 {
			b.ReportMetric(r.E, "WBF2_s4")
		}
	}
}

// BenchmarkFig6NonSystolic regenerates the non-systolic per-topology table
// (Fig. 6), including the diameter fallbacks.
func BenchmarkFig6NonSystolic(b *testing.B) {
	var rows []bounds.TopologyRow
	for i := 0; i < b.N; i++ {
		rows = bounds.Fig6([]int{2, 3})
	}
	for _, r := range rows {
		if r.Family == bounds.DB && r.D == 2 {
			b.ReportMetric(r.E, "DB2_inf") // paper: 1.5876
		}
	}
}

// BenchmarkFig8FullDuplex regenerates the full-duplex table (Fig. 8).
func BenchmarkFig8FullDuplex(b *testing.B) {
	periods := []int{3, 4, 5, 6, 7, 8, bounds.SInfinity}
	var rows []bounds.TopologyRow
	for i := 0; i < b.N; i++ {
		rows = bounds.Fig8([]int{2, 3}, periods)
	}
	b.ReportMetric(float64(len(rows)), "cells")
}

// BenchmarkFig1to3LocalMatrices builds the structural objects of Figs. 1–3
// (Mx, Nx, Ox for a k=2 local protocol over many blocks) and evaluates the
// Lemma 4.3 norm chain.
func BenchmarkFig1to3LocalMatrices(b *testing.B) {
	lp, err := delay.NewLocalProtocol([]int{2, 1}, []int{1, 2})
	if err != nil {
		b.Fatal(err)
	}
	const h = 32
	lambda := 0.618
	var norm float64
	for i := 0; i < b.N; i++ {
		mx := lp.Mx(lambda, h)
		norm = matrix.Norm2(mx)
	}
	b.ReportMetric(norm, "norm")
	b.ReportMetric(lp.NormBound(lambda), "cap")
}

// BenchmarkFig7FullDuplexLocal builds the banded full-duplex local matrix of
// Fig. 7 and checks Lemma 6.1.
func BenchmarkFig7FullDuplexLocal(b *testing.B) {
	var norm, cap float64
	for i := 0; i < b.N; i++ {
		norm, cap = delay.Lemma61Check(4, 64, 0.5)
	}
	b.ReportMetric(norm, "norm")
	b.ReportMetric(cap, "cap")
}

// BenchmarkBroadcastConstants solves the d-bonacci broadcasting constants
// c(d) of [22,2] used by the Section 6 comparison.
func BenchmarkBroadcastConstants(b *testing.B) {
	var c2 float64
	for i := 0; i < b.N; i++ {
		c2 = bounds.BroadcastConstant(2)
		_ = bounds.BroadcastConstant(3)
		_ = bounds.BroadcastConstant(4)
		_ = bounds.BroadcastConstant(8)
	}
	b.ReportMetric(c2, "c(2)")
}

// BenchmarkDelayMatrixNorm measures the full pipeline on a real protocol:
// build the delay digraph of a periodic protocol on DB(2,5) and compute
// ‖M(λ₀)‖ by sparse power iteration.
func BenchmarkDelayMatrixNorm(b *testing.B) {
	db := topology.NewDeBruijn(2, 5)
	p := protocols.PeriodicHalfDuplex(db.G)
	res, err := gossip.Simulate(db.G, p, 100000)
	if err != nil {
		b.Fatal(err)
	}
	_, lambda := bounds.GeneralHalfDuplex(p.Period)
	b.ResetTimer()
	var norm float64
	for i := 0; i < b.N; i++ {
		dg, err := delay.Build(db.G, p, res.Rounds)
		if err != nil {
			b.Fatal(err)
		}
		norm = dg.Norm(lambda)
	}
	b.ReportMetric(norm, "norm_at_root")
}

// BenchmarkS2SystolicCycle exercises the Section 4 s=2 remark: 2-systolic
// gossip on a directed cycle takes Θ(n) rounds (n−1 lower bound).
func BenchmarkS2SystolicCycle(b *testing.B) {
	const n = 128
	g := topology.DirectedCycle(n)
	p := protocols.CycleTwoPhase(n)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := gossip.Simulate(g, p, 10*n)
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(n-1), "lower_bound")
}

// BenchmarkUpperVsLowerDeBruijn runs the full analysis pipeline (simulate +
// delay digraph + theorem checks) on DB(2,5).
func BenchmarkUpperVsLowerDeBruijn(b *testing.B) {
	net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(5))
	if err != nil {
		b.Fatal(err)
	}
	p := protocols.PeriodicHalfDuplex(net.G)
	ctx := context.Background()
	var rep *systolic.Report
	for i := 0; i < b.N; i++ {
		rep, err = systolic.Analyze(ctx, net, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Measured), "measured_rounds")
	b.ReportMetric(float64(rep.LowerBound.Rounds), "bound_rounds")
}

// BenchmarkUpperVsLowerWBF does the same on the Wrapped Butterfly, the
// paper's flagship example.
func BenchmarkUpperVsLowerWBF(b *testing.B) {
	net, err := systolic.New("wbf", systolic.Degree(2), systolic.Diameter(4))
	if err != nil {
		b.Fatal(err)
	}
	p := protocols.PeriodicHalfDuplex(net.G)
	ctx := context.Background()
	var rep *systolic.Report
	for i := 0; i < b.N; i++ {
		rep, err = systolic.Analyze(ctx, net, p, systolic.WithRoundBudget(200000))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Measured), "measured_rounds")
	b.ReportMetric(float64(rep.LowerBound.Rounds), "bound_rounds")
}

// BenchmarkUpperVsLowerHypercubeFullDuplex measures the optimal
// dimension-exchange protocol against the full-duplex bound.
func BenchmarkUpperVsLowerHypercubeFullDuplex(b *testing.B) {
	const D = 7
	net, err := systolic.New("hypercube", systolic.Dimension(D))
	if err != nil {
		b.Fatal(err)
	}
	p := protocols.HypercubeExchange(D)
	ctx := context.Background()
	var rep *systolic.Report
	for i := 0; i < b.N; i++ {
		rep, err = systolic.Analyze(ctx, net, p, systolic.WithRoundBudget(1000))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Measured), "measured_rounds")
}

// BenchmarkSweepReproduceGrid runs the cmd/reproduce upper-vs-lower grid
// through the parallel Sweep engine (GOMAXPROCS workers, deterministic
// result order) — the workload that replaced the old serial loop.
func BenchmarkSweepReproduceGrid(b *testing.B) {
	jobs := []systolic.SweepJob{
		{Label: "db-periodic", Kind: "debruijn",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(5)},
			Protocol: systolic.UseProtocol("periodic-half", 0)},
		{Label: "wbf-periodic", Kind: "wbf",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(4)},
			Protocol: systolic.UseProtocol("periodic-half", 0)},
		{Label: "kautz-full", Kind: "kautz",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(4)},
			Protocol: systolic.UseProtocol("periodic-full", 0)},
		{Label: "bf-full", Kind: "butterfly",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(3)},
			Protocol: systolic.UseProtocol("periodic-full", 0)},
		{Label: "q6-exchange", Kind: "hypercube",
			Params:   []systolic.Param{systolic.Dimension(6)},
			Protocol: systolic.UseProtocol("hypercube", 0)},
		{Label: "db-greedy", Kind: "debruijn",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(5)},
			Protocol: systolic.UseProtocol("greedy-half", 100000)},
	}
	ctx := context.Background()
	var ok int
	for i := 0; i < b.N; i++ {
		results, err := systolic.Sweep(ctx, jobs, systolic.WithRoundBudget(200000))
		if err != nil {
			b.Fatal(err)
		}
		ok = 0
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if r.Report.Measured >= r.Report.LowerBound.Rounds && r.Report.TheoremRespected {
				ok++
			}
		}
	}
	b.ReportMetric(float64(ok), "cells_ok")
}

// BenchmarkSessionRun measures the resumable engine end to end: open a
// session on DB(2,7), step it in 8-round chunks to completion.
func BenchmarkSessionRun(b *testing.B) {
	net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(7))
	if err != nil {
		b.Fatal(err)
	}
	p := protocols.PeriodicHalfDuplex(net.G)
	ctx := context.Background()
	var rounds int
	for i := 0; i < b.N; i++ {
		sess, err := systolic.NewEngine(net, p)
		if err != nil {
			b.Fatal(err)
		}
		for !sess.Done() {
			if _, err := sess.Step(ctx, 8); err != nil {
				b.Fatal(err)
			}
		}
		rounds = sess.Rounds()
		sess.Close()
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkSessionCheckpoint measures Snapshot + JSON round trip + Restore
// of a mid-flight DB(2,7) session — the cost of pausing and resuming.
func BenchmarkSessionCheckpoint(b *testing.B) {
	net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(7))
	if err != nil {
		b.Fatal(err)
	}
	p := protocols.PeriodicHalfDuplex(net.G)
	ctx := context.Background()
	sess, err := systolic.NewEngine(net, p)
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(ctx, 10); err != nil {
		b.Fatal(err)
	}
	target, err := systolic.NewEngine(net, p)
	if err != nil {
		b.Fatal(err)
	}
	defer target.Close()
	var buf bytes.Buffer
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := systolic.WriteCheckpoint(&buf, sess.Snapshot()); err != nil {
			b.Fatal(err)
		}
		size = buf.Len() // ReadCheckpoint drains the buffer below
		ck, err := systolic.ReadCheckpoint(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := target.Restore(ck); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(size))
}

// BenchmarkSweepStreamReproduceGrid runs the reproduce grid through the
// streaming sweep, draining results in completion order.
func BenchmarkSweepStreamReproduceGrid(b *testing.B) {
	jobs := []systolic.SweepJob{
		{Label: "db-periodic", Kind: "debruijn",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(5)},
			Protocol: systolic.UseProtocol("periodic-half", 0)},
		{Label: "wbf-periodic", Kind: "wbf",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(4)},
			Protocol: systolic.UseProtocol("periodic-half", 0)},
		{Label: "kautz-full", Kind: "kautz",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(4)},
			Protocol: systolic.UseProtocol("periodic-full", 0)},
		{Label: "q6-exchange", Kind: "hypercube",
			Params:   []systolic.Param{systolic.Dimension(6)},
			Protocol: systolic.UseProtocol("hypercube", 0)},
	}
	ctx := context.Background()
	var ok int
	for i := 0; i < b.N; i++ {
		ok = 0
		for res := range systolic.SweepStream(ctx, jobs, systolic.WithRoundBudget(200000)) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if res.Report.Measured >= res.Report.LowerBound.Rounds {
				ok++
			}
		}
	}
	b.ReportMetric(float64(ok), "cells_ok")
}

// BenchmarkSimulationEngine measures raw simulator throughput: periodic
// full-duplex gossip on a 16×16 torus.
func BenchmarkSimulationEngine(b *testing.B) {
	g := topology.Torus(16, 16)
	p := protocols.PeriodicFullDuplex(g)
	for i := 0; i < b.N; i++ {
		if _, err := gossip.Simulate(g, p, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyGossip measures the greedy matching heuristic on K(2,5).
func BenchmarkGreedyGossip(b *testing.B) {
	k := topology.NewKautz(2, 5)
	for i := 0; i < b.N; i++ {
		if _, err := protocols.GreedyGossip(k.G, gossip.HalfDuplex, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeparatorVerification measures the BFS verification of the
// marker separator on DB(2,10) (1024 vertices).
func BenchmarkSeparatorVerification(b *testing.B) {
	db := topology.NewDeBruijnDigraph(2, 10)
	s := separator.DeBruijnMarker(db)
	for i := 0; i < b.N; i++ {
		if _, err := s.Verify(db.G); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeparatorOptimizer measures a single Theorem 5.1 optimization.
func BenchmarkSeparatorOptimizer(b *testing.B) {
	sep := bounds.LemmaSeparator(bounds.WBF, 2)
	var e float64
	for i := 0; i < b.N; i++ {
		e, _ = bounds.SeparatorHalfDuplex(sep, 4)
	}
	b.ReportMetric(e, "WBF2_s4")
}

// BenchmarkTraceGossip measures the dissemination-curve recorder on the
// hypercube doubling workload (the "series" view of the evaluation).
func BenchmarkTraceGossip(b *testing.B) {
	const D = 8
	g := topology.Hypercube(D)
	p := protocols.HypercubeExchange(D)
	var tr *gossip.Trace
	for i := 0; i < b.N; i++ {
		var err error
		tr, err = gossip.TraceGossip(g, p, 10*D)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Complete), "rounds")
}

// BenchmarkProtocolEncode measures schedule serialization throughput.
func BenchmarkProtocolEncode(b *testing.B) {
	p := protocols.PeriodicHalfDuplex(topology.NewDeBruijn(2, 7).G)
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := p.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkProtocolDecode measures schedule parsing throughput.
func BenchmarkProtocolDecode(b *testing.B) {
	p := protocols.PeriodicHalfDuplex(topology.NewDeBruijn(2, 7).G)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := gossip.Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractLocal measures per-vertex local-protocol extraction across
// a whole network.
func BenchmarkExtractLocal(b *testing.B) {
	g := topology.NewDeBruijn(2, 6).G
	p := protocols.PeriodicHalfDuplex(g)
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			_, _ = delay.ExtractLocal(p, v)
		}
	}
}

// BenchmarkBroadcastUpperVsLower measures the broadcast pipeline on WBF(2,5).
func BenchmarkBroadcastUpperVsLower(b *testing.B) {
	net, err := systolic.New("wbf", systolic.Degree(2), systolic.Diameter(5))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var rep *systolic.BroadcastReport
	for i := 0; i < b.N; i++ {
		rep, err = systolic.AnalyzeBroadcast(ctx, net, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Measured), "measured_rounds")
	b.ReportMetric(float64(rep.CBound), "bound_rounds")
}

// BenchmarkExhaustiveSearch measures the exact-optimum search on K5
// full-duplex (the workload behind the "exact optima" experiment table).
func BenchmarkExhaustiveSearch(b *testing.B) {
	g := topology.Complete(5)
	var opt int
	for i := 0; i < b.N; i++ {
		var err error
		opt, err = search.OptimalGossipTime(g, gossip.FullDuplex, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(opt), "optimal_rounds")
}

// BenchmarkTopologyGeneration measures generator cost for the largest
// networks used in the experiments.
func BenchmarkTopologyGeneration(b *testing.B) {
	b.Run("DB(2,12)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topology.NewDeBruijnDigraph(2, 12)
		}
	})
	b.Run("WBF(2,8)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topology.NewWrappedButterfly(2, 8)
		}
	})
	b.Run("K(2,10)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topology.NewKautzDigraph(2, 10)
		}
	})
}
