package systolic

import (
	"context"
	"testing"
)

// certifyBenchSetup builds the hypercube d=12 workload of the acceptance
// criterion: 4096 vertices under the 12-systolic full-duplex dimension
// exchange. The diameter memo is primed off the timer (both paths share it).
func certifyBenchSetup(b *testing.B) (*Network, *Protocol) {
	b.Helper()
	net, err := New("hypercube", Dimension(12))
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewProtocol("hypercube", net, DefaultRoundBudget)
	if err != nil {
		b.Fatal(err)
	}
	net.G.Diameter()
	return net, p
}

// BenchmarkCertify measures the cached certification path: the compiled
// Program and DelayPlan are built once (as the serving layer's LRUs hold
// them) and every iteration runs a fresh session plus the certification —
// no schedule compile, no delay-digraph rebuild, memoized ‖M(λ₀)‖. The CI
// gate requires this to stay ≥2× faster than BenchmarkCertifyRebuild.
func BenchmarkCertify(b *testing.B) {
	net, p := certifyBenchSetup(b)
	pr, err := CompileProtocol(net, p)
	if err != nil {
		b.Fatal(err)
	}
	dp, err := pr.DelayPlan()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	run := func() *Certificate {
		sess, err := NewEngineFromProgram(pr, WithDelayPlan(dp), WithWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		cert, err := sess.Certify(ctx)
		if err != nil {
			b.Fatal(err)
		}
		return cert
	}
	if cert := run(); !cert.Complete || !cert.TheoremRespected {
		b.Fatalf("warm-up certificate unexpected: %+v", cert)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkCertifyRebuild is the pre-refactor rebuild-per-call Analyze
// path on the same workload: every iteration validates and compiles the
// schedule, rebuilds the delay digraph and recomputes ‖M(λ₀)‖ from scratch.
func BenchmarkCertifyRebuild(b *testing.B) {
	net, p := certifyBenchSetup(b)
	ctx := context.Background()
	rep, err := Analyze(ctx, net, p, WithWorkers(1))
	if err != nil || !rep.TheoremRespected {
		b.Fatalf("warm-up analyze: %v (%+v)", err, rep)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(ctx, net, p, WithWorkers(1)); err != nil {
			b.Fatal(err)
		}
	}
}
