package systolic

import (
	"fmt"
	"sort"
	"strings"
)

// Named topology parameters. Each registered Topology declares, via
// ParamNames, which of these it requires; New rejects instantiations with a
// missing parameter.
const (
	// ParamNodes is the vertex count n (path, cycle, complete).
	ParamNodes = "nodes"
	// ParamDegree is the degree parameter d of the paper families and the
	// arity of trees.
	ParamDegree = "degree"
	// ParamDiameter is the diameter parameter D of the paper families
	// (BF, WBF, DB, K).
	ParamDiameter = "diameter"
	// ParamDimension is the dimension D of hypercubes, shuffle-exchange
	// networks and cube-connected cycles.
	ParamDimension = "dimension"
	// ParamRows and ParamCols are the grid/torus side lengths.
	ParamRows = "rows"
	ParamCols = "cols"
	// ParamDepth is the depth of complete d-ary trees.
	ParamDepth = "depth"
)

// Params is an immutable bag of named integer parameters for a topology
// builder. Construct one with MakeParams or pass Param options directly to
// New.
type Params struct {
	values map[string]int
}

// Param sets one named parameter; the constructors below (Nodes, Degree,
// Diameter, ...) are the public vocabulary.
type Param func(*Params)

func setParam(name string, v int) Param {
	return func(p *Params) {
		if p.values == nil {
			p.values = make(map[string]int)
		}
		p.values[name] = v
	}
}

// Nodes sets the vertex count n.
func Nodes(n int) Param { return setParam(ParamNodes, n) }

// Degree sets the degree parameter d.
func Degree(d int) Param { return setParam(ParamDegree, d) }

// Diameter sets the diameter parameter D of the paper families.
func Diameter(D int) Param { return setParam(ParamDiameter, D) }

// Dimension sets the dimension D of hypercube-like networks.
func Dimension(D int) Param { return setParam(ParamDimension, D) }

// Rows sets the grid/torus row count.
func Rows(a int) Param { return setParam(ParamRows, a) }

// Cols sets the grid/torus column count.
func Cols(b int) Param { return setParam(ParamCols, b) }

// Depth sets the tree depth.
func Depth(k int) Param { return setParam(ParamDepth, k) }

// MakeParams folds Param options into a Params bag.
func MakeParams(ps ...Param) Params {
	var out Params
	for _, p := range ps {
		p(&out)
	}
	return out
}

// Get returns the value of a named parameter and whether it was set.
func (p Params) Get(name string) (int, bool) {
	v, ok := p.values[name]
	return v, ok
}

// Names lists the set parameter names in sorted order.
func (p Params) Names() []string {
	names := make([]string, 0, len(p.values))
	for name := range p.values {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Canonical renders the bag as comma-joined "name=value" pairs in sorted
// name order — a stable textual identity independent of the order the
// parameters were supplied in. It is the form RequestKey embeds.
//
//gossip:keywriter Params
func (p Params) Canonical() string {
	var sb strings.Builder
	for i, name := range p.Names() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%d", name, p.values[name])
	}
	return sb.String()
}

// need fetches a required parameter, failing with ErrBadParam when unset.
func (p Params) need(kind, name string) (int, error) {
	v, ok := p.values[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s requires %s (e.g. systolic.%s)", ErrBadParam, kind, name, paramHint(name))
	}
	return v, nil
}

// atLeast fetches a required parameter and enforces a lower bound.
func (p Params) atLeast(kind, name string, min int) (int, error) {
	v, err := p.need(kind, name)
	if err != nil {
		return 0, err
	}
	if v < min {
		return 0, fmt.Errorf("%w: %s requires %s ≥ %d, got %d", ErrBadParam, kind, name, min, v)
	}
	return v, nil
}

func paramHint(name string) string {
	switch name {
	case ParamNodes:
		return "Nodes(8)"
	case ParamDegree:
		return "Degree(2)"
	case ParamDiameter:
		return "Diameter(5)"
	case ParamDimension:
		return "Dimension(4)"
	case ParamRows:
		return "Rows(3)"
	case ParamCols:
		return "Cols(4)"
	case ParamDepth:
		return "Depth(3)"
	}
	return name
}

// maxInstanceVertices bounds how large a MATERIALIZED instance the
// registry will build; beyond it the adjacency lists would allocate
// gigabytes. Generator-eligible kinds keep building past this line as
// implicit (generator-only) networks, up to maxImplicitVertices.
const maxInstanceVertices = 1 << 26

// maxImplicitVertices bounds implicit (generator-only) instances. The
// streaming kernels carry only O(n) frontier words, so the ceiling is set
// by frontier memory, not arcs: 2^28 vertices is 4 GiB of packed frontier
// (two 8-byte words per vertex) — the practical edge of one scan on a
// large box.
const maxImplicitVertices = 1 << 28

// DefaultImplicitScanNodes is the vertex count above which
// AnalyzeBroadcastAll prefers the streaming generator kernels for networks
// that carry both representations: past it the CSR lowering costs more
// than the generator path saves. Registry-built networks at most this size
// are always materialized, so the heuristic only fires for hand-built
// Networks with an attached generator; force the streaming kernels at any
// size with WithImplicitScan.
const DefaultImplicitScanNodes = materializeThreshold

// maxCompleteVertices caps the complete graph separately: K_n materializes
// n² arcs, so the generic vertex ceiling would still admit gigabyte-scale
// builds (n=8192 is already ~67M arcs). 2048² ≈ 4.2M arcs stays modest.
const maxCompleteVertices = 2048

// materializeThreshold is the vertex count above which generator-eligible
// registry builders skip materialization and return an implicit network.
// At or below it both representations are attached (G for schedule
// compilers and bounds, Gen for the streaming kernels); above it only Gen.
// 2^19 keeps every materialized build's adjacency-plus-arc-set footprint
// modest and puts the 2^20-node hypercube (dimension 20) on the implicit
// side — the scale tier's acceptance point.
const materializeThreshold = 1 << 19

// checkSize rejects parameterizations whose vertex count base^exp (times
// factor) exceeds the limit, before the generator allocates.
func checkSize(kind string, base, exp, factor int) error {
	return checkSizeLimit(kind, base, exp, factor, maxInstanceVertices)
}

// checkImplicitSize is checkSize with the generator-only ceiling: used by
// registry builders for generator-eligible kinds, which never allocate
// adjacency and so tolerate far larger n.
func checkImplicitSize(kind string, base, exp, factor int) error {
	return checkSizeLimit(kind, base, exp, factor, maxImplicitVertices)
}

func checkSizeLimit(kind string, base, exp, factor, limit int) error {
	n := factor
	if n > limit || n <= 0 {
		return fmt.Errorf("%w: %s instance too large (> %d vertices)", ErrBadParam, kind, limit)
	}
	for i := 0; i < exp; i++ {
		n *= base
		if n > limit || n <= 0 {
			return fmt.Errorf("%w: %s instance too large (> %d vertices)", ErrBadParam, kind, limit)
		}
	}
	return nil
}

// sizeOf computes factor·base^exp without overflow concerns after a
// checkSizeLimit pass; callers use it to decide materialized vs implicit.
func sizeOf(base, exp, factor int) int {
	n := factor
	for i := 0; i < exp; i++ {
		n *= base
	}
	return n
}
