package systolic

import "runtime"

// DefaultRoundBudget caps simulated rounds when no WithRoundBudget option
// is given.
const DefaultRoundBudget = 100000

// Observer receives per-round progress from Simulate/Analyze; install one
// with WithTrace. Calls are sequential within one simulation but a Sweep
// runs jobs concurrently, so an observer shared across jobs must be
// safe for concurrent use.
type Observer interface {
	// Round is called after each executed round with the 1-based round
	// number, the current knowledge count (sum over processors of known
	// items) and the target count at which dissemination is complete.
	Round(round, knowledge, target int)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(round, knowledge, target int)

// Round implements Observer.
func (f ObserverFunc) Round(round, knowledge, target int) { f(round, knowledge, target) }

// ScanObserver is the trace seam of multi-source broadcast scans. A plain
// Observer cannot interpret AnalyzeBroadcastAll progress — its Round
// carries no source identity, and a packed scan steps 64 sources per
// round — so an observer that additionally implements ScanObserver
// receives ScanRound instead of Round: the 0-based batch of up to 64
// sources being stepped, the 1-based round within that batch, and the
// batch's informed column count (the number of (vertex, source) pairs
// already informed, out of totalColumns = active sources × n). Columns are
// monotone within a batch and reach totalColumns when every source of the
// batch completes; the packed kernel emits each (batch, round) once, while
// the scalar reference kernel re-emits a batch's rounds as it advances the
// batch lane by lane. Scans may step batches concurrently (WithWorkers),
// so implementations must be safe for concurrent use.
type ScanObserver interface {
	Observer
	ScanRound(batch, round, informedColumns, totalColumns int)
}

type config struct {
	budget         int
	observer       Observer
	workers        int
	shardThreshold int
	delayPlan      *DelayPlan
	source         int
	sources        []int
	scalarScan     bool
	implicitScan   bool
	maxMemory      int64
}

func newConfig(opts []Option) config {
	cfg := config{
		budget:         DefaultRoundBudget,
		workers:        runtime.GOMAXPROCS(0),
		shardThreshold: DefaultShardThreshold,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.budget < 1 {
		cfg.budget = 1
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.shardThreshold < 1 {
		cfg.shardThreshold = 1
	}
	return cfg
}

// Option configures Analyze, Simulate, AnalyzeBroadcast and Sweep.
type Option func(*config)

// WithRoundBudget caps the number of simulated rounds (default
// DefaultRoundBudget). Hitting the cap before completion yields
// ErrIncomplete.
func WithRoundBudget(n int) Option { return func(c *config) { c.budget = n } }

// WithTrace installs an observer that is called after every simulated
// round — the hook behind dissemination curves and progress displays.
func WithTrace(o Observer) Option { return func(c *config) { c.observer = o } }

// WithWorkers overrides the worker-pool size (default GOMAXPROCS): the
// number of concurrent jobs in Sweep/SweepStream, and the number of
// stepping goroutines a session shards across once the network reaches the
// shard threshold. WithWorkers(1) forces serial execution everywhere.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithShardThreshold overrides the vertex count at which a multi-worker
// session shards Step across its pool (default DefaultShardThreshold).
// Results are byte-identical to serial either way; lower it only to force
// sharding on small instances (tests do).
func WithShardThreshold(n int) Option { return func(c *config) { c.shardThreshold = n } }

// WithSource selects the broadcast source vertex (default 0) of a session
// running a generator-backed protocol — those sessions simulate
// single-source dissemination on the packed frontier, and this is the seam
// that picks the source without re-compiling the program. Out-of-range
// sources fail session construction with ErrBadParam. Gossip sessions and
// the explicit-source entry points (NewBroadcastEngine, CertifyBroadcast)
// ignore it.
func WithSource(v int) Option { return func(c *config) { c.source = v } }

// WithSources restricts AnalyzeBroadcastAll to the given source vertices,
// in the given order: the report's Rounds[i] measures Sources[i], and the
// extremes and statistics cover only the subset. Sources must be in range
// and free of duplicates (ErrBadParam otherwise); nil — or not passing the
// option — scans every vertex. A subset scan equals the corresponding
// rows of a full scan, and is the seam source-sharded cluster scans
// partition on.
func WithSources(sources []int) Option { return func(c *config) { c.sources = sources } }

// WithScalarScan forces AnalyzeBroadcastAll onto the per-source scalar
// frontier kernel instead of the bit-parallel packed kernel — the
// reference implementation the packed engine is differentially tested and
// benchmarked against. Reports and errors are identical either way; only
// the speed differs (the packed kernel steps 64 sources per pass).
func WithScalarScan() Option { return func(c *config) { c.scalarScan = true } }

// WithImplicitScan forces AnalyzeBroadcastAll onto the streaming
// generator kernel even when the network is materialized (it needs an
// attached generator — ErrBadParam otherwise). Reports and errors are
// identical to the CSR kernels; only the footprint differs: the generator
// path never lowers the flooding CSR, so its working memory is the
// frontier buffers alone. Without this option the scan picks the
// streaming kernel automatically for implicit networks, for materialized
// networks above DefaultImplicitScanNodes, and when the CSR would not fit
// WithMaxMemory.
func WithImplicitScan() Option { return func(c *config) { c.implicitScan = true } }

// WithMaxMemory caps the estimated working memory of AnalyzeBroadcastAll
// in bytes — the guard rail for serving layers that must not let one scan
// balloon the process. A scan whose CSR kernel would exceed the cap falls
// back to the streaming generator kernel (when the network carries one);
// if every available kernel exceeds the cap the scan fails with
// ErrMemoryBudget instead of allocating. Zero or negative means no cap.
func WithMaxMemory(bytes int64) Option { return func(c *config) { c.maxMemory = bytes } }

// WithDelayPlan hands Certify a pre-compiled delay lowering
// (CompileDelayPlan / Program.DelayPlan) so repeated certifications of the
// same schedule never rebuild the delay digraph: the plan's memoized
// instances and norm evaluations are shared across sessions. A plan whose
// protocol fingerprint does not match the session's schedule is ignored
// (the session compiles its own).
func WithDelayPlan(dp *DelayPlan) Option { return func(c *config) { c.delayPlan = dp } }
