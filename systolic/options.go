package systolic

import "runtime"

// DefaultRoundBudget caps simulated rounds when no WithRoundBudget option
// is given.
const DefaultRoundBudget = 100000

// Observer receives per-round progress from Simulate/Analyze; install one
// with WithTrace. Calls are sequential within one simulation but a Sweep
// runs jobs concurrently, so an observer shared across jobs must be
// safe for concurrent use.
type Observer interface {
	// Round is called after each executed round with the 1-based round
	// number, the current knowledge count (sum over processors of known
	// items) and the target count at which dissemination is complete.
	Round(round, knowledge, target int)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(round, knowledge, target int)

// Round implements Observer.
func (f ObserverFunc) Round(round, knowledge, target int) { f(round, knowledge, target) }

type config struct {
	budget   int
	observer Observer
	workers  int
}

func newConfig(opts []Option) config {
	cfg := config{budget: DefaultRoundBudget, workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.budget < 1 {
		cfg.budget = 1
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	return cfg
}

// Option configures Analyze, Simulate, AnalyzeBroadcast and Sweep.
type Option func(*config)

// WithRoundBudget caps the number of simulated rounds (default
// DefaultRoundBudget). Hitting the cap before completion yields
// ErrIncomplete.
func WithRoundBudget(n int) Option { return func(c *config) { c.budget = n } }

// WithTrace installs an observer that is called after every simulated
// round — the hook behind dissemination curves and progress displays.
func WithTrace(o Observer) Option { return func(c *config) { c.observer = o } }

// WithWorkers overrides the Sweep worker-pool size (default GOMAXPROCS).
// It has no effect on single-run entry points.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }
