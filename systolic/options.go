package systolic

import "runtime"

// DefaultRoundBudget caps simulated rounds when no WithRoundBudget option
// is given.
const DefaultRoundBudget = 100000

// Observer receives per-round progress from Simulate/Analyze; install one
// with WithTrace. Calls are sequential within one simulation but a Sweep
// runs jobs concurrently, so an observer shared across jobs must be
// safe for concurrent use.
type Observer interface {
	// Round is called after each executed round with the 1-based round
	// number, the current knowledge count (sum over processors of known
	// items) and the target count at which dissemination is complete.
	Round(round, knowledge, target int)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(round, knowledge, target int)

// Round implements Observer.
func (f ObserverFunc) Round(round, knowledge, target int) { f(round, knowledge, target) }

type config struct {
	budget         int
	observer       Observer
	workers        int
	shardThreshold int
	delayPlan      *DelayPlan
}

func newConfig(opts []Option) config {
	cfg := config{
		budget:         DefaultRoundBudget,
		workers:        runtime.GOMAXPROCS(0),
		shardThreshold: DefaultShardThreshold,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.budget < 1 {
		cfg.budget = 1
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.shardThreshold < 1 {
		cfg.shardThreshold = 1
	}
	return cfg
}

// Option configures Analyze, Simulate, AnalyzeBroadcast and Sweep.
type Option func(*config)

// WithRoundBudget caps the number of simulated rounds (default
// DefaultRoundBudget). Hitting the cap before completion yields
// ErrIncomplete.
func WithRoundBudget(n int) Option { return func(c *config) { c.budget = n } }

// WithTrace installs an observer that is called after every simulated
// round — the hook behind dissemination curves and progress displays.
func WithTrace(o Observer) Option { return func(c *config) { c.observer = o } }

// WithWorkers overrides the worker-pool size (default GOMAXPROCS): the
// number of concurrent jobs in Sweep/SweepStream, and the number of
// stepping goroutines a session shards across once the network reaches the
// shard threshold. WithWorkers(1) forces serial execution everywhere.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithShardThreshold overrides the vertex count at which a multi-worker
// session shards Step across its pool (default DefaultShardThreshold).
// Results are byte-identical to serial either way; lower it only to force
// sharding on small instances (tests do).
func WithShardThreshold(n int) Option { return func(c *config) { c.shardThreshold = n } }

// WithDelayPlan hands Certify a pre-compiled delay lowering
// (CompileDelayPlan / Program.DelayPlan) so repeated certifications of the
// same schedule never rebuild the delay digraph: the plan's memoized
// instances and norm evaluations are shared across sessions. A plan whose
// protocol fingerprint does not match the session's schedule is ignored
// (the session compiles its own).
func WithDelayPlan(dp *DelayPlan) Option { return func(c *config) { c.delayPlan = dp } }
