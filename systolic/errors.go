package systolic

import (
	"errors"

	"repro/internal/gossip"
)

var (
	// ErrUnknownTopology is returned by New and Lookup for a kind that is
	// not in the registry; the error text lists the registered kinds.
	ErrUnknownTopology = errors.New("systolic: unknown topology")
	// ErrBadParam is returned when a topology parameter is missing, out of
	// range, or would produce an unreasonably large instance.
	ErrBadParam = errors.New("systolic: bad topology parameter")
	// ErrUnknownProtocol is returned by NewProtocol for a name that is not
	// in the protocol catalog.
	ErrUnknownProtocol = errors.New("systolic: unknown protocol")
	// ErrIncomplete is returned when a simulation hits its round budget
	// before dissemination completes.
	ErrIncomplete = gossip.ErrIncomplete
	// ErrBadCheckpoint is returned by Restore and ReadCheckpoint when a
	// checkpoint fails validation: wrong version, wrong network or
	// protocol, or internally inconsistent state. The wrapped text says
	// which check failed.
	ErrBadCheckpoint = errors.New("systolic: invalid checkpoint")
	// ErrWrongMode is returned when a report accessor is called on a
	// session of the other mode: Analyze on a broadcast session, or
	// AnalyzeBroadcast on a gossip session.
	ErrWrongMode = errors.New("systolic: wrong session mode")
	// ErrUnreachable is returned by AnalyzeBroadcastAll when some source
	// cannot reach every vertex, so no budget would ever complete the
	// broadcast (deliberately distinct from ErrIncomplete).
	ErrUnreachable = errors.New("systolic: source cannot reach every vertex")
)
