package systolic

import (
	"errors"
	"fmt"

	"repro/internal/gossip"
)

var (
	// ErrUnknownTopology is returned by New and Lookup for a kind that is
	// not in the registry; the error text lists the registered kinds.
	ErrUnknownTopology = errors.New("systolic: unknown topology")
	// ErrBadParam is returned when a topology parameter is missing, out of
	// range, or would produce an unreasonably large instance.
	ErrBadParam = errors.New("systolic: bad topology parameter")
	// ErrUnknownProtocol is returned by NewProtocol for a name that is not
	// in the protocol catalog.
	ErrUnknownProtocol = errors.New("systolic: unknown protocol")
	// ErrIncomplete is returned when a simulation hits its round budget
	// before dissemination completes.
	ErrIncomplete = gossip.ErrIncomplete
	// ErrBadCheckpoint is returned by Restore and ReadCheckpoint when a
	// checkpoint fails validation: wrong version, wrong network or
	// protocol, or internally inconsistent state. The wrapped text says
	// which check failed.
	ErrBadCheckpoint = errors.New("systolic: invalid checkpoint")
	// ErrWrongMode is returned when a report accessor is called on a
	// session of the other mode: Analyze on a broadcast session, or
	// AnalyzeBroadcast on a gossip session.
	ErrWrongMode = errors.New("systolic: wrong session mode")
	// ErrUnreachable is returned by AnalyzeBroadcastAll when some source
	// cannot reach every vertex, so no budget would ever complete the
	// broadcast (deliberately distinct from ErrIncomplete).
	ErrUnreachable = errors.New("systolic: source cannot reach every vertex")
	// ErrImplicit is returned when an operation that walks explicit
	// adjacency (protocol compilation, BFS schedules, delay digraphs,
	// bound evaluation) is invoked on an implicit network — one built past
	// the materialization threshold, carrying only an arithmetic
	// generator. AnalyzeBroadcastAll and CertifyBroadcast stream such
	// networks; everything else needs a materializable instance.
	ErrImplicit = errors.New("systolic: operation requires a materialized network")
	// ErrMemoryBudget is returned when a scan's estimated working memory
	// exceeds the WithMaxMemory cap on every available kernel.
	ErrMemoryBudget = errors.New("systolic: scan exceeds the memory budget")
)

// errImplicitOp wraps ErrImplicit with the failing operation and network.
// The hint names what an implicit instance does support: the streaming
// broadcast scans, and the generator-compiled protocol subset on
// schedule-carrying kinds.
func errImplicitOp(op, name string) error {
	return fmt.Errorf("systolic: %s %s: %w (implicit instance; AnalyzeBroadcastAll and CertifyBroadcast stream it, and the cycle2, hypercube, periodic-full, periodic-half and periodic-interleaved protocols compile to generator programs on cycle, hypercube, torus, ccc and butterfly)", op, name, ErrImplicit)
}
