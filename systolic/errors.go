package systolic

import (
	"errors"

	"repro/internal/gossip"
)

var (
	// ErrUnknownTopology is returned by New and Lookup for a kind that is
	// not in the registry; the error text lists the registered kinds.
	ErrUnknownTopology = errors.New("systolic: unknown topology")
	// ErrBadParam is returned when a topology parameter is missing, out of
	// range, or would produce an unreasonably large instance.
	ErrBadParam = errors.New("systolic: bad topology parameter")
	// ErrUnknownProtocol is returned by NewProtocol for a name that is not
	// in the protocol catalog.
	ErrUnknownProtocol = errors.New("systolic: unknown protocol")
	// ErrIncomplete is returned when a simulation hits its round budget
	// before dissemination completes.
	ErrIncomplete = gossip.ErrIncomplete
)
