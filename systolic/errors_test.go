package systolic

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
)

// TestAnalyzeWrongModeSentinel: calling the gossip report accessor on a
// broadcast session (and vice versa) is a typed error callers can dispatch
// on, not ad-hoc text.
func TestAnalyzeWrongModeSentinel(t *testing.T) {
	net, p := sessionNet(t)
	ctx := context.Background()

	bsess, err := NewBroadcastEngine(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bsess.Close()
	if _, err := bsess.Analyze(ctx); !errors.Is(err, ErrWrongMode) {
		t.Errorf("Analyze on broadcast session: err = %v, want ErrWrongMode", err)
	}

	gsess, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer gsess.Close()
	if _, err := gsess.AnalyzeBroadcast(ctx); !errors.Is(err, ErrWrongMode) {
		t.Errorf("AnalyzeBroadcast on gossip session: err = %v, want ErrWrongMode", err)
	}
}

// TestBroadcastAllUnreachableSentinel: a source that cannot inform every
// vertex fails with ErrUnreachable, distinct from ErrIncomplete — raising
// the budget cannot fix an unreachable vertex, and callers must be able to
// tell the two apart.
func TestBroadcastAllUnreachableSentinel(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	// Vertex 2 has no outgoing arcs: broadcasts from it stall immediately.
	net := Plain("one-way-path", g)

	_, err := AnalyzeBroadcastAll(context.Background(), net)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("broadcast-all on a one-way path: err = %v, want ErrUnreachable", err)
	}
	if errors.Is(err, ErrIncomplete) {
		t.Fatal("ErrUnreachable must not alias ErrIncomplete: callers retry ErrIncomplete with a bigger budget")
	}
}
