package systolic

import (
	"context"
	"testing"
)

// BenchmarkCertifyScenario measures the Monte-Carlo certification on the
// acceptance workload's network — hypercube d=10 (1024 vertices) under 5%
// uniform loss — at 64 trials per iteration with the compiled Program and
// DelayPlan cached, the way the serving layer runs it. Trials fan across
// the worker pool; each worker reuses one state and one trial object, so
// the steady-state cost is the masked stepping itself.
func BenchmarkCertifyScenario(b *testing.B) {
	net, err := New("hypercube", Dimension(10))
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewProtocol("periodic-full", net, DefaultRoundBudget)
	if err != nil {
		b.Fatal(err)
	}
	net.G.Diameter()
	pr, err := CompileProtocol(net, p)
	if err != nil {
		b.Fatal(err)
	}
	dp, err := pr.DelayPlan()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sc := &Scenario{Loss: 0.05, Seed: 1}
	cert, err := CertifyScenarioProgram(ctx, pr, sc, 64, WithDelayPlan(dp))
	if err != nil {
		b.Fatal(err)
	}
	if cert.Trials.Completed != 64 || !cert.BoundRespected {
		b.Fatalf("warm-up certificate unexpected: %+v", cert.Trials)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CertifyScenarioProgram(ctx, pr, sc, 64, WithDelayPlan(dp)); err != nil {
			b.Fatal(err)
		}
	}
}
