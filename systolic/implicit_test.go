// Coverage for the generator-backed scan seam: the streaming kernels must
// reproduce the CSR kernels exactly (reports, errors, traces) on every
// generator-eligible kind, the registry must attach generators and switch
// to implicit builds past the materialization threshold, and implicit
// networks must stream scans and certifications while every
// adjacency-walking entry point fails with ErrImplicit.
package systolic

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

// genEligibleNets instantiates one modest network per generator-eligible
// registry kind. All come back materialized (below the threshold) with a
// generator attached, so the CSR and streaming kernels can be compared on
// identical instances.
func genEligibleNets(t *testing.T) []*Network {
	t.Helper()
	cases := []struct {
		kind   string
		params []Param
	}{
		{"hypercube", []Param{Dimension(6)}},
		{"cycle", []Param{Nodes(97)}},
		{"torus", []Param{Rows(5), Cols(7)}},
		{"ccc", []Param{Dimension(4)}},
		{"butterfly", []Param{Degree(2), Diameter(3)}},
		{"debruijn", []Param{Degree(2), Diameter(5)}},
		{"debruijn-digraph", []Param{Degree(3), Diameter(4)}},
		{"kautz", []Param{Degree(2), Diameter(4)}},
		{"kautz-digraph", []Param{Degree(3), Diameter(3)}},
	}
	nets := make([]*Network, 0, len(cases))
	for _, c := range cases {
		net, err := New(c.kind, c.params...)
		if err != nil {
			t.Fatalf("New(%s): %v", c.kind, err)
		}
		if net.Gen == nil {
			t.Fatalf("%s: no generator attached by the registry", net.Name)
		}
		if net.Implicit() {
			t.Fatalf("%s: implicit below the materialization threshold", net.Name)
		}
		nets = append(nets, net)
	}
	return nets
}

// TestGeneratorKernelsMatchCSR is the scan differential: on every
// generator-eligible kind, the four kernels (CSR/generator × packed/scalar)
// produce deep-equal full-scan reports, across worker counts (including
// the single-batch vertex-sharded path, forced via WithShardThreshold).
func TestGeneratorKernelsMatchCSR(t *testing.T) {
	ctx := context.Background()
	for _, net := range genEligibleNets(t) {
		ref, err := AnalyzeBroadcastAll(ctx, net, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s: CSR scan: %v", net.Name, err)
		}
		variants := []struct {
			name string
			opts []Option
		}{
			{"gen-packed-serial", []Option{WithImplicitScan(), WithWorkers(1)}},
			{"gen-packed-parallel", []Option{WithImplicitScan(), WithWorkers(4)}},
			{"gen-scalar", []Option{WithImplicitScan(), WithScalarScan()}},
			{"gen-packed-subset-sharded", nil}, // filled below: single batch + vertex shards
		}
		for _, v := range variants[:3] {
			got, err := AnalyzeBroadcastAll(ctx, net, v.opts...)
			if err != nil {
				t.Fatalf("%s/%s: %v", net.Name, v.name, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s/%s diverges from CSR:\n  gen: %+v\n  csr: %+v", net.Name, v.name, got, ref)
			}
		}
		// Single-batch subset: 64 sources in one batch exercises the
		// vertex-range sharded step (shard threshold forced to 1).
		nsrc := 64
		if nsrc > net.N() {
			nsrc = net.N()
		}
		sources := make([]int, nsrc)
		for i := range sources {
			sources[i] = i
		}
		sharded, err := AnalyzeBroadcastAll(ctx, net,
			WithSources(sources), WithImplicitScan(), WithWorkers(4), WithShardThreshold(1))
		if err != nil {
			t.Fatalf("%s/sharded: %v", net.Name, err)
		}
		csrSub, err := AnalyzeBroadcastAll(ctx, net, WithSources(sources), WithWorkers(1))
		if err != nil {
			t.Fatalf("%s/csr-subset: %v", net.Name, err)
		}
		if !reflect.DeepEqual(sharded, csrSub) {
			t.Errorf("%s: sharded gen subset diverges from CSR:\n  gen: %+v\n  csr: %+v", net.Name, sharded, csrSub)
		}
	}
}

// TestGeneratorTraceMatchesCSR pins the frontier trace: a ScanObserver sees
// the identical ScanRound stream from the generator and CSR packed kernels
// (single worker, so the event order is deterministic).
func TestGeneratorTraceMatchesCSR(t *testing.T) {
	net, err := New("hypercube", Dimension(7)) // 128 vertices: two full batches
	if err != nil {
		t.Fatal(err)
	}
	trace := func(opts ...Option) []scanEvent {
		tr := &scanTrace{}
		if _, err := AnalyzeBroadcastAll(context.Background(), net,
			append(opts, WithTrace(tr), WithWorkers(1))...); err != nil {
			t.Fatal(err)
		}
		return tr.events
	}
	csr := trace()
	gen := trace(WithImplicitScan())
	if !reflect.DeepEqual(gen, csr) {
		t.Fatalf("generator trace diverges from CSR:\n  gen: %v\n  csr: %v", gen, csr)
	}
}

// TestRegistryImplicitBuilds: past the materialization threshold the
// generator-eligible builders return implicit networks — instantly, with
// the right size and classification — and reject only past the implicit
// ceiling.
func TestRegistryImplicitBuilds(t *testing.T) {
	net, err := New("hypercube", Dimension(20))
	if err != nil {
		t.Fatal(err)
	}
	if !net.Implicit() || net.Gen == nil {
		t.Fatalf("hypercube d=20 (2^20 vertices) should be implicit past threshold %d", materializeThreshold)
	}
	if net.N() != 1<<20 {
		t.Fatalf("implicit N = %d, want %d", net.N(), 1<<20)
	}
	if net.DegreeParam != 19 {
		t.Fatalf("implicit hypercube degree param = %d, want 19", net.DegreeParam)
	}
	k, err := New("kautz-digraph", Degree(4), Diameter(12))
	if err != nil {
		t.Fatal(err)
	}
	if !k.Implicit() || !k.FamilyKnown {
		t.Fatalf("large kautz-digraph should be implicit and classified, got %+v", k)
	}
	// Past even the implicit ceiling: reject.
	if _, err := New("hypercube", Dimension(29)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("hypercube d=29 (2^29 > implicit ceiling) err = %v, want ErrBadParam", err)
	}
	// Non-eligible kinds keep the materialized ceiling.
	if _, err := New("path", Nodes(maxInstanceVertices+1)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("oversized path err = %v, want ErrBadParam", err)
	}
}

// TestCompleteRejectsAbsurdN pins the tightened complete-graph cap: K_n
// materializes n² arcs, so the registry rejects n past maxCompleteVertices
// with ErrBadParam instead of attempting a gigabyte-scale build.
func TestCompleteRejectsAbsurdN(t *testing.T) {
	if _, err := New("complete", Nodes(maxCompleteVertices+1)); !errors.Is(err, ErrBadParam) {
		t.Fatalf("complete n=%d err = %v, want ErrBadParam", maxCompleteVertices+1, err)
	}
	if _, err := New("complete", Nodes(8192)); !errors.Is(err, ErrBadParam) {
		t.Fatal("complete n=8192 (the old cap, ~67M arcs) must now be rejected")
	}
	net, err := New("complete", Nodes(64))
	if err != nil {
		t.Fatalf("complete n=64: %v", err)
	}
	if net.N() != 64 {
		t.Fatalf("complete n = %d, want 64", net.N())
	}
}

// TestImplicitGuards: every adjacency-walking entry point fails fast with
// ErrImplicit on an implicit network, while the streaming entry points
// work.
func TestImplicitGuards(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(21)) // 2^21 vertices, implicit
	if err != nil {
		t.Fatal(err)
	}
	if !net.Implicit() {
		t.Fatal("DB(2,21) should be implicit")
	}
	ctx := context.Background()
	p := &Protocol{}
	guards := []struct {
		name string
		call func() error
	}{
		{"NewProtocol", func() error { _, err := NewProtocol("periodic-half", net, 0); return err }},
		{"CompileProtocol", func() error { _, err := CompileProtocol(net, p); return err }},
		{"CompileDelayPlan", func() error { _, err := CompileDelayPlan(net, p); return err }},
		{"NewBroadcastEngine", func() error { _, err := NewBroadcastEngine(net, 0); return err }},
		{"AnalyzeBroadcast", func() error { _, err := AnalyzeBroadcast(ctx, net, 0); return err }},
		{"Certify", func() error { _, err := Certify(ctx, net, p); return err }},
	}
	for _, g := range guards {
		if err := g.call(); !errors.Is(err, ErrImplicit) {
			t.Errorf("%s on implicit net: err = %v, want ErrImplicit", g.name, err)
		}
	}
	// The bound evaluator degrades gracefully instead of erroring: the
	// diameter refinement needs adjacency, everything else is n + family.
	b := Evaluate(net, Request{Mode: HalfDuplex, Period: NonSystolic})
	if b.Rounds < ceilLog2(net.N()) {
		t.Errorf("implicit Evaluate rounds = %d, below the information bound", b.Rounds)
	}
}

// TestImplicitScanNeedsGenerator: WithImplicitScan on a network without a
// generator is ErrBadParam, not a panic.
func TestImplicitScanNeedsGenerator(t *testing.T) {
	net, err := New("path", Nodes(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeBroadcastAll(context.Background(), net, WithImplicitScan()); !errors.Is(err, ErrBadParam) {
		t.Fatalf("WithImplicitScan on path err = %v, want ErrBadParam", err)
	}
}

// TestMaxMemoryGuardRail pins the WithMaxMemory kernel demotion: a cap the
// CSR cannot fit falls back to the generator kernel (same report), and a
// cap nothing fits fails with ErrMemoryBudget.
func TestMaxMemoryGuardRail(t *testing.T) {
	net, err := New("hypercube", Dimension(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := config{workers: 1}
	genBytes, csrBytes := scanFootprint(net, net.N(), cfg)
	if genBytes >= csrBytes {
		t.Fatalf("generator footprint %d should undercut CSR %d", genBytes, csrBytes)
	}
	// Kernel choice, directly: between the two footprints the picker must
	// demote to the generator; below both it must refuse.
	cfg.maxMemory = csrBytes - 1
	useGen, err := pickScanKernel(net, net.N(), cfg)
	if err != nil || !useGen {
		t.Fatalf("cap %d: useGen=%v err=%v, want generator fallback", cfg.maxMemory, useGen, err)
	}
	cfg.maxMemory = genBytes - 1
	if _, err := pickScanKernel(net, net.N(), cfg); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("cap %d: err = %v, want ErrMemoryBudget", cfg.maxMemory, err)
	}
	// End to end: the demoted scan still returns the CSR kernel's report.
	ref, err := AnalyzeBroadcastAll(context.Background(), net)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := AnalyzeBroadcastAll(context.Background(), net, WithWorkers(1), WithMaxMemory(csrBytes-1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(capped, ref) {
		t.Fatalf("memory-demoted scan diverges:\n  capped: %+v\n  ref:    %+v", capped, ref)
	}
	if _, err := AnalyzeBroadcastAll(context.Background(), net, WithWorkers(1), WithMaxMemory(1)); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("cap 1 byte: err = %v, want ErrMemoryBudget", err)
	}
}

// TestCertifyBroadcastImplicit: on an implicit network certification
// streams single-source flooding — measured = source eccentricity — and
// reports Mode "flooding" with the bound respected by construction.
func TestCertifyBroadcastImplicit(t *testing.T) {
	gen := topology.NewHypercubeGen(10)
	net := PlainImplicit("hc10-implicit", gen, 9)
	cert, err := CertifyBroadcast(context.Background(), net, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Mode != "flooding" {
		t.Errorf("mode = %q, want flooding", cert.Mode)
	}
	if cert.Measured != 10 {
		t.Errorf("measured = %d, want hypercube eccentricity 10", cert.Measured)
	}
	if !cert.Complete || !cert.Broadcast.Applicable || !cert.Broadcast.Respected {
		t.Errorf("certificate flags: %+v", cert.Broadcast)
	}
	if cert.Broadcast.CBound != 10 {
		t.Errorf("cbound = %d, want eccentricity floor 10", cert.Broadcast.CBound)
	}
	// Out-of-range source and budget truncation.
	if _, err := CertifyBroadcast(context.Background(), net, -1); !errors.Is(err, ErrBadParam) {
		t.Errorf("source -1: err = %v, want ErrBadParam", err)
	}
	trunc, err := CertifyBroadcast(context.Background(), net, 0, WithRoundBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	if trunc.Complete || trunc.Broadcast.Applicable || trunc.Measured != 3 {
		t.Errorf("truncated certificate: %+v", trunc)
	}
	// Sharded single-source path agrees with the serial one.
	sharded, err := CertifyBroadcast(context.Background(), net, 5, WithWorkers(4), WithShardThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Measured != cert.Measured || sharded.Broadcast.CBound != cert.Broadcast.CBound {
		t.Errorf("sharded certify diverges: %+v vs %+v", sharded, cert)
	}
}

// TestImplicitScanUnreachable: a generator-backed digraph source that
// cannot reach every vertex surfaces ErrUnreachable with the same error
// text as the CSR kernel.
func TestImplicitScanUnreachable(t *testing.T) {
	g := newOneWayPairNetwork(t)
	csr, csrErr := AnalyzeBroadcastAll(context.Background(), g)
	if csr != nil || !errors.Is(csrErr, ErrUnreachable) {
		t.Fatalf("CSR: report %v err %v, want ErrUnreachable", csr, csrErr)
	}
	gen, genErr := AnalyzeBroadcastAll(context.Background(), g, WithImplicitScan())
	if gen != nil || !errors.Is(genErr, ErrUnreachable) {
		t.Fatalf("generator: report %v err %v, want ErrUnreachable", gen, genErr)
	}
	if csrErr.Error() != genErr.Error() {
		t.Fatalf("error parity broken:\n  csr: %v\n  gen: %v", csrErr, genErr)
	}
}

// TestStreamingScanD20Acceptance is the scale-tier acceptance point: a
// 64-source eccentricity scan of the implicit d=20 hypercube (2^20 nodes,
// ~21M arcs never materialized) completes with every source at
// eccentricity 20, under a heap ceiling far below what the CSR lowering
// alone would cost (~100 MB). Skipped under -short.
func TestStreamingScanD20Acceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("scale acceptance test")
	}
	net, err := New("hypercube", Dimension(20))
	if err != nil {
		t.Fatal(err)
	}
	if !net.Implicit() {
		t.Fatal("hypercube d=20 should build implicit")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = i * (net.N() / 64)
	}
	rep, err := AnalyzeBroadcastAll(context.Background(), net, WithSources(sources))
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	for i, r := range rep.Rounds {
		if r != 20 {
			t.Fatalf("source %d: %d rounds, want hypercube eccentricity 20", sources[i], r)
		}
	}
	// The streaming scan's working set is the packed frontier (16 bytes ×
	// 2^20 = 16 MiB) plus scratch; allow generous slack but stay an order
	// of magnitude under the ~100 MB CSR footprint.
	const ceiling = 64 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > ceiling {
		t.Errorf("heap grew %d bytes during streaming scan, ceiling %d", grew, ceiling)
	}
	t.Logf("d=20 implicit scan: worst=%d mean=%.2f heap-growth=%dB",
		rep.Worst, rep.MeanRounds, int64(after.HeapAlloc)-int64(before.HeapAlloc))
}

// newOneWayPairNetwork builds a 3-vertex network with vertex 2 unreachable
// from 0 and 1, carrying both a materialized digraph and its generator
// adapter.
func newOneWayPairNetwork(t *testing.T) *Network {
	t.Helper()
	g := graph.New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(2, 0)
	net := Plain("one-way-pair", g)
	net.Gen = graph.NewDigraphSource(g)
	return net
}
