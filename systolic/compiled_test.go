// Differential coverage for the compiled execution pipeline at the public
// layer: for every registered topology kind and every communication mode
// with a catalog protocol, a session executing the compiled Program must
// reproduce the slice-interpreted run exactly — same rounds, same report,
// same checkpoints — and sessions built from one shared Program must be
// indistinguishable from sessions that compiled privately.
package systolic

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gossip"
)

// smallParams instantiates every registered kind at a deliberately small
// size so the full kind × mode differential stays fast.
var smallParams = map[string][]Param{
	"path":             {Nodes(6)},
	"cycle":            {Nodes(7)},
	"complete":         {Nodes(6)},
	"hypercube":        {Dimension(3)},
	"grid":             {Rows(3), Cols(3)},
	"torus":            {Rows(3), Cols(3)},
	"tree":             {Degree(2), Depth(2)},
	"shuffle-exchange": {Dimension(3)},
	"ccc":              {Dimension(3)},
	"butterfly":        {Degree(2), Diameter(2)},
	"wbf":              {Degree(2), Diameter(2)},
	"wbf-digraph":      {Degree(2), Diameter(2)},
	"debruijn":         {Degree(2), Diameter(3)},
	"debruijn-digraph": {Degree(2), Diameter(3)},
	"kautz":            {Degree(2), Diameter(3)},
	"kautz-digraph":    {Degree(2), Diameter(3)},
}

// modeProtocols names the catalog protocol exercising each communication
// mode; the symmetric-only constructions are skipped on directed kinds.
var modeProtocols = []struct {
	protocol      string
	symmetricOnly bool
}{
	{"round-robin", false},  // directed
	{"periodic-half", true}, // half-duplex
	{"periodic-full", true}, // full-duplex
	{"periodic-interleaved", true},
	{"greedy-directed", false},
}

// TestCompiledDifferentialAllKinds runs the compiled session against a
// slice-interpreted reference for every registered kind × mode pairing and
// demands byte-identical states after every round, equal completion
// rounds, and an identical Analyze report. It doubles as the reachability
// test for every registry entry (shuffle-exchange and ccc included): a
// kind missing from smallParams fails loudly.
func TestCompiledDifferentialAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		params, ok := smallParams[kind]
		if !ok {
			t.Errorf("registered kind %q has no differential coverage — add it to smallParams", kind)
			continue
		}
		for _, mp := range modeProtocols {
			t.Run(kind+"/"+mp.protocol, func(t *testing.T) {
				net, err := New(kind, params...)
				if err != nil {
					t.Fatalf("building %s: %v", kind, err)
				}
				if mp.symmetricOnly && !net.G.IsSymmetric() {
					t.Skip("symmetric-only protocol on a directed kind")
				}
				p, err := NewProtocol(mp.protocol, net, DefaultRoundBudget)
				if err != nil {
					t.Fatalf("building %s: %v", mp.protocol, err)
				}

				// Slice-interpreted reference run.
				n := net.G.N()
				ref := gossip.NewState(n)
				var dumps [][]byte
				for r := 0; !ref.GossipComplete(); r++ {
					if r >= DefaultRoundBudget {
						t.Fatal("reference run exhausted the budget")
					}
					ref.Step(p.Round(r))
					dumps = append(dumps, ref.Export())
				}

				// Compiled session, stepped in randomized chunks.
				sess, err := NewEngine(net, p, WithWorkers(1))
				if err != nil {
					t.Fatal(err)
				}
				defer sess.Close()
				rng := rand.New(rand.NewSource(int64(len(kind) + len(mp.protocol))))
				ctx := context.Background()
				for !sess.Done() {
					if _, err := sess.Step(ctx, 1+rng.Intn(3)); err != nil {
						t.Fatal(err)
					}
				}
				if sess.Rounds() != len(dumps) {
					t.Fatalf("compiled session completed in %d rounds, interpreted in %d", sess.Rounds(), len(dumps))
				}
				if !bytes.Equal(sess.st.Export(), dumps[len(dumps)-1]) {
					t.Fatal("compiled final state differs from interpreted state")
				}

				// The Analyze report over the compiled run must match a
				// report built from a fresh compile-per-call Analyze.
				rep, err := sess.Analyze(ctx)
				if err != nil {
					t.Fatal(err)
				}
				rep2, err := Analyze(ctx, net, p)
				if err != nil {
					t.Fatal(err)
				}
				j1, _ := json.Marshal(rep)
				j2, _ := json.Marshal(rep2)
				if !bytes.Equal(j1, j2) {
					t.Fatalf("report mismatch:\n%s\n%s", j1, j2)
				}
				if rep.Measured != len(dumps) {
					t.Fatalf("report measured %d rounds, interpreted %d", rep.Measured, len(dumps))
				}
			})
		}
	}
}

// TestCompiledCheckpointDifferential: checkpoints taken mid-flight from a
// compiled session restore into both freshly compiled sessions and
// sessions sharing a cached Program, and the resumed runs finish exactly
// like an uninterrupted one.
func TestCompiledCheckpointDifferential(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileProtocol(net, p)
	if err != nil {
		t.Fatal(err)
	}

	full, err := NewEngineFromProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	ctx := context.Background()
	res, err := full.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	half, err := NewEngineFromProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	defer half.Close()
	if _, err := half.Step(ctx, res.Rounds/2); err != nil {
		t.Fatal(err)
	}
	cp := half.Snapshot()
	if cp.Protocol != prog.Fingerprint() {
		t.Fatalf("checkpoint fingerprint %s, program %s", cp.Protocol, prog.Fingerprint())
	}

	// Round-trip through JSON, restore into a shared-program session and a
	// compile-per-session engine; both must finish like the full run.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	for name, mk := range map[string]func() (*Session, error){
		"shared-program": func() (*Session, error) { return NewEngineFromProgram(prog) },
		"fresh-compile":  func() (*Session, error) { return NewEngine(net, p) },
	} {
		back, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sess, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sess.Restore(back); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		got, err := sess.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Rounds != res.Rounds {
			t.Fatalf("%s: resumed run finished in %d rounds, want %d", name, got.Rounds, res.Rounds)
		}
		if !bytes.Equal(sess.st.Export(), full.st.Export()) {
			t.Fatalf("%s: resumed state differs from uninterrupted run", name)
		}
		sess.Close()
	}
}

// TestSharedProgramConcurrentSessions: one compiled Program backing many
// concurrent sessions (the serving layer's pattern) must give every
// session the same answer as a private compile, including under sharding.
func TestSharedProgramConcurrentSessions(t *testing.T) {
	net, err := New("hypercube", Dimension(6))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-full", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileProtocol(net, p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Analyze(context.Background(), net, p)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	reps := make([]*Report, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := NewEngineFromProgram(prog, WithWorkers(1+i%4), WithShardThreshold(2))
			if err != nil {
				errs[i] = err
				return
			}
			defer sess.Close()
			reps[i], errs[i] = sess.Analyze(context.Background())
		}(i)
	}
	wg.Wait()
	want, _ := json.Marshal(ref)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if got, _ := json.Marshal(reps[i]); !bytes.Equal(got, want) {
			t.Fatalf("session %d report diverged:\n%s\n%s", i, got, want)
		}
	}
}
