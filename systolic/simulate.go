package systolic

import (
	"context"

	"repro/internal/gossip"
)

// Result reports the outcome of a simulation: rounds executed until
// completion and the processor count.
type Result = gossip.Result

// Simulate runs p on the network until gossip completes, within the round
// budget. It is a convenience wrapper over NewEngine + Session.Run: the
// protocol is validated first; for a systolic protocol the period repeats
// as needed, for a finite one the explicit rounds are the budget (capped by
// WithRoundBudget). The context is checked every round, so long simulations
// cancel promptly; an installed WithTrace observer sees the dissemination
// curve as it unfolds. Callers that need to pause, checkpoint or resume use
// NewEngine directly.
func Simulate(ctx context.Context, net *Network, p *Protocol, opts ...Option) (Result, error) {
	sess, err := NewEngine(net, p, opts...)
	if err != nil {
		return Result{}, err
	}
	defer sess.Close()
	return sess.Run(ctx)
}
