package systolic

import (
	"context"
	"fmt"

	"repro/internal/gossip"
)

// Result reports the outcome of a simulation: rounds executed until
// completion and the processor count.
type Result = gossip.Result

// Simulate runs p on the network until gossip completes, within the round
// budget. The protocol is validated first; for a systolic protocol the
// period repeats as needed, for a finite one the explicit rounds are the
// budget (capped by WithRoundBudget). The context is checked every round,
// so long simulations cancel promptly; an installed WithTrace observer sees
// the dissemination curve as it unfolds.
func Simulate(ctx context.Context, net *Network, p *Protocol, opts ...Option) (Result, error) {
	cfg := newConfig(opts)
	return simulate(ctx, net, p, cfg, false, 0)
}

// simulate is the shared engine behind Simulate, Analyze and
// AnalyzeBroadcast (broadcast == true measures item dissemination from
// source instead of all-to-all gossip).
func simulate(ctx context.Context, net *Network, p *Protocol, cfg config, broadcast bool, source int) (Result, error) {
	g := net.G
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	budget := cfg.budget
	if !p.Systolic() && p.Len() < budget {
		budget = p.Len()
	}
	n := g.N()
	var st *gossip.State
	target := n * n
	if broadcast {
		st = gossip.NewBroadcastState(n, source)
		target = n
	} else {
		st = gossip.NewState(n)
	}
	done := func() bool {
		if broadcast {
			return st.BroadcastComplete()
		}
		return st.GossipComplete()
	}
	if done() { // n ≤ 1
		return Result{Rounds: 0, N: n}, nil
	}
	for r := 0; r < budget; r++ {
		if err := ctx.Err(); err != nil {
			return Result{Rounds: r, N: n}, fmt.Errorf("systolic: simulate %s: %w", net.Name, err)
		}
		st.Step(p.Round(r))
		if cfg.observer != nil {
			cfg.observer.Round(r+1, st.TotalKnowledge(), target)
		}
		if done() {
			return Result{Rounds: r + 1, N: n}, nil
		}
	}
	return Result{Rounds: budget, N: n}, fmt.Errorf("%w (budget %d)", ErrIncomplete, budget)
}
