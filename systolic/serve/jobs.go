package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"
)

// JobStatus is the lifecycle of an async job.
type JobStatus string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobStatus = "queued"
	// JobRunning: holding a worker.
	JobRunning JobStatus = "running"
	// JobDone: finished successfully; the result is attached.
	JobDone JobStatus = "done"
	// JobFailed: finished with an error.
	JobFailed JobStatus = "failed"
	// JobIncomplete: an analyze job hit its round budget; a session
	// checkpoint was persisted so the run can be resumed with a higher
	// budget.
	JobIncomplete JobStatus = "incomplete"
)

// Job is the wire form of GET /v1/jobs/{id}: one asynchronous computation
// submitted with ?async=true.
type Job struct {
	ID       string    `json:"id"`
	Op       string    `json:"op"`
	Key      string    `json:"key"`
	Status   JobStatus `json:"status"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Error    string    `json:"error,omitempty"`
	// Report holds the result of a finished analyze/broadcast job.
	Report any `json:"report,omitempty"`
	// Results holds the result lines of a finished sweep job, in job order.
	Results []sweepLine `json:"results,omitempty"`
	// Checkpoint names the spool file holding the session checkpoint of an
	// incomplete analyze job (written through systolic.WriteCheckpoint).
	Checkpoint string `json:"checkpoint,omitempty"`
}

func (j *Job) terminal() bool {
	return j.Status == JobDone || j.Status == JobFailed || j.Status == JobIncomplete
}

var jobIDPattern = regexp.MustCompile(`^j[0-9a-f]{16}$`)

// jobStore tracks async jobs in memory, bounded to maxJobs entries
// (oldest terminal jobs are evicted first). With a spool directory
// configured, every terminal job is also persisted as <id>.json, and
// evicted or pre-restart jobs are transparently reloaded from disk on GET.
type jobStore struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // creation order, for eviction
	max   int
	spool string
}

func newJobStore(spool string, max int) (*jobStore, error) {
	if spool != "" {
		if err := os.MkdirAll(spool, 0o755); err != nil {
			return nil, fmt.Errorf("serve: job spool: %w", err)
		}
	}
	return &jobStore{jobs: make(map[string]*Job), max: max, spool: spool}, nil
}

//gossip:allowpanic a failing crypto/rand is unrecoverable and job IDs must not fall back to something predictable
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: randomness unavailable: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}

// create registers a queued job and returns a copy of it.
func (st *jobStore) create(op, key string) Job {
	j := &Job{ID: newJobID(), Op: op, Key: key, Status: JobQueued, Created: time.Now().UTC()}
	st.mu.Lock()
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	st.evictLocked()
	st.mu.Unlock()
	return *j
}

// evictLocked drops the oldest terminal jobs beyond the memory bound. Jobs
// persisted to the spool remain readable after eviction.
func (st *jobStore) evictLocked() {
	for len(st.jobs) > st.max {
		evicted := false
		for i, id := range st.order {
			j, ok := st.jobs[id]
			if !ok {
				st.order = append(st.order[:i], st.order[i+1:]...)
				evicted = true
				break
			}
			if j.terminal() {
				delete(st.jobs, id)
				st.order = append(st.order[:i], st.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; do not evict running jobs
		}
	}
}

// start marks the job running.
func (st *jobStore) start(id string) {
	st.mu.Lock()
	if j, ok := st.jobs[id]; ok && j.Status == JobQueued {
		j.Status = JobRunning
		j.Started = time.Now().UTC()
	}
	st.mu.Unlock()
}

// update applies a non-terminal mutation (e.g. recording a checkpoint path
// mid-flight) without stamping the finish time or persisting.
func (st *jobStore) update(id string, mutate func(*Job)) {
	st.mu.Lock()
	if j, ok := st.jobs[id]; ok {
		mutate(j)
	}
	st.mu.Unlock()
}

// finish applies the terminal mutation (status, result, error, checkpoint),
// stamps the finish time, and persists the job to the spool.
func (st *jobStore) finish(id string, mutate func(*Job)) {
	st.mu.Lock()
	j, ok := st.jobs[id]
	if !ok {
		st.mu.Unlock()
		return
	}
	mutate(j)
	j.Finished = time.Now().UTC()
	persisted := *j
	st.mu.Unlock()
	st.persist(&persisted)
}

func (st *jobStore) persist(j *Job) {
	if st.spool == "" {
		return
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(st.spool, j.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	os.Rename(tmp, path)
}

// get returns a copy of the job, falling back to the spool for jobs evicted
// from memory or persisted by a previous process.
func (st *jobStore) get(id string) (Job, bool) {
	st.mu.Lock()
	if j, ok := st.jobs[id]; ok {
		cp := *j
		st.mu.Unlock()
		return cp, true
	}
	st.mu.Unlock()
	if st.spool == "" || !jobIDPattern.MatchString(id) {
		return Job{}, false
	}
	data, err := os.ReadFile(filepath.Join(st.spool, id+".json"))
	if err != nil {
		return Job{}, false
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return Job{}, false
	}
	return j, true
}

// checkpointFile names the spool file an incomplete analyze job writes its
// session checkpoint to.
func (st *jobStore) checkpointFile(id string) string {
	if st.spool == "" {
		return ""
	}
	return filepath.Join(st.spool, id+".ckpt.json")
}
