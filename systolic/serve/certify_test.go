// Coverage for POST /v1/certify: the wire certificate against a direct
// systolic.Certify call, result/plan cache behavior with its metrics, the
// budget-truncation semantics (200 + inapplicable, not 422), and the
// analyze/certify key separation.
package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/systolic"
)

type certifyEnvelope struct {
	Key    string               `json:"key"`
	Cached bool                 `json:"cached"`
	Report systolic.Certificate `json:"report"`
}

func TestCertifyEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", analyzeDB25)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("certify status = %d", resp.StatusCode)
	}
	env := decodeBody[certifyEnvelope](t, resp)
	if !strings.HasPrefix(env.Key, systolic.OpCertify+"|") {
		t.Errorf("certify key %q does not use the certify operation", env.Key)
	}
	if env.Cached {
		t.Error("first certify reported cached")
	}

	// The wire certificate must equal a direct engine call.
	net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(5))
	if err != nil {
		t.Fatal(err)
	}
	p, err := systolic.NewProtocol("periodic-half", net, systolic.DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	want, err := systolic.Certify(context.Background(), net, p)
	if err != nil {
		t.Fatal(err)
	}
	got := env.Report
	if got.Network != want.Network || got.Measured != want.Measured ||
		got.DelayVerts != want.DelayVerts || got.DelayArcs != want.DelayArcs ||
		got.NormAtRoot != want.NormAtRoot || got.TheoremRespected != want.TheoremRespected ||
		!got.Complete || !got.TheoremApplicable {
		t.Errorf("wire certificate %+v != direct %+v", got, want)
	}

	// Second request: result-cache hit, no new plan compile.
	resp2 := postJSON(t, ts.Client(), ts.URL+"/v1/certify", analyzeDB25)
	env2 := decodeBody[certifyEnvelope](t, resp2)
	if !env2.Cached {
		t.Error("second certify missed the result cache")
	}
	snap := s.Metrics().Snapshot()
	if snap.PlanMisses != 1 {
		t.Errorf("delay-plan cache misses = %d, want exactly 1 compile", snap.PlanMisses)
	}
}

// TestCertifyPlanCacheAcrossResults: certifications that miss the result
// cache (distinct budgets were chosen large enough not to change the run)
// still reuse the compiled program and delay plan when their program key
// matches, and the hit/miss counters land on /metrics.
func TestCertifyPlanCacheAcrossResults(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	n, err := normalizeCertify(analyzeDB25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.runCertifySession(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	if _, err := s.runCertifySession(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	if snap.PlanMisses != 1 || snap.PlanHits != 1 {
		t.Errorf("delay-plan cache misses=%d hits=%d, want 1/1", snap.PlanMisses, snap.PlanHits)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	k, _ := resp.Body.Read(body)
	resp.Body.Close()
	text := string(body[:k])
	for _, want := range []string{
		"gossipd_delay_plan_cache_hits_total 1",
		"gossipd_delay_plan_cache_misses_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	health, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[map[string]any](t, health)
	if entries, ok := h["plan_entries"].(float64); !ok || entries != 1 {
		t.Errorf("healthz plan_entries = %v, want 1", h["plan_entries"])
	}
}

// TestCertifyBudgetTruncatedWire: a budget-truncated certification is a 200
// with an inapplicable certificate — unlike /v1/analyze, which keeps
// answering 422.
func TestCertifyBudgetTruncatedWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := analyzeDB25
	req.Budget = 2 // far below the DB(2,5) completion time

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("truncated certify status = %d, want 200", resp.StatusCode)
	}
	env := decodeBody[certifyEnvelope](t, resp)
	cert := env.Report
	if cert.Complete || cert.TheoremApplicable || cert.TheoremRespected {
		t.Errorf("truncated certificate: complete=%v applicable=%v respected=%v, want all false",
			cert.Complete, cert.TheoremApplicable, cert.TheoremRespected)
	}
	if cert.Measured != 2 || cert.DelayVerts == 0 {
		t.Errorf("truncated certificate measured=%d delay_verts=%d, want the executed prefix",
			cert.Measured, cert.DelayVerts)
	}

	aresp := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", req)
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("truncated analyze status = %d, want 422", aresp.StatusCode)
	}
}

// TestCertifyAndAnalyzeKeysDisjoint: the two operations share inputs but
// must never share cached results.
func TestCertifyAndAnalyzeKeysDisjoint(t *testing.T) {
	na, err := normalizeAnalyze(analyzeDB25)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := normalizeCertify(analyzeDB25)
	if err != nil {
		t.Fatal(err)
	}
	if na.key == nc.key {
		t.Error("analyze and certify share a result-cache key")
	}
	if na.progKey != nc.progKey {
		t.Error("analyze and certify should share the program key (and its caches)")
	}
}

// TestCertifyBadRequest: validation failures stay 400 on the new endpoint.
func TestCertifyBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := analyzeDB25
	req.Protocol = ""
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("protocol-less certify status = %d, want 400", resp.StatusCode)
	}
}
