package serve

import (
	"context"
	"sync"
)

// group coalesces concurrent identical requests (singleflight with
// streaming and reference counting). The first subscriber to a key starts
// the computation; later subscribers attach to the same flight and replay
// everything it has produced so far, then follow it live. The computation's
// context is cancelled only when every subscriber has walked away, so one
// client disconnecting mid-stream never kills a result other clients are
// still waiting for — but an abandoned flight frees its worker promptly.
type group struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	refs     int
	subs     map[*subscriber]struct{}
	produced []any
	done     bool
	err      error
}

// subscriber receives the flight's output. ch carries every produced item
// (replayed from the start for late joiners) and is closed when the flight
// finishes; err is only meaningful after ch closes.
type subscriber struct {
	f    *flight
	ch   chan any
	once sync.Once
}

// join attaches to the flight for key, creating it if absent. capHint must
// be an upper bound on the number of items the computation emits (1 for
// single-value operations, the job count for sweeps); it sizes the
// subscriber channel so the producer never blocks. When created is true the
// caller must start exactly one computation via run.
func (g *group) join(parent context.Context, key string, capHint int) (sub *subscriber, f *flight, created bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, ok := g.flights[key]
	if ok {
		// A flight whose last subscriber already left is doomed — its
		// context is cancelled and its compute is aborting. Attaching would
		// hand the new request a spurious cancellation error; replace it
		// instead (run only deletes the map entry if it still points at the
		// flight it ran, so the doomed flight cleans up after itself).
		f.mu.Lock()
		abandoned := !f.done && f.refs == 0 && f.ctx.Err() != nil
		f.mu.Unlock()
		if abandoned {
			ok = false
		}
	}
	if !ok {
		fctx, cancel := context.WithCancel(parent)
		f = &flight{cancel: cancel, subs: make(map[*subscriber]struct{})}
		f.ctx = fctx
		g.flights[key] = f
		created = true
	}
	g.mu.Unlock()

	f.mu.Lock()
	if f.done {
		// The flight finished between lookup and attach: replay and close
		// immediately rather than leaving the subscriber hanging.
		sub = &subscriber{f: f, ch: make(chan any, len(f.produced))}
		for _, v := range f.produced {
			sub.ch <- v
		}
		close(sub.ch)
		f.mu.Unlock()
		return sub, f, created
	}
	// Capacity covers the replayed prefix plus everything the computation
	// can still emit, so emit never blocks on this subscriber.
	sub = &subscriber{f: f, ch: make(chan any, len(f.produced)+capHint)}
	for _, v := range f.produced {
		sub.ch <- v
	}
	f.refs++
	f.subs[sub] = struct{}{}
	f.mu.Unlock()
	return sub, f, created
}

// run executes the computation for a flight the caller created: compute
// receives the flight's context and an emit callback, and its return error
// becomes the flight's terminal error. run removes the flight from the
// group before notifying subscribers, so a request arriving after the
// flight finished starts fresh (and will typically hit the result cache).
func (g *group) run(key string, f *flight, compute func(ctx context.Context, emit func(any)) error) {
	err := compute(f.ctx, f.emit)

	g.mu.Lock()
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()

	f.mu.Lock()
	f.done = true
	f.err = err
	for sub := range f.subs {
		close(sub.ch)
	}
	f.subs = nil
	f.mu.Unlock()
	f.cancel() // release the context's resources
}

// emit delivers one item to every current subscriber and records it for
// late joiners. Channel capacities are sized at join, so sends never block.
func (f *flight) emit(v any) {
	f.mu.Lock()
	f.produced = append(f.produced, v)
	for sub := range f.subs {
		sub.ch <- v
	}
	f.mu.Unlock()
}

// Err returns the flight's terminal error; call it only after the
// subscriber channel has closed.
func (f *flight) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// leave detaches the subscriber. When the last subscriber of an unfinished
// flight leaves, the computation's context is cancelled. leave is
// idempotent and safe to call after the flight finished.
func (s *subscriber) leave() {
	s.once.Do(func() {
		f := s.f
		f.mu.Lock()
		if _, attached := f.subs[s]; attached {
			delete(f.subs, s)
			f.refs--
			if f.refs == 0 && !f.done {
				f.cancel()
			}
		}
		f.mu.Unlock()
	})
}
