// Coverage for the scenario block of POST /v1/certify: sync and async
// serving, cache-key separation from plain certifications, the truncation
// contract (budget-exhausted trials finish the async job with per-trial
// counts instead of failing it), trial counters on /metrics, and the
// /healthz version string.
package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/systolic"
)

func scenarioCertifyDB24(trials int, sc systolic.Scenario) AnalyzeRequest {
	return AnalyzeRequest{
		Kind:     "debruijn",
		Params:   map[string]int{"degree": 2, "diameter": 4},
		Protocol: "periodic-half",
		Scenario: &ScenarioRequest{Scenario: sc, Trials: trials},
	}
}

func TestCertifyScenarioSync(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := scenarioCertifyDB24(16, systolic.Scenario{Loss: 0.1, Seed: 7})

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	env := decodeBody[resultEnvelope](t, resp)
	if env.Cached {
		t.Fatal("first scenario certification claims cached")
	}
	if !strings.Contains(env.Key, "|scenario{") || !strings.Contains(env.Key, "trials=16") {
		t.Fatalf("scenario key missing fault model: %s", env.Key)
	}
	raw, _ := json.Marshal(env.Report)
	var cert systolic.StatisticalCertificate
	if err := json.Unmarshal(raw, &cert); err != nil {
		t.Fatal(err)
	}
	if cert.Trials.Trials != 16 || cert.Trials.Completed != 16 {
		t.Fatalf("trials %+v, want 16 completed", cert.Trials)
	}
	if !cert.BoundRespected {
		t.Fatalf("median %d below bound %d", cert.Trials.P50, cert.LowerBound.Rounds)
	}
	if cert.Deterministic == nil || !cert.Deterministic.Complete {
		t.Fatal("missing deterministic baseline")
	}

	// The identical request replays from the cache, fingerprint included.
	resp2 := postJSON(t, ts.Client(), ts.URL+"/v1/certify", req)
	env2 := decodeBody[resultEnvelope](t, resp2)
	if !env2.Cached {
		t.Fatal("identical scenario request missed the cache")
	}
	raw2, _ := json.Marshal(env2.Report)
	var cert2 systolic.StatisticalCertificate
	if err := json.Unmarshal(raw2, &cert2); err != nil {
		t.Fatal(err)
	}
	if cert2.Trials.DistributionFP != cert.Trials.DistributionFP {
		t.Fatal("cached replay changed the distribution fingerprint")
	}

	snap := s.Metrics().Snapshot()
	if snap.ScenarioTrials != 16 {
		t.Fatalf("scenario trial counter %d, want 16", snap.ScenarioTrials)
	}
	if snap.ScenarioTruncated != 0 {
		t.Fatalf("scenario truncation counter %d, want 0", snap.ScenarioTruncated)
	}
}

// TestCertifyScenarioKeySeparation: the same topology and protocol under a
// plain certify, a scenario certify, and a different seed are three
// distinct cache entries.
func TestCertifyScenarioKeySeparation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	plain := AnalyzeRequest{
		Kind:     "debruijn",
		Params:   map[string]int{"degree": 2, "diameter": 4},
		Protocol: "periodic-half",
	}
	keys := map[string]bool{}
	for _, req := range []AnalyzeRequest{
		plain,
		scenarioCertifyDB24(8, systolic.Scenario{Loss: 0.1, Seed: 1}),
		scenarioCertifyDB24(8, systolic.Scenario{Loss: 0.1, Seed: 2}),
		scenarioCertifyDB24(4, systolic.Scenario{Loss: 0.1, Seed: 1}),
	} {
		resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		env := decodeBody[resultEnvelope](t, resp)
		if env.Cached {
			t.Fatalf("distinct request hit the cache under key %s", env.Key)
		}
		if keys[env.Key] {
			t.Fatalf("key collision: %s", env.Key)
		}
		keys[env.Key] = true
	}
}

// TestCertifyScenarioAsyncTruncation pins the satellite contract: an async
// scenario job whose trials all exhaust a tiny round budget finishes
// JobDone with the truncation counts in the result — not JobFailed.
func TestCertifyScenarioAsyncTruncation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := scenarioCertifyDB24(8, systolic.Scenario{Loss: 0.1, Seed: 3})
	req.Budget = 2

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify?async=true", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	acc := decodeBody[map[string]string](t, resp)

	var job Job
	waitFor(t, 10*time.Second, "async scenario job", func() bool {
		r, err := ts.Client().Get(ts.URL + acc["status_url"])
		if err != nil {
			return false
		}
		job = decodeBody[Job](t, r)
		return job.Status == JobDone || job.Status == JobFailed || job.Status == JobIncomplete
	})
	if job.Status != JobDone {
		t.Fatalf("truncated scenario job finished %s (%s), want %s", job.Status, job.Error, JobDone)
	}
	raw, _ := json.Marshal(job.Report)
	var cert systolic.StatisticalCertificate
	if err := json.Unmarshal(raw, &cert); err != nil {
		t.Fatal(err)
	}
	if cert.Trials.Truncated != 8 || cert.Trials.Completed != 0 {
		t.Fatalf("job result trials %+v, want 8 truncated", cert.Trials)
	}
	if snap := s.Metrics().Snapshot(); snap.ScenarioTruncated != 8 {
		t.Fatalf("scenario truncation counter %d, want 8", snap.ScenarioTruncated)
	}
}

// TestScenarioRejectedOutsideCertify: analyze and broadcast refuse
// scenario blocks; malformed scenarios are 400s.
func TestScenarioRejectedOutsideCertify(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	withScenario := analyzeDB25
	withScenario.Scenario = &ScenarioRequest{Scenario: systolic.Scenario{Loss: 0.1}}
	for _, ep := range []string{"/v1/analyze", "/v1/broadcast"} {
		resp := postJSON(t, ts.Client(), ts.URL+ep, withScenario)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with scenario: status %d, want 400", ep, resp.StatusCode)
		}
	}
	for name, sc := range map[string]*ScenarioRequest{
		"bad-loss":        {Scenario: systolic.Scenario{Loss: 1.5}},
		"negative-trials": {Trials: -1},
		"too-many-trials": {Trials: systolic.MaxScenarioTrials + 1},
	} {
		req := analyzeDB25
		req.Scenario = sc
		resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// A crash node outside the network fails at compute time with 400 too.
	bad := scenarioCertifyDB24(4, systolic.Scenario{Crashes: []systolic.CrashWindow{{Node: 9999, From: 0, To: 4}}})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range crash node: status %d, want 400", resp.StatusCode)
	}
}

// TestHealthzVersion: /healthz reports the configured version string and
// the default "dev" when none is set.
func TestHealthzVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "v1.2.3-test"})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody[map[string]any](t, resp)
	if body["version"] != "v1.2.3-test" {
		t.Fatalf("version %v, want v1.2.3-test", body["version"])
	}
	if _, ok := body["uptime_seconds"].(float64); !ok {
		t.Fatalf("uptime_seconds missing or not a number: %v", body["uptime_seconds"])
	}

	_, ts2 := newTestServer(t, Config{})
	resp2, err := ts2.Client().Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body2 := decodeBody[map[string]any](t, resp2); body2["version"] != "dev" {
		t.Fatalf("default version %v, want dev", body2["version"])
	}
}

// TestMetricsScenarioLines: the Prometheus rendering carries the scenario
// trial counters.
func TestMetricsScenarioLines(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", scenarioCertifyDB24(4, systolic.Scenario{Loss: 0.05, Seed: 1}))
	resp.Body.Close()
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	data, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "gossipd_scenario_trials_total 4") {
		t.Fatalf("metrics missing scenario trial counter:\n%s", text)
	}
	if !strings.Contains(text, "gossipd_scenario_trials_truncated_total 0") {
		t.Fatalf("metrics missing scenario truncation counter:\n%s", text)
	}
}
