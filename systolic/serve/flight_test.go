package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFlightLastLeaveCancels: the computation's context is cancelled
// exactly when the last subscriber leaves, not before.
func TestFlightLastLeaveCancels(t *testing.T) {
	var g group
	sub1, f, created := g.join(context.Background(), "k", 1)
	if !created {
		t.Fatal("first join did not create the flight")
	}
	computeCtx := make(chan context.Context, 1)
	finished := make(chan struct{})
	go func() {
		g.run("k", f, func(ctx context.Context, emit func(any)) error {
			computeCtx <- ctx
			<-ctx.Done()
			return ctx.Err()
		})
		close(finished)
	}()
	ctx := <-computeCtx

	sub2, f2, created2 := g.join(context.Background(), "k", 1)
	if created2 || f2 != f {
		t.Fatal("second join did not attach to the running flight")
	}

	sub1.leave()
	select {
	case <-ctx.Done():
		t.Fatal("context cancelled while a subscriber remained")
	case <-time.After(20 * time.Millisecond):
	}

	sub2.leave()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("context not cancelled after the last subscriber left")
	}
	<-finished
	if !errors.Is(f.Err(), context.Canceled) {
		t.Fatalf("flight error = %v, want context.Canceled", f.Err())
	}
}

// TestFlightJoinAfterAbandonStartsFresh: a request arriving after the last
// subscriber abandoned a still-running flight must not inherit its
// cancellation — it replaces the doomed flight and computes fresh.
func TestFlightJoinAfterAbandonStartsFresh(t *testing.T) {
	var g group
	sub1, f1, _ := g.join(context.Background(), "k", 1)
	started := make(chan struct{})
	release := make(chan struct{})
	oldDone := make(chan struct{})
	go func() {
		g.run("k", f1, func(ctx context.Context, emit func(any)) error {
			close(started)
			<-ctx.Done()
			<-release // keep the doomed flight registered during the next join
			return ctx.Err()
		})
		close(oldDone)
	}()
	<-started
	sub1.leave() // last subscriber: cancels f1 while it is still registered

	sub2, f2, created := g.join(context.Background(), "k", 1)
	if !created || f2 == f1 {
		t.Fatal("join attached to the abandoned flight")
	}
	if f2.ctx.Err() != nil {
		t.Fatal("fresh flight inherited a cancelled context")
	}
	go g.run("k", f2, func(ctx context.Context, emit func(any)) error {
		emit(7)
		return nil
	})
	if v := (<-sub2.ch).(int); v != 7 {
		t.Fatalf("fresh flight produced %v, want 7", v)
	}
	close(release)
	<-oldDone
	// The doomed flight's cleanup must not have clobbered the key: a new
	// join starts fresh (the finished f2 removed its own entry).
	_, f3, created := g.join(context.Background(), "k", 1)
	if !created || f3 == f1 || f3 == f2 {
		t.Fatal("key left in a stale state after the abandoned flight finished")
	}
}

// TestFlightReplayLateJoiner: a subscriber attaching mid-flight receives
// everything already produced, then the live tail.
func TestFlightReplayLateJoiner(t *testing.T) {
	var g group
	sub1, f, _ := g.join(context.Background(), "k", 3)
	release := make(chan struct{})
	go g.run("k", f, func(ctx context.Context, emit func(any)) error {
		emit(1)
		emit(2)
		<-release
		emit(3)
		return nil
	})
	// Wait for the first two emissions to land.
	got := []int{(<-sub1.ch).(int), (<-sub1.ch).(int)}

	sub2, _, created := g.join(context.Background(), "k", 3)
	if created {
		t.Fatal("late joiner created a new flight")
	}
	close(release)
	for v := range sub1.ch {
		got = append(got, v.(int))
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("subscriber 1 saw %v, want [1 2 3]", got)
	}
	var replay []int
	for v := range sub2.ch {
		replay = append(replay, v.(int))
	}
	if len(replay) != 3 || replay[0] != 1 || replay[1] != 2 || replay[2] != 3 {
		t.Fatalf("late joiner saw %v, want [1 2 3]", replay)
	}
	if f.Err() != nil {
		t.Fatalf("flight error = %v, want nil", f.Err())
	}
}

// TestFlightErrorPropagates: a failed computation delivers its error to
// every subscriber, and the key is free for a fresh flight afterwards.
func TestFlightErrorPropagates(t *testing.T) {
	var g group
	boom := errors.New("boom")
	sub, f, _ := g.join(context.Background(), "k", 1)
	g.run("k", f, func(ctx context.Context, emit func(any)) error { return boom })
	if _, ok := <-sub.ch; ok {
		t.Fatal("failed flight emitted a value")
	}
	if !errors.Is(f.Err(), boom) {
		t.Fatalf("flight error = %v, want boom", f.Err())
	}
	_, _, created := g.join(context.Background(), "k", 1)
	if !created {
		t.Fatal("key not released after the flight finished")
	}
}

// TestFlightJoinAfterFinish: a join that looked the flight up just before
// run removed it from the map (and attaches after it finished) still gets
// the full replay and an immediately closed channel.
func TestFlightJoinAfterFinish(t *testing.T) {
	var g group
	sub1, f, _ := g.join(context.Background(), "k", 1)
	g.run("k", f, func(ctx context.Context, emit func(any)) error {
		emit(42)
		return nil
	})
	if v := (<-sub1.ch).(int); v != 42 {
		t.Fatalf("got %v, want 42", v)
	}
	// Reproduce the race window by putting the finished flight back where
	// join's lookup would have found it.
	g.mu.Lock()
	g.flights["k"] = f
	g.mu.Unlock()
	sub2, f2, created := g.join(context.Background(), "k", 1)
	if created || f2 != f {
		t.Fatal("join did not attach to the finished flight object")
	}
	var replay []int
	for v := range sub2.ch {
		replay = append(replay, v.(int))
	}
	if len(replay) != 1 || replay[0] != 42 {
		t.Fatalf("late joiner after finish saw %v, want [42]", replay)
	}
	sub2.leave() // must be a no-op on a finished flight
}
