package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/systolic"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, client *http.Client, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func waitFor(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

var analyzeDB25 = AnalyzeRequest{
	Kind:     "debruijn",
	Params:   map[string]int{"degree": 2, "diameter": 5},
	Protocol: "periodic-half",
}

func TestKindsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/kinds")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	catalog := decodeBody[struct {
		Topologies []struct {
			Kind   string   `json:"kind"`
			Params []string `json:"params"`
		} `json:"topologies"`
		Protocols []string `json:"protocols"`
	}](t, resp)
	foundDB := false
	for _, topo := range catalog.Topologies {
		if topo.Kind == "debruijn" {
			foundDB = true
			if len(topo.Params) != 2 || topo.Params[0] != "degree" || topo.Params[1] != "diameter" {
				t.Errorf("debruijn params = %v", topo.Params)
			}
		}
	}
	if !foundDB {
		t.Error("debruijn missing from the catalog")
	}
	foundProto := false
	for _, p := range catalog.Protocols {
		if p == "periodic-half" {
			foundProto = true
		}
	}
	if !foundProto {
		t.Error("periodic-half missing from the protocol catalog")
	}
}

func TestAnalyzeCaching(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeDB25)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	env := decodeBody[struct {
		Key    string          `json:"key"`
		Cached bool            `json:"cached"`
		Report systolic.Report `json:"report"`
	}](t, resp)
	if env.Cached {
		t.Error("first request claims to be cached")
	}
	if env.Report.Measured <= 0 || env.Report.Network == "" {
		t.Errorf("implausible report: %+v", env.Report)
	}
	if !strings.Contains(env.Key, "debruijn") || !strings.Contains(env.Key, "degree=2,diameter=5") {
		t.Errorf("key %q does not look canonical", env.Key)
	}

	resp2 := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeDB25)
	env2 := decodeBody[struct {
		Key    string          `json:"key"`
		Cached bool            `json:"cached"`
		Report systolic.Report `json:"report"`
	}](t, resp2)
	if !env2.Cached {
		t.Error("second identical request missed the cache")
	}
	if env2.Report != env.Report {
		t.Errorf("cached report differs: %+v vs %+v", env2.Report, env.Report)
	}
	if sims := s.Metrics().Snapshot().Simulations; sims != 1 {
		t.Errorf("ran %d simulations for two identical requests, want 1", sims)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown kind", `{"kind":"mobius","params":{"nodes":8},"protocol":"periodic-half"}`, 400},
		{"unknown param", `{"kind":"debruijn","params":{"order":2},"protocol":"periodic-half"}`, 400},
		{"missing protocol", `{"kind":"debruijn","params":{"degree":2,"diameter":5}}`, 400},
		{"bad param value", `{"kind":"debruijn","params":{"degree":1,"diameter":5},"protocol":"periodic-half"}`, 400},
		{"unknown field", `{"kind":"debruijn","params":{"degree":2,"diameter":5},"protocol":"periodic-half","nope":1}`, 400},
		{"negative budget", `{"kind":"debruijn","params":{"degree":2,"diameter":5},"protocol":"periodic-half","budget":-1}`, 400},
		{"garbage", `{]`, 400},
		{"budget too small", `{"kind":"debruijn","params":{"degree":2,"diameter":5},"protocol":"periodic-half","budget":2}`, 422},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		if !bytes.Contains(body, []byte("error")) {
			t.Errorf("%s: error body missing: %s", tc.name, body)
		}
	}
}

func TestBroadcastEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/broadcast", AnalyzeRequest{
		Kind: "hypercube", Params: map[string]int{"dimension": 4}, Source: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast status %d", resp.StatusCode)
	}
	env := decodeBody[struct {
		Report systolic.BroadcastReport `json:"report"`
	}](t, resp)
	if env.Report.Source != 3 || env.Report.Measured < env.Report.CBound {
		t.Errorf("implausible broadcast report: %+v", env.Report)
	}

	resp = postJSON(t, ts.Client(), ts.URL+"/v1/broadcast", AnalyzeRequest{
		Kind: "hypercube", Params: map[string]int{"dimension": 4}, AllSources: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast all status %d", resp.StatusCode)
	}
	all := decodeBody[struct {
		Report systolic.BroadcastAllReport `json:"report"`
	}](t, resp)
	if len(all.Report.Rounds) != 16 {
		t.Fatalf("all-sources rounds has %d entries, want 16", len(all.Report.Rounds))
	}
	// The scan measures flooding time — the source's eccentricity, 4 on a
	// 4-cube from every source — which lower-bounds the single-source
	// BFS-tree whispering time.
	if all.Report.Rounds[3] != 4 || all.Report.Worst != 4 || all.Report.Best != 4 {
		t.Errorf("hypercube scan should measure eccentricity 4 everywhere: %+v", all.Report)
	}
	if all.Report.Rounds[3] > env.Report.Measured {
		t.Errorf("flooding time %d exceeds whispering time %d",
			all.Report.Rounds[3], env.Report.Measured)
	}
	if all.Report.Sources != nil {
		t.Errorf("full scan echoed explicit sources %v", all.Report.Sources)
	}

	// The structured {"all": true} block is the same request as the
	// deprecated all_sources boolean.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/broadcast", AnalyzeRequest{
		Kind: "hypercube", Params: map[string]int{"dimension": 4}, Sources: &SourcesSpec{All: true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sources-all status %d", resp.StatusCode)
	}
	structured := decodeBody[struct {
		Report systolic.BroadcastAllReport `json:"report"`
	}](t, resp)
	if !reflect.DeepEqual(structured.Report, all.Report) {
		t.Errorf("structured sources block diverged from all_sources:\n  %+v\n  %+v",
			structured.Report, all.Report)
	}

	// A subset scan returns the matching rows, keyed by its sorted list.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/broadcast", AnalyzeRequest{
		Kind: "hypercube", Params: map[string]int{"dimension": 4}, Sources: &SourcesSpec{List: []int{7, 3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sources-list status %d", resp.StatusCode)
	}
	sub := decodeBody[struct {
		Report systolic.BroadcastAllReport `json:"report"`
	}](t, resp)
	if !reflect.DeepEqual(sub.Report.Sources, []int{3, 7}) {
		t.Errorf("subset sources = %v, want canonicalized [3 7]", sub.Report.Sources)
	}
	if !reflect.DeepEqual(sub.Report.Rounds, []int{all.Report.Rounds[3], all.Report.Rounds[7]}) {
		t.Errorf("subset rounds %v disagree with full-scan rows", sub.Report.Rounds)
	}

	// Malformed sources blocks are client errors.
	for _, bad := range []*SourcesSpec{{}, {All: true, List: []int{1}}, {List: []int{-1}}} {
		resp = postJSON(t, ts.Client(), ts.URL+"/v1/broadcast", AnalyzeRequest{
			Kind: "hypercube", Params: map[string]int{"dimension": 4}, Sources: bad,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("sources %+v: status %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// An out-of-range subset entry fails at instantiation (422, like other
	// semantically invalid parameters).
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/broadcast", AnalyzeRequest{
		Kind: "hypercube", Params: map[string]int{"dimension": 4}, Sources: &SourcesSpec{List: []int{16}},
	})
	if resp.StatusCode == http.StatusOK {
		t.Errorf("out-of-range source accepted")
	}
	resp.Body.Close()

	// A protocol on a broadcast request is rejected.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/broadcast", AnalyzeRequest{
		Kind: "hypercube", Params: map[string]int{"dimension": 4}, Protocol: "periodic-half",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broadcast with protocol: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

var sweepTwoJobs = SweepRequest{Jobs: []SweepJobRequest{
	{Label: "db", Kind: "debruijn", Params: map[string]int{"degree": 2, "diameter": 5}, Protocol: "periodic-half"},
	{Kind: "kautz", Params: map[string]int{"degree": 2, "diameter": 4}, Protocol: "periodic-full"},
}}

func readSweepLines(t *testing.T, body io.Reader) []sweepLine {
	t.Helper()
	var lines []sweepLine
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line sweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad sweep line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestSweepStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", sweepTwoJobs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	lines := readSweepLines(t, resp.Body)
	resp.Body.Close()
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	seen := map[int]bool{}
	for _, line := range lines {
		seen[line.Index] = true
		if line.Report == nil || line.Error != "" {
			t.Errorf("line %d has no report (err %q)", line.Index, line.Error)
		}
	}
	if !seen[0] || !seen[1] {
		t.Errorf("line indexes wrong: %v", seen)
	}

	// The default label is derived; the explicit one is echoed.
	for _, line := range lines {
		switch line.Index {
		case 0:
			if line.Label != "db" {
				t.Errorf("explicit label lost: %q", line.Label)
			}
		case 1:
			if line.Label != "kautz/periodic-full" {
				t.Errorf("derived label = %q", line.Label)
			}
		}
	}

	resp2 := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", sweepTwoJobs)
	if resp2.Header.Get("X-Gossipd-Cached") != "true" {
		t.Error("second identical sweep not served from cache")
	}
	cached := readSweepLines(t, resp2.Body)
	resp2.Body.Close()
	if len(cached) != 2 || cached[0].Index != 0 || cached[1].Index != 1 {
		t.Errorf("cached replay not in job order: %+v", cached)
	}
}

// TestSweepLabelsPartOfIdentity: labels are echoed on response lines, so a
// relabeled grid must not share a cached replay with another client's.
func TestSweepLabelsPartOfIdentity(t *testing.T) {
	relabel := func(label string) SweepRequest {
		return SweepRequest{Jobs: []SweepJobRequest{{
			Label: label, Kind: "debruijn",
			Params: map[string]int{"degree": 2, "diameter": 4}, Protocol: "periodic-half",
		}}}
	}
	_, _, kA, err := normalizeSweep(relabel("run-A"), 16)
	if err != nil {
		t.Fatal(err)
	}
	_, _, kB, _ := normalizeSweep(relabel("run-B"), 16)
	_, _, kDef, _ := normalizeSweep(relabel(""), 16)
	if kA == kB || kA == kDef || kB == kDef {
		t.Fatalf("relabeled grids share keys: %q %q %q", kA, kB, kDef)
	}

	s, ts := newTestServer(t, Config{})
	respA := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", relabel("run-A"))
	linesA := readSweepLines(t, respA.Body)
	respA.Body.Close()
	respB := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", relabel("run-B"))
	linesB := readSweepLines(t, respB.Body)
	respB.Body.Close()
	if len(linesA) != 1 || linesA[0].Label != "run-A" {
		t.Errorf("grid A lines: %+v", linesA)
	}
	if len(linesB) != 1 || linesB[0].Label != "run-B" {
		t.Errorf("grid B served grid A's labels: %+v", linesB)
	}
	if sims := s.Metrics().Snapshot().Simulations; sims != 2 {
		t.Errorf("two distinct grids ran %d simulations, want 2", sims)
	}
}

// TestSweepDedup64Concurrent is the acceptance test for the cache +
// singleflight layer: 64 concurrent identical sweep requests must run
// exactly one underlying simulation, verified both by the simulation
// counter and by the rounds-simulated counter matching a single reference
// run.
func TestSweepDedup64Concurrent(t *testing.T) {
	// Reference: one run of the same grid on a fresh server.
	ref, tsRef := newTestServer(t, Config{})
	resp := postJSON(t, tsRef.Client(), tsRef.URL+"/v1/sweep", sweepTwoJobs)
	if lines := readSweepLines(t, resp.Body); len(lines) != 2 {
		t.Fatalf("reference run produced %d lines", len(lines))
	}
	resp.Body.Close()
	refRounds := ref.Metrics().Snapshot().Rounds
	if refRounds == 0 {
		t.Fatal("reference run simulated zero rounds")
	}

	s, ts := newTestServer(t, Config{})
	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, _ := json.Marshal(sweepTwoJobs)
			resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var lines []sweepLine
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var line sweepLine
				if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
					errs <- err
					return
				}
				lines = append(lines, line)
			}
			if len(lines) != 2 {
				errs <- fmt.Errorf("got %d lines, want 2", len(lines))
				return
			}
			for _, line := range lines {
				if line.Report == nil {
					errs <- fmt.Errorf("line %d missing report", line.Index)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := s.Metrics().Snapshot()
	if snap.Simulations != 1 {
		t.Errorf("%d concurrent identical sweeps ran %d simulations, want exactly 1", clients, snap.Simulations)
	}
	if snap.Rounds != refRounds {
		t.Errorf("simulated %d rounds for %d concurrent sweeps, single run simulates %d", snap.Rounds, clients, refRounds)
	}
	if snap.CacheHits+snap.DedupShared < clients-1 {
		t.Errorf("hits (%d) + dedup (%d) < %d: some requests recomputed", snap.CacheHits, snap.DedupShared, clients-1)
	}
}

// TestSweepCancelMidStreamFreesWorker is the acceptance test for
// cancel-on-disconnect: a client that walks away mid-stream cancels the
// underlying sweep, the worker frees up, and the aborted result is not
// cached.
func TestSweepCancelMidStreamFreesWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Job 0 finishes in milliseconds; job 1 needs seconds of simulation.
	slowSweep := SweepRequest{Jobs: []SweepJobRequest{
		{Kind: "debruijn", Params: map[string]int{"degree": 2, "diameter": 4}, Protocol: "periodic-half"},
		{Kind: "path", Params: map[string]int{"nodes": 900}, Protocol: "zigzag"},
	}}
	_, _, key, err := normalizeSweep(slowSweep, 16)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	data, _ := json.Marshal(slowSweep)
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line before cancel: %v", sc.Err())
	}
	var first sweepLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad first line: %v", err)
	}
	if first.Index != 0 || first.Report == nil {
		t.Fatalf("first streamed line should be the fast job: %+v", first)
	}
	// Disconnect mid-stream.
	cancel()

	waitFor(t, 10*time.Second, "worker to free after client disconnect", func() bool {
		snap := s.Metrics().Snapshot()
		return snap.Inflight == 0 && snap.Queued == 0
	})
	// The aborted sweep must not be cached...
	if _, ok := s.cache.get(key); ok {
		t.Error("cancelled sweep was cached")
	}
	// ...and no simulation keeps burning rounds in the background.
	r1 := s.Metrics().Snapshot().Rounds
	time.Sleep(150 * time.Millisecond)
	if r2 := s.Metrics().Snapshot().Rounds; r2 != r1 {
		t.Errorf("rounds still advancing after cancellation: %d -> %d", r1, r2)
	}
	// The server stays fully usable.
	resp2 := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeDB25)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("follow-up request failed with %d", resp2.StatusCode)
	}
	resp2.Body.Close()
}

func TestQueueSaturation429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	slow := func(budget int) AnalyzeRequest {
		return AnalyzeRequest{
			Kind: "path", Params: map[string]int{"nodes": 700},
			Protocol: "zigzag", Budget: budget, // distinct budgets → distinct keys
		}
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	fire := func(ctx context.Context, req AnalyzeRequest) {
		data, _ := json.Marshal(req)
		r, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/analyze", bytes.NewReader(data))
		resp, err := ts.Client().Do(r)
		if err == nil {
			resp.Body.Close()
		}
	}
	go fire(ctx1, slow(100001))
	waitFor(t, 10*time.Second, "first request to occupy the worker", func() bool {
		return s.Metrics().Snapshot().Inflight == 1
	})
	go fire(ctx2, slow(100002))
	waitFor(t, 10*time.Second, "second request to queue", func() bool {
		return s.Metrics().Snapshot().Queued == 1
	})

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", slow(100003))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()
	if s.Metrics().Snapshot().Rejected == 0 {
		t.Error("rejection not counted")
	}

	// Disconnecting both clients frees the worker and the queue slot.
	cancel1()
	cancel2()
	waitFor(t, 10*time.Second, "pool to drain after disconnects", func() bool {
		snap := s.Metrics().Snapshot()
		return snap.Inflight == 0 && snap.Queued == 0
	})
}

func TestAsyncSweepJob(t *testing.T) {
	spool := t.TempDir()
	s, ts := newTestServer(t, Config{SpoolDir: spool})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/sweep?async=true", sweepTwoJobs)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	accepted := decodeBody[struct {
		ID        string `json:"id"`
		StatusURL string `json:"status_url"`
	}](t, resp)
	if accepted.ID == "" || accepted.StatusURL != "/v1/jobs/"+accepted.ID {
		t.Fatalf("bad accept payload: %+v", accepted)
	}

	var job Job
	waitFor(t, 15*time.Second, "async sweep to finish", func() bool {
		r, err := ts.Client().Get(ts.URL + accepted.StatusURL)
		if err != nil {
			return false
		}
		job = decodeBody[Job](t, r)
		return job.terminal()
	})
	if job.Status != JobDone {
		t.Fatalf("job finished as %s (%s)", job.Status, job.Error)
	}
	if len(job.Results) != 2 || job.Results[0].Index != 0 || job.Results[1].Index != 1 {
		t.Fatalf("job results wrong: %+v", job.Results)
	}
	for _, line := range job.Results {
		if line.Report == nil {
			t.Errorf("job line %d missing report", line.Index)
		}
	}
	if job.Created.IsZero() || job.Started.IsZero() || job.Finished.IsZero() {
		t.Errorf("job timestamps incomplete: %+v", job)
	}

	// The async result lands in the same cache as sync requests.
	resp2 := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", sweepTwoJobs)
	if resp2.Header.Get("X-Gossipd-Cached") != "true" {
		t.Error("sync request after async job missed the cache")
	}
	resp2.Body.Close()

	// Persistence: a fresh store over the same spool serves the job (the
	// restart path).
	restarted, err := newJobStore(spool, 10)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := restarted.get(job.ID)
	if !ok {
		t.Fatal("job not reloadable from the spool")
	}
	if back.Status != JobDone || len(back.Results) != 2 {
		t.Errorf("reloaded job corrupt: %+v", back)
	}

	// Unknown and malicious ids 404.
	for _, id := range []string{"jffffffffffffffff", "../../etc/passwd", "j....."} {
		r, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			continue
		}
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("job %q: status %d, want 404", id, r.StatusCode)
		}
		r.Body.Close()
	}
	_ = s
}

// TestAsyncAnalyzeSharesPoolAndCache: the async path runs through the same
// worker accounting and result cache as the synchronous one — an async job
// counts as a simulation, and its result serves later sync requests.
func TestAsyncAnalyzeSharesPoolAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/analyze?async=true", analyzeDB25)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	accepted := decodeBody[struct {
		ID string `json:"id"`
	}](t, resp)
	var job Job
	waitFor(t, 15*time.Second, "async analyze to finish", func() bool {
		r, err := ts.Client().Get(ts.URL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			return false
		}
		job = decodeBody[Job](t, r)
		return job.terminal()
	})
	if job.Status != JobDone || job.Report == nil {
		t.Fatalf("job finished as %s with report %v (%s)", job.Status, job.Report, job.Error)
	}
	if sims := s.Metrics().Snapshot().Simulations; sims != 1 {
		t.Errorf("async analyze ran %d counted simulations, want 1", sims)
	}
	resp2 := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeDB25)
	env := decodeBody[struct {
		Cached bool `json:"cached"`
	}](t, resp2)
	if !env.Cached {
		t.Error("sync request after async analyze missed the cache")
	}
	if sims := s.Metrics().Snapshot().Simulations; sims != 1 {
		t.Errorf("follow-up request re-simulated: %d simulations", sims)
	}
}

func TestAsyncAnalyzeIncompleteCheckpoints(t *testing.T) {
	spool := t.TempDir()
	_, ts := newTestServer(t, Config{SpoolDir: spool})
	req := analyzeDB25
	req.Budget = 3 // far below completion
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/analyze?async=true", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	accepted := decodeBody[struct {
		ID string `json:"id"`
	}](t, resp)

	var job Job
	waitFor(t, 15*time.Second, "async analyze to finish", func() bool {
		r, err := ts.Client().Get(ts.URL + "/v1/jobs/" + accepted.ID)
		if err != nil {
			return false
		}
		job = decodeBody[Job](t, r)
		return job.terminal()
	})
	if job.Status != JobIncomplete {
		t.Fatalf("job finished as %s, want incomplete (%s)", job.Status, job.Error)
	}
	if job.Checkpoint == "" {
		t.Fatal("incomplete job has no checkpoint")
	}
	f, err := os.Open(job.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := systolic.ReadCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Round != 3 {
		t.Errorf("checkpoint at round %d, want 3", ck.Round)
	}

	// The persisted checkpoint resumes offline to completion.
	net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(5))
	if err != nil {
		t.Fatal(err)
	}
	p, err := systolic.NewProtocol("periodic-half", net, 3)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := systolic.NewEngine(net, p, systolic.WithRoundBudget(systolic.DefaultRoundBudget))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Restore(ck); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Measured <= 3 {
		t.Errorf("resumed run measured %d rounds, want > 3", rep.Measured)
	}
}

func TestHealthzMetricsAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeBody[map[string]any](t, resp)
	if health["status"] != "ok" {
		t.Errorf("health status %v", health["status"])
	}

	// Warm the cache, then check the metrics text.
	postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeDB25).Body.Close()
	postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeDB25).Body.Close()
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`gossipd_requests_total{endpoint="analyze"} 2`,
		"gossipd_cache_hits_total 1",
		"gossipd_program_cache_misses_total 1",
		"gossipd_program_cache_hits_total 0",
		"gossipd_simulations_total 1",
		"gossipd_rounds_simulated_total",
		"gossipd_inflight_sessions 0",
		"gossipd_cache_hit_ratio 0.5",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Drain: new computations 503, cached results and read-only endpoints
	// keep serving.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{
		Kind: "kautz", Params: map[string]int{"degree": 2, "diameter": 4}, Protocol: "periodic-full",
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server answered %d to new work, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeDB25)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining server refused a cached result: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if h := decodeBody[map[string]any](t, resp); h["status"] != "draining" {
		t.Errorf("health status %v, want draining", h["status"])
	}
}
