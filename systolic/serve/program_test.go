package serve

import (
	"context"
	"testing"

	"repro/systolic"
)

// TestProgramCacheReuse: the first analyze for a schedule pays
// build+validate+compile; later analyses with the same topology, protocol
// and budget — result hit or miss — reuse the cached Program. Requests
// that differ only in budget compile separately (the budget can shape
// greedy constructions).
func TestProgramCacheReuse(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	n, err := normalizeAnalyze(analyzeDB25)
	if err != nil {
		t.Fatal(err)
	}
	pr1, err := s.compiledProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := s.compiledProgram(n)
	if err != nil {
		t.Fatal(err)
	}
	if pr1 != pr2 {
		t.Error("second lookup compiled a fresh program instead of reusing the cache")
	}
	snap := s.Metrics().Snapshot()
	if snap.ProgramMisses != 1 || snap.ProgramHits != 1 {
		t.Errorf("program cache misses=%d hits=%d, want 1/1", snap.ProgramMisses, snap.ProgramHits)
	}

	// A different budget is a different program identity.
	req := analyzeDB25
	req.Budget = 777
	nb, err := normalizeAnalyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if nb.progKey == n.progKey {
		t.Fatal("budget is not part of the program key")
	}
	pr3, err := s.compiledProgram(nb)
	if err != nil {
		t.Fatal(err)
	}
	if pr3 == pr1 {
		t.Error("different budget reused the same cached program")
	}

	// The cached program must drive sessions to the same report as a
	// compile-per-request path.
	sess, err := systolic.NewEngineFromProgram(pr1, systolic.WithRoundBudget(n.budget))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := sess.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	net, err := systolic.New(n.kind, n.paramList...)
	if err != nil {
		t.Fatal(err)
	}
	p, err := systolic.NewProtocol(n.protocol, net, n.budget)
	if err != nil {
		t.Fatal(err)
	}
	want, err := systolic.Analyze(context.Background(), net, p, systolic.WithRoundBudget(n.budget))
	if err != nil {
		t.Fatal(err)
	}
	if got.Measured != want.Measured || got.Network != want.Network || got.Period != want.Period {
		t.Errorf("cached-program report %+v differs from fresh report %+v", got, want)
	}
}

// TestProgramCacheAcrossRequests drives the HTTP path: an analyze for the
// same schedule under a different budget misses the result cache but
// reuses the compiled program.
func TestProgramCacheAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := analyzeDB25
	postJSON(t, ts.Client(), ts.URL+"/v1/analyze", req).Body.Close()
	req.Budget = 5000 // result-cache miss; the budget also keys a separate program
	postJSON(t, ts.Client(), ts.URL+"/v1/analyze", req).Body.Close()
	snap := s.Metrics().Snapshot()
	if snap.ProgramMisses != 2 {
		t.Errorf("distinct budgets should compile separately: misses=%d", snap.ProgramMisses)
	}

	// Identical request again: answered from the result cache, no program
	// lookup at all.
	postJSON(t, ts.Client(), ts.URL+"/v1/analyze", req).Body.Close()
	snap2 := s.Metrics().Snapshot()
	if snap2.ProgramMisses != snap.ProgramMisses || snap2.ProgramHits != snap.ProgramHits {
		t.Errorf("result-cache hit touched the program cache: %+v vs %+v", snap2, snap)
	}
	if snap2.CacheHits == 0 {
		t.Error("third request missed the result cache")
	}
}
