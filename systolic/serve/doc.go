// Package serve is the HTTP serving layer of the reproduction: a
// long-running JSON service (gossipd) that multiplexes many concurrent
// analyze/broadcast/sweep requests over the systolic engine.
//
// # Architecture
//
// Every request is normalized into a canonical cache key
// (systolic.RequestKey: operation, kind, sorted params, protocol, budget,
// source). Results are served through a sharded LRU cache; concurrent
// identical requests coalesce onto one underlying simulation (a
// reference-counted singleflight whose computation is cancelled only when
// every subscribed client has disconnected). The simulations themselves run
// on a worker pool of Config.Workers slots with a bounded wait queue —
// beyond Config.QueueDepth waiters the server answers 429.
//
// Behind the result cache sits a second sharded LRU of compiled programs:
// an analyze that misses the result cache looks up its schedule (keyed by
// kind, params, protocol and budget — source- and operation-independent) in
// the program cache and, on a hit, starts its session from the cached
// network + compiled schedule IR (systolic.Program via
// NewEngineFromProgram), skipping topology build, protocol construction,
// validation and compilation entirely; only a cold schedule pays the full
// build→validate→compile pipeline, once. Compiled programs are immutable
// and shared by any number of concurrent sessions. Config.ProgramCacheSize
// bounds the cache; the gossipd_program_cache_hits_total /
// gossipd_program_cache_misses_total counters on /metrics (and the
// program_entries gauge on /healthz) expose its behavior.
//
// # Wire schema
//
// POST /v1/analyze — analyze one protocol on one topology:
//
//	{"kind": "debruijn", "params": {"degree": 2, "diameter": 5},
//	 "protocol": "periodic-half", "budget": 100000}
//
// responds with an envelope around the systolic.Report JSON schema (pinned
// by the systolic golden tests):
//
//	{"key": "analyze|debruijn|degree=2,diameter=5|periodic-half|100000|-1",
//	 "cached": false, "report": {"network": "DB(2,5)", ...}}
//
// With ?async=true the response is 202 {"id", "status_url"} and the job is
// polled via GET /v1/jobs/{id}. An async analyze that exhausts its round
// budget persists a session checkpoint (the systolic.Checkpoint JSON schema,
// written through Snapshot/WriteCheckpoint) into the spool directory and
// finishes with status "incomplete", so the run can be resumed offline with
// a higher budget.
//
// POST /v1/certify — run the certification pipeline on one protocol and
// topology (the same request shape as /v1/analyze):
//
//	{"kind": "hypercube", "params": {"dimension": 12},
//	 "protocol": "hypercube", "budget": 100000}
//
// responds with an envelope around the systolic.Certificate JSON schema —
// the measured rounds plus every applicable verdict of the paper's
// lower-bound machinery:
//
//	{"key": "certify|hypercube|dimension=12|hypercube|100000|-1",
//	 "cached": false,
//	 "report": {"network": "hypercube-12", "mode": "full-duplex",
//	  "period": 12, "complete": true, "measured_rounds": 12,
//	  "budget": 100000, "lower_bound": {...}, "delay_verts": 49152,
//	  "delay_arcs": 540672, "lambda": 0.5790, "norm_at_root": 0.9999,
//	  "norm_cap": 1, "norm_checked": true, "norm_respected": true,
//	  "theorem_applicable": true, "theorem_respected": true}}
//
// A budget-truncated run is NOT an error here (unlike /v1/analyze's 422):
// the certificate comes back 200 with "complete": false, the delay digraph
// of the executed prefix, and the theorem verdicts marked inapplicable.
// Certifications ride the same program cache as analyses and additionally a
// delay-plan cache (Config.DelayPlanCacheSize, keyed like programs) holding
// each schedule's compiled delay lowering, so a repeated certification
// rebuilds neither the execution schedule nor the delay digraph; the
// gossipd_delay_plan_cache_hits_total / _misses_total counters on /metrics
// (and the plan_entries gauge on /healthz) expose the cache.
// ?async=true submits a job like /v1/analyze (without checkpointing —
// truncation is a result, not a failure).
//
// A "scenario" block turns the certification into a Monte-Carlo run of the
// same compiled schedule under a deterministic fault model:
//
//	{"kind": "hypercube", "params": {"dimension": 10},
//	 "protocol": "periodic-full",
//	 "scenario": {"loss": 0.05, "seed": 1, "trials": 256,
//	  "arc_loss": [{"from": 1, "to": 2, "loss": 0.25}],
//	  "crashes": [{"node": 3, "from": 4, "to": 9}],
//	  "delete_arcs": [[5, 6]]}}
//
// loss is the uniform per-arc per-round delivery loss probability;
// arc_loss overrides it for named arcs; crashes silences a node for the
// half-open round window [from, to); delete_arcs removes arcs outright.
// The seed is part of the cache identity: every trial derives its own
// splitmix64 stream from (seed, trial index), so identical requests replay
// the identical distribution regardless of worker count, and changing only
// the seed is a distinct cache entry (the key grows a
// "|scenario{...}|trials=N" suffix — systolic.ScenarioKey — so scenario
// and plain certifications can never collide). trials defaults to 64 and
// is capped at systolic.MaxScenarioTrials.
//
// The response envelope wraps the systolic.StatisticalCertificate schema:
// the deterministic baseline certificate ("deterministic"), the paper's
// lower bound ("lower_bound"), and the trial statistics —
//
//	{"report": {"network": "hypercube-10", "mode": "full-duplex",
//	 "period": 10, "budget": 100000,
//	 "scenario": {"loss": 0.05, "seed": 1},
//	 "lower_bound": {...}, "deterministic": {...},
//	 "trials": {"trials": 256, "completed": 256, "truncated": 0,
//	  "completion_rate": 1, "mean_rounds": 12.4, "min_rounds": 11,
//	  "max_rounds": 16, "p50": 12, "p90": 14, "p99": 15,
//	  "distribution_fp": 1234567890},
//	 "bound_respected": true, "mean_drift_rounds": 2.4}}
//
// bound_respected compares the measured median against the deterministic
// lower bound; mean_drift_rounds is the mean completion round minus the
// deterministic run's. Trials that exhaust the round budget are censored,
// not errors: they are counted in "truncated" (and excluded from the
// quantiles), and an async scenario job finishes "done" with those counts
// in its result rather than failing. distribution_fp fingerprints the
// per-trial outcome vector, so cached replays are verifiably identical.
// The gossipd_scenario_trials_total / _truncated_total counters on
// /metrics expose trial volume.
//
// POST /v1/broadcast — measure broadcast times. A single-source request
// simulates the BFS-tree whispering schedule from that source:
//
//	{"kind": "hypercube", "params": {"dimension": 6}, "source": 0}
//
// and responds with a systolic.BroadcastReport envelope. A request
// carrying a sources block instead runs a flooding scan — the bit-parallel
// kernel steps up to 64 sources at once through the network's one shared
// flooding schedule, so each measured time is the source's directed
// eccentricity — and responds with a systolic.BroadcastAllReport:
//
//	{"kind": "hypercube", "params": {"dimension": 6},
//	 "sources": {"all": true}}
//	{"kind": "hypercube", "params": {"dimension": 6},
//	 "sources": {"list": [0, 5, 9]}}
//
// Exactly one of "all" and "list" must be set; the list is canonicalized
// (sorted, deduplicated) before scanning and keying, and the report's
// "sources" field echoes the canonical form ("rounds_by_source" aligns
// with it). The older "all_sources": true boolean is deprecated but still
// accepted: it canonicalizes to {"sources": {"all": true}} — same
// behavior, same cache key — so results cached before the sources block
// existed keep replaying. The gossipd_broadcast_sources_total counter on
// /metrics tracks how many sources the scans have measured.
//
// POST /v1/sweep — a grid of analyze jobs:
//
//	{"budget": 200000, "jobs": [
//	  {"label": "db", "kind": "debruijn",
//	   "params": {"degree": 2, "diameter": 5}, "protocol": "periodic-half"},
//	  {"kind": "kautz", "params": {"degree": 2, "diameter": 4},
//	   "protocol": "periodic-full"}]}
//
// streams one JSON line per job (Content-Type application/x-ndjson) in
// completion order, each line carrying its grid index:
//
//	{"index": 1, "label": "kautz/periodic-full", "network": "K(2,4)",
//	 "n": 24, "report": {...}}
//	{"index": 0, "label": "db", "network": "DB(2,5)", "n": 32,
//	 "report": {...}}
//
// A client that disconnects mid-stream detaches from the computation; when
// the last client detaches, the sweep's context is cancelled and the worker
// freed. Completed sweeps are cached whole and replayed in job order.
// ?async=true submits the sweep as a job instead.
//
// GET /v1/jobs/{id} — poll an async job:
//
//	{"id": "j0123456789abcdef", "op": "sweep", "status": "done",
//	 "created": "...", "started": "...", "finished": "...",
//	 "results": [...]}
//
// status is queued | running | done | failed | incomplete. With a spool
// directory configured, terminal jobs persist as <id>.json and survive both
// memory eviction and process restarts.
//
// GET /v1/kinds — the topology and protocol catalogs:
//
//	{"topologies": [{"kind": "debruijn", "params": ["degree", "diameter"]},
//	  ...],
//	 "protocols": ["cycle2", "doubling", ...]}
//
// GET /healthz — liveness plus load: {"status": "ok" | "draining",
// "version" (Config.Version, "dev" when unset), "uptime_seconds",
// "inflight", "queued", "cache_entries", "program_entries",
// "plan_entries"}.
//
// GET /metrics — Prometheus text format: requests by endpoint, cache
// hits/misses and hit ratio, program-cache hits/misses, delay-plan-cache
// hits/misses, dedup shares, simulations run, rounds simulated, scenario
// trials run and truncated, queue rejections, in-flight sessions, queue
// depth.
//
// # Errors
//
// Validation failures are 400 with {"error": "..."}; a saturated queue is
// 429 (Retry-After: 1); a round budget exceeded synchronously is 422; a
// draining server answers 503 to computation-starting requests while
// read-only endpoints keep serving. Graceful shutdown is Drain (stop
// accepting, wait for in-flight sessions) followed by Close.
package serve
