package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is the server's instrumentation: monotone counters plus a few
// gauges, exported in Prometheus text format on GET /metrics and as a
// Snapshot for programmatic checks (tests, /healthz, the loadtest driver).
// All methods are safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Int64 // per-endpoint request counters

	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	programHits   atomic.Int64 // analyses that reused a cached compiled program
	programMisses atomic.Int64 // analyses that had to build+validate+compile
	planHits      atomic.Int64 // certifications that reused a cached delay plan
	planMisses    atomic.Int64 // certifications that compiled their delay lowering
	dedupShared   atomic.Int64 // requests attached to an already-running flight
	simulations   atomic.Int64 // underlying simulations actually run
	rounds        atomic.Int64 // simulated rounds, via the trace observer
	rejected      atomic.Int64 // 429s from a saturated queue
	inflight      atomic.Int64 // computations currently running
	queued        atomic.Int64 // computations waiting for a worker
	jobsDone      atomic.Int64 // async jobs finished (any terminal status)

	scenarioTrials    atomic.Int64 // Monte-Carlo scenario trials executed
	scenarioTruncated atomic.Int64 // scenario trials censored at their round budget

	broadcastSources atomic.Int64 // sources measured by broadcast scans
	implicitScans    atomic.Int64 // broadcast scans streamed on implicit (generator-only) networks
	implicitPrograms atomic.Int64 // generator programs compiled for implicit instances
}

func newMetrics() *Metrics {
	return &Metrics{requests: make(map[string]*atomic.Int64)}
}

func (m *Metrics) request(endpoint string) {
	m.mu.Lock()
	c := m.requests[endpoint]
	if c == nil {
		c = new(atomic.Int64)
		m.requests[endpoint] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// Snapshot is a point-in-time copy of every metric.
type Snapshot struct {
	Requests      map[string]int64 `json:"requests"`
	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	ProgramHits   int64            `json:"program_cache_hits"`
	ProgramMisses int64            `json:"program_cache_misses"`
	PlanHits      int64            `json:"delay_plan_cache_hits"`
	PlanMisses    int64            `json:"delay_plan_cache_misses"`
	DedupShared   int64            `json:"dedup_shared"`
	Simulations   int64            `json:"simulations"`
	Rounds        int64            `json:"rounds_simulated"`
	Rejected      int64            `json:"rejected"`
	Inflight      int64            `json:"inflight"`
	Queued        int64            `json:"queued"`
	JobsDone      int64            `json:"jobs_done"`

	ScenarioTrials    int64 `json:"scenario_trials"`
	ScenarioTruncated int64 `json:"scenario_trials_truncated"`

	BroadcastSources int64 `json:"broadcast_sources"`
	ImplicitScans    int64 `json:"implicit_scans"`
	ImplicitPrograms int64 `json:"implicit_programs"`
}

// HitRatio returns cache hits over cache-answerable lookups, 0 when none
// have happened yet.
func (s Snapshot) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Snapshot copies every metric at one instant (counters are read
// individually; the snapshot is not atomic across metrics).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:      make(map[string]int64),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		ProgramHits:   m.programHits.Load(),
		ProgramMisses: m.programMisses.Load(),
		PlanHits:      m.planHits.Load(),
		PlanMisses:    m.planMisses.Load(),
		DedupShared:   m.dedupShared.Load(),
		Simulations:   m.simulations.Load(),
		Rounds:        m.rounds.Load(),
		Rejected:      m.rejected.Load(),
		Inflight:      m.inflight.Load(),
		Queued:        m.queued.Load(),
		JobsDone:      m.jobsDone.Load(),

		ScenarioTrials:    m.scenarioTrials.Load(),
		ScenarioTruncated: m.scenarioTruncated.Load(),

		BroadcastSources: m.broadcastSources.Load(),
		ImplicitScans:    m.implicitScans.Load(),
		ImplicitPrograms: m.implicitPrograms.Load(),
	}
	m.mu.Lock()
	for ep, c := range m.requests {
		s.Requests[ep] = c.Load()
	}
	m.mu.Unlock()
	return s
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format, the body of GET /metrics.
func (m *Metrics) WritePrometheus(w io.Writer) {
	s := m.Snapshot()
	eps := make([]string, 0, len(s.Requests))
	for ep := range s.Requests {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	fmt.Fprintf(w, "# HELP gossipd_requests_total Requests received, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE gossipd_requests_total counter\n")
	for _, ep := range eps {
		fmt.Fprintf(w, "gossipd_requests_total{endpoint=%q} %d\n", ep, s.Requests[ep])
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("gossipd_cache_hits_total", "Requests answered from the result cache.", s.CacheHits)
	counter("gossipd_cache_misses_total", "Requests that missed the result cache.", s.CacheMisses)
	counter("gossipd_program_cache_hits_total", "Analyses that reused a cached compiled program.", s.ProgramHits)
	counter("gossipd_program_cache_misses_total", "Analyses that built, validated and compiled their schedule.", s.ProgramMisses)
	counter("gossipd_delay_plan_cache_hits_total", "Certifications that reused a cached compiled delay plan.", s.PlanHits)
	counter("gossipd_delay_plan_cache_misses_total", "Certifications that compiled their delay lowering.", s.PlanMisses)
	counter("gossipd_dedup_shared_total", "Requests coalesced onto an already-running identical computation.", s.DedupShared)
	counter("gossipd_simulations_total", "Underlying simulations actually run.", s.Simulations)
	counter("gossipd_rounds_simulated_total", "Communication rounds simulated across all sessions.", s.Rounds)
	counter("gossipd_rejected_total", "Requests rejected with 429 because the worker queue was full.", s.Rejected)
	counter("gossipd_jobs_done_total", "Async jobs that reached a terminal status.", s.JobsDone)
	counter("gossipd_scenario_trials_total", "Monte-Carlo scenario trials executed.", s.ScenarioTrials)
	counter("gossipd_scenario_trials_truncated_total", "Scenario trials censored at their round budget.", s.ScenarioTruncated)
	counter("gossipd_broadcast_sources_total", "Sources measured by all-sources/subset broadcast scans.", s.BroadcastSources)
	counter("gossipd_implicit_scans_total", "Broadcast scans streamed on implicit (generator-only) networks.", s.ImplicitScans)
	counter("gossipd_implicit_programs_total", "Generator programs compiled for implicit instances.", s.ImplicitPrograms)
	gauge("gossipd_inflight_sessions", "Computations currently holding a worker.", s.Inflight)
	gauge("gossipd_queue_depth", "Computations waiting for a worker.", s.Queued)
	fmt.Fprintf(w, "# HELP gossipd_cache_hit_ratio Cache hits over cache lookups.\n")
	fmt.Fprintf(w, "# TYPE gossipd_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "gossipd_cache_hit_ratio %g\n", s.HitRatio())
}
