package serve

import (
	"container/list"
	"sync"
)

// resultCache is a sharded LRU over canonical request keys. Sharding keeps
// lock contention off the hot path when many goroutines hit the cache at
// once; each shard has its own mutex, map and recency list.
type resultCache struct {
	shards   []cacheShard
	perShard int
}

type cacheShard struct {
	mu    sync.Mutex
	byKey map[string]*list.Element
	lru   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	val any
}

const cacheShards = 16

// newResultCache builds a cache holding about capacity entries across
// cacheShards shards (each shard holds its own LRU quota, so the total is
// approximate under skewed key distributions).
func newResultCache(capacity int) *resultCache {
	perShard := (capacity + cacheShards - 1) / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &resultCache{shards: make([]cacheShard, cacheShards), perShard: perShard}
	for i := range c.shards {
		c.shards[i].byKey = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// shard picks the shard by an inline FNV-1a over the key: the cache sits on
// every request's hot path, so the hash must not allocate (hash/fnv would
// heap-allocate the hasher and a byte copy of the key).
func (c *resultCache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// get returns the cached value for key and marks it most recently used.
func (c *resultCache) get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// add inserts (or refreshes) a value, evicting the shard's least recently
// used entry beyond its quota.
func (c *resultCache) add(key string, val any) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.lru.MoveToFront(el)
		return
	}
	s.byKey[key] = s.lru.PushFront(&cacheEntry{key: key, val: val})
	for s.lru.Len() > c.perShard {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the total number of cached entries.
func (c *resultCache) len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}
