package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/systolic"
)

// Config tunes a Server. The zero value is usable: every field has a
// default.
type Config struct {
	// Workers bounds concurrently running computations (default
	// GOMAXPROCS). A sweep counts as one unit regardless of its internal
	// parallelism.
	Workers int
	// QueueDepth bounds computations waiting for a worker; beyond it the
	// server answers 429 (default 64).
	QueueDepth int
	// CacheSize bounds the result cache (default 1024 entries).
	CacheSize int
	// ProgramCacheSize bounds the compiled-program cache (default 256
	// entries): built networks plus their compiled schedules, kept across
	// requests so a result-cache miss skips build+validate+compile.
	ProgramCacheSize int
	// DelayPlanCacheSize bounds the compiled delay-plan cache (default 256
	// entries): the certification-side artifact cached alongside each
	// program, so a repeated /v1/certify never rebuilds the delay digraph.
	DelayPlanCacheSize int
	// SpoolDir persists async job results (and the checkpoints of
	// budget-incomplete analyze jobs) as JSON files; empty keeps jobs in
	// memory only.
	SpoolDir string
	// MaxSweepJobs bounds the grid size of one sweep request (default 256).
	MaxSweepJobs int
	// MaxScanNodes bounds the vertex count of one broadcast scan (default
	// 2^24, the largest instance whose streaming scan is known to stay
	// under a gigabyte). Implicit (generator-only) networks make huge
	// instances cheap to *build*, so the guard moved from construction
	// time to scan admission: a /v1/broadcast scan request on a larger
	// network answers 400.
	MaxScanNodes int
	// MaxJobs bounds async jobs held in memory (default 1024).
	MaxJobs int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Version is the build/version string reported on /healthz (default
	// "dev"; binaries stamp it from their build info).
	Version string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.ProgramCacheSize <= 0 {
		c.ProgramCacheSize = 256
	}
	if c.DelayPlanCacheSize <= 0 {
		c.DelayPlanCacheSize = 256
	}
	if c.MaxSweepJobs <= 0 {
		c.MaxSweepJobs = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxScanNodes <= 0 {
		c.MaxScanNodes = 1 << 24
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	return c
}

// Server multiplexes concurrent gossip analyses over the systolic engine:
// requests normalize to canonical cache keys (systolic.RequestKey), results
// come from a sharded LRU, concurrent identical requests coalesce onto one
// simulation, and the simulations themselves run on a bounded worker pool.
// See the package documentation for the wire schema.
type Server struct {
	cfg      Config
	cache    *resultCache
	programs *resultCache // compiled *systolic.Program by program key
	plans    *resultCache // compiled *systolic.DelayPlan by program key
	flights  group
	jobs     *jobStore
	metrics  *Metrics
	mux      *http.ServeMux

	sem        chan struct{}
	wg         sync.WaitGroup // in-flight computations and async jobs
	drainMu    sync.Mutex     // guards draining and makes check+wg.Add atomic
	draining   bool
	base       context.Context
	baseCancel context.CancelFunc
	started    time.Time
}

var (
	errSaturated = errors.New("serve: worker queue is full")
	errDraining  = errors.New("serve: server is draining")
	errNoResult  = errors.New("serve: computation finished without a result")
)

// New builds a Server. Callers mount Handler on an http.Server and should
// Drain (then Close) on shutdown.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	jobs, err := newJobStore(cfg.SpoolDir, cfg.MaxJobs)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheSize),
		programs: newResultCache(cfg.ProgramCacheSize),
		plans:    newResultCache(cfg.DelayPlanCacheSize),
		jobs:     jobs,
		metrics:  newMetrics(),
		sem:      make(chan struct{}, cfg.Workers),
		started:  time.Now(),
	}
	s.base, s.baseCancel = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/kinds", s.handleKinds)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/certify", s.handleCertify)
	mux.HandleFunc("POST /v1/broadcast", s.handleBroadcast)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's instrumentation (tests and the loadtest
// driver read snapshots from it).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Drain stops accepting computation-starting requests (they get 503) and
// waits for every in-flight computation and async job to finish, or for the
// context to expire. Read-only endpoints keep serving.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Close cancels every remaining computation. Call it after Drain (or
// instead of it, for an abrupt stop).
func (s *Server) Close() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.baseCancel()
}

func (s *Server) isDraining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// startWork registers one computation (or async job) with the drain
// accounting, atomically with the draining check — a work unit can never
// slip in between Drain's flag store and its wg.Wait. The returned done
// must be called when the work finishes.
func (s *Server) startWork() (done func(), err error) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	s.wg.Add(1)
	return func() { s.wg.Done() }, nil
}

// spawnFlight starts the computation for a flight the caller just created,
// under the drain accounting; a drain that began after the caller's check
// fails the flight (and thus every subscriber) with errDraining.
func (s *Server) spawnFlight(key string, f *flight, compute func(ctx context.Context, emit func(any)) error) {
	done, err := s.startWork()
	if err != nil {
		go s.flights.run(key, f, func(context.Context, func(any)) error { return err })
		return
	}
	go func() {
		defer done()
		s.flights.run(key, f, compute)
	}()
}

// roundsObserver counts every simulated round into the metrics through the
// systolic trace-observer hook.
func (s *Server) roundsObserver() systolic.Option {
	return systolic.WithTrace(systolic.ObserverFunc(func(round, knowledge, target int) {
		s.metrics.rounds.Add(1)
	}))
}

// acquire claims a worker slot, queueing up to QueueDepth waiters; beyond
// that it fails fast with errSaturated (HTTP 429).
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
	default:
		if s.metrics.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.metrics.queued.Add(-1)
			s.metrics.rejected.Add(1)
			return nil, errSaturated
		}
		defer s.metrics.queued.Add(-1)
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.metrics.inflight.Add(1)
	return func() {
		s.metrics.inflight.Add(-1)
		<-s.sem
	}, nil
}

// --- wire helpers ---

// resultEnvelope wraps single-value responses.
type resultEnvelope struct {
	// Key is the canonical cache key the request normalized to.
	Key string `json:"key"`
	// Cached reports whether the result came straight from the cache.
	Cached bool `json:"cached"`
	// Report is the operation's report object.
	Report any `json:"report"`
}

// sweepLine is one JSON line of a sweep stream (systolic.SweepResult with
// the error rendered as a string).
type sweepLine struct {
	Index   int              `json:"index"`
	Label   string           `json:"label,omitempty"`
	Network string           `json:"network,omitempty"`
	N       int              `json:"n,omitempty"`
	Report  *systolic.Report `json:"report,omitempty"`
	Error   string           `json:"error,omitempty"`
}

func toSweepLine(res systolic.SweepResult) sweepLine {
	line := sweepLine{Index: res.Index, Label: res.Label, Network: res.Network, N: res.N, Report: res.Report}
	if res.Err != nil {
		line.Error = res.Err.Error()
	}
	return line
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	var br badRequestError
	status := http.StatusInternalServerError
	switch {
	case errors.As(err, &br),
		errors.Is(err, systolic.ErrBadParam),
		errors.Is(err, systolic.ErrUnknownTopology),
		errors.Is(err, systolic.ErrUnknownProtocol),
		errors.Is(err, systolic.ErrImplicit):
		status = http.StatusBadRequest
	case errors.Is(err, systolic.ErrMemoryBudget):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, errSaturated):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, errDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, systolic.ErrIncomplete):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeJSON[T any](w http.ResponseWriter, r *http.Request, maxBytes int64, v *T) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("invalid request body: %v", err)
	}
	return nil
}

// --- read-only endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("healthz")
	status := "ok"
	if s.isDraining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          status,
		"version":         s.cfg.Version,
		"uptime_seconds":  time.Since(s.started).Seconds(),
		"inflight":        s.metrics.inflight.Load(),
		"queued":          s.metrics.queued.Load(),
		"cache_entries":   s.cache.len(),
		"program_entries": s.programs.len(),
		"plan_entries":    s.plans.len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("kinds")
	type kindInfo struct {
		Kind   string   `json:"kind"`
		Params []string `json:"params"`
	}
	kinds := systolic.Kinds()
	topos := make([]kindInfo, 0, len(kinds))
	for _, k := range kinds {
		t, ok := systolic.Lookup(k)
		if !ok {
			continue
		}
		topos = append(topos, kindInfo{Kind: k, Params: t.ParamNames()})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"topologies": topos,
		"protocols":  systolic.ProtocolKinds(),
	})
}

// --- single-value operations ---

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("analyze")
	var req AnalyzeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.writeError(w, err)
		return
	}
	n, err := normalizeAnalyze(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if r.URL.Query().Get("async") == "true" {
		// Async jobs share the cache, worker pool, accounting and
		// singleflight with the synchronous path; only the waiting happens
		// through the job store.
		s.submitAsync(w, systolic.OpAnalyze, n.key, func(ctx context.Context, jobID string) (any, error) {
			items, err := s.sharedItems(ctx, n.key, 1, s.valueCompute(n.key, func(ctx context.Context) (any, error) {
				return s.runAnalyzeSession(ctx, n, jobID)
			}))
			if err != nil {
				return nil, err
			}
			return items[0], nil
		})
		return
	}
	s.serveValue(w, r, n.key, func(ctx context.Context) (any, error) {
		return s.runAnalyzeSession(ctx, n, "")
	})
}

// compiledProgram resolves an analyze request to a compiled schedule
// through the program cache: a hit returns the shared immutable
// network+program pair built by an earlier request (compiled programs are
// safe to execute from any number of concurrent sessions); a miss pays
// build+validate+compile once and publishes the result for the next
// request with the same topology, protocol and budget.
func (s *Server) compiledProgram(n normalized) (*systolic.Program, error) {
	if v, ok := s.programs.get(n.progKey); ok {
		s.metrics.programHits.Add(1)
		return v.(*systolic.Program), nil
	}
	s.metrics.programMisses.Add(1)
	net, err := systolic.New(n.kind, n.paramList...)
	if err != nil {
		return nil, err
	}
	p, err := systolic.NewProtocol(n.protocol, net, n.budget)
	if err != nil {
		return nil, err
	}
	pr, err := systolic.CompileProtocol(net, p)
	if err != nil {
		return nil, err
	}
	if pr.GenProgram() != nil {
		s.metrics.implicitPrograms.Add(1)
	}
	s.programs.add(n.progKey, pr)
	return pr, nil
}

// runAnalyzeSession drives one analyze through the resumable engine,
// executing the cached compiled program. For an async job that hits its
// round budget, the session is checkpointed into the spool
// (systolic.Snapshot + WriteCheckpoint) before the error returns, so the
// client can fetch the checkpoint and resume with a higher budget.
func (s *Server) runAnalyzeSession(ctx context.Context, n normalized, jobID string) (any, error) {
	pr, err := s.compiledProgram(n)
	if err != nil {
		return nil, err
	}
	sess, err := systolic.NewEngineFromProgram(pr, systolic.WithRoundBudget(n.budget), s.roundsObserver())
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	var rep any
	if pr.Broadcast() {
		// Generator-backed protocols (implicit instances) run broadcast
		// sessions; their report is the broadcast view of the certificate.
		rep, err = sess.AnalyzeBroadcast(ctx)
	} else {
		rep, err = sess.Analyze(ctx)
	}
	if err != nil {
		if jobID != "" && errors.Is(err, systolic.ErrIncomplete) {
			if path := s.jobs.checkpointFile(jobID); path != "" {
				if werr := writeCheckpointFile(path, sess); werr == nil {
					s.jobs.update(jobID, func(j *Job) {
						j.Checkpoint = path
					})
				}
			}
		}
		return nil, err
	}
	return rep, nil
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("certify")
	var req AnalyzeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.writeError(w, err)
		return
	}
	n, err := normalizeCertify(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	op := systolic.OpCertify
	compute := s.runCertifySession
	if n.scenario != nil {
		op = systolic.OpCertifyScenario
		compute = s.runCertifyScenario
	}
	if r.URL.Query().Get("async") == "true" {
		s.submitAsync(w, op, n.key, func(ctx context.Context, jobID string) (any, error) {
			items, err := s.sharedItems(ctx, n.key, 1, s.valueCompute(n.key, func(ctx context.Context) (any, error) {
				return compute(ctx, n)
			}))
			if err != nil {
				return nil, err
			}
			return items[0], nil
		})
		return
	}
	s.serveValue(w, r, n.key, func(ctx context.Context) (any, error) {
		return compute(ctx, n)
	})
}

// cachedDelayPlan resolves the compiled delay lowering for a request
// through the plan cache, compiling it from the (already cached) program on
// a miss. Plans are keyed like programs — same topology, protocol and
// budget — so the two caches hold matching entries and a warm schedule
// serves certifications with zero rebuild work.
func (s *Server) cachedDelayPlan(n normalized, pr *systolic.Program) (*systolic.DelayPlan, error) {
	if v, ok := s.plans.get(n.progKey); ok {
		s.metrics.planHits.Add(1)
		return v.(*systolic.DelayPlan), nil
	}
	s.metrics.planMisses.Add(1)
	dp, err := pr.DelayPlan()
	if err != nil {
		return nil, err
	}
	s.plans.add(n.progKey, dp)
	return dp, nil
}

// runCertifySession drives one certification: cached compiled program,
// cached delay plan, fresh session. A budget-truncated run is a valid
// certificate (Complete false, verdicts inapplicable), not an error, so it
// caches like any other result.
func (s *Server) runCertifySession(ctx context.Context, n normalized) (any, error) {
	pr, err := s.compiledProgram(n)
	if err != nil {
		return nil, err
	}
	opts := []systolic.Option{systolic.WithRoundBudget(n.budget), s.roundsObserver()}
	if pr.Broadcast() {
		// Broadcast certificates carry no delay-digraph section, so the
		// delay lowering (which needs explicit adjacency) is skipped.
		sess, err := systolic.NewEngineFromProgram(pr, opts...)
		if err != nil {
			return nil, err
		}
		defer sess.Close()
		return sess.Certify(ctx)
	}
	dp, err := s.cachedDelayPlan(n, pr)
	if err != nil {
		return nil, err
	}
	sess, err := systolic.NewEngineFromProgram(pr, append(opts, systolic.WithDelayPlan(dp))...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return sess.Certify(ctx)
}

// runCertifyScenario drives one Monte-Carlo scenario certification over
// the cached compiled program and delay plan. A budget-truncated trial is
// data, not an error — the StatisticalCertificate carries per-trial
// truncation counts — so async scenario jobs finish JobDone with the
// counts in the job result instead of failing; the only failures are
// invalid inputs and cancellation.
func (s *Server) runCertifyScenario(ctx context.Context, n normalized) (any, error) {
	pr, err := s.compiledProgram(n)
	if err != nil {
		return nil, err
	}
	dp, err := s.cachedDelayPlan(n, pr)
	if err != nil {
		return nil, err
	}
	cert, err := systolic.CertifyScenarioProgram(ctx, pr, n.scenario, n.trials,
		systolic.WithRoundBudget(n.budget), systolic.WithDelayPlan(dp), s.roundsObserver())
	if err != nil {
		return nil, err
	}
	s.metrics.scenarioTrials.Add(int64(cert.Trials.Trials))
	s.metrics.scenarioTruncated.Add(int64(cert.Trials.Truncated))
	return cert, nil
}

func writeCheckpointFile(path string, sess *systolic.Session) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := systolic.WriteCheckpoint(f, sess.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (s *Server) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("broadcast")
	var req AnalyzeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.writeError(w, err)
		return
	}
	n, err := normalizeBroadcast(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveValue(w, r, n.key, func(ctx context.Context) (any, error) {
		net, err := systolic.New(n.kind, n.paramList...)
		if err != nil {
			return nil, err
		}
		opts := []systolic.Option{systolic.WithRoundBudget(n.budget), s.roundsObserver()}
		if n.allSources || n.sourceList != nil {
			if nv := net.N(); nv > s.cfg.MaxScanNodes {
				return nil, badRequestf("scan on %d vertices exceeds the server's MaxScanNodes limit %d", nv, s.cfg.MaxScanNodes)
			}
			if n.sourceList != nil {
				opts = append(opts, systolic.WithSources(n.sourceList))
			}
			rep, err := systolic.AnalyzeBroadcastAll(ctx, net, opts...)
			if err != nil {
				return nil, err
			}
			s.metrics.broadcastSources.Add(int64(len(rep.Rounds)))
			if net.Implicit() {
				s.metrics.implicitScans.Add(1)
			}
			return rep, nil
		}
		return systolic.AnalyzeBroadcast(ctx, net, n.source, opts...)
	})
}

// valueCompute wraps a single-result computation with the cache double
// check, worker acquisition and accounting — the body every value flight
// runs, whether a synchronous handler or an async job created it.
func (s *Server) valueCompute(key string, compute func(ctx context.Context) (any, error)) func(ctx context.Context, emit func(any)) error {
	return func(ctx context.Context, emit func(any)) error {
		// Double-check: a flight for this key may have completed between
		// the caller's cache miss and its join.
		if v, ok := s.cache.get(key); ok {
			s.metrics.cacheHits.Add(1)
			emit(v)
			return nil
		}
		release, err := s.acquire(ctx)
		if err != nil {
			return err
		}
		defer release()
		s.metrics.simulations.Add(1)
		v, err := compute(ctx)
		if err != nil {
			return err
		}
		s.cache.add(key, v)
		emit(v)
		return nil
	}
}

// sharedItems subscribes to (or starts) the flight for key and returns
// everything it produced, in emission order — the non-streaming way to ride
// the singleflight group (async jobs use it; handlers stream instead).
func (s *Server) sharedItems(ctx context.Context, key string, capHint int, compute func(ctx context.Context, emit func(any)) error) ([]any, error) {
	sub, f, created := s.flights.join(s.base, key, capHint)
	if created {
		s.spawnFlight(key, f, compute)
	} else {
		s.metrics.dedupShared.Add(1)
	}
	defer sub.leave()
	var items []any
	for {
		select {
		case v, ok := <-sub.ch:
			if !ok {
				if err := f.Err(); err != nil {
					return nil, err
				}
				return items, nil
			}
			items = append(items, v)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// serveValue answers a single-result request through the cache, the flight
// group and the worker pool, in that order.
func (s *Server) serveValue(w http.ResponseWriter, r *http.Request, key string, compute func(ctx context.Context) (any, error)) {
	if v, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, resultEnvelope{Key: key, Cached: true, Report: v})
		return
	}
	s.metrics.cacheMisses.Add(1)
	if s.isDraining() {
		s.writeError(w, errDraining)
		return
	}
	sub, f, created := s.flights.join(s.base, key, 1)
	if created {
		s.spawnFlight(key, f, s.valueCompute(key, compute))
	} else {
		s.metrics.dedupShared.Add(1)
	}
	defer sub.leave()
	var result any
	got := false
	for {
		select {
		case v, ok := <-sub.ch:
			if !ok {
				if err := f.Err(); err != nil {
					s.writeError(w, err)
					return
				}
				if !got {
					s.writeError(w, errNoResult)
					return
				}
				writeJSON(w, http.StatusOK, resultEnvelope{Key: key, Cached: false, Report: result})
				return
			}
			result, got = v, true
		case <-r.Context().Done():
			// Client gone: detach. If we were the last subscriber the
			// flight's context cancels and the worker is freed.
			return
		}
	}
}

// --- sweeps ---

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("sweep")
	var req SweepRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.writeError(w, err)
		return
	}
	jobs, budget, key, err := normalizeSweep(req, s.cfg.MaxSweepJobs)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sweepCompute := func(ctx context.Context, emit func(any)) error {
		_, err := s.runSweep(ctx, key, jobs, budget, emit)
		return err
	}
	if r.URL.Query().Get("async") == "true" {
		s.submitAsync(w, systolic.OpSweep, key, func(ctx context.Context, jobID string) (any, error) {
			items, err := s.sharedItems(ctx, key, len(jobs), sweepCompute)
			if err != nil {
				return nil, err
			}
			// Emission order is completion order; the job stores grid order.
			ordered := make([]sweepLine, len(jobs))
			for _, v := range items {
				line := v.(sweepLine)
				ordered[line.Index] = line
			}
			return ordered, nil
		})
		return
	}

	if v, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		streamLines(w, v.([]sweepLine), true)
		return
	}
	s.metrics.cacheMisses.Add(1)
	if s.isDraining() {
		s.writeError(w, errDraining)
		return
	}
	sub, f, created := s.flights.join(s.base, key, len(jobs))
	if created {
		s.spawnFlight(key, f, sweepCompute)
	} else {
		s.metrics.dedupShared.Add(1)
	}
	defer sub.leave()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Gossipd-Key", key)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	for {
		select {
		case v, ok := <-sub.ch:
			if !ok {
				if err := f.Err(); err != nil && !wroteAnyLine(f) {
					s.writeError(w, err)
				}
				return
			}
			enc.Encode(v.(sweepLine))
			rc.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// wroteAnyLine reports whether the flight produced at least one line; when
// it did, the NDJSON stream has started and an error status can no longer
// be written.
func wroteAnyLine(f *flight) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.produced) > 0
}

// runSweep executes the grid through the streaming sweep engine, emitting
// each result line as it completes, and caches the full ordered result on
// success. A cancelled sweep is not cached.
func (s *Server) runSweep(ctx context.Context, key string, jobs []systolic.SweepJob, budget int, emit func(any)) ([]sweepLine, error) {
	// Double-check the cache (see valueCompute).
	if v, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		lines := v.([]sweepLine)
		if emit != nil {
			for _, line := range lines {
				emit(line)
			}
		}
		return lines, nil
	}
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	s.metrics.simulations.Add(1)
	ordered := make([]sweepLine, len(jobs))
	for res := range systolic.SweepStream(ctx, jobs, systolic.WithRoundBudget(budget), s.roundsObserver()) {
		line := toSweepLine(res)
		ordered[line.Index] = line
		if emit != nil {
			emit(line)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.cache.add(key, ordered)
	return ordered, nil
}

// streamLines replays a cached sweep as JSON lines, in job order.
func streamLines(w http.ResponseWriter, lines []sweepLine, cached bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if cached {
		w.Header().Set("X-Gossipd-Cached", "true")
	}
	enc := json.NewEncoder(w)
	for _, line := range lines {
		enc.Encode(line)
	}
}

// --- async jobs ---

// submitAsync accepts a computation as an async job: the response is 202
// with the job id, and GET /v1/jobs/{id} polls it. Saturation is checked at
// submission (429) and again when the job reaches the worker queue; the run
// callback is expected to ride the singleflight group (sharedItems), so
// concurrent identical jobs and sync requests share one simulation.
func (s *Server) submitAsync(w http.ResponseWriter, op, key string, run func(ctx context.Context, jobID string) (any, error)) {
	if s.metrics.queued.Load() >= int64(s.cfg.QueueDepth) {
		s.metrics.rejected.Add(1)
		s.writeError(w, errSaturated)
		return
	}
	done, err := s.startWork()
	if err != nil {
		s.writeError(w, err)
		return
	}
	job := s.jobs.create(op, key)
	go func() {
		defer done()
		defer s.metrics.jobsDone.Add(1)
		s.jobs.start(job.ID)
		v, err := run(s.base, job.ID)
		s.jobs.finish(job.ID, func(j *Job) {
			switch {
			case err == nil:
				j.Status = JobDone
				switch res := v.(type) {
				case []sweepLine:
					j.Results = res
				default:
					j.Report = res
				}
			case errors.Is(err, systolic.ErrIncomplete) && j.Checkpoint != "":
				j.Status = JobIncomplete
				j.Error = err.Error()
			default:
				j.Status = JobFailed
				j.Error = err.Error()
			}
		})
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":         job.ID,
		"status_url": "/v1/jobs/" + job.ID,
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("jobs")
	id := r.PathValue("id")
	job, ok := s.jobs.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, job)
}
