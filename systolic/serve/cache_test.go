package serve

import (
	"fmt"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(cacheShards) // one entry per shard
	c.add("a", 1)
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatal("missing fresh entry")
	}
	c.add("a", 2) // refresh in place
	if v, _ := c.get("a"); v.(int) != 2 {
		t.Fatal("refresh did not replace the value")
	}
	// Force an eviction inside a's shard: insert keys until one lands in
	// the same shard as "a".
	shardOfA := c.shard("a")
	evictor := ""
	for i := 0; evictor == ""; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == shardOfA {
			evictor = k
		}
	}
	c.add(evictor, 3)
	if _, ok := c.get("a"); ok {
		t.Fatal("LRU did not evict the older entry past the shard quota")
	}
	if v, ok := c.get(evictor); !ok || v.(int) != 3 {
		t.Fatal("newest entry missing after eviction")
	}
}

func TestResultCacheRecency(t *testing.T) {
	c := newResultCache(2 * cacheShards) // two entries per shard
	shard0 := c.shard("x")
	same := []string{"x"}
	for i := 0; len(same) < 3; i++ {
		k := fmt.Sprintf("y%d", i)
		if c.shard(k) == shard0 {
			same = append(same, k)
		}
	}
	c.add(same[0], 0)
	c.add(same[1], 1)
	c.get(same[0]) // touch: same[1] becomes LRU
	c.add(same[2], 2)
	if _, ok := c.get(same[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.get(same[1]); ok {
		t.Fatal("least recently used entry survived")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
}
