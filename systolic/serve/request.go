package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/systolic"
)

// AnalyzeRequest is the wire form of POST /v1/analyze and
// POST /v1/broadcast. Params carries the topology's named parameters
// (GET /v1/kinds lists what each kind requires).
type AnalyzeRequest struct {
	Kind   string         `json:"kind"`
	Params map[string]int `json:"params"`
	// Protocol names a catalog protocol (analyze only; GET /v1/kinds lists
	// the catalog).
	Protocol string `json:"protocol,omitempty"`
	// Budget caps simulated rounds; 0 means systolic.DefaultRoundBudget.
	Budget int `json:"budget,omitempty"`
	// Source is the broadcast source vertex (broadcast only).
	Source int `json:"source,omitempty"`
	// AllSources measures the broadcast time from every source instead of
	// one (broadcast only); the response is a BroadcastAllReport.
	//
	// Deprecated: AllSources is the pre-subset form of the Sources block
	// and canonicalizes identically to {"sources": {"all": true}} — same
	// behavior, same cache key. New clients should send Sources.
	AllSources bool `json:"all_sources,omitempty"`
	// Sources selects the broadcast scan's sources (broadcast only): all
	// of them, or an explicit vertex list. The response is a
	// BroadcastAllReport either way.
	Sources *SourcesSpec `json:"sources,omitempty"`
	// Scenario switches a certify request into a Monte-Carlo scenario
	// certification (certify only): the response is a
	// systolic.StatisticalCertificate instead of a Certificate.
	Scenario *ScenarioRequest `json:"scenario,omitempty"`
}

// SourcesSpec is the wire form of the broadcast sources block: exactly one
// of All and List must be set. The list is canonicalized — sorted,
// deduplicated — before keying and scanning, so the report's sources field
// comes back sorted regardless of request order.
type SourcesSpec struct {
	// All scans every vertex (the canonical form of the deprecated
	// all_sources field).
	All bool `json:"all,omitempty"`
	// List scans exactly these vertices; the report's rounds_by_source
	// aligns with its canonicalized (sorted) form.
	List []int `json:"list,omitempty"`
}

// ScenarioRequest is the wire form of the certify scenario block: the
// fault model (systolic.Scenario — loss, arc_loss, crashes, delete_arcs,
// seed) plus the Monte-Carlo trial count. The seed is part of the cache
// identity; repeating a request with the same seed replays the cached
// distribution.
type ScenarioRequest struct {
	systolic.Scenario
	// Trials is the Monte-Carlo trial count; 0 means DefaultScenarioTrials,
	// and systolic.MaxScenarioTrials caps it.
	Trials int `json:"trials,omitempty"`
}

// DefaultScenarioTrials is the trial count of a scenario certification
// that does not name one.
const DefaultScenarioTrials = 64

// SweepRequest is the wire form of POST /v1/sweep: a grid of analyze jobs
// streamed back as JSON lines (or run asynchronously with ?async=true).
type SweepRequest struct {
	// Budget caps simulated rounds per job; 0 means
	// systolic.DefaultRoundBudget.
	Budget int               `json:"budget,omitempty"`
	Jobs   []SweepJobRequest `json:"jobs"`
}

// SweepJobRequest is one cell of a sweep grid.
type SweepJobRequest struct {
	Label    string         `json:"label,omitempty"`
	Kind     string         `json:"kind"`
	Params   map[string]int `json:"params"`
	Protocol string         `json:"protocol"`
}

// paramCtors maps wire parameter names onto the systolic Param vocabulary.
var paramCtors = map[string]func(int) systolic.Param{
	systolic.ParamNodes:     systolic.Nodes,
	systolic.ParamDegree:    systolic.Degree,
	systolic.ParamDiameter:  systolic.Diameter,
	systolic.ParamDimension: systolic.Dimension,
	systolic.ParamRows:      systolic.Rows,
	systolic.ParamCols:      systolic.Cols,
	systolic.ParamDepth:     systolic.Depth,
}

// badRequestError marks a client-side validation failure (HTTP 400).
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequestError{msg: fmt.Sprintf(format, args...)}
}

// normalized is a validated request reduced to its canonical form: the
// instantiable inputs plus the cache keys they canonicalize to (key
// identifies the result; progKey identifies the compiled program, which is
// source- and operation-independent so analyses over the same schedule
// share one compilation).
type normalized struct {
	kind      string
	paramList []systolic.Param
	params    systolic.Params
	protocol  string
	budget    int
	source    int
	key       string
	progKey   string
	// scenario and trials are set only for scenario certifications.
	scenario *systolic.Scenario
	trials   int
	// allSources / sourceList describe a broadcast scan: every vertex, or
	// the canonicalized (sorted, deduplicated) subset.
	allSources bool
	sourceList []int
}

// opProgram keys compiled programs in the program cache: the same
// RequestKey canonical form, with the operation pinned and no source. The
// budget stays in the key even though compilation itself ignores it: the
// greedy protocol *constructions* consume the budget (an insufficient one
// fails at build time), so keying programs budget-free would make a greedy
// request's outcome depend on whether another budget warmed the cache
// first. Budget-insensitive schedules pay at most one extra compile per
// distinct budget.
const opProgram = "program"

// normalizeParams validates the named parameters against the wire
// vocabulary and builds the systolic representation in deterministic order.
func normalizeParams(kind string, raw map[string]int) ([]systolic.Param, systolic.Params, error) {
	if _, ok := systolic.Lookup(kind); !ok {
		return nil, systolic.Params{}, badRequestf("unknown topology kind %q (GET /v1/kinds lists them)", kind)
	}
	names := make([]string, 0, len(raw))
	for name := range raw {
		names = append(names, name)
	}
	// Validate after sorting so that a request with several unknown
	// parameters always reports the same one (map order must not pick it).
	sort.Strings(names)
	for _, name := range names {
		if paramCtors[name] == nil {
			return nil, systolic.Params{}, badRequestf("unknown parameter %q (GET /v1/kinds lists each kind's parameters)", name)
		}
	}
	list := make([]systolic.Param, 0, len(names))
	for _, name := range names {
		list = append(list, paramCtors[name](raw[name]))
	}
	return list, systolic.MakeParams(list...), nil
}

func normalizeBudget(budget int) (int, error) {
	switch {
	case budget < 0:
		return 0, badRequestf("budget must be non-negative, got %d", budget)
	case budget == 0:
		return systolic.DefaultRoundBudget, nil
	default:
		return budget, nil
	}
}

// normalizeAnalyze validates an analyze request and computes its cache key.
//
//gossip:keywriter AnalyzeRequest
func normalizeAnalyze(req AnalyzeRequest) (normalized, error) {
	if req.Scenario != nil {
		return normalized{}, badRequestf("scenario blocks are only valid on /v1/certify")
	}
	list, params, err := normalizeParams(req.Kind, req.Params)
	if err != nil {
		return normalized{}, err
	}
	if req.Protocol == "" {
		return normalized{}, badRequestf("analyze requires a protocol (GET /v1/kinds lists the catalog)")
	}
	budget, err := normalizeBudget(req.Budget)
	if err != nil {
		return normalized{}, err
	}
	n := normalized{
		kind: req.Kind, paramList: list, params: params,
		protocol: req.Protocol, budget: budget, source: systolic.NoSource,
	}
	n.key = systolic.RequestKey(systolic.OpAnalyze, n.kind, n.params, n.protocol, n.budget, n.source)
	n.progKey = systolic.RequestKey(opProgram, n.kind, n.params, n.protocol, n.budget, systolic.NoSource)
	return n, nil
}

// normalizeCertify validates a certify request and computes its cache keys.
// The inputs are exactly an analyze's; only the result-cache operation
// differs (a Certificate is not a Report). progKey is shared with analyze,
// so certifications reuse programs (and delay plans ride the same key).
//
// A scenario block turns the request into a Monte-Carlo certification: the
// operation becomes certify-scenario and the key grows the canonical fault
// model and trial count (systolic.ScenarioKey), so scenario and plain
// certifications can never share a cache entry. progKey is unchanged —
// scenario runs execute the same compiled schedule.
//
//gossip:keywriter AnalyzeRequest
//gossip:keywriter ScenarioRequest
func normalizeCertify(req AnalyzeRequest) (normalized, error) {
	plain := req
	plain.Scenario = nil
	n, err := normalizeAnalyze(plain)
	if err != nil {
		return normalized{}, err
	}
	if req.Scenario == nil {
		n.key = systolic.RequestKey(systolic.OpCertify, n.kind, n.params, n.protocol, n.budget, n.source)
		return n, nil
	}
	sr := req.Scenario
	if sr.Loss < 0 || sr.Loss > 1 {
		return normalized{}, badRequestf("scenario loss must lie in [0, 1], got %v", sr.Loss)
	}
	switch {
	case sr.Trials < 0:
		return normalized{}, badRequestf("scenario trials must be non-negative, got %d", sr.Trials)
	case sr.Trials == 0:
		n.trials = DefaultScenarioTrials
	case sr.Trials > systolic.MaxScenarioTrials:
		return normalized{}, badRequestf("scenario trials %d exceed the limit %d", sr.Trials, systolic.MaxScenarioTrials)
	default:
		n.trials = sr.Trials
	}
	sc := sr.Scenario
	n.scenario = &sc
	base := systolic.RequestKey(systolic.OpCertifyScenario, n.kind, n.params, n.protocol, n.budget, n.source)
	n.key = systolic.ScenarioKey(base, n.scenario, n.trials)
	return n, nil
}

// opBroadcastAll keys broadcast scans (all-sources and subsets) apart from
// single-source broadcasts in the result cache. A full scan keys exactly
// as it always has; a subset scan appends a "|sources=..." fragment, so
// subset keys can never collide with keys already cached (or spooled) by
// older clients, and no RequestKey ever contains the fragment.
const opBroadcastAll = "broadcast-all"

// sourcesFragment renders the canonical subset fragment appended to an
// opBroadcastAll key.
func sourcesFragment(list []int) string {
	var sb strings.Builder
	sb.WriteString("|sources=")
	for i, s := range list {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(s))
	}
	return sb.String()
}

// normalizeSources canonicalizes the scan selector: the deprecated
// all_sources boolean folds into the structured block, and an explicit
// list is validated (non-negative, non-empty), sorted and deduplicated.
// The vertex-range check happens at instantiation time (the network does
// not exist yet here).
func normalizeSources(req AnalyzeRequest) (all bool, list []int, err error) {
	spec := req.Sources
	if req.AllSources {
		if spec != nil {
			return false, nil, badRequestf("use either the deprecated all_sources or the sources block, not both")
		}
		spec = &SourcesSpec{All: true}
	}
	switch {
	case spec == nil:
		return false, nil, nil
	case spec.All && len(spec.List) > 0:
		return false, nil, badRequestf("sources block must set all or list, not both")
	case spec.All:
		return true, nil, nil
	case len(spec.List) == 0:
		return false, nil, badRequestf(`sources block must set "all": true or a non-empty "list"`)
	}
	list = append([]int(nil), spec.List...)
	sort.Ints(list)
	out := list[:0]
	for i, s := range list {
		if s < 0 {
			return false, nil, badRequestf("sources list entries must be non-negative, got %d", s)
		}
		if i == 0 || s != list[i-1] {
			out = append(out, s)
		}
	}
	return false, out, nil
}

// normalizeBroadcast validates a broadcast request and computes its cache
// key. Scan requests (all sources or a subset) ignore Source.
//
//gossip:keywriter AnalyzeRequest
//gossip:keywriter SourcesSpec
func normalizeBroadcast(req AnalyzeRequest) (normalized, error) {
	if req.Scenario != nil {
		return normalized{}, badRequestf("scenario blocks are only valid on /v1/certify")
	}
	list, params, err := normalizeParams(req.Kind, req.Params)
	if err != nil {
		return normalized{}, err
	}
	if req.Protocol != "" {
		return normalized{}, badRequestf("broadcast builds its own schedule; drop the protocol field")
	}
	budget, err := normalizeBudget(req.Budget)
	if err != nil {
		return normalized{}, err
	}
	n := normalized{kind: req.Kind, paramList: list, params: params, budget: budget, source: req.Source}
	all, srcList, err := normalizeSources(req)
	if err != nil {
		return normalized{}, err
	}
	switch {
	case all:
		n.allSources = true
		n.source = systolic.NoSource
		n.key = systolic.RequestKey(opBroadcastAll, n.kind, n.params, "", n.budget, n.source)
	case srcList != nil:
		n.sourceList = srcList
		n.source = systolic.NoSource
		n.key = systolic.RequestKey(opBroadcastAll, n.kind, n.params, "", n.budget, n.source) +
			sourcesFragment(srcList)
	case req.Source < 0:
		return normalized{}, badRequestf("broadcast source must be non-negative, got %d", req.Source)
	default:
		n.key = systolic.RequestKey(systolic.OpBroadcast, n.kind, n.params, "", n.budget, n.source)
	}
	return n, nil
}

// normalizeSweep validates every job of a sweep grid and computes the
// grid's cache key (job order included).
//
//gossip:keywriter SweepRequest
//gossip:keywriter SweepJobRequest
func normalizeSweep(req SweepRequest, maxJobs int) ([]systolic.SweepJob, int, string, error) {
	if len(req.Jobs) == 0 {
		return nil, 0, "", badRequestf("sweep requires at least one job")
	}
	if len(req.Jobs) > maxJobs {
		return nil, 0, "", badRequestf("sweep has %d jobs, limit is %d", len(req.Jobs), maxJobs)
	}
	budget, err := normalizeBudget(req.Budget)
	if err != nil {
		return nil, 0, "", err
	}
	jobs := make([]systolic.SweepJob, len(req.Jobs))
	jobKeys := make([]string, len(req.Jobs))
	for i, jr := range req.Jobs {
		list, params, err := normalizeParams(jr.Kind, jr.Params)
		if err != nil {
			return nil, 0, "", fmt.Errorf("job %d: %w", i, err)
		}
		if jr.Protocol == "" {
			return nil, 0, "", badRequestf("job %d: sweep jobs require a protocol", i)
		}
		label := jr.Label
		if label == "" {
			label = fmt.Sprintf("%s/%s", jr.Kind, jr.Protocol)
		}
		jobs[i] = systolic.SweepJob{
			Label:    label,
			Kind:     jr.Kind,
			Params:   list,
			Protocol: systolic.UseProtocol(jr.Protocol, budget),
		}
		// The label is echoed on every response line, so it is part of the
		// identity: the same grid under different labels must not share a
		// cached replay.
		jobKeys[i] = systolic.RequestKey(systolic.OpAnalyze, jr.Kind, params, jr.Protocol, budget, systolic.NoSource) +
			"|label=" + label
	}
	return jobs, budget, systolic.SweepKey(jobKeys), nil
}
