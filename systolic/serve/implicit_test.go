package serve

import (
	"io"
	"net/http"
	"testing"

	"repro/systolic"
)

// analyzeHC20 is a generator-eligible implicit instance: a d=20 hypercube
// (2^20 vertices) is past the materialization threshold, so the registry
// builds it implicit and the catalog compiles the dimension-order protocol
// to a generator program.
var analyzeHC20 = AnalyzeRequest{
	Kind:     "hypercube",
	Params:   map[string]int{"dimension": 20},
	Protocol: "hypercube",
	Budget:   64,
}

// TestAnalyzeImplicitGenProgram pins /v1/analyze on an implicit instance:
// the session executes the generator program (rounds streamed, arcs never
// materialized), answers a BroadcastReport, and the compile is counted by
// the implicit-programs metric. A repeat request must come from the result
// cache without a second compile.
func TestAnalyzeImplicitGenProgram(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeHC20)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, body)
	}
	env := decodeBody[struct {
		Cached bool                     `json:"cached"`
		Report systolic.BroadcastReport `json:"report"`
	}](t, resp)
	rep := env.Report
	if rep.Measured != 20 || rep.Source != 0 {
		t.Fatalf("implicit analyze: measured %d from %d, want 20 from 0", rep.Measured, rep.Source)
	}
	if rep.CBound > rep.Measured {
		t.Fatalf("certified floor %d exceeds measurement %d", rep.CBound, rep.Measured)
	}
	snap := s.Metrics().Snapshot()
	if snap.ImplicitPrograms != 1 {
		t.Fatalf("implicit programs compiled: %d, want 1", snap.ImplicitPrograms)
	}
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/analyze", analyzeHC20)
	env2 := decodeBody[struct {
		Cached bool                     `json:"cached"`
		Report systolic.BroadcastReport `json:"report"`
	}](t, resp)
	if !env2.Cached || env2.Report != rep {
		t.Fatalf("repeat analyze: cached=%v report %+v, want cached copy of %+v", env2.Cached, env2.Report, rep)
	}
	snap = s.Metrics().Snapshot()
	if snap.ImplicitPrograms != 1 || snap.CacheHits != 1 {
		t.Fatalf("repeat request: implicit_programs=%d cache_hits=%d, want 1/1",
			snap.ImplicitPrograms, snap.CacheHits)
	}
}

// TestCertifyImplicitGenProgram pins /v1/certify on an implicit instance:
// the broadcast certificate completes with the streamed measurement and no
// delay-digraph section (the delay lowering needs explicit adjacency and is
// skipped for broadcast programs).
func TestCertifyImplicitGenProgram(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/certify", analyzeHC20)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("certify: status %d: %s", resp.StatusCode, body)
	}
	cert := decodeBody[struct {
		Report systolic.Certificate `json:"report"`
	}](t, resp).Report
	if !cert.Complete || cert.Measured != 20 {
		t.Fatalf("implicit certificate: complete=%v measured=%d, want true/20", cert.Complete, cert.Measured)
	}
	if cert.Broadcast == nil || !cert.Broadcast.Respected {
		t.Fatalf("implicit certificate carries no respected broadcast bound: %+v", cert.Broadcast)
	}
	if cert.DelayVerts != 0 || cert.DelayArcs != 0 {
		t.Fatalf("broadcast certificate grew a delay digraph: %d verts, %d arcs", cert.DelayVerts, cert.DelayArcs)
	}
}

// TestAnalyzeImplicitIneligibleProtocol pins the error contract over the
// wire: a data-dependent protocol on an implicit instance is a client
// error naming the eligible set, not a 500.
func TestAnalyzeImplicitIneligibleProtocol(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := analyzeHC20
	req.Protocol = "greedy-half"
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", req)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ineligible implicit analyze: status %d, want 400: %s", resp.StatusCode, body)
	}
}
