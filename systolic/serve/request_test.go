package serve

import (
	"strings"
	"testing"
)

// TestNormalizeParamsUnknownIsDeterministic: a request carrying several
// unknown parameters must always blame the same one. The validation used to
// run inside the map range, so the reported name — and therefore the HTTP
// response body — depended on map iteration order.
func TestNormalizeParamsUnknownIsDeterministic(t *testing.T) {
	raw := map[string]int{"zeta": 1, "alpha": 2, "mu": 3, "n": 8}
	for i := 0; i < 50; i++ {
		_, _, err := normalizeParams("debruijn", raw)
		if err == nil {
			t.Fatal("unknown parameters were accepted")
		}
		if !strings.Contains(err.Error(), `"alpha"`) {
			t.Fatalf("iteration %d: error %q does not name the lexicographically first unknown parameter %q",
				i, err, "alpha")
		}
	}
}
