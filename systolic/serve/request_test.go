package serve

import (
	"reflect"
	"strings"
	"testing"
)

// TestNormalizeParamsUnknownIsDeterministic: a request carrying several
// unknown parameters must always blame the same one. The validation used to
// run inside the map range, so the reported name — and therefore the HTTP
// response body — depended on map iteration order.
func TestNormalizeParamsUnknownIsDeterministic(t *testing.T) {
	raw := map[string]int{"zeta": 1, "alpha": 2, "mu": 3, "n": 8}
	for i := 0; i < 50; i++ {
		_, _, err := normalizeParams("debruijn", raw)
		if err == nil {
			t.Fatal("unknown parameters were accepted")
		}
		if !strings.Contains(err.Error(), `"alpha"`) {
			t.Fatalf("iteration %d: error %q does not name the lexicographically first unknown parameter %q",
				i, err, "alpha")
		}
	}
}

// TestNormalizeBroadcastCacheKeys pins the broadcast cache keys literally.
// The all-sources key is the back-compat anchor: it must stay byte-equal to
// what pre-sources-block servers wrote, so cached and spooled results
// survive the API redesign; subset keys carry a fragment no legacy key can
// contain.
func TestNormalizeBroadcastCacheKeys(t *testing.T) {
	base := AnalyzeRequest{Kind: "hypercube", Params: map[string]int{"dimension": 4}}

	single := base
	single.Source = 3
	n, err := normalizeBroadcast(single)
	if err != nil {
		t.Fatal(err)
	}
	if want := "broadcast|hypercube|dimension=4||100000|3"; n.key != want {
		t.Errorf("single-source key %q, want %q", n.key, want)
	}

	deprecated := base
	deprecated.AllSources = true
	structured := base
	structured.Sources = &SourcesSpec{All: true}
	nd, err := normalizeBroadcast(deprecated)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := normalizeBroadcast(structured)
	if err != nil {
		t.Fatal(err)
	}
	if want := "broadcast-all|hypercube|dimension=4||100000|-1"; nd.key != want {
		t.Errorf("legacy all_sources key %q, want %q (cached results would be orphaned)", nd.key, want)
	}
	// Identical canonical form field by field (paramList holds func values,
	// so the whole struct cannot be compared).
	if nd.key != ns.key || nd.allSources != ns.allSources || nd.source != ns.source ||
		!reflect.DeepEqual(nd.sourceList, ns.sourceList) {
		t.Errorf("all_sources and {\"all\": true} normalize differently:\n  %+v\n  %+v", nd, ns)
	}
	if !nd.allSources || nd.sourceList != nil {
		t.Errorf("all-sources normalized form: %+v", nd)
	}

	subset := base
	subset.Sources = &SourcesSpec{List: []int{9, 2, 9, 5}}
	nl, err := normalizeBroadcast(subset)
	if err != nil {
		t.Fatal(err)
	}
	if want := "broadcast-all|hypercube|dimension=4||100000|-1|sources=2,5,9"; nl.key != want {
		t.Errorf("subset key %q, want %q", nl.key, want)
	}
	if !reflect.DeepEqual(nl.sourceList, []int{2, 5, 9}) || nl.allSources {
		t.Errorf("subset normalized form: sourceList=%v allSources=%v", nl.sourceList, nl.allSources)
	}
	// Request order and duplicates cannot split the cache.
	reordered := base
	reordered.Sources = &SourcesSpec{List: []int{5, 9, 2}}
	nr, err := normalizeBroadcast(reordered)
	if err != nil {
		t.Fatal(err)
	}
	if nr.key != nl.key {
		t.Errorf("reordered subset keys differ: %q vs %q", nr.key, nl.key)
	}
}

// TestNormalizeSourcesValidation: malformed sources blocks fail as 400s
// with normalizeBroadcast never reaching a kernel.
func TestNormalizeSourcesValidation(t *testing.T) {
	base := AnalyzeRequest{Kind: "hypercube", Params: map[string]int{"dimension": 3}}
	cases := []struct {
		name string
		mut  func(*AnalyzeRequest)
	}{
		{"both forms", func(r *AnalyzeRequest) { r.AllSources = true; r.Sources = &SourcesSpec{All: true} }},
		{"all and list", func(r *AnalyzeRequest) { r.Sources = &SourcesSpec{All: true, List: []int{1}} }},
		{"empty block", func(r *AnalyzeRequest) { r.Sources = &SourcesSpec{} }},
		{"negative entry", func(r *AnalyzeRequest) { r.Sources = &SourcesSpec{List: []int{2, -1}} }},
	}
	for _, tc := range cases {
		req := base
		tc.mut(&req)
		if _, err := normalizeBroadcast(req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if _, ok := err.(badRequestError); !ok {
			t.Errorf("%s: err %v is not a badRequestError (must map to HTTP 400)", tc.name, err)
		}
	}
}
