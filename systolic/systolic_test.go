package systolic

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/gossip"
	"repro/internal/protocols"
)

func TestNewKinds(t *testing.T) {
	cases := []struct {
		kind   string
		params []Param
		n      int
	}{
		{"path", []Param{Nodes(5)}, 5},
		{"cycle", []Param{Nodes(6)}, 6},
		{"complete", []Param{Nodes(4)}, 4},
		{"hypercube", []Param{Dimension(3)}, 8},
		{"grid", []Param{Rows(3), Cols(4)}, 12},
		{"torus", []Param{Rows(3), Cols(3)}, 9},
		{"tree", []Param{Degree(2), Depth(2)}, 7},
		{"shuffle-exchange", []Param{Dimension(3)}, 8},
		{"ccc", []Param{Dimension(3)}, 24},
		{"butterfly", []Param{Degree(2), Diameter(3)}, 32},
		{"wbf", []Param{Degree(2), Diameter(3)}, 24},
		{"wbf-digraph", []Param{Degree(2), Diameter(3)}, 24},
		{"debruijn", []Param{Degree(2), Diameter(4)}, 16},
		{"debruijn-digraph", []Param{Degree(2), Diameter(4)}, 16},
		{"kautz", []Param{Degree(2), Diameter(3)}, 12},
		{"kautz-digraph", []Param{Degree(2), Diameter(3)}, 12},
	}
	for _, c := range cases {
		net, err := New(c.kind, c.params...)
		if err != nil {
			t.Errorf("%s: %v", c.kind, err)
			continue
		}
		if net.G.N() != c.n {
			t.Errorf("%s: N = %d, want %d", c.kind, net.G.N(), c.n)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	_, err := New("moebius", Nodes(3))
	if !errors.Is(err, ErrUnknownTopology) {
		t.Fatalf("unknown kind error = %v, want ErrUnknownTopology", err)
	}
	// The message must list every registered kind so users can self-serve.
	for _, kind := range Kinds() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error text omits registered kind %q: %v", kind, err)
		}
	}
	if !strings.Contains(err.Error(), "accepted") {
		t.Errorf("error text = %v", err)
	}
}

func TestNewBadParams(t *testing.T) {
	cases := []struct {
		name   string
		kind   string
		params []Param
	}{
		{"cycle too small", "cycle", []Param{Nodes(1)}},
		{"debruijn degree 1", "debruijn", []Param{Degree(1), Diameter(4)}},
		{"debruijn missing diameter", "debruijn", []Param{Degree(2)}},
		{"grid missing cols", "grid", []Param{Rows(3)}},
		{"hypercube no params", "hypercube", nil},
		{"torus too small", "torus", []Param{Rows(2), Cols(4)}},
		{"hypercube too large", "hypercube", []Param{Dimension(80)}},
		{"debruijn too large", "debruijn", []Param{Degree(2), Diameter(60)}},
		{"path too large", "path", []Param{Nodes(1 << 30)}},
		{"cycle too large", "cycle", []Param{Nodes(1 << 30)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.kind, c.params...); !errors.Is(err, ErrBadParam) {
				t.Errorf("New(%s) error = %v, want ErrBadParam", c.kind, err)
			}
		})
	}
}

func TestFamilyClassification(t *testing.T) {
	db, _ := New("debruijn", Degree(2), Diameter(4))
	if !db.FamilyKnown || db.DegreeParam != 2 {
		t.Error("de Bruijn family metadata wrong")
	}
	p, _ := New("path", Nodes(5))
	if p.FamilyKnown {
		t.Error("path should not claim a paper family")
	}
	if p.DegreeParam != 1 {
		t.Errorf("path degree param = %d, want 1", p.DegreeParam)
	}
}

func TestEvaluateGeneralVsSeparator(t *testing.T) {
	// WBF(2,D) at s=4 must use the separator bound 2.0218 > general 1.8133.
	w, _ := New("wbf", Degree(2), Diameter(4))
	b := Evaluate(w, Request{Mode: gossip.HalfDuplex, Period: 4})
	if b.Source != "separator" {
		t.Errorf("WBF s=4 source = %s, want separator", b.Source)
	}
	if b.Coefficient < 2.0 || b.Coefficient > 2.05 {
		t.Errorf("WBF s=4 coefficient = %g", b.Coefficient)
	}
	// A path has no family: always the general bound.
	p, _ := New("path", Nodes(16))
	bp := Evaluate(p, Request{Mode: gossip.HalfDuplex, Period: 4})
	if bp.Source != "general" {
		t.Errorf("path source = %s", bp.Source)
	}
}

func TestEvaluateSTwo(t *testing.T) {
	c, _ := New("cycle", Nodes(10))
	b := Evaluate(c, Request{Mode: gossip.HalfDuplex, Period: 2})
	if b.Rounds != 9 {
		t.Errorf("s=2 bound = %d rounds, want n-1 = 9", b.Rounds)
	}
}

func TestEvaluateFullDuplex(t *testing.T) {
	db, _ := New("debruijn", Degree(2), Diameter(5))
	b := Evaluate(db, Request{Mode: gossip.FullDuplex, Period: 4})
	if b.Coefficient <= 0 {
		t.Error("full-duplex bound not positive")
	}
	// Non-systolic full-duplex on de Bruijn: diameter coefficient
	// 1/log2(d) = 1 competes with separator/general values.
	binf := Evaluate(db, Request{Mode: gossip.FullDuplex, Period: NonSystolic})
	if binf.Coefficient < 1 {
		t.Errorf("full-duplex non-systolic coefficient = %g < diameter", binf.Coefficient)
	}
}

func TestEvaluateRoundsPositive(t *testing.T) {
	for _, kind := range []string{"debruijn", "kautz", "wbf", "butterfly"} {
		net, err := New(kind, Degree(2), Diameter(4))
		if err != nil {
			t.Fatal(err)
		}
		b := Evaluate(net, Request{Mode: gossip.HalfDuplex, Period: 6})
		if b.Rounds <= 0 {
			t.Errorf("%s: rounds bound = %d", kind, b.Rounds)
		}
	}
}

func TestGeneralBoundMatchesFig4(t *testing.T) {
	e, lambda := GeneralBound(HalfDuplex, 4)
	if e < 1.81 || e > 1.82 {
		t.Errorf("e(4) = %g, want ≈1.8133", e)
	}
	if lambda <= 0 || lambda >= 1 {
		t.Errorf("λ₀ = %g out of (0,1)", lambda)
	}
	eInf, lamInf := GeneralBound(HalfDuplex, NonSystolic)
	if eInf < 1.44 || eInf > 1.45 {
		t.Errorf("e(∞) = %g, want ≈1.4404", eInf)
	}
	if lamInf < 0.617 || lamInf > 0.619 {
		t.Errorf("λ(∞) = %g, want 1/φ ≈ 0.618", lamInf)
	}
}

func TestAnalyzePeriodicOnDeBruijn(t *testing.T) {
	net, _ := New("debruijn", Degree(2), Diameter(4))
	p := protocols.PeriodicHalfDuplex(net.G)
	rep, err := Analyze(context.Background(), net, p, WithRoundBudget(10000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TheoremRespected {
		t.Errorf("Theorem 4.1 violated?! %v", rep)
	}
	if rep.Measured < rep.LowerBound.Rounds {
		t.Errorf("measured %d < lower bound %d: paper falsified or bug", rep.Measured, rep.LowerBound.Rounds)
	}
	if rep.NormAtRoot > rep.NormCap+1e-8 {
		t.Errorf("norm at root %g exceeds cap %g", rep.NormAtRoot, rep.NormCap)
	}
	if rep.DelayVerts == 0 || rep.DelayArcs == 0 {
		t.Error("empty delay digraph")
	}
	if !strings.Contains(rep.String(), "measured") {
		t.Error("report string malformed")
	}
}

func TestAnalyzeFullDuplexHypercube(t *testing.T) {
	net, _ := New("hypercube", Dimension(4))
	p := protocols.HypercubeExchange(4)
	rep, err := Analyze(context.Background(), net, p, WithRoundBudget(100))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Measured != 4 {
		t.Errorf("Q4 measured = %d, want 4", rep.Measured)
	}
	if !rep.TheoremRespected {
		t.Error("Theorem 4.1 violated on the optimal hypercube protocol")
	}
}

func TestAnalyzeSTwoCycle(t *testing.T) {
	net, _ := New("cycle", Nodes(8))
	// Build the directed 2-phase protocol on the symmetric cycle (arcs are
	// present in both orientations, we use forward ones).
	p := protocols.CycleTwoPhase(8)
	p.Mode = gossip.HalfDuplex
	rep, err := Analyze(context.Background(), net, p, WithRoundBudget(1000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TheoremRespected {
		t.Errorf("s=2 protocol measured %d rounds < n-1", rep.Measured)
	}
}

func TestAnalyzeIncompleteProtocol(t *testing.T) {
	net, _ := New("path", Nodes(6))
	p := protocols.PathZigZag(6)
	_, err := Analyze(context.Background(), net, p, WithRoundBudget(3))
	if !errors.Is(err, ErrIncomplete) {
		t.Errorf("insufficient budget error = %v, want ErrIncomplete", err)
	}
}

func TestAnalyzeCancelledContext(t *testing.T) {
	net, _ := New("debruijn", Degree(2), Diameter(5))
	p := protocols.PeriodicHalfDuplex(net.G)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, net, p); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled analyze error = %v, want context.Canceled", err)
	}
}

func TestSimulateObserverSeesMonotoneCurve(t *testing.T) {
	net, _ := New("hypercube", Dimension(4))
	p := protocols.HypercubeExchange(4)
	var rounds []int
	var knowledge []int
	res, err := Simulate(context.Background(), net, p,
		WithTrace(ObserverFunc(func(round, know, target int) {
			rounds = append(rounds, round)
			knowledge = append(knowledge, know)
			if target != 16*16 {
				t.Errorf("target = %d, want %d", target, 16*16)
			}
		})))
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != res.Rounds {
		t.Fatalf("observer saw %d rounds, simulation ran %d", len(rounds), res.Rounds)
	}
	for i := 1; i < len(knowledge); i++ {
		if knowledge[i] < knowledge[i-1] {
			t.Fatal("knowledge curve not monotone")
		}
	}
	if knowledge[len(knowledge)-1] != 16*16 {
		t.Errorf("final knowledge %d, want complete %d", knowledge[len(knowledge)-1], 16*16)
	}
}

func TestKindsListedSortedAndComplete(t *testing.T) {
	ks := Kinds()
	builtin := []string{
		"butterfly", "ccc", "complete", "cycle", "debruijn",
		"debruijn-digraph", "grid", "hypercube", "kautz", "kautz-digraph",
		"path", "shuffle-exchange", "torus", "tree", "wbf", "wbf-digraph",
	}
	have := map[string]bool{}
	for _, k := range ks {
		have[k] = true
	}
	for _, k := range builtin {
		if !have[k] {
			t.Errorf("builtin kind %q missing from Kinds()", k)
		}
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Error("Kinds not sorted")
		}
	}
}
