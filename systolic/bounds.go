package systolic

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/gossip"
)

// Request selects which lower bound to evaluate.
type Request struct {
	// Mode is the communication model; Directed and HalfDuplex share the
	// same bounds (Sections 4–5), FullDuplex uses Section 6.
	Mode Mode `json:"mode"`
	// Period is the systolic period s ≥ 2, or NonSystolic for the s→∞
	// corollaries.
	Period int `json:"period"`
}

// NonSystolic requests the s→∞ bounds.
const NonSystolic = bounds.SInfinity

// Bound is an evaluated lower bound on gossiping time. It is
// JSON-serializable; the golden tests pin its schema.
type Bound struct {
	// Coefficient multiplies log₂(n): g(G) ≥ Coefficient·log₂(n) − o(log n).
	Coefficient float64 `json:"coefficient"`
	// Lambda is the λ value realizing the bound (the root for the general
	// bound, the maximizer for separator bounds).
	Lambda float64 `json:"lambda"`
	// Rounds is an explicit finite-n certified round bound: the Theorem 4.1
	// value at the general-bound root for this mode and period (plus the
	// n−1 value for s=2). The asymptotic Coefficient may be larger
	// (separator and diameter refinements carry −o(log n) slack that is
	// not certified at finite n, so it is never folded into Rounds).
	Rounds int `json:"rounds"`
	// Source names the active bound: "general" (Cor. 4.4 / §6),
	// "separator" (Thm. 5.1), "diameter", or the s=2 arguments.
	Source string `json:"source"`
}

// GeneralBound returns the paper's general lower-bound coefficient e(s) and
// the root λ₀ realizing it for the given mode and period (Fig. 4 for
// directed/half-duplex, the Section 6 analogue for full-duplex). Use
// NonSystolic for the s→∞ corollaries.
func GeneralBound(mode Mode, period int) (e, lambda float64) {
	return generalFor(Request{Mode: mode, Period: period})
}

// Evaluate returns the best lower bound the paper provides for the network
// under the request. For networks in the Lemma 3.1 families the separator
// refinement is applied automatically; for all others the general bound is
// returned. Period 2 in the directed/half-duplex modes returns the explicit
// n−1 bound of the Section 4 remark. Implicit networks are evaluated from
// n and the family classification alone — the directed-diameter refinement
// needs explicit adjacency and is skipped (it only applies to tiny
// instances anyway).
func Evaluate(net *Network, req Request) Bound {
	n := net.N()
	if req.Period == 2 {
		if req.Mode == gossip.FullDuplex {
			r := bounds.STwoFullDuplexLowerBound(n)
			if lg := ceilLog2(n); lg > r {
				r = lg
			}
			if n <= 4096 && net.G != nil {
				if diam := net.G.Diameter(); diam > r {
					r = diam
				}
			}
			return Bound{Rounds: r, Source: "s=2 sqrt(n) argument"}
		}
		return Bound{Rounds: bounds.STwoLowerBound(n), Source: "s=2 cycle argument"}
	}
	gen, lam := generalFor(req)
	best := Bound{Coefficient: gen, Lambda: lam, Source: "general"}
	if net.FamilyKnown {
		sep := bounds.LemmaSeparator(net.Family, net.DegreeParam)
		spec, lamS := separatorFor(sep, req)
		if spec > best.Coefficient {
			best = Bound{Coefficient: spec, Lambda: lamS, Source: "separator"}
		}
		if diam := bounds.DiameterCoefficient(net.Family, net.DegreeParam); diam > best.Coefficient {
			best = Bound{Coefficient: diam, Lambda: 0, Source: "diameter"}
		}
	}
	// Rounds is certified at finite n by the strongest of three
	// unconditional facts: Theorem 4.1 at the general root (which holds
	// regardless of which refinement gave the best coefficient), the
	// information bound ⌈log₂ n⌉ (knowledge at most doubles per round in
	// every mode), and the directed diameter (an item crosses one arc per
	// round). The diameter is only computed for moderate instance sizes.
	best.Rounds = bounds.Theorem41LowerBound(n, lam)
	if lg := ceilLog2(n); lg > best.Rounds {
		best.Rounds = lg
	}
	if n <= 4096 && net.G != nil {
		if diam := net.G.Diameter(); diam > best.Rounds {
			best.Rounds = diam
		}
	}
	return best
}

func ceilLog2(n int) int {
	lg := 0
	for m := 1; m < n; m <<= 1 {
		lg++
	}
	return lg
}

func generalFor(req Request) (e, lambda float64) {
	if req.Mode == gossip.FullDuplex {
		if req.Period == NonSystolic {
			return bounds.GeneralFullDuplexInfinity()
		}
		return bounds.GeneralFullDuplex(req.Period)
	}
	if req.Period == NonSystolic {
		return bounds.GeneralHalfDuplexInfinity()
	}
	return bounds.GeneralHalfDuplex(req.Period)
}

func separatorFor(sep bounds.Separator, req Request) (e, lambda float64) {
	if req.Mode == gossip.FullDuplex {
		if req.Period == NonSystolic {
			return bounds.SeparatorFullDuplexInfinity(sep)
		}
		return bounds.SeparatorFullDuplex(sep, req.Period)
	}
	if req.Period == NonSystolic {
		return bounds.SeparatorHalfDuplexInfinity(sep)
	}
	return bounds.SeparatorHalfDuplex(sep, req.Period)
}

// String renders the bound for human consumption.
func (b Bound) String() string {
	if b.Coefficient == 0 {
		return fmt.Sprintf("≥ %d rounds (%s)", b.Rounds, b.Source)
	}
	return fmt.Sprintf("≥ %.4f·log₂(n) − o(log n) [≥ %d rounds here] (%s, λ=%.4f)",
		b.Coefficient, b.Rounds, b.Source, b.Lambda)
}
