package systolic

import "repro/internal/bounds"

// Fig4Row is one row of the paper's Fig. 4 table: the general lower-bound
// coefficient e(s) and its root λ₀ for one systolic period.
type Fig4Row = bounds.Fig4Row

// TopologyRow is one cell of the per-topology tables (Figs. 5, 6, 8): the
// best coefficient for one family, degree and period.
type TopologyRow = bounds.TopologyRow

// Fig4Periods is the period list of the paper's Fig. 4 (s = 3…8 and ∞).
var Fig4Periods = bounds.Fig4Periods

// Fig4 regenerates the general lower-bound table of Fig. 4 for the given
// periods (use NonSystolic for the s→∞ row).
func Fig4(periods []int) []Fig4Row { return bounds.Fig4(periods) }

// Fig5 regenerates the per-topology systolic table of Fig. 5 (half-duplex).
func Fig5(degrees, periods []int) []TopologyRow { return bounds.Fig5(degrees, periods) }

// Fig6 regenerates the non-systolic per-topology table of Fig. 6.
func Fig6(degrees []int) []TopologyRow { return bounds.Fig6(degrees) }

// Fig8 regenerates the full-duplex table of Fig. 8.
func Fig8(degrees, periods []int) []TopologyRow { return bounds.Fig8(degrees, periods) }

// FormatFig4 renders a Fig. 4 table.
func FormatFig4(rows []Fig4Row) string { return bounds.FormatFig4(rows) }

// FormatTopologyTable renders a Fig. 5/6/8 table with one column per
// period.
func FormatTopologyTable(rows []TopologyRow, periods []int) string {
	return bounds.FormatTopologyTable(rows, periods)
}
