package systolic

import (
	"context"
	"strings"
	"testing"
)

// TestRequestKeyCanonical: parameter order, kind case and surrounding
// whitespace do not change the key; every semantic input does.
func TestRequestKeyCanonical(t *testing.T) {
	a := RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-half", 1000, NoSource)
	b := RequestKey(OpAnalyze, " DeBruijn ", MakeParams(Diameter(5), Degree(2)), "Periodic-Half", 1000, NoSource)
	if a != b {
		t.Fatalf("equivalent requests keyed differently:\n%s\n%s", a, b)
	}
	distinct := []string{
		a,
		RequestKey(OpBroadcast, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-half", 1000, 0),
		RequestKey(OpAnalyze, "kautz", MakeParams(Degree(2), Diameter(5)), "periodic-half", 1000, NoSource),
		RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(3), Diameter(5)), "periodic-half", 1000, NoSource),
		RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-full", 1000, NoSource),
		RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-half", 2000, NoSource),
		RequestKey(OpBroadcast, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-half", 1000, 7),
	}
	seen := map[string]int{}
	for i, k := range distinct {
		if j, dup := seen[k]; dup {
			t.Errorf("requests %d and %d collide on key %s", j, i, k)
		}
		seen[k] = i
	}
}

// TestScenarioKeyDisjoint: scenario keys can never collide with plain
// request keys (no RequestKey contains a "|scenario{" segment), and every
// scenario field — seed and trial count included — separates keys.
func TestScenarioKeyDisjoint(t *testing.T) {
	base := RequestKey(OpCertifyScenario, "hypercube", MakeParams(Dimension(10)), "periodic-full", 1000, NoSource)
	sc := &Scenario{Loss: 0.05, Seed: 1}
	distinct := []string{
		base,
		RequestKey(OpCertify, "hypercube", MakeParams(Dimension(10)), "periodic-full", 1000, NoSource),
		ScenarioKey(base, sc, 256),
		ScenarioKey(base, sc, 128),
		ScenarioKey(base, &Scenario{Loss: 0.05, Seed: 2}, 256),
		ScenarioKey(base, &Scenario{Loss: 0.1, Seed: 1}, 256),
		ScenarioKey(base, &Scenario{Loss: 0.05, Seed: 1, Crashes: []CrashWindow{{Node: 3, From: 0, To: 4}}}, 256),
		ScenarioKey(base, &Scenario{Loss: 0.05, Seed: 1, DeleteArcs: [][2]int{{0, 1}}}, 256),
		ScenarioKey(base, &Scenario{Loss: 0.05, Seed: 1, ArcLoss: []ArcLoss{{From: 0, To: 1, Loss: 0.5}}}, 256),
		ScenarioKey(base, nil, 256),
	}
	seen := map[string]int{}
	for i, k := range distinct {
		if j, dup := seen[k]; dup {
			t.Errorf("scenario requests %d and %d collide on key %s", j, i, k)
		}
		seen[k] = i
	}
	if ScenarioKey(base, nil, 64) != ScenarioKey(base, &Scenario{}, 64) {
		t.Error("nil and zero scenarios should share a key (both inactive)")
	}
}

// TestScenarioCanonicalGolden pins the canonical scenario fragment and the
// assembled scenario key byte for byte: cache identities are a wire
// contract — persisted spools and cross-version clients depend on them —
// so any change here must be deliberate.
func TestScenarioCanonicalGolden(t *testing.T) {
	sc := &Scenario{
		Loss:       0.05,
		ArcLoss:    []ArcLoss{{From: 1, To: 2, Loss: 0.25}},
		Crashes:    []CrashWindow{{Node: 3, From: 4, To: 9}},
		DeleteArcs: [][2]int{{5, 6}},
		Seed:       42,
	}
	const wantCanon = "loss=0.05;arcloss=1>2:0.25;crash=3@4-9;del=5>6;seed=42"
	if got := sc.Canonical(); got != wantCanon {
		t.Fatalf("Canonical() = %q, want %q", got, wantCanon)
	}
	base := RequestKey(OpCertifyScenario, "hypercube", MakeParams(Dimension(10)), "periodic-full", 1000, NoSource)
	const wantBase = "certify-scenario|hypercube|dimension=10|periodic-full|1000|-1"
	if base != wantBase {
		t.Fatalf("RequestKey = %q, want %q", base, wantBase)
	}
	const wantKey = wantBase + "|scenario{" + wantCanon + "}|trials=256"
	if got := ScenarioKey(base, sc, 256); got != wantKey {
		t.Fatalf("ScenarioKey = %q, want %q", got, wantKey)
	}
	if got := (&Scenario{}).Canonical(); got != "loss=0;seed=0" {
		t.Fatalf("zero Canonical() = %q, want %q", got, "loss=0;seed=0")
	}
}

// TestSweepKeyOrderSensitive: a sweep's identity depends on job order
// (results stream in grid order).
func TestSweepKeyOrderSensitive(t *testing.T) {
	k1 := RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(2), Diameter(4)), "periodic-half", 1000, NoSource)
	k2 := RequestKey(OpAnalyze, "kautz", MakeParams(Degree(2), Diameter(3)), "periodic-full", 1000, NoSource)
	if SweepKey([]string{k1, k2}) == SweepKey([]string{k2, k1}) {
		t.Fatal("reordered sweep grids share a key")
	}
	if !strings.HasPrefix(SweepKey(nil), OpSweep) {
		t.Fatal("sweep key does not carry the sweep operation tag")
	}
}

// TestParamsCanonical pins the stable textual form RequestKey embeds.
func TestParamsCanonical(t *testing.T) {
	got := MakeParams(Diameter(5), Degree(2)).Canonical()
	if got != "degree=2,diameter=5" {
		t.Fatalf("Canonical() = %q, want %q", got, "degree=2,diameter=5")
	}
	if got := MakeParams().Canonical(); got != "" {
		t.Fatalf("empty Canonical() = %q, want empty", got)
	}
	names := MakeParams(Rows(3), Cols(4), Nodes(8)).Names()
	want := []string{"cols", "nodes", "rows"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

// TestAnalyzeBroadcastAll: the scan measures flooding broadcast time, i.e.
// each source's directed eccentricity — a lower bound on the BFS-tree
// whispering time AnalyzeBroadcast measures — and the extremes are
// consistent.
func TestAnalyzeBroadcastAll(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	all, err := AnalyzeBroadcastAll(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	n := net.G.N()
	if len(all.Rounds) != n {
		t.Fatalf("got %d per-source results, want %d", len(all.Rounds), n)
	}
	if all.Sources != nil {
		t.Fatalf("full scan reported explicit sources %v, want nil", all.Sources)
	}
	for _, source := range []int{0, 1, n / 3, n - 1} {
		if ecc := net.G.Eccentricity(source); all.Rounds[source] != ecc {
			t.Errorf("source %d: broadcast-all measured %d, eccentricity %d",
				source, all.Rounds[source], ecc)
		}
		whisper, err := AnalyzeBroadcast(ctx, net, source)
		if err != nil {
			t.Fatal(err)
		}
		if all.Rounds[source] > whisper.Measured {
			t.Errorf("source %d: flooding time %d exceeds whispering time %d",
				source, all.Rounds[source], whisper.Measured)
		}
	}
	if all.Rounds[all.WorstSource] != all.Worst || all.Rounds[all.BestSource] != all.Best {
		t.Errorf("extremes inconsistent: %+v", all)
	}
	if all.Best > all.Worst {
		t.Errorf("best %d > worst %d", all.Best, all.Worst)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := AnalyzeBroadcastAll(cancelled, net); err == nil {
		t.Error("cancelled broadcast-all did not fail")
	}
}
