package systolic

import (
	"context"
	"strings"
	"testing"
)

// TestRequestKeyCanonical: parameter order, kind case and surrounding
// whitespace do not change the key; every semantic input does.
func TestRequestKeyCanonical(t *testing.T) {
	a := RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-half", 1000, NoSource)
	b := RequestKey(OpAnalyze, " DeBruijn ", MakeParams(Diameter(5), Degree(2)), "Periodic-Half", 1000, NoSource)
	if a != b {
		t.Fatalf("equivalent requests keyed differently:\n%s\n%s", a, b)
	}
	distinct := []string{
		a,
		RequestKey(OpBroadcast, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-half", 1000, 0),
		RequestKey(OpAnalyze, "kautz", MakeParams(Degree(2), Diameter(5)), "periodic-half", 1000, NoSource),
		RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(3), Diameter(5)), "periodic-half", 1000, NoSource),
		RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-full", 1000, NoSource),
		RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-half", 2000, NoSource),
		RequestKey(OpBroadcast, "debruijn", MakeParams(Degree(2), Diameter(5)), "periodic-half", 1000, 7),
	}
	seen := map[string]int{}
	for i, k := range distinct {
		if j, dup := seen[k]; dup {
			t.Errorf("requests %d and %d collide on key %s", j, i, k)
		}
		seen[k] = i
	}
}

// TestSweepKeyOrderSensitive: a sweep's identity depends on job order
// (results stream in grid order).
func TestSweepKeyOrderSensitive(t *testing.T) {
	k1 := RequestKey(OpAnalyze, "debruijn", MakeParams(Degree(2), Diameter(4)), "periodic-half", 1000, NoSource)
	k2 := RequestKey(OpAnalyze, "kautz", MakeParams(Degree(2), Diameter(3)), "periodic-full", 1000, NoSource)
	if SweepKey([]string{k1, k2}) == SweepKey([]string{k2, k1}) {
		t.Fatal("reordered sweep grids share a key")
	}
	if !strings.HasPrefix(SweepKey(nil), OpSweep) {
		t.Fatal("sweep key does not carry the sweep operation tag")
	}
}

// TestParamsCanonical pins the stable textual form RequestKey embeds.
func TestParamsCanonical(t *testing.T) {
	got := MakeParams(Diameter(5), Degree(2)).Canonical()
	if got != "degree=2,diameter=5" {
		t.Fatalf("Canonical() = %q, want %q", got, "degree=2,diameter=5")
	}
	if got := MakeParams().Canonical(); got != "" {
		t.Fatalf("empty Canonical() = %q, want empty", got)
	}
	names := MakeParams(Rows(3), Cols(4), Nodes(8)).Names()
	want := []string{"cols", "nodes", "rows"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

// TestAnalyzeBroadcastAll: the scan agrees with the per-source
// AnalyzeBroadcast on every source, and the extremes are consistent.
func TestAnalyzeBroadcastAll(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	all, err := AnalyzeBroadcastAll(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	n := net.G.N()
	if len(all.Rounds) != n {
		t.Fatalf("got %d per-source results, want %d", len(all.Rounds), n)
	}
	for _, source := range []int{0, 1, n / 3, n - 1} {
		want, err := AnalyzeBroadcast(ctx, net, source)
		if err != nil {
			t.Fatal(err)
		}
		if all.Rounds[source] != want.Measured {
			t.Errorf("source %d: broadcast-all measured %d, AnalyzeBroadcast %d",
				source, all.Rounds[source], want.Measured)
		}
	}
	if all.Rounds[all.WorstSource] != all.Worst || all.Rounds[all.BestSource] != all.Best {
		t.Errorf("extremes inconsistent: %+v", all)
	}
	if all.Best > all.Worst {
		t.Errorf("best %d > worst %d", all.Best, all.Worst)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := AnalyzeBroadcastAll(cancelled, net); err == nil {
		t.Error("cancelled broadcast-all did not fail")
	}
}
