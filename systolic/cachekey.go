package systolic

import (
	"fmt"
	"strings"
)

// Request operations for RequestKey. A serving layer that caches analysis
// results keys them by operation so an analyze and a broadcast over the same
// topology never collide.
const (
	OpAnalyze         = "analyze"
	OpBroadcast       = "broadcast"
	OpCertify         = "certify"
	OpCertifyScenario = "certify-scenario"
	OpSweep           = "sweep"
)

// NoSource is the source placeholder RequestKey uses for operations that
// have no broadcast source (gossip analyses, sweeps).
const NoSource = -1

// RequestKey canonicalizes one analysis request into a cache identity:
// operation, topology kind (case-folded), the named parameters in sorted
// order, the protocol name (case-folded), the round budget, and the
// broadcast source (NoSource when the operation has none). Every input that
// can change the produced report is part of the key, and nothing else is —
// two requests with equal keys are guaranteed to produce identical reports,
// so serving layers may cache results under it and coalesce concurrent
// duplicates onto one underlying simulation.
func RequestKey(op, kind string, params Params, protocol string, budget, source int) string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%d",
		op,
		strings.ToLower(strings.TrimSpace(kind)),
		params.Canonical(),
		strings.ToLower(strings.TrimSpace(protocol)),
		budget,
		source,
	)
}

// ScenarioKey extends a RequestKey with the fault model and trial count of
// a Monte-Carlo scenario certification. The scenario's Canonical form
// includes the seed, so two requests differing only in seed cache
// separately; and because plain RequestKeys never contain a "|scenario{"
// segment, a scenario key can never collide with a non-scenario one.
func ScenarioKey(base string, sc *Scenario, trials int) string {
	var canon string
	if sc != nil {
		canon = sc.Canonical()
	} else {
		canon = (&Scenario{}).Canonical()
	}
	return fmt.Sprintf("%s|scenario{%s}|trials=%d", base, canon, trials)
}

// SweepKey canonicalizes a whole sweep grid by chaining per-job RequestKeys
// in job order. Job order is part of the identity: sweeps stream results,
// and a reordered grid streams a different sequence.
func SweepKey(jobKeys []string) string {
	var sb strings.Builder
	sb.WriteString(OpSweep)
	for _, k := range jobKeys {
		sb.WriteByte(';')
		sb.WriteString(k)
	}
	return sb.String()
}
