package systolic

import (
	"fmt"
	"strings"
)

// Request operations for RequestKey. A serving layer that caches analysis
// results keys them by operation so an analyze and a broadcast over the same
// topology never collide.
const (
	OpAnalyze   = "analyze"
	OpBroadcast = "broadcast"
	OpCertify   = "certify"
	OpSweep     = "sweep"
)

// NoSource is the source placeholder RequestKey uses for operations that
// have no broadcast source (gossip analyses, sweeps).
const NoSource = -1

// RequestKey canonicalizes one analysis request into a cache identity:
// operation, topology kind (case-folded), the named parameters in sorted
// order, the protocol name (case-folded), the round budget, and the
// broadcast source (NoSource when the operation has none). Every input that
// can change the produced report is part of the key, and nothing else is —
// two requests with equal keys are guaranteed to produce identical reports,
// so serving layers may cache results under it and coalesce concurrent
// duplicates onto one underlying simulation.
func RequestKey(op, kind string, params Params, protocol string, budget, source int) string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%d",
		op,
		strings.ToLower(strings.TrimSpace(kind)),
		params.Canonical(),
		strings.ToLower(strings.TrimSpace(protocol)),
		budget,
		source,
	)
}

// SweepKey canonicalizes a whole sweep grid by chaining per-job RequestKeys
// in job order. Job order is part of the identity: sweeps stream results,
// and a reordered grid streams a different sequence.
func SweepKey(jobKeys []string) string {
	var sb strings.Builder
	sb.WriteString(OpSweep)
	for _, k := range jobKeys {
		sb.WriteByte(';')
		sb.WriteString(k)
	}
	return sb.String()
}
