package systolic

import "flag"

// update regenerates the golden files under testdata/ when tests run with
// `go test ./systolic -run JSONGolden -update`.
var update = flag.Bool("update", false, "rewrite golden files")
