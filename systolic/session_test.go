package systolic

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// compareGolden asserts got matches the named file under testdata,
// rewriting it under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from the golden file.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func sessionNet(t *testing.T) (*Network, *Protocol) {
	t.Helper()
	net, err := New("debruijn", Degree(2), Diameter(6))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, 0)
	if err != nil {
		t.Fatal(err)
	}
	return net, p
}

// TestSessionChunkedStepMatchesSimulate: stepping a session in arbitrary
// chunk sizes is equivalent to the one-shot Simulate — same completion
// round, same knowledge curve.
func TestSessionChunkedStepMatchesSimulate(t *testing.T) {
	net, p := sessionNet(t)
	ctx := context.Background()

	var curve []int
	res, err := Simulate(ctx, net, p, WithTrace(ObserverFunc(func(_, knowledge, _ int) {
		curve = append(curve, knowledge)
	})))
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 2, 3, 7, 1000000} {
		sess, err := NewEngine(net, p)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for !sess.Done() {
			executed, err := sess.Step(ctx, chunk)
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
			steps += executed
			if sess.Knowledge() != curve[sess.Rounds()-1] {
				t.Fatalf("chunk %d: knowledge %d after round %d, Simulate saw %d",
					chunk, sess.Knowledge(), sess.Rounds(), curve[sess.Rounds()-1])
			}
		}
		if sess.Rounds() != res.Rounds || steps != res.Rounds {
			t.Errorf("chunk %d: completed in %d rounds (%d stepped), Simulate took %d",
				chunk, sess.Rounds(), steps, res.Rounds)
		}
		if sess.Knowledge() != sess.Target() {
			t.Errorf("chunk %d: done with knowledge %d != target %d", chunk, sess.Knowledge(), sess.Target())
		}
		frontier := sess.Frontier()
		if len(frontier) != res.Rounds {
			t.Fatalf("chunk %d: frontier has %d entries, want %d", chunk, len(frontier), res.Rounds)
		}
		sum := net.G.N() // initial knowledge: every processor knows its own item
		for _, gained := range frontier {
			sum += gained
		}
		if sum != sess.Target() {
			t.Errorf("chunk %d: frontier sums to %d, want target %d", chunk, sum, sess.Target())
		}
		sess.Close()
	}
}

// TestSessionSnapshotRestoreRoundTrip: a mid-flight snapshot survives a
// JSON round trip and the restored session resumes deterministically to
// the same completion.
func TestSessionSnapshotRestoreRoundTrip(t *testing.T) {
	net, p := sessionNet(t)
	ctx := context.Background()

	ref, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Step(ctx, 5); err != nil {
		t.Fatal(err)
	}
	ck := ref.Snapshot()

	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.Restore(back); err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds() != 5 || resumed.Knowledge() != ref.Knowledge() {
		t.Fatalf("restored session at round %d knowledge %d, want round 5 knowledge %d",
			resumed.Rounds(), resumed.Knowledge(), ref.Knowledge())
	}

	refRes, err := ref.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	resRes, err := resumed.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if refRes != resRes {
		t.Errorf("resumed run %+v differs from original %+v", resRes, refRes)
	}
	refFinal, resFinal := ref.Snapshot(), resumed.Snapshot()
	if refFinal.State != resFinal.State || len(refFinal.Frontier) != len(resFinal.Frontier) {
		t.Error("final states diverged after restore")
	}
}

// TestSessionRestoreRejectsMismatches: checkpoints from the wrong network,
// mode or with corrupt payloads are refused.
func TestSessionRestoreRejectsMismatches(t *testing.T) {
	net, p := sessionNet(t)
	ctx := context.Background()
	sess, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(ctx, 3); err != nil {
		t.Fatal(err)
	}
	good := sess.Snapshot()

	cases := map[string]func(c Checkpoint) Checkpoint{
		"version":   func(c Checkpoint) Checkpoint { c.Version = 99; return c },
		"mode":      func(c Checkpoint) Checkpoint { c.Mode = "broadcast"; return c },
		"n":         func(c Checkpoint) Checkpoint { c.N = 7; return c },
		"network":   func(c Checkpoint) Checkpoint { c.Network = "other"; return c },
		"payload":   func(c Checkpoint) Checkpoint { c.State = "not base64!"; return c },
		"truncated": func(c Checkpoint) Checkpoint { c.State = c.State[:8]; return c },
		"knowledge": func(c Checkpoint) Checkpoint { c.Knowledge++; return c },
		"protocol":  func(c Checkpoint) Checkpoint { c.Protocol = "deadbeefdeadbeef"; return c },
		"frontier-len": func(c Checkpoint) Checkpoint {
			c.Frontier = c.Frontier[:len(c.Frontier)-1]
			return c
		},
		"frontier-sum": func(c Checkpoint) Checkpoint {
			f := append([]int(nil), c.Frontier...)
			f[0]++
			c.Frontier = f
			return c
		},
	}
	full, err := Simulate(ctx, net, p)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range cases {
		target, err := NewEngine(net, p)
		if err != nil {
			t.Fatal(err)
		}
		bad := mutate(*good)
		if err := target.Restore(&bad); err == nil {
			t.Errorf("%s: corrupted checkpoint was accepted", name)
		} else if !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: rejection %v does not wrap ErrBadCheckpoint", name, err)
		}
		// Restore is atomic: the rejected checkpoint must not have touched
		// the session, which still runs to the untouched completion.
		if target.Rounds() != 0 || target.Knowledge() != net.G.N() {
			t.Errorf("%s: failed Restore mutated the session (round %d, knowledge %d)",
				name, target.Rounds(), target.Knowledge())
		}
		if res, err := target.Run(ctx); err != nil || res != full {
			t.Errorf("%s: session after failed Restore ran to %+v (%v), want %+v", name, res, err, full)
		}
		target.Close()
	}

	// A session running a different protocol on the same network refuses
	// the checkpoint too.
	other, err := NewProtocol("periodic-interleaved", net, 0)
	if err != nil {
		t.Fatal(err)
	}
	mismatched, err := NewEngine(net, other)
	if err != nil {
		t.Fatal(err)
	}
	defer mismatched.Close()
	if err := mismatched.Restore(good); err == nil {
		t.Error("checkpoint restored under a different protocol")
	} else if !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("protocol mismatch rejection %v does not wrap ErrBadCheckpoint", err)
	}

	// The pristine checkpoint still restores.
	target, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	if err := target.Restore(good); err != nil {
		t.Errorf("pristine checkpoint rejected: %v", err)
	}
}

// TestSessionShardedMatchesSerial: a session sharded across 1..8 workers
// (threshold forced down so the 64-vertex instance shards) is byte-identical
// to the serial session after every chunk.
func TestSessionShardedMatchesSerial(t *testing.T) {
	net, p := sessionNet(t)
	ctx := context.Background()

	serial, err := NewEngine(net, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	var snapshots []string
	for !serial.Done() {
		if _, err := serial.Step(ctx, 1); err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, serial.Snapshot().State)
	}

	for workers := 1; workers <= 8; workers++ {
		sess, err := NewEngine(net, p, WithWorkers(workers), WithShardThreshold(1))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; !sess.Done(); r++ {
			if _, err := sess.Step(ctx, 1); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if sess.Snapshot().State != snapshots[r] {
				t.Fatalf("workers=%d: state diverged from serial at round %d", workers, r+1)
			}
		}
		if sess.Rounds() != len(snapshots) {
			t.Errorf("workers=%d: completed in %d rounds, serial took %d", workers, sess.Rounds(), len(snapshots))
		}
		sess.Close()
	}
}

// TestSessionBudget: a session that hits its budget reports ErrIncomplete
// from Step and Run but stays resumable if reconstructed with more budget.
func TestSessionBudget(t *testing.T) {
	net, p := sessionNet(t)
	ctx := context.Background()

	sess, err := NewEngine(net, p, WithRoundBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(ctx, 100); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Step past the budget: %v, want ErrIncomplete", err)
	}
	if sess.Rounds() != 3 || sess.Done() {
		t.Fatalf("budget-stopped session at round %d done=%v", sess.Rounds(), sess.Done())
	}
	if _, err := sess.Run(ctx); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Run past the budget: %v, want ErrIncomplete", err)
	}

	// Resume through a checkpoint into a roomier session.
	resumed, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.Restore(sess.Snapshot()); err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Simulate(ctx, net, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != full.Rounds {
		t.Errorf("resumed completion at round %d, one-shot at %d", res.Rounds, full.Rounds)
	}
}

// TestSessionContextCancellation: a cancelled context stops Step between
// rounds with the context error.
func TestSessionContextCancellation(t *testing.T) {
	net, p := sessionNet(t)
	sess, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Step(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("Step on cancelled context: %v", err)
	}
	if sess.Rounds() != 0 {
		t.Errorf("cancelled session executed %d rounds", sess.Rounds())
	}
}

// TestBroadcastSessionMatchesAnalyzeBroadcast: the broadcast engine agrees
// with the one-shot wrapper and checkpoints like a gossip session.
func TestBroadcastSessionMatchesAnalyzeBroadcast(t *testing.T) {
	net, err := New("wbf", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := AnalyzeBroadcast(ctx, net, 5)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewBroadcastEngine(net, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(ctx, 2); err != nil {
		t.Fatal(err)
	}
	ck := sess.Snapshot()
	if ck.Mode != "broadcast" || ck.Source != 5 {
		t.Fatalf("broadcast checkpoint misdescribes itself: %+v", ck)
	}

	resumed, err := NewBroadcastEngine(net, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.Restore(ck); err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.AnalyzeBroadcast(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if *rep != *want {
		t.Errorf("resumed broadcast report %+v, want %+v", *rep, *want)
	}

	if _, err := NewBroadcastEngine(net, net.G.N()); !errors.Is(err, ErrBadParam) {
		t.Error("out-of-range broadcast source was accepted")
	}
	if _, err := sess.Analyze(ctx); err == nil {
		t.Error("Analyze on a broadcast session should error")
	}
}

// TestSessionAnalyzeMatchesWrapper: Session.Analyze equals the one-shot
// Analyze report even when the run resumed mid-flight.
func TestSessionAnalyzeMatchesWrapper(t *testing.T) {
	net, p := sessionNet(t)
	ctx := context.Background()
	want, err := Analyze(ctx, net, p)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(ctx, 4); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("session report %+v, want %+v", *got, *want)
	}
	if _, err := sess.AnalyzeBroadcast(ctx); err == nil {
		t.Error("AnalyzeBroadcast on a gossip session should error")
	}
}

// TestSessionTrivialNetworkDoneImmediately: n == 1 completes at round 0,
// matching the one-shot wrappers.
func TestSessionTrivialNetworkDoneImmediately(t *testing.T) {
	net, err := New("complete", Nodes(1))
	if err != nil {
		t.Fatal(err)
	}
	p := &Protocol{Mode: HalfDuplex}
	sess, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if !sess.Done() || sess.Rounds() != 0 {
		t.Fatalf("singleton network not done at construction: done=%v rounds=%d", sess.Done(), sess.Rounds())
	}
	res, err := sess.Run(context.Background())
	if err != nil || res.Rounds != 0 {
		t.Fatalf("singleton Run = %+v, %v", res, err)
	}
}

// TestSweepStreamMatchesSweep: the stream emits exactly the barrier
// Sweep's results (keyed by Index), just in completion order.
func TestSweepStreamMatchesSweep(t *testing.T) {
	jobs := []SweepJob{
		{Label: "db", Kind: "debruijn",
			Params:   []Param{Degree(2), Diameter(4)},
			Protocol: UseProtocol("periodic-half", 0)},
		{Label: "cycle", Kind: "cycle",
			Params:   []Param{Nodes(16)},
			Protocol: UseProtocol("cycle2", 0)},
		{Label: "bad", Kind: "no-such-kind"},
		{Label: "hc", Kind: "hypercube",
			Params:   []Param{Dimension(4)},
			Protocol: UseProtocol("hypercube", 0)},
	}
	ctx := context.Background()
	want, err := Sweep(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}

	seen := make([]bool, len(jobs))
	count := 0
	for res := range SweepStream(ctx, jobs) {
		if res.Index < 0 || res.Index >= len(jobs) || seen[res.Index] {
			t.Fatalf("stream emitted bad/duplicate index %d", res.Index)
		}
		seen[res.Index] = true
		count++
		w := want[res.Index]
		if res.Label != w.Label || res.Network != w.Network || res.N != w.N {
			t.Errorf("job %d envelope mismatch: stream %+v, sweep %+v", res.Index, res, w)
		}
		if (res.Err == nil) != (w.Err == nil) {
			t.Errorf("job %d error mismatch: stream %v, sweep %v", res.Index, res.Err, w.Err)
		}
		if res.Report != nil && w.Report != nil && *res.Report != *w.Report {
			t.Errorf("job %d report mismatch", res.Index)
		}
	}
	if count != len(jobs) {
		t.Errorf("stream emitted %d results, want %d", count, len(jobs))
	}
}

// TestSweepStreamCancellation: cancelling mid-stream still emits one result
// per job and closes the channel.
func TestSweepStreamCancellation(t *testing.T) {
	jobs := make([]SweepJob, 16)
	for i := range jobs {
		jobs[i] = SweepJob{Label: "slow", Kind: "debruijn",
			Params:   []Param{Degree(2), Diameter(5)},
			Protocol: UseProtocol("periodic-half", 0)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := SweepStream(ctx, jobs, WithWorkers(2))
	count, cancelled := 0, 0
	for res := range stream {
		count++
		if errors.Is(res.Err, context.Canceled) {
			cancelled++
		}
		if count == 1 {
			cancel()
		}
	}
	if count != len(jobs) {
		t.Fatalf("stream emitted %d results, want %d", count, len(jobs))
	}
	if cancelled == 0 {
		t.Error("no job was marked with the cancellation error")
	}
}

// TestCheckpointJSONGolden pins the checkpoint wire schema the same way the
// report goldens do: a literal checkpoint marshals byte-for-byte to
// testdata/checkpoint.golden.json. Regenerate with -update after an
// intentional schema change.
func TestCheckpointJSONGolden(t *testing.T) {
	ck := &Checkpoint{
		Version:   1,
		Network:   "DB(2,4)",
		Mode:      "gossip",
		N:         16,
		Source:    -1,
		Round:     3,
		Done:      false,
		Knowledge: 58,
		Protocol:  "00112233aabbccdd",
		Frontier:  []int{14, 13, 15},
		State:     "AQAAAAAAAAA=",
	}
	got, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	compareGolden(t, "checkpoint.golden.json", got)
}

// TestCheckpointRealRoundTrip: a checkpoint produced by a live session
// parses back into an identical checkpoint through the JSON helpers.
func TestCheckpointRealRoundTrip(t *testing.T) {
	net, p := sessionNet(t)
	sess, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	ck := sess.Snapshot()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.State != ck.State || back.Round != ck.Round || back.Knowledge != ck.Knowledge {
		t.Errorf("checkpoint changed across WriteCheckpoint/ReadCheckpoint")
	}
}
