package systolic

import (
	"context"
	"testing"
)

// TestCompleteGraphHalfDuplexRegime: the 1.4404·log n bound of
// [4,17,15,26] (recovered by this paper's s→∞ corollary) is attained on
// complete graphs. Our greedy heuristic is not the optimal Fibonacci-style
// scheme, but its measured time must sit between the bound and a small
// multiple of it, and the ratio must not grow with n — the shape the theory
// predicts for K_n.
func TestCompleteGraphHalfDuplexRegime(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{8, 16, 32, 64} {
		net, err := New("complete", Nodes(n))
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProtocol("greedy-half", net, 1000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(ctx, net, p, WithRoundBudget(1000))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.Rounds) / net.LogN()
		// Lower bound coefficient is 1.4404 asymptotically; at finite n the
		// O(log log n) slack loosens it, so only check ≥ 1 (information
		// bound) from below and a generous constant from above.
		if ratio < 1 {
			t.Errorf("K%d: ratio %.2f beats the information bound", n, ratio)
		}
		if ratio > 4 {
			t.Errorf("K%d: ratio %.2f far above the 1.44·log n regime", n, ratio)
		}
		t.Logf("K%d: greedy half-duplex gossip %d rounds = %.2f·log2(n) (bound coefficient 1.4404)", n, res.Rounds, ratio)
	}
}

// TestCompleteGraphFullDuplexOptimal: recursive doubling attains log₂(n) on
// K_n for n a power of two — the classical optimum the model predicts.
func TestCompleteGraphFullDuplexOptimal(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{8, 32, 128} {
		net, err := New("complete", Nodes(n))
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProtocol("doubling", net, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(ctx, net, p, WithRoundBudget(1000))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for m := 1; m < n; m <<= 1 {
			want++
		}
		if rep.Measured != want {
			t.Errorf("K%d: doubling gossip %d rounds, want %d", n, rep.Measured, want)
		}
		if rep.LowerBound.Rounds != want {
			t.Errorf("K%d: certified bound %d, want %d (tight)", n, rep.LowerBound.Rounds, want)
		}
	}
}
