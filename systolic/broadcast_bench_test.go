package systolic

import (
	"context"
	"testing"
)

// The broadcast-scan benchmarks compare the bit-parallel packed kernel
// against the scalar per-source reference on the acceptance workloads:
// a full hypercube d=12 scan (4096 sources, 64 batches) and a 64-source
// subset of hypercube d=16 (65536 vertices, one batch). Workers are pinned
// at 4 so the allocation counts the CI gate pins do not depend on the
// benchmark machine's GOMAXPROCS.
//
// The *Gen variants force the same scans through the streaming generator
// kernel (WithImplicitScan) on the same materialized networks, pinning the
// price of computing arcs on the fly instead of walking the CSR — the
// acceptance bound is packed gen within 1.3x of packed CSR at d=12.

func benchScan(b *testing.B, dim int, sources []int, opts ...Option) {
	b.Helper()
	net, err := New("hypercube", Dimension(dim))
	if err != nil {
		b.Fatal(err)
	}
	opts = append(opts, WithWorkers(4))
	if sources != nil {
		opts = append(opts, WithSources(sources))
	}
	ctx := context.Background()
	rep, err := AnalyzeBroadcastAll(ctx, net, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if rep.Worst != dim || rep.Best != dim {
		b.Fatalf("hypercube d=%d scan measured worst %d best %d, want the diameter", dim, rep.Worst, rep.Best)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeBroadcastAll(ctx, net, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// subset64 spreads 64 sources across n vertices.
func subset64(n int) []int {
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = i * (n / 64)
	}
	return sources
}

func BenchmarkBroadcastAllPacked(b *testing.B) { benchScan(b, 12, nil) }

func BenchmarkBroadcastAllScalar(b *testing.B) { benchScan(b, 12, nil, WithScalarScan()) }

func BenchmarkBroadcastAllPackedD16(b *testing.B) { benchScan(b, 16, subset64(1<<16)) }

func BenchmarkBroadcastAllScalarD16(b *testing.B) {
	benchScan(b, 16, subset64(1<<16), WithScalarScan())
}

func BenchmarkBroadcastAllPackedGen(b *testing.B) { benchScan(b, 12, nil, WithImplicitScan()) }

func BenchmarkBroadcastAllScalarGen(b *testing.B) {
	benchScan(b, 12, nil, WithScalarScan(), WithImplicitScan())
}

func BenchmarkBroadcastAllPackedGenD16(b *testing.B) {
	benchScan(b, 16, subset64(1<<16), WithImplicitScan())
}
