package systolic

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/scenario"
)

// ArcLoss overrides the scenario's global loss probability on one directed
// arc (wire form; see Scenario).
type ArcLoss struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Loss float64 `json:"loss"`
}

// CrashWindow crashes one node for the half-open round interval
// [From, To): a down node neither sends nor receives, and rejoins warm
// (keeping its pre-crash knowledge).
type CrashWindow struct {
	Node int `json:"node"`
	From int `json:"from"`
	To   int `json:"to"`
}

// Scenario is the wire-level fault model of a Monte-Carlo certification:
// random per-arc message loss, scheduled node churn, and adversarial arc
// deletion, rooted in a deterministic seed. An all-zero Scenario is
// inactive and executes byte-identically to the deterministic path.
//
// The seed is part of the scenario's cache identity (Canonical), so a
// scenario request is exactly as reproducible — and as cacheable — as a
// deterministic one: trial i draws its PRNG stream from (Seed, i) alone.
type Scenario struct {
	// Loss is the per-arc per-round delivery failure probability in [0, 1].
	Loss float64 `json:"loss,omitempty"`
	// ArcLoss overrides Loss on specific directed arcs.
	ArcLoss []ArcLoss `json:"arc_loss,omitempty"`
	// Crashes lists node down-windows (round-indexed, half-open).
	Crashes []CrashWindow `json:"crashes,omitempty"`
	// DeleteArcs lists [from, to] directed arcs the adversary removes for
	// the whole execution.
	DeleteArcs [][2]int `json:"delete_arcs,omitempty"`
	// Seed roots every trial's PRNG stream.
	Seed uint64 `json:"seed,omitempty"`
}

// Active reports whether the scenario injects any fault.
func (sc *Scenario) Active() bool {
	if sc == nil {
		return false
	}
	return sc.Loss > 0 || len(sc.ArcLoss) > 0 || len(sc.Crashes) > 0 || len(sc.DeleteArcs) > 0
}

// Canonical renders the scenario as a deterministic cache-key fragment.
// Every field that can change a trial's execution appears; float
// probabilities use the shortest round-trip representation, and list
// order is part of the identity (it is part of the spec's semantics for
// duplicate arc overrides).
//
//gossip:keywriter Scenario
//gossip:keywriter ArcLoss
//gossip:keywriter CrashWindow
func (sc *Scenario) Canonical() string {
	var sb strings.Builder
	sb.WriteString("loss=")
	sb.WriteString(strconv.FormatFloat(sc.Loss, 'g', -1, 64))
	if len(sc.ArcLoss) > 0 {
		sb.WriteString(";arcloss=")
		for i, al := range sc.ArcLoss {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d>%d:%s", al.From, al.To, strconv.FormatFloat(al.Loss, 'g', -1, 64))
		}
	}
	if len(sc.Crashes) > 0 {
		sb.WriteString(";crash=")
		for i, w := range sc.Crashes {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d@%d-%d", w.Node, w.From, w.To)
		}
	}
	if len(sc.DeleteArcs) > 0 {
		sb.WriteString(";del=")
		for i, a := range sc.DeleteArcs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d>%d", a[0], a[1])
		}
	}
	sb.WriteString(";seed=")
	sb.WriteString(strconv.FormatUint(sc.Seed, 10))
	return sb.String()
}

// spec lowers the wire scenario to the execution-layer fault model.
func (sc *Scenario) spec() *scenario.Spec {
	if sc == nil {
		return nil
	}
	sp := &scenario.Spec{Loss: sc.Loss, Seed: sc.Seed}
	for _, al := range sc.ArcLoss {
		sp.ArcLoss = append(sp.ArcLoss, scenario.ArcLoss{From: al.From, To: al.To, Loss: al.Loss})
	}
	for _, w := range sc.Crashes {
		sp.Crashes = append(sp.Crashes, scenario.Window{Node: w.Node, From: w.From, To: w.To})
	}
	for _, a := range sc.DeleteArcs {
		sp.Deleted = append(sp.Deleted, graph.Arc{From: a[0], To: a[1]})
	}
	return sp
}

// TrialStats summarizes the completion-round distribution of a
// Monte-Carlo scenario run. Budget-truncated trials are censored at the
// budget: they enter the mean and the quantiles at that value (a lower
// bound on their true completion time) and are counted in Truncated —
// truncation is data, not an error.
type TrialStats struct {
	Trials    int `json:"trials"`
	Completed int `json:"completed"`
	Truncated int `json:"truncated"`
	// CompletionRate is Completed / Trials.
	CompletionRate float64 `json:"completion_rate"`
	// MeanRounds averages the (censored) round counts over all trials.
	MeanRounds float64 `json:"mean_rounds"`
	MinRounds  int     `json:"min_rounds"`
	MaxRounds  int     `json:"max_rounds"`
	// P50/P90/P99 are nearest-rank quantiles of the censored distribution.
	P50 int `json:"p50"`
	P90 int `json:"p90"`
	P99 int `json:"p99"`
	// DistributionFP is an FNV-1a fingerprint of the per-trial outcomes in
	// trial order — two runs with equal fingerprints produced identical
	// distributions (the reproducibility tests pin equal seeds to equal
	// fingerprints).
	DistributionFP string `json:"distribution_fp"`
}

// StatisticalCertificate is the outcome of a Monte-Carlo scenario
// certification: the measured completion-round distribution of a protocol
// under faults, compared against the paper's deterministic lower bound.
// The bounds are proved for fault-free executions, so faults can only slow
// dissemination down — a median below the lower bound would witness a
// broken simulator, which is exactly what BoundRespected checks.
type StatisticalCertificate struct {
	Network  string   `json:"network"`
	Mode     string   `json:"mode"`
	Period   int      `json:"period"`
	Scenario Scenario `json:"scenario"`
	// Budget is the per-trial round budget.
	Budget int        `json:"budget"`
	Trials TrialStats `json:"trials"`
	// LowerBound is the deterministic lower bound for this network/mode/
	// period (scenario-independent).
	LowerBound Bound `json:"lower_bound"`
	// Deterministic is the fault-free certificate of the same schedule —
	// the baseline the drift is measured from.
	Deterministic *Certificate `json:"deterministic,omitempty"`
	// BoundRespected reports P50 ≥ LowerBound.Rounds.
	BoundRespected bool `json:"bound_respected"`
	// MeanDriftRounds is Trials.MeanRounds − Deterministic.Measured: how
	// many extra rounds the faults cost on average.
	MeanDriftRounds float64 `json:"mean_drift_rounds"`
}

// String renders the statistical certificate.
func (c *StatisticalCertificate) String() string {
	return fmt.Sprintf("%s [%s]: %d trials (%.0f%% complete, %d truncated at budget %d); rounds p50/p90/p99 = %d/%d/%d, mean %.2f; lower bound %d respected: %v; drift +%.2f rounds over deterministic",
		c.Network, c.Mode, c.Trials.Trials, 100*c.Trials.CompletionRate, c.Trials.Truncated, c.Budget,
		c.Trials.P50, c.Trials.P90, c.Trials.P99, c.Trials.MeanRounds,
		c.LowerBound.Rounds, c.BoundRespected, c.MeanDriftRounds)
}

// MaxScenarioTrials caps one certification's trial count — a guard
// against requests that would monopolize the service, not a statistical
// limit.
const MaxScenarioTrials = 65536

// CertifyScenario validates and compiles p on the network, then runs a
// Monte-Carlo scenario certification: trials independent faulty
// executions of the compiled schedule, fanned across the worker pool,
// aggregated into a StatisticalCertificate against the deterministic
// lower bound. Callers that already hold a compiled Program use
// CertifyScenarioProgram.
func CertifyScenario(ctx context.Context, net *Network, p *Protocol, sc *Scenario, trials int, opts ...Option) (*StatisticalCertificate, error) {
	pr, err := CompileProtocol(net, p)
	if err != nil {
		return nil, fmt.Errorf("systolic: certify scenario on %s: %w", net.Name, err)
	}
	return CertifyScenarioProgram(ctx, pr, sc, trials, opts...)
}

// CertifyScenarioProgram is CertifyScenario over an already compiled
// Program. Each worker owns one reusable state and one reusable trial
// (reset between trials, so steady-state trials allocate nothing); trial
// i's PRNG stream depends only on (scenario seed, i), making the reported
// distribution independent of the worker count. Budget-truncated trials
// are reported in the statistics, never as an error; the only failures
// are invalid inputs and context cancellation.
func CertifyScenarioProgram(ctx context.Context, pr *Program, sc *Scenario, trials int, opts ...Option) (*StatisticalCertificate, error) {
	net, p := pr.net, pr.proto
	if trials < 1 {
		return nil, fmt.Errorf("%w: scenario trials %d < 1", ErrBadParam, trials)
	}
	if trials > MaxScenarioTrials {
		return nil, fmt.Errorf("%w: scenario trials %d > %d", ErrBadParam, trials, MaxScenarioTrials)
	}
	n := net.G.N()
	comp, err := scenario.Compile(sc.spec(), n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParam, err)
	}
	cfg := newConfig(opts)
	budget := cfg.budget
	if !p.Systolic() && p.Len() < budget {
		budget = p.Len()
	}

	// Deterministic baseline: the fault-free certificate of the same
	// schedule under the same budget, sharing any cached delay plan.
	det, err := func() (*Certificate, error) {
		sess, err := NewEngineFromProgram(pr, opts...)
		if err != nil {
			return nil, err
		}
		defer sess.Close()
		return sess.Certify(ctx)
	}()
	if err != nil {
		return nil, fmt.Errorf("systolic: certify scenario on %s: %w", net.Name, err)
	}

	type outcome struct {
		rounds    int
		truncated bool
	}
	outcomes := make([]outcome, trials)
	workers := cfg.workers
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			st := gossip.NewState(n)
			tr := comp.Trial(w)
			for i := w; i < trials; i += workers {
				if ctx.Err() != nil {
					return
				}
				tr.Reset(i)
				if i != w {
					st.Reset()
				}
				done := st.GossipComplete() // n ≤ 1 completes in 0 rounds
				r := 0
				for ; r < budget && !done; r++ {
					tr.Step(st, pr.prog, r)
					done = st.GossipComplete()
				}
				outcomes[i] = outcome{rounds: r, truncated: !done}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("systolic: certify scenario on %s: %w", net.Name, err)
	}

	stats := TrialStats{Trials: trials, MinRounds: outcomes[0].rounds, MaxRounds: outcomes[0].rounds}
	fp := fnv.New64a()
	var buf [5]byte
	sum := 0.0
	sorted := make([]int, trials)
	for i, o := range outcomes {
		if o.truncated {
			stats.Truncated++
			buf[4] = 1
		} else {
			stats.Completed++
			buf[4] = 0
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(o.rounds))
		fp.Write(buf[:])
		sum += float64(o.rounds)
		sorted[i] = o.rounds
		if o.rounds < stats.MinRounds {
			stats.MinRounds = o.rounds
		}
		if o.rounds > stats.MaxRounds {
			stats.MaxRounds = o.rounds
		}
	}
	sort.Ints(sorted)
	stats.CompletionRate = float64(stats.Completed) / float64(trials)
	stats.MeanRounds = sum / float64(trials)
	stats.P50 = nearestRank(sorted, 0.50)
	stats.P90 = nearestRank(sorted, 0.90)
	stats.P99 = nearestRank(sorted, 0.99)
	stats.DistributionFP = fmt.Sprintf("%016x", fp.Sum64())

	out := &StatisticalCertificate{
		Network:         net.Name,
		Mode:            p.Mode.String(),
		Period:          p.Period,
		Budget:          budget,
		Trials:          stats,
		LowerBound:      det.LowerBound,
		Deterministic:   det,
		BoundRespected:  stats.P50 >= det.LowerBound.Rounds,
		MeanDriftRounds: stats.MeanRounds - float64(det.Measured),
	}
	if sc != nil {
		out.Scenario = *sc
	}
	return out, nil
}

// nearestRank returns the nearest-rank q-quantile of a sorted sample.
func nearestRank(sorted []int, q float64) int {
	rank := int(q*float64(len(sorted)) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
