package systolic

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/delay"
	"repro/internal/gossip"
	"repro/internal/graph"
)

// DelayPlan is the compiled delay lowering of one protocol on one network:
// the per-round activation structure of the delay digraph (Definition 3.3),
// derived once, from which the digraph of any executed round count
// instantiates without re-walking the protocol — with instances memoized
// per round count and their M(λ) evaluations running against preallocated
// CSR/scratch storage (zero steady-state allocations in the λ loop).
//
// A DelayPlan is immutable and safe to share: serving layers cache it
// alongside the compiled Program, so repeated certifications of one
// schedule never rebuild the delay digraph.
type DelayPlan struct {
	net   *Network
	proto *Protocol
	fp    string
	plan  *delay.Plan
}

// CompileDelayPlan validates p on the network and compiles its delay
// lowering. Pair it with WithDelayPlan to make every Certify over the same
// schedule skip the digraph rebuild.
func CompileDelayPlan(net *Network, p *Protocol) (*DelayPlan, error) {
	if err := net.needG("delay plan on"); err != nil {
		return nil, err
	}
	pl, err := delay.NewPlan(net.G, p)
	if err != nil {
		return nil, fmt.Errorf("systolic: delay plan on %s: %w", net.Name, err)
	}
	return &DelayPlan{net: net, proto: p, fp: p.Fingerprint(), plan: pl}, nil
}

// compileDelayPlanValidated is CompileDelayPlan for protocols that already
// passed Validate (a compiled Program's schedule, a live session's
// protocol), skipping the duplicate validation walk.
func compileDelayPlanValidated(net *Network, p *Protocol) (*DelayPlan, error) {
	pl, err := delay.NewPlanValidated(net.G, p)
	if err != nil {
		return nil, fmt.Errorf("systolic: delay plan on %s: %w", net.Name, err)
	}
	return &DelayPlan{net: net, proto: p, fp: p.Fingerprint(), plan: pl}, nil
}

// DelayPlan compiles the delay lowering of the program's protocol — the
// certification-side artifact serving layers cache next to the compiled
// execution schedule. The program's schedule was validated at compile
// time, so no validation is repeated.
func (pr *Program) DelayPlan() (*DelayPlan, error) {
	return compileDelayPlanValidated(pr.net, pr.proto)
}

// Network returns the network the plan was compiled on.
func (dp *DelayPlan) Network() *Network { return dp.net }

// Fingerprint returns the FNV-1a schedule fingerprint of the source
// protocol — the identity plan caches key entries by.
func (dp *DelayPlan) Fingerprint() string { return dp.fp }

// matches reports whether the plan was compiled from p (pointer fast path,
// fingerprint otherwise). A session handed a mismatched plan silently
// compiles its own rather than certifying against the wrong schedule.
func (dp *DelayPlan) matches(p *Protocol) bool {
	return dp.proto == p || dp.fp == p.Fingerprint()
}

// normCapTol absorbs power-iteration round-off when comparing ‖M(λ₀)‖
// against its structural cap of 1.
const normCapTol = 1e-9

// BroadcastBound is the broadcast section of a Certificate: the
// Liestman–Peters / Bermond et al. c(d)·log₂(n) constant the paper's
// Section 6 ties to the full-duplex systolic bounds, floored to its
// certified finite-n part (⌈log₂ n⌉ and the source eccentricity).
type BroadcastBound struct {
	// Source is the broadcast source vertex.
	Source int `json:"source"`
	// C is the asymptotic constant c(d) for the network's degree parameter.
	C float64 `json:"c"`
	// CBound is the certified finite-n lower bound on broadcast rounds.
	CBound int `json:"c_bound"`
	// Applicable is false when the run was budget-truncated: a prefix
	// measurement certifies nothing about b(G).
	Applicable bool `json:"applicable"`
	// Respected reports Measured ≥ CBound (only when Applicable). On a
	// per-source bound it reports every scanned source respecting the floor.
	Respected bool `json:"respected"`

	// The remaining fields summarize the per-source floor evaluation of an
	// all-sources scan (AnalyzeBroadcastAll.Bound): the floor is checked
	// against every scanned source's measured time inside the scan's summary
	// pass, Source is -1, and MinRounds/MaxRounds bracket the measurements.
	// Single-source certificates leave them zero/omitted.
	ScannedSources int `json:"scanned_sources,omitempty"`
	MinRounds      int `json:"min_rounds,omitempty"`
	MaxRounds      int `json:"max_rounds,omitempty"`
	// Violations counts sources measured below the floor (zero if the bound
	// holds — the expected outcome) and ViolatingSource identifies the first
	// scanned source below it, present only when Violations > 0.
	Violations      int  `json:"floor_violations,omitempty"`
	ViolatingSource *int `json:"violating_source,omitempty"`
}

// Certificate is the typed outcome of the certification pipeline: the
// measured dissemination time of one protocol on one network together with
// every applicable verdict of the paper's lower-bound machinery — the
// delay-digraph statistics (Definition 3.3), ‖M(λ₀)‖ at the root of the
// period's norm cap (Definition 3.4, Lemma 4.3 / 6.1), the evaluated
// general/separator/diameter lower bound, and the Theorem 4.1 check against
// the measurement. Analyze and AnalyzeBroadcast are thin views over it.
// It is JSON-serializable; /v1/certify serves it verbatim.
type Certificate struct {
	Network string `json:"network"`
	// Mode is the communication model name ("directed", "half-duplex",
	// "full-duplex").
	Mode string `json:"mode"`
	// Period is the systolic period (0 for finite non-systolic).
	Period int `json:"period"`
	// Complete reports whether dissemination finished within the round
	// budget. When false the certificate describes the executed prefix —
	// the delay digraph is still well-defined — but the theorem verdicts
	// are marked inapplicable rather than vacuously true.
	Complete bool `json:"complete"`
	// Measured is the executed round count (the completion time when
	// Complete, the budget otherwise).
	Measured int `json:"measured_rounds"`
	// Budget is the round budget the session ran under.
	Budget int `json:"budget"`
	// LowerBound is the paper's bound for this network/mode/period
	// (independent of the run, so it is reported even on truncated runs).
	LowerBound Bound `json:"lower_bound"`
	// DelayVerts and DelayArcs are the delay-digraph sizes over the
	// executed rounds.
	DelayVerts int `json:"delay_verts"`
	DelayArcs  int `json:"delay_arcs"`
	// Lambda is the root λ₀ of the period's norm cap (0 when s = 2, where
	// the paper argues directly and no root applies).
	Lambda float64 `json:"lambda"`
	// NormAtRoot is ‖M(λ₀)‖ and NormCap the Lemma 4.3 / 6.1 cap (= 1 at
	// the root by construction); NormChecked is false when no root applies.
	// The cap is structural — it holds for any executed prefix of a
	// systolic protocol — so it is checked even on truncated runs.
	NormAtRoot    float64 `json:"norm_at_root"`
	NormCap       float64 `json:"norm_cap"`
	NormChecked   bool    `json:"norm_checked"`
	NormRespected bool    `json:"norm_respected"`
	// TheoremApplicable is true only for complete runs: Theorem 4.1 bounds
	// the completion time, so a budget-truncated measurement certifies
	// nothing. TheoremRespected is the Theorem 4.1 check (or the explicit
	// s=2 bound comparison) when applicable, false otherwise.
	TheoremApplicable bool `json:"theorem_applicable"`
	TheoremRespected  bool `json:"theorem_respected"`
	// Broadcast carries the broadcast-constant bound for broadcast
	// certificates and is nil for gossip ones.
	Broadcast *BroadcastBound `json:"broadcast,omitempty"`
}

// Report converts a gossip certificate to the classic Analyze report; the
// fields coincide by construction (the differential tests pin this).
func (c *Certificate) Report() *Report {
	return &Report{
		Network:          c.Network,
		Mode:             c.Mode,
		Period:           c.Period,
		Measured:         c.Measured,
		LowerBound:       c.LowerBound,
		DelayVerts:       c.DelayVerts,
		DelayArcs:        c.DelayArcs,
		NormAtRoot:       c.NormAtRoot,
		NormCap:          c.NormCap,
		TheoremRespected: c.TheoremRespected,
	}
}

// String renders the certificate.
func (c *Certificate) String() string {
	sys := "non-systolic"
	if c.Period > 0 {
		sys = fmt.Sprintf("%d-systolic", c.Period)
	}
	if c.Broadcast != nil {
		state := "complete"
		if !c.Complete {
			state = fmt.Sprintf("truncated at budget %d", c.Budget)
		}
		return fmt.Sprintf("%s: broadcast from %d in %d rounds (%s) ≥ certified bound %d (c(d)=%.4f asymptotic, applicable %v)",
			c.Network, c.Broadcast.Source, c.Measured, state, c.Broadcast.CBound, c.Broadcast.C, c.Broadcast.Applicable)
	}
	state := "complete"
	if !c.Complete {
		state = fmt.Sprintf("truncated at budget %d — theorem checks inapplicable", c.Budget)
	}
	return fmt.Sprintf("%s [%s, %s]: measured %d rounds (%s); lower bound %v; delay digraph %d verts / %d arcs; ‖M(λ₀)‖ = %.4f ≤ %.1f; Theorem 4.1 respected: %v",
		c.Network, c.Mode, sys, c.Measured, state, c.LowerBound, c.DelayVerts, c.DelayArcs, c.NormAtRoot, c.NormCap, c.TheoremRespected)
}

// Certify validates p on the network, simulates it (within the
// WithRoundBudget cap), and certifies the run against the paper's
// lower-bound machinery. Unlike Analyze it does not fail on a
// budget-truncated run: the certificate comes back with Complete false and
// the theorem verdicts marked inapplicable. Pass WithDelayPlan to reuse a
// compiled delay lowering across calls; serving layers combine it with
// NewEngineFromProgram so a repeated certification rebuilds nothing.
func Certify(ctx context.Context, net *Network, p *Protocol, opts ...Option) (*Certificate, error) {
	sess, err := NewEngine(net, p, opts...)
	if err != nil {
		return nil, fmt.Errorf("systolic: certify %s: %w", net.Name, err)
	}
	defer sess.Close()
	return sess.Certify(ctx)
}

// CertifyBroadcast builds the BFS-tree broadcast schedule from source,
// simulates it, and certifies the measurement against the broadcasting
// lower bound. Budget-truncated runs yield Complete false with the bound
// marked inapplicable.
//
// On an implicit network no BFS tree can be compiled, so certification
// streams single-source flooding through the generator kernel instead:
// under flooding the measured completion time is exactly the source's
// directed eccentricity, which is simultaneously the certificate's
// eccentricity floor — the certificate reports Mode "flooding" and holds
// by construction on complete runs.
func CertifyBroadcast(ctx context.Context, net *Network, source int, opts ...Option) (*Certificate, error) {
	if net.Implicit() {
		return certifyBroadcastImplicit(ctx, net, source, opts...)
	}
	sess, err := NewBroadcastEngine(net, source, opts...)
	if err != nil {
		return nil, fmt.Errorf("systolic: certify broadcast on %s: %w", net.Name, err)
	}
	defer sess.Close()
	return sess.Certify(ctx)
}

// certifyBroadcastImplicit certifies broadcast from source on an implicit
// network by streaming single-source flooding (vertex-range sharded across
// WithWorkers when the network clears the shard threshold).
func certifyBroadcastImplicit(ctx context.Context, net *Network, source int, opts ...Option) (*Certificate, error) {
	cfg := newConfig(opts)
	if source < 0 || source >= net.N() {
		return nil, fmt.Errorf("systolic: certify broadcast on %s: %w: source %d outside [0, %d)",
			net.Name, ErrBadParam, source, net.N())
	}
	measured, complete, err := floodEccentricityGen(ctx, net, source, cfg)
	if err != nil {
		if errors.Is(err, ErrUnreachable) {
			return nil, err
		}
		return nil, fmt.Errorf("systolic: certify broadcast on %s: %w", net.Name, err)
	}
	// Flooding's completion time is the source eccentricity; on truncated
	// runs no eccentricity is known and the floor stays at the
	// information-theoretic part.
	ecc := 0
	if complete {
		ecc = measured
	}
	c, lb := broadcastBoundEcc(net, ecc)
	return &Certificate{
		Network:  net.Name,
		Mode:     "flooding",
		Complete: complete,
		Measured: measured,
		Budget:   cfg.budget,
		Broadcast: &BroadcastBound{
			Source:     source,
			C:          c,
			CBound:     lb,
			Applicable: complete,
			Respected:  complete && measured >= lb,
		},
	}, nil
}

// floodEccentricityGen runs single-source generator flooding to completion,
// stall, or the round budget: (rounds, true, nil) on completion — rounds is
// the source's directed eccentricity — (budget, false, nil) on truncation,
// and ErrUnreachable on a stalled frontier.
func floodEccentricityGen(ctx context.Context, net *Network, source int, cfg config) (int, bool, error) {
	n := net.N()
	if n == 1 {
		return 0, true, nil
	}
	var step packedStep
	if cfg.workers > 1 && n >= cfg.shardThreshold {
		step = shardedGenStep(net.Gen, n, cfg.workers)
	} else {
		fg := graph.NewFloodGen(net.Gen)
		step = func(pf *gossip.PackedFrontier) (uint64, uint64, int) { return pf.StepFloodGen(fg) }
	}
	pf := gossip.NewPackedFrontier(n)
	pf.Reset([]int{source})
	for r := 1; r <= cfg.budget; r++ {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		complete, changed, _ := step(pf)
		if complete != 0 {
			return r, true, nil
		}
		if changed == 0 {
			return 0, false, fmt.Errorf("%w: certify broadcast on %s from source %d (frontier stalled after %d rounds)",
				ErrUnreachable, net.Name, source, r-1)
		}
	}
	return cfg.budget, false, nil
}

// Certify runs the session to completion (or its budget) and certifies the
// run — the unified entry point both Analyze and AnalyzeBroadcast are
// rebased on. Gossip sessions produce gossip certificates, broadcast
// sessions broadcast ones.
func (s *Session) Certify(ctx context.Context) (*Certificate, error) {
	if s.broadcast {
		return s.certifyBroadcast(ctx, "certify broadcast on")
	}
	return s.certifyGossip(ctx, "certify", true)
}

// certifyGossip is the gossip certification body; op names the public entry
// point in wrapped errors so Analyze keeps its historical error strings.
// detailIncomplete selects whether a budget-truncated run still gets its
// prefix delay digraph and norm evaluated — Certify wants that detail,
// while Analyze rejects incomplete runs outright and must not pay for
// analysis it will discard.
func (s *Session) certifyGossip(ctx context.Context, op string, detailIncomplete bool) (*Certificate, error) {
	net, p := s.net, s.proto
	res, err := s.Run(ctx)
	complete := true
	if err != nil {
		if !errors.Is(err, ErrIncomplete) {
			return nil, fmt.Errorf("systolic: %s %s: %w", op, net.Name, err)
		}
		complete = false
	}
	cert := &Certificate{
		Network:  net.Name,
		Mode:     p.Mode.String(),
		Period:   p.Period,
		Complete: complete,
		Measured: res.Rounds,
		Budget:   s.budget,
	}
	if !complete && !detailIncomplete {
		return cert, nil
	}
	reqPeriod := p.Period
	if !p.Systolic() {
		reqPeriod = NonSystolic
	}
	cert.LowerBound = Evaluate(net, Request{Mode: p.Mode, Period: reqPeriod})

	dp := s.cfg.delayPlan
	if dp == nil || !dp.matches(p) {
		// The session's protocol was validated when the engine compiled it.
		dp, err = compileDelayPlanValidated(net, p)
		if err != nil {
			return nil, fmt.Errorf("systolic: %s %s: %w", op, net.Name, err)
		}
	}
	inst, err := dp.plan.Instance(res.Rounds)
	if err != nil {
		return nil, fmt.Errorf("systolic: delay digraph: %w", err)
	}
	cert.DelayVerts, cert.DelayArcs = inst.Verts(), inst.Arcs()

	lambda := rootFor(p)
	cert.Lambda = lambda
	if lambda > 0 {
		cert.NormAtRoot = inst.Norm(lambda)
		cert.NormCap = 1
		cert.NormChecked = true
		cert.NormRespected = cert.NormAtRoot <= cert.NormCap+normCapTol
	}
	if complete {
		cert.TheoremApplicable = true
		if lambda > 0 {
			cert.TheoremRespected = theorem41Holds(net.N(), res.Rounds, lambda)
		} else {
			// s=2: no norm root; the mode-specific s=2 bound is already
			// folded into LowerBound.Rounds, so check the measurement
			// against it.
			cert.TheoremRespected = res.Rounds >= cert.LowerBound.Rounds
		}
	}
	return cert, nil
}

// certifyBroadcast certifies a broadcast session: the measured time against
// the c(d)·log₂(n) broadcasting bound. The delay machinery targets gossip
// protocols, so broadcast certificates carry no delay-digraph section.
func (s *Session) certifyBroadcast(ctx context.Context, op string) (*Certificate, error) {
	net := s.net
	res, err := s.Run(ctx)
	complete := true
	if err != nil {
		if !errors.Is(err, ErrIncomplete) {
			return nil, fmt.Errorf("systolic: %s %s: %w", op, net.Name, err)
		}
		complete = false
	}
	var c float64
	var lb int
	if net.Implicit() {
		// No BFS is possible on an implicit network, so the floor keeps its
		// run-independent information-theoretic part only. Protocol
		// dissemination time is not an eccentricity (rounds activate one
		// matching, not every arc), so — unlike flooding certificates — the
		// measurement cannot substitute for it.
		c, lb = broadcastBoundEcc(net, 0)
	} else {
		c, lb = broadcastBound(net, s.source)
	}
	return &Certificate{
		Network:  net.Name,
		Mode:     s.proto.Mode.String(),
		Period:   s.proto.Period,
		Complete: complete,
		Measured: res.Rounds,
		Budget:   s.budget,
		Broadcast: &BroadcastBound{
			Source:     s.source,
			C:          c,
			CBound:     lb,
			Applicable: complete,
			Respected:  complete && res.Rounds >= lb,
		},
	}, nil
}

// broadcastBound evaluates the broadcasting lower bound for a source: the
// asymptotic constant c(d) with its certified finite-n floor (⌈log₂ n⌉, the
// knowledge-doubling information bound) raised to the source eccentricity.
func broadcastBound(net *Network, source int) (c float64, lb int) {
	return broadcastBoundEcc(net, net.G.Eccentricity(source))
}

// broadcastBoundEcc is broadcastBound with the eccentricity supplied by the
// caller — the form implicit certification uses, where the flooding
// measurement itself is the eccentricity and no BFS is possible.
func broadcastBoundEcc(net *Network, ecc int) (c float64, lb int) {
	c = bounds.BroadcastConstant(net.DegreeParam)
	if !math.IsInf(c, 1) {
		lb = int(math.Ceil(c * net.LogN() * 0.999999))
		// c(d)·log n is asymptotic; the unconditional finite-n facts are
		// ⌈log₂ n⌉ and the source eccentricity. Use the weakest-safe floor:
		// ⌈log₂ n⌉ (every round at most doubles the informed set).
		if il := ceilLog2(net.N()); il < lb {
			lb = il // keep only the certified part
		}
	} else {
		lb = ceilLog2(net.N())
	}
	if ecc > lb {
		lb = ecc
	}
	return c, lb
}
