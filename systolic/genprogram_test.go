package systolic

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// implicitTwin re-wraps a materialized generator-backed network as its
// implicit form: same name, generator, schedule and degree parameter, no
// digraph. It is how the differential tests run the same instance through
// both program representations.
func implicitTwin(t *testing.T, net *Network) *Network {
	t.Helper()
	if net.Gen == nil || net.Sched == nil {
		t.Fatalf("%s carries no generator/schedule", net.Name)
	}
	imp := PlainImplicit(net.Name, net.Gen, net.DegreeParam)
	imp.Sched = net.Sched
	return imp
}

// genDiffCases enumerates every generator-eligible kind with the protocols
// that compile onto its schedule generator — directed (cycle2), half-duplex
// (periodic-half/interleaved) and full-duplex (periodic-full, hypercube).
func genDiffCases() []struct {
	name   string
	kind   string
	params []Param
	protos []string
} {
	periodic := []string{"periodic-full", "periodic-half", "periodic-interleaved"}
	return []struct {
		name   string
		kind   string
		params []Param
		protos []string
	}{
		{"cycle30", "cycle", []Param{Nodes(30)}, append([]string{"cycle2"}, periodic...)},
		{"hypercube5", "hypercube", []Param{Dimension(5)}, append([]string{"hypercube"}, periodic...)},
		{"torus4x6", "torus", []Param{Rows(4), Cols(6)}, periodic},
		{"ccc3", "ccc", []Param{Dimension(3)}, periodic},
		{"butterfly2x3", "butterfly", []Param{Degree(2), Diameter(3)}, periodic},
	}
}

// TestGenProtocolDifferential is the systolic-level differential pin: for
// every eligible kind × protocol, the generator-executed session on the
// implicit network and the CSR frontier twin on the materialized network
// must agree round for round — same fingerprint, same knowledge curve, same
// completion round, same report measurement — and their checkpoints must be
// interchangeable in both directions.
func TestGenProtocolDifferential(t *testing.T) {
	ctx := context.Background()
	for _, tc := range genDiffCases() {
		for _, proto := range tc.protos {
			t.Run(tc.name+"/"+proto, func(t *testing.T) {
				mat, err := New(tc.kind, tc.params...)
				if err != nil {
					t.Fatal(err)
				}
				if mat.Implicit() {
					t.Fatalf("%s built implicit; differential needs the materialized form", tc.name)
				}
				imp := implicitTwin(t, mat)
				p, err := NewProtocol(proto, imp, 4096)
				if err != nil {
					t.Fatal(err)
				}
				if p.Gen == nil {
					t.Fatalf("protocol %s on implicit %s is not generator-backed", proto, tc.kind)
				}
				gpr, err := CompileProtocol(imp, p)
				if err != nil {
					t.Fatal(err)
				}
				cpr, err := CompileProtocol(mat, p)
				if err != nil {
					t.Fatal(err)
				}
				if gpr.GenProgram() == nil || cpr.GenProgram() != nil {
					t.Fatalf("program selection: implicit gen=%v, materialized gen=%v",
						gpr.GenProgram() != nil, cpr.GenProgram() != nil)
				}
				if !gpr.Broadcast() || !cpr.Broadcast() {
					t.Fatal("generator-backed programs must be broadcast programs")
				}
				if gf, cf := gpr.Fingerprint(), cpr.Fingerprint(); gf != cf {
					t.Fatalf("fingerprints diverge: gen %s, csr %s", gf, cf)
				}
				n := mat.N()
				for _, src := range []int{0, n / 2, n - 1} {
					gs, err := NewEngineFromProgram(gpr, WithSource(src), WithRoundBudget(4096))
					if err != nil {
						t.Fatal(err)
					}
					cs, err := NewEngineFromProgram(cpr, WithSource(src), WithRoundBudget(4096))
					if err != nil {
						t.Fatal(err)
					}
					for !gs.Done() {
						if _, err := gs.Step(ctx, 1); err != nil {
							t.Fatal(err)
						}
						if _, err := cs.Step(ctx, 1); err != nil {
							t.Fatal(err)
						}
						if gs.Knowledge() != cs.Knowledge() || gs.Done() != cs.Done() {
							t.Fatalf("source %d round %d: gen knowledge %d done=%v, csr %d done=%v",
								src, gs.Rounds(), gs.Knowledge(), gs.Done(), cs.Knowledge(), cs.Done())
						}
					}
					if gs.Rounds() != cs.Rounds() {
						t.Fatalf("source %d: gen finished at %d, csr at %d", src, gs.Rounds(), cs.Rounds())
					}
				}
				// Reports: the measured time must coincide; the implicit bound
				// is the c(d)·log₂n floor (no BFS to refine it), so it can
				// only be ≤ the materialized eccentricity-aware bound.
				grep := mustBroadcastReport(t, gpr)
				crep := mustBroadcastReport(t, cpr)
				if grep.Measured != crep.Measured || grep.Source != crep.Source {
					t.Fatalf("reports diverge: gen %+v, csr %+v", grep, crep)
				}
				if grep.CBound > crep.CBound {
					t.Fatalf("implicit floor %d exceeds materialized bound %d", grep.CBound, crep.CBound)
				}
				// Checkpoints are interchangeable: a snapshot of either form
				// restores into the other and resumes to the same completion.
				checkpointInterchange(t, gpr, cpr, crep.Measured)
				checkpointInterchange(t, cpr, gpr, crep.Measured)
			})
		}
	}
}

func mustBroadcastReport(t *testing.T, pr *Program) *BroadcastReport {
	t.Helper()
	sess, err := NewEngineFromProgram(pr, WithRoundBudget(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rep, err := sess.AnalyzeBroadcast(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// checkpointInterchange runs `from` halfway, snapshots it, restores the
// snapshot into a fresh session on `to`, and checks the resumed run
// completes at the uninterrupted completion round.
func checkpointInterchange(t *testing.T, from, to *Program, complete int) {
	t.Helper()
	ctx := context.Background()
	a, err := NewEngineFromProgram(from, WithRoundBudget(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	half := complete / 2
	if _, err := a.Step(ctx, half); err != nil {
		t.Fatal(err)
	}
	ck := a.Snapshot()
	b, err := NewEngineFromProgram(to, WithRoundBudget(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Restore(ck); err != nil {
		t.Fatalf("restoring %s checkpoint: %v", ck.Mode, err)
	}
	if b.Rounds() != half || b.Knowledge() != a.Knowledge() {
		t.Fatalf("restored session at round %d knowledge %d, want %d/%d",
			b.Rounds(), b.Knowledge(), half, a.Knowledge())
	}
	res, err := b.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != complete {
		t.Fatalf("resumed run completed at %d, uninterrupted at %d", res.Rounds, complete)
	}
}

// TestGenProtocolMaterializedStaysExplicit pins the selection rule: on a
// materialized network the catalog still returns explicit rounds (gossip
// semantics preserved); the generator form appears only on implicit ones.
func TestGenProtocolMaterializedStaysExplicit(t *testing.T) {
	net, err := New("hypercube", Dimension(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("hypercube", net, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Gen != nil {
		t.Fatal("materialized network should get explicit rounds, not a generator")
	}
	if p.Len() == 0 {
		t.Fatal("explicit protocol has no rounds")
	}
}

// TestGenProtocolIneligibleImplicit pins the error contract: a protocol
// whose schedule is data-dependent keeps answering ErrImplicit on implicit
// networks, and the message names the eligible set.
func TestGenProtocolIneligibleImplicit(t *testing.T) {
	net, err := New("hypercube", Dimension(4))
	if err != nil {
		t.Fatal(err)
	}
	imp := implicitTwin(t, net)
	for _, proto := range []string{"greedy-half", "greedy-full", "zigzag"} {
		if _, err := NewProtocol(proto, imp, 100); !errors.Is(err, ErrImplicit) {
			t.Errorf("protocol %s on implicit: err=%v, want ErrImplicit", proto, err)
		}
	}
}

// TestGenSessionMemoryBudget pins WithMaxMemory accounting on the streaming
// path: the cap meters the frontier words the session does allocate.
func TestGenSessionMemoryBudget(t *testing.T) {
	net, err := New("hypercube", Dimension(10))
	if err != nil {
		t.Fatal(err)
	}
	imp := implicitTwin(t, net)
	p, err := NewProtocol("hypercube", imp, 100)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := CompileProtocol(imp, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineFromProgram(pr, WithMaxMemory(1024)); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("1 KiB cap: err=%v, want ErrMemoryBudget", err)
	}
	sess, err := NewEngineFromProgram(pr, WithMaxMemory(1<<20), WithRoundBudget(100))
	if err != nil {
		t.Fatalf("1 MiB cap: %v", err)
	}
	defer sess.Close()
	if res, err := sess.Run(context.Background()); err != nil || res.Rounds != 10 {
		t.Fatalf("run under cap: rounds=%d err=%v, want 10", res.Rounds, err)
	}
}

// TestGenSessionSourceValidation pins WithSource range checking on
// generator-backed sessions.
func TestGenSessionSourceValidation(t *testing.T) {
	net, err := New("cycle", Nodes(16))
	if err != nil {
		t.Fatal(err)
	}
	imp := implicitTwin(t, net)
	p, err := NewProtocol("cycle2", imp, 100)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := CompileProtocol(imp, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{-1, 16} {
		if _, err := NewEngineFromProgram(pr, WithSource(src)); !errors.Is(err, ErrBadParam) {
			t.Errorf("source %d: err=%v, want ErrBadParam", src, err)
		}
	}
}

// TestHypercubeD24GenAcceptance is the scale-tier acceptance point for
// generator-compiled protocols: the d=24 hypercube dimension-order
// broadcast (16.7M nodes, ~400M exchange arcs streamed, never stored)
// completes in exactly 24 rounds under a 512 MiB heap ceiling — two orders
// of magnitude under the ~6.4 GiB a CSR program would pack. Skipped under
// -short.
func TestHypercubeD24GenAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("scale acceptance test")
	}
	net, err := New("hypercube", Dimension(24))
	if err != nil {
		t.Fatal(err)
	}
	if !net.Implicit() {
		t.Fatal("hypercube d=24 should build implicit")
	}
	p, err := NewProtocol("hypercube", net, 24)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := CompileProtocol(net, p)
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const ceiling = 512 << 20
	sess, err := NewEngineFromProgram(pr, WithRoundBudget(24), WithMaxMemory(ceiling))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rep, err := sess.AnalyzeBroadcast(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if rep.Measured != 24 {
		t.Fatalf("dimension-order broadcast took %d rounds, want 24", rep.Measured)
	}
	if rep.CBound > rep.Measured {
		t.Fatalf("certified bound %d exceeds measurement %d", rep.CBound, rep.Measured)
	}
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > ceiling {
		t.Errorf("heap grew %d bytes during gen simulation, ceiling %d", grew, ceiling)
	}
	t.Logf("d=24 gen broadcast: %d rounds, bound %d, heap-growth %dB",
		rep.Measured, rep.CBound, int64(after.HeapAlloc)-int64(before.HeapAlloc))
}
