package systolic

import (
	"context"
	"fmt"

	"repro/internal/gossip"
	"repro/internal/protocols"
)

// DefaultShardThreshold is the vertex count at which a session with more
// than one worker shards Step across its pool (override with
// WithShardThreshold). Below it the per-round work is too small to pay for
// the barrier.
const DefaultShardThreshold = 2048

// Session is a resumable simulation of one protocol on one network. Unlike
// the one-shot Simulate/Analyze entry points (which are wrappers over it),
// a session can be stepped in arbitrary chunks, observed mid-flight,
// checkpointed to JSON, restored, and resumed — the engine the evaluation
// drives at production scale.
//
// A session is not safe for concurrent use; run one goroutine per session.
// Close releases the session's worker pool (if sharding is active); a
// closed session keeps working serially.
type Session struct {
	net   *Network
	proto *Protocol
	cfg   config

	broadcast bool
	source    int
	prog      *gossip.Program       // compiled schedule IR, shared by every backend
	grun      *gossip.GenRun        // generator-program scratch; non-nil streams rounds
	st        *gossip.State         // gossip backend
	fr        *gossip.FrontierState // broadcast backend (packed frontier)
	pool      *gossip.Pool

	budget   int
	target   int
	round    int
	done     bool
	frontier []int
}

// NewEngine validates p on the network, compiles it once into the shared
// schedule IR (see Program), and returns a session positioned at round
// zero, ready to Step or Run. The round budget, trace observer, worker
// count and shard threshold come from the options; with more than one
// worker and at least WithShardThreshold vertices the session shards every
// Step across a persistent pool (results are byte-identical to serial).
// Callers that already hold a compiled Program use NewEngineFromProgram
// and skip the validate+compile work entirely.
func NewEngine(net *Network, p *Protocol, opts ...Option) (*Session, error) {
	pr, err := CompileProtocol(net, p)
	if err != nil {
		return nil, err
	}
	return NewEngineFromProgram(pr, opts...)
}

// NewBroadcastEngine builds the BFS-tree broadcast schedule from source and
// returns a session that measures its dissemination on the packed frontier
// backend (one bit per vertex — broadcasts never pay the gossip state's
// n-words-per-vertex cost).
func NewBroadcastEngine(net *Network, source int, opts ...Option) (*Session, error) {
	if err := net.needG("broadcast engine on"); err != nil {
		return nil, err
	}
	cfg := newConfig(opts)
	n := net.G.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("%w: broadcast source %d outside [0, %d)", ErrBadParam, source, n)
	}
	p := protocols.BroadcastSchedule(net.G, source)
	if err := p.Validate(net.G); err != nil {
		return nil, err
	}
	// Broadcasts compile against the 1-item frontier shape: the packed
	// backend addresses vertices directly, one bit each.
	prog, err := gossip.Compile(p, n, 1)
	if err != nil {
		return nil, fmt.Errorf("systolic: compile broadcast on %s: %w", net.Name, err)
	}
	s := &Session{net: net, proto: p, prog: prog, cfg: cfg, broadcast: true, source: source}
	s.initBudget()
	s.fr = gossip.NewFrontierState(n, source)
	s.target = n
	s.done = s.complete()
	return s, nil
}

func (s *Session) initBudget() {
	s.budget = s.cfg.budget
	if !s.proto.Systolic() && s.proto.Len() < s.budget {
		s.budget = s.proto.Len()
	}
}

func (s *Session) complete() bool {
	if s.broadcast {
		return s.fr.Complete()
	}
	return s.st.GossipComplete()
}

// Network returns the network the session simulates on.
func (s *Session) Network() *Network { return s.net }

// Protocol returns the protocol the session executes.
func (s *Session) Protocol() *Protocol { return s.proto }

// Done reports whether dissemination has completed.
func (s *Session) Done() bool { return s.done }

// Rounds returns the number of rounds executed so far (including restored
// rounds after a checkpoint Restore).
func (s *Session) Rounds() int { return s.round }

// Budget returns the effective round budget (WithRoundBudget capped by the
// length of a finite protocol).
func (s *Session) Budget() int { return s.budget }

// Knowledge returns the current total knowledge: the sum over processors of
// known items for gossip, the informed vertex count for broadcast. It is
// O(1) — the engine maintains it incrementally.
func (s *Session) Knowledge() int {
	if s.broadcast {
		return s.fr.InformedCount()
	}
	return s.st.TotalKnowledge()
}

// Target returns the knowledge count at which dissemination is complete
// (n² for gossip, n for broadcast).
func (s *Session) Target() int { return s.target }

// Frontier returns the per-round newly-informed counts — how many new
// (processor, item) pairs each executed round created (newly informed
// vertices for broadcast). The slice is a copy; its sum plus the initial
// knowledge equals Knowledge().
func (s *Session) Frontier() []int {
	return append([]int(nil), s.frontier...)
}

// Step executes at most k further rounds, stopping early when dissemination
// completes. It returns the number of rounds actually executed. Hitting the
// round budget before completion returns ErrIncomplete; cancelling the
// context stops between rounds with the context error. k ≤ 0 is a no-op.
// Step(k) in any chunking is equivalent to one Run.
func (s *Session) Step(ctx context.Context, k int) (int, error) {
	executed := 0
	for executed < k && !s.done {
		if err := ctx.Err(); err != nil {
			return executed, fmt.Errorf("systolic: session %s: %w", s.net.Name, err)
		}
		if s.round >= s.budget {
			return executed, fmt.Errorf("%w (budget %d)", ErrIncomplete, s.budget)
		}
		var gained int
		if s.broadcast {
			if s.grun != nil {
				gained = s.fr.StepGenProgram(s.grun, s.round)
			} else {
				gained = s.fr.StepProgram(s.prog, s.round)
			}
		} else {
			before := s.st.TotalKnowledge()
			s.st.StepProgram(s.prog, s.round)
			gained = s.st.TotalKnowledge() - before
		}
		s.round++
		executed++
		s.frontier = append(s.frontier, gained)
		if s.cfg.observer != nil {
			s.cfg.observer.Round(s.round, s.Knowledge(), s.target)
		}
		s.done = s.complete()
	}
	return executed, nil
}

// Run steps the session to completion (or the budget, yielding
// ErrIncomplete) and returns the cumulative result. Resuming a restored
// session counts its restored rounds in Result.Rounds.
func (s *Session) Run(ctx context.Context) (Result, error) {
	n := s.net.N()
	for !s.done {
		k := s.budget - s.round
		if k <= 0 {
			return Result{Rounds: s.round, N: n}, fmt.Errorf("%w (budget %d)", ErrIncomplete, s.budget)
		}
		if _, err := s.Step(ctx, k); err != nil {
			return Result{Rounds: s.round, N: n}, err
		}
	}
	return Result{Rounds: s.round, N: n}, nil
}

// Close releases the session's sharding pool, if any. The session remains
// usable afterwards, stepping serially. Close is idempotent.
func (s *Session) Close() {
	if s.pool != nil {
		s.st.UsePool(nil)
		s.pool.Close()
		s.pool = nil
	}
}
