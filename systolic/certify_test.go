// Differential and regression coverage for the certification pipeline:
// Certify must reproduce the pre-refactor Analyze report field by field
// (the reference is recomputed here through the classic delay.Build path),
// budget-truncated runs must yield well-defined prefix certificates with
// inapplicable theorem verdicts, and a shared DelayPlan must change nothing
// but the work performed.
package systolic

import (
	"context"
	"errors"
	"testing"

	"repro/internal/delay"
)

// referenceReport recomputes the pre-refactor Analyze result: simulate via
// the session, then the classic rebuild-per-call delay.Build + dg.Norm path
// of the old implementation, line for line.
func referenceReport(t *testing.T, net *Network, p *Protocol) *Report {
	t.Helper()
	sess, err := NewEngine(net, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{
		Network:  net.Name,
		Mode:     p.Mode.String(),
		Period:   p.Period,
		Measured: res.Rounds,
	}
	reqPeriod := p.Period
	if !p.Systolic() {
		reqPeriod = NonSystolic
	}
	rep.LowerBound = Evaluate(net, Request{Mode: p.Mode, Period: reqPeriod})
	dg, err := delay.Build(net.G, p, res.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	rep.DelayVerts = len(dg.Verts)
	rep.DelayArcs = len(dg.Arcs)
	lambda := rootFor(p)
	if lambda > 0 {
		rep.NormAtRoot = dg.Norm(lambda)
		rep.NormCap = 1
		rep.TheoremRespected = theorem41Holds(net.G.N(), res.Rounds, lambda)
	} else {
		rep.TheoremRespected = res.Rounds >= rep.LowerBound.Rounds
	}
	return rep
}

// TestCertifyDifferentialAllKinds pins Certify against the pre-refactor
// Analyze computation for every registered topology kind under a directed,
// a half-duplex and a full-duplex protocol (symmetric-only constructions
// are skipped on directed kinds, mirroring the execution differential).
// Field-by-field equality with the reference report also pins that the
// existing Report goldens stay valid.
func TestCertifyDifferentialAllKinds(t *testing.T) {
	protocolsByMode := []struct {
		protocol      string
		symmetricOnly bool
	}{
		{"round-robin", false},  // directed
		{"periodic-half", true}, // half-duplex
		{"periodic-full", true}, // full-duplex
	}
	ctx := context.Background()
	for _, kind := range Kinds() {
		params, ok := smallParams[kind]
		if !ok {
			t.Errorf("registered kind %q has no certification coverage — add it to smallParams", kind)
			continue
		}
		for _, mp := range protocolsByMode {
			t.Run(kind+"/"+mp.protocol, func(t *testing.T) {
				net, err := New(kind, params...)
				if err != nil {
					t.Fatalf("building %s: %v", kind, err)
				}
				if mp.symmetricOnly && !net.G.IsSymmetric() {
					t.Skip("symmetric-only protocol on a directed kind")
				}
				p, err := NewProtocol(mp.protocol, net, DefaultRoundBudget)
				if err != nil {
					t.Fatalf("building %s: %v", mp.protocol, err)
				}
				want := referenceReport(t, net, p)

				cert, err := Certify(ctx, net, p, WithWorkers(1))
				if err != nil {
					t.Fatal(err)
				}
				if !cert.Complete {
					t.Fatal("complete run certified as incomplete")
				}
				if !cert.TheoremApplicable {
					t.Error("complete run must have an applicable theorem verdict")
				}
				if cert.Network != want.Network || cert.Mode != want.Mode || cert.Period != want.Period {
					t.Errorf("identity (%s,%s,%d) != reference (%s,%s,%d)",
						cert.Network, cert.Mode, cert.Period, want.Network, want.Mode, want.Period)
				}
				if cert.Measured != want.Measured {
					t.Errorf("measured %d != reference %d", cert.Measured, want.Measured)
				}
				if cert.LowerBound != want.LowerBound {
					t.Errorf("lower bound %+v != reference %+v", cert.LowerBound, want.LowerBound)
				}
				if cert.DelayVerts != want.DelayVerts || cert.DelayArcs != want.DelayArcs {
					t.Errorf("delay digraph %d/%d != reference %d/%d",
						cert.DelayVerts, cert.DelayArcs, want.DelayVerts, want.DelayArcs)
				}
				if cert.NormAtRoot != want.NormAtRoot || cert.NormCap != want.NormCap {
					t.Errorf("norm %v ≤ %v != reference %v ≤ %v",
						cert.NormAtRoot, cert.NormCap, want.NormAtRoot, want.NormCap)
				}
				if cert.TheoremRespected != want.TheoremRespected {
					t.Errorf("theorem respected %v != reference %v", cert.TheoremRespected, want.TheoremRespected)
				}
				if cert.NormChecked && !cert.NormRespected {
					t.Errorf("‖M(λ₀)‖ = %v exceeds its cap %v", cert.NormAtRoot, cert.NormCap)
				}
				// The Report view and the rebased Analyze must coincide with
				// the reference exactly.
				if got := *cert.Report(); got != *want {
					t.Errorf("cert.Report() = %+v, reference %+v", got, want)
				}
				rep, err := Analyze(ctx, net, p, WithWorkers(1))
				if err != nil {
					t.Fatal(err)
				}
				if *rep != *want {
					t.Errorf("Analyze = %+v, reference %+v", rep, want)
				}
			})
		}
	}
}

// TestCertifyBudgetTruncated pins the behavior on budget-truncated runs
// (satellite regression): the delay digraph of the executed prefix is
// well-defined, the certificate marks the theorem check inapplicable rather
// than vacuously true, and Analyze keeps returning ErrIncomplete.
func TestCertifyBudgetTruncated(t *testing.T) {
	net, err := New("cycle", Nodes(16))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 3
	ctx := context.Background()

	cert, err := Certify(ctx, net, p, WithRoundBudget(budget), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Complete {
		t.Fatal("budget-truncated run certified as complete")
	}
	if cert.Measured != budget || cert.Budget != budget {
		t.Errorf("measured %d / budget %d, want %d rounds executed", cert.Measured, cert.Budget, budget)
	}
	if cert.TheoremApplicable || cert.TheoremRespected {
		t.Errorf("truncated run: theorem applicable=%v respected=%v, want false/false (not vacuously true)",
			cert.TheoremApplicable, cert.TheoremRespected)
	}
	// The executed prefix's delay digraph must match the classic
	// construction over exactly the executed rounds.
	dg, err := delay.Build(net.G, p, budget)
	if err != nil {
		t.Fatal(err)
	}
	if cert.DelayVerts != len(dg.Verts) || cert.DelayArcs != len(dg.Arcs) {
		t.Errorf("prefix delay digraph %d verts / %d arcs, reference %d / %d",
			cert.DelayVerts, cert.DelayArcs, len(dg.Verts), len(dg.Arcs))
	}
	if cert.DelayVerts == 0 {
		t.Error("prefix delay digraph is empty — the executed rounds must define it")
	}
	// The lower bound is a network property and must still be reported.
	if cert.LowerBound.Rounds == 0 && cert.LowerBound.Coefficient == 0 {
		t.Error("truncated certificate dropped the lower bound")
	}

	// Analyze's contract is unchanged: truncation is an error.
	if _, err := Analyze(ctx, net, p, WithRoundBudget(budget), WithWorkers(1)); !errors.Is(err, ErrIncomplete) {
		t.Errorf("Analyze on truncated run = %v, want ErrIncomplete", err)
	}
}

// TestCertifyWithDelayPlan pins that a shared compiled plan changes nothing
// about the certificate, that repeated certifications share one memoized
// instance, and that a mismatched plan is ignored instead of corrupting the
// result.
func TestCertifyWithDelayPlan(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := Certify(ctx, net, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := CompileProtocol(net, p)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := pr.DelayPlan()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sess, err := NewEngineFromProgram(pr, WithDelayPlan(dp), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		cert, err := sess.Certify(ctx)
		sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		if *cert.Report() != *base.Report() || cert.Complete != base.Complete {
			t.Fatalf("iteration %d: plan-backed certificate %+v != baseline %+v", i, cert, base)
		}
	}

	// A plan compiled for a different protocol must be ignored.
	other, err := NewProtocol("periodic-full", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := CompileDelayPlan(net, other)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(ctx, net, p, WithDelayPlan(wrong), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if *cert.Report() != *base.Report() {
		t.Errorf("mismatched plan corrupted the certificate: %+v != %+v", cert, base)
	}
}

// TestCertifyConcurrentSharedPlan exercises many sessions certifying
// through one Program + DelayPlan at once — the serving layer's shape —
// under the race detector: the plan's memoized instances and norm scratch
// must serialize correctly and every certificate must be identical.
func TestCertifyConcurrentSharedPlan(t *testing.T) {
	net, err := New("kautz", Degree(2), Diameter(3))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-full", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := CompileProtocol(net, p)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := pr.DelayPlan()
	if err != nil {
		t.Fatal(err)
	}
	base, err := Certify(context.Background(), net, p, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	certs := make([]*Certificate, goroutines)
	errs := make([]error, goroutines)
	done := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- g }()
			sess, err := NewEngineFromProgram(pr, WithDelayPlan(dp), WithWorkers(1))
			if err != nil {
				errs[g] = err
				return
			}
			defer sess.Close()
			certs[g], errs[g] = sess.Certify(context.Background())
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if *certs[g].Report() != *base.Report() {
			t.Fatalf("goroutine %d: certificate diverged: %+v != %+v", g, certs[g], base)
		}
	}
}

// TestCertifyBroadcast pins broadcast certificates against AnalyzeBroadcast
// and the truncation semantics of the broadcast bound.
func TestCertifyBroadcast(t *testing.T) {
	net, err := New("hypercube", Dimension(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := AnalyzeBroadcast(ctx, net, 3)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyBroadcast(ctx, net, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Broadcast == nil {
		t.Fatal("broadcast certificate without a broadcast section")
	}
	if !cert.Complete || !cert.Broadcast.Applicable || !cert.Broadcast.Respected {
		t.Errorf("complete broadcast: complete=%v applicable=%v respected=%v",
			cert.Complete, cert.Broadcast.Applicable, cert.Broadcast.Respected)
	}
	if cert.Network != rep.Network || cert.Measured != rep.Measured ||
		cert.Broadcast.Source != rep.Source || cert.Broadcast.CBound != rep.CBound ||
		cert.Broadcast.C != rep.C {
		t.Errorf("broadcast certificate %+v does not match report %+v", cert, rep)
	}
	if cert.DelayVerts != 0 || cert.DelayArcs != 0 || cert.NormChecked {
		t.Error("broadcast certificates carry no delay-digraph section")
	}

	trunc, err := CertifyBroadcast(ctx, net, 3, WithRoundBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if trunc.Complete || trunc.Broadcast.Applicable || trunc.Broadcast.Respected {
		t.Errorf("truncated broadcast: complete=%v applicable=%v respected=%v, want all false",
			trunc.Complete, trunc.Broadcast.Applicable, trunc.Broadcast.Respected)
	}
	if _, err := AnalyzeBroadcast(ctx, net, 3, WithRoundBudget(1)); !errors.Is(err, ErrIncomplete) {
		t.Errorf("AnalyzeBroadcast on truncated run = %v, want ErrIncomplete", err)
	}

	// Gossip/broadcast session mismatches keep their typed errors.
	p, err := NewProtocol("periodic-half", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.AnalyzeBroadcast(ctx); err == nil {
		t.Error("AnalyzeBroadcast on a gossip session must error")
	}
	gossipCert, err := sess.Certify(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gossipCert.Broadcast != nil {
		t.Error("gossip certificate with a broadcast section")
	}
}
