package systolic

import (
	"context"
	"testing"
)

// TestScaleDeBruijn runs the full pipeline on DB(2,9) (512 vertices,
// ~1500 arcs): periodic protocol, simulation to completion, delay digraph
// with tens of thousands of activations, sparse norm at the root. Skipped
// under -short.
func TestScaleDeBruijn(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	net, err := New("debruijn", Degree(2), Diameter(9))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), net, p, WithRoundBudget(1000000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TheoremRespected || rep.Measured < rep.LowerBound.Rounds {
		t.Errorf("scale violation: %+v", rep)
	}
	if rep.NormAtRoot > 1+1e-8 {
		t.Errorf("norm at root %g > 1 at scale", rep.NormAtRoot)
	}
	// The measured time must scale like the coefficient predicts: within
	// [bound, 20·log n] for this expander-like topology.
	if f := float64(rep.Measured) / net.LogN(); f > 20 {
		t.Errorf("measured/log n = %g, out of the logarithmic regime", f)
	}
	t.Logf("DB(2,9): n=%d measured=%d bound=%d delayVerts=%d delayArcs=%d norm=%.4f",
		net.G.N(), rep.Measured, rep.LowerBound.Rounds, rep.DelayVerts, rep.DelayArcs, rep.NormAtRoot)
}

// TestScaleWrappedButterflyFullDuplex exercises the full-duplex pipeline on
// WBF(2,7) (896 vertices).
func TestScaleWrappedButterflyFullDuplex(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	net, err := New("wbf", Degree(2), Diameter(7))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-full", net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), net, p, WithRoundBudget(1000000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TheoremRespected || rep.Measured < rep.LowerBound.Rounds {
		t.Errorf("scale violation: %+v", rep)
	}
	t.Logf("WBF(2,7): n=%d measured=%d bound=%d", net.G.N(), rep.Measured, rep.LowerBound.Rounds)
}

// TestScaleGossipThroughput: the bitset simulator handles a 4096-vertex
// de Bruijn gossip within the test budget.
func TestScaleGossipThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	net, err := New("debruijn", Degree(2), Diameter(12))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(context.Background(), net, p, WithRoundBudget(1000000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 12 {
		t.Errorf("DB(2,12) gossip in %d rounds beats the information bound", res.Rounds)
	}
	t.Logf("DB(2,12): n=%d gossip in %d rounds", net.G.N(), res.Rounds)
}
