package systolic

import (
	"context"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/gossip"
)

// Report is the outcome of analyzing a concrete protocol on a network: the
// measured completion time, the delay-digraph statistics, and the paper's
// inequalities checked against the measurements. It is JSON-serializable;
// the golden tests pin its schema.
type Report struct {
	Network string `json:"network"`
	// Mode is the communication model name ("directed", "half-duplex",
	// "full-duplex").
	Mode string `json:"mode"`
	// Period is the systolic period of the protocol (0 for finite
	// non-systolic).
	Period int `json:"period"`
	// Measured is the gossip completion time in rounds.
	Measured int `json:"measured_rounds"`
	// LowerBound is the paper's bound for this network/mode/period.
	LowerBound Bound `json:"lower_bound"`
	// DelayVerts and DelayArcs are the sizes of the delay digraph built
	// over the executed rounds.
	DelayVerts int `json:"delay_verts"`
	DelayArcs  int `json:"delay_arcs"`
	// NormAtRoot is ‖M(λ₀)‖ at the root λ₀ of the general bound for the
	// protocol's period, and NormCap the Lemma 4.3 / 6.1 cap (= 1 at the
	// root by construction). NormAtRoot ≤ NormCap certifies the protocol
	// obeys the paper's structural inequality.
	NormAtRoot float64 `json:"norm_at_root"`
	NormCap    float64 `json:"norm_cap"`
	// TheoremRespected reports whether the measured time satisfies the
	// Theorem 4.1 inequality at λ₀ — it must always be true; a false value
	// would falsify the paper (or reveal an implementation bug).
	TheoremRespected bool `json:"theorem_respected"`
}

// Analyze validates p on the network, simulates it to completion (within
// the WithRoundBudget cap), builds the delay digraph of the executed
// prefix, computes the delay-matrix norm at the root of the protocol's own
// period bound, and checks Theorem 4.1 against the measurement. The context
// cancels the simulation between rounds. It is a convenience wrapper over
// NewEngine + Session.Analyze.
func Analyze(ctx context.Context, net *Network, p *Protocol, opts ...Option) (*Report, error) {
	sess, err := NewEngine(net, p, opts...)
	if err != nil {
		return nil, fmt.Errorf("systolic: analyze %s: %w", net.Name, err)
	}
	defer sess.Close()
	return sess.Analyze(ctx)
}

// Analyze runs the session to completion — resuming from wherever it is,
// restored rounds included — and builds the full report against the paper's
// bounds. It errors on broadcast sessions (use AnalyzeBroadcast). Since the
// certification refactor it is a view over Session.Certify: a
// budget-truncated run, which Certify reports as an inapplicable
// certificate, keeps surfacing here as ErrIncomplete.
func (s *Session) Analyze(ctx context.Context) (*Report, error) {
	if s.broadcast {
		return nil, fmt.Errorf("%w: analyze %s: broadcast sessions produce BroadcastReports", ErrWrongMode, s.net.Name)
	}
	cert, err := s.certifyGossip(ctx, "analyze", false)
	if err != nil {
		return nil, err
	}
	if !cert.Complete {
		return nil, fmt.Errorf("systolic: analyze %s: %w (budget %d)", s.net.Name, ErrIncomplete, s.budget)
	}
	return cert.Report(), nil
}

// rootFor returns the λ₀ at which the paper's norm cap for the protocol's
// period equals 1 (so ‖M(λ₀)‖ ≤ 1 by Lemma 4.3 / 6.1), or 0 when no such
// root applies (s = 2).
func rootFor(p *gossip.Protocol) float64 {
	if p.Systolic() && p.Period == 2 {
		return 0
	}
	if p.Mode == gossip.FullDuplex {
		if !p.Systolic() {
			_, l := bounds.GeneralFullDuplexInfinity()
			return l
		}
		_, l := bounds.GeneralFullDuplex(p.Period)
		return l
	}
	if !p.Systolic() {
		_, l := bounds.GeneralHalfDuplexInfinity()
		return l
	}
	_, l := bounds.GeneralHalfDuplex(p.Period)
	return l
}

func theorem41Holds(n, measured int, lambda float64) bool {
	return measured >= bounds.Theorem41LowerBound(n, lambda)
}

// String renders the report.
func (r *Report) String() string {
	sys := "non-systolic"
	if r.Period > 0 {
		sys = fmt.Sprintf("%d-systolic", r.Period)
	}
	return fmt.Sprintf("%s [%s, %s]: measured %d rounds; lower bound %v; delay digraph %d verts / %d arcs; ‖M(λ₀)‖ = %.4f ≤ %.1f; Theorem 4.1 respected: %v",
		r.Network, r.Mode, sys, r.Measured, r.LowerBound, r.DelayVerts, r.DelayArcs, r.NormAtRoot, r.NormCap, r.TheoremRespected)
}
