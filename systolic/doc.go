// Package systolic is the public API of the systolic-gossip reproduction
// ("Lower bounds on systolic gossip", Flammini & Pérennès, IPPS 1997).
//
// It exposes the paper's machinery through four pillars:
//
//   - A self-registering topology catalog. Every network family is a
//     Topology registered under a kind name and instantiated from named
//     parameters instead of ambiguous positional pairs:
//
//     net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(5))
//
//     Third-party families plug in via Register without touching this
//     package.
//
//   - A resumable simulation engine. NewEngine validates a protocol on a
//     network and returns a *Session that can be stepped in arbitrary
//     chunks, observed mid-flight, snapshotted to a JSON checkpoint,
//     restored and resumed deterministically:
//
//     sess, err := systolic.NewEngine(net, p)
//     for !sess.Done() {
//     _, err = sess.Step(ctx, 100)        // 100 rounds at a time
//     fmt.Println(sess.Rounds(), sess.Knowledge(), sess.Target())
//     }
//     ck := sess.Snapshot()               // JSON-serializable checkpoint
//
//     Underneath, NewEngine compiles the validated schedule once into a
//     flat program IR (precomputed word offsets, fused full-duplex
//     exchanges, snapshot elision, compile-time shard partitions) that
//     every execution layer shares; CompileProtocol exposes the compiled
//     Program so callers that run one schedule many times — the serving
//     layer's program cache — can build sessions with NewEngineFromProgram
//     and skip validate+compile entirely. Knowledge lives in a flat
//     double-buffered word array — a steady-state Step allocates nothing —
//     and sessions on networks with at least DefaultShardThreshold vertices
//     shard each round across a worker pool (WithWorkers), byte-identical
//     to serial. Session.Frontier reports the per-round newly-informed
//     counts; NewBroadcastEngine runs broadcasts on a packed
//     one-bit-per-vertex frontier backend.
//
//   - A unified certification pipeline. Certify (and Session.Certify) runs
//     a protocol and returns a typed Certificate: the measured rounds, the
//     delay-digraph statistics of the executed prefix, ‖M(λ₀)‖ against its
//     Lemma 4.3/6.1 cap, the evaluated lower bound, and the Theorem 4.1
//     verdict — with budget-truncated runs reported as Complete=false and
//     the verdicts marked inapplicable rather than vacuously true. The
//     delay analysis mirrors the execution compiler: CompileDelayPlan (or
//     Program.DelayPlan) lowers the per-round activation structure once
//     into a DelayPlan whose per-round-count instances are memoized and
//     whose M(λ) evaluations reuse preallocated CSR/scratch storage — zero
//     steady-state allocations in the λ loop. Hand a shared plan to
//     sessions with WithDelayPlan; paired with NewEngineFromProgram a
//     repeated certification rebuilds nothing.
//
//     cert, err := systolic.Certify(ctx, net, p)
//
//     Simulate, Analyze and AnalyzeBroadcast remain as option-based,
//     context-aware one-shot conveniences; Analyze and AnalyzeBroadcast
//     are thin views over the certificate (a truncated run surfaces as
//     ErrIncomplete there). All honour context cancellation and the
//     WithRoundBudget/WithTrace options:
//
//     rep, err := systolic.Analyze(ctx, net, p, systolic.WithRoundBudget(100000))
//
//     The returned Certificate, Report and Bound types are
//     JSON-serializable and shared by the CLIs, the benchmarks and the
//     golden tests.
//
//   - A parallel sweep engine. SweepStream fans a grid of (topology ×
//     protocol) evaluations across a worker pool (GOMAXPROCS workers by
//     default) and streams results as jobs complete; Sweep is its barrier
//     counterpart, returning results in deterministic job order so parallel
//     runs are byte-identical to serial ones.
//
// Lower bounds are evaluated with Evaluate (Corollary 4.4, Theorem 5.1 and
// the Section 6 full-duplex bounds, with the Lemma 3.1 separator parameters
// filled in automatically for the families the paper studies) and
// GeneralBound (the bare e(s) coefficients of Fig. 4).
//
// Serving layers cache analysis results under canonical request identities:
// RequestKey folds an operation, kind, the sorted named parameters, the
// protocol and the budget/source into a stable key (SweepKey chains per-job
// keys for grids), with the guarantee that equal keys produce identical
// reports. The repro/systolic/serve package (cmd/gossipd) builds its result
// cache and request deduplication on exactly this. AnalyzeBroadcastAll
// measures the flooding broadcast time — the source's directed
// eccentricity — from every source (or a WithSources subset) in one scan:
// flooding is source-independent, so the schedule lowers once and the
// bit-parallel kernel steps 64 sources per pass through it, one bit per
// (vertex, source) pair.
package systolic
