// Package systolic is the public API of the systolic-gossip reproduction
// ("Lower bounds on systolic gossip", Flammini & Pérennès, IPPS 1997).
//
// It exposes the paper's machinery through three pillars:
//
//   - A self-registering topology catalog. Every network family is a
//     Topology registered under a kind name and instantiated from named
//     parameters instead of ambiguous positional pairs:
//
//     net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(5))
//
//     Third-party families plug in via Register without touching this
//     package.
//
//   - Option-based, context-aware analysis entry points. Analyze validates
//     a protocol, simulates it to completion, builds its delay digraph and
//     checks the paper's inequalities; Simulate runs the dissemination
//     alone. Both honour context cancellation and accept functional
//     options (WithRoundBudget, WithTrace):
//
//     rep, err := systolic.Analyze(ctx, net, p, systolic.WithRoundBudget(100000))
//
//     The returned Report and Bound types are JSON-serializable and shared
//     by the CLIs, the benchmarks and the golden tests.
//
//   - A parallel Sweep engine. Sweep fans a grid of (topology × protocol)
//     evaluations across a worker pool (GOMAXPROCS workers by default) and
//     returns results in deterministic job order, so parallel runs are
//     byte-identical to serial ones.
//
// Lower bounds are evaluated with Evaluate (Corollary 4.4, Theorem 5.1 and
// the Section 6 full-duplex bounds, with the Lemma 3.1 separator parameters
// filled in automatically for the families the paper studies) and
// GeneralBound (the bare e(s) coefficients of Fig. 4).
package systolic
