package systolic_test

import (
	"context"
	"fmt"

	"repro/systolic"
)

// Evaluate the paper's best lower bound for a network: for WBF(2,4) at
// period 4, Theorem 5.1 beats the general bound.
func ExampleEvaluate() {
	net, _ := systolic.New("wbf", systolic.Degree(2), systolic.Diameter(4))
	b := systolic.Evaluate(net, systolic.Request{Mode: systolic.HalfDuplex, Period: 4})
	fmt.Printf("coefficient %.4f from the %s bound\n", b.Coefficient, b.Source)
	// Output:
	// coefficient 2.0219 from the separator bound
}

// Analyze a concrete protocol end to end: the optimal hypercube
// dimension-exchange meets the log₂(n) bound exactly.
func ExampleAnalyze() {
	net, _ := systolic.New("hypercube", systolic.Dimension(5))
	p, _ := systolic.NewProtocol("hypercube", net, 0)
	rep, _ := systolic.Analyze(context.Background(), net, p, systolic.WithRoundBudget(100))
	fmt.Printf("measured %d, certified bound %d, theorem respected: %v\n",
		rep.Measured, rep.LowerBound.Rounds, rep.TheoremRespected)
	// Output:
	// measured 5, certified bound 5, theorem respected: true
}

// Fan a parameter grid across a worker pool; results come back in job
// order, so output is deterministic.
func ExampleSweep() {
	jobs := []systolic.SweepJob{
		{Label: "DB(2,4)", Kind: "debruijn",
			Params:   []systolic.Param{systolic.Degree(2), systolic.Diameter(4)},
			Protocol: systolic.UseProtocol("periodic-half", 0)},
		{Label: "Q4", Kind: "hypercube",
			Params:   []systolic.Param{systolic.Dimension(4)},
			Protocol: systolic.UseProtocol("hypercube", 0)},
	}
	results, _ := systolic.Sweep(context.Background(), jobs)
	for _, r := range results {
		fmt.Printf("%s: measured %d >= bound %d\n", r.Label, r.Report.Measured, r.Report.LowerBound.Rounds)
	}
	// Output:
	// DB(2,4): measured 18 >= bound 4
	// Q4: measured 4 >= bound 4
}
