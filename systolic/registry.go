package systolic

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bounds"
	"repro/internal/topology"
)

// Topology is a registered network family: it knows its registry kind, the
// named parameters it requires, and how to build a concrete Network from
// them. Builders must validate their parameters and return ErrBadParam-
// wrapped errors instead of panicking.
type Topology interface {
	// Kind is the registry key, e.g. "debruijn".
	Kind() string
	// ParamNames lists the required named parameters in display order.
	ParamNames() []string
	// Build instantiates the family from named parameters.
	Build(p Params) (*Network, error)
}

// Builder is the registration payload for Register: the required parameter
// names plus the build function. It is the functional counterpart of the
// Topology interface (Register adapts it).
type Builder struct {
	// Params lists the required parameter names in display order.
	Params []string
	// Build instantiates the topology from named parameters.
	Build func(p Params) (*Network, error)
}

type registered struct {
	kind string
	b    Builder
}

func (r registered) Kind() string         { return r.kind }
func (r registered) ParamNames() []string { return append([]string(nil), r.b.Params...) }
func (r registered) Build(p Params) (*Network, error) {
	return r.b.Build(p)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]registered{}
)

// Register adds a topology builder under a kind name (case-insensitive).
// It panics on an empty name, a nil build function, or a duplicate
// registration — registration happens at init time, and a collision is a
// programming error that must not be silently resolved by load order.
//
//gossip:allowpanic init-time registration collisions are programming errors that must not be resolved by load order
func Register(name string, b Builder) {
	kind := strings.ToLower(strings.TrimSpace(name))
	if kind == "" {
		panic("systolic: Register with empty topology name")
	}
	if b.Build == nil {
		panic(fmt.Sprintf("systolic: Register(%q) with nil build function", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("systolic: Register(%q) called twice", kind))
	}
	registry[kind] = registered{kind: kind, b: b}
}

// unregister removes a kind from the registry. It exists for tests that
// exercise Register itself: the registry is global, and a test-registered
// kind left behind would leak into every Kinds()-driven differential
// (go test -shuffle=on catches exactly that).
func unregister(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, strings.ToLower(strings.TrimSpace(name)))
}

// Lookup returns the registered topology for a kind, or false.
func Lookup(kind string) (Topology, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	t, ok := registry[strings.ToLower(kind)]
	return t, ok
}

// Kinds lists the registered topology kinds in sorted order.
func Kinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	ks := make([]string, 0, len(registry))
	for k := range registry {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// New builds a named network from named parameters:
//
//	net, err := systolic.New("debruijn", systolic.Degree(2), systolic.Diameter(5))
//
// An unknown kind yields ErrUnknownTopology (the message lists the accepted
// kinds); a missing or out-of-range parameter yields ErrBadParam.
func New(kind string, params ...Param) (*Network, error) {
	t, ok := Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("%w %q (accepted: %s)", ErrUnknownTopology, kind, strings.Join(Kinds(), ", "))
	}
	return t.Build(MakeParams(params...))
}

// The built-in catalog: every family the reproduction studies, with the
// explicit parameter validation that replaced the old panic-recover
// boundary.
func init() {
	Register("path", Builder{Params: []string{ParamNodes}, Build: func(p Params) (*Network, error) {
		n, err := p.atLeast("path", ParamNodes, 1)
		if err != nil {
			return nil, err
		}
		if err := checkSize("path", 1, 0, n); err != nil {
			return nil, err
		}
		return Plain("path", topology.Path(n)), nil
	}})
	Register("cycle", Builder{Params: []string{ParamNodes}, Build: func(p Params) (*Network, error) {
		n, err := p.atLeast("cycle", ParamNodes, 3)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("cycle", 1, 0, n); err != nil {
			return nil, err
		}
		gen := topology.NewCycleGen(n)
		sched := topology.NewSchedule(topology.NewCycleClasses(n))
		if n > materializeThreshold {
			net := PlainImplicit("cycle", gen, 1)
			net.Sched = sched
			return net, nil
		}
		net := Plain("cycle", topology.Cycle(n))
		net.Gen = gen
		net.Sched = sched
		return net, nil
	}})
	Register("complete", Builder{Params: []string{ParamNodes}, Build: func(p Params) (*Network, error) {
		n, err := p.atLeast("complete", ParamNodes, 1)
		if err != nil {
			return nil, err
		}
		// K_n materializes ~n² arcs and has no generator form worth
		// streaming (every round informs everyone anyway), so the cap is
		// much tighter than the vertex-count ceiling: n=8192 would already
		// be a ~67M-arc, gigabyte-scale build.
		if n > maxCompleteVertices {
			return nil, fmt.Errorf("%w: complete instance too large (> %d vertices; K_n materializes n² arcs)", ErrBadParam, maxCompleteVertices)
		}
		return Plain("complete", topology.Complete(n)), nil
	}})
	Register("hypercube", Builder{Params: []string{ParamDimension}, Build: func(p Params) (*Network, error) {
		D, err := p.atLeast("hypercube", ParamDimension, 1)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("hypercube", 2, D, 1); err != nil {
			return nil, err
		}
		gen := topology.NewHypercubeGen(D)
		sched := topology.NewSchedule(topology.NewHypercubeClasses(D))
		if sizeOf(2, D, 1) > materializeThreshold {
			net := PlainImplicit("hypercube", gen, max(D-1, 1))
			net.Sched = sched
			return net, nil
		}
		net := Plain("hypercube", topology.Hypercube(D))
		net.Gen = gen
		net.Sched = sched
		return net, nil
	}})
	Register("grid", Builder{Params: []string{ParamRows, ParamCols}, Build: func(p Params) (*Network, error) {
		a, err := p.atLeast("grid", ParamRows, 1)
		if err != nil {
			return nil, err
		}
		b, err := p.atLeast("grid", ParamCols, 1)
		if err != nil {
			return nil, err
		}
		if err := checkSize("grid", b, 1, a); err != nil {
			return nil, err
		}
		return Plain("grid", topology.Grid(a, b)), nil
	}})
	Register("torus", Builder{Params: []string{ParamRows, ParamCols}, Build: func(p Params) (*Network, error) {
		a, err := p.atLeast("torus", ParamRows, 3)
		if err != nil {
			return nil, err
		}
		b, err := p.atLeast("torus", ParamCols, 3)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("torus", b, 1, a); err != nil {
			return nil, err
		}
		gen := topology.NewTorusGen(a, b)
		sched := topology.NewSchedule(topology.NewTorusClasses(a, b))
		if a*b > materializeThreshold {
			net := PlainImplicit("torus", gen, 3)
			net.Sched = sched
			return net, nil
		}
		net := Plain("torus", topology.Torus(a, b))
		net.Gen = gen
		net.Sched = sched
		return net, nil
	}})
	Register("tree", Builder{Params: []string{ParamDegree, ParamDepth}, Build: func(p Params) (*Network, error) {
		d, err := p.atLeast("tree", ParamDegree, 1)
		if err != nil {
			return nil, err
		}
		depth, err := p.atLeast("tree", ParamDepth, 0)
		if err != nil {
			return nil, err
		}
		if err := checkSize("tree", d, depth, 2); err != nil {
			return nil, err
		}
		return Plain("tree", topology.CompleteKAryTree(d, depth)), nil
	}})
	Register("shuffle-exchange", Builder{Params: []string{ParamDimension}, Build: func(p Params) (*Network, error) {
		D, err := p.atLeast("shuffle-exchange", ParamDimension, 2)
		if err != nil {
			return nil, err
		}
		if err := checkSize("shuffle-exchange", 2, D, 1); err != nil {
			return nil, err
		}
		return Plain("shuffle-exchange", topology.ShuffleExchange(D)), nil
	}})
	Register("ccc", Builder{Params: []string{ParamDimension}, Build: func(p Params) (*Network, error) {
		D, err := p.atLeast("ccc", ParamDimension, 3)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("ccc", 2, D, D); err != nil {
			return nil, err
		}
		gen := topology.NewCCCGen(D)
		sched := topology.NewSchedule(topology.NewCCCClasses(D))
		if sizeOf(2, D, D) > materializeThreshold {
			net := PlainImplicit("ccc", gen, 2)
			net.Sched = sched
			return net, nil
		}
		net := Plain("ccc", topology.CCC(D))
		net.Gen = gen
		net.Sched = sched
		return net, nil
	}})
	Register("butterfly", Builder{Params: []string{ParamDegree, ParamDiameter}, Build: func(p Params) (*Network, error) {
		d, D, err := degreeDiameter(p, "butterfly", 2, 1)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("butterfly", d, D, D+1); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("BF(%d,%d)", d, D)
		gen := topology.NewButterflyGen(d, D)
		sched := topology.NewSchedule(topology.NewButterflyClasses(d, D))
		if sizeOf(d, D, D+1) > materializeThreshold {
			net := ClassifiedImplicit(name, gen, bounds.BF, d)
			net.Sched = sched
			return net, nil
		}
		bf := topology.NewButterfly(d, D)
		net := Classified(name, bf.G, bounds.BF, d)
		net.Gen = gen
		net.Sched = sched
		return net, nil
	}})
	Register("wbf", Builder{Params: []string{ParamDegree, ParamDiameter}, Build: func(p Params) (*Network, error) {
		d, D, err := degreeDiameter(p, "wbf", 2, 2)
		if err != nil {
			return nil, err
		}
		if err := checkSize("wbf", d, D, D); err != nil {
			return nil, err
		}
		w := topology.NewWrappedButterfly(d, D)
		return Classified(fmt.Sprintf("WBF(%d,%d)", d, D), w.G, bounds.WBF, d), nil
	}})
	Register("wbf-digraph", Builder{Params: []string{ParamDegree, ParamDiameter}, Build: func(p Params) (*Network, error) {
		d, D, err := degreeDiameter(p, "wbf-digraph", 2, 2)
		if err != nil {
			return nil, err
		}
		if err := checkSize("wbf-digraph", d, D, D); err != nil {
			return nil, err
		}
		w := topology.NewWrappedButterflyDigraph(d, D)
		return Classified(fmt.Sprintf("WBF->(%d,%d)", d, D), w.G, bounds.WBFDirected, d), nil
	}})
	Register("debruijn", Builder{Params: []string{ParamDegree, ParamDiameter}, Build: func(p Params) (*Network, error) {
		d, D, err := degreeDiameter(p, "debruijn", 2, 2)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("debruijn", d, D, 1); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("DB(%d,%d)", d, D)
		gen := topology.NewDeBruijnGen(d, D, false)
		if sizeOf(d, D, 1) > materializeThreshold {
			return ClassifiedImplicit(name, gen, bounds.DB, d), nil
		}
		db := topology.NewDeBruijn(d, D)
		net := Classified(name, db.G, bounds.DB, d)
		net.Gen = gen
		return net, nil
	}})
	Register("debruijn-digraph", Builder{Params: []string{ParamDegree, ParamDiameter}, Build: func(p Params) (*Network, error) {
		d, D, err := degreeDiameter(p, "debruijn-digraph", 2, 2)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("debruijn-digraph", d, D, 1); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("DB->(%d,%d)", d, D)
		gen := topology.NewDeBruijnGen(d, D, true)
		if sizeOf(d, D, 1) > materializeThreshold {
			return ClassifiedImplicit(name, gen, bounds.DB, d), nil
		}
		db := topology.NewDeBruijnDigraph(d, D)
		net := Classified(name, db.G, bounds.DB, d)
		net.Gen = gen
		return net, nil
	}})
	Register("kautz", Builder{Params: []string{ParamDegree, ParamDiameter}, Build: func(p Params) (*Network, error) {
		d, D, err := degreeDiameter(p, "kautz", 2, 2)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("kautz", d, D, d+1); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("K(%d,%d)", d, D)
		gen := topology.NewKautzGen(d, D, false)
		if sizeOf(d, D, d+1) > materializeThreshold {
			return ClassifiedImplicit(name, gen, bounds.Kautz, d), nil
		}
		k := topology.NewKautz(d, D)
		net := Classified(name, k.G, bounds.Kautz, d)
		net.Gen = gen
		return net, nil
	}})
	Register("kautz-digraph", Builder{Params: []string{ParamDegree, ParamDiameter}, Build: func(p Params) (*Network, error) {
		d, D, err := degreeDiameter(p, "kautz-digraph", 2, 2)
		if err != nil {
			return nil, err
		}
		if err := checkImplicitSize("kautz-digraph", d, D, d+1); err != nil {
			return nil, err
		}
		name := fmt.Sprintf("K->(%d,%d)", d, D)
		gen := topology.NewKautzGen(d, D, true)
		if sizeOf(d, D, d+1) > materializeThreshold {
			return ClassifiedImplicit(name, gen, bounds.Kautz, d), nil
		}
		k := topology.NewKautzDigraph(d, D)
		net := Classified(name, k.G, bounds.Kautz, d)
		net.Gen = gen
		return net, nil
	}})
}

func degreeDiameter(p Params, kind string, minD, minDiam int) (d, D int, err error) {
	if d, err = p.atLeast(kind, ParamDegree, minD); err != nil {
		return 0, 0, err
	}
	if D, err = p.atLeast(kind, ParamDiameter, minDiam); err != nil {
		return 0, 0, err
	}
	return d, D, nil
}
