package systolic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// integrationGrid is the (topology × protocol) matrix the integration sweep
// covers: every registered builtin with every protocol that applies to it.
func integrationGrid() []SweepJob {
	symmetric := []string{"periodic-half", "periodic-full", "periodic-interleaved", "greedy-half", "greedy-full"}
	directed := []string{"round-robin"}
	nets := []struct {
		kind      string
		params    []Param
		protocols []string
	}{
		{"path", []Param{Nodes(9)}, symmetric},
		{"cycle", []Param{Nodes(10)}, symmetric},
		{"complete", []Param{Nodes(8)}, symmetric},
		{"hypercube", []Param{Dimension(4)}, symmetric},
		{"grid", []Param{Rows(3), Cols(4)}, symmetric},
		{"torus", []Param{Rows(3), Cols(4)}, symmetric},
		{"tree", []Param{Degree(2), Depth(3)}, symmetric},
		{"shuffle-exchange", []Param{Dimension(4)}, symmetric},
		{"ccc", []Param{Dimension(3)}, symmetric},
		{"butterfly", []Param{Degree(2), Diameter(3)}, symmetric},
		{"wbf", []Param{Degree(2), Diameter(3)}, symmetric},
		{"debruijn", []Param{Degree(2), Diameter(4)}, symmetric},
		{"kautz", []Param{Degree(2), Diameter(3)}, symmetric},
		{"wbf-digraph", []Param{Degree(2), Diameter(3)}, directed},
		{"debruijn-digraph", []Param{Degree(2), Diameter(4)}, directed},
		{"kautz-digraph", []Param{Degree(2), Diameter(3)}, directed},
	}
	var jobs []SweepJob
	for _, nc := range nets {
		for _, proto := range nc.protocols {
			jobs = append(jobs, SweepJob{
				Label:    fmt.Sprintf("%s/%s", nc.kind, proto),
				Kind:     nc.kind,
				Params:   nc.params,
				Protocol: UseProtocol(proto, 100000),
			})
		}
	}
	return jobs
}

// TestIntegrationSweep fans the full analysis pipeline over the
// (topology × protocol) grid through the parallel Sweep engine and asserts,
// for every cell: the protocol validates, gossip completes, the measured
// time dominates the certified bound, Theorem 4.1 is respected, and the
// delay-matrix norm at the root stays ≤ 1 (Lemma 4.3 / 6.1).
func TestIntegrationSweep(t *testing.T) {
	jobs := integrationGrid()
	results, err := Sweep(context.Background(), jobs, WithRoundBudget(500000))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		res := res
		t.Run(jobs[i].Label, func(t *testing.T) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			rep := res.Report
			if rep.Measured <= 0 {
				t.Fatal("no rounds measured")
			}
			if rep.Measured < rep.LowerBound.Rounds {
				t.Errorf("measured %d < certified bound %d — the paper is falsified or the harness is wrong",
					rep.Measured, rep.LowerBound.Rounds)
			}
			if !rep.TheoremRespected {
				t.Error("Theorem 4.1 inequality violated")
			}
			if rep.NormAtRoot > rep.NormCap+1e-8 {
				t.Errorf("‖M(λ₀)‖ = %g exceeds the Lemma 4.3/6.1 cap", rep.NormAtRoot)
			}
		})
	}
}

// TestSweepDeterministicOrder: the engine must return results in job order
// with identical content no matter how many workers race over the grid.
func TestSweepDeterministicOrder(t *testing.T) {
	jobs := []SweepJob{
		{Label: "db4", Kind: "debruijn", Params: []Param{Degree(2), Diameter(4)}, Protocol: UseProtocol("periodic-half", 0)},
		{Label: "k3", Kind: "kautz", Params: []Param{Degree(2), Diameter(3)}, Protocol: UseProtocol("periodic-full", 0)},
		{Label: "q4", Kind: "hypercube", Params: []Param{Dimension(4)}, Protocol: UseProtocol("hypercube", 0)},
		{Label: "c12", Kind: "cycle", Params: []Param{Nodes(12)}, Protocol: UseProtocol("periodic-half", 0)},
		{Label: "wbf3", Kind: "wbf", Params: []Param{Degree(2), Diameter(3)}, Protocol: UseProtocol("periodic-half", 0)},
		{Label: "grid34", Kind: "grid", Params: []Param{Rows(3), Cols(4)}, Protocol: UseProtocol("greedy-half", 10000)},
	}
	serial, err := Sweep(context.Background(), jobs, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(context.Background(), jobs, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		s, p := serial[i], parallel[i]
		if s.Index != i || p.Index != i {
			t.Fatalf("result %d carries index %d/%d", i, s.Index, p.Index)
		}
		if s.Label != p.Label || s.Network != p.Network || s.N != p.N {
			t.Errorf("result %d metadata differs: %+v vs %+v", i, s, p)
		}
		if s.Err != nil || p.Err != nil {
			t.Fatalf("result %d errored: %v / %v", i, s.Err, p.Err)
		}
		if *s.Report != *p.Report {
			t.Errorf("result %d report differs between 1 and 8 workers:\n  serial:   %+v\n  parallel: %+v",
				i, *s.Report, *p.Report)
		}
	}
}

// TestSweepCancellationStopsMidGrid: cancelling the context mid-sweep must
// stop the engine, mark unstarted jobs with the context error, and surface
// the error from Sweep itself.
func TestSweepCancellationStopsMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	jobs := make([]SweepJob, 8)
	for i := range jobs {
		jobs[i] = SweepJob{
			Label:  fmt.Sprintf("job%d", i),
			Kind:   "debruijn",
			Params: []Param{Degree(2), Diameter(4)},
			Protocol: func(net *Network) (*Protocol, error) {
				// The first job to run pulls the plug on the whole grid.
				once.Do(cancel)
				return NewProtocol("periodic-half", net, 0)
			},
		}
	}
	results, err := Sweep(ctx, jobs, WithWorkers(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep error = %v, want context.Canceled", err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	var completed, cancelled int
	for _, res := range results {
		switch {
		case res.Err == nil && res.Report != nil:
			completed++
		case errors.Is(res.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("job %d: unexpected state report=%v err=%v", res.Index, res.Report, res.Err)
		}
	}
	if cancelled == 0 {
		t.Error("no job was cancelled — the sweep ran the whole grid")
	}
	if completed == len(jobs) {
		t.Error("every job completed despite cancellation")
	}
}

// TestSweepPerJobErrorsDoNotAbort: a bad cell is reported in its slot while
// the rest of the grid completes.
func TestSweepPerJobErrorsDoNotAbort(t *testing.T) {
	jobs := []SweepJob{
		{Label: "bad-kind", Kind: "moebius", Protocol: UseProtocol("periodic-half", 0)},
		{Label: "bad-param", Kind: "cycle", Params: []Param{Nodes(1)}, Protocol: UseProtocol("periodic-half", 0)},
		{Label: "bad-protocol", Kind: "cycle", Params: []Param{Nodes(8)}, Protocol: UseProtocol("warp-drive", 0)},
		{Label: "good", Kind: "cycle", Params: []Param{Nodes(8)}, Protocol: UseProtocol("periodic-half", 0)},
	}
	results, err := Sweep(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, ErrUnknownTopology) {
		t.Errorf("bad-kind err = %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrBadParam) {
		t.Errorf("bad-param err = %v", results[1].Err)
	}
	if !errors.Is(results[2].Err, ErrUnknownProtocol) {
		t.Errorf("bad-protocol err = %v", results[2].Err)
	}
	if results[3].Err != nil || results[3].Report == nil {
		t.Errorf("good cell failed: %+v", results[3])
	}
}

// TestBroadcastSweep checks the broadcast pipeline across topologies: the
// measured BFS-schedule broadcast dominates the certified bound and the
// eccentricity floor.
func TestBroadcastSweep(t *testing.T) {
	ctx := context.Background()
	for _, nc := range []struct {
		kind   string
		params []Param
	}{
		{"path", []Param{Nodes(17)}}, {"cycle", []Param{Nodes(12)}},
		{"hypercube", []Param{Dimension(5)}},
		{"butterfly", []Param{Degree(2), Diameter(3)}},
		{"wbf", []Param{Degree(2), Diameter(3)}},
		{"debruijn", []Param{Degree(2), Diameter(5)}},
		{"kautz", []Param{Degree(2), Diameter(4)}},
		{"tree", []Param{Degree(3), Depth(2)}},
		{"grid", []Param{Rows(4), Cols(5)}},
	} {
		t.Run(nc.kind, func(t *testing.T) {
			net, err := New(nc.kind, nc.params...)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := AnalyzeBroadcast(ctx, net, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Measured < rep.CBound {
				t.Errorf("broadcast %d rounds below certified bound %d", rep.Measured, rep.CBound)
			}
			if rep.Measured < net.G.Eccentricity(0) {
				t.Errorf("broadcast beat the eccentricity — impossible")
			}
		})
	}
}

// TestBroadcastHypercubeTight: BFS broadcast on Q_D from any corner is
// within a factor 2 of the D-round optimum, and the certified bound is D.
func TestBroadcastHypercubeTight(t *testing.T) {
	net, _ := New("hypercube", Dimension(5))
	rep, err := AnalyzeBroadcast(context.Background(), net, 0, WithRoundBudget(1000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CBound != 5 {
		t.Errorf("certified bound = %d, want 5", rep.CBound)
	}
	if rep.Measured > 10 {
		t.Errorf("BFS broadcast on Q5 took %d rounds", rep.Measured)
	}
}
