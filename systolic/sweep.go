package systolic

import (
	"context"
	"sync"
)

// SweepJob is one cell of a sweep grid: a topology instance (kind + named
// parameters) and the protocol to analyze on it.
type SweepJob struct {
	// Label tags the job in results and displays.
	Label string
	// Kind and Params instantiate the network through the registry.
	Kind   string
	Params []Param
	// Protocol builds the protocol to analyze on the instantiated network
	// (see UseProtocol for catalog protocols).
	Protocol ProtocolBuilder
}

// SweepResult is the outcome of one job. Exactly one of Report or Err is
// meaningful; Err is context.Canceled (or the parent error) for jobs the
// sweep never started.
type SweepResult struct {
	// Index is the job's position in the input grid; Sweep returns results
	// in input order, so results[i].Index == i always holds. SweepStream
	// emits in completion order — reorder by Index if needed.
	Index int `json:"index"`
	// Label echoes the job label.
	Label string `json:"label"`
	// Network names the instantiated network; N is its vertex count.
	Network string `json:"network,omitempty"`
	N       int    `json:"n,omitempty"`
	// Report is the analysis outcome for a successful job.
	Report *Report `json:"report,omitempty"`
	// Err holds the job's failure, if any.
	Err error `json:"-"`
}

// SweepStream fans the job grid across a worker pool (GOMAXPROCS workers by
// default, WithWorkers to override) and streams one result per job on the
// returned channel as jobs complete, closing it when the grid is done —
// the feed for live dashboards and JSON-lines progress. Emission order is
// completion order; every result carries its input Index, and each job's
// content is identical to what a serial run would produce. Per-job failures
// are recorded in SweepResult.Err and do not stop the sweep; cancelling the
// context stops the grid mid-flight and emits unstarted jobs with the
// context error. The channel is buffered to the grid size, so the stream
// finishes (and its goroutines exit) even if the consumer walks away.
func SweepStream(ctx context.Context, jobs []SweepJob, opts ...Option) <-chan SweepResult {
	cfg := newConfig(opts)
	out := make(chan SweepResult, len(jobs))
	workers := cfg.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res := SweepResult{Index: i, Label: jobs[i].Label}
				runSweepJob(ctx, jobs[i], &res, cfg)
				out <- res
			}
		}()
	}
	go func() {
		defer close(out)
	feed:
		for i := range jobs {
			select {
			case idx <- i:
			case <-ctx.Done():
				// Emit every job the feeder never handed out; workers finish
				// whatever they already started.
				for j := i; j < len(jobs); j++ {
					out <- SweepResult{Index: j, Label: jobs[j].Label, Err: ctx.Err()}
				}
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}()
	return out
}

// Sweep is the barrier counterpart of SweepStream: it drains the stream and
// returns one result per job, in job order — the output is deterministic
// and byte-identical to a serial run regardless of worker count or
// scheduling. Cancelling the context stops the grid mid-flight, marks
// unstarted jobs with the context error, and returns that error.
func Sweep(ctx context.Context, jobs []SweepJob, opts ...Option) ([]SweepResult, error) {
	results := make([]SweepResult, len(jobs))
	for res := range SweepStream(ctx, jobs, opts...) {
		results[res.Index] = res
	}
	return results, ctx.Err()
}

func runSweepJob(ctx context.Context, job SweepJob, res *SweepResult, cfg config) {
	net, err := New(job.Kind, job.Params...)
	if err != nil {
		res.Err = err
		return
	}
	res.Network = net.Name
	res.N = net.N()
	if job.Protocol == nil {
		res.Err = ErrUnknownProtocol
		return
	}
	p, err := job.Protocol(net)
	if err != nil {
		res.Err = err
		return
	}
	// Jobs already run concurrently; keep each session serial so a sweep
	// does not oversubscribe the host with nested stepping pools.
	rep, err := Analyze(ctx, net, p, WithRoundBudget(cfg.budget), WithTrace(cfg.observer), WithWorkers(1))
	if err != nil {
		res.Err = err
		return
	}
	res.Report = rep
}
