package systolic

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/gossip"
	"repro/internal/graph"
)

// BroadcastReport compares a measured broadcast time against the
// bounded-degree lower bound b(G) ≥ c(d)·log₂(n) of Liestman–Peters and
// Bermond et al. [22,2] that the paper's Section 6 ties to the full-duplex
// systolic bounds. It is JSON-serializable.
type BroadcastReport struct {
	Network  string `json:"network"`
	Source   int    `json:"source"`
	Measured int    `json:"measured_rounds"`
	// CBound is the certified information/degree lower bound:
	// max(⌈log₂ n⌉ floor of the c(d)·log₂ n bound, eccentricity of the
	// source).
	CBound int `json:"c_bound"`
	// C is the constant c(d) for the network's degree parameter.
	C float64 `json:"c"`
}

// AnalyzeBroadcast builds the BFS-tree broadcast schedule from source,
// simulates it (context-aware, within the WithRoundBudget cap), and
// evaluates the broadcasting lower bound. The measured time always
// dominates the bound (tests rely on this). It is a convenience wrapper
// over NewBroadcastEngine + Session.AnalyzeBroadcast; the session runs the
// packed frontier backend, one bit per vertex.
func AnalyzeBroadcast(ctx context.Context, net *Network, source int, opts ...Option) (*BroadcastReport, error) {
	sess, err := NewBroadcastEngine(net, source, opts...)
	if err != nil {
		return nil, fmt.Errorf("systolic: broadcast on %s: %w", net.Name, err)
	}
	defer sess.Close()
	return sess.AnalyzeBroadcast(ctx)
}

// AnalyzeBroadcast runs the broadcast session to completion (resuming from
// wherever it is) and evaluates the broadcasting lower bound. It errors on
// gossip sessions (use Analyze). Since the certification refactor it is a
// view over Session.Certify: a budget-truncated run, which Certify reports
// as an inapplicable certificate, keeps surfacing here as ErrIncomplete.
func (s *Session) AnalyzeBroadcast(ctx context.Context) (*BroadcastReport, error) {
	if !s.broadcast {
		return nil, fmt.Errorf("%w: broadcast on %s: gossip sessions produce Reports", ErrWrongMode, s.net.Name)
	}
	cert, err := s.certifyBroadcast(ctx, "broadcast on")
	if err != nil {
		return nil, err
	}
	if !cert.Complete {
		return nil, fmt.Errorf("systolic: broadcast on %s: %w (budget %d)", s.net.Name, ErrIncomplete, s.budget)
	}
	return &BroadcastReport{
		Network:  cert.Network,
		Source:   cert.Broadcast.Source,
		Measured: cert.Measured,
		CBound:   cert.Broadcast.CBound,
		C:        cert.Broadcast.C,
	}, nil
}

// String renders the report.
func (r *BroadcastReport) String() string {
	return fmt.Sprintf("%s: broadcast from %d in %d rounds ≥ certified bound %d (c(d)=%.4f asymptotic)",
		r.Network, r.Source, r.Measured, r.CBound, r.C)
}

// RoundsBucket is one bucket of the per-source rounds histogram: Count
// sources complete in exactly Rounds rounds.
type RoundsBucket struct {
	Rounds int `json:"rounds"`
	Count  int `json:"count"`
}

// BroadcastAllReport is the outcome of measuring the flooding broadcast
// time from a set of sources (every vertex unless WithSources restricts
// the scan): the per-source round counts plus the extremes and summary
// statistics. Under flooding — every informed vertex informs all its
// out-neighbors each round, the schedule the packed 64-source kernel steps
// — the time from source v is exactly v's directed eccentricity, so
// max_rounds over all sources is the network's flooding broadcast time
// b(G) (the diameter), and the statistics are the network's eccentricity
// profile. It is JSON-serializable.
type BroadcastAllReport struct {
	Network string `json:"network"`
	// Sources lists the scanned sources when the scan was restricted with
	// WithSources; nil (omitted) means every vertex was scanned and
	// Rounds[v] belongs to source v.
	Sources []int `json:"sources,omitempty"`
	// Rounds[i] is the measured broadcast time from the i-th scanned
	// source (vertex i on a full scan, Sources[i] on a subset scan).
	Rounds []int `json:"rounds_by_source"`
	// Worst and WorstSource locate b(G) = max over the scanned sources;
	// Best and BestSource the cheapest source. The source fields hold
	// vertex ids, also on subset scans.
	Worst       int `json:"worst_rounds"`
	WorstSource int `json:"worst_source"`
	Best        int `json:"best_rounds"`
	BestSource  int `json:"best_source"`
	// MeanRounds and Histogram summarize the per-source eccentricity
	// profile: the mean broadcast time over the scanned sources and the
	// count of sources per distinct round value, ascending.
	MeanRounds float64        `json:"mean_rounds"`
	Histogram  []RoundsBucket `json:"rounds_histogram"`
}

// AnalyzeBroadcastAll measures the flooding broadcast time from every
// source of the network (or the WithSources subset) in one scan.
//
// Flooding is source-independent — the same "every arc, every round"
// schedule serves all sources — so it lowers once (graph.LowerFlood) into
// a destination-major CSR, and the scan packs up to 64 sources into the 64
// bits of each knowledge word and steps them simultaneously through the
// compiled schedule (gossip.PackedFrontier): ⌈sources/64⌉ passes replace
// the per-source loop, batches run in parallel across WithWorkers workers,
// and per-bit completion tracking recovers every source's exact round
// count. WithScalarScan forces the scalar per-source reference kernel,
// which produces byte-identical reports and errors.
//
// Note this deliberately measures a different schedule than the
// single-source AnalyzeBroadcast, which builds a per-source BFS-tree
// whispering schedule (one call per informed vertex per round): the
// whispering time upper-bounds b(G, v), while the flooding time here is
// exactly the eccentricity floor the Section 6 certification compares
// against — and, unlike per-source tree schedules, it is shareable across
// lanes. A source that exceeds the WithRoundBudget cap aborts the scan
// with ErrIncomplete; a source that cannot reach every vertex aborts it
// with ErrUnreachable (raising the budget cannot help).
func AnalyzeBroadcastAll(ctx context.Context, net *Network, opts ...Option) (*BroadcastAllReport, error) {
	cfg := newConfig(opts)
	sources, explicit, err := scanSources(net, cfg.sources)
	if err != nil {
		return nil, err
	}
	rep := &BroadcastAllReport{Network: net.Name, Rounds: make([]int, len(sources))}
	if explicit {
		rep.Sources = sources
	}
	flood := net.G.LowerFlood()
	if cfg.scalarScan {
		err = scalarScan(ctx, net, flood, sources, rep.Rounds, cfg)
	} else {
		err = packedScan(ctx, net, flood, sources, rep.Rounds, cfg)
	}
	if err != nil {
		return nil, err
	}
	rep.summarize(sources)
	return rep, nil
}

// scanSources resolves the scan's source list: every vertex when sources
// is nil, otherwise a validated copy of the subset (in caller order).
func scanSources(net *Network, sources []int) (list []int, explicit bool, err error) {
	n := net.G.N()
	if sources == nil {
		list = make([]int, n)
		for v := range list {
			list[v] = v
		}
		return list, false, nil
	}
	if len(sources) == 0 {
		return nil, false, fmt.Errorf("systolic: broadcast-all on %s: %w: empty source list (omit WithSources to scan every vertex)",
			net.Name, ErrBadParam)
	}
	list = make([]int, len(sources))
	seen := make(map[int]bool, len(sources))
	for i, s := range sources {
		if s < 0 || s >= n {
			return nil, false, fmt.Errorf("systolic: broadcast-all on %s: %w: source %d outside [0, %d)",
				net.Name, ErrBadParam, s, n)
		}
		if seen[s] {
			return nil, false, fmt.Errorf("systolic: broadcast-all on %s: %w: duplicate source %d",
				net.Name, ErrBadParam, s)
		}
		seen[s] = true
		list[i] = s
	}
	return list, true, nil
}

// summarize fills the extremes and the eccentricity statistics from the
// measured rounds. Ties keep the earliest scanned source, so reports are
// independent of the kernel and worker count.
func (r *BroadcastAllReport) summarize(sources []int) {
	r.Best, r.Worst = r.Rounds[0], r.Rounds[0]
	r.BestSource, r.WorstSource = sources[0], sources[0]
	sum := 0
	for i, rounds := range r.Rounds {
		sum += rounds
		if rounds > r.Worst {
			r.Worst, r.WorstSource = rounds, sources[i]
		}
		if rounds < r.Best {
			r.Best, r.BestSource = rounds, sources[i]
		}
	}
	r.MeanRounds = float64(sum) / float64(len(r.Rounds))
	counts := make([]int, r.Worst+1)
	for _, rounds := range r.Rounds {
		counts[rounds]++
	}
	for rounds, count := range counts {
		if count > 0 {
			r.Histogram = append(r.Histogram, RoundsBucket{Rounds: rounds, Count: count})
		}
	}
}

// The scan error constructors are shared by both kernels, so the packed
// engine is pinned error-equal — not just errors.Is-equal — to the scalar
// reference.

func errScanCtx(net *Network, err error) error {
	return fmt.Errorf("systolic: broadcast-all on %s: %w", net.Name, err)
}

func errScanIncomplete(net *Network, source, budget int) error {
	return fmt.Errorf("systolic: broadcast-all on %s from %d: %w (budget %d)",
		net.Name, source, ErrIncomplete, budget)
}

func errScanUnreachable(net *Network, source, rounds int) error {
	// Raising the budget cannot help a stalled frontier, so this is
	// deliberately not ErrIncomplete.
	return fmt.Errorf("%w: broadcast-all on %s from source %d (frontier stalled after %d rounds)",
		ErrUnreachable, net.Name, source, rounds)
}

// scalarScan is the per-source reference kernel: one 1-bit frontier,
// reset in place per source, stepped over the flooding round. It defines
// the scan's semantics; the packed kernel must match it byte for byte.
func scalarScan(ctx context.Context, net *Network, flood *graph.FloodCSR, sources, rounds []int, cfg config) error {
	n := net.G.N()
	round := flood.Arcs()
	fr := gossip.NewFrontierState(n, 0)
	so, _ := cfg.observer.(ScanObserver)
	batchCols := 0 // informed columns of the current batch's finished lanes
	for i, src := range sources {
		if err := ctx.Err(); err != nil {
			return errScanCtx(net, err)
		}
		batch, lane := i/gossip.PackedLanes, i%gossip.PackedLanes
		if lane == 0 {
			batchCols = 0
		}
		lanes := len(sources) - batch*gossip.PackedLanes
		if lanes > gossip.PackedLanes {
			lanes = gossip.PackedLanes
		}
		fr.Reset(src)
		r := 0
		for !fr.Complete() {
			if r >= cfg.budget {
				return errScanIncomplete(net, src, cfg.budget)
			}
			if fr.Step(round) == 0 {
				return errScanUnreachable(net, src, r)
			}
			r++
			if cfg.observer != nil {
				// Untouched lanes contribute their informed source; the
				// column total matches the packed kernel's when the batch
				// finishes.
				cols := batchCols + fr.InformedCount() + (lanes - lane - 1)
				if so != nil {
					so.ScanRound(batch, r, cols, lanes*n)
				} else {
					cfg.observer.Round(r, cols, lanes*n)
				}
			}
		}
		rounds[i] = r
		batchCols += fr.InformedCount()
	}
	return nil
}

// packedScan is the bit-parallel kernel: ⌈sources/64⌉ batches, each
// stepped through the lowered flooding schedule with 64 sources per pass,
// sharded across the worker pool (batches are independent, so reports are
// byte-identical for every worker count).
func packedScan(ctx context.Context, net *Network, flood *graph.FloodCSR, sources, rounds []int, cfg config) error {
	batches := (len(sources) + gossip.PackedLanes - 1) / gossip.PackedLanes
	workers := cfg.workers
	if workers > batches {
		workers = batches
	}
	if workers <= 1 {
		pf := gossip.NewPackedFrontier(net.G.N())
		for b := 0; b < batches; b++ {
			if err := packedBatch(ctx, net, flood, pf, sources, rounds, b, cfg); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, batches)
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pf := gossip.NewPackedFrontier(net.G.N())
			for {
				b := int(next.Add(1)) - 1
				if b >= batches {
					return
				}
				// Batches are claimed in order, so skipping the tail after
				// a failure can never skip a batch before the failing one:
				// the error that surfaces is still the scan-order first.
				if failed.Load() != 0 {
					return
				}
				if errs[b] = packedBatch(ctx, net, flood, pf, sources, rounds, b, cfg); errs[b] != nil {
					failed.Store(1)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// packedBatch steps one batch of up to 64 sources to per-lane completion,
// stall, or the round budget, reproducing the scalar kernel's per-source
// outcomes exactly: a lane completing within the budget records its round,
// and the first failing lane (in scan order) aborts with the same error
// the scalar scan would have produced for that source.
func packedBatch(ctx context.Context, net *Network, flood *graph.FloodCSR, pf *gossip.PackedFrontier, sources, rounds []int, b int, cfg config) error {
	n := net.G.N()
	lo := b * gossip.PackedLanes
	hi := lo + gossip.PackedLanes
	if hi > len(sources) {
		hi = len(sources)
	}
	batch := sources[lo:hi]
	if n == 1 {
		// Already complete at round 0; the step loop only observes
		// completion after a round.
		for i := range batch {
			rounds[lo+i] = 0
		}
		return nil
	}
	pf.Reset(batch)
	so, _ := cfg.observer.(ScanObserver)
	var done, stalled uint64
	var stallRound [gossip.PackedLanes]int
	remaining := pf.Full()
	for r := 1; remaining != 0 && r <= cfg.budget; r++ {
		if err := ctx.Err(); err != nil {
			return errScanCtx(net, err)
		}
		complete, changed, informed := pf.StepFlood(flood)
		for m := complete &^ done; m != 0; m &= m - 1 {
			rounds[lo+bits.TrailingZeros64(m)] = r
		}
		done |= complete
		newlyStalled := remaining &^ (changed | complete)
		for m := newlyStalled; m != 0; m &= m - 1 {
			// The stalling step gained nothing, so the scalar kernel
			// reports one fewer productive round.
			stallRound[bits.TrailingZeros64(m)] = r - 1
		}
		stalled |= newlyStalled
		remaining &^= complete | newlyStalled
		if cfg.observer != nil {
			if so != nil {
				so.ScanRound(b, r, informed, pf.Lanes()*n)
			} else {
				cfg.observer.Round(r, informed, pf.Lanes()*n)
			}
		}
	}
	for i := range batch {
		bit := uint64(1) << i
		switch {
		case done&bit != 0:
		case stalled&bit != 0:
			return errScanUnreachable(net, batch[i], stallRound[i])
		default:
			return errScanIncomplete(net, batch[i], cfg.budget)
		}
	}
	return nil
}

// String renders the report.
func (r *BroadcastAllReport) String() string {
	return fmt.Sprintf("%s: b(G) = %d rounds (worst source %d, best %d from %d, mean %.2f over %d sources)",
		r.Network, r.Worst, r.WorstSource, r.Best, r.BestSource, r.MeanRounds, len(r.Rounds))
}
