package systolic

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bounds"
)

// BroadcastReport compares a measured broadcast time against the
// bounded-degree lower bound b(G) ≥ c(d)·log₂(n) of Liestman–Peters and
// Bermond et al. [22,2] that the paper's Section 6 ties to the full-duplex
// systolic bounds. It is JSON-serializable.
type BroadcastReport struct {
	Network  string `json:"network"`
	Source   int    `json:"source"`
	Measured int    `json:"measured_rounds"`
	// CBound is the certified information/degree lower bound:
	// max(⌈log₂ n⌉ floor of the c(d)·log₂ n bound, eccentricity of the
	// source).
	CBound int `json:"c_bound"`
	// C is the constant c(d) for the network's degree parameter.
	C float64 `json:"c"`
}

// AnalyzeBroadcast builds the BFS-tree broadcast schedule from source,
// simulates it (context-aware, within the WithRoundBudget cap), and
// evaluates the broadcasting lower bound. The measured time always
// dominates the bound (tests rely on this). It is a convenience wrapper
// over NewBroadcastEngine + Session.AnalyzeBroadcast; the session runs the
// packed frontier backend, one bit per vertex.
func AnalyzeBroadcast(ctx context.Context, net *Network, source int, opts ...Option) (*BroadcastReport, error) {
	sess, err := NewBroadcastEngine(net, source, opts...)
	if err != nil {
		return nil, fmt.Errorf("systolic: broadcast on %s: %w", net.Name, err)
	}
	defer sess.Close()
	return sess.AnalyzeBroadcast(ctx)
}

// AnalyzeBroadcast runs the broadcast session to completion (resuming from
// wherever it is) and evaluates the broadcasting lower bound. It errors on
// gossip sessions (use Analyze).
func (s *Session) AnalyzeBroadcast(ctx context.Context) (*BroadcastReport, error) {
	if !s.broadcast {
		return nil, fmt.Errorf("systolic: broadcast on %s: gossip sessions produce Reports", s.net.Name)
	}
	net, source := s.net, s.source
	res, err := s.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("systolic: broadcast on %s: %w", net.Name, err)
	}
	rep := &BroadcastReport{Network: net.Name, Source: source, Measured: res.Rounds}
	d := net.DegreeParam
	rep.C = bounds.BroadcastConstant(d)
	lb := 0
	if !math.IsInf(rep.C, 1) {
		lb = int(math.Ceil(rep.C * net.LogN() * 0.999999))
		// c(d)·log n is asymptotic; the unconditional finite-n facts are
		// ⌈log₂ n⌉ and the source eccentricity. Use the weakest-safe floor:
		// ⌈log₂ n⌉ (every round at most doubles the informed set).
		if il := ceilLog2(net.G.N()); il < lb {
			lb = il // keep only the certified part
		}
	} else {
		lb = ceilLog2(net.G.N())
	}
	if ecc := net.G.Eccentricity(source); ecc > lb {
		lb = ecc
	}
	rep.CBound = lb
	return rep, nil
}

// String renders the report.
func (r *BroadcastReport) String() string {
	return fmt.Sprintf("%s: broadcast from %d in %d rounds ≥ certified bound %d (c(d)=%.4f asymptotic)",
		r.Network, r.Source, r.Measured, r.CBound, r.C)
}
