package systolic

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/gossip"
	"repro/internal/graph"
)

// BroadcastReport compares a measured broadcast time against the
// bounded-degree lower bound b(G) ≥ c(d)·log₂(n) of Liestman–Peters and
// Bermond et al. [22,2] that the paper's Section 6 ties to the full-duplex
// systolic bounds. It is JSON-serializable.
type BroadcastReport struct {
	Network  string `json:"network"`
	Source   int    `json:"source"`
	Measured int    `json:"measured_rounds"`
	// CBound is the certified information/degree lower bound:
	// max(⌈log₂ n⌉ floor of the c(d)·log₂ n bound, eccentricity of the
	// source).
	CBound int `json:"c_bound"`
	// C is the constant c(d) for the network's degree parameter.
	C float64 `json:"c"`
}

// AnalyzeBroadcast builds the BFS-tree broadcast schedule from source,
// simulates it (context-aware, within the WithRoundBudget cap), and
// evaluates the broadcasting lower bound. The measured time always
// dominates the bound (tests rely on this). It is a convenience wrapper
// over NewBroadcastEngine + Session.AnalyzeBroadcast; the session runs the
// packed frontier backend, one bit per vertex.
func AnalyzeBroadcast(ctx context.Context, net *Network, source int, opts ...Option) (*BroadcastReport, error) {
	sess, err := NewBroadcastEngine(net, source, opts...)
	if err != nil {
		return nil, fmt.Errorf("systolic: broadcast on %s: %w", net.Name, err)
	}
	defer sess.Close()
	return sess.AnalyzeBroadcast(ctx)
}

// AnalyzeBroadcast runs the broadcast session to completion (resuming from
// wherever it is) and evaluates the broadcasting lower bound. It errors on
// gossip sessions (use Analyze). Since the certification refactor it is a
// view over Session.Certify: a budget-truncated run, which Certify reports
// as an inapplicable certificate, keeps surfacing here as ErrIncomplete.
func (s *Session) AnalyzeBroadcast(ctx context.Context) (*BroadcastReport, error) {
	if !s.broadcast {
		return nil, fmt.Errorf("%w: broadcast on %s: gossip sessions produce Reports", ErrWrongMode, s.net.Name)
	}
	cert, err := s.certifyBroadcast(ctx, "broadcast on")
	if err != nil {
		return nil, err
	}
	if !cert.Complete {
		return nil, fmt.Errorf("systolic: broadcast on %s: %w (budget %d)", s.net.Name, ErrIncomplete, s.budget)
	}
	return &BroadcastReport{
		Network:  cert.Network,
		Source:   cert.Broadcast.Source,
		Measured: cert.Measured,
		CBound:   cert.Broadcast.CBound,
		C:        cert.Broadcast.C,
	}, nil
}

// String renders the report.
func (r *BroadcastReport) String() string {
	return fmt.Sprintf("%s: broadcast from %d in %d rounds ≥ certified bound %d (c(d)=%.4f asymptotic)",
		r.Network, r.Source, r.Measured, r.CBound, r.C)
}

// RoundsBucket is one bucket of the per-source rounds histogram: Count
// sources complete in exactly Rounds rounds.
type RoundsBucket struct {
	Rounds int `json:"rounds"`
	Count  int `json:"count"`
}

// BroadcastAllReport is the outcome of measuring the flooding broadcast
// time from a set of sources (every vertex unless WithSources restricts
// the scan): the per-source round counts plus the extremes and summary
// statistics. Under flooding — every informed vertex informs all its
// out-neighbors each round, the schedule the packed 64-source kernel steps
// — the time from source v is exactly v's directed eccentricity, so
// max_rounds over all sources is the network's flooding broadcast time
// b(G) (the diameter), and the statistics are the network's eccentricity
// profile. It is JSON-serializable.
type BroadcastAllReport struct {
	Network string `json:"network"`
	// Sources lists the scanned sources when the scan was restricted with
	// WithSources; nil (omitted) means every vertex was scanned and
	// Rounds[v] belongs to source v.
	Sources []int `json:"sources,omitempty"`
	// Rounds[i] is the measured broadcast time from the i-th scanned
	// source (vertex i on a full scan, Sources[i] on a subset scan).
	Rounds []int `json:"rounds_by_source"`
	// Worst and WorstSource locate b(G) = max over the scanned sources;
	// Best and BestSource the cheapest source. The source fields hold
	// vertex ids, also on subset scans.
	Worst       int `json:"worst_rounds"`
	WorstSource int `json:"worst_source"`
	Best        int `json:"best_rounds"`
	BestSource  int `json:"best_source"`
	// MeanRounds and Histogram summarize the per-source eccentricity
	// profile: the mean broadcast time over the scanned sources and the
	// count of sources per distinct round value, ascending.
	MeanRounds float64        `json:"mean_rounds"`
	Histogram  []RoundsBucket `json:"rounds_histogram"`
	// Bound is the per-source certification floor: the c(d)·log₂ n lower
	// bound evaluated against every scanned source's measurement during the
	// scan's summary pass (Source is -1; MinRounds/MaxRounds bracket the
	// measurements; Violations counts sources below the floor). It points
	// into boundStore so summaries stay allocation-free beyond the report.
	Bound      *BroadcastBound `json:"bound,omitempty"`
	boundStore BroadcastBound
}

// AnalyzeBroadcastAll measures the flooding broadcast time from every
// source of the network (or the WithSources subset) in one scan.
//
// Flooding is source-independent — the same "every arc, every round"
// schedule serves all sources — so it lowers once (graph.LowerFlood) into
// a destination-major CSR, and the scan packs up to 64 sources into the 64
// bits of each knowledge word and steps them simultaneously through the
// compiled schedule (gossip.PackedFrontier): ⌈sources/64⌉ passes replace
// the per-source loop, batches run in parallel across WithWorkers workers,
// and per-bit completion tracking recovers every source's exact round
// count. WithScalarScan forces the scalar per-source reference kernel,
// which produces byte-identical reports and errors.
//
// Note this deliberately measures a different schedule than the
// single-source AnalyzeBroadcast, which builds a per-source BFS-tree
// whispering schedule (one call per informed vertex per round): the
// whispering time upper-bounds b(G, v), while the flooding time here is
// exactly the eccentricity floor the Section 6 certification compares
// against — and, unlike per-source tree schedules, it is shareable across
// lanes. A source that exceeds the WithRoundBudget cap aborts the scan
// with ErrIncomplete; a source that cannot reach every vertex aborts it
// with ErrUnreachable (raising the budget cannot help).
//
// Networks carrying a generator can be scanned without the CSR lowering:
// the streaming kernels compute arcs on the fly and touch only O(n)
// frontier memory. The scan picks them automatically for implicit
// networks, for generator-backed networks above DefaultImplicitScanNodes,
// and when the CSR would not fit a WithMaxMemory cap; WithImplicitScan
// forces them. Reports and errors are byte-identical across all four
// kernels (CSR/generator × packed/scalar).
func AnalyzeBroadcastAll(ctx context.Context, net *Network, opts ...Option) (*BroadcastAllReport, error) {
	cfg := newConfig(opts)
	sources, explicit, err := scanSources(net, cfg.sources)
	if err != nil {
		return nil, err
	}
	useGen, err := pickScanKernel(net, len(sources), cfg)
	if err != nil {
		return nil, err
	}
	rep := &BroadcastAllReport{Network: net.Name, Rounds: make([]int, len(sources))}
	if explicit {
		rep.Sources = sources
	}
	switch {
	case useGen && cfg.scalarScan:
		fg := graph.NewFloodGen(net.Gen)
		err = scalarScan(ctx, net, func(fr *gossip.FrontierState) int { return fr.StepGen(fg) }, sources, rep.Rounds, cfg)
	case useGen:
		err = packedScanGen(ctx, net, sources, rep.Rounds, cfg)
	case cfg.scalarScan:
		round := net.G.LowerFlood().Arcs()
		err = scalarScan(ctx, net, func(fr *gossip.FrontierState) int { return fr.Step(round) }, sources, rep.Rounds, cfg)
	default:
		err = packedScan(ctx, net, net.G.LowerFlood(), sources, rep.Rounds, cfg)
	}
	if err != nil {
		return nil, err
	}
	rep.summarize(net, sources)
	return rep, nil
}

// pickScanKernel decides between the CSR kernels and the streaming
// generator kernels for one scan. Forcing (WithImplicitScan) wins, then
// necessity (an implicit network has nothing to lower), then the size
// heuristic, then the WithMaxMemory guard rail — which can demote a
// CSR-eligible scan to the generator path, or fail it with ErrMemoryBudget
// when no kernel fits the cap.
func pickScanKernel(net *Network, nsrc int, cfg config) (useGen bool, err error) {
	hasGen := net.Gen != nil
	switch {
	case cfg.implicitScan:
		if !hasGen {
			return false, fmt.Errorf("systolic: broadcast-all on %s: %w: WithImplicitScan needs a generator-backed network",
				net.Name, ErrBadParam)
		}
		useGen = true
	case net.Implicit():
		// Implicit networks always carry a generator (PlainImplicit and
		// ClassifiedImplicit are the only constructors of G == nil).
		useGen = true
	case hasGen && net.N() > DefaultImplicitScanNodes:
		useGen = true
	}
	if cfg.maxMemory > 0 {
		genBytes, csrBytes := scanFootprint(net, nsrc, cfg)
		need := csrBytes
		if useGen {
			need = genBytes
		} else if csrBytes > cfg.maxMemory && hasGen && genBytes <= cfg.maxMemory {
			// The CSR would blow the cap but the streaming kernel fits:
			// fall back instead of failing.
			useGen, need = true, genBytes
		}
		if need > cfg.maxMemory {
			return false, fmt.Errorf("systolic: broadcast-all on %s: %w (estimated working set ~%d bytes, cap %d)",
				net.Name, ErrMemoryBudget, need, cfg.maxMemory)
		}
	}
	return useGen, nil
}

// scanFootprint estimates the working bytes of the generator and CSR
// kernels for this scan: per-worker frontier state plus, for the CSR, the
// shared lowering (4-byte indptr per vertex, 4-byte source per arc). The
// estimates are deliberately coarse — they gate WithMaxMemory, they do not
// meter an allocator.
func scanFootprint(net *Network, nsrc int, cfg config) (genBytes, csrBytes int64) {
	n := int64(net.N())
	frontier := 16 * n // packed: two 8-byte knowledge words per vertex
	if cfg.scalarScan {
		frontier = n / 2 // two bitsets plus slack
	}
	workers := int64(cfg.workers)
	if batches := int64(nsrc+gossip.PackedLanes-1) / int64(gossip.PackedLanes); workers > batches {
		workers = batches
	}
	genBytes = workers * frontier
	csrBytes = workers*frontier + 4*(n+1)
	if net.G != nil {
		csrBytes += 4 * int64(net.G.M())
	}
	return genBytes, csrBytes
}

// scanSources resolves the scan's source list: every vertex when sources
// is nil, otherwise a validated copy of the subset (in caller order).
func scanSources(net *Network, sources []int) (list []int, explicit bool, err error) {
	n := net.N()
	if sources == nil {
		list = make([]int, n)
		for v := range list {
			list[v] = v
		}
		return list, false, nil
	}
	if len(sources) == 0 {
		return nil, false, fmt.Errorf("systolic: broadcast-all on %s: %w: empty source list (omit WithSources to scan every vertex)",
			net.Name, ErrBadParam)
	}
	list = make([]int, len(sources))
	seen := make(map[int]bool, len(sources))
	for i, s := range sources {
		if s < 0 || s >= n {
			return nil, false, fmt.Errorf("systolic: broadcast-all on %s: %w: source %d outside [0, %d)",
				net.Name, ErrBadParam, s, n)
		}
		if seen[s] {
			return nil, false, fmt.Errorf("systolic: broadcast-all on %s: %w: duplicate source %d",
				net.Name, ErrBadParam, s)
		}
		seen[s] = true
		list[i] = s
	}
	return list, true, nil
}

// summarize fills the extremes, the eccentricity statistics and the
// per-source certification floor from the measured rounds — one pass over
// the per-source scan results. Ties keep the earliest scanned source, so
// reports are independent of the kernel and worker count.
func (r *BroadcastAllReport) summarize(net *Network, sources []int) {
	c, lb := broadcastBoundEcc(net, 0)
	bound := &r.boundStore
	*bound = BroadcastBound{Source: -1, C: c, CBound: lb, Applicable: true,
		ScannedSources: len(r.Rounds), MinRounds: r.Rounds[0], MaxRounds: r.Rounds[0]}
	r.Best, r.Worst = r.Rounds[0], r.Rounds[0]
	r.BestSource, r.WorstSource = sources[0], sources[0]
	sum := 0
	for i, rounds := range r.Rounds {
		sum += rounds
		if rounds > r.Worst {
			r.Worst, r.WorstSource = rounds, sources[i]
		}
		if rounds < r.Best {
			r.Best, r.BestSource = rounds, sources[i]
		}
		if rounds < lb {
			if bound.Violations == 0 {
				src := sources[i]
				bound.ViolatingSource = &src
			}
			bound.Violations++
		}
	}
	bound.MinRounds, bound.MaxRounds = r.Best, r.Worst
	bound.Respected = bound.Violations == 0
	r.Bound = bound
	r.MeanRounds = float64(sum) / float64(len(r.Rounds))
	counts := make([]int, r.Worst+1)
	for _, rounds := range r.Rounds {
		counts[rounds]++
	}
	for rounds, count := range counts {
		if count > 0 {
			r.Histogram = append(r.Histogram, RoundsBucket{Rounds: rounds, Count: count})
		}
	}
}

// The scan error constructors are shared by both kernels, so the packed
// engine is pinned error-equal — not just errors.Is-equal — to the scalar
// reference.

func errScanCtx(net *Network, err error) error {
	return fmt.Errorf("systolic: broadcast-all on %s: %w", net.Name, err)
}

func errScanIncomplete(net *Network, source, budget int) error {
	return fmt.Errorf("systolic: broadcast-all on %s from %d: %w (budget %d)",
		net.Name, source, ErrIncomplete, budget)
}

func errScanUnreachable(net *Network, source, rounds int) error {
	// Raising the budget cannot help a stalled frontier, so this is
	// deliberately not ErrIncomplete.
	return fmt.Errorf("%w: broadcast-all on %s from source %d (frontier stalled after %d rounds)",
		ErrUnreachable, net.Name, source, rounds)
}

// scalarScan is the per-source reference kernel: one 1-bit frontier,
// reset in place per source, stepped over the flooding round. It defines
// the scan's semantics; the packed kernel must match it byte for byte.
// The step closure hides the arc representation — walking the lowered
// round or streaming a generator — so both produce identical reports.
func scalarScan(ctx context.Context, net *Network, step func(*gossip.FrontierState) int, sources, rounds []int, cfg config) error {
	n := net.N()
	fr := gossip.NewFrontierState(n, 0)
	so, _ := cfg.observer.(ScanObserver)
	batchCols := 0 // informed columns of the current batch's finished lanes
	for i, src := range sources {
		if err := ctx.Err(); err != nil {
			return errScanCtx(net, err)
		}
		batch, lane := i/gossip.PackedLanes, i%gossip.PackedLanes
		if lane == 0 {
			batchCols = 0
		}
		lanes := len(sources) - batch*gossip.PackedLanes
		if lanes > gossip.PackedLanes {
			lanes = gossip.PackedLanes
		}
		fr.Reset(src)
		r := 0
		for !fr.Complete() {
			if r >= cfg.budget {
				return errScanIncomplete(net, src, cfg.budget)
			}
			if step(fr) == 0 {
				return errScanUnreachable(net, src, r)
			}
			r++
			if cfg.observer != nil {
				// Untouched lanes contribute their informed source; the
				// column total matches the packed kernel's when the batch
				// finishes.
				cols := batchCols + fr.InformedCount() + (lanes - lane - 1)
				if so != nil {
					so.ScanRound(batch, r, cols, lanes*n)
				} else {
					cfg.observer.Round(r, cols, lanes*n)
				}
			}
		}
		rounds[i] = r
		batchCols += fr.InformedCount()
	}
	return nil
}

// packedScan is the bit-parallel kernel: ⌈sources/64⌉ batches, each
// stepped through the lowered flooding schedule with 64 sources per pass,
// sharded across the worker pool (batches are independent, so reports are
// byte-identical for every worker count).
func packedScan(ctx context.Context, net *Network, flood *graph.FloodCSR, sources, rounds []int, cfg config) error {
	step := func(pf *gossip.PackedFrontier) (uint64, uint64, int) { return pf.StepFlood(flood) }
	return packedBatches(ctx, net, func(int) packedStep { return step }, sources, rounds, cfg)
}

// packedScanGen is the streaming counterpart of packedScan: the same batch
// bookkeeping with arcs computed on the fly from the network's generator.
// Multi-batch scans parallelize across batches exactly like packedScan,
// each worker owning a fixed FloodGen scratch; a single-batch scan on a
// large network — the shape of huge implicit scans, where all 64 lanes fit
// one word — instead shards each step by vertex range across the pool
// (StepFloodGenRange over disjoint ranges, folded, then one CommitStep).
func packedScanGen(ctx context.Context, net *Network, sources, rounds []int, cfg config) error {
	batches := (len(sources) + gossip.PackedLanes - 1) / gossip.PackedLanes
	if batches == 1 && cfg.workers > 1 && net.N() >= cfg.shardThreshold {
		pf := gossip.NewPackedFrontier(net.N())
		return packedBatch(ctx, net, shardedGenStep(net.Gen, net.N(), cfg.workers), pf, sources, rounds, 0, cfg)
	}
	return packedBatches(ctx, net, func(int) packedStep {
		fg := graph.NewFloodGen(net.Gen)
		return func(pf *gossip.PackedFrontier) (uint64, uint64, int) { return pf.StepFloodGen(fg) }
	}, sources, rounds, cfg)
}

// packedStep advances a packed frontier one flooding round, whatever the
// arc representation, returning the kernel triple (complete, changed,
// informed) masked to the batch's active lanes.
type packedStep func(*gossip.PackedFrontier) (uint64, uint64, int)

// shardedGenStep builds a packedStep that splits [0, n) into chunk-aligned
// vertex ranges, steps them concurrently — one FloodGen scratch per shard,
// ranges disjoint so the contract of StepFloodGenRange holds — folds the
// raw shard triples and commits the round once.
func shardedGenStep(gen ArcSource, n, workers int) packedStep {
	chunks := (n + graph.GenChunkVerts - 1) / graph.GenChunkVerts
	shards := workers
	if shards > chunks {
		shards = chunks
	}
	cuts := make([]int, shards+1)
	for i := 1; i < shards; i++ {
		cuts[i] = chunks * i / shards * graph.GenChunkVerts
	}
	cuts[shards] = n
	fgs := make([]*graph.FloodGen, shards)
	for i := range fgs {
		fgs[i] = graph.NewFloodGen(gen)
	}
	type shardRes struct {
		and, changed uint64
		informed     int
		_            [5]uint64 // keep shard results off each other's cache line
	}
	results := make([]shardRes, shards)
	return func(pf *gossip.PackedFrontier) (uint64, uint64, int) {
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				and, changed, informed := pf.StepFloodGenRange(fgs[i], cuts[i], cuts[i+1])
				results[i] = shardRes{and: and, changed: changed, informed: informed}
			}(i)
		}
		wg.Wait()
		and, changed, informed := ^uint64(0), uint64(0), 0
		for i := range results {
			and &= results[i].and
			changed |= results[i].changed
			informed += results[i].informed
		}
		pf.CommitStep()
		full := pf.Full()
		return and & full, changed & full, informed
	}
}

// packedBatches drives the batch pool shared by the CSR and generator
// packed kernels: batches are independent, claimed in scan order, and each
// worker builds its step (and any scratch it closes over) once. Reports
// are byte-identical for every worker count.
func packedBatches(ctx context.Context, net *Network, mkStep func(worker int) packedStep, sources, rounds []int, cfg config) error {
	batches := (len(sources) + gossip.PackedLanes - 1) / gossip.PackedLanes
	workers := cfg.workers
	if workers > batches {
		workers = batches
	}
	if workers <= 1 {
		pf := gossip.NewPackedFrontier(net.N())
		step := mkStep(0)
		for b := 0; b < batches; b++ {
			if err := packedBatch(ctx, net, step, pf, sources, rounds, b, cfg); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, batches)
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pf := gossip.NewPackedFrontier(net.N())
			step := mkStep(w)
			for {
				b := int(next.Add(1)) - 1
				if b >= batches {
					return
				}
				// Batches are claimed in order, so skipping the tail after
				// a failure can never skip a batch before the failing one:
				// the error that surfaces is still the scan-order first.
				if failed.Load() != 0 {
					return
				}
				if errs[b] = packedBatch(ctx, net, step, pf, sources, rounds, b, cfg); errs[b] != nil {
					failed.Store(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// packedBatch steps one batch of up to 64 sources to per-lane completion,
// stall, or the round budget, reproducing the scalar kernel's per-source
// outcomes exactly: a lane completing within the budget records its round,
// and the first failing lane (in scan order) aborts with the same error
// the scalar scan would have produced for that source.
func packedBatch(ctx context.Context, net *Network, step packedStep, pf *gossip.PackedFrontier, sources, rounds []int, b int, cfg config) error {
	n := net.N()
	lo := b * gossip.PackedLanes
	hi := lo + gossip.PackedLanes
	if hi > len(sources) {
		hi = len(sources)
	}
	batch := sources[lo:hi]
	if n == 1 {
		// Already complete at round 0; the step loop only observes
		// completion after a round.
		for i := range batch {
			rounds[lo+i] = 0
		}
		return nil
	}
	pf.Reset(batch)
	so, _ := cfg.observer.(ScanObserver)
	var done, stalled uint64
	var stallRound [gossip.PackedLanes]int
	remaining := pf.Full()
	for r := 1; remaining != 0 && r <= cfg.budget; r++ {
		if err := ctx.Err(); err != nil {
			return errScanCtx(net, err)
		}
		complete, changed, informed := step(pf)
		for m := complete &^ done; m != 0; m &= m - 1 {
			rounds[lo+bits.TrailingZeros64(m)] = r
		}
		done |= complete
		newlyStalled := remaining &^ (changed | complete)
		for m := newlyStalled; m != 0; m &= m - 1 {
			// The stalling step gained nothing, so the scalar kernel
			// reports one fewer productive round.
			stallRound[bits.TrailingZeros64(m)] = r - 1
		}
		stalled |= newlyStalled
		remaining &^= complete | newlyStalled
		if cfg.observer != nil {
			if so != nil {
				so.ScanRound(b, r, informed, pf.Lanes()*n)
			} else {
				cfg.observer.Round(r, informed, pf.Lanes()*n)
			}
		}
	}
	for i := range batch {
		bit := uint64(1) << i
		switch {
		case done&bit != 0:
		case stalled&bit != 0:
			return errScanUnreachable(net, batch[i], stallRound[i])
		default:
			return errScanIncomplete(net, batch[i], cfg.budget)
		}
	}
	return nil
}

// String renders the report.
func (r *BroadcastAllReport) String() string {
	return fmt.Sprintf("%s: b(G) = %d rounds (worst source %d, best %d from %d, mean %.2f over %d sources)",
		r.Network, r.Worst, r.WorstSource, r.Best, r.BestSource, r.MeanRounds, len(r.Rounds))
}
