package systolic

import (
	"context"
	"fmt"

	"repro/internal/gossip"
	"repro/internal/protocols"
)

// BroadcastReport compares a measured broadcast time against the
// bounded-degree lower bound b(G) ≥ c(d)·log₂(n) of Liestman–Peters and
// Bermond et al. [22,2] that the paper's Section 6 ties to the full-duplex
// systolic bounds. It is JSON-serializable.
type BroadcastReport struct {
	Network  string `json:"network"`
	Source   int    `json:"source"`
	Measured int    `json:"measured_rounds"`
	// CBound is the certified information/degree lower bound:
	// max(⌈log₂ n⌉ floor of the c(d)·log₂ n bound, eccentricity of the
	// source).
	CBound int `json:"c_bound"`
	// C is the constant c(d) for the network's degree parameter.
	C float64 `json:"c"`
}

// AnalyzeBroadcast builds the BFS-tree broadcast schedule from source,
// simulates it (context-aware, within the WithRoundBudget cap), and
// evaluates the broadcasting lower bound. The measured time always
// dominates the bound (tests rely on this). It is a convenience wrapper
// over NewBroadcastEngine + Session.AnalyzeBroadcast; the session runs the
// packed frontier backend, one bit per vertex.
func AnalyzeBroadcast(ctx context.Context, net *Network, source int, opts ...Option) (*BroadcastReport, error) {
	sess, err := NewBroadcastEngine(net, source, opts...)
	if err != nil {
		return nil, fmt.Errorf("systolic: broadcast on %s: %w", net.Name, err)
	}
	defer sess.Close()
	return sess.AnalyzeBroadcast(ctx)
}

// AnalyzeBroadcast runs the broadcast session to completion (resuming from
// wherever it is) and evaluates the broadcasting lower bound. It errors on
// gossip sessions (use Analyze). Since the certification refactor it is a
// view over Session.Certify: a budget-truncated run, which Certify reports
// as an inapplicable certificate, keeps surfacing here as ErrIncomplete.
func (s *Session) AnalyzeBroadcast(ctx context.Context) (*BroadcastReport, error) {
	if !s.broadcast {
		return nil, fmt.Errorf("%w: broadcast on %s: gossip sessions produce Reports", ErrWrongMode, s.net.Name)
	}
	cert, err := s.certifyBroadcast(ctx, "broadcast on")
	if err != nil {
		return nil, err
	}
	if !cert.Complete {
		return nil, fmt.Errorf("systolic: broadcast on %s: %w (budget %d)", s.net.Name, ErrIncomplete, s.budget)
	}
	return &BroadcastReport{
		Network:  cert.Network,
		Source:   cert.Broadcast.Source,
		Measured: cert.Measured,
		CBound:   cert.Broadcast.CBound,
		C:        cert.Broadcast.C,
	}, nil
}

// String renders the report.
func (r *BroadcastReport) String() string {
	return fmt.Sprintf("%s: broadcast from %d in %d rounds ≥ certified bound %d (c(d)=%.4f asymptotic)",
		r.Network, r.Source, r.Measured, r.CBound, r.C)
}

// BroadcastAllReport is the outcome of measuring the BFS-tree broadcast
// time from every source of a network: the per-source round counts plus the
// extremes. max_rounds over all sources is the broadcast time b(G) of the
// paper's Section 6. It is JSON-serializable.
type BroadcastAllReport struct {
	Network string `json:"network"`
	// Rounds[v] is the measured broadcast time from source v.
	Rounds []int `json:"rounds_by_source"`
	// Worst and WorstSource locate b(G) = max over sources; Best and
	// BestSource the cheapest source.
	Worst       int `json:"worst_rounds"`
	WorstSource int `json:"worst_source"`
	Best        int `json:"best_rounds"`
	BestSource  int `json:"best_source"`
}

// AnalyzeBroadcastAll measures the BFS-tree broadcast time from every
// source of the network. The whole scan reuses one packed frontier — each
// source resets it in place (FrontierState.Reset) instead of reallocating
// two bitsets per source — so the per-source cost is the simulation alone.
// The context is checked between sources; a source that exceeds the
// WithRoundBudget cap aborts the scan with ErrIncomplete.
func AnalyzeBroadcastAll(ctx context.Context, net *Network, opts ...Option) (*BroadcastAllReport, error) {
	cfg := newConfig(opts)
	n := net.G.N()
	rep := &BroadcastAllReport{Network: net.Name, Rounds: make([]int, n)}
	fr := gossip.NewFrontierState(n, 0)
	for source := 0; source < n; source++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("systolic: broadcast-all on %s: %w", net.Name, err)
		}
		fr.Reset(source)
		p := protocols.BroadcastSchedule(net.G, source)
		rounds := 0
		for !fr.Complete() {
			if rounds >= cfg.budget {
				return nil, fmt.Errorf("systolic: broadcast-all on %s from %d: %w (budget %d)",
					net.Name, source, ErrIncomplete, cfg.budget)
			}
			if rounds >= p.Len() {
				// The BFS schedule ran out with the frontier stalled: some
				// vertex is unreachable from this source. Raising the budget
				// cannot help, so this is deliberately not ErrIncomplete.
				return nil, fmt.Errorf("%w: broadcast-all on %s from source %d (schedule exhausted after %d rounds)",
					ErrUnreachable, net.Name, source, rounds)
			}
			fr.Step(p.Round(rounds))
			rounds++
			if cfg.observer != nil {
				cfg.observer.Round(rounds, fr.InformedCount(), n)
			}
		}
		rep.Rounds[source] = rounds
	}
	rep.Best, rep.Worst = rep.Rounds[0], rep.Rounds[0]
	for v, r := range rep.Rounds {
		if r > rep.Worst {
			rep.Worst, rep.WorstSource = r, v
		}
		if r < rep.Best {
			rep.Best, rep.BestSource = r, v
		}
	}
	return rep, nil
}

// String renders the report.
func (r *BroadcastAllReport) String() string {
	return fmt.Sprintf("%s: b(G) = %d rounds (worst source %d, best %d from %d over %d sources)",
		r.Network, r.Worst, r.WorstSource, r.Best, r.BestSource, len(r.Rounds))
}
