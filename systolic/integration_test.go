package systolic

import (
	"context"
	"testing"

	"repro/internal/bounds"
	"repro/internal/gossip"
	"repro/internal/protocols"
	"repro/internal/separator"
	"repro/internal/topology"
)

// TestTheorem51InstanceBoundSound: evaluating Theorem 5.1's explicit
// finite-instance form with the *measured* separator data (c = min set
// size, d = BFS distance) must stay below the measured gossip time of every
// real protocol on that instance.
func TestTheorem51InstanceBoundSound(t *testing.T) {
	// The marker separator's distance promise holds on the de Bruijn
	// digraph (directed case); use a directed protocol accordingly.
	db := topology.NewDeBruijnDigraph(2, 5)
	sets := separator.DeBruijnMarker(db)
	d, err := sets.Verify(db.G)
	if err != nil {
		t.Fatal(err)
	}
	c := len(sets.V1)
	if len(sets.V2) < c {
		c = len(sets.V2)
	}

	p := protocols.RoundRobinDirected(db.G)
	res, err := gossip.Simulate(db.G, p, 100000)
	if err != nil {
		t.Fatal(err)
	}

	// Maximize the instance bound over a λ grid (any feasible λ is sound).
	best := 0
	for i := 1; i < 40; i++ {
		lambda := float64(i) / 40
		w := bounds.WHalfDuplex(p.Period, lambda)
		if w > 1 {
			break
		}
		if b := bounds.Theorem51LowerBound(c, d, lambda, w); b > best {
			best = b
		}
	}
	if best <= 0 {
		t.Fatal("instance bound degenerate")
	}
	if best > res.Rounds {
		t.Errorf("Theorem 5.1 instance bound %d exceeds measured %d rounds", best, res.Rounds)
	}
	t.Logf("DB(2,5): instance bound %d ≤ measured %d (c=%d, d=%d)", best, res.Rounds, c, d)
}

// TestEvaluateFiniteBoundsNeverExceedOptimalProtocols: the certified Rounds
// value must be met by protocols known to be optimal or near-optimal.
func TestEvaluateFiniteBoundsNeverExceedOptimalProtocols(t *testing.T) {
	// Hypercube Q_D: optimal D rounds; bound must be ≤ D and ideally = D.
	for D := 3; D <= 7; D++ {
		net, _ := New("hypercube", Dimension(D))
		b := Evaluate(net, Request{Mode: gossip.FullDuplex, Period: D})
		if b.Rounds > D {
			t.Errorf("Q%d: certified bound %d exceeds optimal %d", D, b.Rounds, D)
		}
		if b.Rounds != D {
			t.Errorf("Q%d: certified bound %d, want the tight log2(n) = %d", D, b.Rounds, D)
		}
	}
	// BF(2,3) full-duplex: the periodic protocol finishes in 9 rounds, so
	// any certified bound must be ≤ 9.
	net, _ := New("butterfly", Degree(2), Diameter(3))
	p := protocols.PeriodicFullDuplex(net.G)
	res, err := Simulate(context.Background(), net, p, WithRoundBudget(10000))
	if err != nil {
		t.Fatal(err)
	}
	b := Evaluate(net, Request{Mode: gossip.FullDuplex, Period: p.Period})
	if b.Rounds > res.Rounds {
		t.Errorf("BF(2,3): certified bound %d exceeds a real protocol's %d rounds", b.Rounds, res.Rounds)
	}
}

// TestEvaluateDiameterFloor: for sparse long networks the diameter dominates
// the certified bound.
func TestEvaluateDiameterFloor(t *testing.T) {
	net, _ := New("cycle", Nodes(40))
	b := Evaluate(net, Request{Mode: gossip.HalfDuplex, Period: 4})
	if b.Rounds < 20 {
		t.Errorf("C40 certified bound %d below diameter 20", b.Rounds)
	}
}

// TestAnalyzeDirectedRoundRobinKautz covers the directed mode end to end.
func TestAnalyzeDirectedRoundRobinKautz(t *testing.T) {
	net, _ := New("kautz-digraph", Degree(2), Diameter(3))
	p := protocols.RoundRobinDirected(net.G)
	rep, err := Analyze(context.Background(), net, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TheoremRespected {
		t.Error("Theorem 4.1 violated on Kautz round-robin")
	}
	if rep.Measured < rep.LowerBound.Rounds {
		t.Errorf("measured %d below certified bound %d", rep.Measured, rep.LowerBound.Rounds)
	}
}

// TestAnalyzeGreedyNonSystolic covers the non-systolic analysis path
// (s→∞ bound, horizon = full length).
func TestAnalyzeGreedyNonSystolic(t *testing.T) {
	net, _ := New("debruijn", Degree(2), Diameter(4))
	p, err := NewProtocol("greedy-half", net, 100000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), net, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Period != 0 {
		t.Error("greedy protocol should be non-systolic")
	}
	if !rep.TheoremRespected {
		t.Error("Theorem 4.1 (s→∞ form) violated")
	}
}
