package systolic

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// FuzzReadCheckpoint feeds untrusted bytes through ReadCheckpoint and, when
// they decode, through Session.Restore. Properties: neither step panics, a
// rejected checkpoint wraps ErrBadCheckpoint, and an accepted one leaves a
// session that still steps and re-snapshots cleanly. The first corpus entry
// is a genuine snapshot, so the fuzzer starts from the real schema and
// mutates outward.
func FuzzReadCheckpoint(f *testing.F) {
	net, err := New("hypercube", Dimension(3))
	if err != nil {
		f.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, 0)
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()

	seedSess, err := NewEngine(net, p)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := seedSess.Step(ctx, 2); err != nil {
		f.Fatal(err)
	}
	var genuine bytes.Buffer
	if err := WriteCheckpoint(&genuine, seedSess.Snapshot()); err != nil {
		f.Fatal(err)
	}
	seedSess.Close()

	f.Add(genuine.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"mode":"gossip","n":8,"round":-1}`))
	f.Add([]byte(`{"version":1,"mode":"gossip","n":8,"state":"!!!not-base64!!!"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // undecodable bytes are rejected at the JSON layer
		}
		sess, err := NewEngine(net, p)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		if err := sess.Restore(c); err != nil {
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("Restore rejection %v does not wrap ErrBadCheckpoint", err)
			}
			return
		}
		// An accepted checkpoint must leave a live session: stepping and
		// re-snapshotting must not panic, and the round must advance.
		before := sess.Rounds()
		if _, err := sess.Step(ctx, 1); err != nil {
			return // running out of schedule is a legal outcome
		}
		if sess.Rounds() != before+1 {
			t.Fatalf("round count %d after stepping from restored round %d", sess.Rounds(), before)
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, sess.Snapshot()); err != nil {
			t.Fatalf("re-snapshot after restore: %v", err)
		}
	})
}
