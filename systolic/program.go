package systolic

import (
	"fmt"

	"repro/internal/gossip"
)

// Program is a protocol compiled onto a concrete network: the validated
// schedule lowered once into the flat IR every execution layer shares
// (serial state, sharded pool, certificates — see repro/internal/gossip).
// Compilation subsumes validation, so a session built from a Program skips
// both; serving layers cache Programs across requests (keyed by
// RequestKey-style identities) to make a result-cache miss skip the whole
// build→validate→compile pipeline.
//
// A Program is immutable and safe to share: any number of concurrent
// sessions may execute one compiled program.
type Program struct {
	net   *Network
	proto *Protocol
	prog  *gossip.Program
}

// CompileProtocol validates p on the network and lowers it into the shared
// schedule IR. The network's adjacency lists are force-sorted so the
// resulting Program (which retains the network) can back concurrent
// sessions without racing on the digraph's lazy traversal sort.
func CompileProtocol(net *Network, p *Protocol) (*Program, error) {
	if err := net.needG("compile on"); err != nil {
		return nil, err
	}
	if err := p.Validate(net.G); err != nil {
		return nil, err
	}
	net.G.EnsureSorted()
	prog, err := gossip.Compile(p, net.G.N(), net.G.N())
	if err != nil {
		return nil, fmt.Errorf("systolic: compile on %s: %w", net.Name, err)
	}
	return &Program{net: net, proto: p, prog: prog}, nil
}

// Network returns the network the program was compiled on.
func (pr *Program) Network() *Network { return pr.net }

// Protocol returns the source protocol.
func (pr *Program) Protocol() *Protocol { return pr.proto }

// Fingerprint returns the FNV-1a schedule fingerprint — the identity
// recorded in checkpoints and used by program caches.
func (pr *Program) Fingerprint() string { return pr.prog.Fingerprint() }

// NewEngineFromProgram returns a fresh session at round zero executing an
// already compiled program, skipping re-validation and re-compilation. It
// is the entry point for serving layers that cache Programs; NewEngine is
// the compile-per-session convenience over it.
func NewEngineFromProgram(pr *Program, opts ...Option) (*Session, error) {
	cfg := newConfig(opts)
	s := &Session{net: pr.net, proto: pr.proto, prog: pr.prog, cfg: cfg}
	s.initBudget()
	n := pr.net.G.N()
	s.st = gossip.NewState(n)
	s.target = n * n
	if cfg.workers > 1 && n >= cfg.shardThreshold {
		s.pool = gossip.NewPool(cfg.workers)
		s.st.UsePool(s.pool)
	}
	s.done = s.complete()
	return s, nil
}
