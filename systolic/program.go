package systolic

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/graph"
)

// Program is a protocol compiled onto a concrete network: the validated
// schedule lowered once into the flat IR every execution layer shares
// (serial state, sharded pool, certificates — see repro/internal/gossip).
// Compilation subsumes validation, so a session built from a Program skips
// both; serving layers cache Programs across requests (keyed by
// RequestKey-style identities) to make a result-cache miss skip the whole
// build→validate→compile pipeline.
//
// A generator-backed protocol (Protocol.Gen, the form NewProtocol returns on
// implicit networks) compiles to a generator program instead: rounds are
// recomputed from the vertex id at execution time, never materialized, and
// the session runs the packed broadcast frontier from WithSource. On a
// materialized network the same protocol lowers its explicit rounds to the
// CSR frontier program — the differential twin the generator path is pinned
// byte-identical to (same fingerprint, rounds, reports and checkpoints).
//
// A Program is immutable and safe to share: any number of concurrent
// sessions may execute one compiled program.
type Program struct {
	net   *Network
	proto *Protocol
	prog  *gossip.Program    // CSR schedule IR; nil for generator-executed programs
	gprog *gossip.GenProgram // generator schedule IR; non-nil streams rounds
	// frontier marks broadcast-frontier semantics: the session simulates
	// single-source dissemination (one bit per vertex) instead of gossip.
	// Always true when gprog is non-nil; also true for the CSR lowering of a
	// generator-backed protocol on a materialized network.
	frontier bool
}

// CompileProtocol validates p on the network and lowers it into the shared
// schedule IR. The network's adjacency lists are force-sorted so the
// resulting Program (which retains the network) can back concurrent
// sessions without racing on the digraph's lazy traversal sort.
//
// A generator-backed p (p.Gen set, no explicit rounds) is lowered onto the
// generator: on an implicit network the program streams every round, on a
// materialized one it compiles the materialized rounds to the CSR frontier
// program. Either way the session is a broadcast session (see WithSource).
func CompileProtocol(net *Network, p *Protocol) (*Program, error) {
	if g := p.Gen; g != nil && p.Len() == 0 {
		if g.N() != net.N() {
			return nil, fmt.Errorf("systolic: compile on %s: %w: generator schedule is for n=%d, network has n=%d",
				net.Name, ErrBadParam, g.N(), net.N())
		}
		if p.Period != g.Period() {
			return nil, fmt.Errorf("systolic: compile on %s: %w: generator-backed protocol declares period %d, schedule has %d",
				net.Name, ErrBadParam, p.Period, g.Period())
		}
		if net.Implicit() {
			return &Program{net: net, proto: p, gprog: g, frontier: true}, nil
		}
		// Materialized network: validate the explicit rounds and lower them
		// to the 1-item frontier shape — the CSR twin of the generator path.
		mp := g.Materialize()
		if err := mp.Validate(net.G); err != nil {
			return nil, err
		}
		net.G.EnsureSorted()
		prog, err := gossip.Compile(mp, net.G.N(), 1)
		if err != nil {
			return nil, fmt.Errorf("systolic: compile on %s: %w", net.Name, err)
		}
		return &Program{net: net, proto: p, prog: prog, frontier: true}, nil
	}
	if err := net.needG("compile on"); err != nil {
		return nil, err
	}
	if err := p.Validate(net.G); err != nil {
		return nil, err
	}
	net.G.EnsureSorted()
	prog, err := gossip.Compile(p, net.G.N(), net.G.N())
	if err != nil {
		return nil, fmt.Errorf("systolic: compile on %s: %w", net.Name, err)
	}
	return &Program{net: net, proto: p, prog: prog}, nil
}

// Network returns the network the program was compiled on.
func (pr *Program) Network() *Network { return pr.net }

// Protocol returns the source protocol.
func (pr *Program) Protocol() *Protocol { return pr.proto }

// GenProgram returns the generator schedule IR when the program streams its
// rounds, nil when it executes a materialized CSR schedule.
func (pr *Program) GenProgram() *gossip.GenProgram { return pr.gprog }

// Broadcast reports whether sessions built from this program simulate
// single-source broadcast on the packed frontier (true for every program
// compiled from a generator-backed protocol) rather than gossip.
func (pr *Program) Broadcast() bool { return pr.frontier }

// Fingerprint returns the FNV-1a schedule fingerprint — the identity
// recorded in checkpoints and used by program caches. Generator programs
// hash the streamed rounds to the same value their materialized form would.
func (pr *Program) Fingerprint() string {
	if pr.gprog != nil {
		return pr.gprog.Fingerprint()
	}
	return pr.prog.Fingerprint()
}

// genSessionFootprint estimates the resident bytes a generator-program
// session allocates: the two frontier bitsets plus the sender chunk scratch.
// It is what WithMaxMemory meters on the streaming path — deliberately
// excluding the O(arcs) cost the generator exists to avoid.
func genSessionFootprint(n int) int64 {
	words := int64((n + 63) / 64)
	return 2*8*words + 4*int64(graph.GenChunkVerts)
}

// NewEngineFromProgram returns a fresh session at round zero executing an
// already compiled program, skipping re-validation and re-compilation. It
// is the entry point for serving layers that cache Programs; NewEngine is
// the compile-per-session convenience over it.
//
// A frontier program (a generator-backed protocol, or its CSR twin on a
// materialized network) yields a broadcast session disseminating from
// WithSource (default 0) — one bit per vertex, so a 2^24-vertex hypercube
// simulates in a few MiB of state. On the streaming path WithMaxMemory caps
// the frontier words allocated (ErrMemoryBudget when they exceed it).
func NewEngineFromProgram(pr *Program, opts ...Option) (*Session, error) {
	cfg := newConfig(opts)
	s := &Session{net: pr.net, proto: pr.proto, prog: pr.prog, cfg: cfg}
	s.initBudget()
	n := pr.net.N()
	if pr.frontier {
		src := cfg.source
		if src < 0 || src >= n {
			return nil, fmt.Errorf("%w: broadcast source %d outside [0, %d)", ErrBadParam, src, n)
		}
		if pr.gprog != nil {
			if cfg.maxMemory > 0 {
				if need := genSessionFootprint(n); need > cfg.maxMemory {
					return nil, fmt.Errorf("systolic: session on %s: %w (estimated working set ~%d bytes, cap %d)",
						pr.net.Name, ErrMemoryBudget, need, cfg.maxMemory)
				}
			}
			s.grun = gossip.NewGenRun(pr.gprog)
		}
		s.broadcast = true
		s.source = src
		s.fr = gossip.NewFrontierState(n, src)
		s.target = n
		s.done = s.complete()
		return s, nil
	}
	s.st = gossip.NewState(n)
	s.target = n * n
	if cfg.workers > 1 && n >= cfg.shardThreshold {
		s.pool = gossip.NewPool(cfg.workers)
		s.st.UsePool(s.pool)
	}
	s.done = s.complete()
	return s, nil
}
