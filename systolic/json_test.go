package systolic

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestReportJSONGolden pins the wire schema of Report/Bound: a literal
// report marshals byte-for-byte to testdata/report.golden.json. Renaming,
// removing or reordering a JSON field is a breaking API change and must
// show up as a diff here. Regenerate with -update after an intentional
// change.
func TestReportJSONGolden(t *testing.T) {
	rep := &Report{
		Network:  "DB(2,5)",
		Mode:     "half-duplex",
		Period:   4,
		Measured: 18,
		LowerBound: Bound{
			Coefficient: 1.8133,
			Lambda:      0.5411,
			Rounds:      7,
			Source:      "separator",
		},
		DelayVerts:       576,
		DelayArcs:        1120,
		NormAtRoot:       0.9876,
		NormCap:          1,
		TheoremRespected: true,
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("Report JSON schema drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSweepResultJSONGolden pins the SweepResult envelope the same way.
func TestSweepResultJSONGolden(t *testing.T) {
	res := SweepResult{
		Index:   3,
		Label:   "wbf-periodic",
		Network: "WBF(2,4)",
		N:       64,
		Report: &Report{
			Network:    "WBF(2,4)",
			Mode:       "half-duplex",
			Period:     6,
			Measured:   25,
			LowerBound: Bound{Coefficient: 2.0219, Lambda: 0.62, Rounds: 9, Source: "separator"},
			DelayVerts: 300, DelayArcs: 700,
			NormAtRoot: 0.91, NormCap: 1, TheoremRespected: true,
		},
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "sweepresult.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("SweepResult JSON schema drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportJSONRoundTrip: a computed report survives a marshal/unmarshal
// cycle intact (the schema carries every field).
func TestReportJSONRoundTrip(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), net, p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != *rep {
		t.Errorf("round trip changed the report:\n before %+v\n after  %+v", *rep, back)
	}
}
