package systolic

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestReportJSONGolden pins the wire schema of Report/Bound: a literal
// report marshals byte-for-byte to testdata/report.golden.json. Renaming,
// removing or reordering a JSON field is a breaking API change and must
// show up as a diff here. Regenerate with -update after an intentional
// change.
func TestReportJSONGolden(t *testing.T) {
	rep := &Report{
		Network:  "DB(2,5)",
		Mode:     "half-duplex",
		Period:   4,
		Measured: 18,
		LowerBound: Bound{
			Coefficient: 1.8133,
			Lambda:      0.5411,
			Rounds:      7,
			Source:      "separator",
		},
		DelayVerts:       576,
		DelayArcs:        1120,
		NormAtRoot:       0.9876,
		NormCap:          1,
		TheoremRespected: true,
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("Report JSON schema drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSweepResultJSONGolden pins the SweepResult envelope the same way.
func TestSweepResultJSONGolden(t *testing.T) {
	res := SweepResult{
		Index:   3,
		Label:   "wbf-periodic",
		Network: "WBF(2,4)",
		N:       64,
		Report: &Report{
			Network:    "WBF(2,4)",
			Mode:       "half-duplex",
			Period:     6,
			Measured:   25,
			LowerBound: Bound{Coefficient: 2.0219, Lambda: 0.62, Rounds: 9, Source: "separator"},
			DelayVerts: 300, DelayArcs: 700,
			NormAtRoot: 0.91, NormCap: 1, TheoremRespected: true,
		},
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "sweepresult.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("SweepResult JSON schema drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestBroadcastAllReportJSONGolden pins the wire schema of the
// sources-aware scan report. Back-compat contract: the fields that predate
// WithSources (network, rounds_by_source, worst/best pairs) keep their
// names and order, the sources field is omitted on full scans, and the
// statistics fields extend the object rather than reshaping it.
func TestBroadcastAllReportJSONGolden(t *testing.T) {
	rep := &BroadcastAllReport{
		Network:     "HC(4)",
		Sources:     []int{0, 5, 9},
		Rounds:      []int{4, 4, 5},
		Worst:       5,
		WorstSource: 9,
		Best:        4,
		BestSource:  0,
		MeanRounds:  4.3333,
		Histogram:   []RoundsBucket{{Rounds: 4, Count: 2}, {Rounds: 5, Count: 1}},
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "broadcastall.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("BroadcastAllReport JSON schema drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// A full scan omits the sources field entirely.
	data, err := json.Marshal(&BroadcastAllReport{Network: "x", Rounds: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"sources"`)) {
		t.Errorf("full-scan report leaked a sources field: %s", data)
	}
}

// TestReportJSONRoundTrip: a computed report survives a marshal/unmarshal
// cycle intact (the schema carries every field).
func TestReportJSONRoundTrip(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), net, p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != *rep {
		t.Errorf("round trip changed the report:\n before %+v\n after  %+v", *rep, back)
	}
}
