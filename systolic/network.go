package systolic

import (
	"math"

	"repro/internal/bounds"
	"repro/internal/graph"
)

// Digraph is the network substrate: a digraph with adjacency lists, BFS and
// degree/diameter queries (see repro/internal/graph).
type Digraph = graph.Digraph

// Family classifies a network into one of the paper's Lemma 3.1 families.
type Family = bounds.Family

// Network is a concrete network instance: the digraph plus the metadata the
// bound machinery needs (family classification and degree parameter).
type Network struct {
	Name string
	G    *Digraph
	// Family is the paper family when the topology is one of Lemma 3.1's
	// (BF, WBF→, WBF, DB, K); FamilyKnown is false otherwise.
	Family      Family
	FamilyKnown bool
	// DegreeParam is the broadcast parameter d: maximum degree minus one
	// for symmetric networks, maximum out-degree for directed ones.
	DegreeParam int
}

// Plain wraps a digraph as a Network with no paper-family classification;
// it is the building block for topologies registered from outside this
// package.
func Plain(name string, g *Digraph) *Network {
	return &Network{Name: name, G: g, DegreeParam: degreeParam(g)}
}

// Classified wraps a digraph as a Network belonging to one of the paper's
// families, enabling the separator and diameter bound refinements.
func Classified(name string, g *Digraph, f Family, d int) *Network {
	return &Network{Name: name, G: g, Family: f, FamilyKnown: true, DegreeParam: d}
}

func degreeParam(g *Digraph) int {
	if g.IsSymmetric() {
		d := g.MaxOutDeg() - 1
		if d < 1 {
			d = 1
		}
		return d
	}
	return g.MaxOutDeg()
}

// LogN returns log₂(n) for the network, the unit in which the paper's
// bounds are expressed.
func (net *Network) LogN() float64 { return math.Log2(float64(net.G.N())) }
