package systolic

import (
	"math"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/topology"
)

// Digraph is the network substrate: a digraph with adjacency lists, BFS and
// degree/diameter queries (see repro/internal/graph).
type Digraph = graph.Digraph

// ArcSource is a generator-backed arc supplier: neighbors computed from the
// vertex id, the seam that lets broadcast scans stream networks too large
// to materialize (see repro/internal/graph).
type ArcSource = graph.ArcSource

// Family classifies a network into one of the paper's Lemma 3.1 families.
type Family = bounds.Family

// Network is a concrete network instance: the digraph plus the metadata the
// bound machinery needs (family classification and degree parameter).
//
// A network carries one or both representations of its arc set: G, the
// materialized digraph every schedule compiler and bound evaluator walks,
// and Gen, an arithmetic generator the streaming broadcast kernels compute
// arcs from on the fly. Registry builders attach Gen alongside G for the
// generator-eligible kinds, and build Gen-only ("implicit") instances past
// the materialization threshold — those support AnalyzeBroadcastAll and
// CertifyBroadcast (flooding is generator-computable) while everything
// needing explicit adjacency returns ErrImplicit.
type Network struct {
	Name string
	G    *Digraph
	// Gen streams the same arc set as G arithmetically; non-nil for
	// generator-eligible instances. When G is nil the network is implicit:
	// Gen is its only representation.
	Gen ArcSource
	// Sched is the exchange-class schedule generator of the topology:
	// a proper edge coloring computed from the vertex id, from which the
	// periodic protocol catalog derives generator-compiled programs (rounds
	// computed, not stored). Registry builders attach it for the
	// schedule-eligible kinds (cycle, hypercube, torus, ccc, butterfly);
	// nil means only explicit protocols apply.
	Sched *topology.Schedule
	// Family is the paper family when the topology is one of Lemma 3.1's
	// (BF, WBF→, WBF, DB, K); FamilyKnown is false otherwise.
	Family      Family
	FamilyKnown bool
	// DegreeParam is the broadcast parameter d: maximum degree minus one
	// for symmetric networks, maximum out-degree for directed ones.
	DegreeParam int
}

// Plain wraps a digraph as a Network with no paper-family classification;
// it is the building block for topologies registered from outside this
// package.
func Plain(name string, g *Digraph) *Network {
	return &Network{Name: name, G: g, DegreeParam: degreeParam(g)}
}

// Classified wraps a digraph as a Network belonging to one of the paper's
// families, enabling the separator and diameter bound refinements.
func Classified(name string, g *Digraph, f Family, d int) *Network {
	return &Network{Name: name, G: g, Family: f, FamilyKnown: true, DegreeParam: d}
}

// PlainImplicit wraps a generator as an implicit Network with no
// paper-family classification. The degree parameter cannot be derived from
// a generator (that would require a full sweep), so the caller supplies it.
func PlainImplicit(name string, gen ArcSource, degreeParam int) *Network {
	return &Network{Name: name, Gen: gen, DegreeParam: degreeParam}
}

// ClassifiedImplicit wraps a generator as an implicit Network belonging to
// one of the paper's families.
func ClassifiedImplicit(name string, gen ArcSource, f Family, d int) *Network {
	return &Network{Name: name, Gen: gen, Family: f, FamilyKnown: true, DegreeParam: d}
}

func degreeParam(g *Digraph) int {
	if g.IsSymmetric() {
		d := g.MaxOutDeg() - 1
		if d < 1 {
			d = 1
		}
		return d
	}
	return g.MaxOutDeg()
}

// N returns the vertex count, from whichever representation the network
// carries.
func (net *Network) N() int {
	if net.G != nil {
		return net.G.N()
	}
	return net.Gen.N()
}

// Implicit reports whether the network carries only a generator: no
// materialized digraph exists, so operations needing explicit adjacency
// (protocol compilation, BFS schedules, delay digraphs) return ErrImplicit
// while the streaming broadcast scans work at any size.
func (net *Network) Implicit() bool { return net.G == nil }

// needG returns ErrImplicit (wrapped with the operation and network name)
// when the network has no materialized digraph — the guard every
// adjacency-walking entry point calls first.
func (net *Network) needG(op string) error {
	if net.G != nil {
		return nil
	}
	return errImplicitOp(op, net.Name)
}

// LogN returns log₂(n) for the network, the unit in which the paper's
// bounds are expressed.
func (net *Network) LogN() float64 { return math.Log2(float64(net.N())) }
