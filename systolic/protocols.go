package systolic

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// Protocol is a sequence of communication rounds (Definition 3.1), possibly
// systolic (Definition 3.2). See repro/internal/gossip.
type Protocol = gossip.Protocol

// Mode selects the communication model of Section 3.
type Mode = gossip.Mode

// The three communication models of the paper.
const (
	Directed   = gossip.Directed
	HalfDuplex = gossip.HalfDuplex
	FullDuplex = gossip.FullDuplex
)

// ProtocolBuilder constructs the protocol to run on an instantiated
// network; it is the unit of work a SweepJob carries.
type ProtocolBuilder func(net *Network) (*Protocol, error)

// protocolCatalog names the protocol constructions the reproduction ships.
// Each entry receives the network and the round budget (only the greedy
// heuristics consume the budget, as their construction simulates).
var protocolCatalog = map[string]func(net *Network, budget int) (*Protocol, error){
	"periodic-half": func(net *Network, _ int) (*Protocol, error) {
		return protocols.PeriodicHalfDuplex(net.G), nil
	},
	"periodic-full": func(net *Network, _ int) (*Protocol, error) {
		return protocols.PeriodicFullDuplex(net.G), nil
	},
	"periodic-interleaved": func(net *Network, _ int) (*Protocol, error) {
		return protocols.PeriodicInterleavedHalfDuplex(net.G), nil
	},
	"round-robin": func(net *Network, _ int) (*Protocol, error) {
		return protocols.RoundRobinDirected(net.G), nil
	},
	"greedy-half": func(net *Network, budget int) (*Protocol, error) {
		return protocols.GreedyGossip(net.G, gossip.HalfDuplex, budget)
	},
	"greedy-directed": func(net *Network, budget int) (*Protocol, error) {
		return protocols.GreedyGossip(net.G, gossip.Directed, budget)
	},
	"greedy-full": func(net *Network, budget int) (*Protocol, error) {
		return protocols.GreedyGossipFullDuplex(net.G, budget)
	},
	"hypercube": func(net *Network, _ int) (*Protocol, error) {
		D := 0
		for n := net.G.N(); n > 1; n >>= 1 {
			D++
		}
		return protocols.HypercubeExchange(D), nil
	},
	"doubling": func(net *Network, _ int) (*Protocol, error) {
		return protocols.CompleteDoubling(net.G.N()), nil
	},
	"zigzag": func(net *Network, _ int) (*Protocol, error) {
		return protocols.PathZigZag(net.G.N()), nil
	},
	"cycle2": func(net *Network, _ int) (*Protocol, error) {
		return protocols.CycleTwoPhase(net.G.N()), nil
	},
}

// ProtocolKinds lists the named protocol constructions in sorted order.
func ProtocolKinds() []string {
	ks := make([]string, 0, len(protocolCatalog))
	for k := range protocolCatalog {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// GenProtocolKinds lists the protocol names that compile to generator
// programs on schedule-carrying networks — the catalog subset that works on
// implicit instances.
func GenProtocolKinds() []string {
	return []string{"cycle2", "hypercube", "periodic-full", "periodic-half", "periodic-interleaved"}
}

// genSchedule maps a catalog protocol name onto the network's exchange-class
// schedule, when the pair is generator-eligible: the periodic colorings work
// on any schedule-carrying kind, while the structured constructions
// ("hypercube", "cycle2") additionally require the matching class shape. The
// greedy heuristics and round-robin are data-dependent on explicit adjacency
// and are never eligible.
func genSchedule(name string, net *Network) (graph.RoundSource, Mode, bool) {
	sched := net.Sched
	if sched == nil {
		return nil, 0, false
	}
	switch name {
	case "periodic-full":
		return sched.FullDuplex(), FullDuplex, true
	case "periodic-half":
		return sched.HalfDuplex(), HalfDuplex, true
	case "periodic-interleaved":
		return sched.Interleaved(), HalfDuplex, true
	case "hypercube":
		// The dimension-order exchange is exactly the full-duplex walk of
		// the hypercube's coordinate classes.
		if _, ok := sched.ExchangeClasses().(*topology.HypercubeClasses); ok {
			return sched.FullDuplex(), FullDuplex, true
		}
	case "cycle2":
		if _, ok := sched.ExchangeClasses().(*topology.CycleClasses); ok {
			if n := net.N(); n >= 4 && n%2 == 0 {
				return topology.NewCycleTwoPhase(n), Directed, true
			}
		}
	}
	return nil, 0, false
}

// NewProtocol builds a named protocol for the network. The budget caps the
// construction cost of the greedy heuristics; the periodic constructions
// ignore it.
//
// On a schedule-carrying network the generator-eligible names (see
// GenProtocolKinds) compile from the exchange-class schedule instead of
// walking adjacency: an implicit network gets a generator-backed protocol
// (rounds computed at execution time — the only protocol form an implicit
// instance can run), a materialized one gets the identical schedule in
// explicit form (same fingerprint, byte-identical rounds). Ineligible names
// on an implicit network return ErrImplicit naming the eligible set.
func NewProtocol(name string, net *Network, budget int) (*Protocol, error) {
	kind := strings.ToLower(name)
	build, ok := protocolCatalog[kind]
	if !ok {
		return nil, fmt.Errorf("%w %q (accepted: %s)", ErrUnknownProtocol, name, strings.Join(ProtocolKinds(), ", "))
	}
	if rs, mode, ok := genSchedule(kind, net); ok {
		gen := gossip.CompileGen(rs, mode)
		if net.Implicit() {
			return &Protocol{Gen: gen, Period: gen.Period(), Mode: mode}, nil
		}
		return gen.Materialize(), nil
	}
	// Every remaining catalog construction reads explicit adjacency (or at
	// least the materialized vertex count the schedule is validated against).
	if err := net.needG("protocol " + kind + " on"); err != nil {
		return nil, err
	}
	return build(net, budget)
}

// UseProtocol adapts a named protocol from the catalog into a
// ProtocolBuilder for Sweep jobs.
func UseProtocol(name string, budget int) ProtocolBuilder {
	return func(net *Network) (*Protocol, error) {
		return NewProtocol(name, net, budget)
	}
}

// LoadProtocol reads a protocol from its schedule encoding (see
// SaveProtocol).
func LoadProtocol(r io.Reader) (*Protocol, error) { return gossip.Decode(r) }

// SaveProtocol writes the protocol's schedule encoding.
func SaveProtocol(w io.Writer, p *Protocol) error { return p.Encode(w) }
