// Differential coverage for the sources-aware broadcast scan: the packed
// 64-source kernel must reproduce the scalar per-source reference exactly
// — same reports, same errors, same trace — on every registered topology
// kind, on ragged multi-batch scans, on subsets, and for every worker
// count.
package systolic

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
)

// scanBoth runs AnalyzeBroadcastAll under both kernels with identical
// options and demands deep-equal reports (or identical failures).
func scanBoth(t *testing.T, net *Network, opts ...Option) *BroadcastAllReport {
	t.Helper()
	ctx := context.Background()
	packed, perr := AnalyzeBroadcastAll(ctx, net, opts...)
	scalar, serr := AnalyzeBroadcastAll(ctx, net, append(opts, WithScalarScan())...)
	if (perr == nil) != (serr == nil) {
		t.Fatalf("kernel disagreement on %s: packed err %v, scalar err %v", net.Name, perr, serr)
	}
	if perr != nil {
		if perr.Error() != serr.Error() {
			t.Fatalf("error parity broken on %s:\n  packed: %v\n  scalar: %v", net.Name, perr, serr)
		}
		return nil
	}
	if !reflect.DeepEqual(packed, scalar) {
		t.Fatalf("kernel disagreement on %s:\n  packed: %+v\n  scalar: %+v", net.Name, packed, scalar)
	}
	return packed
}

// TestBroadcastScanDifferentialAllKinds: for every registered kind the
// packed scan equals the scalar reference — full scans and a small subset
// — and every measured round count is the source's directed eccentricity.
func TestBroadcastScanDifferentialAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		params, ok := smallParams[kind]
		if !ok {
			t.Errorf("registered kind %q has no scan coverage — add it to smallParams", kind)
			continue
		}
		t.Run(kind, func(t *testing.T) {
			net, err := New(kind, params...)
			if err != nil {
				t.Fatalf("building %s: %v", kind, err)
			}
			n := net.G.N()
			full := scanBoth(t, net)
			if full == nil {
				t.Fatal("full scan failed")
			}
			if len(full.Rounds) != n || full.Sources != nil {
				t.Fatalf("full scan shape: %d rounds, sources %v", len(full.Rounds), full.Sources)
			}
			for v := 0; v < n; v++ {
				if ecc := net.G.Eccentricity(v); full.Rounds[v] != ecc {
					t.Errorf("source %d: measured %d rounds, eccentricity %d", v, full.Rounds[v], ecc)
				}
			}
			sub := scanBoth(t, net, WithSources([]int{n - 1, 0}))
			if sub == nil {
				t.Fatal("subset scan failed")
			}
			if !reflect.DeepEqual(sub.Sources, []int{n - 1, 0}) {
				t.Fatalf("subset sources = %v", sub.Sources)
			}
			if sub.Rounds[0] != full.Rounds[n-1] || sub.Rounds[1] != full.Rounds[0] {
				t.Errorf("subset rows %v disagree with full rows (%d, %d)",
					sub.Rounds, full.Rounds[n-1], full.Rounds[0])
			}
		})
	}
}

// TestBroadcastScanMultiBatchRagged: scans spanning several packed batches
// with a ragged final batch (sources % 64 != 0) stay kernel- and
// worker-count-independent.
func TestBroadcastScanMultiBatchRagged(t *testing.T) {
	net, err := New("cycle", Nodes(150)) // 3 batches: 64 + 64 + 22
	if err != nil {
		t.Fatal(err)
	}
	serial := scanBoth(t, net, WithWorkers(1))
	parallel := scanBoth(t, net, WithWorkers(5))
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("worker count changed the report:\n  serial:   %+v\n  parallel: %+v", serial, parallel)
	}
	if serial.Worst != 75 || serial.Best != 75 || serial.MeanRounds != 75 {
		t.Fatalf("cycle eccentricities: %+v", serial)
	}
	if len(serial.Histogram) != 1 || serial.Histogram[0] != (RoundsBucket{Rounds: 75, Count: 150}) {
		t.Fatalf("histogram = %v, want one bucket of 150 sources at 75 rounds", serial.Histogram)
	}

	// A ragged subset (70 sources = 64 + 6) in non-monotone order.
	hc, err := New("hypercube", Dimension(8))
	if err != nil {
		t.Fatal(err)
	}
	sub := make([]int, 70)
	for i := range sub {
		sub[i] = (37 * i) % hc.G.N() // distinct mod 256: gcd(37, 256) = 1
	}
	rep := scanBoth(t, hc, WithSources(sub), WithWorkers(3))
	if rep == nil {
		t.Fatal("ragged subset scan failed")
	}
	for i, s := range sub {
		if rep.Rounds[i] != 8 {
			t.Errorf("source %d: %d rounds, want the hypercube diameter 8", s, rep.Rounds[i])
		}
	}
}

// TestBroadcastScanSubsetEqualsFull: a subset scan is exactly the
// corresponding rows of the full scan, with extremes and statistics
// recomputed over the subset only.
func TestBroadcastScanSubsetEqualsFull(t *testing.T) {
	net, err := New("tree", Degree(2), Depth(3))
	if err != nil {
		t.Fatal(err)
	}
	full := scanBoth(t, net)
	sub := scanBoth(t, net, WithSources([]int{6, 0, 11}))
	for i, s := range []int{6, 0, 11} {
		if sub.Rounds[i] != full.Rounds[s] {
			t.Errorf("subset row %d (source %d) = %d, full scan has %d", i, s, sub.Rounds[i], full.Rounds[s])
		}
	}
	count := 0
	for _, b := range sub.Histogram {
		count += b.Count
	}
	if count != 3 {
		t.Errorf("subset histogram covers %d sources, want 3: %v", count, sub.Histogram)
	}
	if sub.Rounds[0] > sub.Worst || sub.Best > sub.Worst {
		t.Errorf("subset extremes inconsistent: %+v", sub)
	}
}

// TestBroadcastScanBadSources: WithSources validation fails with
// ErrBadParam before either kernel runs.
func TestBroadcastScanBadSources(t *testing.T) {
	net, err := New("cycle", Nodes(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, sources := range map[string][]int{
		"empty":        {},
		"negative":     {-1},
		"out-of-range": {5},
		"duplicate":    {1, 3, 1},
	} {
		for _, kernel := range []Option{func(*config) {}, WithScalarScan()} {
			if _, err := AnalyzeBroadcastAll(ctx, net, WithSources(sources), kernel); !errors.Is(err, ErrBadParam) {
				t.Errorf("%s sources: err = %v, want ErrBadParam", name, err)
			}
		}
	}
}

// TestBroadcastScanErrorParity pins both kernels to the exact same error
// text — not merely the same sentinel — for budget truncation and for a
// stalled (unreachable) frontier, including the productive-round count the
// unreachable message carries.
func TestBroadcastScanErrorParity(t *testing.T) {
	ctx := context.Background()

	path, err := New("path", Nodes(6))
	if err != nil {
		t.Fatal(err)
	}
	_, perr := AnalyzeBroadcastAll(ctx, path, WithRoundBudget(2))
	_, serr := AnalyzeBroadcastAll(ctx, path, WithRoundBudget(2), WithScalarScan())
	if perr == nil || serr == nil || perr.Error() != serr.Error() {
		t.Fatalf("truncated-scan parity:\n  packed: %v\n  scalar: %v", perr, serr)
	}
	if !errors.Is(perr, ErrIncomplete) {
		t.Fatalf("truncated scan: err = %v, want ErrIncomplete", perr)
	}

	// 0 → 1 → 2 with no return arcs: source 1 reaches only vertex 2, and
	// its frontier stalls after exactly 1 productive round.
	g := graph.New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	oneway := Plain("one-way-path", g)
	_, perr = AnalyzeBroadcastAll(ctx, oneway)
	_, serr = AnalyzeBroadcastAll(ctx, oneway, WithScalarScan())
	if perr == nil || serr == nil || perr.Error() != serr.Error() {
		t.Fatalf("unreachable-scan parity:\n  packed: %v\n  scalar: %v", perr, serr)
	}
	if !errors.Is(perr, ErrUnreachable) || errors.Is(perr, ErrIncomplete) {
		t.Fatalf("stalled scan: err = %v, want ErrUnreachable and not ErrIncomplete", perr)
	}
	want := "systolic: source cannot reach every vertex: broadcast-all on one-way-path from source 1 (frontier stalled after 1 rounds)"
	if perr.Error() != want {
		t.Fatalf("stalled scan message:\n  got  %q\n  want %q", perr, want)
	}
}

// scanTrace records the ScanRound stream; safe for concurrent batches.
type scanTrace struct {
	mu     sync.Mutex
	rounds int // plain Observer fallback calls
	events []scanEvent
}

type scanEvent struct{ batch, round, cols, total int }

func (tr *scanTrace) Round(round, knowledge, target int) {
	tr.mu.Lock()
	tr.rounds++
	tr.mu.Unlock()
}

func (tr *scanTrace) ScanRound(batch, round, cols, total int) {
	tr.mu.Lock()
	tr.events = append(tr.events, scanEvent{batch, round, cols, total})
	tr.mu.Unlock()
}

// TestBroadcastScanTraceSeam: a ScanObserver sees per-batch progress from
// both kernels — monotone informed columns per batch, each batch ending at
// lanes × n columns — and the packed kernel emits each (batch, round)
// exactly once. A plain Observer still receives Round calls.
func TestBroadcastScanTraceSeam(t *testing.T) {
	net, err := New("hypercube", Dimension(7)) // 128 vertices: two full batches
	if err != nil {
		t.Fatal(err)
	}
	n := net.G.N()
	for _, kernel := range []struct {
		name string
		opt  Option
	}{
		{"packed", func(*config) {}},
		{"scalar", WithScalarScan()},
	} {
		t.Run(kernel.name, func(t *testing.T) {
			tr := &scanTrace{}
			if _, err := AnalyzeBroadcastAll(context.Background(), net, WithTrace(tr), WithWorkers(2), kernel.opt); err != nil {
				t.Fatal(err)
			}
			if tr.rounds != 0 {
				t.Fatalf("ScanObserver also received %d plain Round calls", tr.rounds)
			}
			perBatch := map[int][]scanEvent{}
			for _, ev := range tr.events {
				perBatch[ev.batch] = append(perBatch[ev.batch], ev)
			}
			if len(perBatch) != 2 {
				t.Fatalf("saw batches %v, want exactly {0, 1}", perBatch)
			}
			for batch, evs := range perBatch {
				sort.Slice(evs, func(i, j int) bool {
					if evs[i].round != evs[j].round {
						return evs[i].round < evs[j].round
					}
					return evs[i].cols < evs[j].cols
				})
				last := evs[len(evs)-1]
				if last.total != gossip.PackedLanes*n || last.cols != last.total {
					t.Fatalf("batch %d ends at %d/%d columns, want %d/%d",
						batch, last.cols, last.total, gossip.PackedLanes*n, gossip.PackedLanes*n)
				}
				if kernel.name == "packed" {
					prev := scanEvent{round: 0, cols: gossip.PackedLanes} // sources start informed
					for _, ev := range evs {
						if ev.round != prev.round+1 || ev.cols < prev.cols {
							t.Fatalf("batch %d: packed trace not a monotone once-per-round stream: %v after %v", batch, ev, prev)
						}
						prev = ev
					}
				}
			}
		})
	}

	// Plain observers get the Round fallback from both kernels.
	for _, opt := range []Option{func(*config) {}, WithScalarScan()} {
		calls := 0
		obs := ObserverFunc(func(round, knowledge, target int) { calls++ })
		if _, err := AnalyzeBroadcastAll(context.Background(), net, WithTrace(obs), WithWorkers(1), opt); err != nil {
			t.Fatal(err)
		}
		if calls == 0 {
			t.Fatal("plain Observer received no Round calls from a scan")
		}
	}
}

// TestBroadcastAllBound pins the per-source certification floor the scan
// now evaluates in its summary pass: the c(d)·log₂n floor (its certified
// finite-n part) is computed once, every source's measured rounds are
// compared against it, and the report surfaces the extremes plus the first
// violating source. Both kernels and the sharded path must agree.
func TestBroadcastAllBound(t *testing.T) {
	ctx := context.Background()
	// Hypercube d=5: every eccentricity is 5 = ⌈log₂ 32⌉, so the floor is
	// met with equality from every source.
	net, err := New("hypercube", Dimension(5))
	if err != nil {
		t.Fatal(err)
	}
	var bounds []*BroadcastBound
	for _, opts := range [][]Option{nil, {WithScalarScan()}, {WithWorkers(4)}} {
		rep, err := AnalyzeBroadcastAll(ctx, net, opts...)
		if err != nil {
			t.Fatal(err)
		}
		b := rep.Bound
		if b == nil {
			t.Fatal("scan report carries no bound summary")
		}
		if b.Source != -1 || !b.Applicable || b.ScannedSources != 32 {
			t.Fatalf("bound header: %+v", b)
		}
		if b.MinRounds != rep.Best || b.MaxRounds != rep.Worst || b.MinRounds != 5 || b.MaxRounds != 5 {
			t.Fatalf("bound extremes %d..%d, scan %d..%d, want 5..5", b.MinRounds, b.MaxRounds, rep.Best, rep.Worst)
		}
		if !b.Respected || b.Violations != 0 || b.ViolatingSource != nil {
			t.Fatalf("hypercube floor should hold everywhere: %+v", b)
		}
		if b.CBound != 5 {
			t.Fatalf("certified floor %d, want 5", b.CBound)
		}
		bounds = append(bounds, b)
	}
	for i, b := range bounds[1:] {
		if *b != *bounds[0] {
			t.Fatalf("kernel %d bound diverges: %+v vs %+v", i+1, b, bounds[0])
		}
	}

	// Complete graph n=16: flooding reaches everyone in one round, below
	// the ⌈log₂ 16⌉ = 4 information floor of matching-model broadcast, so
	// every source violates and the first one is named.
	net, err = New("complete", Nodes(16))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeBroadcastAll(ctx, net)
	if err != nil {
		t.Fatal(err)
	}
	b := rep.Bound
	if b == nil || b.Respected || b.Violations != 16 {
		t.Fatalf("complete-graph scan should violate the floor everywhere: %+v", b)
	}
	if b.ViolatingSource == nil || *b.ViolatingSource != 0 {
		t.Fatalf("first violating source: %+v", b.ViolatingSource)
	}
	if b.MinRounds != 1 || b.MaxRounds != 1 || b.CBound != 4 {
		t.Fatalf("complete-graph extremes %d..%d floor %d, want 1..1 floor 4", b.MinRounds, b.MaxRounds, b.CBound)
	}
}
