package systolic

import (
	"testing"

	"repro/internal/topology"
)

func TestRegisterDuplicatePanics(t *testing.T) {
	b := Builder{Params: []string{ParamNodes}, Build: func(p Params) (*Network, error) {
		n, err := p.atLeast("star-test", ParamNodes, 2)
		if err != nil {
			return nil, err
		}
		return Plain("star-test", topology.Star(n)), nil
	}}
	Register("star-test-dup", b)
	t.Cleanup(func() { unregister("star-test-dup") })
	defer func() {
		if recover() == nil {
			t.Fatal("second Register of the same kind did not panic")
		}
	}()
	Register("star-test-dup", b)
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with empty name did not panic")
		}
	}()
	Register("  ", Builder{Build: func(Params) (*Network, error) { return nil, nil }})
}

func TestRegisterNilBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with nil build did not panic")
		}
	}()
	Register("nil-build-test", Builder{Params: []string{ParamNodes}})
}

func TestRegisterThirdPartyTopology(t *testing.T) {
	t.Cleanup(func() { unregister("star-test") })
	Register("star-test", Builder{Params: []string{ParamNodes}, Build: func(p Params) (*Network, error) {
		n, err := p.atLeast("star-test", ParamNodes, 2)
		if err != nil {
			return nil, err
		}
		return Plain("star-test", topology.Star(n)), nil
	}})
	net, err := New("star-test", Nodes(7))
	if err != nil {
		t.Fatal(err)
	}
	if net.G.N() != 7 {
		t.Errorf("star N = %d, want 7", net.G.N())
	}
	if net.FamilyKnown {
		t.Error("unclassified topology claims a paper family")
	}
	top, ok := Lookup("STAR-TEST") // lookup is case-insensitive
	if !ok {
		t.Fatal("Lookup failed for registered kind")
	}
	if top.Kind() != "star-test" {
		t.Errorf("Kind() = %q", top.Kind())
	}
	if names := top.ParamNames(); len(names) != 1 || names[0] != ParamNodes {
		t.Errorf("ParamNames() = %v", names)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-kind"); ok {
		t.Error("Lookup returned ok for unknown kind")
	}
}

func TestParamsGet(t *testing.T) {
	p := MakeParams(Degree(2), Diameter(5))
	if v, ok := p.Get(ParamDegree); !ok || v != 2 {
		t.Errorf("Get(degree) = %d, %v", v, ok)
	}
	if _, ok := p.Get(ParamNodes); ok {
		t.Error("Get(nodes) reported an unset parameter as set")
	}
}
