package systolic

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/gossip"
)

// CheckpointVersion is the schema version written into checkpoints; Restore
// rejects any other value.
const CheckpointVersion = 1

// Checkpoint is a JSON-serializable snapshot of a session mid-flight. It
// carries the simulation state, not the inputs: restoring requires
// reconstructing the session with the same network and protocol first (use
// SaveProtocol/LoadProtocol to persist a schedule alongside a checkpoint).
// The golden test testdata/checkpoint.golden.json pins this schema.
type Checkpoint struct {
	// Version is the checkpoint schema version (CheckpointVersion).
	Version int `json:"version"`
	// Network names the network the session ran on; Restore cross-checks it.
	Network string `json:"network"`
	// Mode is "gossip" or "broadcast".
	Mode string `json:"mode"`
	// N is the processor count; the state payload length derives from it.
	N int `json:"n"`
	// Source is the broadcast source, or -1 for gossip sessions.
	Source int `json:"source"`
	// Round is the number of executed rounds.
	Round int `json:"round"`
	// Done records whether dissemination had completed.
	Done bool `json:"done"`
	// Knowledge is the total knowledge at snapshot time; Restore verifies it
	// against the decoded state as an integrity check.
	Knowledge int `json:"knowledge"`
	// Protocol fingerprints the schedule the session was executing (mode,
	// period and every round's arcs); Restore rejects a checkpoint taken
	// under a different protocol, since resuming a state under another
	// schedule would silently produce meaningless measurements.
	Protocol string `json:"protocol_fp"`
	// Frontier is the per-round newly-informed count history.
	Frontier []int `json:"frontier"`
	// State is the base64 encoding of the knowledge sets: little-endian
	// uint64 words, ⌈n/64⌉ words per vertex for gossip, a single ⌈n/64⌉-word
	// vertex bitset for broadcast.
	State string `json:"state_b64"`
}

const (
	checkpointModeGossip    = "gossip"
	checkpointModeBroadcast = "broadcast"
)

// scheduleFingerprint returns the fingerprint of the schedule the session
// executes, whichever IR backs it: the generator program streams its hash,
// a CSR program reports the compiled protocol's. The two coincide for the
// same schedule, so checkpoints move freely between the forms.
func (s *Session) scheduleFingerprint() string {
	if s.grun != nil {
		return s.grun.Program().Fingerprint()
	}
	return s.prog.Fingerprint()
}

// Snapshot captures the session's current state as a checkpoint. The
// session can keep stepping afterwards; the checkpoint is independent.
func (s *Session) Snapshot() *Checkpoint {
	c := &Checkpoint{
		Version:   CheckpointVersion,
		Network:   s.net.Name,
		Mode:      checkpointModeGossip,
		N:         s.net.N(),
		Source:    -1,
		Round:     s.round,
		Done:      s.done,
		Knowledge: s.Knowledge(),
		Protocol:  s.scheduleFingerprint(),
		Frontier:  s.Frontier(),
	}
	var payload []byte
	if s.broadcast {
		c.Mode = checkpointModeBroadcast
		c.Source = s.source
		payload = s.fr.Export()
	} else {
		payload = s.st.Export()
	}
	c.State = base64.StdEncoding.EncodeToString(payload)
	return c
}

// Restore loads a checkpoint into the session, replacing its state, round
// counter and frontier history. The checkpoint must come from a session of
// the same mode on the same network (name and size are cross-checked, as is
// the knowledge count against the decoded state). Stepping after a
// successful Restore resumes deterministically. Restore is atomic: the
// checkpoint is decoded and validated into a scratch state first, so a
// failed Restore leaves the session exactly as it was.
func (s *Session) Restore(c *Checkpoint) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadCheckpoint, c.Version, CheckpointVersion)
	}
	mode := checkpointModeGossip
	if s.broadcast {
		mode = checkpointModeBroadcast
	}
	if c.Mode != mode {
		return fmt.Errorf("%w: checkpoint is for %s, session is %s", ErrBadCheckpoint, c.Mode, mode)
	}
	if c.N != s.net.N() {
		return fmt.Errorf("%w: checkpoint has n=%d, network %s has n=%d", ErrBadCheckpoint, c.N, s.net.Name, s.net.N())
	}
	if c.Network != s.net.Name {
		return fmt.Errorf("%w: checkpoint is for network %q, session runs on %q", ErrBadCheckpoint, c.Network, s.net.Name)
	}
	if s.broadcast && c.Source != s.source {
		return fmt.Errorf("%w: checkpoint broadcasts from %d, session from %d", ErrBadCheckpoint, c.Source, s.source)
	}
	if fp := s.scheduleFingerprint(); c.Protocol != fp {
		return fmt.Errorf("%w: checkpoint was taken under protocol %s, session runs %s", ErrBadCheckpoint, c.Protocol, fp)
	}
	if c.Round < 0 {
		return fmt.Errorf("%w: negative round %d", ErrBadCheckpoint, c.Round)
	}
	payload, err := base64.StdEncoding.DecodeString(c.State)
	if err != nil {
		return fmt.Errorf("%w: state: %w", ErrBadCheckpoint, err)
	}
	// Decode into scratch backends; the session is only touched once every
	// check below has passed.
	n := s.net.N()
	var (
		st       *gossip.State
		fr       *gossip.FrontierState
		know     int
		complete bool
	)
	if s.broadcast {
		fr = gossip.NewFrontierState(n, s.source)
		if err := fr.Import(payload); err != nil {
			return fmt.Errorf("%w: state: %w", ErrBadCheckpoint, err)
		}
		know, complete = fr.InformedCount(), fr.Complete()
	} else {
		st = gossip.NewState(n)
		if err := st.Import(payload); err != nil {
			return fmt.Errorf("%w: state: %w", ErrBadCheckpoint, err)
		}
		know, complete = st.TotalKnowledge(), st.GossipComplete()
	}
	if know != c.Knowledge {
		return fmt.Errorf("%w: knowledge %d does not match its state (%d)", ErrBadCheckpoint, c.Knowledge, know)
	}
	if complete != c.Done {
		return fmt.Errorf("%w: done=%v does not match its state", ErrBadCheckpoint, c.Done)
	}
	// The frontier history must cover exactly the executed rounds and sum
	// to the knowledge the state decodes to (Session.Frontier's invariant).
	if len(c.Frontier) != c.Round {
		return fmt.Errorf("%w: frontier has %d entries for %d rounds", ErrBadCheckpoint, len(c.Frontier), c.Round)
	}
	initial := n // gossip: every processor starts knowing its own item
	if s.broadcast {
		initial = 1
	}
	sum := initial
	for _, gained := range c.Frontier {
		sum += gained
	}
	if sum != know {
		return fmt.Errorf("%w: frontier sums to %d, state knows %d", ErrBadCheckpoint, sum, know)
	}
	if s.broadcast {
		s.fr = fr
	} else {
		st.UsePool(s.pool)
		s.st = st
	}
	s.round = c.Round
	s.frontier = append(s.frontier[:0], c.Frontier...)
	s.done = complete
	return nil
}

// WriteCheckpoint writes the checkpoint as indented JSON, the on-disk
// format of gossipsim -checkpoint.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("systolic: reading checkpoint: %w", err)
	}
	return &c, nil
}
