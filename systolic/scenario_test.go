// Scenario-engine coverage at the public layer: the zero-cost contract
// (inactive scenarios are byte-identical to the deterministic path on
// every registered kind × mode), the acceptance workload (hypercube d=10
// under 5% loss), seed reproducibility, worker-count independence, and
// budget truncation reported as statistics rather than failure.
package systolic

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/gossip"
	"repro/internal/scenario"
)

// TestScenarioInactiveDifferentialAllKinds pins the "zero-cost when
// unused" contract across every registered topology kind and catalog
// protocol: a scenario with loss=0, no crashes, and no deleted arcs must
// execute byte-identically to the deterministic compiled path, round by
// round — seed included, because an inactive scenario never draws from
// its PRNG.
func TestScenarioInactiveDifferentialAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		params, ok := smallParams[kind]
		if !ok {
			t.Errorf("registered kind %q has no scenario coverage — add it to smallParams", kind)
			continue
		}
		for _, mp := range modeProtocols {
			t.Run(kind+"/"+mp.protocol, func(t *testing.T) {
				net, err := New(kind, params...)
				if err != nil {
					t.Fatalf("building %s: %v", kind, err)
				}
				if mp.symmetricOnly && !net.G.IsSymmetric() {
					t.Skip("symmetric-only protocol on a directed kind")
				}
				p, err := NewProtocol(mp.protocol, net, DefaultRoundBudget)
				if err != nil {
					t.Fatalf("building %s: %v", mp.protocol, err)
				}
				prog, err := CompileProtocol(net, p)
				if err != nil {
					t.Fatal(err)
				}
				n := net.G.N()
				sc := &Scenario{Seed: 99}
				comp, err := scenario.Compile(sc.spec(), n)
				if err != nil {
					t.Fatal(err)
				}
				if comp.Active() {
					t.Fatal("inactive scenario compiled active")
				}
				ref := gossip.NewState(n)
				got := gossip.NewState(n)
				tr := comp.Trial(0)
				for r := 0; !ref.GossipComplete(); r++ {
					if r >= DefaultRoundBudget {
						t.Fatal("reference run exhausted the budget")
					}
					ref.StepProgram(prog.prog, r)
					tr.Step(got, prog.prog, r)
					if !bytes.Equal(ref.Export(), got.Export()) {
						t.Fatalf("round %d: inactive scenario diverged from deterministic path", r)
					}
				}
				if !got.GossipComplete() {
					t.Fatal("scenario run did not complete with the deterministic path")
				}
			})
		}
	}
}

// TestCertifyScenarioInactiveDegenerate: with no faults every trial is the
// deterministic run, so the distribution collapses to a point equal to the
// deterministic measurement.
func TestCertifyScenarioInactiveDegenerate(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyScenario(context.Background(), net, p, &Scenario{Seed: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	det := cert.Deterministic
	if det == nil || !det.Complete {
		t.Fatal("missing or incomplete deterministic baseline")
	}
	s := cert.Trials
	if s.Completed != 8 || s.Truncated != 0 {
		t.Fatalf("completed/truncated = %d/%d, want 8/0", s.Completed, s.Truncated)
	}
	if s.MinRounds != det.Measured || s.MaxRounds != det.Measured ||
		s.P50 != det.Measured || s.P99 != det.Measured {
		t.Fatalf("inactive distribution not degenerate at %d: %+v", det.Measured, s)
	}
	if s.MeanRounds != float64(det.Measured) || cert.MeanDriftRounds != 0 {
		t.Fatalf("inactive mean drifted: mean %v, drift %v", s.MeanRounds, cert.MeanDriftRounds)
	}
}

// TestCertifyScenarioHypercubeAcceptance is the issue's acceptance
// workload: hypercube d=10 under 5% uniform loss, 256 trials. The median
// must respect the deterministic lower bound, every trial must complete
// under the default budget, and the faulty mean must not beat the
// fault-free measurement.
func TestCertifyScenarioHypercubeAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("256-trial Monte-Carlo acceptance run; nightly CI covers it")
	}
	net, err := New("hypercube", Dimension(10))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-full", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyScenario(context.Background(), net, p, &Scenario{Loss: 0.05, Seed: 1}, 256)
	if err != nil {
		t.Fatal(err)
	}
	s := cert.Trials
	if s.Completed != 256 {
		t.Fatalf("only %d/256 trials completed (budget %d)", s.Completed, cert.Budget)
	}
	if s.P50 < cert.LowerBound.Rounds {
		t.Fatalf("p50 %d below the deterministic lower bound %d", s.P50, cert.LowerBound.Rounds)
	}
	if !cert.BoundRespected {
		t.Fatal("BoundRespected is false with p50 above the bound")
	}
	if cert.MeanDriftRounds < 0 {
		t.Fatalf("lossy executions finished faster than deterministic: drift %v", cert.MeanDriftRounds)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.MinRounds > s.P50 || s.P99 > s.MaxRounds {
		t.Fatalf("quantiles out of order: %+v", s)
	}
}

// TestCertifyScenarioSeedReproducibility: identical seeds reproduce
// identical distributions — fingerprint and all — independent of the
// worker count; a different seed moves the fingerprint.
func TestCertifyScenarioSeedReproducibility(t *testing.T) {
	net, err := New("hypercube", Dimension(6))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-full", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileProtocol(net, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sc := &Scenario{Loss: 0.2, Seed: 1234}
	a, err := CertifyScenarioProgram(ctx, prog, sc, 64, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CertifyScenarioProgram(ctx, prog, sc, 64, WithWorkers(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Trials != b.Trials {
		t.Fatalf("distribution depends on worker count:\n%+v\n%+v", a.Trials, b.Trials)
	}
	c, err := CertifyScenarioProgram(ctx, prog, &Scenario{Loss: 0.2, Seed: 1235}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trials.DistributionFP == a.Trials.DistributionFP {
		t.Fatal("different seeds produced an identical distribution fingerprint")
	}
}

// TestCertifyScenarioTruncation: trials that exhaust the round budget are
// censored into the statistics — never an error (the satellite contract
// the serve layer's async jobs rely on).
func TestCertifyScenarioTruncation(t *testing.T) {
	net, err := New("debruijn", Degree(2), Diameter(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("periodic-half", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyScenario(context.Background(), net, p, &Scenario{Loss: 0.1, Seed: 3}, 16, WithRoundBudget(2))
	if err != nil {
		t.Fatalf("budget truncation must not fail the certification: %v", err)
	}
	s := cert.Trials
	if s.Truncated != 16 || s.Completed != 0 {
		t.Fatalf("truncated/completed = %d/%d, want 16/0", s.Truncated, s.Completed)
	}
	if s.MaxRounds != 2 || s.MinRounds != 2 {
		t.Fatalf("censored rounds %d..%d, want 2..2", s.MinRounds, s.MaxRounds)
	}
	if s.CompletionRate != 0 {
		t.Fatalf("completion rate %v, want 0", s.CompletionRate)
	}
	if cert.Deterministic == nil || cert.Deterministic.Complete {
		t.Fatal("deterministic baseline should also be truncated at budget 2")
	}
}

// TestCertifyScenarioValidation: bad trial counts and malformed fault
// models are ErrBadParam, not panics or silent clamps.
func TestCertifyScenarioValidation(t *testing.T) {
	net, err := New("cycle", Nodes(7))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProtocol("round-robin", net, DefaultRoundBudget)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name   string
		sc     *Scenario
		trials int
	}{
		{"zero-trials", &Scenario{}, 0},
		{"too-many-trials", &Scenario{}, MaxScenarioTrials + 1},
		{"bad-loss", &Scenario{Loss: 1.5}, 4},
		{"bad-crash-node", &Scenario{Crashes: []CrashWindow{{Node: 99, From: 0, To: 4}}}, 4},
		{"bad-deleted-arc", &Scenario{DeleteArcs: [][2]int{{0, 42}}}, 4},
	}
	for _, tc := range cases {
		if _, err := CertifyScenario(ctx, net, p, tc.sc, tc.trials); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
