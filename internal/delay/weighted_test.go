package delay

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func TestWeightedDistancesUnit(t *testing.T) {
	g := topology.Path(5)
	w := graph.UnitWeights(g)
	dist := g.WeightedDistances(0, w)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if g.WeightedDiameter(w) != 4 {
		t.Errorf("weighted diameter = %d, want 4", g.WeightedDiameter(w))
	}
}

func TestWeightedDistancesNonUnit(t *testing.T) {
	// 0 -> 1 -> 2 with weights 5, 1, plus direct 0 -> 2 with weight 10:
	// Dijkstra must prefer 0->1->2 (6) over 0->2 (10).
	g := graph.New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(0, 2)
	w := graph.Weights{
		{From: 0, To: 1}: 5,
		{From: 1, To: 2}: 1,
		{From: 0, To: 2}: 10,
	}
	dist := g.WeightedDistances(0, w)
	if dist[2] != 6 {
		t.Errorf("dist[2] = %d, want 6", dist[2])
	}
}

func TestWeightsValidate(t *testing.T) {
	g := graph.New(2)
	g.AddArc(0, 1)
	if err := (graph.Weights{}).Validate(g); err == nil {
		t.Error("missing weight accepted")
	}
	if err := (graph.Weights{{From: 0, To: 1}: 0}).Validate(g); err == nil {
		t.Error("zero weight accepted")
	}
	if err := (graph.Weights{{From: 0, To: 1}: 3}).Validate(g); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
}

// TestWeightedDiameterBoundSound: the Section 7 bound never exceeds the true
// weighted diameter, on a variety of weighted digraphs.
func TestWeightedDiameterBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := []struct {
		name string
		g    *graph.Digraph
	}{
		{"directed cycle", topology.DirectedCycle(12)},
		{"de Bruijn", topology.NewDeBruijnDigraph(2, 5).G},
		{"Kautz", topology.NewKautzDigraph(2, 4).G},
		{"complete", topology.Complete(8)},
	}
	for _, c := range cases {
		for trial := 0; trial < 3; trial++ {
			w := make(graph.Weights)
			for _, a := range c.g.Arcs() {
				w[a] = 1 + rng.Intn(4)
			}
			trueDiam := c.g.WeightedDiameter(w)
			if trueDiam == graph.Unreached {
				t.Fatalf("%s: not strongly connected", c.name)
			}
			bound, lam, err := BestWeightedDiameterBound(c.g, w)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if bound > trueDiam {
				t.Errorf("%s trial %d: bound %d exceeds true diameter %d (λ=%g)",
					c.name, trial, bound, trueDiam, lam)
			}
		}
	}
}

// TestWeightedDiameterBoundInformative: on the unit-weight de Bruijn digraph
// the bound must recover a constant fraction of the true diameter D
// (the technique is designed for exactly this expander-like regime).
func TestWeightedDiameterBoundInformative(t *testing.T) {
	db := topology.NewDeBruijnDigraph(2, 7)
	w := graph.UnitWeights(db.G)
	bound, _, err := BestWeightedDiameterBound(db.G, w)
	if err != nil {
		t.Fatal(err)
	}
	trueDiam := 7 // diameter of DB(2,D) is D
	if bound < trueDiam/2 {
		t.Errorf("bound %d too weak vs true diameter %d", bound, trueDiam)
	}
	if bound > trueDiam {
		t.Errorf("bound %d exceeds true diameter %d", bound, trueDiam)
	}
}

func TestWeightMatrixValues(t *testing.T) {
	g := graph.New(2)
	g.AddArc(0, 1)
	w := graph.Weights{{From: 0, To: 1}: 3}
	W, err := WeightMatrix(g, w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := W.At(0, 1); got != 0.125 {
		t.Errorf("W[0][1] = %g, want 0.125", got)
	}
	if _, err := WeightMatrix(g, w, 1.5); err == nil {
		t.Error("λ out of range accepted")
	}
}

func TestWeightedDiameterBoundDegenerate(t *testing.T) {
	// With λ too large (ρ ≥ 1) the bound must be reported uninformative.
	k := topology.Complete(6)
	w := graph.UnitWeights(k)
	v, err := WeightedDiameterBound(k, w, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("expected degenerate bound, got %g", v)
	}
}
