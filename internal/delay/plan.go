package delay

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/matrix"
)

// Plan is the compiled delay lowering of one protocol: the per-round
// activation structure of the delay digraph (Definition 3.3) derived from
// the schedule once, from which the digraph of any executed round count T
// instantiates without re-walking or re-validating the protocol.
//
// For an s-systolic protocol the digraph is periodic — execution round
// i = q·s + r activates exactly the explicit round r, and every delay arc
// (x,y,i) → (y,z,j) has 1 ≤ j−i < s, so it either stays within repetition q
// (a later round of the same period) or crosses into repetition q+1 (an
// earlier round of the next period). The plan therefore stores, per
// activation, the two segments of its head vertex's outgoing activations —
// the same-repetition suffix and the next-repetition prefix — and
// instantiation replays them per repetition in O(verts + arcs), never
// touching the protocol again. Finite protocols (the s→∞ reading of the
// corollaries, horizon = T) store the same per-vertex activation lists and
// instantiate by suffix alone.
//
// Instances are memoized by round count: a serving layer certifying the
// same protocol repeatedly reuses one instance, whose M(λ) evaluations (the
// Theorem 4.1 checks and the λ loops of the root finders) run against a
// fixed CSR structure with zero steady-state allocations. A Plan and its
// Instances are safe for concurrent use.
type Plan struct {
	n      int // network vertices
	period int // systolic period; 0 = finite schedule
	rounds int // explicit rounds (one period for a systolic protocol)

	acts     []Activation // explicit rounds' activations, round-major
	actStart []int32      // len rounds+1: per-round prefix counts into acts
	outAt    [][]int32    // per network vertex: indices into acts of activations leaving it, ascending

	// Per activation a entering vertex v at explicit round r:
	// outAt[v][sufStart[a]:] are the later-round activations (same
	// repetition, weight rb−r) and outAt[v][:prefEnd[a]] the earlier-round
	// ones (next repetition, weight s+rb−r). Same-round activations sit
	// between the two segments and contribute no delay arc (their weight
	// would be 0 or s, outside [1, s)).
	sufStart []int32
	prefEnd  []int32

	mu      sync.Mutex
	insts   map[int]*Instance
	instAge []int // round counts in insertion order, oldest first
}

// maxMemoInstances bounds the per-plan instance memo. A certification
// workload revisits one round count (the completion time) plus at most a
// few truncation budgets; a budget scan over one shared plan must recompute
// instead of retaining every unrolled digraph forever.
const maxMemoInstances = 8

// NewPlan validates p on g and compiles its delay lowering. The work is
// O(activations·log) once; every Instance call afterwards skips the
// protocol entirely.
func NewPlan(g *graph.Digraph, p *gossip.Protocol) (*Plan, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	return NewPlanValidated(g, p)
}

// NewPlanValidated compiles the delay lowering of a protocol the caller has
// already validated against g — the compiled-Program path, whose schedule
// passed Validate at compile time, uses it to skip the duplicate
// O(rounds × arcs) validation walk. Behavior is otherwise identical to
// NewPlan.
func NewPlanValidated(g *graph.Digraph, p *gossip.Protocol) (*Plan, error) {
	rounds := p.Len()
	if p.Systolic() {
		if p.Period > rounds {
			return nil, fmt.Errorf("delay: systolic period %d exceeds %d explicit rounds", p.Period, rounds)
		}
		rounds = p.Period
	}
	pl := &Plan{
		n:        g.N(),
		period:   p.Period,
		rounds:   rounds,
		actStart: make([]int32, 1, rounds+1),
		outAt:    make([][]int32, g.N()),
	}
	for r := 0; r < rounds; r++ {
		for _, a := range p.Round(r) {
			pl.acts = append(pl.acts, Activation{From: a.From, To: a.To, Round: r})
		}
		pl.actStart = append(pl.actStart, int32(len(pl.acts)))
	}
	for idx, act := range pl.acts {
		pl.outAt[act.From] = append(pl.outAt[act.From], int32(idx))
	}
	pl.sufStart = make([]int32, len(pl.acts))
	pl.prefEnd = make([]int32, len(pl.acts))
	for idx, act := range pl.acts {
		out := pl.outAt[act.To]
		r := act.Round
		pl.sufStart[idx] = int32(sort.Search(len(out), func(i int) bool {
			return pl.acts[out[i]].Round > r
		}))
		pl.prefEnd[idx] = int32(sort.Search(len(out), func(i int) bool {
			return pl.acts[out[i]].Round >= r
		}))
	}
	return pl, nil
}

// N returns the network vertex count the plan was compiled for.
func (pl *Plan) N() int { return pl.n }

// Period returns the systolic period (0 for a finite protocol).
func (pl *Plan) Period() int { return pl.period }

// Instance returns the delay digraph of the protocol executed for t rounds,
// in evaluation-ready compiled form. Instances are memoized per t (bounded
// to maxMemoInstances, oldest evicted first) and shared: the second
// certification of the same (protocol, rounds) pair pays nothing but a map
// lookup, while a scan over many round counts recomputes instead of
// retaining every unrolled digraph.
func (pl *Plan) Instance(t int) (*Instance, error) {
	if t <= 0 {
		return nil, fmt.Errorf("delay: nonpositive round count %d", t)
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if in, ok := pl.insts[t]; ok {
		return in, nil
	}
	in := pl.instantiate(t)
	if pl.insts == nil {
		pl.insts = make(map[int]*Instance)
	}
	if len(pl.instAge) >= maxMemoInstances {
		delete(pl.insts, pl.instAge[0])
		pl.instAge = append(pl.instAge[:0], pl.instAge[1:]...)
	}
	pl.insts[t] = in
	pl.instAge = append(pl.instAge, t)
	return in, nil
}

// instantiate unrolls the compiled activation structure for t executed
// rounds into a sorted CSR skeleton: rowPtr/colIdx plus the integer weight
// exponent of every delay arc. Row/column order is identical to Build's
// vertex numbering (round-major), so downstream matrices are bit-identical
// to the classic construction.
func (pl *Plan) instantiate(t int) *Instance {
	in := &Instance{plan: pl, t: t}
	if pl.period > 0 {
		in.horizon = pl.period
		pl.unrollSystolic(t, in)
	} else {
		in.horizon = t
		pl.unrollFinite(t, in)
	}
	in.vals = make([]float64, len(in.wExp))
	in.powTab = make([]float64, in.maxW+1)
	in.csr = matrix.NewCSRFromParts(in.verts, in.verts, in.rowPtr, in.colIdx, in.vals)
	return in
}

func (pl *Plan) unrollSystolic(t int, in *Instance) {
	A := len(pl.acts)
	s := pl.period
	full, rem := t/s, t%s
	in.verts = full*A + int(pl.actStart[rem])
	in.rowPtr = make([]int, 1, in.verts+1)
	for q := 0; q*s < t; q++ {
		lim := A
		if q == full {
			lim = int(pl.actStart[rem])
		}
		base := q * A
		for a := 0; a < lim; a++ {
			act := pl.acts[a]
			out := pl.outAt[act.To]
			r := act.Round
			for _, k := range out[pl.sufStart[a]:] {
				rb := pl.acts[k].Round
				if q*s+rb >= t {
					break // out is round-ascending; later entries only grow
				}
				in.push(base+int(k), rb-r)
			}
			for _, k := range out[:pl.prefEnd[a]] {
				rb := pl.acts[k].Round
				if (q+1)*s+rb >= t {
					break
				}
				in.push(base+A+int(k), s+rb-r)
			}
			in.rowPtr = append(in.rowPtr, len(in.colIdx))
		}
	}
}

func (pl *Plan) unrollFinite(t int, in *Instance) {
	tEff := t
	if tEff > pl.rounds {
		tEff = pl.rounds
	}
	in.verts = int(pl.actStart[tEff])
	in.rowPtr = make([]int, 1, in.verts+1)
	for a := 0; a < in.verts; a++ {
		act := pl.acts[a]
		out := pl.outAt[act.To]
		for _, k := range out[pl.sufStart[a]:] {
			if int(k) >= in.verts {
				break
			}
			in.push(int(k), pl.acts[k].Round-act.Round)
		}
		in.rowPtr = append(in.rowPtr, len(in.colIdx))
	}
}

// Instance is one delay digraph in compiled, evaluation-ready form: the CSR
// skeleton of M(λ) (Definition 3.4) with integer weight exponents, plus the
// preallocated value/power/power-iteration buffers every λ evaluation
// reuses. Recent norms are memoized, so re-certifying at the same root λ₀
// costs a lookup.
//
// Concurrency: Norm, MaxLocalNorm, Verts/Arcs and Digraph are safe for
// concurrent use (evaluations serialize on the instance mutex; Digraph
// returns fresh slices). Matrix and LocalBlocks return views that ALIAS the
// instance's shared storage — the values are valid only until the next
// Matrix/Norm/LocalBlocks/MaxLocalNorm call, and must not be read
// concurrently with any of them. Callers sharing an instance across
// goroutines (the serving layer does) should stick to the safe set.
type Instance struct {
	plan    *Plan
	t       int // executed rounds the instance was unrolled for
	horizon int // s for a systolic protocol, t for a finite one
	verts   int

	rowPtr []int
	colIdx []int
	wExp   []int32 // per arc: the exponent w with M[a][b] = λ^w
	maxW   int

	mu         sync.Mutex
	vals       []float64 // csr's value array, rewritten per λ
	csr        *matrix.CSR
	powTab     []float64 // powTab[w] = λ^w for powLambda
	powLambda  float64   // λ the power table currently encodes (0 = none yet)
	valsLambda float64   // λ the vals currently encode (0 = none yet)
	scratch    matrix.NormScratch

	memo    [normMemoSize]normMemo
	memoLen int
	memoPos int

	// Lazily built local-block structure (the Section 4 permutation
	// argument): one Dense per network vertex plus the flat entry list that
	// refills them per λ.
	blocks       []*matrix.Dense
	blockEntries []blockEntry
	blockScratch matrix.NormScratch
}

// normMemoSize bounds the per-instance ring of memoized ‖M(λ)‖ values —
// enough for the handful of roots a certification evaluates, irrelevant for
// grid scans (which recompute into the shared scratch anyway).
const normMemoSize = 8

type normMemo struct{ lambda, norm float64 }

type blockEntry struct {
	blk, row, col, w int32
}

func (in *Instance) push(col, w int) {
	in.colIdx = append(in.colIdx, col)
	in.wExp = append(in.wExp, int32(w))
	if w > in.maxW {
		in.maxW = w
	}
}

// T returns the executed round count the instance covers.
func (in *Instance) T() int { return in.t }

// Horizon returns the delay-arc horizon (the systolic period s, or T for a
// finite protocol — the s→∞ reading).
func (in *Instance) Horizon() int { return in.horizon }

// Verts returns the number of delay-digraph vertices (activations).
func (in *Instance) Verts() int { return in.verts }

// Arcs returns the number of delay arcs.
func (in *Instance) Arcs() int { return len(in.colIdx) }

//gossip:allowpanic domain guard: delay recurrences run on validated parameters; a violation is a programming error
func checkLambda(fn string, lambda float64) {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("delay: %s needs 0 < λ < 1, got %g", fn, lambda))
	}
}

// ensurePow fills the power table for λ with the same repeated-multiply
// sequence as powf, keeping values bit-identical to the classic Matrix.
func (in *Instance) ensurePow(lambda float64) {
	if in.powLambda == lambda {
		return
	}
	p := 1.0
	for w := range in.powTab {
		in.powTab[w] = p
		p *= lambda
	}
	in.powLambda = lambda
}

func (in *Instance) reweight(lambda float64) {
	if in.valsLambda == lambda {
		return
	}
	in.ensurePow(lambda)
	for k, w := range in.wExp {
		in.vals[k] = in.powTab[w]
	}
	in.valsLambda = lambda
}

// Matrix returns the delay matrix M(λ) of Definition 3.4 re-weighted in
// place over the instance's shared CSR skeleton. The returned matrix
// aliases instance storage: it is valid until the next Matrix/Norm call and
// must not be used concurrently with them. Callers needing an independent
// copy should go through Digraph().Matrix(λ).
func (in *Instance) Matrix(lambda float64) *matrix.CSR {
	checkLambda("Matrix", lambda)
	in.mu.Lock()
	defer in.mu.Unlock()
	in.reweight(lambda)
	return in.csr
}

// Norm returns ‖M(λ)‖₂ (bounded by Lemma 4.3 / 6.1 for systolic protocols).
// The evaluation reuses the instance's CSR values, power table and
// power-iteration scratch, so a λ loop performs zero steady-state
// allocations; recently evaluated λ are answered from a small memo.
func (in *Instance) Norm(lambda float64) float64 {
	checkLambda("Norm", lambda)
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := 0; i < in.memoLen; i++ {
		if in.memo[i].lambda == lambda {
			return in.memo[i].norm
		}
	}
	in.reweight(lambda)
	n := in.csr.Norm2Scratch(&in.scratch)
	in.memo[in.memoPos] = normMemo{lambda: lambda, norm: n}
	in.memoPos = (in.memoPos + 1) % normMemoSize
	if in.memoLen < normMemoSize {
		in.memoLen++
	}
	return n
}

// makeVerts materializes the activation list of the instance, round-major —
// exactly Build's vertex order.
func (in *Instance) makeVerts() []Activation {
	verts := make([]Activation, 0, in.verts)
	pl := in.plan
	if pl.period == 0 {
		return append(verts, pl.acts[:in.verts]...)
	}
	A := len(pl.acts)
	s := pl.period
	for q := 0; len(verts) < in.verts; q++ {
		lim := A
		if rest := in.verts - len(verts); rest < A {
			lim = rest
		}
		for a := 0; a < lim; a++ {
			act := pl.acts[a]
			act.Round += q * s
			verts = append(verts, act)
		}
	}
	return verts
}

// Digraph materializes the classic Definition 3.3 representation of the
// instance — the structure Build returns. Verts and Arcs are fresh slices
// the caller may keep.
func (in *Instance) Digraph() *Digraph {
	dg := &Digraph{
		Verts:   in.makeVerts(),
		Arcs:    make([]DelayArc, 0, len(in.colIdx)),
		Horizon: in.horizon,
		T:       in.t,
		N:       in.plan.n,
	}
	for row := 0; row < in.verts; row++ {
		for k := in.rowPtr[row]; k < in.rowPtr[row+1]; k++ {
			dg.Arcs = append(dg.Arcs, DelayArc{A: row, B: in.colIdx[k], W: int(in.wExp[k])})
		}
	}
	return dg
}

// ensureBlocks lazily builds the per-vertex block decomposition of Section 4
// (one row per activation entering x, one column per activation leaving x)
// as preallocated Dense blocks plus the entry list refilled per λ.
func (in *Instance) ensureBlocks() {
	if in.blocks != nil {
		return
	}
	pl := in.plan
	verts := in.makeVerts()
	rowPos := make([]int32, in.verts)
	colPos := make([]int32, in.verts)
	inCnt := make([]int32, pl.n)
	outCnt := make([]int32, pl.n)
	for idx, act := range verts {
		rowPos[idx] = inCnt[act.To]
		inCnt[act.To]++
		colPos[idx] = outCnt[act.From]
		outCnt[act.From]++
	}
	in.blocks = make([]*matrix.Dense, pl.n)
	for x := 0; x < pl.n; x++ {
		in.blocks[x] = matrix.NewDense(int(inCnt[x]), int(outCnt[x]))
	}
	in.blockEntries = make([]blockEntry, 0, len(in.colIdx))
	for row := 0; row < in.verts; row++ {
		y := int32(verts[row].To) // block of the arc's common vertex
		for k := in.rowPtr[row]; k < in.rowPtr[row+1]; k++ {
			in.blockEntries = append(in.blockEntries, blockEntry{
				blk: y, row: rowPos[row], col: colPos[in.colIdx[k]], w: in.wExp[k],
			})
		}
	}
}

// LocalBlocks refills and returns the per-vertex local delay matrices
// Mx-style blocks (the row/column permutation argument of Section 4) at λ.
// The blocks alias instance storage and are valid until the next
// LocalBlocks/MaxLocalNorm call.
func (in *Instance) LocalBlocks(lambda float64) []*matrix.Dense {
	checkLambda("LocalBlocks", lambda)
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fillBlocks(lambda)
}

func (in *Instance) fillBlocks(lambda float64) []*matrix.Dense {
	in.ensureBlocks()
	in.ensurePow(lambda)
	for _, b := range in.blocks {
		b.Zero()
	}
	for _, e := range in.blockEntries {
		in.blocks[e.blk].Set(int(e.row), int(e.col), in.powTab[e.w])
	}
	return in.blocks
}

// MaxLocalNorm returns max over network vertices of the local block norm,
// which equals ‖M(λ)‖ by norm property 8 — the decomposition Lemma 4.3
// bounds block by block. Repeated evaluations reuse the preallocated blocks
// and scratch.
func (in *Instance) MaxLocalNorm(lambda float64) float64 {
	checkLambda("MaxLocalNorm", lambda)
	in.mu.Lock()
	defer in.mu.Unlock()
	blocks := in.fillBlocks(lambda)
	return matrix.BlockDiagNorm2Scratch(blocks, &in.blockScratch)
}
