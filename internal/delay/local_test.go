package delay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func mustLocal(t *testing.T, L, R []int) *LocalProtocol {
	t.Helper()
	lp, err := NewLocalProtocol(L, R)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func TestNewLocalProtocolValidation(t *testing.T) {
	if _, err := NewLocalProtocol(nil, nil); err == nil {
		t.Error("empty blocks accepted")
	}
	if _, err := NewLocalProtocol([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewLocalProtocol([]int{0}, []int{1}); err == nil {
		t.Error("zero-length block accepted")
	}
}

func TestLocalProtocolSums(t *testing.T) {
	lp := mustLocal(t, []int{1, 2}, []int{2, 1})
	if lp.K() != 2 || lp.S() != 6 || lp.SumL() != 3 || lp.SumR() != 3 {
		t.Errorf("K=%d S=%d SumL=%d SumR=%d", lp.K(), lp.S(), lp.SumL(), lp.SumR())
	}
}

func TestDelayDValues(t *testing.T) {
	// L = [1,2], R = [2,1]: within a period the rounds are
	// l₀(1), r₀(2), l₁(2), r₁(1).
	lp := mustLocal(t, []int{1, 2}, []int{2, 1})
	// d_{i,i} = 1 always (next round).
	if lp.DelayD(0, 0) != 1 || lp.DelayD(1, 1) != 1 {
		t.Error("d_{i,i} != 1")
	}
	// d_{0,1} = 1 + r₀ + l₁ = 1 + 2 + 2 = 5.
	if lp.DelayD(0, 1) != 5 {
		t.Errorf("d_{0,1} = %d, want 5", lp.DelayD(0, 1))
	}
	// d_{1,2} = 1 + r₁ + l₂ = 1 + 1 + 1 = 3 (l₂ = l₀).
	if lp.DelayD(1, 2) != 3 {
		t.Errorf("d_{1,2} = %d, want 3", lp.DelayD(1, 2))
	}
}

// TestMxGoldenStructure verifies the Fig. 1 layout entry by entry on a small
// k=2 example: blocks B_{i,j} = λ^{d_{i,j}}·ℓ0_{l_i}·ℓ0_{r_j}ᵀ for
// i ≤ j < i+2, zero elsewhere.
func TestMxGoldenStructure(t *testing.T) {
	lambda := 0.7
	lp := mustLocal(t, []int{2, 1}, []int{1, 2})
	h := 4
	m := lp.Mx(lambda, h)
	// Row blocks: l = 2,1,2,1 (total 6); column blocks: r = 1,2,1,2 (total 6).
	if m.Rows() != 6 || m.Cols() != 6 {
		t.Fatalf("Mx is %dx%d, want 6x6", m.Rows(), m.Cols())
	}
	// Block B_{0,0}: rows 0-1, col 0, d = 1:
	// entries λ^{1}·(1,λ)ᵀ·(1) = (λ, λ²).
	if math.Abs(m.At(0, 0)-lambda) > 1e-12 || math.Abs(m.At(1, 0)-lambda*lambda) > 1e-12 {
		t.Errorf("B_{0,0} wrong: %g %g", m.At(0, 0), m.At(1, 0))
	}
	// Block B_{0,1}: rows 0-1, cols 1-2, d_{0,1} = 1 + r₀ + l₁ = 1+1+1 = 3.
	want01 := [][]float64{
		{math.Pow(lambda, 3), math.Pow(lambda, 4)},
		{math.Pow(lambda, 4), math.Pow(lambda, 5)},
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if math.Abs(m.At(a, 1+b)-want01[a][b]) > 1e-12 {
				t.Errorf("B_{0,1}[%d][%d] = %g, want %g", a, b, m.At(a, 1+b), want01[a][b])
			}
		}
	}
	// B_{0,2} must be zero (j ≥ i+k).
	if m.At(0, 3) != 0 || m.At(1, 3) != 0 {
		t.Error("B_{0,2} should be zero")
	}
	// Lower-triangular part zero (j < i): B_{1,0} rows 2, col 0.
	if m.At(2, 0) != 0 {
		t.Error("B_{1,0} should be zero")
	}
}

// TestNxOxGoldenStructure checks the reduced matrices of Fig. 3 on the same
// example.
func TestNxOxGoldenStructure(t *testing.T) {
	lambda := 0.6
	lp := mustLocal(t, []int{2, 1}, []int{1, 2})
	h := 4
	nx := lp.Nx(lambda, h)
	ox := lp.Ox(lambda, h)
	// Nx[0][0] = λ^{d_{0,0}}·p_{r₀}(λ) = λ·p₁ = λ.
	if math.Abs(nx.At(0, 0)-lambda) > 1e-12 {
		t.Errorf("Nx[0][0] = %g, want %g", nx.At(0, 0), lambda)
	}
	// Nx[0][1] = λ^{3}·p₂(λ) = λ³(1+λ²).
	want := math.Pow(lambda, 3) * (1 + lambda*lambda)
	if math.Abs(nx.At(0, 1)-want) > 1e-12 {
		t.Errorf("Nx[0][1] = %g, want %g", nx.At(0, 1), want)
	}
	// Nx[0][2] = 0, Nx[1][0] = 0.
	if nx.At(0, 2) != 0 || nx.At(1, 0) != 0 {
		t.Error("Nx sparsity wrong")
	}
	// Ox[0][0] = λ^{d_{0,0}}·p_{l₀}(λ) = λ·p₂(λ).
	wantO := lambda * (1 + lambda*lambda)
	if math.Abs(ox.At(0, 0)-wantO) > 1e-12 {
		t.Errorf("Ox[0][0] = %g, want %g", ox.At(0, 0), wantO)
	}
	// Ox[1][0] = λ^{d_{0,1}}·p_{l₀}(λ); d_{0,1} = 3.
	wantO10 := math.Pow(lambda, 3) * (1 + lambda*lambda)
	if math.Abs(ox.At(1, 0)-wantO10) > 1e-12 {
		t.Errorf("Ox[1][0] = %g, want %g", ox.At(1, 0), wantO10)
	}
	// Ox upper part zero beyond diagonal.
	if ox.At(0, 1) != 0 {
		t.Error("Ox[0][1] should be zero")
	}
}

// randomLocal draws a random local protocol with k blocks and block lengths
// in 1..3.
func randomLocal(rng *rand.Rand, k int) *LocalProtocol {
	L := make([]int, k)
	R := make([]int, k)
	for j := 0; j < k; j++ {
		L[j] = 1 + rng.Intn(3)
		R[j] = 1 + rng.Intn(3)
	}
	lp, err := NewLocalProtocol(L, R)
	if err != nil {
		panic(err)
	}
	return lp
}

// TestLemma42Property: the semi-eigenvector inequalities hold for random
// local protocols across a λ grid.
func TestLemma42Property(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		lp := randomLocal(rng, 1+rng.Intn(3))
		h := lp.K() + rng.Intn(4)
		for _, lambda := range []float64{0.2, 0.5, 0.618, 0.8, 0.95} {
			if err := lp.Lemma42Check(lambda, h, 1e-9); err != nil {
				t.Fatalf("trial %d (L=%v R=%v h=%d): %v", trial, lp.L, lp.R, h, err)
			}
		}
	}
}

// TestLemma22NormViaReducedMatrices: ‖Mx(λ)‖² = ρ(Ox(λ)·Nx(λ)) (Lemmas 2.1,
// 2.2 and the construction of Section 4).
func TestLemma22NormViaReducedMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		lp := randomLocal(rng, 1+rng.Intn(3))
		h := lp.K() + 1 + rng.Intn(3)
		lambda := 0.3 + 0.6*rng.Float64()
		mx := lp.Mx(lambda, h)
		norm := matrix.Norm2(mx)
		rho := matrix.SpectralRadius(lp.Ox(lambda, h).Mul(lp.Nx(lambda, h)))
		if math.Abs(norm*norm-rho) > 1e-7*(1+rho) {
			t.Fatalf("trial %d (L=%v R=%v h=%d λ=%g): ‖Mx‖²=%g but ρ(OxNx)=%g",
				trial, lp.L, lp.R, h, lambda, norm*norm, rho)
		}
	}
}

// TestLemma43NormBound: ‖Mx(λ)‖ ≤ λ·√p⌈s/2⌉·√p⌊s/2⌋ for random local
// protocols — the central inequality of the paper.
func TestLemma43NormBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 80; trial++ {
		lp := randomLocal(rng, 1+rng.Intn(4))
		h := lp.K() + rng.Intn(5)
		for _, lambda := range []float64{0.25, 0.5, 0.618, 0.75, 0.9} {
			norm := matrix.Norm2(lp.Mx(lambda, h))
			bound := lp.NormBound(lambda)
			if norm > bound+1e-9 {
				t.Fatalf("trial %d (L=%v R=%v h=%d λ=%g): ‖Mx‖=%g > bound %g",
					trial, lp.L, lp.R, h, lambda, norm, bound)
			}
		}
	}
}

// TestLemma43TightForBalanced: for the balanced single-block protocol
// l₀ = ⌈s/2⌉, r₀ = ⌊s/2⌋ the bound becomes tight as h grows (the extremal
// local schedule).
func TestLemma43TightForBalanced(t *testing.T) {
	lambda := 0.618
	lp := mustLocal(t, []int{2}, []int{2})
	bound := lp.NormBound(lambda)
	norm := matrix.Norm2(lp.Mx(lambda, 40))
	if bound-norm > 0.02*bound {
		t.Errorf("balanced bound not near-tight: ‖Mx‖=%g vs bound %g", norm, bound)
	}
}

func TestSemiEigenvectorPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		lp := randomLocal(rng, 1+rng.Intn(3))
		e := lp.SemiEigenvector(0.7, lp.K()+2)
		if !e.IsPositive() {
			t.Fatalf("semi-eigenvector not strictly positive: %v", e)
		}
	}
}

func TestMxPanicsOnSmallH(t *testing.T) {
	lp := mustLocal(t, []int{1, 1}, []int{1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for h < k")
		}
	}()
	lp.Mx(0.5, 1)
}
