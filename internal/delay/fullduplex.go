package delay

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/matrix"
)

// FullDuplexMx builds the local delay matrix of the full-duplex case
// (Section 6, Fig. 7) for a protocol of period s observed over t rounds at
// one vertex: in every round an incoming arc is active together with its
// opposite, so each left activation (row j, ordered by round) relates to the
// s−1 right activations of the following rounds with entries λ, λ², …,
// λ^(s−1) placed at columns j … j+s−2 (truncated at the boundary).
//
//gossip:allowpanic domain guard: delay recurrences run on validated parameters; a violation is a programming error
func FullDuplexMx(s, t int, lambda float64) *matrix.Dense {
	if s < 2 || t < 1 {
		panic(fmt.Sprintf("delay: FullDuplexMx needs s ≥ 2, t ≥ 1, got s=%d t=%d", s, t))
	}
	m := matrix.NewDense(t, t)
	for j := 0; j < t; j++ {
		w := lambda
		for c := j; c <= j+s-2 && c < t; c++ {
			m.Set(j, c, w)
			w *= lambda
		}
	}
	return m
}

// Lemma61Check verifies ‖Mx(λ)‖ ≤ λ + λ² + … + λ^(s−1) (Lemma 6.1) for the
// full-duplex local matrix, returning the computed norm and the bound.
func Lemma61Check(s, t int, lambda float64) (norm, bound float64) {
	m := FullDuplexMx(s, t, lambda)
	return matrix.Norm2(m), bounds.WFullDuplex(s, lambda)
}
