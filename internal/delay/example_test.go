package delay_test

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/matrix"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// Build the delay digraph of a real 4-systolic protocol and evaluate the
// delay-matrix norm at the Lemma 4.3 root: the balanced zig-zag schedule is
// extremal, so the norm hits 1 exactly.
func ExampleBuild() {
	g := topology.Path(8)
	p := protocols.PathZigZag(8)
	dg, _ := delay.Build(g, p, 16) // four periods
	fmt.Printf("activations: %d\n", len(dg.Verts))
	fmt.Printf("‖M(λ₀)‖ = %.4f\n", dg.Norm(0.6823))
	// Output:
	// activations: 56
	// ‖M(λ₀)‖ = 0.9999
}

// The local-protocol machinery of Section 4: the balanced single-block
// schedule l=r=2 has Lemma 4.3's cap as its exact limit norm.
func ExampleLocalProtocol_Mx() {
	lp, _ := delay.NewLocalProtocol([]int{2}, []int{2})
	norm := matrix.Norm2(lp.Mx(0.618, 24))
	fmt.Printf("‖Mx‖ = %.4f, cap = %.4f\n", norm, lp.NormBound(0.618))
	// Output:
	// ‖Mx‖ = 0.8540, cap = 0.8540
}

// ExtractLocal recovers the (l_j, r_j) view of a protocol at one vertex:
// interior path vertices see the extremal balanced schedule.
func ExampleExtractLocal() {
	p := protocols.PathZigZag(8)
	lp, _ := delay.ExtractLocal(p, 3)
	fmt.Printf("L=%v R=%v\n", lp.L, lp.R)
	// Output:
	// L=[2] R=[2]
}
