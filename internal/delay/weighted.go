package delay

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// This file implements the extension sketched in the paper's conclusion
// (Section 7): the matrix-norm technique "can be applied in other more
// general contexts as well, for instance to establish lower bounds on the
// diameter of weighted digraphs."
//
// Given a weighted digraph with positive integer arc lengths, form the
// matrix W(λ) with W(λ)[u][v] = λ^{w(u,v)} per arc. Every ordered pair
// (u, v) has a simple shortest path (at most n−1 arcs), so
//
//	Σ_{k=1}^{n−1} (W(λ)^k)_{u,v}  ≥  λ^{dist(u,v)}  ≥  λ^{diam}.
//
// Summing over all n(n−1) pairs against the all-ones vector and bounding
// the left side by the geometric norm series gives, for any λ with
// ρ = ‖W(λ)‖ < 1:
//
//	diam ≥ ( log₂(n−1) + log₂((1−ρ)/ρ) ) / log₂(1/λ).
//
// WeightedDiameterBound evaluates this for a given λ;
// BestWeightedDiameterBound maximizes it over a λ grid.

// WeightMatrix returns W(λ) for the weighted digraph.
func WeightMatrix(g *graph.Digraph, w graph.Weights, lambda float64) (*matrix.CSR, error) {
	if lambda <= 0 || lambda >= 1 {
		return nil, fmt.Errorf("delay: WeightMatrix needs 0 < λ < 1, got %g", lambda)
	}
	if err := w.Validate(g); err != nil {
		return nil, err
	}
	ts := make([]matrix.Triplet, 0, g.M())
	for _, a := range g.Arcs() {
		ts = append(ts, matrix.Triplet{Row: a.From, Col: a.To, Val: math.Pow(lambda, float64(w[a]))})
	}
	return matrix.NewCSR(g.N(), g.N(), ts), nil
}

// WeightedDiameterBound returns the Section 7 lower bound on the weighted
// diameter for a specific λ. A non-positive return means λ was uninformative
// (ρ ≥ 1 or the bound degenerate); callers should then try smaller λ.
func WeightedDiameterBound(g *graph.Digraph, w graph.Weights, lambda float64) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, nil
	}
	W, err := WeightMatrix(g, w, lambda)
	if err != nil {
		return 0, err
	}
	rho := W.Norm2()
	if rho >= 1 {
		return 0, nil
	}
	num := math.Log2(float64(n-1)) + math.Log2((1-rho)/rho)
	return num / math.Log2(1/lambda), nil
}

// BestWeightedDiameterBound maximizes the bound over a logarithmic λ grid
// and returns the best value (rounded down to an integer number of weight
// units) together with the maximizing λ.
func BestWeightedDiameterBound(g *graph.Digraph, w graph.Weights) (int, float64, error) {
	best, bestLam := 0.0, 0.0
	const gridN = 60
	for i := 1; i < gridN; i++ {
		lambda := float64(i) / gridN
		v, err := WeightedDiameterBound(g, w, lambda)
		if err != nil {
			return 0, 0, err
		}
		if v > best {
			best, bestLam = v, lambda
		}
	}
	return int(math.Floor(best)), bestLam, nil
}
