package delay

import (
	"fmt"

	"repro/internal/gossip"
)

// ExtractLocal derives the local protocol ⟨(l_j),(r_j)⟩ of Section 4 seen by
// vertex x under a systolic half-duplex/directed protocol: within one
// period, the circular sequence of left activations (arcs entering x) and
// right activations (arcs leaving x), rotated to start at a left block.
// Idle rounds are compressed away, matching the paper's deletion argument
// (removing rows/columns cannot increase the local norm, so the Lemma 4.3
// bound for the full period still applies).
//
// It returns an error for non-systolic or full-duplex protocols, for
// vertices idle throughout the period, and for vertices with only one kind
// of activation (their local matrix is empty — no delays ever occur there).
func ExtractLocal(p *gossip.Protocol, x int) (*LocalProtocol, error) {
	if !p.Systolic() {
		return nil, fmt.Errorf("delay: ExtractLocal needs a systolic protocol")
	}
	if p.Mode == gossip.FullDuplex {
		return nil, fmt.Errorf("delay: ExtractLocal models the half-duplex/directed case; use FullDuplexMx")
	}
	// Classify each round of the period: +1 right, -1 left, 0 idle.
	kinds := make([]int, 0, p.Period)
	for r := 0; r < p.Period; r++ {
		k := 0
		for _, a := range p.Rounds[r] {
			if a.To == x {
				k = -1
				break
			}
			if a.From == x {
				k = +1
				break
			}
		}
		kinds = append(kinds, k)
	}
	// Compress idles.
	var seq []int
	for _, k := range kinds {
		if k != 0 {
			seq = append(seq, k)
		}
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("delay: vertex %d is idle throughout the period", x)
	}
	hasL, hasR := false, false
	for _, k := range seq {
		if k < 0 {
			hasL = true
		} else {
			hasR = true
		}
	}
	if !hasL || !hasR {
		return nil, fmt.Errorf("delay: vertex %d has only one activation kind; local matrix is empty", x)
	}
	// Rotate so the cyclic sequence starts at the beginning of a left block:
	// a left activation whose cyclic predecessor is a right activation.
	n := len(seq)
	start := -1
	for i := 0; i < n; i++ {
		prev := seq[(i-1+n)%n]
		if seq[i] < 0 && prev > 0 {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("delay: no block boundary found (internal error)")
	}
	var L, R []int
	i := 0
	for i < n {
		l := 0
		for i < n && seq[(start+i)%n] < 0 {
			l++
			i++
		}
		r := 0
		for i < n && seq[(start+i)%n] > 0 {
			r++
			i++
		}
		L = append(L, l)
		R = append(R, r)
	}
	return NewLocalProtocol(L, R)
}
