package delay

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/topology"
)

func TestBuildCountsActivations(t *testing.T) {
	g := topology.Path(4)
	p := protocols.PathZigZag(4)
	tRounds := 8 // two periods
	dg, err := Build(g, p, tRounds)
	if err != nil {
		t.Fatal(err)
	}
	wantVerts := 0
	for r := 0; r < tRounds; r++ {
		wantVerts += len(p.Round(r))
	}
	if len(dg.Verts) != wantVerts {
		t.Errorf("verts = %d, want %d", len(dg.Verts), wantVerts)
	}
	if dg.Horizon != 4 {
		t.Errorf("horizon = %d, want period 4", dg.Horizon)
	}
	for _, a := range dg.Arcs {
		if a.W < 1 || a.W >= dg.Horizon {
			t.Fatalf("delay arc weight %d outside [1, s)", a.W)
		}
		// Arc consistency: head of A equals tail of B.
		if dg.Verts[a.A].To != dg.Verts[a.B].From {
			t.Fatal("delay arc does not chain through a common vertex")
		}
		if dg.Verts[a.B].Round-dg.Verts[a.A].Round != a.W {
			t.Fatal("weight does not match round difference")
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	g := topology.Path(3)
	p := protocols.PathZigZag(3)
	if _, err := Build(g, p, 0); err == nil {
		t.Error("t=0 accepted")
	}
	bad := gossip.NewFinite([][]graph.Arc{{{From: 0, To: 2}}}, gossip.HalfDuplex)
	if _, err := Build(g, bad, 1); err == nil {
		t.Error("invalid protocol accepted")
	}
}

// TestGlobalNormEqualsMaxLocal cross-checks the two independent norm
// computations: sparse global power iteration vs. per-vertex block
// decomposition (norm property 8 / the permutation argument of Section 4).
func TestGlobalNormEqualsMaxLocal(t *testing.T) {
	g := topology.Cycle(6)
	p := protocols.PeriodicHalfDuplex(g)
	dg, err := Build(g, p, 3*p.Period)
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0.4, 0.618, 0.8} {
		global := dg.Norm(lambda)
		local := dg.MaxLocalNorm(lambda)
		if math.Abs(global-local) > 1e-7*(1+global) {
			t.Fatalf("λ=%g: global norm %g != max local norm %g", lambda, global, local)
		}
	}
}

// TestLemma43OnRealProtocols: the delay matrix norm of every constructed
// s-systolic half-duplex/directed protocol respects the Lemma 4.3 bound for
// its period.
func TestLemma43OnRealProtocols(t *testing.T) {
	type tc struct {
		name string
		dg   *Digraph
		s    int
	}
	var cases []tc

	add := func(name string, dg *Digraph, err error, s int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cases = append(cases, tc{name, dg, s})
	}

	pg := topology.Path(6)
	pz := protocols.PathZigZag(6)
	dg1, err := Build(pg, pz, 3*pz.Period)
	add("path zig-zag", dg1, err, pz.Period)

	cg := topology.Cycle(8)
	ph := protocols.PeriodicHalfDuplex(cg)
	dg2, err := Build(cg, ph, 2*ph.Period)
	add("cycle periodic", dg2, err, ph.Period)

	db := topology.NewDeBruijnDigraph(2, 3)
	rr := protocols.RoundRobinDirected(db.G)
	dg3, err := Build(db.G, rr, 2*rr.Period)
	add("de Bruijn round-robin", dg3, err, rr.Period)

	dc := topology.DirectedCycle(6)
	c2 := protocols.CycleTwoPhase(6)
	dg4, err := Build(dc, c2, 12)
	add("directed cycle 2-phase", dg4, err, 2)

	for _, c := range cases {
		for _, lambda := range []float64{0.3, 0.618, 0.85} {
			norm := c.dg.Norm(lambda)
			bound := bounds.WHalfDuplex(maxInt(c.s, 2), lambda)
			if c.s == 2 {
				// For s=2 the paper argues directly (no w-bound); skip.
				continue
			}
			if norm > bound+1e-8 {
				t.Errorf("%s λ=%g: ‖M(λ)‖ = %g > Lemma 4.3 bound %g", c.name, lambda, norm, bound)
			}
		}
	}
}

// TestLemma61OnFullDuplexProtocol: full-duplex delay matrices respect the
// Section 6 bound λ + … + λ^{s−1}.
func TestLemma61OnFullDuplexProtocol(t *testing.T) {
	g := topology.Cycle(8)
	p := protocols.PeriodicFullDuplex(g)
	dg, err := Build(g, p, 3*p.Period)
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0.4, 0.6, 0.8} {
		norm := dg.Norm(lambda)
		bound := bounds.WFullDuplex(p.Period, lambda)
		if norm > bound+1e-8 {
			t.Errorf("λ=%g: ‖M(λ)‖ = %g > Lemma 6.1 bound %g", lambda, norm, bound)
		}
	}
}

// TestTheorem41EndToEnd: for each constructed protocol, taking λ₀ as the
// root of the Lemma 4.3 bound for its period (so ‖M(λ₀)‖ ≤ 1), the measured
// gossip completion time satisfies the Theorem 4.1 inequality
// t > log₂(n)/log₂(1/λ₀) − 2·log₂(t)/log₂(1/λ₀).
func TestTheorem41EndToEnd(t *testing.T) {
	check := func(name string, n, measured, s int) {
		t.Helper()
		if s < 3 {
			return
		}
		_, lambda := bounds.GeneralHalfDuplex(s)
		logInv := math.Log2(1 / lambda)
		rhs := math.Log2(float64(n))/logInv - 2*math.Log2(float64(measured))/logInv
		if float64(measured) <= rhs {
			t.Errorf("%s: measured %d rounds ≤ Theorem 4.1 bound %g (n=%d, s=%d)", name, measured, rhs, n, s)
		}
	}

	g := topology.Path(10)
	p := protocols.PathZigZag(10)
	res, err := gossip.Simulate(g, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	check("path zig-zag", g.N(), res.Rounds, p.Period)

	cg := topology.Cycle(12)
	cp := protocols.PeriodicHalfDuplex(cg)
	resC, err := gossip.Simulate(cg, cp, 2000)
	if err != nil {
		t.Fatal(err)
	}
	check("cycle periodic", cg.N(), resC.Rounds, cp.Period)

	db := topology.NewDeBruijn(2, 4)
	dp := protocols.PeriodicHalfDuplex(db.G)
	resD, err := gossip.Simulate(db.G, dp, 2000)
	if err != nil {
		t.Fatal(err)
	}
	check("de Bruijn periodic", db.G.N(), resD.Rounds, dp.Period)
}

// TestFullDuplexMxGolden reproduces Fig. 7 (s=4): each row j has entries
// λ, λ², λ³ at columns j, j+1, j+2.
func TestFullDuplexMxGolden(t *testing.T) {
	lambda := 0.5
	m := FullDuplexMx(4, 6, lambda)
	for j := 0; j < 6; j++ {
		for c := 0; c < 6; c++ {
			var want float64
			if c >= j && c <= j+2 {
				want = math.Pow(lambda, float64(c-j+1))
			}
			if math.Abs(m.At(j, c)-want) > 1e-12 {
				t.Errorf("Mx[%d][%d] = %g, want %g", j, c, m.At(j, c), want)
			}
		}
	}
}

// TestLemma61Matrix: the banded full-duplex local matrix satisfies
// ‖Mx‖ ≤ λ+…+λ^{s−1}, approaching it as t grows.
func TestLemma61Matrix(t *testing.T) {
	for _, s := range []int{3, 4, 6} {
		for _, lambda := range []float64{0.3, 0.5, 0.7} {
			norm, bound := Lemma61Check(s, 50, lambda)
			if norm > bound+1e-9 {
				t.Errorf("s=%d λ=%g: norm %g > bound %g", s, lambda, norm, bound)
			}
			if bound-norm > 0.05*bound {
				t.Errorf("s=%d λ=%g: bound far from tight (%g vs %g)", s, lambda, norm, bound)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
