package delay

import (
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// TestExtractLocalPathZigZag: every interior vertex of the 4-systolic
// zig-zag path protocol sees the balanced local protocol ([2],[2]) — the
// extremal schedule for which Lemma 4.3 is tight.
func TestExtractLocalPathZigZag(t *testing.T) {
	p := protocols.PathZigZag(8)
	for x := 1; x <= 6; x++ {
		lp, err := ExtractLocal(p, x)
		if err != nil {
			t.Fatalf("vertex %d: %v", x, err)
		}
		if lp.K() != 1 || lp.L[0] != 2 || lp.R[0] != 2 {
			t.Errorf("vertex %d: extracted L=%v R=%v, want ([2],[2])", x, lp.L, lp.R)
		}
	}
}

// TestExtractLocalEndpoints: the path endpoints alternate single left and
// right activations: ([1],[1]) after idle compression.
func TestExtractLocalEndpoints(t *testing.T) {
	p := protocols.PathZigZag(8)
	for _, x := range []int{0, 7} {
		lp, err := ExtractLocal(p, x)
		if err != nil {
			t.Fatalf("vertex %d: %v", x, err)
		}
		if lp.SumL() != 1 || lp.SumR() != 1 {
			t.Errorf("vertex %d: L=%v R=%v", x, lp.L, lp.R)
		}
	}
}

// TestExtractLocalNormBound: for every vertex of several systolic
// protocols, the extracted local matrix norm respects the Lemma 4.3 bound
// of the *full* period (idle compression only shrinks the norm).
func TestExtractLocalNormBound(t *testing.T) {
	g := topology.Cycle(10)
	p := protocols.PeriodicInterleavedHalfDuplex(g)
	lambda := 0.618
	for x := 0; x < g.N(); x++ {
		lp, err := ExtractLocal(p, x)
		if err != nil {
			continue // idle or single-kind vertices have no local matrix
		}
		norm := matrix.Norm2(lp.Mx(lambda, lp.K()+3))
		// The extracted period lp.S() ≤ p.Period; both caps must hold.
		if norm > lp.NormBound(lambda)+1e-9 {
			t.Errorf("vertex %d: norm %g above own-period bound %g", x, norm, lp.NormBound(lambda))
		}
	}
}

func TestExtractLocalErrors(t *testing.T) {
	// Non-systolic protocol.
	fin := gossip.NewFinite([][]graph.Arc{{{From: 0, To: 1}}}, gossip.HalfDuplex)
	if _, err := ExtractLocal(fin, 0); err == nil {
		t.Error("non-systolic accepted")
	}
	// Full-duplex protocol.
	g := topology.Cycle(6)
	fd := protocols.PeriodicFullDuplex(g)
	if _, err := ExtractLocal(fd, 0); err == nil {
		t.Error("full-duplex accepted")
	}
	// Idle vertex: a protocol that never touches vertex 2.
	idle := gossip.NewSystolic([][]graph.Arc{
		{{From: 0, To: 1}}, {{From: 1, To: 0}},
	}, gossip.HalfDuplex)
	if _, err := ExtractLocal(idle, 2); err == nil {
		t.Error("idle vertex accepted")
	}
	// Single-kind vertex: vertex 1 only ever receives.
	oneWay := gossip.NewSystolic([][]graph.Arc{
		{{From: 0, To: 1}}, {{From: 2, To: 1}},
	}, gossip.HalfDuplex)
	if _, err := ExtractLocal(oneWay, 1); err == nil {
		t.Error("receive-only vertex accepted")
	}
}

// TestExtractLocalRoundTripStructure: extraction on a hand-built protocol
// with a known (l,r) pattern at the hub vertex.
func TestExtractLocalRoundTripStructure(t *testing.T) {
	// Vertex 0 of a star: rounds L L R L R R (reading the period) — cyclic
	// rotation to a left-block start yields L=[2,1], R=[1,2].
	rounds := [][]graph.Arc{
		{{From: 1, To: 0}}, // L
		{{From: 2, To: 0}}, // L
		{{From: 0, To: 3}}, // R
		{{From: 4, To: 0}}, // L
		{{From: 0, To: 1}}, // R
		{{From: 0, To: 2}}, // R
	}
	p := gossip.NewSystolic(rounds, gossip.HalfDuplex)
	lp, err := ExtractLocal(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lp.K() != 2 {
		t.Fatalf("k = %d, want 2 (L=%v R=%v)", lp.K(), lp.L, lp.R)
	}
	if lp.SumL() != 3 || lp.SumR() != 3 || lp.S() != 6 {
		t.Errorf("sums wrong: L=%v R=%v", lp.L, lp.R)
	}
	// The rotation starts at the left block following a right activation:
	// round 0 is preceded (cyclically) by round 5 (R), so blocks are
	// L=[2,1], R=[1,2].
	if lp.L[0] != 2 || lp.L[1] != 1 || lp.R[0] != 1 || lp.R[1] != 2 {
		t.Errorf("blocks L=%v R=%v, want [2 1] / [1 2]", lp.L, lp.R)
	}
}
