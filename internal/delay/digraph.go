// Package delay implements the paper's central novel object: the delay
// digraph of a gossiping protocol (Definition 3.3), its delay matrix M(λ)
// (Definition 3.4), and the per-vertex local matrices Mx(λ) with their
// rank-reduced companions Nx(λ) and Ox(λ) (Section 4, Figs. 1–3) whose
// spectral analysis yields the norm bound of Lemma 4.3. The full-duplex
// local matrix of Section 6 (Fig. 7) is also provided.
//
// Routine ↔ paper map:
//
//   - Build / NewPlan / Plan.Instance — the delay digraph DG of
//     Definition 3.3 (Build per call; the Plan compiles the activation
//     structure once and unrolls it per round count, the form the
//     certification pipeline caches).
//   - Digraph.Matrix / Instance.Matrix — the delay matrix M(λ) of
//     Definition 3.4.
//   - Digraph.Norm / Instance.Norm — ‖M(λ)‖₂, the quantity Theorem 4.1
//     turns into the g(G) lower bound and Lemma 4.3 / Lemma 6.1 cap.
//   - Digraph.LocalBlocks / MaxLocalNorm (both forms) — the row/column
//     permutation of Section 4 splitting M(λ) into per-vertex blocks; their
//     max norm equals ‖M(λ)‖ by norm property 8 of Section 2.
//   - ExtractLocal / LocalProtocol — the local protocol ⟨(l_j),(r_j)⟩ one
//     vertex sees (Section 4); Mx/Nx/Ox are Figs. 1 and 3, SemiEigenvector
//     and Lemma42Check are Lemma 4.2, NormBound is Lemma 4.3.
//   - FullDuplexMx / Lemma61Check — Fig. 7 and Lemma 6.1 (Section 6).
//   - WeightMatrix / WeightedDiameterBound / BestWeightedDiameterBound —
//     the Section 7 extension to weighted-diameter lower bounds.
package delay

import (
	"fmt"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/matrix"
)

// Activation is a vertex (x, y, i) of the delay digraph: arc (x,y) of the
// network is active at round i (0-based here; the paper counts from 1).
type Activation struct {
	From, To int
	Round    int
}

// DelayArc is a weighted arc of the delay digraph between activation indices
// A and B with weight W = round(B) − round(A).
type DelayArc struct {
	A, B int
	W    int
}

// Digraph is the delay digraph DG of a protocol executed for T rounds
// (Definition 3.3): vertices are all activations, and there is an arc from
// (x,y,i) to (y,z,j) whenever 1 ≤ j−i < Horizon. For an s-systolic protocol
// Horizon = s (later repetitions of the same activated arc are represented
// by the periodicity); for a finite non-systolic protocol Horizon = T, which
// is the s→∞ reading used by the corollaries.
type Digraph struct {
	Verts   []Activation
	Arcs    []DelayArc
	Horizon int
	T       int
	N       int // vertices of the underlying network
}

// Build constructs the delay digraph of protocol p executed for t rounds on
// g. It validates the protocol first. Since the compile-cache-execute
// refactor it is a thin wrapper over the compiled lowering: NewPlan derives
// the per-round activation structure once and Instance unrolls it for t —
// callers that build repeatedly (the certification pipeline) hold the Plan
// and skip straight to Instance. The resulting digraph is identical to the
// classic per-round construction (buildInterpreted, kept as the reference
// the differential tests compare against).
func Build(g *graph.Digraph, p *gossip.Protocol, t int) (*Digraph, error) {
	pl, err := NewPlan(g, p)
	if err != nil {
		return nil, err
	}
	in, err := pl.Instance(t)
	if err != nil {
		return nil, err
	}
	return in.Digraph(), nil
}

// buildInterpreted is the classic O(rounds × arcs) delay-digraph
// construction, executing the protocol round by round exactly as
// Definition 3.3 reads. It is retained as the independent reference the
// plan differential tests pin Build/Instance against.
func buildInterpreted(g *graph.Digraph, p *gossip.Protocol, t int) (*Digraph, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	if t <= 0 {
		return nil, fmt.Errorf("delay: nonpositive round count %d", t)
	}
	horizon := t
	if p.Systolic() {
		horizon = p.Period
	}
	dg := &Digraph{Horizon: horizon, T: t, N: g.N()}
	// byHead[v] lists activation indices whose arc enters v, in round order.
	byHead := make([][]int, g.N())
	for r := 0; r < t; r++ {
		for _, a := range p.Round(r) {
			idx := len(dg.Verts)
			dg.Verts = append(dg.Verts, Activation{From: a.From, To: a.To, Round: r})
			byHead[a.To] = append(byHead[a.To], idx)
		}
	}
	// byTail[v] lists activation indices whose arc leaves v, in round order.
	byTail := make([][]int, g.N())
	for idx, act := range dg.Verts {
		byTail[act.From] = append(byTail[act.From], idx)
	}
	for v := 0; v < g.N(); v++ {
		for _, aIdx := range byHead[v] {
			ai := dg.Verts[aIdx].Round
			for _, bIdx := range byTail[v] {
				d := dg.Verts[bIdx].Round - ai
				if d >= 1 && d < horizon {
					dg.Arcs = append(dg.Arcs, DelayArc{A: aIdx, B: bIdx, W: d})
				}
			}
		}
	}
	return dg, nil
}

// Matrix returns the delay matrix M(λ) of Definition 3.4 as a sparse CSR
// matrix: M[(x,y,i)][(y,z,j)] = λ^(j−i) for every delay arc.
//
//gossip:allowpanic domain guard: delay recurrences run on validated parameters; a violation is a programming error
func (dg *Digraph) Matrix(lambda float64) *matrix.CSR {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("delay: Matrix needs 0 < λ < 1, got %g", lambda))
	}
	ts := make([]matrix.Triplet, 0, len(dg.Arcs))
	for _, a := range dg.Arcs {
		ts = append(ts, matrix.Triplet{Row: a.A, Col: a.B, Val: powf(lambda, a.W)})
	}
	return matrix.NewCSR(len(dg.Verts), len(dg.Verts), ts)
}

// Norm returns ‖M(λ)‖₂ computed from the sparse delay matrix. By Lemma 4.3
// this never exceeds λ·√p⌈s/2⌉(λ)·√p⌊s/2⌋(λ) for an s-systolic half-duplex
// or directed protocol.
func (dg *Digraph) Norm(lambda float64) float64 {
	return dg.Matrix(lambda).Norm2()
}

// LocalBlocks partitions the delay matrix by network vertex (the row/column
// permutation argument of Section 4): block x has one row per activation
// entering x and one column per activation leaving x, and the full delay
// matrix is, up to permutation, block diagonal in these blocks. By norm
// property 8, ‖M(λ)‖ = max over x of ‖block_x(λ)‖.
//
//gossip:allowpanic domain guard: delay recurrences run on validated parameters; a violation is a programming error
func (dg *Digraph) LocalBlocks(lambda float64) []*matrix.Dense {
	if lambda <= 0 || lambda >= 1 {
		panic(fmt.Sprintf("delay: LocalBlocks needs 0 < λ < 1, got %g", lambda))
	}
	inAt := make([][]int, dg.N)
	outAt := make([][]int, dg.N)
	for idx, act := range dg.Verts {
		inAt[act.To] = append(inAt[act.To], idx)
		outAt[act.From] = append(outAt[act.From], idx)
	}
	rowPos := make(map[int]int, len(dg.Verts))
	colPos := make(map[int]int, len(dg.Verts))
	blocks := make([]*matrix.Dense, dg.N)
	for x := 0; x < dg.N; x++ {
		for pos, idx := range inAt[x] {
			rowPos[idx] = pos
		}
		for pos, idx := range outAt[x] {
			colPos[idx] = pos
		}
		blocks[x] = matrix.NewDense(len(inAt[x]), len(outAt[x]))
	}
	for _, a := range dg.Arcs {
		// Arc (x,y,i) -> (y,z,j): row in block y (head of A), column in
		// block y (tail of B). Both belong to vertex y's block.
		y := dg.Verts[a.A].To
		blocks[y].Set(rowPos[a.A], colPos[a.B], powf(lambda, a.W))
	}
	return blocks
}

// MaxLocalNorm returns max over network vertices of the local block norm,
// which equals ‖M(λ)‖ by norm property 8; tests cross-check it against the
// sparse global computation.
func (dg *Digraph) MaxLocalNorm(lambda float64) float64 {
	return matrix.BlockDiagNorm2(dg.LocalBlocks(lambda))
}

func powf(l float64, k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v *= l
	}
	return v
}
