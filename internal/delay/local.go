package delay

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/matrix"
)

// LocalProtocol describes the s-systolic protocol as seen from one network
// vertex x (Section 4): within each period, x first has L[0] consecutive
// left activations (incoming arcs), then R[0] right activations (outgoing
// arcs), then L[1] left activations, and so on through k blocks, with
// Σ(L[j]+R[j]) = s. The paper's analysis extends the sequences periodically
// over h ≥ k block indices.
type LocalProtocol struct {
	L, R []int
}

// NewLocalProtocol validates and returns a local protocol with k = len(L)
// alternating activation blocks.
func NewLocalProtocol(L, R []int) (*LocalProtocol, error) {
	if len(L) == 0 || len(L) != len(R) {
		return nil, fmt.Errorf("delay: need equally many left and right blocks ≥ 1, got %d and %d", len(L), len(R))
	}
	for j := range L {
		if L[j] < 1 || R[j] < 1 {
			return nil, fmt.Errorf("delay: block %d has nonpositive length (l=%d, r=%d)", j, L[j], R[j])
		}
	}
	return &LocalProtocol{L: append([]int(nil), L...), R: append([]int(nil), R...)}, nil
}

// K returns the number of activation blocks per period.
func (lp *LocalProtocol) K() int { return len(lp.L) }

// S returns the systolic period Σ(L[j] + R[j]).
func (lp *LocalProtocol) S() int {
	s := 0
	for j := range lp.L {
		s += lp.L[j] + lp.R[j]
	}
	return s
}

// SumL returns l₀ + … + l_{k−1}, and SumR the analogous right sum; the
// semi-eigenvalues of Lemma 4.2 are λ·p_SumR(λ) and λ·p_SumL(λ).
func (lp *LocalProtocol) SumL() int {
	s := 0
	for _, l := range lp.L {
		s += l
	}
	return s
}

// SumR returns r₀ + … + r_{k−1}.
func (lp *LocalProtocol) SumR() int {
	s := 0
	for _, r := range lp.R {
		s += r
	}
	return s
}

// lAt and rAt extend the sequences periodically: lAt(j) = L[j mod k].
func (lp *LocalProtocol) lAt(j int) int { return lp.L[j%len(lp.L)] }
func (lp *LocalProtocol) rAt(j int) int { return lp.R[j%len(lp.R)] }

// DelayD returns d_{i,j} = 1 + Σ_{c=i}^{j−1} (r_c + l_{c+1}), the number of
// rounds between the last activation of left block i and the first
// activation of right block j (i ≤ j < i+k).
//
//gossip:allowpanic domain guard: delay recurrences run on validated parameters; a violation is a programming error
func (lp *LocalProtocol) DelayD(i, j int) int {
	k := lp.K()
	if j < i || j >= i+k {
		panic(fmt.Sprintf("delay: d_{%d,%d} undefined for k=%d", i, j, k))
	}
	d := 1
	for c := i; c < j; c++ {
		d += lp.rAt(c) + lp.lAt(c+1)
	}
	return d
}

// geomVec returns ℓ0_m(λ) = (1, λ, λ², …, λ^(m−1))ᵀ.
func geomVec(m int, lambda float64) matrix.Vector {
	v := make(matrix.Vector, m)
	t := 1.0
	for i := 0; i < m; i++ {
		v[i] = t
		t *= lambda
	}
	return v
}

// Mx builds the local delay matrix Mx(λ) over h ≥ k activation blocks
// exactly as in Fig. 1: rows are left activations ordered by block and
// within a block by reverse round order; columns are right activations
// ordered by block and within a block by round order. Block B_{i,j} is
// λ^{d_{i,j}} · ℓ0_{l_i} · ℓ0_{r_j}ᵀ for i ≤ j < i+k and zero otherwise.
//
//gossip:allowpanic domain guard: delay recurrences run on validated parameters; a violation is a programming error
func (lp *LocalProtocol) Mx(lambda float64, h int) *matrix.Dense {
	k := lp.K()
	if h < k {
		panic(fmt.Sprintf("delay: need h ≥ k, got h=%d k=%d", h, k))
	}
	rowOff := make([]int, h+1)
	colOff := make([]int, h+1)
	for b := 0; b < h; b++ {
		rowOff[b+1] = rowOff[b] + lp.lAt(b)
		colOff[b+1] = colOff[b] + lp.rAt(b)
	}
	m := matrix.NewDense(rowOff[h], colOff[h])
	for i := 0; i < h; i++ {
		li := geomVec(lp.lAt(i), lambda)
		for j := i; j < i+k && j < h; j++ {
			rj := geomVec(lp.rAt(j), lambda)
			w := powf(lambda, lp.DelayD(i, j))
			for a := 0; a < len(li); a++ {
				for b := 0; b < len(rj); b++ {
					m.Set(rowOff[i]+a, colOff[j]+b, w*li[a]*rj[b])
				}
			}
		}
	}
	return m
}

// Nx builds the h×h reduced matrix of Fig. 3: entry (i,j) is
// λ^{d_{i,j}}·p_{r_j}(λ) for i ≤ j < i+k and zero otherwise. Nx represents
// the restriction of the linear mapping of Mx(λ) to the geometric-vector
// subspaces (Section 4).
//
//gossip:allowpanic domain guard: delay recurrences run on validated parameters; a violation is a programming error
func (lp *LocalProtocol) Nx(lambda float64, h int) *matrix.Dense {
	k := lp.K()
	if h < k {
		panic(fmt.Sprintf("delay: need h ≥ k, got h=%d k=%d", h, k))
	}
	m := matrix.NewDense(h, h)
	for i := 0; i < h; i++ {
		for j := i; j < i+k && j < h; j++ {
			m.Set(i, j, powf(lambda, lp.DelayD(i, j))*bounds.P(lp.rAt(j), lambda))
		}
	}
	return m
}

// Ox builds the transpose-side h×h reduced matrix of Fig. 3: entry (i,j) is
// λ^{d_{j,i}}·p_{l_j}(λ) for i−k < j ≤ i and zero otherwise.
//
//gossip:allowpanic domain guard: delay recurrences run on validated parameters; a violation is a programming error
func (lp *LocalProtocol) Ox(lambda float64, h int) *matrix.Dense {
	k := lp.K()
	if h < k {
		panic(fmt.Sprintf("delay: need h ≥ k, got h=%d k=%d", h, k))
	}
	m := matrix.NewDense(h, h)
	for i := 0; i < h; i++ {
		for j := i - k + 1; j <= i; j++ {
			if j < 0 {
				continue
			}
			m.Set(i, j, powf(lambda, lp.DelayD(j, i))*bounds.P(lp.lAt(j), lambda))
		}
	}
	return m
}

// SemiEigenvector returns the vector e of Lemma 4.2:
// e_j = λ^{Σ_{c=0}^{j−1}(r_c − l_{c+1})}, a strictly positive
// semi-eigenvector of both Nx(λ) and Ox(λ).
func (lp *LocalProtocol) SemiEigenvector(lambda float64, h int) matrix.Vector {
	e := make(matrix.Vector, h)
	exp := 0
	for j := 0; j < h; j++ {
		e[j] = powi(lambda, exp)
		exp += lp.rAt(j) - lp.lAt(j+1)
	}
	return e
}

// powi computes λ^k for possibly negative k.
func powi(l float64, k int) float64 {
	if k >= 0 {
		return powf(l, k)
	}
	return 1 / powf(l, -k)
}

// Lemma42Check verifies the semi-eigenvalue claims of Lemma 4.2 for this
// local protocol: Nx·e ≤ λ·p_{ΣR}(λ)·e and Ox·e ≤ λ·p_{ΣL}(λ)·e
// (componentwise, within tol). It returns an error naming the first
// violated inequality.
func (lp *LocalProtocol) Lemma42Check(lambda float64, h int, tol float64) error {
	e := lp.SemiEigenvector(lambda, h)
	nx := lp.Nx(lambda, h)
	ox := lp.Ox(lambda, h)
	en := lambda * bounds.P(lp.SumR(), lambda)
	eo := lambda * bounds.P(lp.SumL(), lambda)
	if !matrix.IsSemiEigenvector(nx, e, en, tol) {
		return fmt.Errorf("delay: Nx semi-eigenvector inequality violated (λ=%g h=%d)", lambda, h)
	}
	if !matrix.IsSemiEigenvector(ox, e, eo, tol) {
		return fmt.Errorf("delay: Ox semi-eigenvector inequality violated (λ=%g h=%d)", lambda, h)
	}
	return nil
}

// NormBound returns the Lemma 4.3 bound λ·√p⌈s/2⌉(λ)·√p⌊s/2⌋(λ) for this
// local protocol's period.
func (lp *LocalProtocol) NormBound(lambda float64) float64 {
	return bounds.WHalfDuplex(lp.S(), lambda)
}
