package delay

import (
	"math"
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// bruteForcePathSum enumerates all dipaths with exactly k arcs from
// activation a to activation b in the delay digraph and sums λ^(total
// weight) — the quantity the paper states equals (M(λ)^k)_{a,b}
// (Definition 3.4, "the key property of the matrix M(λ)").
func bruteForcePathSum(dg *Digraph, lambda float64, a, b, k int) float64 {
	adj := make([][]DelayArc, len(dg.Verts))
	for _, arc := range dg.Arcs {
		adj[arc.A] = append(adj[arc.A], arc)
	}
	var rec func(v, steps, weight int) float64
	rec = func(v, steps, weight int) float64 {
		if steps == k {
			if v == b {
				return math.Pow(lambda, float64(weight))
			}
			return 0
		}
		var s float64
		for _, arc := range adj[v] {
			s += rec(arc.B, steps+1, weight+arc.W)
		}
		return s
	}
	return rec(a, 0, 0)
}

// matrixPower returns M(λ)^k as a dense matrix (small instances only).
func matrixPower(dg *Digraph, lambda float64, k int) *matrix.Dense {
	m := dg.Matrix(lambda).Dense()
	out := matrix.Identity(m.Rows())
	for i := 0; i < k; i++ {
		out = out.Mul(m)
	}
	return out
}

// TestDelayMatrixPathSumProperty verifies (M(λ)^k)_{a,b} = Σ_paths λ^length
// exactly, on a real protocol's delay digraph.
func TestDelayMatrixPathSumProperty(t *testing.T) {
	g := topology.Path(4)
	p := protocols.PathZigZag(4)
	dg, err := Build(g, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.6
	for _, k := range []int{1, 2, 3} {
		mk := matrixPower(dg, lambda, k)
		for a := 0; a < len(dg.Verts); a++ {
			for b := 0; b < len(dg.Verts); b++ {
				want := bruteForcePathSum(dg, lambda, a, b, k)
				got := mk.At(a, b)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("(M^%d)[%d][%d] = %g, brute force %g", k, a, b, got, want)
				}
			}
		}
	}
}

// TestDelayPathImpliesGeometricSum: if two activations are at distance ≤ t
// in the delay digraph with total weight ≤ l, then Σ_{k≤t} (M^k)_{a,b} ≥ λ^l
// — the inequality Theorem 4.1's proof builds on.
func TestDelayPathImpliesGeometricSum(t *testing.T) {
	g := topology.Cycle(6)
	p := protocols.PeriodicInterleavedHalfDuplex(g)
	tRounds := 2 * p.Period
	dg, err := Build(g, p, tRounds)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.55
	// Distances (hop count + min weight) by BFS over the delay digraph.
	adj := make([][]DelayArc, len(dg.Verts))
	for _, arc := range dg.Arcs {
		adj[arc.A] = append(adj[arc.A], arc)
	}
	// Accumulate the geometric sums by dense powers.
	n := len(dg.Verts)
	acc := matrix.NewDense(n, n)
	pow := matrix.Identity(n)
	m := dg.Matrix(lambda).Dense()
	const maxHops = 6
	for k := 1; k <= maxHops; k++ {
		pow = pow.Mul(m)
		acc = acc.Add(pow)
	}
	// For each activation, explore up to maxHops hops.
	for a := 0; a < n; a++ {
		type st struct{ v, hops, w int }
		stack := []st{{a, 0, 0}}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur.hops > 0 {
				if got := acc.At(a, cur.v); got < math.Pow(lambda, float64(cur.w))-1e-12 {
					t.Fatalf("sum (M^k)[%d][%d] = %g below λ^%d = %g",
						a, cur.v, got, cur.w, math.Pow(lambda, float64(cur.w)))
				}
			}
			if cur.hops == maxHops {
				continue
			}
			for _, arc := range adj[cur.v] {
				stack = append(stack, st{arc.B, cur.hops + 1, cur.w + arc.W})
			}
		}
	}
}

// TestDelayNormMonotoneInLambda: ‖M(λ)‖ increases with λ (entrywise
// monotonicity + norm property 4).
func TestDelayNormMonotoneInLambda(t *testing.T) {
	db := topology.NewDeBruijn(2, 3)
	p := protocols.PeriodicHalfDuplex(db.G)
	dg, err := Build(db.G, p, 2*p.Period)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, lambda := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		cur := dg.Norm(lambda)
		if cur <= prev {
			t.Fatalf("norm not increasing at λ=%g: %g ≤ %g", lambda, cur, prev)
		}
		prev = cur
	}
}

// TestDelayMatrixGoldenTinyProtocol pins the delay matrix entries of a
// two-round hand protocol: arcs (0,1)@round0 and (1,2)@round1 give a single
// delay arc of weight 1, so M(λ) has exactly one entry λ.
func TestDelayMatrixGoldenTinyProtocol(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	p := gossip.NewSystolic([][]graph.Arc{
		{{From: 0, To: 1}},
		{{From: 1, To: 2}},
	}, gossip.HalfDuplex)
	dg, err := Build(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dg.Verts) != 2 {
		t.Fatalf("verts = %d, want 2", len(dg.Verts))
	}
	if len(dg.Arcs) != 1 || dg.Arcs[0].W != 1 {
		t.Fatalf("arcs = %v, want one weight-1 arc", dg.Arcs)
	}
	m := dg.Matrix(0.5)
	if m.NNZ() != 1 || m.At(0, 1) != 0.5 {
		t.Errorf("M(0.5) wrong: nnz=%d entry=%g", m.NNZ(), m.At(0, 1))
	}
	if math.Abs(dg.Norm(0.5)-0.5) > 1e-10 {
		t.Errorf("‖M‖ = %g, want 0.5", dg.Norm(0.5))
	}
}
