// Differential coverage for the compiled delay lowering: the plan-unrolled
// digraph must equal the classic round-by-round construction exactly —
// vertices in the same order, identical arc sets, bit-identical matrices and
// norms — across systolic/finite protocols, all three modes, and truncated
// round counts; and repeated λ evaluations on one instance must allocate
// nothing.
package delay

import (
	"sort"
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// planCases enumerates (graph, protocol) pairs covering systolic
// half-duplex, full-duplex, directed, s=2, and finite non-systolic
// schedules.
func planCases(t *testing.T) []struct {
	name string
	g    *graph.Digraph
	p    *gossip.Protocol
} {
	t.Helper()
	cyc := topology.Cycle(8)
	hyp := topology.Hypercube(3)
	db := topology.NewDeBruijnDigraph(2, 3)
	dc := topology.DirectedCycle(6)
	greedy, err := protocols.GreedyGossip(topology.Cycle(6), gossip.HalfDuplex, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		g    *graph.Digraph
		p    *gossip.Protocol
	}{
		{"path zig-zag", topology.Path(5), protocols.PathZigZag(5)},
		{"cycle periodic-half", cyc, protocols.PeriodicHalfDuplex(cyc)},
		{"cycle periodic-full", cyc, protocols.PeriodicFullDuplex(cyc)},
		{"hypercube periodic-full", hyp, protocols.PeriodicFullDuplex(hyp)},
		{"debruijn round-robin", db.G, protocols.RoundRobinDirected(db.G)},
		{"directed-cycle two-phase", dc, protocols.CycleTwoPhase(6)},
		{"cycle greedy finite", topology.Cycle(6), greedy},
	}
}

func sortedArcs(arcs []DelayArc) []DelayArc {
	c := append([]DelayArc(nil), arcs...)
	sort.Slice(c, func(i, j int) bool {
		if c[i].A != c[j].A {
			return c[i].A < c[j].A
		}
		return c[i].B < c[j].B
	})
	return c
}

// TestPlanMatchesInterpretedBuild pins the compiled lowering against the
// classic reference construction for every case and several round counts,
// including mid-period truncations and t past a finite schedule's end.
func TestPlanMatchesInterpretedBuild(t *testing.T) {
	for _, c := range planCases(t) {
		t.Run(c.name, func(t *testing.T) {
			span := c.p.Len()
			if c.p.Systolic() {
				span = c.p.Period
			}
			for _, tr := range []int{1, 2, span, span + 1, 2*span + 1, 3 * span} {
				ref, err := buildInterpreted(c.g, c.p, tr)
				if err != nil {
					t.Fatalf("t=%d: reference: %v", tr, err)
				}
				got, err := Build(c.g, c.p, tr)
				if err != nil {
					t.Fatalf("t=%d: plan build: %v", tr, err)
				}
				if got.Horizon != ref.Horizon || got.T != ref.T || got.N != ref.N {
					t.Fatalf("t=%d: header (%d,%d,%d) != reference (%d,%d,%d)",
						tr, got.Horizon, got.T, got.N, ref.Horizon, ref.T, ref.N)
				}
				if len(got.Verts) != len(ref.Verts) {
					t.Fatalf("t=%d: %d verts, reference %d", tr, len(got.Verts), len(ref.Verts))
				}
				for i := range ref.Verts {
					if got.Verts[i] != ref.Verts[i] {
						t.Fatalf("t=%d: vert %d = %+v, reference %+v", tr, i, got.Verts[i], ref.Verts[i])
					}
				}
				ga, ra := sortedArcs(got.Arcs), sortedArcs(ref.Arcs)
				if len(ga) != len(ra) {
					t.Fatalf("t=%d: %d arcs, reference %d", tr, len(ga), len(ra))
				}
				for i := range ra {
					if ga[i] != ra[i] {
						t.Fatalf("t=%d: arc %d = %+v, reference %+v", tr, i, ga[i], ra[i])
					}
				}
			}
		})
	}
}

// TestInstanceNormMatchesDigraph pins the zero-alloc evaluation path
// (re-weighted CSR + scratch power iteration) bit-identical to the classic
// fresh-allocation Matrix/Norm, and the preallocated local blocks against
// the map-built ones.
func TestInstanceNormMatchesDigraph(t *testing.T) {
	for _, c := range planCases(t) {
		t.Run(c.name, func(t *testing.T) {
			pl, err := NewPlan(c.g, c.p)
			if err != nil {
				t.Fatal(err)
			}
			span := c.p.Len()
			if c.p.Systolic() {
				span = c.p.Period
			}
			tr := 2*span + 1
			in, err := pl.Instance(tr)
			if err != nil {
				t.Fatal(err)
			}
			dg, err := buildInterpreted(c.g, c.p, tr)
			if err != nil {
				t.Fatal(err)
			}
			if in.Verts() != len(dg.Verts) || in.Arcs() != len(dg.Arcs) {
				t.Fatalf("instance %d verts / %d arcs, reference %d / %d",
					in.Verts(), in.Arcs(), len(dg.Verts), len(dg.Arcs))
			}
			for _, lambda := range []float64{0.3, 0.618, 0.85, 0.3} {
				if got, want := in.Norm(lambda), dg.Norm(lambda); got != want {
					t.Fatalf("λ=%g: instance norm %v, reference %v", lambda, got, want)
				}
				if got, want := in.MaxLocalNorm(lambda), dg.MaxLocalNorm(lambda); got != want {
					t.Fatalf("λ=%g: instance max local norm %v, reference %v", lambda, got, want)
				}
			}
			// The shared matrix view equals a fresh classic assembly.
			m := in.Matrix(0.5)
			ref := dg.Matrix(0.5)
			if m.Rows() != ref.Rows() || m.NNZ() != ref.NNZ() {
				t.Fatalf("matrix shape %dx nnz %d, reference %dx nnz %d", m.Rows(), m.NNZ(), ref.Rows(), ref.NNZ())
			}
			for i := 0; i < m.Rows(); i++ {
				for _, a := range dg.Arcs {
					if m.At(a.A, a.B) != ref.At(a.A, a.B) {
						t.Fatalf("matrix entry (%d,%d) differs", a.A, a.B)
					}
				}
			}
		})
	}
}

// TestPlanInstanceMemo pins that instances are memoized per round count and
// shared.
func TestPlanInstanceMemo(t *testing.T) {
	g := topology.Cycle(8)
	pl, err := NewPlan(g, protocols.PeriodicHalfDuplex(g))
	if err != nil {
		t.Fatal(err)
	}
	a, err := pl.Instance(12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.Instance(12)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same round count produced distinct instances")
	}
	c, err := pl.Instance(13)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different round counts share an instance")
	}
	if _, err := pl.Instance(0); err == nil {
		t.Error("t=0 accepted")
	}

	// The memo is bounded: a scan over many round counts evicts oldest-first
	// instead of retaining every unrolled digraph.
	for tr := 20; tr < 20+2*maxMemoInstances; tr++ {
		if _, err := pl.Instance(tr); err != nil {
			t.Fatal(err)
		}
	}
	if len(pl.insts) > maxMemoInstances || len(pl.instAge) > maxMemoInstances {
		t.Errorf("instance memo grew to %d entries, cap %d", len(pl.insts), maxMemoInstances)
	}
	evicted, err := pl.Instance(12) // long evicted; must recompute, not fail
	if err != nil {
		t.Fatal(err)
	}
	if evicted == a {
		t.Error("evicted instance pointer resurfaced without recomputation")
	}
	if evicted.Verts() != a.Verts() || evicted.Arcs() != a.Arcs() {
		t.Error("recomputed instance differs from the original")
	}
}

// TestInstanceNormZeroAlloc pins the acceptance criterion: the λ-evaluation
// loop over one instance — fresh λ values, past the memo — performs zero
// steady-state allocations.
func TestInstanceNormZeroAlloc(t *testing.T) {
	g := topology.NewDeBruijn(2, 4)
	pl, err := NewPlan(g.G, protocols.PeriodicHalfDuplex(g.G))
	if err != nil {
		t.Fatal(err)
	}
	in, err := pl.Instance(3 * pl.Period())
	if err != nil {
		t.Fatal(err)
	}
	lambdas := make([]float64, 64)
	for i := range lambdas {
		lambdas[i] = 0.10 + 0.8*float64(i)/float64(len(lambdas))
	}
	in.Norm(0.5) // warm the scratch and power table
	i := 0
	if allocs := testing.AllocsPerRun(len(lambdas), func() {
		in.Norm(lambdas[i%len(lambdas)])
		i++
	}); allocs != 0 {
		t.Errorf("Norm λ-loop allocates %.1f per run, want 0", allocs)
	}
	in.MaxLocalNorm(0.5) // build blocks once
	i = 0
	if allocs := testing.AllocsPerRun(len(lambdas), func() {
		in.MaxLocalNorm(lambdas[i%len(lambdas)])
		i++
	}); allocs != 0 {
		t.Errorf("MaxLocalNorm λ-loop allocates %.1f per run, want 0", allocs)
	}
}

// TestInstanceNormMemo pins that re-certifying at a recently evaluated λ is
// answered from the memo (same value, no recomputation observable through
// the vals buffer).
func TestInstanceNormMemo(t *testing.T) {
	g := topology.Cycle(8)
	pl, err := NewPlan(g, protocols.PeriodicHalfDuplex(g))
	if err != nil {
		t.Fatal(err)
	}
	in, err := pl.Instance(16)
	if err != nil {
		t.Fatal(err)
	}
	first := in.Norm(0.618)
	in.Norm(0.4) // rewrite vals for another λ
	if again := in.Norm(0.618); again != first {
		t.Fatalf("memoized norm %v != first evaluation %v", again, first)
	}
}

// BenchmarkDelayPlanInstantiate measures unrolling a compiled plan for a
// round count — the per-certification cost once the plan is cached (the
// classic Build additionally re-walks and re-validates the protocol every
// call).
func BenchmarkDelayPlanInstantiate(b *testing.B) {
	g := topology.Hypercube(8)
	p := protocols.PeriodicFullDuplex(g)
	pl, err := NewPlan(g, p)
	if err != nil {
		b.Fatal(err)
	}
	t := 3 * p.Period
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := pl.instantiate(t)
		if in.Verts() == 0 {
			b.Fatal("empty instance")
		}
	}
}

// BenchmarkDelayBuildInterpreted is the classic construction on the same
// workload, for comparison with BenchmarkDelayPlanInstantiate.
func BenchmarkDelayBuildInterpreted(b *testing.B) {
	g := topology.Hypercube(8)
	p := protocols.PeriodicFullDuplex(g)
	t := 3 * p.Period
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildInterpreted(g, p, t); err != nil {
			b.Fatal(err)
		}
	}
}
