package delay

import (
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// unroll expands t rounds of a systolic protocol into a finite one.
func unroll(p *gossip.Protocol, t int) *gossip.Protocol {
	rounds := make([][]graph.Arc, t)
	for r := 0; r < t; r++ {
		rounds[r] = append([]graph.Arc(nil), p.Round(r)...)
	}
	return gossip.NewFinite(rounds, p.Mode)
}

// TestNormStableAcrossPeriods: the delay matrix norm of a systolic protocol
// is non-decreasing in the number of executed periods (more activations ⇒
// a larger matrix containing the smaller as a sub-block) and stays under the
// Lemma 4.3 cap — i.e. the cap is uniform in protocol length, which is what
// makes Theorem 4.1 applicable at any t.
func TestNormStableAcrossPeriods(t *testing.T) {
	g := topology.Cycle(8)
	p := protocols.PeriodicInterleavedHalfDuplex(g)
	lambda := 0.618
	prev := 0.0
	for periods := 1; periods <= 4; periods++ {
		dg, err := Build(g, p, periods*p.Period)
		if err != nil {
			t.Fatal(err)
		}
		norm := dg.Norm(lambda)
		if norm < prev-1e-9 {
			t.Fatalf("norm decreased with more periods: %g -> %g", prev, norm)
		}
		cap := 0.0
		if lp, err := NewLocalProtocol([]int{p.Period / 2}, []int{p.Period - p.Period/2}); err == nil {
			cap = lp.NormBound(lambda)
		}
		if cap > 0 && norm > cap+1e-9 {
			t.Fatalf("norm %g exceeded the uniform cap %g at %d periods", norm, cap, periods)
		}
		prev = norm
	}
}

// TestHorizonFiniteVsSystolic: the same round sequence analyzed as finite
// (horizon = t) has delay arcs the systolic build (horizon = s) omits, so
// its norm is at least as large.
func TestHorizonFiniteVsSystolic(t *testing.T) {
	g := topology.Path(5)
	sys := protocols.PathZigZag(5)
	tRounds := 2 * sys.Period
	dgSys, err := Build(g, sys, tRounds)
	if err != nil {
		t.Fatal(err)
	}
	// Unroll the same rounds into a finite protocol.
	fin := unroll(sys, tRounds)
	dgFin, err := Build(g, fin, tRounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(dgFin.Verts) != len(dgSys.Verts) {
		t.Fatalf("vertex counts differ: %d vs %d", len(dgFin.Verts), len(dgSys.Verts))
	}
	if len(dgFin.Arcs) < len(dgSys.Arcs) {
		t.Errorf("finite horizon has fewer delay arcs (%d) than systolic (%d)",
			len(dgFin.Arcs), len(dgSys.Arcs))
	}
	lambda := 0.5
	if dgFin.Norm(lambda) < dgSys.Norm(lambda)-1e-9 {
		t.Error("finite-horizon norm below systolic-horizon norm")
	}
}
