package graph

import (
	"sort"
	"testing"
)

// sampleDigraph builds a small asymmetric digraph exercising fan-in,
// fan-out, and an isolated vertex.
func sampleDigraph() *Digraph {
	g := New(6)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(0, 3)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	g.AddArc(3, 4)
	g.AddArc(4, 0)
	// vertex 5 is isolated
	return g
}

func TestDigraphSourceMirrorsAdjacency(t *testing.T) {
	g := sampleDigraph()
	src := NewDigraphSource(g)
	if src.N() != g.N() {
		t.Fatalf("N: got %d want %d", src.N(), g.N())
	}
	if src.DegBound() != 3 {
		t.Fatalf("DegBound: got %d want 3", src.DegBound())
	}
	buf := make([]int32, src.DegBound())
	for v := 0; v < g.N(); v++ {
		k := src.OutArcs(v, buf)
		got := make([]int, k)
		for i := 0; i < k; i++ {
			got[i] = int(buf[i])
		}
		sort.Ints(got)
		want := append([]int(nil), g.Out(v)...)
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Errorf("OutArcs(%d): got %v want %v", v, got, want)
		}
		k = src.InArcs(v, buf)
		got = got[:0]
		for i := 0; i < k; i++ {
			got = append(got, int(buf[i]))
		}
		sort.Ints(got)
		want = append(want[:0], g.In(v)...)
		sort.Ints(want)
		if !equalInts(got, want) {
			t.Errorf("InArcs(%d): got %v want %v", v, got, want)
		}
	}
}

func TestMaterializeSourceRoundTrip(t *testing.T) {
	g := sampleDigraph()
	back := MaterializeSource(NewDigraphSource(g))
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip size: got n=%d m=%d want n=%d m=%d",
			back.N(), back.M(), g.N(), g.M())
	}
	for _, a := range g.Arcs() {
		if !back.HasArc(a.From, a.To) {
			t.Errorf("round trip lost arc %v", a)
		}
	}
}

func TestNewFloodGenScratch(t *testing.T) {
	g := sampleDigraph()
	src := NewDigraphSource(g)
	fg := NewFloodGen(src)
	if fg.Src() != ArcSource(src) {
		t.Fatal("Src: wrong generator")
	}
	if fg.N() != g.N() {
		t.Fatalf("N: got %d want %d", fg.N(), g.N())
	}
	if len(fg.ArcBuf()) != src.DegBound() {
		t.Fatalf("ArcBuf: len %d want %d", len(fg.ArcBuf()), src.DegBound())
	}
	// DigraphSource has no OrGatherer fast path.
	if fg.Gatherer() != nil || fg.OrBuf() != nil {
		t.Fatal("DigraphSource must not advertise an OrGatherer fast path")
	}
}

// orSource wraps a DigraphSource with a reference OrGatherer so the
// FloodGen fast-path wiring is testable without an arithmetic generator.
type orSource struct{ *DigraphSource }

func (s orSource) OrInChunk(lo, hi int, table, out []uint64) {
	var buf [8]int32
	for v := lo; v < hi; v++ {
		var acc uint64
		k := s.InArcs(v, buf[:])
		for _, u := range buf[:k] {
			acc |= table[u]
		}
		out[v-lo] = acc
	}
}

func TestNewFloodGenGathererPath(t *testing.T) {
	src := orSource{NewDigraphSource(sampleDigraph())}
	fg := NewFloodGen(src)
	if fg.Gatherer() == nil {
		t.Fatal("OrGatherer implementation not detected")
	}
	if len(fg.OrBuf()) != GenChunkVerts {
		t.Fatalf("OrBuf: len %d want %d", len(fg.OrBuf()), GenChunkVerts)
	}
	table := []uint64{1, 2, 4, 8, 16, 32}
	out := make([]uint64, 6)
	fg.Gatherer().OrInChunk(0, 6, table, out)
	// in(0)={2,4}, in(1)={0}, in(2)={0,1}, in(3)={0}, in(4)={3}, in(5)={}
	want := []uint64{4 | 16, 1, 1 | 2, 1, 8, 0}
	for v, w := range want {
		if out[v] != w {
			t.Errorf("OrInChunk vertex %d: got %d want %d", v, out[v], w)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
