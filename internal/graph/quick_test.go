package graph

import (
	"testing"
	"testing/quick"
)

// TestSymmetricClosureIdempotent: closing twice equals closing once.
func TestSymmetricClosureIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDigraphFromSeed(seed, 10, 0.25)
		c1 := g.SymmetricClosure()
		c2 := c1.SymmetricClosure()
		if c1.M() != c2.M() {
			return false
		}
		for _, a := range c1.Arcs() {
			if !c2.HasArc(a.From, a.To) {
				return false
			}
		}
		return c1.IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReverseInvolution: reversing twice gives the original arc set.
func TestReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDigraphFromSeed(seed, 9, 0.3)
		rr := g.Reverse().Reverse()
		if rr.M() != g.M() {
			return false
		}
		for _, a := range g.Arcs() {
			if !rr.HasArc(a.From, a.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDegreeSumEqualsArcs: Σ out-degrees = Σ in-degrees = M.
func TestDegreeSumEqualsArcs(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDigraphFromSeed(seed, 12, 0.2)
		outSum, inSum := 0, 0
		for v := 0; v < g.N(); v++ {
			outSum += g.OutDeg(v)
			inSum += g.InDeg(v)
		}
		return outSum == g.M() && inSum == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBFSTriangleInequality: dist(s,v) ≤ dist(s,u) + 1 for every arc (u,v).
func TestBFSTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDigraphFromSeed(seed, 10, 0.3)
		dist := g.BFS(0)
		for _, a := range g.Arcs() {
			if dist[a.From] != Unreached {
				if dist[a.To] == Unreached || dist[a.To] > dist[a.From]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWeightedDistanceDominatedByHops: with unit weights, Dijkstra equals
// BFS; with weights ≥ 1, weighted distance ≥ hop distance.
func TestWeightedDistanceDominatedByHops(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDigraphFromSeed(seed, 9, 0.35)
		unit := UnitWeights(g)
		bfs := g.BFS(0)
		dij := g.WeightedDistances(0, unit)
		for v := 0; v < g.N(); v++ {
			if bfs[v] != dij[v] {
				return false
			}
		}
		heavy := make(Weights, len(unit))
		state := uint64(seed) * 2654435761
		for a := range unit {
			state = state*6364136223846793005 + 1442695040888963407
			heavy[a] = 1 + int(state%5)
		}
		wd := g.WeightedDistances(0, heavy)
		for v := 0; v < g.N(); v++ {
			if bfs[v] == Unreached {
				if wd[v] != Unreached {
					return false
				}
				continue
			}
			if wd[v] < bfs[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomDigraphFromSeed builds a deterministic pseudo-random digraph.
func randomDigraphFromSeed(seed int64, n int, p float64) *Digraph {
	g := New(n)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && next() < p {
				g.AddArc(i, j)
			}
		}
	}
	return g
}
