package graph

// ArcSource is a generator-backed arc supplier: the implicit counterpart of
// a materialized Digraph. Implementations compute a vertex's neighbor lists
// arithmetically from its id, so a scan over an ArcSource never holds more
// than one vertex's arcs in memory — the seam that lets broadcast kernels
// stream networks whose explicit arc slices would not fit in RAM (a d=27
// hypercube has ~3.6 GiB of arc ids; its generator is three machine words).
//
// Contract: OutArcs(v, buf) writes the out-neighbors of v into buf and
// returns how many it wrote; InArcs is the same for in-neighbors. Lists are
// duplicate-free, never contain v itself, and are deterministic for a given
// implementation, but — unlike Digraph adjacency — not necessarily sorted
// (the flooding kernels OR-fold them, so order is immaterial; differential
// tests sort both sides). buf must have at least DegBound() capacity.
// Implementations must be safe for concurrent use (one ArcSource is shared
// by every worker of a scan) and must not allocate (the generator steps are
// //gossip:hotpath; per-vertex scratch lives in fixed-size local arrays or
// in the caller's buffers).
type ArcSource interface {
	// N returns the number of vertices.
	N() int
	// DegBound returns an upper bound on any vertex's in- or out-degree —
	// the capacity scans size their per-vertex arc buffers with.
	DegBound() int
	// OutArcs writes the out-neighbors of v into buf and returns the count.
	OutArcs(v int, buf []int32) int
	// InArcs writes the in-neighbors of v into buf and returns the count.
	InArcs(v int, buf []int32) int
}

// OrGatherer is the optional fast path of the streaming flood kernel: a
// generator that implements it OR-folds a word table over in-neighborhoods
// itself, one chunk of destinations per call, replacing the per-vertex
// InArcs round trip with a topology-specialized inner loop (a hypercube
// chunk is D xors and D loads per vertex — no neighbor ids ever touch
// memory, which is how the generator path reaches parity with the packed
// CSR kernel).
type OrGatherer interface {
	// OrInChunk writes, for each destination v in [lo, hi), the OR of
	// table[u] over v's in-neighbors u into out[v-lo]. It must not read or
	// write table[v] into the fold unless v is its own in-neighbor (it
	// never is: ArcSource lists exclude self-loops), must not allocate,
	// and must be safe for concurrent use on disjoint chunks.
	OrInChunk(lo, hi int, table, out []uint64)
}

// GenChunkVerts is the number of destination vertices a streaming flood
// step processes per generator call on the OrGatherer fast path: large
// enough to amortize the interface dispatch to nothing, small enough that
// the chunk's out words stay L1-resident.
const GenChunkVerts = 4096

// FloodGen is the streaming lowering of the flooding schedule over an
// ArcSource: the generator-backed counterpart of LowerFlood that never
// materializes a CSR. It owns the fixed per-worker scratch the generator
// kernels walk arcs through — one FloodGen per worker; the underlying
// ArcSource is shared.
type FloodGen struct {
	src ArcSource
	og  OrGatherer // non-nil when src implements the fast path
	buf []int32    // per-vertex neighbor scratch, DegBound capacity
	or  []uint64   // per-chunk OR scratch for the gatherer path
}

// NewFloodGen returns a worker-private streaming lowering over src,
// allocating its fixed scratch once (the subsequent stepping performs zero
// allocations).
func NewFloodGen(src ArcSource) *FloodGen {
	fg := &FloodGen{src: src, buf: make([]int32, src.DegBound())}
	if og, ok := src.(OrGatherer); ok {
		fg.og = og
		fg.or = make([]uint64, GenChunkVerts)
	}
	return fg
}

// Src returns the underlying generator.
func (fg *FloodGen) Src() ArcSource { return fg.src }

// N returns the vertex count of the underlying generator.
func (fg *FloodGen) N() int { return fg.src.N() }

// Gatherer returns the generator's OrGatherer fast path, or nil.
func (fg *FloodGen) Gatherer() OrGatherer { return fg.og }

// ArcBuf returns the per-vertex neighbor scratch (DegBound capacity).
func (fg *FloodGen) ArcBuf() []int32 { return fg.buf }

// OrBuf returns the per-chunk OR scratch (GenChunkVerts words); nil when
// the generator has no OrGatherer fast path.
func (fg *FloodGen) OrBuf() []uint64 { return fg.or }

// DigraphSource adapts a materialized Digraph to the ArcSource interface —
// the reference generator differential tests pin arithmetic generators
// against, and the bridge that lets generator kernels run on ad-hoc graphs.
// The adjacency is sorted once at construction so neighbor order is
// deterministic and shared use is race-free.
type DigraphSource struct {
	g   *Digraph
	deg int
}

// NewDigraphSource wraps g as an ArcSource.
func NewDigraphSource(g *Digraph) *DigraphSource {
	g.sortAdj()
	deg := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.out[v]); d > deg {
			deg = d
		}
		if d := len(g.in[v]); d > deg {
			deg = d
		}
	}
	return &DigraphSource{g: g, deg: deg}
}

// N returns the vertex count.
func (s *DigraphSource) N() int { return s.g.n }

// DegBound returns the maximum in- or out-degree.
func (s *DigraphSource) DegBound() int { return s.deg }

// OutArcs writes the out-neighbors of v into buf.
//
//gossip:hotpath
func (s *DigraphSource) OutArcs(v int, buf []int32) int {
	adj := s.g.out[v]
	for i, u := range adj {
		buf[i] = int32(u)
	}
	return len(adj)
}

// InArcs writes the in-neighbors of v into buf.
//
//gossip:hotpath
func (s *DigraphSource) InArcs(v int, buf []int32) int {
	adj := s.g.in[v]
	for i, u := range adj {
		buf[i] = int32(u)
	}
	return len(adj)
}

// MaterializeSource expands an ArcSource into an explicit Digraph — the
// small-n bridge differential tests use to pin a generator against the
// materialized builder it mirrors. It must only be called on instances
// whose arc slices fit comfortably in memory.
func MaterializeSource(src ArcSource) *Digraph {
	n := src.N()
	g := New(n)
	buf := make([]int32, src.DegBound())
	for v := 0; v < n; v++ {
		k := src.OutArcs(v, buf)
		for _, u := range buf[:k] {
			g.AddArc(v, int(u))
		}
	}
	return g
}
