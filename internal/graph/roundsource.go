package graph

// RoundSource is a generator-backed periodic schedule: the implicit
// counterpart of an explicit protocol's round list. Implementations compute
// who informs a vertex in a given round arithmetically from the vertex id
// (hypercube round r exchanges along dimension r mod d; cycle and torus
// rounds are fixed strides), so executing a schedule over a RoundSource
// never holds an arc slice in memory — the seam that lets the schedule
// compiler run periodic protocols on networks whose CSR Program would not
// fit in RAM.
//
// Contract: Sender(r, v) returns the vertex that informs v in round
// r (mod Rounds()), or -1 when v receives nothing that round. Because the
// paper's rounds are matchings (each processor talks to at most one
// neighbor per round), a single sender per destination is fully general;
// full-duplex exchanges appear as mutual sender pairs (Sender(r, u) == v
// and Sender(r, v) == u). Results must be deterministic and
// implementations safe for concurrent use (one RoundSource is shared by
// every worker of a sharded step) and allocation-free (the schedule steps
// are //gossip:hotpath).
type RoundSource interface {
	// N returns the number of vertices.
	N() int
	// Rounds returns the schedule period (>= 1).
	Rounds() int
	// Sender returns the vertex that informs v in round r, or -1.
	// r must lie in [0, Rounds()); callers reduce absolute round numbers
	// modulo the period first.
	Sender(r, v int) int
}

// SenderChunker is the optional fast path of the generator schedule step: a
// RoundSource that implements it fills a whole chunk of destinations per
// call, replacing the per-vertex Sender round trip with a
// topology-specialized inner loop (a hypercube chunk is one xor per
// vertex — the interface dispatch amortizes to nothing over
// GenChunkVerts destinations).
type SenderChunker interface {
	// SenderChunk writes Sender(r, v) into out[v-lo] for each v in
	// [lo, hi). It must not allocate and must be safe for concurrent use
	// on disjoint chunks. len(out) >= hi-lo.
	SenderChunk(r, lo, hi int, out []int32)
}
