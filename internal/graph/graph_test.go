package graph

import "testing"

func buildTriangle() *Digraph {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	return g
}

func TestAddArcBasics(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	if !g.HasArc(0, 1) || g.HasArc(1, 0) {
		t.Error("HasArc wrong")
	}
	if g.M() != 1 || g.N() != 3 {
		t.Errorf("M=%d N=%d", g.M(), g.N())
	}
	if g.OutDeg(0) != 1 || g.InDeg(1) != 1 || g.OutDeg(1) != 0 {
		t.Error("degrees wrong")
	}
}

func TestAddArcPanics(t *testing.T) {
	cases := []func(*Digraph){
		func(g *Digraph) { g.AddArc(0, 0) },
		func(g *Digraph) { g.AddArc(0, 5) },
		func(g *Digraph) { g.AddArc(0, 1); g.AddArc(0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f(New(3))
		}()
	}
}

func TestSymmetry(t *testing.T) {
	g := buildTriangle()
	if !g.IsSymmetric() {
		t.Error("triangle should be symmetric")
	}
	d := New(2)
	d.AddArc(0, 1)
	if d.IsSymmetric() {
		t.Error("single arc is not symmetric")
	}
	c := d.SymmetricClosure()
	if !c.IsSymmetric() || c.M() != 2 {
		t.Error("closure wrong")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	r := g.Reverse()
	if !r.HasArc(1, 0) || !r.HasArc(2, 1) || r.M() != 2 {
		t.Error("reverse wrong")
	}
}

func TestArcsAndEdgesDeterministic(t *testing.T) {
	g := buildTriangle()
	arcs := g.Arcs()
	if len(arcs) != 6 {
		t.Fatalf("arcs = %d, want 6", len(arcs))
	}
	for i := 1; i < len(arcs); i++ {
		if arcs[i-1].From > arcs[i].From ||
			(arcs[i-1].From == arcs[i].From && arcs[i-1].To >= arcs[i].To) {
			t.Fatal("Arcs not sorted")
		}
	}
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(edges))
	}
	for _, e := range edges {
		if e.From >= e.To {
			t.Error("edge orientation not canonical")
		}
	}
}

func TestBFSPath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := g.BFS(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddArc(0, 1)
	d := g.BFS(1)
	if d[0] != Unreached || d[2] != Unreached || d[1] != 0 {
		t.Errorf("dist = %v", d)
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := New(5)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(i, i+1)
	}
	d := g.MultiSourceBFS([]int{0, 4})
	want := []int{0, 1, 2, 1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	g := New(4)
	for i := 0; i+1 < 4; i++ {
		g.AddEdge(i, i+1)
	}
	if g.Diameter() != 3 {
		t.Errorf("path diameter = %d, want 3", g.Diameter())
	}
	if g.Eccentricity(1) != 2 {
		t.Errorf("ecc(1) = %d, want 2", g.Eccentricity(1))
	}
	dir := New(2)
	dir.AddArc(0, 1)
	if dir.Diameter() != Unreached {
		t.Error("non-strongly-connected diameter should be Unreached")
	}
}

func TestDistBetweenSets(t *testing.T) {
	g := New(6)
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(i, i+1)
	}
	if d := g.DistBetweenSets([]int{0, 1}, []int{4, 5}); d != 3 {
		t.Errorf("set distance = %d, want 3", d)
	}
}

func TestIsStronglyConnected(t *testing.T) {
	if !buildTriangle().IsStronglyConnected() {
		t.Error("triangle should be strongly connected")
	}
	d := New(3)
	d.AddArc(0, 1)
	d.AddArc(1, 2)
	if d.IsStronglyConnected() {
		t.Error("directed path is not strongly connected")
	}
	c := New(3)
	c.AddArc(0, 1)
	c.AddArc(1, 2)
	c.AddArc(2, 0)
	if !c.IsStronglyConnected() {
		t.Error("directed cycle should be strongly connected")
	}
}

func TestIsMatching(t *testing.T) {
	if !IsMatching([]Arc{{0, 1}, {2, 3}}) {
		t.Error("disjoint arcs should be a matching")
	}
	if IsMatching([]Arc{{0, 1}, {1, 2}}) {
		t.Error("shared endpoint accepted")
	}
	if IsMatching([]Arc{{0, 1}, {1, 0}}) {
		t.Error("opposite arcs share endpoints and are not a half-duplex matching")
	}
	if !IsMatching(nil) {
		t.Error("empty round should be a matching")
	}
}

func TestIsFullDuplexRound(t *testing.T) {
	if !IsFullDuplexRound([]Arc{{0, 1}, {1, 0}, {2, 3}, {3, 2}}) {
		t.Error("valid full-duplex round rejected")
	}
	if IsFullDuplexRound([]Arc{{0, 1}}) {
		t.Error("missing opposite accepted")
	}
	if IsFullDuplexRound([]Arc{{0, 1}, {1, 0}, {1, 2}, {2, 1}}) {
		t.Error("overlapping pairs accepted")
	}
	if IsFullDuplexRound([]Arc{{0, 1}, {1, 0}, {0, 1}}) {
		t.Error("duplicate arc accepted")
	}
}

func TestArcsInGraph(t *testing.T) {
	g := buildTriangle()
	if !ArcsInGraph(g, []Arc{{0, 1}, {2, 0}}) {
		t.Error("existing arcs rejected")
	}
	if ArcsInGraph(g, []Arc{{0, 2}, {0, 1}}) == false {
		// triangle is symmetric so (0,2) exists too
		t.Error("existing arc rejected")
	}
	h := New(3)
	h.AddArc(0, 1)
	if ArcsInGraph(h, []Arc{{1, 0}}) {
		t.Error("missing arc accepted")
	}
}

func TestMaxDegrees(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if g.MaxOutDeg() != 3 {
		t.Errorf("MaxOutDeg = %d, want 3", g.MaxOutDeg())
	}
	if g.MaxDeg() != 6 {
		t.Errorf("MaxDeg = %d, want 6", g.MaxDeg())
	}
}
