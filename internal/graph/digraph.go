// Package graph implements the directed-graph substrate of the reproduction:
// digraphs with arc-level queries, breadth-first distances, diameters,
// set-to-set distances (for separator verification), matching checks (the
// whispering model's per-round constraint) and greedy proper edge coloring
// (used to build periodic gossip protocols in the style of
// Liestman–Richards).
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Arc is a directed communication link from From to To.
type Arc struct {
	From, To int
}

// Digraph is a simple directed graph on vertices 0..n-1. Self-loops and
// parallel arcs are rejected at insertion. The networks of the paper are
// modeled as digraphs; an undirected (half/full-duplex capable) network is a
// symmetric digraph containing both orientations of every edge.
type Digraph struct {
	n      int
	out    [][]int
	in     [][]int
	arcSet map[Arc]struct{}
	sorted bool

	// Diameter memo: diamVal is valid for a graph with diamArcs-1 arcs
	// (0 = never computed). Guarded by diamMu so concurrent sessions sharing
	// one built network (the serving layer does) pay the all-pairs BFS once.
	diamMu   sync.Mutex
	diamVal  int
	diamArcs int
}

// New returns an empty digraph with n vertices.
//
//gossip:allowpanic range guard: indices come from trusted topology constructions
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{
		n:      n,
		out:    make([][]int, n),
		in:     make([][]int, n),
		arcSet: make(map[Arc]struct{}),
	}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// M returns the number of arcs.
func (g *Digraph) M() int { return len(g.arcSet) }

// AddArc inserts the arc u→v. It panics on self-loops, out-of-range vertices
// or duplicate arcs: topology generators are deterministic and a duplicate
// indicates a construction bug worth failing loudly on.
//
//gossip:allowpanic range guard: indices come from trusted topology constructions
func (g *Digraph) AddArc(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range n=%d", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	a := Arc{u, v}
	if _, dup := g.arcSet[a]; dup {
		panic(fmt.Sprintf("graph: duplicate arc (%d,%d)", u, v))
	}
	g.arcSet[a] = struct{}{}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.sorted = false
}

// AddEdge inserts both u→v and v→u.
func (g *Digraph) AddEdge(u, v int) {
	g.AddArc(u, v)
	g.AddArc(v, u)
}

// HasArc reports whether u→v is present.
func (g *Digraph) HasArc(u, v int) bool {
	_, ok := g.arcSet[Arc{u, v}]
	return ok
}

// Out returns the out-neighbors of u. The returned slice must not be
// modified.
func (g *Digraph) Out(u int) []int { return g.out[u] }

// In returns the in-neighbors of u. The returned slice must not be modified.
func (g *Digraph) In(u int) []int { return g.in[u] }

// OutDeg returns the out-degree of u.
func (g *Digraph) OutDeg(u int) int { return len(g.out[u]) }

// InDeg returns the in-degree of u.
func (g *Digraph) InDeg(u int) int { return len(g.in[u]) }

// MaxOutDeg returns the maximum out-degree over all vertices.
func (g *Digraph) MaxOutDeg() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.out[u]); d > max {
			max = d
		}
	}
	return max
}

// MaxDeg returns the maximum total degree (in + out) over all vertices. For
// a symmetric digraph this is twice the underlying undirected degree.
func (g *Digraph) MaxDeg() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.out[u]) + len(g.in[u]); d > max {
			max = d
		}
	}
	return max
}

// Arcs returns all arcs in deterministic (sorted) order.
func (g *Digraph) Arcs() []Arc {
	arcs := make([]Arc, 0, len(g.arcSet))
	for a := range g.arcSet {
		arcs = append(arcs, a)
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	return arcs
}

// Edges returns the undirected edges {u,v} with u < v for which both
// orientations are present.
func (g *Digraph) Edges() []Arc {
	var edges []Arc
	for a := range g.arcSet {
		if a.From < a.To && g.HasArc(a.To, a.From) {
			edges = append(edges, a)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// IsSymmetric reports whether every arc's opposite is present, i.e. whether
// g models an undirected network.
func (g *Digraph) IsSymmetric() bool {
	for a := range g.arcSet {
		if !g.HasArc(a.To, a.From) {
			return false
		}
	}
	return true
}

// SymmetricClosure returns a new digraph with the opposite of every arc
// added (when missing).
func (g *Digraph) SymmetricClosure() *Digraph {
	c := New(g.n)
	for a := range g.arcSet {
		if !c.HasArc(a.From, a.To) {
			c.AddArc(a.From, a.To)
		}
		if !c.HasArc(a.To, a.From) {
			c.AddArc(a.To, a.From)
		}
	}
	return c
}

// Reverse returns the digraph with every arc reversed.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.n)
	for a := range g.arcSet {
		r.AddArc(a.To, a.From)
	}
	return r
}

// EnsureSorted sorts the adjacency lists now instead of on the first
// traversal. Call it before sharing a fully built digraph across
// goroutines: the lazy sort mutates the graph, so concurrent first
// traversals would race.
func (g *Digraph) EnsureSorted() { g.sortAdj() }

// sortAdj sorts adjacency lists for deterministic traversal order.
func (g *Digraph) sortAdj() {
	if g.sorted {
		return
	}
	for u := 0; u < g.n; u++ {
		sort.Ints(g.out[u])
		sort.Ints(g.in[u])
	}
	g.sorted = true
}
