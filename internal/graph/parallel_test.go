package graph

import (
	"testing"
	"testing/quick"
)

func TestDiameterParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDigraphFromSeed(seed, 14, 0.3)
		return g.DiameterParallel() == g.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDiameterParallelKnown(t *testing.T) {
	g := New(6)
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(i, i+1)
	}
	if d := g.DiameterParallel(); d != 5 {
		t.Errorf("path diameter = %d, want 5", d)
	}
	dir := New(3)
	dir.AddArc(0, 1)
	if dir.DiameterParallel() != Unreached {
		t.Error("disconnected digraph should report Unreached")
	}
	if New(0).DiameterParallel() != 0 {
		t.Error("empty digraph diameter should be 0")
	}
}

func TestDiameterParallelLargerInstance(t *testing.T) {
	// A 30x30 torus has diameter 30 (15+15); exercises real parallelism.
	g := New(900)
	id := func(r, c int) int { return r*30 + c }
	for r := 0; r < 30; r++ {
		for c := 0; c < 30; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%30))
			g.AddEdge(id(r, c), id((r+1)%30, c))
		}
	}
	if d := g.DiameterParallel(); d != 30 {
		t.Errorf("torus diameter = %d, want 30", d)
	}
}
