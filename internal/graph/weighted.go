package graph

import (
	"container/heap"
	"fmt"
)

// Weights assigns a positive length to every arc of a digraph.
type Weights map[Arc]int

// UnitWeights returns the all-ones weight function for g.
func UnitWeights(g *Digraph) Weights {
	w := make(Weights, g.M())
	for _, a := range g.Arcs() {
		w[a] = 1
	}
	return w
}

// Validate checks that every arc of g has a positive weight.
func (w Weights) Validate(g *Digraph) error {
	for _, a := range g.Arcs() {
		wt, ok := w[a]
		if !ok {
			return fmt.Errorf("graph: arc (%d,%d) has no weight", a.From, a.To)
		}
		if wt <= 0 {
			return fmt.Errorf("graph: arc (%d,%d) has nonpositive weight %d", a.From, a.To, wt)
		}
	}
	return nil
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	v, dist int
}

type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// WeightedDistances returns the weighted shortest-path distances from src
// under w (Dijkstra); unreachable vertices get Unreached.
func (g *Digraph) WeightedDistances(src int, w Weights) []int {
	g.sortAdj()
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	q := &pq{{v: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		if it.dist > dist[it.v] {
			continue // stale entry
		}
		for _, u := range g.out[it.v] {
			nd := it.dist + w[Arc{From: it.v, To: u}]
			if dist[u] == Unreached || nd < dist[u] {
				dist[u] = nd
				heap.Push(q, item{v: u, dist: nd})
			}
		}
	}
	return dist
}

// WeightedDiameter returns the maximum weighted eccentricity, or Unreached
// if the digraph is not strongly connected.
func (g *Digraph) WeightedDiameter(w Weights) int {
	diam := 0
	for v := 0; v < g.n; v++ {
		dist := g.WeightedDistances(v, w)
		for _, d := range dist {
			if d == Unreached {
				return Unreached
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
