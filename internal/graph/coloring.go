package graph

import "fmt"

// EdgeColoring is a proper edge coloring of the undirected edges of a
// symmetric digraph: Classes[c] lists the edges (u < v) of color c, and no
// two edges of the same color share an endpoint. It is the input to periodic
// ("traffic-light") gossip protocols in the Liestman–Richards style.
type EdgeColoring struct {
	Classes [][]Arc
}

// NumColors returns the number of color classes.
func (ec *EdgeColoring) NumColors() int { return len(ec.Classes) }

// GreedyEdgeColoring properly colors the undirected edges of a symmetric
// digraph with at most 2Δ−1 colors, where Δ is the undirected degree. The
// scan order is deterministic, so protocols built from the coloring are
// reproducible. It panics if g is not symmetric.
//
//gossip:allowpanic range guard: indices come from trusted topology constructions
func GreedyEdgeColoring(g *Digraph) *EdgeColoring {
	if !g.IsSymmetric() {
		panic("graph: GreedyEdgeColoring requires a symmetric digraph")
	}
	edges := g.Edges()
	// colorsAt[v] is the set of colors already used by edges incident to v.
	colorsAt := make([]map[int]struct{}, g.n)
	for i := range colorsAt {
		colorsAt[i] = make(map[int]struct{})
	}
	ec := &EdgeColoring{}
	for _, e := range edges {
		c := 0
		for {
			_, usedU := colorsAt[e.From][c]
			_, usedV := colorsAt[e.To][c]
			if !usedU && !usedV {
				break
			}
			c++
		}
		for len(ec.Classes) <= c {
			ec.Classes = append(ec.Classes, nil)
		}
		ec.Classes[c] = append(ec.Classes[c], e)
		colorsAt[e.From][c] = struct{}{}
		colorsAt[e.To][c] = struct{}{}
	}
	return ec
}

// Validate checks that every class is a matching and every listed edge has
// both orientations in g.
func (ec *EdgeColoring) Validate(g *Digraph) error {
	seen := make(map[Arc]struct{})
	for c, class := range ec.Classes {
		if !IsMatching(class) {
			return fmt.Errorf("graph: color class %d is not a matching", c)
		}
		for _, e := range class {
			if !g.HasArc(e.From, e.To) || !g.HasArc(e.To, e.From) {
				return fmt.Errorf("graph: colored edge (%d,%d) not in graph", e.From, e.To)
			}
			if _, dup := seen[e]; dup {
				return fmt.Errorf("graph: edge (%d,%d) colored twice", e.From, e.To)
			}
			seen[e] = struct{}{}
		}
	}
	if len(seen) != len(g.Edges()) {
		return fmt.Errorf("graph: coloring covers %d edges, graph has %d", len(seen), len(g.Edges()))
	}
	return nil
}
