package graph

// IsMatching reports whether no two arcs in round share an endpoint — the
// whispering (processor-bound) constraint of Definition 3.1, condition 1:
// each processor has at most one active incident link per round.
func IsMatching(round []Arc) bool {
	used := make(map[int]struct{}, 2*len(round))
	for _, a := range round {
		if _, ok := used[a.From]; ok {
			return false
		}
		if _, ok := used[a.To]; ok {
			return false
		}
		used[a.From] = struct{}{}
		used[a.To] = struct{}{}
	}
	return true
}

// IsFullDuplexRound reports whether round satisfies the full-duplex
// constraint of Section 3: any two active arcs either share no endpoint or
// are opposite, and every arc's opposite is active. Equivalently, the round
// is a set of bidirectional edges forming a matching.
func IsFullDuplexRound(round []Arc) bool {
	set := make(map[Arc]struct{}, len(round))
	for _, a := range round {
		set[a] = struct{}{}
	}
	if len(set) != len(round) {
		return false // duplicate arcs
	}
	endpoint := make(map[int]int, 2*len(round)) // vertex -> partner
	for _, a := range round {
		if _, ok := set[Arc{a.To, a.From}]; !ok {
			return false
		}
		if p, ok := endpoint[a.From]; ok && p != a.To {
			return false
		}
		if p, ok := endpoint[a.To]; ok && p != a.From {
			return false
		}
		endpoint[a.From] = a.To
		endpoint[a.To] = a.From
	}
	return true
}

// ArcsInGraph reports whether every arc of round exists in g.
func ArcsInGraph(g *Digraph, round []Arc) bool {
	for _, a := range round {
		if !g.HasArc(a.From, a.To) {
			return false
		}
	}
	return true
}
