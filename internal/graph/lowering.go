package graph

// PackedArc is an arc lowered onto the flat word-array state layout the
// gossip engine executes: SrcOff and DstOff are the first word offsets of
// From's and To's knowledge blocks (vertex × words-per-vertex), precomputed
// so the hot loop never multiplies. From and To are retained for backends
// that address vertices directly (the packed broadcast frontier, the
// completion certificate).
type PackedArc struct {
	SrcOff, DstOff int32
	From, To       int32
}

// PackArcs lowers round onto a words-per-vertex state layout, appending one
// PackedArc per arc to dst and returning the extended slice. Callers
// validate arc ranges; PackArcs itself is a pure layout computation.
func PackArcs(dst []PackedArc, round []Arc, words int) []PackedArc {
	for _, a := range round {
		dst = append(dst, PackedArc{
			SrcOff: int32(a.From * words),
			DstOff: int32(a.To * words),
			From:   int32(a.From),
			To:     int32(a.To),
		})
	}
	return dst
}

// FloodCSR is the flooding level schedule lowered once onto the packed
// one-word-per-vertex state layout: the round is the same every level
// (every arc is active), so the whole schedule compiles to a single
// destination-major CSR. Src[Indptr[v]:Indptr[v+1]] are the precomputed
// word offsets of v's in-neighbors — with one knowledge word per vertex
// the offset of vertex u is u itself, stored as int32 so the hot gather
// loop never widens or multiplies. Destination-major order makes the
// per-round walk cache-blocked by construction: the destination words are
// written strictly sequentially, and because neighbors of consecutive
// destinations cluster in the same regions for the structured topologies
// (hypercube, de Bruijn, tori), the scattered source reads keep re-hitting
// resident lines instead of striding.
type FloodCSR struct {
	N      int
	Indptr []int32
	Src    []int32
}

// LowerFlood lowers the source-independent flooding schedule of g. The
// in-neighbor lists are emitted in sorted order, so the lowering — like
// every compiled artifact — is deterministic for a given arc set.
func (g *Digraph) LowerFlood() *FloodCSR {
	g.sortAdj()
	m := 0
	for v := 0; v < g.n; v++ {
		m += len(g.in[v])
	}
	cs := &FloodCSR{
		N:      g.n,
		Indptr: make([]int32, g.n+1),
		Src:    make([]int32, 0, m),
	}
	for v := 0; v < g.n; v++ {
		for _, u := range g.in[v] {
			cs.Src = append(cs.Src, int32(u))
		}
		cs.Indptr[v+1] = int32(len(cs.Src))
	}
	return cs
}

// Arcs re-expands the lowered schedule into an explicit arc slice in the
// CSR's destination-major order — the round the scalar reference kernel
// feeds to a one-bit frontier, byte-equal in effect to the packed walk.
func (cs *FloodCSR) Arcs() []Arc {
	arcs := make([]Arc, 0, len(cs.Src))
	for v := 0; v < cs.N; v++ {
		for _, u := range cs.Src[cs.Indptr[v]:cs.Indptr[v+1]] {
			arcs = append(arcs, Arc{From: int(u), To: v})
		}
	}
	return arcs
}
