package graph

// PackedArc is an arc lowered onto the flat word-array state layout the
// gossip engine executes: SrcOff and DstOff are the first word offsets of
// From's and To's knowledge blocks (vertex × words-per-vertex), precomputed
// so the hot loop never multiplies. From and To are retained for backends
// that address vertices directly (the packed broadcast frontier, the
// completion certificate).
type PackedArc struct {
	SrcOff, DstOff int32
	From, To       int32
}

// PackArcs lowers round onto a words-per-vertex state layout, appending one
// PackedArc per arc to dst and returning the extended slice. Callers
// validate arc ranges; PackArcs itself is a pure layout computation.
func PackArcs(dst []PackedArc, round []Arc, words int) []PackedArc {
	for _, a := range round {
		dst = append(dst, PackedArc{
			SrcOff: int32(a.From * words),
			DstOff: int32(a.To * words),
			From:   int32(a.From),
			To:     int32(a.To),
		})
	}
	return dst
}
