package graph

import (
	"testing"
	"testing/quick"
)

func TestGreedyEdgeColoringTriangle(t *testing.T) {
	g := buildTriangle()
	ec := GreedyEdgeColoring(g)
	if err := ec.Validate(g); err != nil {
		t.Fatal(err)
	}
	// A triangle needs exactly 3 colors.
	if ec.NumColors() != 3 {
		t.Errorf("triangle colored with %d colors, want 3", ec.NumColors())
	}
}

func TestGreedyEdgeColoringPath(t *testing.T) {
	g := New(5)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(i, i+1)
	}
	ec := GreedyEdgeColoring(g)
	if err := ec.Validate(g); err != nil {
		t.Fatal(err)
	}
	if ec.NumColors() != 2 {
		t.Errorf("path colored with %d colors, want 2", ec.NumColors())
	}
}

func TestGreedyEdgeColoringRequiresSymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on asymmetric digraph")
		}
	}()
	g := New(2)
	g.AddArc(0, 1)
	GreedyEdgeColoring(g)
}

// TestGreedyEdgeColoringProperty: on random symmetric graphs the coloring is
// proper and uses at most 2Δ−1 colors.
func TestGreedyEdgeColoringProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomSymmetric(seed, 12, 0.3)
		ec := GreedyEdgeColoring(g)
		if err := ec.Validate(g); err != nil {
			return false
		}
		maxDeg := g.MaxDeg() / 2
		if maxDeg == 0 {
			return ec.NumColors() == 0
		}
		return ec.NumColors() <= 2*maxDeg-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomSymmetric builds a deterministic pseudo-random symmetric digraph
// from a seed using a simple LCG (no external dependencies).
func randomSymmetric(seed int64, n int, p float64) *Digraph {
	g := New(n)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if next() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestValidateCatchesBadColoring(t *testing.T) {
	g := buildTriangle()
	bad := &EdgeColoring{Classes: [][]Arc{{{0, 1}, {1, 2}}}}
	if err := bad.Validate(g); err == nil {
		t.Error("non-matching class accepted")
	}
	missing := &EdgeColoring{Classes: [][]Arc{{{0, 1}}}}
	if err := missing.Validate(g); err == nil {
		t.Error("incomplete coloring accepted")
	}
}
