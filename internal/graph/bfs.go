package graph

// Unreached marks vertices not reachable from the BFS sources.
const Unreached = -1

// BFS returns the vector of directed distances from src; unreachable
// vertices get Unreached.
func (g *Digraph) BFS(src int) []int {
	return g.MultiSourceBFS([]int{src})
}

// MultiSourceBFS returns distances from the nearest of the given sources.
//
//gossip:allowpanic range guard: indices come from trusted topology constructions
func (g *Digraph) MultiSourceBFS(srcs []int) []int {
	g.sortAdj()
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreached
	}
	queue := make([]int, 0, g.n)
	for _, s := range srcs {
		if s < 0 || s >= g.n {
			panic("graph: BFS source out of range")
		}
		if dist[s] == Unreached {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.out[u] {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum directed distance from u to any vertex,
// or Unreached if some vertex is unreachable.
func (g *Digraph) Eccentricity(u int) int {
	dist := g.BFS(u)
	ecc := 0
	for _, d := range dist {
		if d == Unreached {
			return Unreached
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the maximum directed eccentricity, or Unreached if the
// digraph is not strongly connected. It runs a BFS per vertex, so it is
// intended for the moderate instance sizes used in tests and experiments.
// The result is memoized (and invalidated by AddArc/AddEdge), so the bound
// evaluation inside every certification of a shared network pays the
// all-pairs BFS once; concurrent callers serialize on the memo.
func (g *Digraph) Diameter() int {
	g.diamMu.Lock()
	defer g.diamMu.Unlock()
	if g.diamArcs == len(g.arcSet)+1 {
		return g.diamVal
	}
	diam := 0
	for u := 0; u < g.n; u++ {
		ecc := g.Eccentricity(u)
		if ecc == Unreached {
			diam = Unreached
			break
		}
		if ecc > diam {
			diam = ecc
		}
	}
	g.diamVal, g.diamArcs = diam, len(g.arcSet)+1
	return diam
}

// DistBetweenSets returns min over x∈from, y∈to of dist(x,y), the quantity
// bounded by Definition 3.5 (⟨α,ℓ⟩-separators). Returns Unreached if no
// vertex of to is reachable from from.
//
//gossip:allowpanic range guard: indices come from trusted topology constructions
func (g *Digraph) DistBetweenSets(from, to []int) int {
	if len(from) == 0 || len(to) == 0 {
		panic("graph: DistBetweenSets with empty set")
	}
	dist := g.MultiSourceBFS(from)
	best := Unreached
	for _, y := range to {
		d := dist[y]
		if d == Unreached {
			continue
		}
		if best == Unreached || d < best {
			best = d
		}
	}
	return best
}

// IsStronglyConnected reports whether every vertex is reachable from vertex 0
// in both g and its reverse, which for a finite digraph is equivalent to
// strong connectivity.
func (g *Digraph) IsStronglyConnected() bool {
	if g.n == 0 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == Unreached {
			return false
		}
	}
	for _, d := range g.Reverse().BFS(0) {
		if d == Unreached {
			return false
		}
	}
	return true
}
