package graph

import "testing"

// TestDiameterMemo pins the Diameter memo: repeated calls return the cached
// value, and growing the graph invalidates it.
func TestDiameterMemo(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("path diameter = %d, want 4", d)
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("memoized diameter = %d, want 4", d)
	}
	g.AddEdge(0, 4) // close the cycle: diameter drops to 2
	if d := g.Diameter(); d != 2 {
		t.Fatalf("diameter after AddEdge = %d, want 2 (stale memo?)", d)
	}
}

// TestDiameterMemoConcurrent exercises the memo from many goroutines under
// the race detector.
func TestDiameterMemoConcurrent(t *testing.T) {
	g := New(64)
	for i := 0; i < 64; i++ {
		g.AddEdge(i, (i+1)%64)
	}
	g.EnsureSorted()
	want := g.Diameter()
	done := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func() { done <- g.Diameter() }()
	}
	for w := 0; w < 8; w++ {
		if d := <-done; d != want {
			t.Fatalf("concurrent diameter = %d, want %d", d, want)
		}
	}
}
