package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DiameterParallel computes the directed diameter with one BFS per source
// fanned out over worker goroutines. It returns Unreached if the digraph is
// not strongly connected. Results are identical to Diameter; use this for
// the larger instances in experiments (n in the thousands).
func (g *Digraph) DiameterParallel() int {
	if g.n == 0 {
		return 0
	}
	g.sortAdj() // sort once up front; workers only read afterwards
	workers := runtime.GOMAXPROCS(0)
	if workers > g.n {
		workers = g.n
	}
	var next int64 = -1
	var diam int64
	var disconnected atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Reusable per-worker buffers keep the hot loop allocation-free.
			dist := make([]int, g.n)
			queue := make([]int, 0, g.n)
			for {
				u := int(atomic.AddInt64(&next, 1))
				if u >= g.n || disconnected.Load() {
					return
				}
				ecc := g.eccentricityInto(u, dist, queue)
				if ecc == Unreached {
					disconnected.Store(true)
					return
				}
				for {
					cur := atomic.LoadInt64(&diam)
					if int64(ecc) <= cur || atomic.CompareAndSwapInt64(&diam, cur, int64(ecc)) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if disconnected.Load() {
		return Unreached
	}
	return int(diam)
}

// eccentricityInto is the allocation-free BFS eccentricity used by the
// parallel diameter workers. dist and queue are scratch buffers of length
// ≥ n; the caller must not share them between goroutines.
func (g *Digraph) eccentricityInto(src int, dist []int, queue []int) int {
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	queue = queue[:0]
	queue = append(queue, src)
	ecc := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.out[u] {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				if dist[v] > ecc {
					ecc = dist[v]
				}
				queue = append(queue, v)
			}
		}
	}
	if len(queue) < g.n {
		return Unreached
	}
	return ecc
}
