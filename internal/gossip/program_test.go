// Differential coverage for the schedule compiler: executing a compiled
// Program must be byte-identical to interpreting the protocol's arc slices,
// round by round, on every backend (serial state, sharded pool, packed
// frontier, completion certificate), and the compiled hot path must not
// allocate. The tests live in the external package so they can drive the
// core through real protocol constructions.
package gossip_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// randomMatchingProtocol builds a random valid protocol on g: each round
// greedily packs a random subset of arcs into a matching. Systolic or
// finite, per the flag.
func randomMatchingProtocol(rng *rand.Rand, g *graph.Digraph, rounds int, systolic bool, mode gossip.Mode) *gossip.Protocol {
	arcs := g.Arcs()
	var rs [][]graph.Arc
	for r := 0; r < rounds; r++ {
		perm := rng.Perm(len(arcs))
		busy := make(map[int]struct{})
		var round []graph.Arc
		for _, i := range perm {
			a := arcs[i]
			if rng.Intn(2) == 0 {
				continue
			}
			if _, ok := busy[a.From]; ok {
				continue
			}
			if _, ok := busy[a.To]; ok {
				continue
			}
			busy[a.From] = struct{}{}
			busy[a.To] = struct{}{}
			round = append(round, a)
		}
		rs = append(rs, round)
	}
	if systolic {
		return gossip.NewSystolic(rs, mode)
	}
	return gossip.NewFinite(rs, mode)
}

func randomSymmetricGraph(rng *rand.Rand, n int) *graph.Digraph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v)
	}
	for extra := 0; extra < n; extra++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasArc(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestCompiledStepMatchesInterpreted is the fuzz-style core differential:
// across random graphs and random (systolic and finite) protocols, the
// compiled gossip state — serial and sharded — and the compiled frontier
// must match the interpreted backends after every round, byte for byte.
func TestCompiledStepMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(9)
		g := randomSymmetricGraph(rng, n)
		p := randomMatchingProtocol(rng, g, 3+rng.Intn(8), trial%2 == 0, gossip.HalfDuplex)
		if err := p.Validate(g); err != nil {
			t.Fatalf("trial %d: generator produced invalid protocol: %v", trial, err)
		}
		prog, err := gossip.Compile(p, n, n)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		if got, want := prog.Fingerprint(), p.Fingerprint(); got != want {
			t.Fatalf("trial %d: program fingerprint %s, protocol %s", trial, got, want)
		}

		interp := gossip.NewState(n)
		compiled := gossip.NewState(n)
		sharded := gossip.NewState(n)
		pool := gossip.NewPool(1 + rng.Intn(4))
		sharded.UsePool(pool)

		bprog, err := gossip.Compile(p, n, 1)
		if err != nil {
			t.Fatalf("trial %d: broadcast compile: %v", trial, err)
		}
		src := rng.Intn(n)
		interpFr := gossip.NewFrontierState(n, src)
		compiledFr := gossip.NewFrontierState(n, src)

		rounds := 4 * (p.Len() + 1) // past the end of finite protocols on purpose
		for r := -1; r < rounds; r++ {
			interp.Step(p.Round(r))
			compiled.StepProgram(prog, r)
			sharded.StepProgram(prog, r)
			want := interp.Export()
			if !bytes.Equal(compiled.Export(), want) {
				t.Fatalf("trial %d round %d: serial compiled state diverged", trial, r)
			}
			if !bytes.Equal(sharded.Export(), want) {
				t.Fatalf("trial %d round %d: sharded compiled state diverged", trial, r)
			}
			if compiled.TotalKnowledge() != interp.TotalKnowledge() ||
				sharded.TotalKnowledge() != interp.TotalKnowledge() {
				t.Fatalf("trial %d round %d: knowledge counters diverged", trial, r)
			}
			if compiled.GossipComplete() != interp.GossipComplete() {
				t.Fatalf("trial %d round %d: completion flags diverged", trial, r)
			}

			wantGain := interpFr.Step(p.Round(r))
			if gotGain := compiledFr.StepProgram(bprog, r); gotGain != wantGain {
				t.Fatalf("trial %d round %d: frontier gains %d vs %d", trial, r, gotGain, wantGain)
			}
			if !bytes.Equal(compiledFr.Export(), interpFr.Export()) {
				t.Fatalf("trial %d round %d: frontier sets diverged", trial, r)
			}
		}
		pool.Close()
	}
}

// TestCompiledArbitraryArcSets exercises the compiler's general path:
// rounds that are NOT matchings — overlapping senders and receivers,
// duplicate destinations, opposite pairs entangled with extra arcs — force
// the snapshot spans, the prev/cur regrouping and the duplicate-receiver
// bucketing that validated protocols never need. Compiled execution
// (serial and sharded) must still match the interpreter byte for byte.
func TestCompiledArbitraryArcSets(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		var rs [][]graph.Arc
		for r := 0; r < 2+rng.Intn(6); r++ {
			var round []graph.Arc
			for k := 0; k < rng.Intn(3*n); k++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					round = append(round, graph.Arc{From: u, To: v})
				}
			}
			rs = append(rs, round)
		}
		var p *gossip.Protocol
		if trial%2 == 0 {
			p = gossip.NewSystolic(rs, gossip.Directed)
		} else {
			p = gossip.NewFinite(rs, gossip.Directed)
		}
		prog, err := gossip.Compile(p, n, n)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		interp := gossip.NewState(n)
		compiled := gossip.NewState(n)
		sharded := gossip.NewState(n)
		pool := gossip.NewPool(1 + rng.Intn(4))
		sharded.UsePool(pool)
		for r := 0; r < 3*(len(rs)+1); r++ {
			interp.Step(p.Round(r))
			compiled.StepProgram(prog, r)
			sharded.StepProgram(prog, r)
			want := interp.Export()
			if !bytes.Equal(compiled.Export(), want) {
				t.Fatalf("trial %d round %d: serial compiled diverged on arbitrary arc set", trial, r)
			}
			if !bytes.Equal(sharded.Export(), want) {
				t.Fatalf("trial %d round %d: sharded compiled diverged on arbitrary arc set", trial, r)
			}
			if compiled.TotalKnowledge() != interp.TotalKnowledge() ||
				sharded.TotalKnowledge() != interp.TotalKnowledge() {
				t.Fatalf("trial %d round %d: knowledge counters diverged", trial, r)
			}
		}
		pool.Close()
	}
}

// TestCompiledMatchesOnRealTopologies pins the differential on the paper's
// constructions across all three communication modes, sweeping worker
// counts through the shard partitions.
func TestCompiledMatchesOnRealTopologies(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Digraph
		proto func(*graph.Digraph) *gossip.Protocol
	}{
		{"debruijn/half", topology.NewDeBruijn(2, 6).G, protocols.PeriodicHalfDuplex},
		{"hypercube/full", topology.Hypercube(5), protocols.PeriodicFullDuplex},
		{"kautz-digraph/directed", topology.NewKautzDigraph(2, 5).G, protocols.RoundRobinDirected},
		{"ccc/full", topology.CCC(3), protocols.PeriodicFullDuplex},
		{"shuffle-exchange/half", topology.ShuffleExchange(4), protocols.PeriodicInterleavedHalfDuplex},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.proto(tc.g)
			if err := p.Validate(tc.g); err != nil {
				t.Fatal(err)
			}
			n := tc.g.N()
			prog, err := gossip.Compile(p, n, n)
			if err != nil {
				t.Fatal(err)
			}
			interp := gossip.NewState(n)
			var dumps [][]byte
			for r := 0; !interp.GossipComplete() && r < 10000; r++ {
				interp.Step(p.Round(r))
				dumps = append(dumps, interp.Export())
			}
			if !interp.GossipComplete() {
				t.Fatal("interpreted run did not complete")
			}
			for workers := 0; workers <= 5; workers++ {
				st := gossip.NewState(n)
				var pool *gossip.Pool
				if workers > 0 {
					pool = gossip.NewPool(workers)
					st.UsePool(pool)
				}
				for r := range dumps {
					st.StepProgram(prog, r)
					if !bytes.Equal(st.Export(), dumps[r]) {
						t.Fatalf("workers=%d: compiled state diverged at round %d", workers, r+1)
					}
				}
				if !st.GossipComplete() {
					t.Fatalf("workers=%d: compiled run did not complete", workers)
				}
				if pool != nil {
					pool.Close()
				}
			}
		})
	}
}

// TestProgramCertificateMatchesInterpreted cross-checks the compiled
// completion certificate against a direct interpretation of the same
// forward propagation over arc slices.
func TestProgramCertificateMatchesInterpreted(t *testing.T) {
	interpretedCert := func(g *graph.Digraph, p *gossip.Protocol, tt int) bool {
		n := g.N()
		for x := 0; x < n; x++ {
			reached := make([]bool, n)
			reached[x] = true
			cnt := 1
			for r := 0; r < tt && cnt < n; r++ {
				var gained []int
				for _, a := range p.Round(r) {
					if reached[a.From] && !reached[a.To] {
						gained = append(gained, a.To)
					}
				}
				for _, v := range gained {
					reached[v] = true
				}
				cnt += len(gained)
			}
			if cnt < n {
				return false
			}
		}
		return true
	}

	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(6)
		g := randomSymmetricGraph(rng, n)
		p := randomMatchingProtocol(rng, g, 12, trial%2 == 0, gossip.HalfDuplex)
		for tt := 0; tt <= 14; tt += 2 {
			if got, want := gossip.CompletionCertificate(g, p, tt), interpretedCert(g, p, tt); got != want {
				t.Fatalf("trial %d t=%d: compiled certificate %v, interpreted %v", trial, tt, got, want)
			}
		}
	}
}

// TestCompiledStepZeroAlloc pins the compiled hot path at zero allocations
// in steady state — serial and sharded alike (the shard partition is
// memoized on first use, which the warm-up run absorbs).
func TestCompiledStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	db := topology.NewDeBruijn(2, 8)
	p := protocols.PeriodicHalfDuplex(db.G)
	n := db.G.N()
	prog, err := gossip.Compile(p, n, n)
	if err != nil {
		t.Fatal(err)
	}

	st := gossip.NewState(n)
	r := 0
	if got := testing.AllocsPerRun(50, func() {
		st.StepProgram(prog, r)
		r++
	}); got != 0 {
		t.Errorf("serial compiled Step allocates %v objects per round, want 0", got)
	}

	sharded := gossip.NewState(n)
	pool := gossip.NewPool(4)
	defer pool.Close()
	sharded.UsePool(pool)
	r = 0
	if got := testing.AllocsPerRun(50, func() {
		sharded.StepProgram(prog, r)
		r++
	}); got != 0 {
		t.Errorf("sharded compiled Step allocates %v objects per round, want 0", got)
	}

	bprog, err := gossip.Compile(p, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr := gossip.NewFrontierState(n, 0)
	r = 0
	if got := testing.AllocsPerRun(50, func() {
		fr.StepProgram(bprog, r)
		r++
	}); got != 0 {
		t.Errorf("compiled frontier Step allocates %v objects per round, want 0", got)
	}
}

// TestCompileRejects: arcs outside the processor range and degenerate
// shapes must fail compilation with an error, not a panic downstream.
func TestCompileRejects(t *testing.T) {
	p := gossip.NewFinite([][]graph.Arc{{{From: 0, To: 7}}}, gossip.Directed)
	if _, err := gossip.Compile(p, 4, 4); err == nil {
		t.Error("out-of-range arc compiled")
	}
	if _, err := gossip.Compile(p, -1, 1); err == nil {
		t.Error("negative processor count compiled")
	}
	if _, err := gossip.Compile(p, 8, 0); err == nil {
		t.Error("zero item width compiled")
	}
	ok := gossip.NewSystolic([][]graph.Arc{{{From: 0, To: 1}}}, gossip.Directed)
	pr, err := gossip.Compile(ok, 2, 2)
	if err != nil {
		t.Fatalf("valid protocol failed to compile: %v", err)
	}
	if pr.Len() != 1 || !pr.Systolic() || pr.NumArcs() != 1 || pr.N() != 2 || pr.Items() != 2 {
		t.Errorf("program metadata mismatch: %+v", pr)
	}
	if pr.Mode() != gossip.Directed || pr.Period() != 1 {
		t.Errorf("program mode/period mismatch")
	}
}
