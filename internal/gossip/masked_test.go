// Differential coverage for masked (fault-injected) execution: with an
// always-true filter StepProgramMasked must be byte-identical to
// StepProgram, and with an arbitrary deterministic filter it must be
// byte-identical to interpreting the filtered arc slices with Step — on
// both the gossip state and the packed broadcast frontier. Reset must
// restore the exact initial state.
package gossip_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// maskedWorkloads cover the compiler's structural cases: fused full-duplex
// exchanges (hypercube), unfused half-duplex matchings (de Bruijn), and a
// directed round-robin whose rounds mix snapshot- and live-reading arcs.
func maskedWorkloads() []struct {
	name string
	g    *graph.Digraph
	p    *gossip.Protocol
} {
	hc := topology.Hypercube(4)
	db := topology.NewDeBruijn(2, 4)
	dd := topology.NewDeBruijnDigraph(2, 4)
	return []struct {
		name string
		g    *graph.Digraph
		p    *gossip.Protocol
	}{
		{"hypercube/exchange", hc, protocols.HypercubeExchange(4)},
		{"debruijn/periodic-half", db.G, protocols.PeriodicHalfDuplex(db.G)},
		{"debruijn-digraph/round-robin", dd.G, protocols.RoundRobinDirected(dd.G)},
	}
}

// TestMaskedKeepAllIdentity: an always-true filter reproduces the unmasked
// compiled execution exactly, round by round.
func TestMaskedKeepAllIdentity(t *testing.T) {
	keepAll := func(from, to int32) bool { return true }
	for _, w := range maskedWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			n := w.g.N()
			pr, err := gossip.Compile(w.p, n, n)
			if err != nil {
				t.Fatal(err)
			}
			ref := gossip.NewState(n)
			got := gossip.NewState(n)
			for r := 0; r < 64 && !ref.GossipComplete(); r++ {
				ref.StepProgram(pr, r)
				got.StepProgramMasked(pr, r, keepAll)
				if !bytes.Equal(ref.Export(), got.Export()) {
					t.Fatalf("round %d: masked keep-all state diverged", r)
				}
				if ref.TotalKnowledge() != got.TotalKnowledge() {
					t.Fatalf("round %d: knowledge %d != %d", r, got.TotalKnowledge(), ref.TotalKnowledge())
				}
			}
			if !ref.GossipComplete() || !got.GossipComplete() {
				t.Fatal("workload did not complete")
			}
		})
	}
}

// TestMaskedDifferentialRandomFilters: for random deterministic filters,
// the masked compiled execution equals interpreting the filtered arc
// slices with Step — the semantic contract faults are injected under.
func TestMaskedDifferentialRandomFilters(t *testing.T) {
	for _, w := range maskedWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			n := w.g.N()
			pr, err := gossip.Compile(w.p, n, n)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 5; seed++ {
				// drop[r] records, per round, which ordered arcs are dropped;
				// the same decisions drive both executions.
				rng := rand.New(rand.NewSource(seed))
				drop := make([]map[graph.Arc]bool, 48)
				for r := range drop {
					drop[r] = make(map[graph.Arc]bool)
					for _, a := range w.p.Round(r) {
						if rng.Intn(3) == 0 {
							drop[r][a] = true
						}
					}
				}
				ref := gossip.NewState(n)
				got := gossip.NewState(n)
				var filtered []graph.Arc
				for r := 0; r < len(drop); r++ {
					filtered = filtered[:0]
					for _, a := range w.p.Round(r) {
						if !drop[r][a] {
							filtered = append(filtered, a)
						}
					}
					ref.Step(filtered)
					round := r
					got.StepProgramMasked(pr, r, func(from, to int32) bool {
						return !drop[round][graph.Arc{From: int(from), To: int(to)}]
					})
					if !bytes.Equal(ref.Export(), got.Export()) {
						t.Fatalf("seed %d round %d: masked state diverged from filtered interpretation", seed, r)
					}
				}
				if ref.TotalKnowledge() != got.TotalKnowledge() {
					t.Fatalf("seed %d: knowledge %d != %d", seed, got.TotalKnowledge(), ref.TotalKnowledge())
				}
			}
		})
	}
}

// TestFrontierMaskedDifferential: the packed frontier's masked step equals
// the filtered interpreted frontier step from every source.
func TestFrontierMaskedDifferential(t *testing.T) {
	for _, w := range maskedWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			n := w.g.N()
			pr, err := gossip.Compile(w.p, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			for source := 0; source < n; source += 1 + n/5 {
				drop := make([]map[graph.Arc]bool, 48)
				for r := range drop {
					drop[r] = make(map[graph.Arc]bool)
					for _, a := range w.p.Round(r) {
						if rng.Intn(3) == 0 {
							drop[r][a] = true
						}
					}
				}
				ref := gossip.NewFrontierState(n, source)
				got := gossip.NewFrontierState(n, source)
				var filtered []graph.Arc
				for r := 0; r < len(drop); r++ {
					filtered = filtered[:0]
					for _, a := range w.p.Round(r) {
						if !drop[r][a] {
							filtered = append(filtered, a)
						}
					}
					g1 := ref.Step(filtered)
					round := r
					g2 := got.StepProgramMasked(pr, r, func(from, to int32) bool {
						return !drop[round][graph.Arc{From: int(from), To: int(to)}]
					})
					if g1 != g2 {
						t.Fatalf("source %d round %d: frontier gained %d, want %d", source, r, g2, g1)
					}
					if ref.InformedCount() != got.InformedCount() {
						t.Fatalf("source %d round %d: informed %d != %d",
							source, r, got.InformedCount(), ref.InformedCount())
					}
				}
			}
		})
	}
}

// TestStateReset: Reset restores the exact initial gossip configuration
// after an arbitrary run, and a reset state replays a run byte-identically.
func TestStateReset(t *testing.T) {
	db := topology.NewDeBruijn(2, 4)
	p := protocols.PeriodicHalfDuplex(db.G)
	n := db.G.N()
	pr, err := gossip.Compile(p, n, n)
	if err != nil {
		t.Fatal(err)
	}
	fresh := gossip.NewState(n)
	st := gossip.NewState(n)
	for r := 0; !st.GossipComplete(); r++ {
		st.StepProgram(pr, r)
	}
	st.Reset()
	if !bytes.Equal(st.Export(), fresh.Export()) {
		t.Fatal("Reset state differs from a fresh NewState")
	}
	if st.TotalKnowledge() != n {
		t.Fatalf("Reset knowledge = %d, want %d", st.TotalKnowledge(), n)
	}
	var runA, runB []byte
	for r := 0; !st.GossipComplete(); r++ {
		st.StepProgram(pr, r)
	}
	runA = st.Export()
	st.Reset()
	for r := 0; !st.GossipComplete(); r++ {
		st.StepProgram(pr, r)
	}
	runB = st.Export()
	if !bytes.Equal(runA, runB) {
		t.Fatal("replay after Reset diverged")
	}
}
