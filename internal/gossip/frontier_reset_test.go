package gossip_test

import (
	"bytes"
	"testing"

	"repro/internal/gossip"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// TestFrontierReset: a Reset state is indistinguishable from a freshly
// allocated one — same payload, same counters, and the subsequent run is
// identical round by round. This is the reuse path all-sources broadcast
// scans depend on to avoid two bitset allocations per source.
func TestFrontierReset(t *testing.T) {
	db := topology.NewDeBruijn(2, 6)
	n := db.G.N()
	reused := gossip.NewFrontierState(n, 0)

	// Dirty the reused state with a partial run from source 0 first.
	p0 := protocols.BroadcastSchedule(db.G, 0)
	for r := 0; r < 5; r++ {
		reused.Step(p0.Round(r))
	}

	for _, source := range []int{0, 1, n / 2, n - 1} {
		reused.Reset(source)
		fresh := gossip.NewFrontierState(n, source)
		if !bytes.Equal(reused.Export(), fresh.Export()) {
			t.Fatalf("source %d: Reset payload differs from a fresh state", source)
		}
		if reused.InformedCount() != 1 {
			t.Fatalf("source %d: Reset informed count %d, want 1", source, reused.InformedCount())
		}
		p := protocols.BroadcastSchedule(db.G, source)
		for r := 0; !fresh.Complete(); r++ {
			if r >= p.Len() {
				t.Fatalf("source %d: schedule exhausted before completion", source)
			}
			g1 := fresh.Step(p.Round(r))
			g2 := reused.Step(p.Round(r))
			if g1 != g2 {
				t.Fatalf("source %d round %d: fresh gained %d, reused gained %d", source, r+1, g1, g2)
			}
			if !bytes.Equal(reused.Export(), fresh.Export()) {
				t.Fatalf("source %d round %d: states diverged after Reset", source, r+1)
			}
		}
		if !reused.Complete() {
			t.Fatalf("source %d: reused state did not complete with the fresh one", source)
		}
	}
}

// TestFrontierResetZeroAlloc pins the point of Reset: resetting for the
// next source allocates nothing.
func TestFrontierResetZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	st := gossip.NewFrontierState(1024, 0)
	src := 0
	if got := testing.AllocsPerRun(50, func() {
		st.Reset(src % 1024)
		src++
	}); got != 0 {
		t.Errorf("Reset allocates %v objects per call, want 0", got)
	}
}

// BenchmarkFrontierReset measures the in-place reuse path against the
// allocation it replaces.
func BenchmarkFrontierReset(b *testing.B) {
	const n = 1 << 16
	st := gossip.NewFrontierState(n, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(i % n)
	}
}
