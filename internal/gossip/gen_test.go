package gossip

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

// TestStepFloodGenMatchesCSR: the generator-driven packed step must return
// exactly what the CSR step returns — complete mask, changed mask,
// informed count, and every (vertex, lane) bit — round for round, on both
// the InArcs path (DigraphSource) and the OrGatherer fast path.
func TestStepFloodGenMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	srcs := []struct {
		name string
		gen  graph.ArcSource
	}{
		{"digraph-source", nil}, // filled per trial below
		{"hypercube-gen", topology.NewHypercubeGen(6)},
		{"ccc-gen", topology.NewCCCGen(4)},
		{"kautz-gen", topology.NewKautzGen(2, 4, false)},
	}
	for _, tc := range srcs {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				gen := tc.gen
				if gen == nil {
					n := 2 + rng.Intn(150)
					gen = graph.NewDigraphSource(randDigraph(rng, n, rng.Intn(3*n)))
				}
				g := graph.MaterializeSource(gen)
				cs := g.LowerFlood()
				n := gen.N()

				lanes := 1 + rng.Intn(PackedLanes)
				sources := make([]int, lanes)
				for i := range sources {
					sources[i] = rng.Intn(n)
				}
				ref := NewPackedFrontier(n)
				ref.Reset(sources)
				got := NewPackedFrontier(n)
				got.Reset(sources)
				fg := graph.NewFloodGen(gen)

				for round := 1; ; round++ {
					wc, wch, wi := ref.StepFlood(cs)
					gc, gch, gi := got.StepFloodGen(fg)
					if gc != wc || gch != wch || gi != wi {
						t.Fatalf("trial %d round %d: gen step (%x, %x, %d), CSR (%x, %x, %d)",
							trial, round, gc, gch, gi, wc, wch, wi)
					}
					for v := 0; v < n; v++ {
						for lane := 0; lane < lanes; lane++ {
							if got.Informed(v, lane) != ref.Informed(v, lane) {
								t.Fatalf("trial %d round %d: vertex %d lane %d diverged", trial, round, v, lane)
							}
						}
					}
					if wch == 0 {
						break
					}
				}
				if tc.gen != nil {
					break // deterministic generator: one trial suffices
				}
			}
		})
	}
}

// TestStepFloodGenRangeSharded: stepping a round as disjoint vertex-range
// shards plus one CommitStep must equal the single-range step, with the
// round results AND/OR/sum-folded across shards.
func TestStepFloodGenRangeSharded(t *testing.T) {
	gen := topology.NewHypercubeGen(7)
	n := gen.N()
	sources := []int{0, 1, 31, 100, 127}
	ref := NewPackedFrontier(n)
	ref.Reset(sources)
	got := NewPackedFrontier(n)
	got.Reset(sources)
	refFg := graph.NewFloodGen(gen)
	shards := []int{0, 13, 64, 65, 128} // uneven on purpose
	fgs := make([]*graph.FloodGen, len(shards)-1)
	for i := range fgs {
		fgs[i] = graph.NewFloodGen(gen)
	}
	for round := 1; ; round++ {
		wc, wch, wi := ref.StepFloodGen(refFg)
		and := ^uint64(0)
		var ch uint64
		informed := 0
		for i := 0; i+1 < len(shards); i++ {
			a, c, inf := got.StepFloodGenRange(fgs[i], shards[i], shards[i+1])
			and &= a
			ch |= c
			informed += inf
		}
		got.CommitStep()
		gc, gch := and&got.Full(), ch&got.Full()
		if gc != wc || gch != wch || informed != wi {
			t.Fatalf("round %d: sharded (%x, %x, %d), whole (%x, %x, %d)",
				round, gc, gch, informed, wc, wch, wi)
		}
		if wch == 0 {
			break
		}
	}
}

// TestStepGenMatchesStep: the scalar generator step must match the scalar
// arc-slice step round for round, vertex for vertex.
func TestStepGenMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(120)
		g := randDigraph(rng, n, rng.Intn(2*n))
		gen := graph.NewDigraphSource(g)
		flood := g.LowerFlood().Arcs()
		fg := graph.NewFloodGen(gen)
		source := rng.Intn(n)
		ref := NewFrontierState(n, source)
		got := NewFrontierState(n, source)
		for round := 1; round <= n+1; round++ {
			wg := ref.Step(flood)
			gg := got.StepGen(fg)
			if gg != wg || got.InformedCount() != ref.InformedCount() {
				t.Fatalf("trial %d round %d: gen gained %d (know %d), ref gained %d (know %d)",
					trial, round, gg, got.InformedCount(), wg, ref.InformedCount())
			}
			for v := 0; v < n; v++ {
				if got.Informed(v) != ref.Informed(v) {
					t.Fatalf("trial %d round %d: vertex %d diverged", trial, round, v)
				}
			}
			if wg == 0 {
				break
			}
		}
	}
}

// TestStepGenZeroAlloc pins the generator steps' zero-allocation contract
// at runtime (gossipvet hotalloc enforces it statically).
func TestStepGenZeroAlloc(t *testing.T) {
	gen := topology.NewHypercubeGen(8)
	n := gen.N()
	fg := graph.NewFloodGen(gen)
	pf := NewPackedFrontier(n)
	sources := make([]int, PackedLanes)
	for i := range sources {
		sources[i] = i
	}
	pf.Reset(sources)
	if allocs := testing.AllocsPerRun(100, func() {
		pf.StepFloodGen(fg)
	}); allocs != 0 {
		t.Fatalf("StepFloodGen allocated %.1f times per step, want 0", allocs)
	}
	// The InArcs slow path, via a wrapped digraph.
	slow := graph.NewFloodGen(graph.NewDigraphSource(graph.MaterializeSource(gen)))
	if allocs := testing.AllocsPerRun(100, func() {
		pf.StepFloodGen(slow)
	}); allocs != 0 {
		t.Fatalf("StepFloodGen (InArcs path) allocated %.1f times per step, want 0", allocs)
	}
	fs := NewFrontierState(n, 0)
	if allocs := testing.AllocsPerRun(100, func() {
		fs.StepGen(fg)
	}); allocs != 0 {
		t.Fatalf("StepGen allocated %.1f times per step, want 0", allocs)
	}
}
