package gossip_test

import (
	"testing"

	"repro/internal/gossip"
	"repro/internal/topology"
)

// The generator-program-vs-CSR step pair on hypercube d=12: the same
// dimension-order exchange schedule, one executing the lowered CSR Program
// (fused arc pairs in memory) and one recomputing each round's senders
// from the vertex id. Each reports its resident footprint as bytes/node:
// the CSR Program carries ~8 bytes per fused pair per round on top of the
// frontier bits, the generator's scratch is one fixed chunk buffer. The
// BENCH_PR10 gate holds the generator step within the accepted ratio of
// the CSR step (see .github/workflows/ci.yml).

func genProgramBenchSchedule() *gossip.GenProgram {
	sched := topology.NewSchedule(topology.NewHypercubeClasses(12))
	return gossip.CompileGen(sched.FullDuplex(), gossip.FullDuplex)
}

// BenchmarkGenProgramStep measures the generator-compiled frontier step:
// hypercube d=12, senders computed per chunk, zero allocations.
func BenchmarkGenProgramStep(b *testing.B) {
	gen := genProgramBenchSchedule()
	n := gen.N()
	run := gossip.NewGenRun(gen)
	fr := gossip.NewFrontierState(n, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.StepGenProgram(run, i)
	}
	// After ResetTimer, which deletes user metrics.
	b.ReportMetric(float64(2*(n/8)+4*4096)/float64(n), "bytes/node")
}

// BenchmarkGenProgramStepCSR is the materialized reference: the identical
// schedule lowered to a CSR Program and executed by the compiled frontier
// step.
func BenchmarkGenProgramStepCSR(b *testing.B) {
	gen := genProgramBenchSchedule()
	n := gen.N()
	prog, err := gossip.Compile(gen.Materialize(), n, 1)
	if err != nil {
		b.Fatal(err)
	}
	fr := gossip.NewFrontierState(n, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.StepProgram(prog, i)
	}
	// One fused exchange (8 bytes) per vertex per round, period d rounds,
	// on top of the two frontier bitsets.
	b.ReportMetric(float64(2*(n/8)+8*(n/2)*12)/float64(n), "bytes/node")
}

// BenchmarkPackedStepGenProgram measures the 64-lane generator-program
// step on hypercube d=12 — the kernel the per-source certification scan
// drives.
func BenchmarkPackedStepGenProgram(b *testing.B) {
	gen := genProgramBenchSchedule()
	n := gen.N()
	run := gossip.NewGenRun(gen)
	pf := packedBenchSetup(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.StepGenProgram(run, i)
	}
	b.ReportMetric(float64(16*n+4*4096)/float64(n), "bytes/node")
}
