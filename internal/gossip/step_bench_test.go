// Hot-path benchmarks and invariants for the flat double-buffered gossip
// core: Step must not allocate in steady state, the sharded Step must be
// byte-identical to the serial one, and the packed frontier backend must
// agree with the full bitset state on broadcasts. The benchmarks live in an
// external test package so they can drive the core through real protocols
// (importing repro/internal/protocols from package gossip would cycle).
package gossip_test

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/gossip"
	"repro/internal/protocols"
	"repro/internal/topology"
)

// BenchmarkStep measures the serial hot path on the 4096-vertex de Bruijn
// graph DB(2,12) and proves it allocates nothing: the double-buffered word
// array replaces the old per-round map of cloned bitsets.
func BenchmarkStep(b *testing.B) {
	db := topology.NewDeBruijn(2, 12)
	p := protocols.PeriodicHalfDuplex(db.G)
	st := gossip.NewState(db.G.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(p.Round(i))
	}
}

// BenchmarkStepSharded is BenchmarkStep with the worker pool attached —
// the configuration the engine selects above its shard threshold. Compare
// with BenchmarkStep to see the speedup on ≥4096-vertex instances.
func BenchmarkStepSharded(b *testing.B) {
	db := topology.NewDeBruijn(2, 12)
	p := protocols.PeriodicHalfDuplex(db.G)
	st := gossip.NewState(db.G.N())
	pool := gossip.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	st.UsePool(pool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(p.Round(i))
	}
}

// BenchmarkCompiledStep measures the compiled hot path on the 4096-vertex
// hypercube H(12) running the dimension-exchange schedule: the schedule is
// lowered once into a Program (precomputed word offsets, coalesced sender
// copy-spans — here a single whole-array memcpy per round, dst-sorted
// merges) and Step executes the IR with zero allocations. Compare with
// BenchmarkUncompiledStep, the slice-interpreted Step on the identical
// workload, for the compile-once win; BenchmarkStep (DB(2,12), a ~4×
// smaller per-round workload) remains the cross-PR regression anchor.
func BenchmarkCompiledStep(b *testing.B) {
	hc := topology.Hypercube(12)
	p := protocols.HypercubeExchange(12)
	n := hc.N()
	prog, err := gossip.Compile(p, n, n)
	if err != nil {
		b.Fatal(err)
	}
	st := gossip.NewState(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.StepProgram(prog, i)
	}
}

// BenchmarkUncompiledStep is the slice-interpreted baseline for
// BenchmarkCompiledStep: the same hypercube d=12 exchange schedule driven
// through State.Step on raw []graph.Arc rounds.
func BenchmarkUncompiledStep(b *testing.B) {
	hc := topology.Hypercube(12)
	p := protocols.HypercubeExchange(12)
	st := gossip.NewState(hc.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(p.Round(i))
	}
}

// BenchmarkCompiledStepSharded is BenchmarkCompiledStep with the worker
// pool attached, executing the compile-time shard partition (contiguous
// receiver ranges and balanced sender spans instead of per-step ownership
// scans).
func BenchmarkCompiledStepSharded(b *testing.B) {
	hc := topology.Hypercube(12)
	p := protocols.HypercubeExchange(12)
	n := hc.N()
	prog, err := gossip.Compile(p, n, n)
	if err != nil {
		b.Fatal(err)
	}
	st := gossip.NewState(n)
	pool := gossip.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	st.UsePool(pool)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.StepProgram(prog, i)
	}
}

// BenchmarkProgramCompile measures the one-off lowering cost itself —
// packing, dst-sorting and span-merging the hypercube d=12 schedule — the
// price paid once per session (or once per program-cache fill) to make
// every subsequent round cheaper.
func BenchmarkProgramCompile(b *testing.B) {
	hc := topology.Hypercube(12)
	p := protocols.HypercubeExchange(12)
	n := hc.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gossip.Compile(p, n, n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompletionCertificate measures the independent certificate
// checker on DB(2,8) with its hoisted, stamp-reset buffers.
func BenchmarkCompletionCertificate(b *testing.B) {
	db := topology.NewDeBruijn(2, 8)
	p := protocols.PeriodicHalfDuplex(db.G)
	res, err := gossip.Simulate(db.G, p, 100000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !gossip.CompletionCertificate(db.G, p, res.Rounds) {
			b.Fatal("certificate rejected a completed run")
		}
	}
}

// BenchmarkFrontierStep measures the packed broadcast backend on DB(2,12).
func BenchmarkFrontierStep(b *testing.B) {
	db := topology.NewDeBruijn(2, 12)
	p := protocols.BroadcastSchedule(db.G, 0)
	st := gossip.NewFrontierState(db.G.N(), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(p.Round(i % p.Len()))
	}
}

// TestStepZeroAlloc pins the satellite requirement: a steady-state Step
// performs zero allocations (serial and sharded alike).
func TestStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	db := topology.NewDeBruijn(2, 8)
	p := protocols.PeriodicHalfDuplex(db.G)

	st := gossip.NewState(db.G.N())
	r := 0
	if got := testing.AllocsPerRun(50, func() {
		st.Step(p.Round(r))
		r++
	}); got != 0 {
		t.Errorf("serial Step allocates %v objects per round, want 0", got)
	}

	sharded := gossip.NewState(db.G.N())
	pool := gossip.NewPool(4)
	defer pool.Close()
	sharded.UsePool(pool)
	r = 0
	if got := testing.AllocsPerRun(50, func() {
		sharded.Step(p.Round(r))
		r++
	}); got != 0 {
		t.Errorf("sharded Step allocates %v objects per round, want 0", got)
	}
}

// TestShardedStepMatchesSerial: the sharded core is byte-identical to the
// serial one after every round, for worker counts 1..8.
func TestShardedStepMatchesSerial(t *testing.T) {
	db := topology.NewDeBruijn(2, 7)
	p := protocols.PeriodicHalfDuplex(db.G)
	n := db.G.N()

	serial := gossip.NewState(n)
	var serialDumps [][]byte
	for r := 0; !serial.GossipComplete(); r++ {
		serial.Step(p.Round(r))
		serialDumps = append(serialDumps, serial.Export())
	}

	for workers := 1; workers <= 8; workers++ {
		pool := gossip.NewPool(workers)
		st := gossip.NewState(n)
		st.UsePool(pool)
		for r := 0; r < len(serialDumps); r++ {
			st.Step(p.Round(r))
			if !bytes.Equal(st.Export(), serialDumps[r]) {
				t.Fatalf("workers=%d: state diverged from serial at round %d", workers, r+1)
			}
			if st.TotalKnowledge() != countBits(serialDumps[r]) {
				t.Fatalf("workers=%d: incremental knowledge counter drifted at round %d", workers, r+1)
			}
		}
		if !st.GossipComplete() {
			t.Fatalf("workers=%d: sharded run did not complete with the serial schedule", workers)
		}
		pool.Close()
	}
}

func countBits(dump []byte) int {
	c := 0
	for _, b := range dump {
		for ; b != 0; b &= b - 1 {
			c++
		}
	}
	return c
}

// TestFrontierMatchesBroadcastState: the packed frontier backend agrees
// with the full State broadcast representation round by round.
func TestFrontierMatchesBroadcastState(t *testing.T) {
	db := topology.NewDeBruijn(2, 6)
	n := db.G.N()
	p := protocols.BroadcastSchedule(db.G, 3)
	full := gossip.NewBroadcastState(n, 3)
	packed := gossip.NewFrontierState(n, 3)
	for r := 0; r < 10*p.Len() && !packed.Complete(); r++ {
		round := p.Round(r % p.Len())
		full.Step(round)
		gained := packed.Step(round)
		if gained < 0 {
			t.Fatalf("round %d: negative frontier growth", r+1)
		}
		for v := 0; v < n; v++ {
			if full.Knows(v, 0) != packed.Informed(v) {
				t.Fatalf("round %d: vertex %d informed disagreement (full %v, packed %v)",
					r+1, v, full.Knows(v, 0), packed.Informed(v))
			}
		}
		if full.TotalKnowledge() != packed.InformedCount() {
			t.Fatalf("round %d: informed count disagreement", r+1)
		}
		if full.BroadcastComplete() != packed.Complete() {
			t.Fatalf("round %d: completion disagreement", r+1)
		}
	}
	if !packed.Complete() {
		t.Fatal("broadcast schedule never completed")
	}
}

// TestStateExportImport: a snapshot round-trips exactly and corrupt
// payloads are rejected.
func TestStateExportImport(t *testing.T) {
	db := topology.NewDeBruijn(2, 5)
	p := protocols.PeriodicHalfDuplex(db.G)
	st := gossip.NewState(db.G.N())
	for r := 0; r < 7; r++ {
		st.Step(p.Round(r))
	}
	dump := st.Export()

	back := gossip.NewState(db.G.N())
	if err := back.Import(dump); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Export(), dump) {
		t.Fatal("export/import round trip changed the state")
	}
	if back.TotalKnowledge() != st.TotalKnowledge() {
		t.Fatalf("imported knowledge %d, want %d", back.TotalKnowledge(), st.TotalKnowledge())
	}
	for r := 7; !st.GossipComplete(); r++ {
		st.Step(p.Round(r))
		back.Step(p.Round(r))
	}
	if !back.GossipComplete() {
		t.Fatal("imported state did not resume to completion in lockstep")
	}

	if err := back.Import(dump[:len(dump)-1]); err == nil {
		t.Error("short payload was accepted")
	}
	bad := append([]byte(nil), dump...)
	bad[len(bad)-1] = 0xFF // bits beyond item n-1 in the last word
	if db.G.N()%64 != 0 {
		if err := back.Import(bad); err == nil {
			t.Error("payload with out-of-range bits was accepted")
		}
	}
}
