package gossip_test

import (
	"testing"

	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/topology"
)

// The generator-vs-CSR step pair on hypercube d=12: same schedule, same
// packed 64-lane state, one walking the lowered arc array and one
// computing arcs on the fly. Each reports its resident footprint as
// bytes/node — the number the scale tier is about: the CSR carries
// 4(indptr) + 4·deg arc bytes per vertex on top of the 16 frontier bytes,
// while the generator's scratch is O(1) and amortizes to nothing.

func packedBenchSetup(b *testing.B, n int) *gossip.PackedFrontier {
	b.Helper()
	sources := make([]int, gossip.PackedLanes)
	for i := range sources {
		sources[i] = i % n
	}
	pf := gossip.NewPackedFrontier(n)
	pf.Reset(sources)
	return pf
}

// BenchmarkPackedStepFloodCSR is the materialized reference: one packed
// flooding step over the lowered CSR of hypercube d=12.
func BenchmarkPackedStepFloodCSR(b *testing.B) {
	g := topology.Hypercube(12)
	cs := g.LowerFlood()
	n := g.N()
	pf := packedBenchSetup(b, n)
	b.ReportMetric(float64(16*n+4*(n+1)+4*len(cs.Src))/float64(n), "bytes/node")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.StepFlood(cs)
	}
}

// BenchmarkPackedStepFloodGen is the streaming counterpart: the same step
// with arcs computed from the hypercube generator (OrGatherer fast path).
func BenchmarkPackedStepFloodGen(b *testing.B) {
	gen := topology.NewHypercubeGen(12)
	n := gen.N()
	fg := graph.NewFloodGen(gen)
	pf := packedBenchSetup(b, n)
	scratch := 4*len(fg.ArcBuf()) + 8*len(fg.OrBuf())
	b.ReportMetric(float64(16*n+scratch)/float64(n), "bytes/node")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.StepFloodGen(fg)
	}
}

// BenchmarkPackedStepFloodGenInArcs pins the slow path — per-vertex InArcs
// through the arc buffer, no OrGatherer — via the digraph adapter.
func BenchmarkPackedStepFloodGenInArcs(b *testing.B) {
	g := topology.Hypercube(12)
	src := graph.NewDigraphSource(g)
	n := g.N()
	fg := graph.NewFloodGen(src)
	pf := packedBenchSetup(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.StepFloodGen(fg)
	}
}
