package gossip

import (
	"fmt"

	"repro/internal/graph"
)

// Trace records the dissemination curve of a protocol run: per round, the
// total knowledge (sum over processors of known items), the minimum
// per-processor knowledge, and whether gossip had completed. It is the
// "series" view used by the examples and benchmarks to show protocol shape
// (slow linear growth on paths, doubling on hypercubes, …).
type Trace struct {
	Total    []int
	Min      []int
	Complete int // first 1-based round at which gossip completed, 0 if never
}

// TraceGossip executes p for up to maxRounds rounds, recording the curve.
// The protocol is validated first.
func TraceGossip(g *graph.Digraph, p *Protocol, maxRounds int) (*Trace, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	n := g.N()
	st := NewState(n)
	tr := &Trace{}
	budget := maxRounds
	if !p.Systolic() && p.Len() < budget {
		budget = p.Len()
	}
	for r := 0; r < budget; r++ {
		st.Step(p.Round(r))
		tr.Total = append(tr.Total, st.TotalKnowledge())
		min := n
		for v := 0; v < n; v++ {
			if c := st.Count(v); c < min {
				min = c
			}
		}
		tr.Min = append(tr.Min, min)
		if tr.Complete == 0 && st.GossipComplete() {
			tr.Complete = r + 1
			break
		}
	}
	return tr, nil
}

// Rounds returns the number of recorded rounds.
func (tr *Trace) Rounds() int { return len(tr.Total) }

// String renders the curve compactly: "round total/min" triples.
func (tr *Trace) String() string {
	out := ""
	for i := range tr.Total {
		out += fmt.Sprintf("%d:%d/%d ", i+1, tr.Total[i], tr.Min[i])
	}
	if tr.Complete > 0 {
		out += fmt.Sprintf("(complete at %d)", tr.Complete)
	}
	return out
}
