package gossip

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Program is a Protocol compiled for a fixed state shape (n processors,
// items-wide knowledge sets): the schedule IR every execution layer shares.
// Compilation does the O(period) work once instead of per step, and proves
// per-round structure the interpreter would have to rediscover every step:
//
//   - arcs are CSR-packed into flat arrays of precomputed
//     (srcWordOff, dstWordOff) pairs, so the hot loop neither chases slice
//     headers nor multiplies vertex ids;
//   - full-duplex opposite pairs (u,v),(v,u) whose endpoints touch no other
//     arc of the round are fused into a single exchange op: both blocks
//     become the OR of their beginning-of-round values in one pass, with no
//     shadow-buffer traffic at all;
//   - a remaining arc whose sender is not also a receiver in the round —
//     every arc of a matching round — reads the live state directly,
//     skipping the beginning-of-round snapshot entirely; only the senders
//     that are genuinely overwritten within their round are snapshotted,
//     through word spans merged at compile time into bulk copies;
//   - shard partitions for any worker count are derived once per
//     (program, workers) pair — per-worker execution orders with balanced,
//     conflict-free cuts — replacing the pool's per-step ownership scan of
//     the whole round.
//
// A Program is immutable after Compile (partitions are memoized under a
// mutex), so one compiled program may back any number of concurrent
// sessions. Executing it is byte-identical to interpreting the protocol's
// arc slices with Step: the OR-merge is commutative and the snapshot/fusion
// analysis preserves beginning-of-round semantics exactly.
type Program struct {
	n     int // processors
	items int // item-space width the offsets were lowered for
	words int // uint64 words per vertex

	mode    Mode
	period  int // 0 = finite
	rounds  int // explicit rounds
	fp      string
	numArcs int

	// fused[fusedStart[r]:fusedStart[r+1]] are round r's exchange ops.
	fused      []exchOp
	fusedStart []int32

	// pairs[roundStart[r]:roundStart[r+1]] are round r's unfused arcs in
	// schedule order, regrouped so the snapshot-reading arcs come first:
	// pairs[roundStart[r]:prevSplit[r]] read the shadow buffer (their
	// sender is overwritten within the round), the rest read live state.
	pairs      []graph.PackedArc
	roundStart []int32
	prevSplit  []int32 // len rounds

	// spans[spanStart[r]:spanStart[r+1]] are the word spans snapshotted at
	// the start of round r: the senders of the prev-reading arcs, merged
	// into maximal contiguous runs.
	spans     []copySpan
	spanStart []int32

	dupDst []bool // per round: some destination receives on more than one arc

	mu    sync.Mutex
	parts map[int]*partition
}

// exchOp is a fused full-duplex opposite pair (A,B)+(B,A): both knowledge
// blocks become the OR of their beginning-of-round values. Fusion is valid
// because neither endpoint appears in any other arc of the round, so the
// pre-op block values are the beginning-of-round values.
type exchOp struct {
	AOff, BOff int32
	A, B       int32
}

// copySpan is a contiguous word range of the state array copied into the
// shadow buffer during a compiled round's snapshot phase.
type copySpan struct {
	off, n int32
}

// partition is the compile-time shard plan of one Program for a fixed
// worker count W. For round r and worker w, base = r*(W+1)+w:
//
//   - fusedOrder[fusedSplit[base]:fusedSplit[base+1]] lists the worker's
//     exchange ops (an op owns both of its endpoints — they touch no other
//     arc — so any assignment is conflict-free);
//   - prevOrder/curOrder with prevSplit/curSplit list the worker's
//     snapshot-reading and live-reading arcs. A round whose destinations
//     are all distinct is cut evenly — any cut is conflict-free; a
//     degenerate round with duplicate destinations is bucketed by receiver
//     so every counts entry and state word keeps a single writer;
//   - spans[spanSplit[base]:spanSplit[base+1]] is the worker's share of the
//     round's snapshot spans, balanced by word count (long spans are cut
//     mid-way; any word is still copied exactly once).
type partition struct {
	workers    int
	fusedOrder []int32
	fusedSplit []int32
	prevOrder  []int32
	prevSplit  []int32
	curOrder   []int32
	curSplit   []int32
	spans      []copySpan
	spanSplit  []int32
}

// Compile lowers a protocol into a Program for an n-processor state with
// items-wide knowledge sets (items = n for gossip, 1 for the broadcast
// backends and the completion certificate). The protocol should already be
// validated against its graph; Compile independently rejects arcs outside
// [0, n) and layouts whose word offsets would overflow the packed int32
// representation.
func Compile(p *Protocol, n, items int) (*Program, error) {
	if n < 0 {
		return nil, fmt.Errorf("gossip: compile with negative processor count %d", n)
	}
	if items < 1 {
		return nil, fmt.Errorf("gossip: compile with item-space width %d, want ≥ 1", items)
	}
	words := (items + 63) / 64
	if int64(n)*int64(words) > math.MaxInt32 {
		return nil, fmt.Errorf("gossip: state of %d×%d words overflows the packed offset space", n, words)
	}
	pr := &Program{
		n:          n,
		items:      items,
		words:      words,
		mode:       p.Mode,
		period:     p.Period,
		rounds:     len(p.Rounds),
		fp:         p.Fingerprint(),
		roundStart: make([]int32, 1, len(p.Rounds)+1),
		fusedStart: make([]int32, 1, len(p.Rounds)+1),
		spanStart:  make([]int32, 1, len(p.Rounds)+1),
		prevSplit:  make([]int32, 0, len(p.Rounds)),
		dupDst:     make([]bool, len(p.Rounds)),
	}
	// Per-vertex round-stamped scratch: incidence counts (any endpoint) and
	// destination counts, shared across rounds.
	incStamp := make([]int32, n)
	inc := make([]int32, n)
	dstStamp := make([]int32, n)
	dst := make([]int32, n)
	senders := make([]int32, 0, n)
	var prevArcs, curArcs []graph.Arc
	for r, round := range p.Rounds {
		stamp := int32(r + 1)
		for _, a := range round {
			if a.From < 0 || a.From >= n || a.To < 0 || a.To >= n {
				return nil, fmt.Errorf("gossip: round %d arc (%d,%d) outside [0, %d)", r, a.From, a.To, n)
			}
			for _, v := range [2]int{a.From, a.To} {
				if incStamp[v] != stamp {
					incStamp[v], inc[v] = stamp, 0
				}
				inc[v]++
			}
			if dstStamp[a.To] != stamp {
				dstStamp[a.To], dst[a.To] = stamp, 0
			}
			dst[a.To]++
			if dst[a.To] > 1 {
				pr.dupDst[r] = true
			}
		}
		// A self-loop counts its vertex twice in inc; that is fine — it only
		// makes fusion stricter.

		// Fuse opposite pairs whose endpoints are exclusive to the pair.
		arcSet := make(map[graph.Arc]struct{}, len(round))
		for _, a := range round {
			arcSet[a] = struct{}{}
		}
		fusable := func(u, v int) bool {
			if inc[u] != 2 || inc[v] != 2 || u == v {
				return false
			}
			_, opp := arcSet[graph.Arc{From: v, To: u}]
			return opp
		}
		prevArcs, curArcs = prevArcs[:0], curArcs[:0]
		for _, a := range round {
			if fusable(a.From, a.To) {
				if a.From < a.To { // emit each pair once
					pr.fused = append(pr.fused, exchOp{
						AOff: int32(a.From * words), BOff: int32(a.To * words),
						A: int32(a.From), B: int32(a.To),
					})
				}
				continue
			}
			// The sender's block is overwritten within this round iff the
			// sender is also a destination: only then must the arc read the
			// beginning-of-round snapshot.
			if dstStamp[a.From] == stamp && dst[a.From] > 0 {
				prevArcs = append(prevArcs, a)
			} else {
				curArcs = append(curArcs, a)
			}
		}
		pr.pairs = graph.PackArcs(pr.pairs, prevArcs, words)
		pr.prevSplit = append(pr.prevSplit, int32(len(pr.pairs)))
		pr.pairs = graph.PackArcs(pr.pairs, curArcs, words)
		pr.roundStart = append(pr.roundStart, int32(len(pr.pairs)))
		pr.fusedStart = append(pr.fusedStart, int32(len(pr.fused)))

		senders = senders[:0]
		for _, a := range prevArcs {
			senders = append(senders, int32(a.From*words))
		}
		pr.spans = appendSenderSpans(pr.spans, senders, words)
		pr.spanStart = append(pr.spanStart, int32(len(pr.spans)))
		pr.numArcs += len(round)
	}
	return pr, nil
}

// appendSenderSpans merges one round's snapshot word blocks into maximal
// contiguous spans: duplicate senders collapse and adjacent blocks coalesce
// into bulk copies.
func appendSenderSpans(spans []copySpan, offs []int32, words int) []copySpan {
	slices.Sort(offs)
	w := int32(words)
	for i := 0; i < len(offs); {
		off := offs[i]
		end := off + w
		i++
		for i < len(offs) && offs[i] <= end {
			if offs[i] == end {
				end += w
			}
			i++
		}
		spans = append(spans, copySpan{off: off, n: end - off})
	}
	return spans
}

// N returns the processor count the program was compiled for.
func (pr *Program) N() int { return pr.n }

// Items returns the item-space width the offsets were lowered for.
func (pr *Program) Items() int { return pr.items }

// Mode returns the protocol's communication model.
func (pr *Program) Mode() Mode { return pr.mode }

// Period returns the systolic period (0 for a finite protocol).
func (pr *Program) Period() int { return pr.period }

// Systolic reports whether the program repeats with a finite period.
func (pr *Program) Systolic() bool { return pr.period > 0 }

// Len returns the number of explicit compiled rounds (one period for a
// systolic protocol).
func (pr *Program) Len() int { return pr.rounds }

// NumArcs returns the total number of schedule arcs across the explicit
// rounds (fused exchanges count as their two arcs).
func (pr *Program) NumArcs() int { return pr.numArcs }

// Fingerprint returns the FNV-1a schedule fingerprint of the source
// protocol — the identity checkpoints and caches key compiled artifacts by.
func (pr *Program) Fingerprint() string { return pr.fp }

// roundIndex maps a 0-based execution round onto an explicit compiled
// round, applying the periodic repetition; it returns -1 when the round is
// out of schedule (negative, or past the end of a finite protocol), which
// executes as an empty round.
func (pr *Program) roundIndex(i int) int {
	if i < 0 {
		return -1
	}
	if pr.period > 0 {
		return i % pr.period
	}
	if i >= pr.rounds {
		return -1
	}
	return i
}

// StepProgram applies execution round i of a compiled program: snapshot
// spans are bulk-copied (only when the round genuinely needs them), fused
// exchanges run in one pass, then the remaining arcs merge their sender's
// beginning-of-round words into their receiver. The result is
// byte-identical to Step(p.Round(i)), and the steady state performs zero
// allocations. Out-of-schedule rounds (finite protocol past its end) are
// no-ops, matching Step(nil).
//
//gossip:hotpath
func (s *State) StepProgram(pr *Program, i int) {
	s.checkProgram(pr)
	r := pr.roundIndex(i)
	if r < 0 {
		return
	}
	if s.pool != nil {
		s.pool.stepProgram(s, pr, r)
		return
	}
	for _, sp := range pr.spans[pr.spanStart[r]:pr.spanStart[r+1]] {
		copy(s.prev[sp.off:sp.off+sp.n], s.cur[sp.off:sp.off+sp.n])
	}
	for _, e := range pr.fused[pr.fusedStart[r]:pr.fusedStart[r+1]] {
		gained, newlyFull := s.exchange(e)
		s.know += int64(gained)
		s.full += int64(newlyFull)
	}
	for _, pa := range pr.pairs[pr.roundStart[r]:pr.prevSplit[r]] {
		gained, becameFull := s.recvFrom(s.prev, pa)
		s.know += int64(gained)
		if becameFull {
			s.full++
		}
	}
	for _, pa := range pr.pairs[pr.prevSplit[r]:pr.roundStart[r+1]] {
		gained, becameFull := s.recvFrom(s.cur, pa)
		s.know += int64(gained)
		if becameFull {
			s.full++
		}
	}
}

//gossip:allowpanic pairing guard: the session layer establishes program/state compatibility
func (s *State) checkProgram(pr *Program) {
	if pr.n != s.n || pr.items != s.items {
		panic(fmt.Sprintf("gossip: program compiled for n=%d items=%d executed on state n=%d items=%d",
			pr.n, pr.items, s.n, s.items))
	}
}

// exchange applies a fused opposite pair: both blocks become the OR of
// their pre-op values in a single pass, no shadow buffer involved. It
// returns the total items gained across both endpoints and how many
// endpoints just reached full knowledge.
func (s *State) exchange(e exchOp) (gained, newlyFull int) {
	w := s.words
	ao, bo := int(e.AOff), int(e.BOff)
	sa := s.cur[ao : ao+w : ao+w]
	sb := s.cur[bo : bo+w : bo+w]
	var ga, gb int
	for i, x := range sa {
		y := sb[i]
		if x == y {
			continue
		}
		m := x | y
		if m != x {
			sa[i] = m
			ga += bits.OnesCount64(m &^ x)
		}
		if m != y {
			sb[i] = m
			gb += bits.OnesCount64(m &^ y)
		}
	}
	if ga > 0 {
		s.counts[e.A] += int32(ga)
		if int(s.counts[e.A]) == s.items {
			newlyFull++
		}
	}
	if gb > 0 {
		s.counts[e.B] += int32(gb)
		if int(s.counts[e.B]) == s.items {
			newlyFull++
		}
	}
	return ga + gb, newlyFull
}

// recvFrom merges the sender's block read from src (the shadow buffer for
// snapshot-reading arcs, the live state for the rest) into the receiver.
// The word offsets come straight from the program, so the hot loop performs
// no vertex-id arithmetic.
func (s *State) recvFrom(srcArr []uint64, pa graph.PackedArc) (gained int, becameFull bool) {
	w := s.words
	so, do := int(pa.SrcOff), int(pa.DstOff)
	src := srcArr[so : so+w]
	dst := s.cur[do : do+w : do+w]
	for i, sw := range src {
		old := dst[i]
		if nw := old | sw; nw != old {
			dst[i] = nw
			gained += bits.OnesCount64(nw &^ old)
		}
	}
	if gained > 0 {
		s.counts[pa.To] += int32(gained)
		becameFull = int(s.counts[pa.To]) == s.items
	}
	return gained, becameFull
}

// partition returns the shard plan for a worker count, computing it on
// first use and memoizing it; concurrent sessions sharing one compiled
// program therefore pay the partitioning cost once per (program, workers).
//
//gossip:allowalloc amortized: the shard plan is memoized per (program, workers) and built off the steady-state step loop
func (pr *Program) partition(workers int) *partition {
	if workers < 1 {
		workers = 1
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if part, ok := pr.parts[workers]; ok {
		return part
	}
	part := pr.buildPartition(workers)
	if pr.parts == nil {
		pr.parts = make(map[int]*partition)
	}
	pr.parts[workers] = part
	return part
}

func (pr *Program) buildPartition(workers int) *partition {
	part := &partition{workers: workers}
	var buckets [][]int32 // scratch for the rare duplicate-destination rounds
	// cutList appends one round's share of an op list [lo, hi) to order,
	// emitting workers+1 boundaries into split. Duplicate-destination
	// rounds bucket by owner(j) so every receiver keeps a single writer;
	// otherwise the list is cut evenly in schedule order.
	cutList := func(order []int32, split []int32, lo, hi int, dup bool, owner func(j int) int) ([]int32, []int32) {
		m := hi - lo
		base := len(order)
		if !dup {
			for j := lo; j < hi; j++ {
				order = append(order, int32(j))
			}
			for w := 0; w < workers; w++ {
				split = append(split, int32(base+m*w/workers))
			}
		} else {
			if buckets == nil {
				buckets = make([][]int32, workers)
			}
			for w := range buckets {
				buckets[w] = buckets[w][:0]
			}
			for j := lo; j < hi; j++ {
				w := owner(j) % workers
				buckets[w] = append(buckets[w], int32(j))
			}
			for w := 0; w < workers; w++ {
				split = append(split, int32(len(order)))
				order = append(order, buckets[w]...)
			}
		}
		return order, append(split, int32(len(order)))
	}
	for r := 0; r < pr.rounds; r++ {
		dup := pr.dupDst[r]
		part.fusedOrder, part.fusedSplit = cutList(part.fusedOrder, part.fusedSplit,
			int(pr.fusedStart[r]), int(pr.fusedStart[r+1]), dup,
			func(j int) int { return int(pr.fused[j].A) })
		part.prevOrder, part.prevSplit = cutList(part.prevOrder, part.prevSplit,
			int(pr.roundStart[r]), int(pr.prevSplit[r]), dup,
			func(j int) int { return int(pr.pairs[j].To) })
		part.curOrder, part.curSplit = cutList(part.curOrder, part.curSplit,
			int(pr.prevSplit[r]), int(pr.roundStart[r+1]), dup,
			func(j int) int { return int(pr.pairs[j].To) })

		spans := pr.spans[pr.spanStart[r]:pr.spanStart[r+1]]
		total := 0
		for _, sp := range spans {
			total += int(sp.n)
		}
		per := (total + workers - 1) / workers
		if per < 1 {
			per = 1
		}
		part.spanSplit = append(part.spanSplit, int32(len(part.spans)))
		emitted := 1
		left := per
		for _, sp := range spans {
			off, n := sp.off, sp.n
			for n > 0 {
				take := n
				if int(take) > left {
					take = int32(left)
				}
				part.spans = append(part.spans, copySpan{off: off, n: take})
				off += take
				n -= take
				left -= int(take)
				if left == 0 && emitted < workers {
					part.spanSplit = append(part.spanSplit, int32(len(part.spans)))
					emitted++
					left = per
				}
			}
		}
		for ; emitted <= workers; emitted++ {
			part.spanSplit = append(part.spanSplit, int32(len(part.spans)))
		}
	}
	return part
}

// shardCompiled executes one worker's slice of a compiled round phase. The
// partition was cut at compile time, so the worker touches only its own
// spans and ops — no scan over the round, no ownership arithmetic.
func (s *State) shardCompiled(pr *Program, part *partition, r int, phase uint8, w int) {
	base := r*(part.workers+1) + w
	if phase == 0 {
		for _, sp := range part.spans[part.spanSplit[base]:part.spanSplit[base+1]] {
			copy(s.prev[sp.off:sp.off+sp.n], s.cur[sp.off:sp.off+sp.n])
		}
		return
	}
	var gained, newlyFull int64
	for _, j := range part.fusedOrder[part.fusedSplit[base]:part.fusedSplit[base+1]] {
		g, nf := s.exchange(pr.fused[j])
		gained += int64(g)
		newlyFull += int64(nf)
	}
	for _, j := range part.prevOrder[part.prevSplit[base]:part.prevSplit[base+1]] {
		g, becameFull := s.recvFrom(s.prev, pr.pairs[j])
		gained += int64(g)
		if becameFull {
			newlyFull++
		}
	}
	for _, j := range part.curOrder[part.curSplit[base]:part.curSplit[base+1]] {
		g, becameFull := s.recvFrom(s.cur, pr.pairs[j])
		gained += int64(g)
		if becameFull {
			newlyFull++
		}
	}
	if gained != 0 {
		atomic.AddInt64(&s.know, gained)
		atomic.AddInt64(&s.full, newlyFull)
	}
}

// StepProgram applies execution round i of a compiled program to the packed
// broadcast frontier and returns the number of newly informed vertices. It
// is byte-identical to Step(p.Round(i)).
//
//gossip:allowpanic pairing guard: the session layer establishes program/state compatibility
//gossip:hotpath
func (f *FrontierState) StepProgram(pr *Program, i int) int {
	if pr.n != f.n {
		panic(fmt.Sprintf("gossip: program compiled for n=%d executed on frontier n=%d", pr.n, f.n))
	}
	copy(f.prev, f.informed)
	r := pr.roundIndex(i)
	if r < 0 {
		return 0
	}
	gained := 0
	for _, e := range pr.fused[pr.fusedStart[r]:pr.fusedStart[r+1]] {
		if f.prev.has(int(e.A)) && !f.informed.has(int(e.B)) {
			f.informed.set(int(e.B))
			gained++
		}
		if f.prev.has(int(e.B)) && !f.informed.has(int(e.A)) {
			f.informed.set(int(e.A))
			gained++
		}
	}
	for _, pa := range pr.pairs[pr.roundStart[r]:pr.roundStart[r+1]] {
		if f.prev.has(int(pa.From)) && !f.informed.has(int(pa.To)) {
			f.informed.set(int(pa.To))
			gained++
		}
	}
	f.know += gained
	return gained
}

// CompletionCertificate verifies Definition 3.1 condition 2 on the compiled
// schedule: for every ordered pair (x, y) a time-respecting dipath from x
// to y exists within the first t execution rounds. See the package-level
// CompletionCertificate for the semantics; this is the same forward
// propagation driven by the packed schedule.
func (pr *Program) CompletionCertificate(t int) bool {
	n := pr.n
	reached := make([]int, n)
	gained := make([]int32, 0, n)
	for x := 0; x < n; x++ {
		stamp := x + 1
		reached[x] = stamp
		cnt := 1
		for r := 0; r < t && cnt < n; r++ {
			idx := pr.roundIndex(r)
			if idx < 0 {
				continue
			}
			gained = gained[:0]
			stage := func(from, to int32) {
				if reached[from] == stamp && reached[to] != stamp {
					gained = append(gained, to)
				}
			}
			for _, e := range pr.fused[pr.fusedStart[idx]:pr.fusedStart[idx+1]] {
				stage(e.A, e.B)
				stage(e.B, e.A)
			}
			for _, pa := range pr.pairs[pr.roundStart[idx]:pr.roundStart[idx+1]] {
				stage(pa.From, pa.To)
			}
			for _, v := range gained {
				reached[v] = stamp
			}
			cnt += len(gained)
		}
		if cnt < n {
			return false
		}
	}
	return true
}
