package gossip

import (
	"math/bits"

	"repro/internal/graph"
)

// This file holds the generator-driven flooding steps: the streaming
// counterparts of StepFlood / Step that walk arcs computed on the fly from
// a graph.FloodGen instead of a lowered CSR. Memory per worker is the two
// frontier buffers plus the FloodGen's fixed scratch — independent of the
// arc count — which is what lets a d=24 hypercube batch (16.7M nodes,
// ~400M arcs) scan in well under 1 GiB. Both steps keep the zero-alloc
// hot-path contract; the arc buffers are the FloodGen's, allocated once
// per worker.

// StepFloodGenRange computes the next-round words for destinations
// [lo, hi) only: the vertex-range shard of a generator-driven StepFlood.
// Shards of one round partition [0, n) across workers (disjoint writes to
// the next buffer, read-only current buffer), each using its own FloodGen;
// when every shard has returned, exactly one caller must CommitStep, and
// the round's (complete, changed, informed) are the AND / OR / sum of the
// shard results, with complete and changed masked by Full.
//
// The walk is destination-major in GenChunkVerts chunks. On the
// OrGatherer fast path the generator folds the current words over each
// chunk's in-neighborhoods itself — one interface call per chunk, no
// neighbor ids in memory; otherwise each destination gathers through the
// FloodGen's arc buffer.
//
//gossip:hotpath
func (f *PackedFrontier) StepFloodGenRange(fg *graph.FloodGen, lo, hi int) (and, changed uint64, informed int) {
	cur, nxt := f.cur, f.next
	and = ^uint64(0)
	if og := fg.Gatherer(); og != nil {
		orbuf := fg.OrBuf()
		for clo := lo; clo < hi; clo += graph.GenChunkVerts {
			chi := clo + graph.GenChunkVerts
			if chi > hi {
				chi = hi
			}
			og.OrInChunk(clo, chi, cur, orbuf[:chi-clo])
			for v := clo; v < chi; v++ {
				pv := cur[v]
				w := pv | orbuf[v-clo]
				nxt[v] = w
				changed |= w ^ pv
				and &= w
				informed += bits.OnesCount64(w)
			}
		}
		return and, changed, informed
	}
	src := fg.Src()
	buf := fg.ArcBuf()
	for v := lo; v < hi; v++ {
		pv := cur[v]
		w := pv
		k := src.InArcs(v, buf)
		for i := 0; i < k; i++ {
			w |= cur[buf[i]]
		}
		nxt[v] = w
		changed |= w ^ pv
		and &= w
		informed += bits.OnesCount64(w)
	}
	return and, changed, informed
}

// CommitStep publishes a round stepped through StepFloodGenRange by
// swapping the buffers. Every vertex must have been covered by exactly one
// range since the last commit.
func (f *PackedFrontier) CommitStep() {
	f.cur, f.next = f.next, f.cur
}

// StepFloodGen advances every lane one flooding round over the generator:
// the single-worker convenience over StepFloodGenRange + CommitStep. It
// returns exactly what StepFlood returns on the lowered CSR of the same
// graph — the two kernels are differential-pinned round for round.
//
//gossip:hotpath
func (f *PackedFrontier) StepFloodGen(fg *graph.FloodGen) (complete, changed uint64, informed int) {
	and, ch, informed := f.StepFloodGenRange(fg, 0, f.n)
	f.CommitStep()
	return and & f.full, ch & f.full, informed
}

// StepGen applies one communication round of the flooding schedule walked
// from the generator — an arc (x, y) informs y iff x was informed at the
// beginning of the round — and returns the number of newly informed
// vertices. It matches Step over FloodCSR.Arcs() exactly.
//
//gossip:hotpath
func (f *FrontierState) StepGen(fg *graph.FloodGen) int {
	copy(f.prev, f.informed)
	src := fg.Src()
	buf := fg.ArcBuf()
	gained := 0
	for v := 0; v < f.n; v++ {
		if f.informed.has(v) {
			continue
		}
		k := src.InArcs(v, buf)
		for i := 0; i < k; i++ {
			if f.prev.has(int(buf[i])) {
				f.informed.set(v)
				gained++
				break
			}
		}
	}
	f.know += gained
	return gained
}
