package gossip

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randDigraph builds a random digraph that is usually (but not necessarily)
// strongly connected: a directed cycle plus extra random arcs.
func randDigraph(rng *rand.Rand, n, extra int) *graph.Digraph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddArc(v, (v+1)%n)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasArc(u, v) {
			g.AddArc(u, v)
		}
	}
	return g
}

// TestPackedFloodMatchesFrontier: a packed pass over the lowered flooding
// schedule must track 64 independent scalar frontier floods bit for bit —
// per round, per vertex, per lane — including the complete and changed
// masks it reports.
func TestPackedFloodMatchesFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(150)
		g := randDigraph(rng, n, rng.Intn(3*n))
		cs := g.LowerFlood()
		flood := cs.Arcs()

		lanes := 1 + rng.Intn(PackedLanes)
		if trial == 0 {
			lanes = PackedLanes // always cover the full-width mask path
		}
		sources := make([]int, lanes)
		for i := range sources {
			sources[i] = rng.Intn(n)
		}

		pf := NewPackedFrontier(n)
		pf.Reset(sources)
		refs := make([]*FrontierState, lanes)
		for i, s := range sources {
			refs[i] = NewFrontierState(n, s)
		}
		if got, want := pf.InformedCount(), lanes; got != want {
			t.Fatalf("trial %d: initial informed count %d, want %d", trial, got, want)
		}

		for round := 1; round <= n+1; round++ {
			complete, changed, informed := pf.StepFlood(cs)
			var wantComplete, wantChanged uint64
			wantInformed := 0
			for i, ref := range refs {
				if ref.Step(flood) > 0 {
					wantChanged |= 1 << i
				}
				if ref.Complete() {
					wantComplete |= 1 << i
				}
				wantInformed += ref.InformedCount()
			}
			if complete != wantComplete || changed != wantChanged || informed != wantInformed {
				t.Fatalf("trial %d round %d: (complete, changed, informed) = (%x, %x, %d), want (%x, %x, %d)",
					trial, round, complete, changed, informed, wantComplete, wantChanged, wantInformed)
			}
			for v := 0; v < n; v++ {
				for i, ref := range refs {
					if pf.Informed(v, i) != ref.Informed(v) {
						t.Fatalf("trial %d round %d: vertex %d lane %d informed=%v, scalar %v",
							trial, round, v, i, pf.Informed(v, i), ref.Informed(v))
					}
				}
			}
			if changed == 0 {
				break // every lane at its fixpoint
			}
		}
		if pf.CompleteMask() != pf.Full()&func() uint64 {
			var m uint64
			for i, ref := range refs {
				if ref.Complete() {
					m |= 1 << i
				}
			}
			return m
		}() {
			t.Fatalf("trial %d: CompleteMask disagrees with scalar completion", trial)
		}
	}
}

// TestPackedFrontierReset: one PackedFrontier reused across batches starts
// every batch from exactly the batch's source bits, with stale lanes and
// stale knowledge cleared.
func TestPackedFrontierReset(t *testing.T) {
	g := randDigraph(rand.New(rand.NewSource(1)), 40, 60)
	cs := g.LowerFlood()
	pf := NewPackedFrontier(40)

	pf.Reset([]int{0, 1, 2, 3, 4, 5, 6, 7})
	for pf.CompleteMask() != pf.Full() {
		if _, changed, _ := pf.StepFlood(cs); changed == 0 {
			t.Fatal("first batch stalled on a cycle-bearing digraph")
		}
	}

	pf.Reset([]int{9, 9}) // duplicate sources share a column pattern
	if pf.Lanes() != 2 || pf.Full() != 0b11 {
		t.Fatalf("after Reset: lanes=%d full=%x", pf.Lanes(), pf.Full())
	}
	if got := pf.InformedCount(); got != 2 {
		t.Fatalf("after Reset: informed count %d, want 2 (stale knowledge leaked)", got)
	}
	for v := 0; v < 40; v++ {
		want := v == 9
		if pf.Informed(v, 0) != want || pf.Informed(v, 1) != want {
			t.Fatalf("after Reset: vertex %d informed (%v, %v), want %v", v, pf.Informed(v, 0), pf.Informed(v, 1), want)
		}
	}
	// Both lanes flood identically from vertex 9.
	for {
		complete, changed, _ := pf.StepFlood(cs)
		if b0, b1 := complete&1 != 0, complete&2 != 0; b0 != b1 {
			t.Fatal("duplicate-source lanes diverged")
		}
		if complete == pf.Full() || changed == 0 {
			break
		}
	}
}

// TestPackedStepZeroAlloc pins the packed step's zero-allocation contract
// (the gossipvet hotalloc analyzer enforces it statically; this pins the
// runtime behavior).
func TestPackedStepZeroAlloc(t *testing.T) {
	g := randDigraph(rand.New(rand.NewSource(2)), 256, 512)
	cs := g.LowerFlood()
	pf := NewPackedFrontier(256)
	sources := make([]int, PackedLanes)
	for i := range sources {
		sources[i] = i
	}
	pf.Reset(sources)
	allocs := testing.AllocsPerRun(100, func() {
		pf.StepFlood(cs)
	})
	if allocs != 0 {
		t.Fatalf("StepFlood allocated %.1f times per step, want 0", allocs)
	}
}

// TestPackedCompletionRoundsAreEccentricities: on a strongly connected
// digraph, the round at which lane s completes is exactly the eccentricity
// of its source — the semantic content of the flooding schedule.
func TestPackedCompletionRoundsAreEccentricities(t *testing.T) {
	g := randDigraph(rand.New(rand.NewSource(3)), 70, 140)
	cs := g.LowerFlood()
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = i
	}
	pf := NewPackedFrontier(70)
	pf.Reset(sources)
	completeAt := make([]int, 64)
	var done uint64
	for round := 1; done != pf.Full(); round++ {
		complete, changed, _ := pf.StepFlood(cs)
		for m := complete &^ done; m != 0; m &= m - 1 {
			completeAt[bits.TrailingZeros64(m)] = round
		}
		done |= complete
		if changed == 0 && done != pf.Full() {
			t.Fatal("stalled: digraph not strongly connected for these sources")
		}
	}
	for i, s := range sources {
		if ecc := g.Eccentricity(s); completeAt[i] != ecc {
			t.Errorf("lane %d (source %d): completed at round %d, eccentricity %d", i, s, completeAt[i], ecc)
		}
	}
}
