package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// ErrIncomplete is returned when a simulation hits its round budget before
// the dissemination completes.
var ErrIncomplete = errors.New("gossip: protocol did not complete within the round budget")

// State tracks, for every processor, the set of items it currently knows.
// Item i originates at processor i.
//
// The knowledge sets live in one flat word array (words consecutive uint64
// per vertex) with a same-sized shadow buffer for beginning-of-round
// snapshots, so Step performs zero allocations in steady state. Per-vertex
// item counts, the total knowledge and the number of saturated vertices are
// maintained incrementally, making TotalKnowledge, Count, GossipComplete
// and BroadcastComplete O(1).
type State struct {
	n     int // processors
	items int // item-space size: n for gossip, 1 for broadcast
	words int // uint64 words per vertex

	cur  []uint64 // n*words flattened knowledge sets
	prev []uint64 // beginning-of-round shadow of the senders

	counts []int32 // items known per vertex
	know   int64   // sum of counts
	full   int64   // vertices with counts == items

	pool *Pool // optional sharded stepping; nil means serial
}

func newState(n, items int) *State {
	words := (items + 63) / 64
	s := &State{
		n:      n,
		items:  items,
		words:  words,
		cur:    make([]uint64, n*words),
		prev:   make([]uint64, n*words),
		counts: make([]int32, n),
	}
	return s
}

// NewState returns the initial gossip state in which every processor knows
// exactly its own item.
func NewState(n int) *State {
	s := newState(n, n)
	for v := 0; v < n; v++ {
		s.cur[v*s.words+v/64] |= 1 << (v % 64)
		s.counts[v] = 1
		s.know++
		if int(s.counts[v]) == s.items {
			s.full++
		}
	}
	return s
}

// NewBroadcastState returns a state in which only the source knows one item;
// it is used to measure broadcasting time b(G). FrontierState is the
// packed alternative (one bit per vertex instead of one word).
func NewBroadcastState(n, source int) *State {
	s := newState(n, 1)
	s.cur[source*s.words] = 1
	s.counts[source] = 1
	s.know = 1
	s.full = 1 // the source is saturated (items == 1)
	return s
}

// UsePool shards subsequent Steps across the pool's workers; passing nil
// reverts to serial stepping. Results are identical either way.
func (s *State) UsePool(p *Pool) { s.pool = p }

// Reset returns a gossip state (one built by NewState) to its initial
// "every processor knows exactly its own item" configuration without
// reallocating — the shadow buffer need not be cleared because Step and
// StepProgram always write a sender's snapshot before reading it. Loops
// that run many simulations of one shape (the Monte-Carlo scenario trials)
// reuse one State through Reset instead of paying two n×words allocations
// per run. It panics on broadcast-shaped states (items != n), whose initial
// configuration depends on a source.
//
//gossip:allowpanic pairing guard: the session layer establishes program/state compatibility
func (s *State) Reset() {
	if s.items != s.n {
		panic("gossip: Reset on a broadcast-shaped state")
	}
	clear(s.cur)
	s.know, s.full = 0, 0
	for v := 0; v < s.n; v++ {
		s.cur[v*s.words+v/64] |= 1 << (v % 64)
		s.counts[v] = 1
		s.know++
		if s.items == 1 {
			s.full++
		}
	}
}

// Knows reports whether processor v currently knows item i.
func (s *State) Knows(v, i int) bool {
	return s.cur[v*s.words+i/64]&(1<<(i%64)) != 0
}

// Count returns how many items processor v knows.
func (s *State) Count(v int) int { return int(s.counts[v]) }

// TotalKnowledge returns the sum over processors of known items; it is
// strictly monotone under Step until completion.
func (s *State) TotalKnowledge() int { return int(s.know) }

// Step applies one communication round: for each active arc (x, y), y learns
// everything x knew at the beginning of the round. All transfers in a round
// are simultaneous; because rounds are matchings a vertex receives on at
// most one arc, but the implementation is still correct for arbitrary arc
// sets (e.g. full-duplex opposite pairs): every sender's words are copied
// into the shadow buffer before any merge, so opposite arcs exchange the
// beginning-of-round sets as the model requires.
func (s *State) Step(round []graph.Arc) {
	if s.pool != nil {
		s.pool.step(s, round)
		return
	}
	w := s.words
	for _, a := range round {
		o := a.From * w
		copy(s.prev[o:o+w], s.cur[o:o+w])
	}
	for _, a := range round {
		gained, becameFull := s.recv(a)
		s.know += int64(gained)
		if becameFull {
			s.full++
		}
	}
}

// recv merges the beginning-of-round set of a.From into a.To and updates
// the per-vertex count. It returns the number of newly learned items and
// whether a.To just reached full knowledge. Callers own the aggregation of
// the returns into know/full (serial directly, sharded via atomics) —
// counts[a.To] itself is only ever touched by a.To's owner.
func (s *State) recv(a graph.Arc) (gained int, becameFull bool) {
	w := s.words
	src := s.prev[a.From*w : a.From*w+w]
	dst := s.cur[a.To*w : a.To*w+w : a.To*w+w]
	for i, sw := range src {
		old := dst[i]
		if nw := old | sw; nw != old {
			dst[i] = nw
			gained += bits.OnesCount64(nw &^ old)
		}
	}
	if gained > 0 {
		s.counts[a.To] += int32(gained)
		becameFull = int(s.counts[a.To]) == s.items
	}
	return gained, becameFull
}

// GossipComplete reports whether every processor knows every item.
func (s *State) GossipComplete() bool { return s.full == int64(s.n) }

// BroadcastComplete reports whether every processor knows item 0.
func (s *State) BroadcastComplete() bool {
	if s.items == 1 {
		return s.know == int64(s.n)
	}
	for v := 0; v < s.n; v++ {
		if s.cur[v*s.words]&1 == 0 {
			return false
		}
	}
	return true
}

// Export serializes the knowledge sets as little-endian words, the payload
// of a session checkpoint. The layout is n blocks of words uint64 each.
func (s *State) Export() []byte {
	out := make([]byte, len(s.cur)*8)
	for i, w := range s.cur {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out
}

// Import restores knowledge sets serialized by Export and recomputes the
// incremental counters from scratch. It rejects payloads of the wrong size
// and payloads with bits outside the item space (a corrupt or mismatched
// checkpoint).
func (s *State) Import(data []byte) error {
	if len(data) != len(s.cur)*8 {
		return fmt.Errorf("gossip: state payload is %d bytes, want %d", len(data), len(s.cur)*8)
	}
	for i := range s.cur {
		s.cur[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	s.know, s.full = 0, 0
	tail := s.items % 64
	for v := 0; v < s.n; v++ {
		if tail != 0 {
			if s.cur[v*s.words+s.words-1]&^(1<<tail-1) != 0 {
				return fmt.Errorf("gossip: state payload has bits beyond item %d at vertex %d", s.items-1, v)
			}
		}
		c := 0
		for _, w := range s.cur[v*s.words : (v+1)*s.words] {
			c += bits.OnesCount64(w)
		}
		s.counts[v] = int32(c)
		s.know += int64(c)
		if c == s.items {
			s.full++
		}
	}
	return nil
}

// Result reports the outcome of a simulation.
type Result struct {
	Rounds int // rounds executed until completion
	N      int // number of processors
}

// Simulate runs p on g until gossip completes, up to maxRounds. The protocol
// is validated first, then compiled once — the simulation executes the
// schedule IR, not the arc slices (byte-identical results either way). For a
// systolic protocol the period is repeated as needed; for a finite protocol
// the explicit rounds are the budget (capped by maxRounds).
func Simulate(g *graph.Digraph, p *Protocol, maxRounds int) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	pr, err := Compile(p, g.N(), g.N())
	if err != nil {
		return Result{}, err
	}
	budget := maxRounds
	if !p.Systolic() && p.Len() < budget {
		budget = p.Len()
	}
	st := NewState(g.N())
	if st.GossipComplete() { // n ≤ 1
		return Result{Rounds: 0, N: g.N()}, nil
	}
	for r := 0; r < budget; r++ {
		st.StepProgram(pr, r)
		if st.GossipComplete() {
			return Result{Rounds: r + 1, N: g.N()}, nil
		}
	}
	return Result{Rounds: budget, N: g.N()}, fmt.Errorf("%w (budget %d)", ErrIncomplete, budget)
}

// SimulateBroadcast runs p on g until the item of source reaches every
// processor, up to maxRounds. It uses the packed frontier backend (one bit
// per vertex) executing the compiled schedule.
func SimulateBroadcast(g *graph.Digraph, p *Protocol, source, maxRounds int) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	pr, err := Compile(p, g.N(), 1)
	if err != nil {
		return Result{}, err
	}
	budget := maxRounds
	if !p.Systolic() && p.Len() < budget {
		budget = p.Len()
	}
	st := NewFrontierState(g.N(), source)
	if st.Complete() {
		return Result{Rounds: 0, N: g.N()}, nil
	}
	for r := 0; r < budget; r++ {
		st.StepProgram(pr, r)
		if st.Complete() {
			return Result{Rounds: r + 1, N: g.N()}, nil
		}
	}
	return Result{Rounds: budget, N: g.N()}, fmt.Errorf("%w (budget %d)", ErrIncomplete, budget)
}

// CompletionCertificate verifies Definition 3.1 condition 2 directly for a
// finite protocol: for every ordered pair (x, y) there is a time-respecting
// dipath from x to y within the executed rounds. It is equivalent to
// GossipComplete after running all rounds but is computed independently
// (by forward propagation of reachability sets per source), so tests can
// cross-check the simulator.
//
// The protocol is compiled once on entry and the propagation runs on the
// packed schedule (Program.CompletionCertificate): the reachability and
// frontier buffers are allocated once and shared across sources (a
// per-source stamp replaces clearing), each source's round scan bails as
// soon as its item has certified every vertex, and a failed source aborts
// the whole check immediately.
//
//gossip:allowpanic the schedule was validated when the program was compiled; an invalid one here is a bug
func CompletionCertificate(g *graph.Digraph, p *Protocol, t int) bool {
	pr, err := Compile(p, g.N(), 1)
	if err != nil {
		panic(fmt.Sprintf("gossip: certificate on invalid schedule: %v", err))
	}
	return pr.CompletionCertificate(t)
}
