package gossip

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrIncomplete is returned when a simulation hits its round budget before
// the dissemination completes.
var ErrIncomplete = errors.New("gossip: protocol did not complete within the round budget")

// State tracks, for every processor, the set of items it currently knows.
// Item i originates at processor i.
type State struct {
	n    int
	know []bitset
}

// NewState returns the initial gossip state in which every processor knows
// exactly its own item.
func NewState(n int) *State {
	s := &State{n: n, know: make([]bitset, n)}
	for v := 0; v < n; v++ {
		s.know[v] = newBitset(n)
		s.know[v].set(v)
	}
	return s
}

// NewBroadcastState returns a state in which only the source knows one item;
// it is used to measure broadcasting time b(G).
func NewBroadcastState(n, source int) *State {
	s := &State{n: n, know: make([]bitset, n)}
	for v := 0; v < n; v++ {
		s.know[v] = newBitset(1)
	}
	s.know[source].set(0)
	return s
}

// Knows reports whether processor v currently knows item i.
func (s *State) Knows(v, i int) bool { return s.know[v].has(i) }

// Count returns how many items processor v knows.
func (s *State) Count(v int) int { return s.know[v].count() }

// TotalKnowledge returns the sum over processors of known items; it is
// strictly monotone under Step until completion.
func (s *State) TotalKnowledge() int {
	t := 0
	for _, k := range s.know {
		t += k.count()
	}
	return t
}

// Step applies one communication round: for each active arc (x, y), y learns
// everything x knew at the beginning of the round. All transfers in a round
// are simultaneous; because rounds are matchings a vertex receives on at
// most one arc, but the implementation still snapshots senders to be correct
// for arbitrary arc sets (e.g. full-duplex opposite pairs).
func (s *State) Step(round []graph.Arc) {
	// Snapshot each sender's knowledge so opposite arcs exchange the
	// *beginning-of-round* sets, as the model requires.
	snapshots := make(map[int]bitset, len(round))
	for _, a := range round {
		if _, ok := snapshots[a.From]; !ok {
			snapshots[a.From] = s.know[a.From].clone()
		}
	}
	for _, a := range round {
		s.know[a.To].orInto(snapshots[a.From])
	}
}

// GossipComplete reports whether every processor knows every item.
func (s *State) GossipComplete() bool {
	for _, k := range s.know {
		if !k.full(s.n) {
			return false
		}
	}
	return true
}

// BroadcastComplete reports whether every processor knows item 0.
func (s *State) BroadcastComplete() bool {
	for _, k := range s.know {
		if !k.has(0) {
			return false
		}
	}
	return true
}

// Result reports the outcome of a simulation.
type Result struct {
	Rounds int // rounds executed until completion
	N      int // number of processors
}

// Simulate runs p on g until gossip completes, up to maxRounds. The protocol
// is validated first. For a systolic protocol the period is repeated as
// needed; for a finite protocol the explicit rounds are the budget (capped
// by maxRounds).
func Simulate(g *graph.Digraph, p *Protocol, maxRounds int) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	budget := maxRounds
	if !p.Systolic() && p.Len() < budget {
		budget = p.Len()
	}
	st := NewState(g.N())
	if st.GossipComplete() { // n ≤ 1
		return Result{Rounds: 0, N: g.N()}, nil
	}
	for r := 0; r < budget; r++ {
		st.Step(p.Round(r))
		if st.GossipComplete() {
			return Result{Rounds: r + 1, N: g.N()}, nil
		}
	}
	return Result{Rounds: budget, N: g.N()}, fmt.Errorf("%w (budget %d)", ErrIncomplete, budget)
}

// SimulateBroadcast runs p on g until the item of source reaches every
// processor, up to maxRounds.
func SimulateBroadcast(g *graph.Digraph, p *Protocol, source, maxRounds int) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	budget := maxRounds
	if !p.Systolic() && p.Len() < budget {
		budget = p.Len()
	}
	st := NewBroadcastState(g.N(), source)
	if st.BroadcastComplete() {
		return Result{Rounds: 0, N: g.N()}, nil
	}
	for r := 0; r < budget; r++ {
		st.Step(p.Round(r))
		if st.BroadcastComplete() {
			return Result{Rounds: r + 1, N: g.N()}, nil
		}
	}
	return Result{Rounds: budget, N: g.N()}, fmt.Errorf("%w (budget %d)", ErrIncomplete, budget)
}

// CompletionCertificate verifies Definition 3.1 condition 2 directly for a
// finite protocol: for every ordered pair (x, y) there is a time-respecting
// dipath from x to y within the executed rounds. It is equivalent to
// GossipComplete after running all rounds but is computed independently
// (by forward propagation of reachability sets per source), so tests can
// cross-check the simulator.
func CompletionCertificate(g *graph.Digraph, p *Protocol, t int) bool {
	n := g.N()
	for x := 0; x < n; x++ {
		// reached[v] = true if the item of x can be at v by the current round.
		reached := make([]bool, n)
		reached[x] = true
		cnt := 1
		for r := 0; r < t && cnt < n; r++ {
			round := p.Round(r)
			// Items move along arcs whose tail already holds them. Within a
			// single round an item crosses at most one arc (matching), and
			// the snapshot below enforces "beginning of round" semantics.
			var gained []int
			for _, a := range round {
				if reached[a.From] && !reached[a.To] {
					gained = append(gained, a.To)
				}
			}
			for _, v := range gained {
				reached[v] = true
				cnt++
			}
		}
		if cnt < n {
			return false
		}
	}
	return true
}
