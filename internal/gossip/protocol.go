// Package gossip models the communication protocols of the paper
// (Definitions 3.1 and 3.2) and provides a bitset-based simulation engine
// that executes a protocol round by round, tracking which items each
// processor knows, and reports gossip/broadcast completion times.
//
// The engine is a compile-then-execute pipeline. A Protocol is a plain
// schedule — arc slices per round; Compile lowers it once into a Program,
// the flat schedule IR every execution layer shares: precomputed word
// offsets, fused full-duplex exchanges, snapshot analysis (only senders
// that are overwritten within their round are shadow-copied) and
// compile-time shard partitions. State.StepProgram, FrontierState.
// StepProgram, the sharded Pool and Program.CompletionCertificate all
// execute the same IR, byte-identically to interpreting the raw arc slices
// with Step — which remains available for ad-hoc arc sets. Simulate,
// SimulateBroadcast and CompletionCertificate compile on entry, so one-shot
// callers get the compiled hot path for free.
package gossip

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/graph"
)

// Mode selects the communication model of Section 3.
type Mode int

const (
	// Directed: the network is an arbitrary digraph, each round is a
	// matching of arcs (no two active arcs share an endpoint).
	Directed Mode = iota
	// HalfDuplex: the network is a symmetric digraph; rounds are matchings
	// of arcs and messages travel one way per active link.
	HalfDuplex
	// FullDuplex: active arcs come in opposite pairs; any two active arcs
	// either share no endpoint or are opposite.
	FullDuplex
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case Directed:
		return "directed"
	case HalfDuplex:
		return "half-duplex"
	case FullDuplex:
		return "full-duplex"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Protocol is a sequence of communication rounds on a fixed digraph
// (Definition 3.1). Period > 0 declares the protocol s-systolic
// (Definition 3.2): round i activates Rounds[i mod Period]; the protocol may
// then be run for any number of steps. Period == 0 means the protocol is the
// explicit finite sequence Rounds.
type Protocol struct {
	Rounds [][]graph.Arc
	Period int
	Mode   Mode

	// Gen, when non-nil with no explicit Rounds, backs the protocol with a
	// generator-compiled schedule: rounds are computed from the vertex id
	// at execution time instead of stored (Period then equals
	// Gen.Period()). Gen.Materialize() recovers the explicit form;
	// Fingerprint is identical either way.
	Gen *GenProgram
}

// NewSystolic returns an s-systolic protocol cycling through rounds.
func NewSystolic(rounds [][]graph.Arc, mode Mode) *Protocol {
	return &Protocol{Rounds: rounds, Period: len(rounds), Mode: mode}
}

// NewFinite returns a non-systolic protocol consisting of exactly rounds.
func NewFinite(rounds [][]graph.Arc, mode Mode) *Protocol {
	return &Protocol{Rounds: rounds, Mode: mode}
}

// Systolic reports whether p repeats with a finite period.
func (p *Protocol) Systolic() bool { return p.Period > 0 }

// Round returns the arcs active at 0-based round i, applying the periodic
// repetition when the protocol is systolic. Out-of-schedule rounds — a
// negative i, or an i past the end of a finite protocol — are empty (nil),
// consistent with the engine's ErrBadParam discipline of never panicking on
// caller-supplied values.
func (p *Protocol) Round(i int) []graph.Arc {
	if i < 0 {
		return nil
	}
	if p.Period > 0 {
		return p.Rounds[i%p.Period]
	}
	if i >= len(p.Rounds) {
		return nil
	}
	return p.Rounds[i]
}

// Fingerprint hashes the schedule — mode, period and the arcs of every
// explicit round — with FNV-1a into the 16-hex-digit identity that ties
// checkpoints to their protocol and keys compiled-program caches.
func (p *Protocol) Fingerprint() string {
	if p.Gen != nil && len(p.Rounds) == 0 {
		return p.Gen.Fingerprint()
	}
	h := fnv.New64a()
	var word [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(word[:], uint64(v))
		h.Write(word[:])
	}
	put(int(p.Mode))
	put(p.Period)
	put(len(p.Rounds))
	for _, round := range p.Rounds {
		put(len(round))
		for _, a := range round {
			put(a.From)
			put(a.To)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Len returns the number of explicit rounds (one period for a systolic
// protocol).
func (p *Protocol) Len() int { return len(p.Rounds) }

// Validate checks the protocol against the digraph and its mode:
// every arc exists in g, every round is a matching, and in full-duplex mode
// every round is a set of opposite arc pairs. In half- and full-duplex modes
// g must be symmetric.
func (p *Protocol) Validate(g *graph.Digraph) error {
	if p.Mode != Directed && !g.IsSymmetric() {
		return fmt.Errorf("gossip: %v mode requires a symmetric digraph", p.Mode)
	}
	for i, round := range p.Rounds {
		if !graph.ArcsInGraph(g, round) {
			return fmt.Errorf("gossip: round %d activates an arc not in the graph", i)
		}
		if p.Mode == FullDuplex {
			// Opposite pairs share endpoints by design; the full-duplex
			// constraint (pairs opposite, no endpoint shared across pairs)
			// replaces the plain matching test.
			if !graph.IsFullDuplexRound(round) {
				return fmt.Errorf("gossip: round %d violates the full-duplex constraint", i)
			}
		} else if !graph.IsMatching(round) {
			return fmt.Errorf("gossip: round %d is not a matching", i)
		}
	}
	return nil
}

// SystolicCheck verifies that an explicit finite round sequence is s-systolic
// per Definition 3.2 (A_i = A_{i+s} for all applicable i). Rounds are
// compared as sets: each round is sorted once up front, so the pairwise
// comparisons are allocation-free slice walks instead of a map per pair.
func SystolicCheck(rounds [][]graph.Arc, s int) bool {
	if s <= 0 || s > len(rounds) {
		return false
	}
	sorted := make([][]graph.Arc, len(rounds))
	for i, round := range rounds {
		sorted[i] = sortedRound(round)
	}
	for i := 0; i+s < len(rounds); i++ {
		if !sameSortedArcs(sorted[i], sorted[i+s]) {
			return false
		}
	}
	return true
}

// sameArcSet is the one-shot variant of the comparison for callers holding
// unsorted rounds (tests, mostly): both rounds are copied, sorted and
// compared.
func sameArcSet(a, b []graph.Arc) bool {
	return sameSortedArcs(sortedRound(a), sortedRound(b))
}

func sortedRound(round []graph.Arc) []graph.Arc {
	c := append([]graph.Arc(nil), round...)
	sort.Slice(c, func(x, y int) bool {
		if c[x].From != c[y].From {
			return c[x].From < c[y].From
		}
		return c[x].To < c[y].To
	})
	return c
}

// sameSortedArcs compares two sorted rounds as sets; a round containing a
// duplicate arc is never equal to anything (a duplicate indicates a
// malformed schedule).
func sameSortedArcs(a, b []graph.Arc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if i > 0 && a[i] == a[i-1] {
			return false
		}
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
