package gossip

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

// genProgCase is one generator-compiled schedule plus the mode it runs
// under.
type genProgCase struct {
	name string
	rs   graph.RoundSource
	mode Mode
}

func genProgCases() []genProgCase {
	var cases []genProgCase
	add := func(kind string, s *topology.Schedule) {
		cases = append(cases,
			genProgCase{kind + "-full", s.FullDuplex(), FullDuplex},
			genProgCase{kind + "-half", s.HalfDuplex(), HalfDuplex},
			genProgCase{kind + "-interleaved", s.Interleaved(), HalfDuplex},
		)
	}
	add("hypercube-D4", topology.NewSchedule(topology.NewHypercubeClasses(4)))
	add("cycle-9", topology.NewSchedule(topology.NewCycleClasses(9)))
	add("cycle-8", topology.NewSchedule(topology.NewCycleClasses(8)))
	add("torus-3x4", topology.NewSchedule(topology.NewTorusClasses(3, 4)))
	add("ccc-3", topology.NewSchedule(topology.NewCCCClasses(3)))
	add("butterfly-2x2", topology.NewSchedule(topology.NewButterflyClasses(2, 2)))
	cases = append(cases, genProgCase{"cycle2-10", topology.NewCycleTwoPhase(10), Directed})
	return cases
}

// noChunk hides a RoundSource's chunk fast path, forcing the scalar Sender
// walk — the fallback the chunked kernels are differential-pinned against.
type noChunk struct{ rs graph.RoundSource }

func (n noChunk) N() int              { return n.rs.N() }
func (n noChunk) Rounds() int         { return n.rs.Rounds() }
func (n noChunk) Sender(r, v int) int { return n.rs.Sender(r, v) }

// TestGenProgramFingerprintMatchesMaterialized pins the streamed
// fingerprint against Protocol.Fingerprint of the materialized rounds, and
// the gen-backed Protocol's delegation to it.
func TestGenProgramFingerprintMatchesMaterialized(t *testing.T) {
	for _, tc := range genProgCases() {
		t.Run(tc.name, func(t *testing.T) {
			gen := CompileGen(tc.rs, tc.mode)
			p := gen.Materialize()
			if got, want := gen.Fingerprint(), p.Fingerprint(); got != want {
				t.Fatalf("gen fingerprint %s, materialized %s", got, want)
			}
			backed := &Protocol{Gen: gen, Period: gen.Period(), Mode: tc.mode}
			if got, want := backed.Fingerprint(), p.Fingerprint(); got != want {
				t.Fatalf("gen-backed protocol fingerprint %s, materialized %s", got, want)
			}
			// The scalar fallback must stream the identical byte sequence.
			scalar := CompileGen(noChunk{tc.rs}, tc.mode)
			if got, want := scalar.Fingerprint(), p.Fingerprint(); got != want {
				t.Fatalf("scalar-path fingerprint %s, materialized %s", got, want)
			}
		})
	}
}

// TestGenProgramMaterializeValid checks the materialized protocols are
// well-formed for their modes on the matching materialized graph.
func TestGenProgramMaterializeValid(t *testing.T) {
	graphs := map[string]*graph.Digraph{
		"hypercube-D4":  topology.Hypercube(4),
		"cycle-9":       topology.Cycle(9),
		"cycle-8":       topology.Cycle(8),
		"torus-3x4":     topology.Torus(3, 4),
		"ccc-3":         topology.CCC(3),
		"butterfly-2x2": topology.NewButterfly(2, 2).G,
		"cycle2-10":     topology.Cycle(10),
	}
	for _, tc := range genProgCases() {
		t.Run(tc.name, func(t *testing.T) {
			g := graphs[baseName(tc.name)]
			if g == nil {
				t.Fatalf("no graph for %s", tc.name)
			}
			p := CompileGen(tc.rs, tc.mode).Materialize()
			if err := p.Validate(g); err != nil {
				t.Fatalf("materialized protocol invalid: %v", err)
			}
		})
	}
}

// baseName strips the protocol suffix (-full, -half, -interleaved) from a
// case name; cycle2 cases keep their full name.
func baseName(name string) string {
	for _, suf := range []string{"-full", "-half", "-interleaved"} {
		if len(name) > len(suf) && name[len(name)-len(suf):] == suf {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

// TestStepGenProgramMatchesStepProgram is the execution differential: the
// generator-compiled step must inform exactly the vertices the
// CSR-compiled step of the materialized protocol informs, round for round,
// from every source — on both the chunked and scalar sender paths.
func TestStepGenProgramMatchesStepProgram(t *testing.T) {
	for _, tc := range genProgCases() {
		t.Run(tc.name, func(t *testing.T) {
			gen := CompileGen(tc.rs, tc.mode)
			n := gen.N()
			pr, err := Compile(gen.Materialize(), n, 1)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			for _, g := range []*GenProgram{gen, CompileGen(noChunk{tc.rs}, tc.mode)} {
				run := NewGenRun(g)
				for src := 0; src < n; src++ {
					fg := NewFrontierState(n, src)
					fc := NewFrontierState(n, src)
					for i := 0; i < 4*gen.Period()+4; i++ {
						gg := fg.StepGenProgram(run, i)
						gc := fc.StepProgram(pr, i)
						if gg != gc {
							t.Fatalf("source %d round %d: gen gained %d, csr %d", src, i, gg, gc)
						}
						for v := 0; v < n; v++ {
							if fg.Informed(v) != fc.Informed(v) {
								t.Fatalf("source %d round %d: informed(%d) gen %v csr %v",
									src, i, v, fg.Informed(v), fc.Informed(v))
							}
						}
					}
				}
			}
		})
	}
}

// TestPackedStepGenProgramMatchesScalar pins the packed 64-lane step (and
// its sharded range form) against the scalar frontier walk: lane l of the
// packed frontier must trace the broadcast from source l exactly.
func TestPackedStepGenProgramMatchesScalar(t *testing.T) {
	for _, tc := range genProgCases() {
		t.Run(tc.name, func(t *testing.T) {
			gen := CompileGen(tc.rs, tc.mode)
			n := gen.N()
			lanes := min(n, PackedLanes)
			sources := make([]int, lanes)
			for l := range sources {
				sources[l] = (l * 7) % n
			}
			scalars := make([]*FrontierState, lanes)
			for l, src := range sources {
				scalars[l] = NewFrontierState(n, src)
			}
			run := NewGenRun(gen)
			sruns := []*GenRun{NewGenRun(gen), NewGenRun(gen), NewGenRun(gen)}
			pf := NewPackedFrontier(n)
			pf.Reset(sources)
			sharded := NewPackedFrontier(n)
			sharded.Reset(sources)
			for i := 0; i < 3*gen.Period()+3; i++ {
				_, _, informed := pf.StepGenProgram(run, i)
				// Sharded: three uneven ranges, then one commit.
				var sInformed int
				cuts := []int{0, n / 3, n / 2, n}
				for s := 0; s+1 < len(cuts); s++ {
					_, _, inf := sharded.StepGenProgramRange(sruns[s], i, cuts[s], cuts[s+1])
					sInformed += inf
				}
				sharded.CommitStep()
				if sInformed != informed {
					t.Fatalf("round %d: sharded informed %d, serial %d", i, sInformed, informed)
				}
				want := 0
				for l := range scalars {
					scalars[l].StepGenProgram(run, i)
					want += scalars[l].InformedCount()
				}
				if informed != want {
					t.Fatalf("round %d: packed informed %d, scalar %d", i, informed, want)
				}
				for v := 0; v < n; v++ {
					for l := range scalars {
						if pf.Informed(v, l) != scalars[l].Informed(v) {
							t.Fatalf("round %d: lane %d vertex %d packed %v scalar %v",
								i, l, v, pf.Informed(v, l), scalars[l].Informed(v))
						}
					}
				}
			}
		})
	}
}

// TestStepGenProgramAllocs pins the zero-allocation contract of the
// generator-compiled hot paths.
func TestStepGenProgramAllocs(t *testing.T) {
	gen := CompileGen(topology.NewSchedule(topology.NewHypercubeClasses(8)).FullDuplex(), FullDuplex)
	n := gen.N()
	run := NewGenRun(gen)
	fr := NewFrontierState(n, 0)
	round := 0
	if avg := testing.AllocsPerRun(100, func() {
		fr.StepGenProgram(run, round)
		round++
	}); avg != 0 {
		t.Errorf("FrontierState.StepGenProgram allocates %.1f per step", avg)
	}
	pf := NewPackedFrontier(n)
	pf.Reset([]int{0, 1, 2})
	round = 0
	if avg := testing.AllocsPerRun(100, func() {
		pf.StepGenProgram(run, round)
		round++
	}); avg != 0 {
		t.Errorf("PackedFrontier.StepGenProgram allocates %.1f per step", avg)
	}
}

// TestGenProgramRoundArcs cross-checks the streamed arc counts against the
// materialized rounds.
func TestGenProgramRoundArcs(t *testing.T) {
	for _, tc := range genProgCases() {
		t.Run(tc.name, func(t *testing.T) {
			gen := CompileGen(tc.rs, tc.mode)
			p := gen.Materialize()
			for r := 0; r < gen.Period(); r++ {
				if got, want := gen.RoundArcs(r), len(p.Rounds[r]); got != want {
					t.Fatalf("round %d: RoundArcs %d, materialized %d", r, got, want)
				}
			}
			if gen.RoundArcs(-1) != 0 {
				t.Fatalf("RoundArcs(-1) != 0")
			}
		})
	}
}

// TestPackedStepGenProgramWorkerShards runs the range-sharded step the way
// the worker pool does — one goroutine per worker on disjoint vertex
// ranges, a join, then CommitStep — for every worker count 1..8, and
// demands the informed counts match the single-worker step round for
// round. Under -race this pins the concurrency contract of
// StepGenProgramRange (per-worker GenRun scratch, disjoint destination
// ranges, commit after the join).
func TestPackedStepGenProgramWorkerShards(t *testing.T) {
	for _, tc := range genProgCases() {
		t.Run(tc.name, func(t *testing.T) {
			gen := CompileGen(tc.rs, tc.mode)
			n := gen.N()
			lanes := min(n, PackedLanes)
			sources := make([]int, lanes)
			for l := range sources {
				sources[l] = (l * 5) % n
			}
			serial := NewPackedFrontier(n)
			srun := NewGenRun(gen)
			for workers := 1; workers <= 8; workers++ {
				serial.Reset(sources)
				pf := NewPackedFrontier(n)
				pf.Reset(sources)
				runs := make([]*GenRun, workers)
				for w := range runs {
					runs[w] = NewGenRun(gen)
				}
				for i := 0; i < 2*gen.Period()+2; i++ {
					_, _, want := serial.StepGenProgram(srun, i)
					informed := make([]int, workers)
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						lo, hi := n*w/workers, n*(w+1)/workers
						wg.Add(1)
						go func(w, lo, hi int) {
							defer wg.Done()
							_, _, inf := pf.StepGenProgramRange(runs[w], i, lo, hi)
							informed[w] = inf
						}(w, lo, hi)
					}
					wg.Wait()
					pf.CommitStep()
					got := 0
					for _, inf := range informed {
						got += inf
					}
					if got != want {
						t.Fatalf("workers=%d round %d: sharded informed %d, serial %d",
							workers, i, got, want)
					}
					for v := 0; v < n; v++ {
						for l := 0; l < lanes; l++ {
							if pf.Informed(v, l) != serial.Informed(v, l) {
								t.Fatalf("workers=%d round %d: informed(%d, lane %d) sharded %v serial %v",
									workers, i, v, l, pf.Informed(v, l), serial.Informed(v, l))
							}
						}
					}
				}
			}
		})
	}
}
