package gossip

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func pathGraph(n int) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestModeString(t *testing.T) {
	if Directed.String() != "directed" || HalfDuplex.String() != "half-duplex" || FullDuplex.String() != "full-duplex" {
		t.Error("mode names wrong")
	}
}

func TestProtocolRoundPeriodic(t *testing.T) {
	p := NewSystolic([][]graph.Arc{{{From: 0, To: 1}}, {{From: 1, To: 0}}}, HalfDuplex)
	if !p.Systolic() || p.Len() != 2 {
		t.Error("systolic flags wrong")
	}
	for i := 0; i < 10; i++ {
		want := i % 2
		got := p.Round(i)
		if got[0].From != want {
			t.Fatalf("round %d activates %v", i, got)
		}
	}
}

func TestProtocolRoundFinite(t *testing.T) {
	p := NewFinite([][]graph.Arc{{{From: 0, To: 1}}}, Directed)
	if p.Systolic() {
		t.Error("finite protocol reported systolic")
	}
	if p.Round(0) == nil || p.Round(5) != nil {
		t.Error("finite rounds wrong")
	}
}

func TestValidateMatching(t *testing.T) {
	g := pathGraph(3)
	bad := NewFinite([][]graph.Arc{{{From: 0, To: 1}, {From: 1, To: 2}}}, HalfDuplex)
	if err := bad.Validate(g); err == nil {
		t.Error("non-matching round accepted")
	}
}

func TestValidateArcExistence(t *testing.T) {
	g := pathGraph(3)
	bad := NewFinite([][]graph.Arc{{{From: 0, To: 2}}}, HalfDuplex)
	if err := bad.Validate(g); err == nil {
		t.Error("non-existent arc accepted")
	}
}

func TestValidateFullDuplexPairs(t *testing.T) {
	g := pathGraph(3)
	bad := NewFinite([][]graph.Arc{{{From: 0, To: 1}}}, FullDuplex)
	if err := bad.Validate(g); err == nil {
		t.Error("half arc accepted in full-duplex mode")
	}
	good := NewFinite([][]graph.Arc{{{From: 0, To: 1}, {From: 1, To: 0}}}, FullDuplex)
	if err := good.Validate(g); err != nil {
		t.Errorf("valid full-duplex round rejected: %v", err)
	}
}

func TestValidateSymmetryRequirement(t *testing.T) {
	g := graph.New(2)
	g.AddArc(0, 1)
	p := NewFinite([][]graph.Arc{{{From: 0, To: 1}}}, HalfDuplex)
	if err := p.Validate(g); err == nil {
		t.Error("half-duplex on asymmetric digraph accepted")
	}
	pd := NewFinite([][]graph.Arc{{{From: 0, To: 1}}}, Directed)
	if err := pd.Validate(g); err != nil {
		t.Errorf("directed mode should accept: %v", err)
	}
}

func TestSystolicCheck(t *testing.T) {
	a := []graph.Arc{{From: 0, To: 1}}
	b := []graph.Arc{{From: 1, To: 0}}
	if !SystolicCheck([][]graph.Arc{a, b, a, b, a}, 2) {
		t.Error("2-systolic sequence rejected")
	}
	if SystolicCheck([][]graph.Arc{a, b, b, a}, 2) {
		t.Error("non-systolic sequence accepted")
	}
	if SystolicCheck([][]graph.Arc{a, b}, 0) {
		t.Error("s=0 accepted")
	}
}

func TestStateInitial(t *testing.T) {
	s := NewState(4)
	for v := 0; v < 4; v++ {
		for i := 0; i < 4; i++ {
			if s.Knows(v, i) != (v == i) {
				t.Fatalf("initial knowledge wrong at (%d,%d)", v, i)
			}
		}
		if s.Count(v) != 1 {
			t.Fatal("initial count wrong")
		}
	}
	if s.TotalKnowledge() != 4 {
		t.Error("total knowledge wrong")
	}
}

func TestStepTransfersBeginningOfRound(t *testing.T) {
	// Two opposite arcs in one round must exchange the *initial* sets, not
	// chain transfers within the round.
	s := NewState(2)
	s.Step([]graph.Arc{{From: 0, To: 1}, {From: 1, To: 0}})
	if !s.Knows(1, 0) || !s.Knows(0, 1) {
		t.Error("exchange failed")
	}
	// Chain 0->1, 1->2 in one round: vertex 2 must NOT learn item 0.
	s3 := NewState(3)
	s3.Step([]graph.Arc{{From: 0, To: 1}, {From: 1, To: 2}})
	if s3.Knows(2, 0) {
		t.Error("item teleported two hops in one round")
	}
	if !s3.Knows(2, 1) || !s3.Knows(1, 0) {
		t.Error("single-hop transfers missing")
	}
}

func TestSimulatePathSequential(t *testing.T) {
	// Sequential sweep on P3: explicit protocol finishing gossip.
	g := pathGraph(3)
	rounds := [][]graph.Arc{
		{{From: 0, To: 1}},
		{{From: 1, To: 2}},
		{{From: 2, To: 1}},
		{{From: 1, To: 0}},
	}
	p := NewFinite(rounds, HalfDuplex)
	res, err := Simulate(g, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Errorf("P3 sequential gossip = %d rounds, want 4", res.Rounds)
	}
}

func TestSimulateIncomplete(t *testing.T) {
	g := pathGraph(3)
	p := NewFinite([][]graph.Arc{{{From: 0, To: 1}}}, HalfDuplex)
	_, err := Simulate(g, p, 10)
	if !errors.Is(err, ErrIncomplete) {
		t.Errorf("want ErrIncomplete, got %v", err)
	}
}

func TestSimulateTrivial(t *testing.T) {
	g := graph.New(1)
	p := NewFinite(nil, Directed)
	res, err := Simulate(g, p, 10)
	if err != nil || res.Rounds != 0 {
		t.Errorf("single vertex gossip: %v %v", res, err)
	}
}

func TestSimulateBroadcast(t *testing.T) {
	g := pathGraph(4)
	rounds := [][]graph.Arc{
		{{From: 0, To: 1}},
		{{From: 1, To: 2}},
		{{From: 2, To: 3}},
	}
	p := NewFinite(rounds, HalfDuplex)
	res, err := SimulateBroadcast(g, p, 0, 10)
	if err != nil || res.Rounds != 3 {
		t.Errorf("broadcast on P4: %v %v", res, err)
	}
	// From source 3 the same protocol never informs anyone.
	if _, err := SimulateBroadcast(g, p, 3, 10); !errors.Is(err, ErrIncomplete) {
		t.Error("broadcast from wrong source should fail")
	}
}

func TestCompletionCertificateMatchesSimulation(t *testing.T) {
	g := pathGraph(4)
	rounds := [][]graph.Arc{
		{{From: 0, To: 1}, {From: 3, To: 2}},
		{{From: 1, To: 2}},
		{{From: 2, To: 3}, {From: 1, To: 0}},
		{{From: 2, To: 1}},
		{{From: 1, To: 0}},
	}
	p := NewFinite(rounds, HalfDuplex)
	res, err := Simulate(g, p, 10)
	if err != nil {
		t.Fatalf("simulation failed: %v", err)
	}
	if !CompletionCertificate(g, p, res.Rounds) {
		t.Error("certificate rejects a protocol the simulator completed")
	}
	if CompletionCertificate(g, p, res.Rounds-1) {
		t.Error("certificate accepts fewer rounds than the simulator needed")
	}
}

func TestKnowledgeMonotone(t *testing.T) {
	g := pathGraph(5)
	rounds := [][]graph.Arc{
		{{From: 0, To: 1}, {From: 2, To: 3}},
		{{From: 1, To: 2}, {From: 3, To: 4}},
	}
	s := NewState(5)
	prev := s.TotalKnowledge()
	for r := 0; r < 6; r++ {
		s.Step(rounds[r%2])
		cur := s.TotalKnowledge()
		if cur < prev {
			t.Fatal("knowledge decreased")
		}
		prev = cur
	}
	_ = g
}

func TestBitsetSetHasCount(t *testing.T) {
	b := newBitset(70)
	for i := 0; i < 70; i += 2 {
		b.set(i)
	}
	for i := 0; i < 70; i++ {
		if b.has(i) != (i%2 == 0) {
			t.Fatalf("has(%d) = %v", i, b.has(i))
		}
	}
	if b.count() != 35 {
		t.Errorf("count = %d, want 35", b.count())
	}
}
