package gossip

import "repro/internal/graph"

// ArcFilter decides, per scheduled arc of one execution round, whether the
// transfer is delivered. It is the seam the scenario engine (message loss,
// node churn, adversarial arc deletion — repro/internal/scenario) injects
// faults through: the filter is consulted for every arc of the round in a
// fixed, documented order, so a deterministic filter yields a deterministic
// execution.
//
// The consultation order per round is: fused exchange ops in program order,
// each as keep(A, B) then keep(B, A); then the snapshot-reading unfused
// arcs in program order; then the live-reading unfused arcs in program
// order. Both directions of a fused op are always consulted (even when the
// first returns false), so a filter driving a PRNG consumes an
// arc-set-determined amount of randomness regardless of earlier outcomes.
type ArcFilter func(from, to int32) bool

// StepProgramMasked applies execution round i of a compiled program with
// per-arc delivery decided by keep. With an always-true filter it is
// byte-identical to StepProgram (the differential tests pin this); a false
// return suppresses exactly that transfer — the receiver simply does not
// merge the sender's beginning-of-round words — without disturbing any
// other arc of the round.
//
// Dropping arcs preserves beginning-of-round semantics: snapshot spans are
// still copied for every sender the full round overwrites (a suppressed
// overwrite only makes the snapshot equal the live state, never wrong), and
// a fused exchange whose endpoints touch no other arc of the round keeps
// its live blocks equal to their beginning-of-round values until the op
// runs, so delivering one direction of a pair merges exactly the
// beginning-of-round words.
//
// Masked stepping is always serial (any attached pool is bypassed): the
// scenario engine parallelizes across Monte-Carlo trials, not within one
// faulty round, and a fixed serial order is what makes the filter's PRNG
// stream reproducible. Steady-state masked steps perform zero allocations.
//
//gossip:hotpath
func (s *State) StepProgramMasked(pr *Program, i int, keep ArcFilter) {
	s.checkProgram(pr)
	r := pr.roundIndex(i)
	if r < 0 {
		return
	}
	for _, sp := range pr.spans[pr.spanStart[r]:pr.spanStart[r+1]] {
		copy(s.prev[sp.off:sp.off+sp.n], s.cur[sp.off:sp.off+sp.n])
	}
	for _, e := range pr.fused[pr.fusedStart[r]:pr.fusedStart[r+1]] {
		kab := keep(e.A, e.B)
		kba := keep(e.B, e.A)
		switch {
		case kab && kba:
			gained, newlyFull := s.exchange(e)
			s.know += int64(gained)
			s.full += int64(newlyFull)
		case kab:
			s.deliverLive(e.AOff, e.BOff, e.B)
		case kba:
			s.deliverLive(e.BOff, e.AOff, e.A)
		}
	}
	for _, pa := range pr.pairs[pr.roundStart[r]:pr.prevSplit[r]] {
		if !keep(pa.From, pa.To) {
			continue
		}
		gained, becameFull := s.recvFrom(s.prev, pa)
		s.know += int64(gained)
		if becameFull {
			s.full++
		}
	}
	for _, pa := range pr.pairs[pr.prevSplit[r]:pr.roundStart[r+1]] {
		if !keep(pa.From, pa.To) {
			continue
		}
		gained, becameFull := s.recvFrom(s.cur, pa)
		s.know += int64(gained)
		if becameFull {
			s.full++
		}
	}
}

// deliverLive merges the live block at srcOff into the receiver — the
// one-directional remnant of a fused exchange whose opposite arc was
// dropped. The sender's live block equals its beginning-of-round value
// (fusion guaranteed the endpoints touch no other arc of the round), so
// this is an ordinary beginning-of-round transfer.
func (s *State) deliverLive(srcOff, dstOff, to int32) {
	gained, becameFull := s.recvFrom(s.cur, graph.PackedArc{
		SrcOff: srcOff, DstOff: dstOff, To: to,
	})
	s.know += int64(gained)
	if becameFull {
		s.full++
	}
}

// StepProgramMasked applies execution round i of a compiled program to the
// packed broadcast frontier with per-arc delivery decided by keep, and
// returns the number of newly informed vertices. The filter consultation
// order matches State.StepProgramMasked: fused ops first (both directions,
// always), then the unfused arcs in program order.
//
//gossip:allowpanic pairing guard: the session layer establishes program/state compatibility
//gossip:hotpath
func (f *FrontierState) StepProgramMasked(pr *Program, i int, keep ArcFilter) int {
	if pr.n != f.n {
		panic("gossip: masked program executed on mismatched frontier")
	}
	copy(f.prev, f.informed)
	r := pr.roundIndex(i)
	if r < 0 {
		return 0
	}
	gained := 0
	for _, e := range pr.fused[pr.fusedStart[r]:pr.fusedStart[r+1]] {
		kab := keep(e.A, e.B)
		kba := keep(e.B, e.A)
		if kab && f.prev.has(int(e.A)) && !f.informed.has(int(e.B)) {
			f.informed.set(int(e.B))
			gained++
		}
		if kba && f.prev.has(int(e.B)) && !f.informed.has(int(e.A)) {
			f.informed.set(int(e.A))
			gained++
		}
	}
	for _, pa := range pr.pairs[pr.roundStart[r]:pr.roundStart[r+1]] {
		if !keep(pa.From, pa.To) {
			continue
		}
		if f.prev.has(int(pa.From)) && !f.informed.has(int(pa.To)) {
			f.informed.set(int(pa.To))
			gained++
		}
	}
	f.know += gained
	return gained
}
