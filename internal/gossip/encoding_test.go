package gossip

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := NewSystolic([][]graph.Arc{
		{{From: 0, To: 1}, {From: 2, To: 3}},
		{{From: 1, To: 0}},
	}, HalfDuplex)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != p.Mode || q.Period != p.Period || len(q.Rounds) != len(p.Rounds) {
		t.Fatalf("round trip header mismatch: %+v vs %+v", q, p)
	}
	for i := range p.Rounds {
		if !sameArcSet(p.Rounds[i], q.Rounds[i]) {
			t.Errorf("round %d mismatch: %v vs %v", i, p.Rounds[i], q.Rounds[i])
		}
	}
}

func TestEncodeDecodeFinite(t *testing.T) {
	p := NewFinite([][]graph.Arc{{{From: 0, To: 1}}}, Directed)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Systolic() || q.Mode != Directed {
		t.Errorf("finite round trip wrong: %+v", q)
	}
}

func TestDecodeCommentsAndBlank(t *testing.T) {
	in := `
# a schedule
mode full-duplex

period 1
round 0->1 1->0   # exchange
`
	p, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != FullDuplex || p.Period != 1 || len(p.Rounds[0]) != 2 {
		t.Errorf("decoded %+v", p)
	}
}

func TestDecodeEmptyRound(t *testing.T) {
	p, err := Decode(strings.NewReader("mode directed\nperiod 0\nround\nround 0->1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rounds) != 2 || len(p.Rounds[0]) != 0 {
		t.Errorf("empty round not preserved: %+v", p.Rounds)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"period 2\nround 0->1\nround 1->0\n",       // missing mode
		"mode half-duplex\nround 0->1\n",           // missing period
		"mode warp\nperiod 0\n",                    // bad mode
		"mode directed\nperiod -1\n",               // bad period
		"mode directed\nperiod 2\nround 0->1\n",    // period/rounds mismatch
		"mode directed\nperiod 0\nround 0-1\n",     // bad arc syntax
		"mode directed\nperiod 0\nround -1->2\n",   // negative vertex
		"mode directed\nperiod 0\nrounds 0->1\n",   // unknown directive
		"mode directed half\nperiod 0\n",           // extra mode arg
		"mode directed\nperiod 0 0\nround 0->1\n",  // extra period arg
		"mode directed\nperiod zero\nround 0->1\n", // non-numeric period
	}
	for i, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad input accepted:\n%s", i, in)
		}
	}
}

func TestDecodedProtocolSimulates(t *testing.T) {
	in := "mode half-duplex\nperiod 4\nround 0->1\nround 1->2\nround 2->1\nround 1->0\n"
	p, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	g := pathGraph(3)
	res, err := Simulate(g, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Errorf("decoded protocol gossip = %d rounds, want 4", res.Rounds)
	}
}
