package gossip

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Pool is a persistent worker pool that shards State.Step across vertices.
// Arcs are partitioned by ownership — worker w copies the senders with
// From % workers == w and merges the receivers with To % workers == w — so
// every word of the state has exactly one writer per phase and the result
// is byte-identical to a serial Step for any arc set, not just matchings.
//
// The workers are long-lived goroutines parked on per-worker channels;
// driving a round costs two wakeup/barrier cycles and no allocations.
// Close releases the goroutines; a closed pool must not be used again.
type Pool struct {
	workers int
	jobs    []chan poolJob
	wg      sync.WaitGroup

	// Last compiled program driven through the pool and its memoized shard
	// plan; a session steps one program at a time, so a single slot avoids
	// the partition lookup on every round.
	lastProg *Program
	lastPart *partition
}

type poolJob struct {
	st    *State
	round []graph.Arc // interpreted path (prog == nil)
	prog  *Program    // compiled path
	part  *partition
	r     int32 // explicit compiled round index
	phase uint8 // 0: snapshot senders, 1: merge receivers
}

// NewPool starts a pool of workers long-lived stepping goroutines.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, jobs: make([]chan poolJob, workers)}
	for w := range p.jobs {
		ch := make(chan poolJob, 1)
		p.jobs[w] = ch
		go p.worker(w, ch)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the worker goroutines down. It must not be called while a
// Step is in flight.
func (p *Pool) Close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

func (p *Pool) worker(w int, ch chan poolJob) {
	for job := range ch {
		if job.prog != nil {
			job.st.shardCompiled(job.prog, job.part, int(job.r), job.phase, w)
		} else {
			job.st.shard(job.round, job.phase, w, p.workers)
		}
		p.wg.Done()
	}
}

// step drives one round through the pool: a snapshot phase, a barrier, a
// merge phase, a barrier. The barriers give every merge a happens-before
// edge on every snapshot, preserving beginning-of-round semantics.
func (p *Pool) step(st *State, round []graph.Arc) {
	for phase := uint8(0); phase < 2; phase++ {
		p.wg.Add(p.workers)
		for _, ch := range p.jobs {
			ch <- poolJob{st: st, round: round, phase: phase}
		}
		p.wg.Wait()
	}
}

// stepProgram drives one compiled round through the pool. The shard plan
// comes from the program's compile-time partition (memoized per worker
// count); the two phases and barriers mirror step, except that the
// snapshot phase is skipped outright on rounds the compiler proved need no
// shadow copies (every matching and fully fused round) — one barrier per
// round instead of two.
func (p *Pool) stepProgram(st *State, pr *Program, r int) {
	if p.lastProg != pr {
		p.lastProg, p.lastPart = pr, pr.partition(p.workers)
	}
	part := p.lastPart
	phase := uint8(0)
	if pr.spanStart[r] == pr.spanStart[r+1] {
		phase = 1
	}
	for ; phase < 2; phase++ {
		p.wg.Add(p.workers)
		for _, ch := range p.jobs {
			ch <- poolJob{st: st, prog: pr, part: part, r: int32(r), phase: phase}
		}
		p.wg.Wait()
	}
}

// shard executes one worker's slice of a phase. Gains are accumulated
// locally and published once per shard with atomics; counts[To] needs no
// synchronization because each To has a single owner.
func (s *State) shard(round []graph.Arc, phase uint8, w, workers int) {
	if phase == 0 {
		ww := s.words
		for _, a := range round {
			if a.From%workers != w {
				continue
			}
			o := a.From * ww
			copy(s.prev[o:o+ww], s.cur[o:o+ww])
		}
		return
	}
	var gained, newlyFull int64
	for _, a := range round {
		if a.To%workers != w {
			continue
		}
		g, becameFull := s.recv(a)
		gained += int64(g)
		if becameFull {
			newlyFull++
		}
	}
	if gained != 0 {
		atomic.AddInt64(&s.know, gained)
		atomic.AddInt64(&s.full, newlyFull)
	}
}
