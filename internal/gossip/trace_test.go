package gossip

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func exchangeProtocol() *Protocol {
	// Q2 dimension exchange on 4 vertices.
	return NewSystolic([][]graph.Arc{
		{{From: 0, To: 1}, {From: 1, To: 0}, {From: 2, To: 3}, {From: 3, To: 2}},
		{{From: 0, To: 2}, {From: 2, To: 0}, {From: 1, To: 3}, {From: 3, To: 1}},
	}, FullDuplex)
}

func q2() *graph.Digraph {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	return g
}

func TestTraceGossipDoubling(t *testing.T) {
	tr, err := TraceGossip(q2(), exchangeProtocol(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Knowledge doubles every round: totals 8, 16; completion at round 2.
	if tr.Complete != 2 {
		t.Fatalf("complete = %d, want 2 (trace %v)", tr.Complete, tr.Total)
	}
	if tr.Total[0] != 8 || tr.Total[1] != 16 {
		t.Errorf("totals = %v, want [8 16]", tr.Total)
	}
	if tr.Min[0] != 2 || tr.Min[1] != 4 {
		t.Errorf("mins = %v, want [2 4]", tr.Min)
	}
}

func TestTraceMonotone(t *testing.T) {
	g := pathGraph(6)
	p := NewSystolic([][]graph.Arc{
		{{From: 0, To: 1}, {From: 2, To: 3}, {From: 4, To: 5}},
		{{From: 1, To: 2}, {From: 3, To: 4}},
		{{From: 5, To: 4}, {From: 3, To: 2}, {From: 1, To: 0}},
		{{From: 4, To: 3}, {From: 2, To: 1}},
	}, HalfDuplex)
	tr, err := TraceGossip(g, p, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tr.Rounds(); i++ {
		if tr.Total[i] < tr.Total[i-1] || tr.Min[i] < tr.Min[i-1] {
			t.Fatalf("trace not monotone at %d: %v / %v", i, tr.Total, tr.Min)
		}
	}
	if tr.Complete == 0 {
		t.Error("zig-zag path protocol never completed")
	}
	if tr.Total[tr.Rounds()-1] != 36 {
		t.Errorf("final total = %d, want n² = 36", tr.Total[tr.Rounds()-1])
	}
}

func TestTraceIncomplete(t *testing.T) {
	g := pathGraph(4)
	p := NewFinite([][]graph.Arc{{{From: 0, To: 1}}}, HalfDuplex)
	tr, err := TraceGossip(g, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Complete != 0 || tr.Rounds() != 1 {
		t.Errorf("trace = %+v", tr)
	}
}

func TestTraceValidates(t *testing.T) {
	g := pathGraph(3)
	bad := NewFinite([][]graph.Arc{{{From: 0, To: 2}}}, HalfDuplex)
	if _, err := TraceGossip(g, bad, 10); err == nil {
		t.Error("invalid protocol accepted")
	}
}

func TestTraceString(t *testing.T) {
	tr, err := TraceGossip(q2(), exchangeProtocol(), 10)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.String()
	if !strings.Contains(s, "complete at 2") || !strings.Contains(s, "1:8/2") {
		t.Errorf("trace string = %q", s)
	}
}
