package gossip

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// FrontierState is the broadcast-specialized knowledge tracker: it records
// only whether each vertex has been informed of the single broadcast item,
// packed one bit per vertex (n bits total instead of a word per vertex), and
// reports how the informed frontier grows round by round. Step performs
// zero allocations.
type FrontierState struct {
	n        int
	informed bitset // one bit per vertex
	prev     bitset // beginning-of-round shadow
	know     int    // informed vertices
}

// NewFrontierState returns the broadcast state in which only source is
// informed.
func NewFrontierState(n, source int) *FrontierState {
	f := &FrontierState{n: n, informed: newBitset(n), prev: newBitset(n)}
	f.informed.set(source)
	f.know = 1
	return f
}

// Reset returns the state to "only source is informed" without reallocating:
// both bitsets are cleared in place. Loops that measure broadcasts from many
// sources (eccentricity scans, all-sources analyses) reuse one FrontierState
// through Reset instead of paying two bitset allocations per source.
func (f *FrontierState) Reset(source int) {
	f.informed.clearAll()
	f.prev.clearAll()
	f.informed.set(source)
	f.know = 1
}

// Step applies one communication round — an arc (x, y) informs y iff x was
// informed at the beginning of the round — and returns the number of newly
// informed vertices (the frontier growth).
func (f *FrontierState) Step(round []graph.Arc) int {
	copy(f.prev, f.informed)
	gained := 0
	for _, a := range round {
		if f.prev.has(a.From) && !f.informed.has(a.To) {
			f.informed.set(a.To)
			gained++
		}
	}
	f.know += gained
	return gained
}

// Informed reports whether vertex v has the item.
func (f *FrontierState) Informed(v int) bool { return f.informed.has(v) }

// InformedCount returns how many vertices have the item.
func (f *FrontierState) InformedCount() int { return f.know }

// Complete reports whether every vertex has the item.
func (f *FrontierState) Complete() bool { return f.know == f.n }

// Export serializes the informed set as little-endian words, the payload of
// a broadcast session checkpoint.
func (f *FrontierState) Export() []byte {
	out := make([]byte, len(f.informed)*8)
	for i, w := range f.informed {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out
}

// Import restores an informed set serialized by Export, recomputing the
// informed count. Payloads of the wrong size or with bits beyond vertex
// n−1 are rejected.
func (f *FrontierState) Import(data []byte) error {
	if len(data) != len(f.informed)*8 {
		return fmt.Errorf("gossip: frontier payload is %d bytes, want %d", len(data), len(f.informed)*8)
	}
	know := 0
	for i := range f.informed {
		f.informed[i] = binary.LittleEndian.Uint64(data[i*8:])
		know += bits.OnesCount64(f.informed[i])
	}
	if tail := f.n % 64; tail != 0 {
		if f.informed[len(f.informed)-1]&^(1<<tail-1) != 0 {
			return fmt.Errorf("gossip: frontier payload has bits beyond vertex %d", f.n-1)
		}
	}
	f.know = know
	return nil
}
