package gossip

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomProtocol builds a random valid half-duplex protocol on a random
// symmetric graph: each round greedily packs a random subset of arcs into a
// matching.
func randomProtocol(rng *rand.Rand, g *graph.Digraph, rounds int) *Protocol {
	arcs := g.Arcs()
	var rs [][]graph.Arc
	for r := 0; r < rounds; r++ {
		perm := rng.Perm(len(arcs))
		busy := make(map[int]struct{})
		var round []graph.Arc
		for _, i := range perm {
			a := arcs[i]
			if rng.Intn(2) == 0 {
				continue
			}
			if _, ok := busy[a.From]; ok {
				continue
			}
			if _, ok := busy[a.To]; ok {
				continue
			}
			busy[a.From] = struct{}{}
			busy[a.To] = struct{}{}
			round = append(round, a)
		}
		rs = append(rs, round)
	}
	return NewFinite(rs, HalfDuplex)
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Digraph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v)
	}
	for extra := 0; extra < n; extra++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasArc(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestCertificateAgreesWithSimulatorRandomized: on random protocols the
// independent completion certificate must agree with the bitset simulator
// about whether gossip completed after every prefix length.
func TestCertificateAgreesWithSimulatorRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g := randomConnectedGraph(rng, 4+rng.Intn(5))
		p := randomProtocol(rng, g, 12)
		if err := p.Validate(g); err != nil {
			t.Fatalf("trial %d: generator produced invalid protocol: %v", trial, err)
		}
		st := NewState(g.N())
		for r := 0; r < p.Len(); r++ {
			st.Step(p.Round(r))
			simDone := st.GossipComplete()
			certDone := CompletionCertificate(g, p, r+1)
			if simDone != certDone {
				t.Fatalf("trial %d round %d: simulator says %v, certificate says %v",
					trial, r, simDone, certDone)
			}
		}
	}
}

// TestKnowledgeMonotoneRandomized: total knowledge never decreases and is
// bounded by n².
func TestKnowledgeMonotoneRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		g := randomConnectedGraph(rng, n)
		p := randomProtocol(rng, g, 15)
		st := NewState(n)
		prev := st.TotalKnowledge()
		for r := 0; r < p.Len(); r++ {
			st.Step(p.Round(r))
			cur := st.TotalKnowledge()
			if cur < prev || cur > n*n {
				t.Fatalf("trial %d: knowledge %d -> %d out of bounds", trial, prev, cur)
			}
			prev = cur
		}
	}
}

// TestOneItemPerRoundPerVertex: in the whispering model a vertex gains at
// most the sender's whole set via exactly one incoming arc per round; with
// singleton knowledge, count gains are bounded by 2x per round
// (doubling at most).
func TestTotalKnowledgeAtMostDoubles(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(6)
		g := randomConnectedGraph(rng, n)
		p := randomProtocol(rng, g, 10)
		st := NewState(n)
		prev := st.TotalKnowledge()
		for r := 0; r < p.Len(); r++ {
			st.Step(p.Round(r))
			cur := st.TotalKnowledge()
			if cur > 2*prev {
				t.Fatalf("trial %d: knowledge more than doubled in one round (%d -> %d)", trial, prev, cur)
			}
			prev = cur
		}
	}
}

// TestHalfDuplexGossipAtLeastLog: by the counting argument, half-duplex
// gossip cannot finish before ⌈log2(n)⌉ rounds (knowledge at most doubles).
func TestHalfDuplexGossipAtLeastLog(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(8)
		g := randomConnectedGraph(rng, n)
		p := randomProtocol(rng, g, 30*n)
		res, err := Simulate(g, p, 30*n)
		if err != nil {
			continue // random protocol may not complete; fine
		}
		log2n := 0
		for m := 1; m < n; m <<= 1 {
			log2n++
		}
		if res.Rounds < log2n {
			t.Fatalf("trial %d: gossip in %d rounds beats the log2(n)=%d information bound", trial, res.Rounds, log2n)
		}
	}
}

func TestStepEmptyRound(t *testing.T) {
	st := NewState(3)
	before := st.TotalKnowledge()
	st.Step(nil)
	if st.TotalKnowledge() != before {
		t.Error("empty round changed knowledge")
	}
}

func TestRoundNegativeIsEmpty(t *testing.T) {
	p := NewSystolic([][]graph.Arc{{{From: 0, To: 1}}}, HalfDuplex)
	if got := p.Round(-1); got != nil {
		t.Fatalf("Round(-1) = %v, want empty round", got)
	}
	// Stepping an out-of-schedule round must be a harmless no-op, not a
	// crash: the engine's ErrBadParam discipline forbids panics on
	// caller-supplied values.
	st := NewState(2)
	before := st.TotalKnowledge()
	st.Step(p.Round(-7))
	if st.TotalKnowledge() != before {
		t.Error("negative round changed knowledge")
	}
}
