package gossip

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDecodeNeverPanics feeds pseudo-random garbage (and near-miss variants
// of valid input) to Decode: it must return an error or a protocol, never
// panic.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	alphabet := []string{
		"mode", "period", "round", "directed", "half-duplex", "full-duplex",
		"0->1", "1->0", "->", "-", ">", "0", "1", "-3", "4->", "->7", "#x",
		"\n", " ", "0->0x", "99999999->1",
	}
	for trial := 0; trial < 500; trial++ {
		var sb strings.Builder
		tokens := rng.Intn(30)
		for i := 0; i < tokens; i++ {
			sb.WriteString(alphabet[rng.Intn(len(alphabet))])
			if rng.Intn(3) == 0 {
				sb.WriteByte('\n')
			} else {
				sb.WriteByte(' ')
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %q: %v", sb.String(), r)
				}
			}()
			_, _ = Decode(strings.NewReader(sb.String()))
		}()
	}
}

// TestEncodeDecodeQuickRandomProtocols round-trips randomly generated valid
// protocols.
func TestEncodeDecodeQuickRandomProtocols(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 50; trial++ {
		g := randomConnectedGraph(rng, 3+rng.Intn(6))
		p := randomProtocol(rng, g, 1+rng.Intn(6))
		if rng.Intn(2) == 0 {
			p.Period = len(p.Rounds) // declare systolic
		}
		var sb strings.Builder
		if err := p.Encode(&sb); err != nil {
			t.Fatal(err)
		}
		q, err := Decode(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, sb.String())
		}
		if q.Period != p.Period || len(q.Rounds) != len(p.Rounds) || q.Mode != p.Mode {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
		for i := range p.Rounds {
			if !sameArcSet(p.Rounds[i], q.Rounds[i]) {
				t.Fatalf("trial %d round %d mismatch", trial, i)
			}
		}
	}
}
