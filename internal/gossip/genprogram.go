package gossip

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// This file holds the generator-compiled schedule program: the streaming
// counterpart of the CSR Program for periodic protocols whose rounds are
// arithmetic in the vertex id (dimension-order hypercube exchange, stride
// rounds on cycles and tori, …). A GenProgram never materializes an arc:
// each round's senders are recomputed from a graph.RoundSource as the step
// walks the frontier, so memory per worker is the frontier words plus one
// fixed chunk buffer — independent of the arc count, which is what lets a
// d=24 hypercube broadcast simulate in a few hundred MiB where its CSR
// Program alone would need ~6 GiB. Execution is differential-pinned
// byte-identical to StepProgram over the Compile of Materialize().

// GenProgram is an immutable compiled schedule over a generator: the
// round → sender map of a periodic protocol, plus the mode and period that
// identify it. One GenProgram is shared by every worker of a simulation;
// the mutable per-worker scratch lives in GenRun.
type GenProgram struct {
	rs     graph.RoundSource
	sc     graph.SenderChunker // non-nil when rs implements the chunk fast path
	mode   Mode
	n      int
	period int

	fpOnce sync.Once
	fp     string
}

// CompileGen lowers a generator-backed periodic schedule into a GenProgram.
// The round source must describe a systolic protocol (period >= 1) whose
// rounds are matchings — the structural invariant every schedule generator
// in internal/topology guarantees by construction.
//
//gossip:allowpanic compile-time guard: schedule generators guarantee period >= 1 by construction
func CompileGen(rs graph.RoundSource, mode Mode) *GenProgram {
	if rs.Rounds() < 1 {
		panic(fmt.Sprintf("gossip: generator schedule has period %d, want >= 1", rs.Rounds()))
	}
	g := &GenProgram{rs: rs, mode: mode, n: rs.N(), period: rs.Rounds()}
	if sc, ok := rs.(graph.SenderChunker); ok {
		g.sc = sc
	}
	return g
}

// N returns the vertex count the program was compiled for.
func (g *GenProgram) N() int { return g.n }

// Period returns the schedule period.
func (g *GenProgram) Period() int { return g.period }

// Mode returns the communication mode the schedule was compiled under.
func (g *GenProgram) Mode() Mode { return g.mode }

// Source returns the underlying round source.
func (g *GenProgram) Source() graph.RoundSource { return g.rs }

// RoundArcs counts the arcs round r (mod the period) streams — destinations
// with a sender. It walks the round once; callers wanting per-round traffic
// stats should cache the result.
func (g *GenProgram) RoundArcs(r int) int {
	if r < 0 {
		return 0
	}
	r %= g.period
	arcs := 0
	for v := 0; v < g.n; v++ {
		if g.rs.Sender(r, v) >= 0 {
			arcs++
		}
	}
	return arcs
}

// Fingerprint returns the schedule identity: the same FNV-1a hash
// Protocol.Fingerprint computes over the materialized rounds, streamed
// from the generator in destination-major order. It equals
// Materialize().Fingerprint() by construction, so checkpoints and caches
// keyed by fingerprint are interchangeable between the generator-compiled
// and CSR-compiled forms of one schedule. The hash is computed on first
// use (two generator passes per round) and memoized.
func (g *GenProgram) Fingerprint() string {
	g.fpOnce.Do(func() { g.fp = g.fingerprint() })
	return g.fp
}

// FNV-1a constants, matching hash/fnv's 64-bit variant.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWord folds an integer into h exactly as Protocol.Fingerprint's
// little-endian 8-byte write does.
func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func (g *GenProgram) fingerprint() string {
	h := uint64(fnvOffset64)
	h = fnvWord(h, uint64(g.mode))
	h = fnvWord(h, uint64(g.period))
	h = fnvWord(h, uint64(g.period)) // len(Rounds) of the materialized protocol
	run := NewGenRun(g)
	for r := 0; r < g.period; r++ {
		h = fnvWord(h, uint64(run.countRound(r)))
		h = run.foldRound(r, h)
	}
	return fmt.Sprintf("%016x", h)
}

// Materialize expands the program into the explicit Protocol it streams:
// round r holds one arc sender → v per informed destination, in ascending
// destination order. The result compiles to the CSR Program the
// differential tests pin StepGenProgram against, and is how the protocol
// catalog builds schedule-generator protocols on materialized networks.
func (g *GenProgram) Materialize() *Protocol {
	run := NewGenRun(g)
	rounds := make([][]graph.Arc, g.period)
	for r := range rounds {
		round := make([]graph.Arc, 0, run.countRound(r))
		for v := 0; v < g.n; v++ {
			if s := g.rs.Sender(r, v); s >= 0 {
				round = append(round, graph.Arc{From: s, To: v})
			}
		}
		rounds[r] = round
	}
	return &Protocol{Rounds: rounds, Period: g.period, Mode: g.mode}
}

// countRound returns the number of arcs in round r via the chunk fast path.
func (gr *GenRun) countRound(r int) int {
	g := gr.prog
	if gr.buf == nil {
		return g.RoundArcs(r)
	}
	arcs := 0
	for lo := 0; lo < g.n; lo += graph.GenChunkVerts {
		hi := min(lo+graph.GenChunkVerts, g.n)
		buf := gr.buf[:hi-lo]
		g.sc.SenderChunk(r, lo, hi, buf)
		for _, s := range buf {
			if s >= 0 {
				arcs++
			}
		}
	}
	return arcs
}

// foldRound folds round r's arcs into the FNV state in destination-major
// order, matching how Protocol.Fingerprint hashes the materialized round.
func (gr *GenRun) foldRound(r int, h uint64) uint64 {
	g := gr.prog
	if gr.buf == nil {
		for v := 0; v < g.n; v++ {
			if s := g.rs.Sender(r, v); s >= 0 {
				h = fnvWord(h, uint64(s))
				h = fnvWord(h, uint64(v))
			}
		}
		return h
	}
	for lo := 0; lo < g.n; lo += graph.GenChunkVerts {
		hi := min(lo+graph.GenChunkVerts, g.n)
		buf := gr.buf[:hi-lo]
		g.sc.SenderChunk(r, lo, hi, buf)
		for i, s := range buf {
			if s >= 0 {
				h = fnvWord(h, uint64(s))
				h = fnvWord(h, uint64(lo+i))
			}
		}
	}
	return h
}

// GenRun is the per-worker execution scratch of a GenProgram: the chunk
// buffer the sender fast path fills. One GenRun per worker; the GenProgram
// itself is shared and immutable. Allocation happens here, once — the
// subsequent stepping performs zero allocations.
type GenRun struct {
	prog *GenProgram
	buf  []int32 // sender chunk scratch; nil without the fast path
}

// NewGenRun returns worker-private scratch for g.
func NewGenRun(g *GenProgram) *GenRun {
	gr := &GenRun{prog: g}
	if g.sc != nil {
		gr.buf = make([]int32, graph.GenChunkVerts)
	}
	return gr
}

// Program returns the compiled program the scratch belongs to.
func (gr *GenRun) Program() *GenProgram { return gr.prog }

// StepGenProgram applies execution round i of a generator-compiled program
// to the packed broadcast frontier and returns the number of newly
// informed vertices. It is byte-identical to StepProgram(Compile(
// Materialize()), i): an arc sender → v informs v iff sender was informed
// at the beginning of the round.
//
//gossip:allowpanic pairing guard: the session layer establishes program/state compatibility
//gossip:hotpath
func (f *FrontierState) StepGenProgram(gr *GenRun, i int) int {
	g := gr.prog
	if g.n != f.n {
		panic(fmt.Sprintf("gossip: generator program compiled for n=%d executed on frontier n=%d", g.n, f.n))
	}
	if i < 0 {
		return 0
	}
	copy(f.prev, f.informed)
	r := i % g.period
	gained := 0
	if gr.buf != nil {
		for lo := 0; lo < f.n; lo += graph.GenChunkVerts {
			hi := min(lo+graph.GenChunkVerts, f.n)
			buf := gr.buf[:hi-lo]
			g.sc.SenderChunk(r, lo, hi, buf)
			for j, s := range buf {
				if s >= 0 && f.prev.has(int(s)) {
					if v := lo + j; !f.informed.has(v) {
						f.informed.set(v)
						gained++
					}
				}
			}
		}
	} else {
		rs := g.rs
		for v := 0; v < f.n; v++ {
			if s := rs.Sender(r, v); s >= 0 && f.prev.has(s) && !f.informed.has(v) {
				f.informed.set(v)
				gained++
			}
		}
	}
	f.know += gained
	return gained
}

// StepGenProgramRange computes the next-round words for destinations
// [lo, hi) of execution round i only: the vertex-range shard of a
// generator-compiled packed step, mirroring StepFloodGenRange. Shards of
// one round partition [0, n) across workers (disjoint writes to the next
// buffer, read-only current buffer), each using its own GenRun; when every
// shard has returned, exactly one caller must CommitStep, and the round's
// (complete, changed, informed) are the AND / OR / sum of the shard
// results, with complete and changed masked by Full.
//
//gossip:hotpath
func (f *PackedFrontier) StepGenProgramRange(gr *GenRun, i, lo, hi int) (and, changed uint64, informed int) {
	g := gr.prog
	cur, nxt := f.cur, f.next
	and = ^uint64(0)
	r := i % g.period
	if gr.buf != nil {
		for clo := lo; clo < hi; clo += graph.GenChunkVerts {
			chi := min(clo+graph.GenChunkVerts, hi)
			buf := gr.buf[:chi-clo]
			g.sc.SenderChunk(r, clo, chi, buf)
			for j, s := range buf {
				v := clo + j
				pv := cur[v]
				w := pv
				if s >= 0 {
					w |= cur[s]
				}
				nxt[v] = w
				changed |= w ^ pv
				and &= w
				informed += bits.OnesCount64(w)
			}
		}
		return and, changed, informed
	}
	rs := g.rs
	for v := lo; v < hi; v++ {
		pv := cur[v]
		w := pv
		if s := rs.Sender(r, v); s >= 0 {
			w |= cur[s]
		}
		nxt[v] = w
		changed |= w ^ pv
		and &= w
		informed += bits.OnesCount64(w)
	}
	return and, changed, informed
}

// StepGenProgram advances every lane one round of the generator-compiled
// schedule: the single-worker convenience over StepGenProgramRange +
// CommitStep.
//
//gossip:hotpath
func (f *PackedFrontier) StepGenProgram(gr *GenRun, i int) (complete, changed uint64, informed int) {
	and, ch, informed := f.StepGenProgramRange(gr, i, 0, f.n)
	f.CommitStep()
	return and & f.full, ch & f.full, informed
}
