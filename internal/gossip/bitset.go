package gossip

import "math/bits"

// bitset is a fixed-capacity set of item indices packed into uint64 words.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// clearAll zeroes every word in place, returning the set to empty without
// reallocating its backing array.
func (b bitset) clearAll() {
	clear(b)
}

func (b bitset) count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}
