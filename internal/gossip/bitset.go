package gossip

import "math/bits"

// bitset is a fixed-capacity set of item indices packed into uint64 words.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// orInto merges src into b and reports whether b changed.
func (b bitset) orInto(src bitset) bool {
	changed := false
	for i := range b {
		old := b[i]
		b[i] |= src[i]
		if b[i] != old {
			changed = true
		}
	}
	return changed
}

func (b bitset) count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// full reports whether the first n bits are all set.
func (b bitset) full(n int) bool {
	for i := 0; i < n/64; i++ {
		if b[i] != ^uint64(0) {
			return false
		}
	}
	if r := n % 64; r != 0 {
		if b[n/64] != (1<<r)-1 {
			return false
		}
	}
	return true
}
