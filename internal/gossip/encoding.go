package gossip

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// The text format for protocols is line-oriented so schedules can be stored
// in version control, diffed, and fed to cmd/gossipsim:
//
//	# comments and blank lines are ignored
//	mode half-duplex        # directed | half-duplex | full-duplex
//	period 4                # 0 for a finite (non-systolic) protocol
//	round 0->1 2->3         # one line per round, arcs as from->to
//	round 1->0 3->2
//
// A systolic protocol lists exactly `period` rounds.

// Encode writes p in the text format.
func (p *Protocol) Encode(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "mode %s\nperiod %d\n", p.Mode, p.Period); err != nil {
		return err
	}
	for _, round := range p.Rounds {
		parts := make([]string, 0, len(round)+1)
		parts = append(parts, "round")
		for _, a := range round {
			parts = append(parts, fmt.Sprintf("%d->%d", a.From, a.To))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// Decode parses the text format produced by Encode.
func Decode(r io.Reader) (*Protocol, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	p := &Protocol{Period: -1}
	modeSet := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "mode":
			if len(fields) != 2 {
				return nil, fmt.Errorf("gossip: line %d: mode needs one argument", lineNo)
			}
			m, err := parseMode(fields[1])
			if err != nil {
				return nil, fmt.Errorf("gossip: line %d: %w", lineNo, err)
			}
			p.Mode = m
			modeSet = true
		case "period":
			if len(fields) != 2 {
				return nil, fmt.Errorf("gossip: line %d: period needs one argument", lineNo)
			}
			var v int
			if _, err := fmt.Sscanf(fields[1], "%d", &v); err != nil || v < 0 {
				return nil, fmt.Errorf("gossip: line %d: bad period %q", lineNo, fields[1])
			}
			p.Period = v
		case "round":
			var round []graph.Arc
			for _, f := range fields[1:] {
				var a graph.Arc
				if _, err := fmt.Sscanf(f, "%d->%d", &a.From, &a.To); err != nil {
					return nil, fmt.Errorf("gossip: line %d: bad arc %q", lineNo, f)
				}
				if a.From < 0 || a.To < 0 {
					return nil, fmt.Errorf("gossip: line %d: negative vertex in %q", lineNo, f)
				}
				round = append(round, a)
			}
			p.Rounds = append(p.Rounds, round)
		default:
			return nil, fmt.Errorf("gossip: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !modeSet {
		return nil, fmt.Errorf("gossip: missing mode directive")
	}
	if p.Period < 0 {
		return nil, fmt.Errorf("gossip: missing period directive")
	}
	if p.Period > 0 && p.Period != len(p.Rounds) {
		return nil, fmt.Errorf("gossip: period %d but %d rounds listed", p.Period, len(p.Rounds))
	}
	return p, nil
}

func parseMode(s string) (Mode, error) {
	switch s {
	case "directed":
		return Directed, nil
	case "half-duplex":
		return HalfDuplex, nil
	case "full-duplex":
		return FullDuplex, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}
