package gossip

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// PackedLanes is the number of broadcast sources one packed pass steps
// simultaneously: the 64 bits of a knowledge word.
const PackedLanes = 64

// PackedFrontier is the bit-parallel multi-source broadcast state: word v
// of the knowledge array holds, in bit s, whether vertex v has been
// informed by lane s's source. One flooding step ORs in-neighbor words
// into every vertex word, advancing up to 64 independent broadcasts at
// once — the exchange op is the same OR whether a word carries one
// source's frontier or sixty-four. The two buffers double-buffer the
// round, so a step reads only beginning-of-round state; StepFlood performs
// zero allocations.
type PackedFrontier struct {
	n     int
	lanes int
	full  uint64   // mask of the active lanes
	cur   []uint64 // bit s of word v: vertex v informed in lane s
	next  []uint64 // write buffer for the upcoming step
}

// NewPackedFrontier returns a packed frontier for an n-vertex network with
// no loaded batch; Reset loads one.
func NewPackedFrontier(n int) *PackedFrontier {
	return &PackedFrontier{n: n, cur: make([]uint64, n), next: make([]uint64, n)}
}

// Reset loads a batch without reallocating: lane i broadcasts from
// sources[i], so after the call exactly the source bits are set. Scans
// reuse one PackedFrontier across all ⌈sources/64⌉ batches.
//
//gossip:allowpanic range guard: batches come from the scan driver, which validates sources
func (f *PackedFrontier) Reset(sources []int) {
	if len(sources) == 0 || len(sources) > PackedLanes {
		panic(fmt.Sprintf("gossip: packed batch of %d sources (want 1..%d)", len(sources), PackedLanes))
	}
	clear(f.cur)
	for i, s := range sources {
		if s < 0 || s >= f.n {
			panic(fmt.Sprintf("gossip: packed source %d out of range n=%d", s, f.n))
		}
		f.cur[s] |= 1 << i
	}
	f.lanes = len(sources)
	if f.lanes == PackedLanes {
		f.full = ^uint64(0)
	} else {
		f.full = 1<<f.lanes - 1
	}
}

// Lanes returns the number of active lanes of the loaded batch.
func (f *PackedFrontier) Lanes() int { return f.lanes }

// Full returns the mask with one bit per active lane.
func (f *PackedFrontier) Full() uint64 { return f.full }

// Informed reports whether vertex v is informed in lane s.
func (f *PackedFrontier) Informed(v, lane int) bool { return f.cur[v]&(1<<lane) != 0 }

// StepFlood advances every lane one flooding round over the lowered
// schedule: each vertex word ORs in the beginning-of-round words of its
// in-neighbors. It returns the lanes whose source now reaches every
// vertex (complete), the lanes that informed at least one new vertex this
// round (changed — a lane absent from both masks has hit its reachable
// fixpoint and can never complete), and the total informed (vertex, lane)
// pairs, the popcount column sum scan progress traces report. The walk is
// destination-major — sequential writes, per-vertex gathers — with the
// gather unrolled to 64 bytes (8 words) per iteration so the OR-tree keeps
// all 8 loads in flight and auto-vectorizes.
//
//gossip:hotpath
func (f *PackedFrontier) StepFlood(cs *graph.FloodCSR) (complete, changed uint64, informed int) {
	cur, nxt := f.cur, f.next
	indptr, src := cs.Indptr, cs.Src
	all := ^uint64(0)
	var ch uint64
	count := 0
	for v := range nxt {
		pv := cur[v]
		w := pv
		s, e := int(indptr[v]), int(indptr[v+1])
		for ; e-s >= 8; s += 8 {
			w |= cur[src[s]] | cur[src[s+1]] | cur[src[s+2]] | cur[src[s+3]] |
				cur[src[s+4]] | cur[src[s+5]] | cur[src[s+6]] | cur[src[s+7]]
		}
		for ; s < e; s++ {
			w |= cur[src[s]]
		}
		nxt[v] = w
		ch |= w ^ pv
		all &= w
		count += bits.OnesCount64(w)
	}
	f.cur, f.next = nxt, cur
	return all & f.full, ch & f.full, count
}

// InformedCount returns the current informed (vertex, lane) column count.
func (f *PackedFrontier) InformedCount() int {
	count := 0
	for _, w := range f.cur {
		count += bits.OnesCount64(w)
	}
	return count
}

// CompleteMask returns the lanes whose source currently reaches every
// vertex — the AND-fold over all vertex words, restricted to active lanes.
func (f *PackedFrontier) CompleteMask() uint64 {
	all := ^uint64(0)
	for _, w := range f.cur {
		all &= w
	}
	return all & f.full
}
