// Package analysis implements gossipvet, the repository's static-analysis
// suite: four analyzers that enforce at vet time the invariants the test
// suite pins at run time. The framework is self-contained — parsing, type
// checking and the vet-tool protocol are built on the standard library
// alone (go/ast, go/types, go/importer), so the suite runs offline with no
// dependency on golang.org/x/tools.
//
// # Analyzers
//
//   - hotalloc: functions annotated //gossip:hotpath (the compiled-IR step
//     loops, masked scenario stepping, matrix norm scratch paths) and
//     their module-internal callees must not allocate. Flagged constructs
//     include append, make, composite literals, capturing closures,
//     method values, go statements, string building, interface boxing and
//     calls into fmt/errors/sort/strconv/reflect/encoding. The runtime
//     counterpart is the 0 allocs/op pins in the step benchmarks.
//
//   - determinism: in the strict packages (repro/internal/scenario,
//     gossip, delay, bounds) ambient entropy — time.Now/Since/Until and
//     the math/rand and crypto/rand families — is banned outright;
//     randomness derives from internal/scenario's splitmix64 seam.
//     Module-wide, map iteration whose order escapes a function (an
//     unsorted returned slice, a Write*/Encode/fmt.Fprint sink, a return
//     of an iteration variable) is flagged. The runtime counterpart is
//     the byte-reproducibility pins on scenario trials.
//
//   - cachekey: a struct paired with a canonical-key writer
//     (//gossip:keywriter TypeName on the writer) must have every
//     exported field flow into the key, transitively through same-package
//     callees, or carry //gossip:nokey <reason>. Several writers may
//     cover one type jointly. The runtime counterpart is the cache-key
//     collision pins in systolic and serve.
//
//   - errdiscipline: in repro/systolic and repro/systolic/serve, errors
//     must chain to typed sentinels — fmt.Errorf requires %w and inline
//     errors.New is banned — so callers can dispatch with errors.Is.
//     Module-wide, library packages must not panic outside init and
//     Must*/must* helpers.
//
// # Annotation grammar
//
// Directives follow the Go toolchain convention: no space after "//", the
// verb attached to the gossip: namespace, arguments separated by spaces.
// A malformed or floating directive is a vet error owned by exactly one
// analyzer — never a silent no-op, because an annotation that fails to
// parse would otherwise disable the invariant it claims to configure.
//
//	//gossip:hotpath                 function doc; no arguments
//	//gossip:keywriter TypeName      function doc; same-package struct type
//	//gossip:nokey <reason>          struct field (doc or trailing comment)
//	//gossip:allowalloc <reason>     same line or the contiguous directive
//	//gossip:deterministic <reason>  run directly above the construct;
//	//gossip:allowerror <reason>     allowalloc and allowpanic in a
//	//gossip:allowpanic <reason>     function's doc comment cover the whole
//	                                 function (allowalloc only as a callee)
//
// # Running
//
// Standalone (full cross-package transitive analysis):
//
//	go run ./cmd/gossipvet ./...
//
// Under the go vet driver (per-unit, incremental, result-cached):
//
//	go build -o "$(go env GOPATH)/bin/gossipvet" ./cmd/gossipvet
//	go vet -vettool="$(which gossipvet)" ./...
//
// In unit mode hotalloc checks transitive callees within the compilation
// unit only; //gossip:hotpath annotations on cross-package callees act as
// verified boundaries. The standalone mode is authoritative and is what CI
// runs; both modes share the analyzers and the annotation grammar.
package analysis
