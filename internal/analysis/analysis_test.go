package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: each directory under
// testdata/ is a mini-module loaded with module path "repro" (so
// package-path-scoped rules — determinism's strict set, errdiscipline's
// typed-error scope — fire exactly as they do on the real tree), and every
// comment containing `want "regex"` declares that a finding matching the
// regex must be reported on that comment's line. Unmatched findings and
// unmatched wants both fail the test. For diagnostics reported at a
// //gossip: directive itself, the expectation rides a block comment on the
// same line: /* want "..." */ //gossip:...
var (
	wantMarker = regexp.MustCompile("want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
	wantQuoted = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func runCase(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", name)
	m, err := LoadTree(root, "repro")
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	findings, err := Run(m, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*expectation
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					match := wantMarker.FindStringSubmatch(c.Text)
					if match == nil {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					for _, q := range wantQuoted.FindAllStringSubmatch(match[1], -1) {
						pat := q[1]
						if pat == "" {
							pat = q[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, f := range findings {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestHotAllocFixtures(t *testing.T)      { runCase(t, "hotalloc", HotAlloc) }
func TestDeterminismFixtures(t *testing.T)   { runCase(t, "determinism", Determinism) }
func TestCacheKeyFixtures(t *testing.T)      { runCase(t, "cachekey", CacheKey) }
func TestErrDisciplineFixtures(t *testing.T) { runCase(t, "errdiscipline", ErrDiscipline) }

// TestAnnotFixtures runs the full suite over fixtures seeded with malformed
// annotations: a directive that fails to parse or attach must surface as a
// vet error from exactly one analyzer, never as a silent no-op.
func TestAnnotFixtures(t *testing.T) { runCase(t, "annot", All()...) }

// TestFindingsAreOrdered pins the driver contract: findings arrive sorted
// by position and deduplicated, so CI output is stable across runs.
func TestFindingsAreOrdered(t *testing.T) {
	m, err := LoadTree(filepath.Join("testdata", "hotalloc"), "repro")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(m, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	seen := make(map[string]bool)
	for i, f := range findings {
		if i > 0 {
			prev, cur := findings[i-1].Pos, f.Pos
			if prev.Filename > cur.Filename ||
				(prev.Filename == cur.Filename && prev.Line > cur.Line) {
				t.Errorf("findings out of order: %s after %s", f, findings[i-1])
			}
		}
		key := fmt.Sprintf("%s|%s|%s", f.Pos, f.Analyzer, f.Message)
		if seen[key] {
			t.Errorf("duplicate finding: %s", f)
		}
		seen[key] = true
	}
}
