package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadTree parses and type-checks every package under root as a module
// rooted at modulePath, returning them in dependency order. The loader is
// deliberately toolchain-independent: it walks directories itself, honours
// build constraints through go/build, resolves module-internal imports
// from the tree, and falls back to the standard library's source importer
// for everything else — no go command, no network, no export data needed.
//
// Directories named testdata or vendor, and directories whose name starts
// with "." or "_", are skipped, matching the go tool's package-matching
// rules. _test.go files are not loaded: gossipvet's invariants bind
// production code (the -vettool protocol still hands gossipvet test
// variants, which the analyzers filter by filename).
func LoadTree(root, modulePath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{Path: modulePath, Fset: fset}

	type rawPkg struct {
		path    string
		dir     string
		files   []*ast.File
		imports []string
	}
	var raw []*rawPkg
	err = filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := build.Default.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := modulePath
		if rel != "." {
			importPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		rp := &rawPkg{path: importPath, dir: dir}
		for _, fname := range bp.GoFiles {
			file, err := parser.ParseFile(fset, filepath.Join(dir, fname), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			rp.files = append(rp.files, file)
			for _, imp := range file.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modulePath || strings.HasPrefix(p, modulePath+"/") {
					rp.imports = append(rp.imports, p)
				}
			}
		}
		raw = append(raw, rp)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topological order over module-internal imports.
	byPath := make(map[string]*rawPkg, len(raw))
	for _, rp := range raw {
		byPath[rp.path] = rp
	}
	var order []*rawPkg
	state := make(map[*rawPkg]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(rp *rawPkg) error
	visit = func(rp *rawPkg) error {
		switch state[rp] {
		case 1:
			return fmt.Errorf("import cycle through %s", rp.path)
		case 2:
			return nil
		}
		state[rp] = 1
		deps := append([]string(nil), rp.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if d := byPath[dep]; d != nil {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[rp] = 2
		order = append(order, rp)
		return nil
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].path < raw[j].path })
	for _, rp := range raw {
		if err := visit(rp); err != nil {
			return nil, err
		}
	}

	imp := &moduleImporter{
		module:   m,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	goVersion := readGoVersion(filepath.Join(root, "go.mod"))
	for _, rp := range order {
		pkg, err := typecheck(fset, rp.path, rp.files, imp, goVersion)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rp.path, err)
		}
		m.Packages = append(m.Packages, pkg)
	}
	return m, nil
}

// LoadFiles type-checks a single package from an explicit file list using
// the supplied importer for every dependency. It backs the go vet
// -vettool protocol, where the toolchain hands gossipvet one compilation
// unit plus export data for its imports.
func LoadFiles(fset *token.FileSet, importPath string, filenames []string, imp types.Importer, goVersion string) (*Module, error) {
	var files []*ast.File
	for _, fname := range filenames {
		file, err := parser.ParseFile(fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	m := &Module{Path: modulePathOf(importPath), Fset: fset}
	pkg, err := typecheck(fset, importPath, files, imp, goVersion)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	m.Packages = []*Package{pkg}
	return m, nil
}

// modulePathOf guesses the module root of an import path; it only has to
// be stable, the single-unit mode never resolves siblings through it.
func modulePathOf(importPath string) string {
	if i := strings.Index(importPath, "/"); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		// Report at most a handful; a broken build is not analyzable.
		msg := make([]string, 0, 5)
		for i, e := range errs {
			if i == 5 {
				msg = append(msg, fmt.Sprintf("... and %d more", len(errs)-5))
				break
			}
			msg = append(msg, e.Error())
		}
		return nil, fmt.Errorf("type errors:\n\t%s", strings.Join(msg, "\n\t"))
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// moduleImporter resolves module-internal imports from the already
// type-checked tree and delegates everything else (standard library) to
// the source importer.
type moduleImporter struct {
	module   *Module
	fallback types.Importer
}

func (i *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := i.module.Lookup(path); p != nil {
		return p.Types, nil
	}
	return i.fallback.Import(path)
}

// readGoVersion extracts the "go 1.xx" directive from a go.mod, returning
// "" (meaning "latest") when the file or directive is absent.
func readGoVersion(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			return "go" + strings.TrimSpace(rest)
		}
	}
	return ""
}
