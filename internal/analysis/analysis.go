// Package analysis implements gossipvet, a static-analysis suite that
// enforces this repository's load-bearing invariants at vet time instead
// of at benchmark or cache-poisoning time. See doc.go for the catalog of
// analyzers and the //gossip: annotation grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer, but is self-contained: the
// toolchain image this repository builds under carries no module
// dependencies, so the driver, loader and unitchecker protocol are all
// implemented on the standard library.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run analyzes one package and reports findings through pass.Report.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information through an
// analyzer. Module is always non-nil; when only a single package's syntax
// is available (the go vet -vettool unit-at-a-time protocol) it holds just
// that package and cross-package checks degrade gracefully.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Module   *Module
	Report   func(Diagnostic)
}

// Reportf formats and reports one diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Package is one type-checked package with full syntax.
type Package struct {
	// Path is the import path ("repro/internal/gossip").
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	annots *Annotations // lazily built //gossip: directive index
}

// Module is the set of packages visible to an analysis run: the whole
// repository in gossipvet's standalone mode, a single compilation unit in
// -vettool mode.
type Module struct {
	// Path is the module path ("repro"); import paths of member packages
	// are rooted under it.
	Path     string
	Fset     *token.FileSet
	Packages []*Package

	byPath map[string]*Package
	decls  map[*types.Func]FuncSource
}

// FuncSource locates the syntax of a function declaration inside the
// module.
type FuncSource struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Lookup returns the member package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package {
	if m.byPath == nil || len(m.byPath) != len(m.Packages) {
		m.byPath = make(map[string]*Package, len(m.Packages))
		for _, p := range m.Packages {
			m.byPath[p.Path] = p
		}
	}
	return m.byPath[path]
}

// DeclOf returns the declaration syntax of fn when its package's source is
// part of the module. The zero FuncSource means the body is unavailable
// (standard library, export-data-only dependency in -vettool mode).
func (m *Module) DeclOf(fn *types.Func) FuncSource {
	if m.decls == nil {
		m.decls = make(map[*types.Func]FuncSource)
		for _, p := range m.Packages {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						m.decls[obj] = FuncSource{Decl: fd, Pkg: p}
					}
				}
			}
		}
	}
	return m.decls[fn]
}

// Annots returns the package's parsed //gossip: directive index, building
// it on first use.
func (p *Package) Annots(fset *token.FileSet) *Annotations {
	if p.annots == nil {
		p.annots = parseAnnotations(fset, p)
	}
	return p.annots
}

// All is the gossipvet analyzer suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{HotAlloc, Determinism, CacheKey, ErrDiscipline}
}

// Run applies every analyzer to every package of the module and returns
// the deduplicated findings in file/position order. Cross-package
// analyzers (hotalloc descends into callees of other packages) may report
// the same finding from several roots; the (position, analyzer, message)
// triple collapses them.
func Run(m *Module, analyzers []*Analyzer) ([]Finding, error) {
	type key struct {
		pos      token.Pos
		analyzer string
		msg      string
	}
	seen := make(map[key]bool)
	var out []Finding
	for _, a := range analyzers {
		for _, p := range m.Packages {
			pass := &Pass{
				Analyzer: a,
				Fset:     m.Fset,
				Pkg:      p,
				Module:   m,
			}
			pass.Report = func(d Diagnostic) {
				k := key{d.Pos, a.Name, d.Message}
				if seen[k] {
					return
				}
				seen[k] = true
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      m.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, p.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// Finding is a resolved diagnostic ready for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// isTestFile reports whether pos lies in a _test.go file. The invariants
// gossipvet enforces are production-code contracts; test files exercise
// them (clocks, ad-hoc errors) without being bound by them.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
