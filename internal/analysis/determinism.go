package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the byte-reproducibility contract of the execution
// and certification layers: every scenario trial must replay from
// (seed, trial) alone, and every report, fingerprint and serialized
// output must be a pure function of its inputs.
//
// Two rule families:
//
//   - In the strict packages (internal/scenario, internal/gossip,
//     internal/delay, internal/bounds) any ambient-entropy source is
//     banned outright: time.Now/Since/Until, and every use of math/rand,
//     math/rand/v2 or crypto/rand — randomness must come through the
//     splitmix64 seam owned by internal/scenario.
//
//   - Module-wide, iterating a map in an order that escapes the function
//     is flagged: a range over a map whose body appends to a slice that
//     is returned without an intervening sort, writes into a
//     Write*/Encode sink (fingerprint writers, serialized output), or
//     returns a value derived from the iteration variables.
//
// Suppress a deliberate exception with //gossip:deterministic <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "executions and outputs must be reproducible: no ambient clocks or PRNGs in the execution layers, no map-iteration order escaping a function",
	Run:  runDeterminism,
}

// determinismStrict lists the packages where ambient entropy is banned.
var determinismStrict = map[string]bool{
	"repro/internal/scenario": true,
	"repro/internal/gossip":   true,
	"repro/internal/delay":    true,
	"repro/internal/bounds":   true,
}

// entropyPackages are the PRNG packages banned in strict packages.
var entropyPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func runDeterminism(pass *Pass) error {
	ReportMalformed(pass)
	ann := pass.Pkg.Annots(pass.Fset)
	info := pass.Pkg.Info
	strict := determinismStrict[pass.Pkg.Path]

	report := func(pos ast.Node, format string, args ...any) {
		if isTestFile(pass.Fset, pos.Pos()) {
			return
		}
		if ann.Suppressed(pass.Fset, VerbDeterministic, pos.Pos()) {
			return
		}
		pass.Reportf(pos.Pos(), format+"; fix it or justify with //gossip:deterministic", args...)
	}

	for _, file := range pass.Pkg.Files {
		if strict {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch path := obj.Pkg().Path(); {
				case entropyPackages[path]:
					report(id, "use of %s.%s: randomness in the execution layers must derive from the splitmix64 seam", path, obj.Name())
				case path == "time" && (obj.Name() == "Now" || obj.Name() == "Since" || obj.Name() == "Until"):
					report(id, "time.%s is ambient entropy: executions must be reproducible from their inputs", obj.Name())
				}
				return true
			})
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrder(pass, fd, report)
		}
	}
	return nil
}

// checkMapOrder analyzes one function for map-iteration order escaping
// through returns, sinks or unsorted returned slices.
func checkMapOrder(pass *Pass, fd *ast.FuncDecl, report func(ast.Node, string, ...any)) {
	info := pass.Pkg.Info

	// Variables that are sorted anywhere in the function.
	sorted := make(map[*types.Var]bool)
	// Variables returned by the function (directly) plus named results.
	returned := make(map[*types.Var]bool)
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					returned[v] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := staticCallee(info, n); callee != nil && callee.Pkg() != nil {
				path := callee.Pkg().Path()
				if (path == "sort" || path == "slices") && len(n.Args) > 0 {
					for _, v := range identVars(info, n.Args[0]) {
						sorted[v] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for _, v := range identVars(info, res) {
					returned[v] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		iterVars := make(map[*types.Var]bool)
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v, ok := info.Defs[id].(*types.Var); ok {
					iterVars[v] = true
				}
				if v, ok := info.Uses[id].(*types.Var); ok {
					iterVars[v] = true
				}
			}
		}
		ast.Inspect(rng.Body, func(b ast.Node) bool {
			switch b := b.(type) {
			case *ast.AssignStmt:
				// v = append(v, ...) inside a map range: order lands in v.
				for i, rhs := range b.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isAppend(info, call) || i >= len(b.Lhs) {
						continue
					}
					id, ok := b.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					v, _ := info.Uses[id].(*types.Var)
					if v == nil {
						v, _ = info.Defs[id].(*types.Var)
					}
					if v == nil || sorted[v] || !returned[v] {
						continue
					}
					report(call, "map iteration order reaches the returned slice %q (sort it before returning)", id.Name)
				}
			case *ast.CallExpr:
				if sinkCall(info, b) {
					report(b, "map iteration order reaches a serialized output or fingerprint")
				}
			case *ast.ReturnStmt:
				for _, res := range b.Results {
					uses := false
					ast.Inspect(res, func(rn ast.Node) bool {
						if id, ok := rn.(*ast.Ident); ok {
							if v, ok := info.Uses[id].(*types.Var); ok && iterVars[v] {
								uses = true
							}
						}
						return !uses
					})
					if uses {
						report(b, "map iteration order reaches a return value")
						break
					}
				}
			}
			return true
		})
		return true
	})
}

// sinkCall reports whether the call serializes data in iteration order: a
// Write*/Encode method (hash writers, builders, encoders) or an
// fmt Print/Fprint family call.
func sinkCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
		return false
	}
	if f, ok := info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
	}
	return false
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// identVars resolves an argument expression to the variables it directly
// names: a bare identifier, or a one-argument conversion/call of one
// (sort.Sort(byLen(v)) still sorts v).
func identVars(info *types.Info, e ast.Expr) []*types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return []*types.Var{v}
		}
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return identVars(info, e.Args[0])
		}
	}
	return nil
}
