package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestSuppressedContiguity: a suppression covers its own line and a
// contiguous run of directive lines directly above the construct; a gap
// of ordinary code or blank lines breaks the attachment.
func TestSuppressedContiguity(t *testing.T) {
	src := `package p

func f() {
	//gossip:allowalloc reason one
	_ = make([]int, 1)

	//gossip:allowalloc reason two

	_ = make([]int, 2)
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := parseAnnotations(fset, &Package{Files: []*ast.File{file}})

	posAt := func(line int) token.Pos {
		return file.Pos() + token.Pos(lineOffset(src, line))
	}
	// Line 5 (first make) is directly under its directive: suppressed.
	if !ann.Suppressed(fset, VerbAllowAlloc, posAt(5)) {
		t.Error("construct directly under a directive was not suppressed")
	}
	// Line 9 (second make) is separated from its directive by a blank
	// line: the run is broken and the suppression must not apply.
	if ann.Suppressed(fset, VerbAllowAlloc, posAt(9)) {
		t.Error("a blank line between directive and construct must break the suppression")
	}
	// An unrelated verb never suppresses.
	if ann.Suppressed(fset, VerbDeterministic, posAt(5)) {
		t.Error("suppression leaked across verbs")
	}
}

// TestAllDirectivesOrdered: AllDirectives must return directives in
// position order — the driver's output stability depends on it (the
// analyzer suite flagged its own first draft for returning map order).
func TestAllDirectivesOrdered(t *testing.T) {
	src := `package p

//gossip:nokey c
var c int

//gossip:nokey a
var a int

//gossip:nokey b
var b int
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := parseAnnotations(fset, &Package{Files: []*ast.File{file}})
	ds := ann.AllDirectives(VerbNoKey)
	if len(ds) != 3 {
		t.Fatalf("got %d directives, want 3", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Pos >= ds[i].Pos {
			t.Errorf("directives out of position order: %v before %v", ds[i-1], ds[i])
		}
	}
}

// TestMalformedRouting: every malformed directive is owned by exactly one
// analyzer, so the suite reports it once.
func TestMalformedRouting(t *testing.T) {
	src := `package p

//gossip:hotpath with args
//gossip:keywriter
//gossip:nokey
//gossip:deterministic
//gossip:allowerror
//gossip:mystery verb
var x int
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := parseAnnotations(fset, &Package{Files: []*ast.File{file}})
	if len(ann.Malformed) != 6 {
		t.Fatalf("got %d malformed directives, want 6", len(ann.Malformed))
	}
	owners := map[string]int{}
	for _, m := range ann.Malformed {
		owners[m.Owner]++
	}
	want := map[string]int{"hotalloc": 2, "cachekey": 2, "determinism": 1, "errdiscipline": 1}
	for owner, n := range want {
		if owners[owner] != n {
			t.Errorf("owner %s has %d malformed directives, want %d", owner, owners[owner], n)
		}
	}
}

// lineOffset returns the byte offset of the first non-tab character of the
// given 1-based line.
func lineOffset(src string, line int) int {
	off := 0
	for l := 1; l < line; l++ {
		for off < len(src) && src[off] != '\n' {
			off++
		}
		off++
	}
	for off < len(src) && (src[off] == '\t' || src[off] == ' ') {
		off++
	}
	return off
}
