package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrDiscipline enforces the error and panic discipline of the public
// API surface:
//
//   - In repro/systolic and repro/systolic/serve, errors must be typed:
//     fmt.Errorf is only legal when its format wraps another error with
//     %w (chaining back to the ErrBadParam/ErrUnknownTopology/... family
//     or a typed wrapper like serve's badRequestError), and inline
//     errors.New is banned (sentinels are package-level vars). Callers
//     dispatch on errors.Is; an untyped error silently falls through to
//     HTTP 500 instead of 400/422.
//
//   - Module-wide, library packages must not panic outside init
//     functions and Must*/must* helpers. Precondition guards that are
//     deliberate (internal packages whose contracts the public API
//     validates first) carry //gossip:allowpanic <reason> — on the
//     panicking line for a one-off, or in the function's doc comment to
//     cover every guard in that function.
//
// Suppress with //gossip:allowerror or //gossip:allowpanic.
var ErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "public API errors must be typed sentinels (no bare fmt.Errorf/errors.New); libraries must not panic outside init/must-helpers",
	Run:  runErrDiscipline,
}

// typedErrorScope lists the packages under the typed-error rule.
var typedErrorScope = map[string]bool{
	"repro/systolic":       true,
	"repro/systolic/serve": true,
}

func runErrDiscipline(pass *Pass) error {
	ReportMalformed(pass)
	ann := pass.Pkg.Annots(pass.Fset)
	info := pass.Pkg.Info
	errScope := typedErrorScope[pass.Pkg.Path]
	panicScope := pass.Pkg.Types.Name() != "main"

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mustHelper := fd.Name.Name == "init" ||
				strings.HasPrefix(fd.Name.Name, "Must") || strings.HasPrefix(fd.Name.Name, "must")
			// allowpanic in the doc comment blesses every guard in the
			// function under one justification.
			funcAllowsPanic := len(ann.FuncDirectives(fd, VerbAllowPanic)) > 0
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isTestFile(pass.Fset, call.Pos()) {
					return true
				}
				switch {
				case panicScope && isPanic(info, call) && !mustHelper && !funcAllowsPanic:
					if !ann.Suppressed(pass.Fset, VerbAllowPanic, call.Pos()) {
						pass.Reportf(call.Pos(), "library packages must not panic outside init/must-helpers: return a typed error, or justify the invariant guard with //gossip:allowpanic")
					}
				case errScope && isPkgFunc(info, call, "fmt", "Errorf"):
					if ann.Suppressed(pass.Fset, VerbAllowError, call.Pos()) {
						return true
					}
					format, known := constFormat(info, call)
					switch {
					case !known:
						pass.Reportf(call.Pos(), "fmt.Errorf with a non-constant format cannot be checked for %%w wrapping: build the error from a typed sentinel, or justify with //gossip:allowerror")
					case !strings.Contains(format, "%w"):
						pass.Reportf(call.Pos(), "untyped error: fmt.Errorf without %%w cannot be matched by errors.Is; wrap a typed sentinel (ErrBadParam, ErrUnknownTopology, ...) or justify with //gossip:allowerror")
					}
				case errScope && isPkgFunc(info, call, "errors", "New"):
					if !ann.Suppressed(pass.Fset, VerbAllowError, call.Pos()) {
						pass.Reportf(call.Pos(), "inline errors.New creates an untyped error: declare a package-level sentinel var instead, or justify with //gossip:allowerror")
					}
				}
				return true
			})
		}
	}
	return nil
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func isPkgFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	f := staticCallee(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkg && f.Name() == name
}

// constFormat extracts the constant value of the call's first argument.
func constFormat(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
