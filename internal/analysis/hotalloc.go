package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-allocation contract of //gossip:hotpath
// functions: the compiled-IR step loops, the masked scenario stepping and
// the matrix norm scratch paths are all pinned to 0 allocs/op by runtime
// benchmarks, and this analyzer turns the same contract into a vet error
// at the construct that would break it. The check is transitive: every
// module-internal function statically reachable from a hot-path root is
// analyzed (callees that are themselves //gossip:hotpath are verified as
// their own roots and act as checked boundaries).
//
// Flagged constructs: append, make of slices/maps/channels, slice and map
// composite literals, closures that capture local variables, method
// values, go statements, string concatenation and string<->[]byte/[]rune
// conversions, conversions of non-pointer-shaped values to interfaces
// (explicit or implicit at call, assignment and return sites), and calls
// into allocation-heavy standard-library packages (fmt, errors, log,
// sort, strconv, reflect, encoding/*).
//
// Arguments of a panic call are exempt: a panicking path terminates the
// run, so its formatting cost never touches the steady state. Suppress a
// deliberate allocation (amortized scratch growth, a cold error branch)
// with //gossip:allowalloc <reason> on or directly above the line, or in
// the doc comment of a *callee* to bless a whole amortized slow-path
// function (a //gossip:hotpath root cannot self-exempt).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "hot-path (//gossip:hotpath) functions and their callees must not allocate",
	Run:  runHotAlloc,
}

// allocPackages are standard-library packages whose entry points allocate
// (or box their arguments); any call into them from a hot path is flagged.
var allocPackages = map[string]bool{
	"fmt": true, "errors": true, "log": true, "sort": true,
	"strconv": true, "reflect": true,
}

func runHotAlloc(pass *Pass) error {
	ReportMalformed(pass)
	ann := pass.Pkg.Annots(pass.Fset)

	// Roots: functions of this package whose doc carries //gossip:hotpath.
	attached := make(map[token.Pos]bool)
	c := &hotallocChecker{pass: pass, visited: make(map[*types.Func]bool)}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			ds := ann.FuncDirectives(fd, VerbHotPath)
			for _, d := range ds {
				attached[d.Pos] = true
			}
			if len(ds) == 0 {
				continue
			}
			if fd.Body == nil {
				pass.Reportf(fd.Pos(), "gossip:hotpath on a function with no body")
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.check(fn, FuncSource{Decl: fd, Pkg: pass.Pkg})
		}
	}
	// A hotpath directive that did not land in a function's doc comment is
	// a disabled invariant, not a comment: fail loudly.
	for _, d := range ann.AllDirectives(VerbHotPath) {
		if !attached[d.Pos] && !isTestFile(pass.Fset, d.Pos) {
			pass.Reportf(d.Pos, "gossip:hotpath is not attached to a function declaration (move it into the function's doc comment)")
		}
	}
	return nil
}

type hotallocChecker struct {
	pass    *Pass
	visited map[*types.Func]bool
}

// check analyzes one function body and recurses into its module-internal
// static callees.
func (c *hotallocChecker) check(fn *types.Func, src FuncSource) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	w := &hotallocWalker{
		checker: c,
		pkg:     src.Pkg,
		ann:     src.Pkg.Annots(c.pass.Fset),
		label:   shortFuncName(fn),
	}
	sig, _ := fn.Type().(*types.Signature)
	w.sigs = append(w.sigs, sig)
	w.callFuns = collectCallFuns(src.Decl.Body)
	w.walkBody(src.Decl.Body)
}

// hotallocWalker scans a single function body.
type hotallocWalker struct {
	checker  *hotallocChecker
	pkg      *Package
	ann      *Annotations
	label    string
	sigs     []*types.Signature // enclosing signatures; top is current
	callFuns map[ast.Expr]bool  // expressions in call-operator position
}

func (w *hotallocWalker) info() *types.Info { return w.pkg.Info }

func (w *hotallocWalker) report(pos token.Pos, format string, args ...any) {
	if w.ann.Suppressed(w.checker.pass.Fset, VerbAllowAlloc, pos) {
		return
	}
	args = append(args, w.label)
	w.checker.pass.Reportf(pos, format+" in hot path (function %s); fix it or justify with //gossip:allowalloc", args...)
}

func (w *hotallocWalker) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, w.visit)
}

func (w *hotallocWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		// A panic's arguments run only on a terminating path: do not
		// descend into them, and skip the call checks themselves.
		if isPanic(w.info(), n) {
			return false
		}
		w.call(n)
	case *ast.CompositeLit:
		switch w.info().TypeOf(n).Underlying().(type) {
		case *types.Slice:
			w.report(n.Pos(), "slice literal allocates")
		case *types.Map:
			w.report(n.Pos(), "map literal allocates")
		}
	case *ast.FuncLit:
		if capturesLocal(w.info(), n) {
			w.report(n.Pos(), "closure captures local variables and allocates")
		}
		// Walk the literal's body manually so the signature stack tracks
		// return-site conversions, then prune the generic walk.
		sig, _ := w.info().TypeOf(n).(*types.Signature)
		w.sigs = append(w.sigs, sig)
		ast.Inspect(n.Body, w.visit)
		w.sigs = w.sigs[:len(w.sigs)-1]
		return false
	case *ast.GoStmt:
		w.report(n.Pos(), "go statement allocates a goroutine")
	case *ast.SelectorExpr:
		if sel, ok := w.info().Selections[n]; ok && sel.Kind() == types.MethodVal && !w.callFuns[n] {
			w.report(n.Pos(), "method value allocates a closure")
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := w.info().Types[n]; ok && tv.Value == nil && isString(tv.Type) {
				w.report(n.Pos(), "string concatenation allocates")
			}
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
			if tv, ok := w.info().Types[n.Lhs[0]]; ok && isString(tv.Type) {
				w.report(n.Pos(), "string concatenation allocates")
			}
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				w.convCheck(w.info().TypeOf(n.Lhs[i]), n.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		if n.Type != nil {
			to := w.info().TypeOf(n.Type)
			for _, v := range n.Values {
				w.convCheck(to, v)
			}
		}
	case *ast.ReturnStmt:
		sig := w.sigs[len(w.sigs)-1]
		if sig != nil && len(n.Results) == sig.Results().Len() {
			for i, res := range n.Results {
				w.convCheck(sig.Results().At(i).Type(), res)
			}
		}
	}
	return true
}

// call analyzes one call expression: builtins, conversions, static
// callees, denylisted packages and implicit argument boxing.
func (w *hotallocWalker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversion: T(x).
	if tv, ok := w.info().Types[fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			w.convCheck(to, call.Args[0])
			from := w.info().TypeOf(call.Args[0])
			if from != nil && isStringBytesConv(to, from) {
				w.report(call.Pos(), "string<->byte/rune slice conversion allocates")
			}
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.info().Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				w.report(call.Pos(), "append may grow its backing array and allocates")
			case "make":
				switch w.info().TypeOf(call).Underlying().(type) {
				case *types.Slice:
					w.report(call.Pos(), "make of a slice allocates")
				case *types.Map:
					w.report(call.Pos(), "make of a map allocates")
				case *types.Chan:
					w.report(call.Pos(), "make of a channel allocates")
				}
			case "new":
				w.report(call.Pos(), "new allocates")
			}
			return
		}
	}

	callee := staticCallee(w.info(), call)
	if callee != nil {
		if pkg := callee.Pkg(); pkg != nil && pkg != w.pkg.Types {
			path := pkg.Path()
			if allocPackages[path] || strings.HasPrefix(path, "encoding/") {
				w.report(call.Pos(), "call into allocating package %s", path)
				return
			}
		}
	}

	// Implicit interface boxing of arguments.
	if sig, ok := w.info().TypeOf(fun).(*types.Signature); ok && call.Ellipsis == token.NoPos {
		for i, arg := range call.Args {
			w.convCheck(paramType(sig, i), arg)
		}
	}

	// Recurse into module-internal callees whose syntax we hold, unless
	// the callee is itself a //gossip:hotpath root (verified separately).
	if callee == nil {
		return
	}
	src := w.checker.pass.Module.DeclOf(callee)
	if src.Decl == nil || src.Decl.Body == nil {
		return
	}
	calleeAnn := src.Pkg.Annots(w.checker.pass.Fset)
	if len(calleeAnn.FuncDirectives(src.Decl, VerbHotPath)) > 0 {
		return
	}
	// A callee whose doc carries allowalloc is a blessed amortized slow
	// path (memoized builds, one-time growth): one justification covers
	// the whole function.
	if len(calleeAnn.FuncDirectives(src.Decl, VerbAllowAlloc)) > 0 {
		return
	}
	w.checker.check(callee, src)
}

// convCheck flags a conversion of a non-pointer-shaped concrete value to
// an interface type: the value is boxed on the heap.
func (w *hotallocWalker) convCheck(to types.Type, from ast.Expr) {
	if to == nil {
		return
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := w.info().Types[from]
	if !ok || tv.Type == nil {
		return
	}
	ft := tv.Type
	if ft == types.Typ[types.UntypedNil] {
		return
	}
	if _, ok := ft.Underlying().(*types.Interface); ok {
		return
	}
	if pointerShaped(ft) {
		return
	}
	w.report(from.Pos(), "conversion of %s to an interface allocates", types.TypeString(ft, types.RelativeTo(w.pkg.Types)))
}

func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// pointerShaped reports whether values of t fit in one word and convert
// to an interface without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringBytesConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isString(from) && isByteOrRuneSlice(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// capturesLocal reports whether the function literal references variables
// declared outside it that are neither package-level nor fields: such a
// closure carries a heap-allocated environment.
func capturesLocal(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe {
			return true
		}
		if pkg := v.Pkg(); pkg != nil && v.Parent() == pkg.Scope() {
			return true // package-level variable: static reference
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

// collectCallFuns records the expressions in call-operator position, so a
// selector used as f() is not mistaken for a method value.
func collectCallFuns(body *ast.BlockStmt) map[ast.Expr]bool {
	out := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			out[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	return out
}

// staticCallee resolves a call to its target function when the target is
// statically known (direct call or method call on a concrete receiver).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if f, ok := sel.Obj().(*types.Func); ok {
					return f
				}
			}
			return nil
		}
		// Package-qualified call: pkg.F().
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// shortFuncName renders "(*State).StepProgram" style labels without the
// package path noise of types.Func.FullName.
func shortFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Name()
	}
	recv := types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg()))
	return "(" + recv + ")." + fn.Name()
}
