package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CacheKey enforces the cache-identity invariant of the serving layer:
// every exported field of a struct paired with a canonical-key writer
// must flow into the key that writer produces, or carry an explicit
// //gossip:nokey justification. Without this, adding a field to a request
// or fault-model struct silently makes gossipd serve stale results for
// requests that differ only in the new field — a cache-poisoning bug that
// no runtime test catches until the collision happens.
//
// Pairings are declared on the writer: //gossip:keywriter TypeName in the
// doc comment of the function that renders the canonical form. Several
// functions may declare the same type (the union of their reads covers
// it), and one function may declare several types. Coverage is computed
// transitively through same-package callees, so helpers count.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc:  "every exported field of a key-paired struct must be written into its canonical cache key (//gossip:keywriter / //gossip:nokey)",
	Run:  runCacheKey,
}

func runCacheKey(pass *Pass) error {
	ReportMalformed(pass)
	ann := pass.Pkg.Annots(pass.Fset)
	info := pass.Pkg.Info

	type pairing struct {
		typ     *types.TypeName
		writers []*ast.FuncDecl
		names   []string
	}
	pairings := make(map[*types.TypeName]*pairing)
	attachedKW := make(map[token.Pos]bool)

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, d := range ann.FuncDirectives(fd, VerbKeyWriter) {
				attachedKW[d.Pos] = true
				obj := pass.Pkg.Types.Scope().Lookup(d.Args)
				tn, ok := obj.(*types.TypeName)
				if !ok {
					pass.Reportf(d.Pos, "gossip:keywriter names %q, which is not a type in package %s", d.Args, pass.Pkg.Types.Name())
					continue
				}
				if _, ok := tn.Type().Underlying().(*types.Struct); !ok {
					pass.Reportf(d.Pos, "gossip:keywriter names %q, which is not a struct type", d.Args)
					continue
				}
				p := pairings[tn]
				if p == nil {
					p = &pairing{typ: tn}
					pairings[tn] = p
				}
				p.writers = append(p.writers, fd)
				p.names = append(p.names, fd.Name.Name)
			}
		}
	}
	for _, d := range ann.AllDirectives(VerbKeyWriter) {
		if !attachedKW[d.Pos] && !isTestFile(pass.Fset, d.Pos) {
			pass.Reportf(d.Pos, "gossip:keywriter is not attached to a function declaration (move it into the writer's doc comment)")
		}
	}

	// Track which nokey directives attach to a struct field, to flag
	// floating ones afterwards.
	attachedNokey := make(map[token.Pos]bool)

	ordered := make([]*pairing, 0, len(pairings))
	for _, p := range pairings {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].typ.Name() < ordered[j].typ.Name() })
	for _, p := range ordered {
		covered := fieldsRead(pass, p.typ, p.writers)
		sort.Strings(p.names)
		writers := strings.Join(p.names, ", ")
		structFields(pass, p.typ, func(field *ast.Field, name *ast.Ident) {
			nokey := ann.FieldDirectives(field, VerbNoKey)
			for _, d := range nokey {
				attachedNokey[d.Pos] = true
			}
			if !ast.IsExported(name.Name) {
				return
			}
			switch {
			case covered[name.Name] && len(nokey) > 0:
				pass.Reportf(nokey[0].Pos, "field %s.%s is annotated gossip:nokey but is read by key writer(s) %s: drop the annotation or the read", p.typ.Name(), name.Name, writers)
			case !covered[name.Name] && len(nokey) == 0:
				pass.Reportf(name.Pos(), "exported field %s.%s does not flow into canonical cache key writer(s) %s: requests differing only in it would collide in the cache; write it into the key or justify with //gossip:nokey", p.typ.Name(), name.Name, writers)
			}
		})
	}

	// nokey on fields of types that have no keywriter pairing, or outside
	// any struct field, is annotation drift.
	for _, d := range ann.AllDirectives(VerbNoKey) {
		if !attachedNokey[d.Pos] && !isTestFile(pass.Fset, d.Pos) {
			pass.Reportf(d.Pos, "gossip:nokey is not attached to a field of a keywriter-paired struct")
		}
	}
	_ = info
	return nil
}

// structFields visits the declared fields of the named struct type,
// including embedded ones (whose name is the embedded type's name).
func structFields(pass *Pass, tn *types.TypeName, visit func(*ast.Field, *ast.Ident)) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || pass.Pkg.Info.Defs[ts.Name] != tn {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if len(field.Names) == 0 {
						// Embedded field: named after its type.
						if id := embeddedName(field.Type); id != nil {
							visit(field, id)
						}
						continue
					}
					for _, name := range field.Names {
						visit(field, name)
					}
				}
			}
		}
	}
}

func embeddedName(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.IndexExpr:
		return embeddedName(e.X)
	}
	return nil
}

// fieldsRead returns the names of tn's fields read anywhere in the writer
// functions or the same-package functions they statically call.
func fieldsRead(pass *Pass, tn *types.TypeName, writers []*ast.FuncDecl) map[string]bool {
	info := pass.Pkg.Info
	covered := make(map[string]bool)
	visited := make(map[*types.Func]bool)

	var walk func(body *ast.BlockStmt)
	walk = func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if namedOf(sel.Recv()) != tn {
					return true
				}
				// For promoted reads (x.Promoted through an embedded
				// field), credit the embedded field of tn itself.
				idx := sel.Index()
				st, ok := tn.Type().Underlying().(*types.Struct)
				if ok && len(idx) > 0 && idx[0] < st.NumFields() {
					covered[st.Field(idx[0]).Name()] = true
				}
			case *ast.CallExpr:
				callee := staticCallee(info, n)
				if callee == nil || visited[callee] || callee.Pkg() != pass.Pkg.Types {
					return true
				}
				visited[callee] = true
				if src := pass.Module.DeclOf(callee); src.Decl != nil && src.Decl.Body != nil {
					walk(src.Decl.Body)
				}
			}
			return true
		})
	}
	for _, fd := range writers {
		if fd.Body != nil {
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				visited[fn] = true
			}
			walk(fd.Body)
		}
	}
	return covered
}

// namedOf unwraps pointers and returns the type name of a named or
// aliased type, or nil.
func namedOf(t types.Type) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj()
		case *types.Alias:
			return u.Obj()
		default:
			return nil
		}
	}
}
