package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The //gossip: directive vocabulary. Directives follow the Go toolchain's
// directive convention: no space after "//", verb attached to the
// namespace, arguments separated by spaces. A malformed directive is a vet
// error, never a silent no-op — an annotation that fails to parse would
// otherwise disable the very invariant it claims to configure.
const (
	// VerbHotPath marks a function as an allocation-free hot path
	// (hotalloc analyzes it and its module-internal callees). No
	// arguments. Must sit in a function's doc comment.
	VerbHotPath = "hotpath"
	// VerbKeyWriter declares that the function is the canonical cache-key
	// writer of the named struct type (same package). Exactly one
	// argument. Must sit in a function's doc comment; one function may
	// declare several.
	VerbKeyWriter = "keywriter"
	// VerbNoKey opts one exported struct field out of cache-key coverage.
	// Requires a justification. Must sit on a struct field.
	VerbNoKey = "nokey"
	// VerbAllowAlloc suppresses hotalloc on the next (or same) line.
	// Requires a justification.
	VerbAllowAlloc = "allowalloc"
	// VerbDeterministic suppresses determinism on the next (or same)
	// line. Requires a justification.
	VerbDeterministic = "deterministic"
	// VerbAllowError suppresses errdiscipline's typed-error rule on the
	// next (or same) line. Requires a justification.
	VerbAllowError = "allowerror"
	// VerbAllowPanic suppresses errdiscipline's no-panic rule on the next
	// (or same) line. Requires a justification.
	VerbAllowPanic = "allowpanic"
)

const directivePrefix = "//gossip:"

// Directive is one parsed, well-formed //gossip: annotation.
type Directive struct {
	Verb string
	// Args is the raw argument text: the type name for keywriter, the
	// justification for reason-carrying verbs, empty for hotpath.
	Args string
	Pos  token.Pos
	Line int
	File string
}

// Malformed is an annotation that failed to parse or attach. Owner routes
// the diagnostic to exactly one analyzer so the suite reports it once.
type Malformed struct {
	Pos     token.Pos
	Message string
	Owner   string // analyzer name
}

// Annotations indexes one package's //gossip: directives.
type Annotations struct {
	// perLine maps file name → line → directives anchored there.
	perLine map[string]map[int][]Directive
	// byPos maps a directive's position to itself, for attachment checks.
	byPos map[token.Pos]Directive
	// Malformed lists parse failures, routed by owner analyzer.
	Malformed []Malformed
}

// ownerOf routes each verb's malformed-annotation diagnostics to one
// analyzer. Unknown verbs belong to hotalloc, the first analyzer of the
// suite.
func ownerOf(verb string) string {
	switch verb {
	case VerbHotPath, VerbAllowAlloc:
		return "hotalloc"
	case VerbDeterministic:
		return "determinism"
	case VerbKeyWriter, VerbNoKey:
		return "cachekey"
	case VerbAllowError, VerbAllowPanic:
		return "errdiscipline"
	default:
		return "hotalloc"
	}
}

// parseAnnotations scans every comment of the package.
func parseAnnotations(fset *token.FileSet, pkg *Package) *Annotations {
	a := &Annotations{
		perLine: make(map[string]map[int][]Directive),
		byPos:   make(map[token.Pos]Directive),
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				a.add(fset, c.Pos(), text)
			}
		}
	}
	return a
}

func (a *Annotations) add(fset *token.FileSet, pos token.Pos, text string) {
	verb, args, _ := strings.Cut(text, " ")
	args = strings.TrimSpace(args)
	bad := func(format string, subs ...any) {
		a.Malformed = append(a.Malformed, Malformed{
			Pos:     pos,
			Message: fmt.Sprintf(format, subs...),
			Owner:   ownerOf(verb),
		})
	}
	switch verb {
	case VerbHotPath:
		if args != "" {
			bad("gossip:hotpath takes no arguments (got %q)", args)
			return
		}
	case VerbKeyWriter:
		if args == "" || strings.ContainsAny(args, " \t") || !isIdent(args) {
			bad("gossip:keywriter requires exactly one type name (got %q)", args)
			return
		}
	case VerbNoKey, VerbAllowAlloc, VerbDeterministic, VerbAllowError, VerbAllowPanic:
		if args == "" {
			bad("gossip:%s requires a justification", verb)
			return
		}
	default:
		bad("unknown gossip directive %q (known: hotpath, keywriter, nokey, allowalloc, deterministic, allowerror, allowpanic)", verb)
		return
	}
	position := fset.Position(pos)
	d := Directive{Verb: verb, Args: args, Pos: pos, Line: position.Line, File: position.Filename}
	lines := a.perLine[d.File]
	if lines == nil {
		lines = make(map[int][]Directive)
		a.perLine[d.File] = lines
	}
	lines[d.Line] = append(lines[d.Line], d)
	a.byPos[d.Pos] = d
}

// Suppressed reports whether a diagnostic of the given verb class at pos
// is switched off by a directive on the same line or on one of the
// directly preceding comment lines (a contiguous run of //gossip:
// directives above the statement counts as attached to it).
func (a *Annotations) Suppressed(fset *token.FileSet, verb string, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := a.perLine[p.Filename]
	if lines == nil {
		return false
	}
	for line := p.Line; line >= p.Line-4 && line > 0; line-- {
		ds, ok := lines[line]
		if !ok {
			if line != p.Line {
				return false // gap: the directive run above has ended
			}
			continue
		}
		for _, d := range ds {
			if d.Verb == verb {
				return true
			}
		}
	}
	return false
}

// FuncDirectives returns the directives attached to a function's doc
// comment, filtered to the given verb.
func (a *Annotations) FuncDirectives(fd *ast.FuncDecl, verb string) []Directive {
	return a.docDirectives(fd.Doc, verb)
}

// FieldDirectives returns the directives attached to a struct field (its
// doc comment or its trailing same-line comment), filtered to verb.
func (a *Annotations) FieldDirectives(field *ast.Field, verb string) []Directive {
	out := a.docDirectives(field.Doc, verb)
	out = append(out, a.docDirectives(field.Comment, verb)...)
	return out
}

func (a *Annotations) docDirectives(doc *ast.CommentGroup, verb string) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		if d, ok := a.byPos[c.Pos()]; ok && d.Verb == verb {
			out = append(out, d)
		}
	}
	return out
}

// AllDirectives returns every well-formed directive with the given verb
// in the package, ordered by position.
func (a *Annotations) AllDirectives(verb string) []Directive {
	var out []Directive
	for _, d := range a.byPos {
		if d.Verb == verb {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// ReportMalformed routes this package's malformed annotations owned by
// the running analyzer through the pass.
func ReportMalformed(pass *Pass) {
	ann := pass.Pkg.Annots(pass.Fset)
	for _, m := range ann.Malformed {
		if m.Owner == pass.Analyzer.Name && !isTestFile(pass.Fset, m.Pos) {
			pass.Reportf(m.Pos, "%s", m.Message)
		}
	}
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case r == '_', 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z':
		case i > 0 && '0' <= r && r <= '9':
		default:
			return false
		}
	}
	return s != ""
}
