// Package report is outside the strict set: clocks are legal here, but the
// module-wide map-order rules still apply to anything that escapes.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// clocksAllowed: ambient time is fine outside the strict packages.
func clocksAllowed() int64 { return time.Now().UnixNano() }

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration order reaches the returned slice "out"`
	}
	return out
}

// keysSorted is the accepted collect-then-sort shape.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fingerprint(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d;", k, v) // want `map iteration order reaches a serialized output`
	}
}

func firstKey(m map[string]int) string {
	for k := range m {
		return k // want `map iteration order reaches a return value`
	}
	return ""
}

func probe(m map[string]int) string {
	for k := range m {
		//gossip:deterministic the caller only probes non-emptiness, any key serves
		return k
	}
	return ""
}
