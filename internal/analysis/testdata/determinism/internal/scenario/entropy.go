// Package scenario loads under the import path repro/internal/scenario,
// one of determinism's strict packages: ambient clocks and PRNGs are
// banned outright here.
package scenario

import (
	"math/rand"
	"time"
)

func ambient() int64 {
	t := time.Now().UnixNano()   // want `time.Now is ambient entropy`
	return t + int64(rand.Int()) // want `use of math/rand.Int`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time.Since is ambient entropy`
}

// splitmix is the blessed seam: pure integer mixing of an explicit seed.
func splitmix(seed uint64) uint64 {
	seed += 0x9E3779B97F4A7C15
	z := seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func justified() int64 {
	//gossip:deterministic wall-clock logging only, never part of a result
	return time.Now().UnixNano()
}
