// Package key seeds cachekey: writer pairings with full, partial and
// union coverage, embedded promotion, and annotation drift.
package key

import "strconv"

// Req is covered except Skew, which silently poisons the cache.
type Req struct {
	Kind  string
	N     int
	Skew  int    // want `exported field Req.Skew does not flow into canonical cache key writer\(s\) Key`
	Label string //gossip:nokey display only, not part of the result identity
	priv  int
}

// Key renders Req's canonical cache identity.
//
//gossip:keywriter Req
func (r *Req) Key() string {
	return r.Kind + "/" + helper(r)
}

// helper proves coverage is transitive through same-package callees.
func helper(r *Req) string { return strconv.Itoa(r.N) }

// Wide is covered by the union of two writers.
type Wide struct {
	A int
	B int
}

//gossip:keywriter Wide
func keyA(w Wide) string { return strconv.Itoa(w.A) }

//gossip:keywriter Wide
func keyB(w Wide) string { return strconv.Itoa(w.B) }

// Base is promoted into Outer.
type Base struct{ ID int }

// Outer reads a promoted field, which credits the embedded field itself.
type Outer struct {
	Base
	Tag string
}

//gossip:keywriter Outer
func (o Outer) Key() string { return strconv.Itoa(o.ID) + o.Tag }

// Stale carries a nokey on a field its writer does read.
type Stale struct {
	A int /* want `field Stale.A is annotated gossip:nokey but is read by key writer\(s\) staleKey` */ //gossip:nokey stale claim
}

//gossip:keywriter Stale
func staleKey(s Stale) string { return strconv.Itoa(s.A) }

/* want `gossip:keywriter names "Missing", which is not a type` */ //gossip:keywriter Missing
func badWriter() string                                            { return "" }

/* want `gossip:keywriter names "NotAStruct", which is not a struct type` */ //gossip:keywriter NotAStruct
func nonStructWriter() string                                                { return "" }

// NotAStruct exists but cannot be key-paired.
type NotAStruct int

// Unpaired has no key writer: nokey on its field is annotation drift.
type Unpaired struct {
	X int /* want `gossip:nokey is not attached to a field of a keywriter-paired struct` */ //gossip:nokey drift
}

/* want `gossip:keywriter is not attached to a function declaration` */ //gossip:keywriter Req
var floating = 1
