// Package hot seeds hotalloc with one violation per flagged construct,
// plus the exemptions (panic arguments, line- and function-level
// allowalloc, hotpath boundaries) that must stay silent.
package hot

import "fmt"

type item struct{ a, b int }

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

var global []int

//gossip:hotpath
func step(xs []int, n int) int {
	xs = append(xs, n)           // want `append may grow its backing array`
	buf := make([]int, 4)        // want `make of a slice allocates`
	idx := map[string]int{}      // want `map literal allocates`
	lit := []int{1, 2}           // want `slice literal allocates`
	ch := make(chan int)         // want `make of a channel allocates`
	p := new(item)               // want `new allocates`
	f := func() int { return n } // want `closure captures local variables`
	helper(xs)
	return buf[0] + idx["k"] + lit[0] + cap(ch) + p.a + f()
}

// helper is reached transitively from the hot path: its allocations are
// charged to it by name.
func helper(xs []int) {
	global = append(global, xs...) // want `append may grow its backing array and allocates in hot path \(function helper\)`
}

//gossip:hotpath
func box(v item, c *counter) any {
	sink(v)   // want `conversion of item to an interface allocates`
	_ = c.inc // want `method value allocates a closure`
	go spin() // want `go statement allocates a goroutine`
	return v  // want `conversion of item to an interface allocates`
}

func sink(any) {}

func spin() {}

//gossip:hotpath
func str(a, b string, bs []byte) string {
	s := a + b      // want `string concatenation allocates`
	s += string(bs) // want `string concatenation allocates` `string<->byte/rune slice conversion allocates`
	return s
}

//gossip:hotpath
func exempt(n int) []int {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic path: formatting is exempt
	}
	fmt.Println(n) // want `call into allocating package fmt`
	//gossip:allowalloc amortized: grows to the high-water mark once
	scratch := make([]int, n)
	return grow(scratch, n)
}

// grow is a blessed amortized slow path: the doc-level opt-out covers the
// whole function when it is reached as a callee.
//
//gossip:allowalloc amortized: rebuilt only when the capacity is exceeded
func grow(v []int, n int) []int {
	if cap(v) < n {
		v = make([]int, n)
	}
	return v[:n]
}

// checked is itself a hot-path root: recursion from other roots stops at
// this boundary, and its own body is verified exactly once.
//
//gossip:hotpath
func checked(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

//gossip:hotpath
func callsChecked(xs []int) int {
	return checked(xs)
}

/* want `gossip:hotpath is not attached to a function declaration` */ //gossip:hotpath
var notAFunc = 3

// The generator-step shape: a hot loop pulling neighbors through an
// interface into a caller-owned buffer. The dynamic call is not statically
// resolvable, so the transitive walk stops at the boundary — the contract
// there is carried by each implementation being its own hotpath root.

type arcSource interface {
	InArcs(v int, buf []int32) int
}

type ringGen struct{ n int }

// InArcs is a concrete generator method: verified as its own root, and
// writing into the caller's buffer must stay silent.
//
//gossip:hotpath
func (g ringGen) InArcs(v int, buf []int32) int {
	buf[0] = int32((v + 1) % g.n)
	buf[1] = int32((v - 1 + g.n) % g.n)
	return 2
}

type genScratch struct {
	src arcSource
	buf []int32 // allocated once per worker, outside the hot path
}

//gossip:hotpath
func genStep(fg *genScratch, cur, nxt []uint64, lo, hi int) uint64 {
	changed := uint64(0)
	for v := lo; v < hi; v++ {
		w := cur[v]
		k := fg.src.InArcs(v, fg.buf)
		for i := 0; i < k; i++ {
			w |= cur[fg.buf[i]]
		}
		nxt[v] = w
		changed |= w ^ cur[v]
	}
	return changed
}

// genStepLeaky makes the per-call-buffer mistake the contract forbids:
// scratch belongs in the worker state, not in the round loop.
//
//gossip:hotpath
func genStepLeaky(src arcSource, cur, nxt []uint64, lo, hi int) {
	for v := lo; v < hi; v++ {
		buf := make([]int32, 8) // want `make of a slice allocates`
		w := cur[v]
		k := src.InArcs(v, buf)
		for i := 0; i < k; i++ {
			w |= cur[buf[i]]
		}
		nxt[v] = w
	}
}

// The generator-program shape: periodic schedules evaluated per round
// through a sender oracle (round → each vertex's unique sender). The chunk
// scratch belongs to the worker, filled and consumed range by range.

type roundSource interface {
	Sender(r, v int) int
}

type dimOrder struct{ d int }

// Sender is a concrete schedule generator: pure arithmetic on the vertex
// id, verified as its own root.
//
//gossip:hotpath
func (s dimOrder) Sender(r, v int) int { return v ^ (1 << (r % s.d)) }

//gossip:hotpath
func genProgramStep(rs roundSource, r int, cur, nxt []uint64, senders []int32, lo, hi int) {
	for c := lo; c < hi; c += len(senders) {
		end := c + len(senders)
		if end > hi {
			end = hi
		}
		for v := c; v < end; v++ {
			senders[v-c] = int32(rs.Sender(r, v))
		}
		for v := c; v < end; v++ {
			if s := senders[v-c]; s >= 0 {
				nxt[v] = cur[v] | cur[s]
			}
		}
	}
}

// genProgramStepLeaky seeds the allocating generator-program step the
// analyzer must fire on: the sender chunk is allocated inside the round
// step instead of living in the per-worker run state.
//
//gossip:hotpath
func genProgramStepLeaky(rs roundSource, r int, cur, nxt []uint64, lo, hi int) {
	senders := make([]int32, 4096) // want `make of a slice allocates`
	for v := lo; v < hi; v++ {
		senders[v-lo] = int32(rs.Sender(r, v))
	}
	for v := lo; v < hi; v++ {
		if s := senders[v-lo]; s >= 0 {
			nxt[v] = cur[v] | cur[s]
		}
	}
}
