// Package hot seeds hotalloc with one violation per flagged construct,
// plus the exemptions (panic arguments, line- and function-level
// allowalloc, hotpath boundaries) that must stay silent.
package hot

import "fmt"

type item struct{ a, b int }

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

var global []int

//gossip:hotpath
func step(xs []int, n int) int {
	xs = append(xs, n)           // want `append may grow its backing array`
	buf := make([]int, 4)        // want `make of a slice allocates`
	idx := map[string]int{}      // want `map literal allocates`
	lit := []int{1, 2}           // want `slice literal allocates`
	ch := make(chan int)         // want `make of a channel allocates`
	p := new(item)               // want `new allocates`
	f := func() int { return n } // want `closure captures local variables`
	helper(xs)
	return buf[0] + idx["k"] + lit[0] + cap(ch) + p.a + f()
}

// helper is reached transitively from the hot path: its allocations are
// charged to it by name.
func helper(xs []int) {
	global = append(global, xs...) // want `append may grow its backing array and allocates in hot path \(function helper\)`
}

//gossip:hotpath
func box(v item, c *counter) any {
	sink(v)   // want `conversion of item to an interface allocates`
	_ = c.inc // want `method value allocates a closure`
	go spin() // want `go statement allocates a goroutine`
	return v  // want `conversion of item to an interface allocates`
}

func sink(any) {}

func spin() {}

//gossip:hotpath
func str(a, b string, bs []byte) string {
	s := a + b      // want `string concatenation allocates`
	s += string(bs) // want `string concatenation allocates` `string<->byte/rune slice conversion allocates`
	return s
}

//gossip:hotpath
func exempt(n int) []int {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic path: formatting is exempt
	}
	fmt.Println(n) // want `call into allocating package fmt`
	//gossip:allowalloc amortized: grows to the high-water mark once
	scratch := make([]int, n)
	return grow(scratch, n)
}

// grow is a blessed amortized slow path: the doc-level opt-out covers the
// whole function when it is reached as a callee.
//
//gossip:allowalloc amortized: rebuilt only when the capacity is exceeded
func grow(v []int, n int) []int {
	if cap(v) < n {
		v = make([]int, n)
	}
	return v[:n]
}

// checked is itself a hot-path root: recursion from other roots stops at
// this boundary, and its own body is verified exactly once.
//
//gossip:hotpath
func checked(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

//gossip:hotpath
func callsChecked(xs []int) int {
	return checked(xs)
}

/* want `gossip:hotpath is not attached to a function declaration` */ //gossip:hotpath
var notAFunc = 3
