// Package annot seeds the annotation parser: every malformed or floating
// directive must be a vet error from exactly one analyzer, never a silent
// no-op that disables the invariant it claims to configure.
package annot

/* want `gossip:hotpath takes no arguments` */ //gossip:hotpath loops only
func argsOnHotpath()                           {}

/* want `gossip:keywriter requires exactly one type name` */ //gossip:keywriter
func missingType() string                                    { return "" }

/* want `gossip:nokey requires a justification` */ //gossip:nokey
func bareNokey()                                   {}

/* want `gossip:allowalloc requires a justification` */ //gossip:allowalloc
func bareAllowalloc()                                   {}

/* want `gossip:deterministic requires a justification` */ //gossip:deterministic
func bareDeterministic()                                   {}

/* want `gossip:allowerror requires a justification` */ //gossip:allowerror
func bareAllowerror()                                   {}

/* want `gossip:allowpanic requires a justification` */ //gossip:allowpanic
func bareAllowpanic()                                   {}

/* want `unknown gossip directive "frobnicate"` */ //gossip:frobnicate yes
func unknownVerb()                                 {}

// A well-formed //gossip: comment with extra spacing stays a directive
// error rather than degrading into prose.

/* want `unknown gossip directive ""` */ //gossip: hotpath
func spacedVerb()                        {}
