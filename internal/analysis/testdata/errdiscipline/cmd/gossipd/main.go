// Command gossipd (fixture): package main is exempt from the no-panic
// rule — a binary's top level may crash on unrecoverable states.
package main

func main() {
	if len("x") != 1 {
		panic("impossible")
	}
}
