// Package systolic loads under the import path repro/systolic, inside
// errdiscipline's typed-error scope: public errors must chain to sentinels.
package systolic

import (
	"errors"
	"fmt"
)

// errBase is the package's sentinel family.
var errBase = errors.New("systolic: base failure")

func typed(n int) error {
	return fmt.Errorf("%w: n=%d", errBase, n)
}

func untyped(n int) error {
	return fmt.Errorf("systolic: bad n=%d", n) // want `untyped error: fmt.Errorf without %w`
}

func nonConstant(format string, n int) error {
	return fmt.Errorf(format, n) // want `fmt.Errorf with a non-constant format`
}

func inline() error {
	return errors.New("systolic: one-off") // want `inline errors.New creates an untyped error`
}

func justified() error {
	//gossip:allowerror boundary translation: the caller wraps immediately
	return errors.New("systolic: deliberate")
}

func guard(n int) {
	if n < 0 {
		panic("systolic: negative n") // want `library packages must not panic`
	}
}

// MustGuard is a must-helper: panicking is its contract.
func MustGuard(n int) {
	if n < 0 {
		panic("systolic: negative n")
	}
}

func init() {
	if len("x") != 1 {
		panic("init-time invariants may panic")
	}
}

// blessed carries a function-level justification covering every guard.
//
//gossip:allowpanic the registry validates inputs before construction
func blessed(n int) {
	if n < 0 {
		panic("negative")
	}
	if n > 1<<20 {
		panic("oversized")
	}
}

func lineBlessed(n int) {
	if n < 0 {
		//gossip:allowpanic documented precondition of the internal contract
		panic("negative")
	}
}
