// Package search computes exact optimal gossip times on small instances by
// exhaustive search over round schedules. It complements the heuristic
// protocols: on instances small enough to search, the paper's lower bounds
// can be compared against the *true* optimum instead of an upper-bound
// heuristic. Both unrestricted (non-systolic) and s-systolic optima are
// supported.
package search

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/gossip"
	"repro/internal/graph"
)

// maxSearchN bounds the instance size: states are n words of n bits and the
// schedule tree is exponential, so exhaustive search is for tiny networks.
const maxSearchN = 8

// Rounds enumerates every maximal-or-smaller activation a search may use in
// one round. For Directed/HalfDuplex these are the matchings of the arc
// set; for FullDuplex, the matchings of the undirected edge set with both
// orientations activated. Only *maximal* matchings are enumerated: adding
// an arc to a round never hurts (knowledge is monotone), so an optimal
// schedule using a non-maximal round also exists with a maximal one.
//
//gossip:allowpanic size guard against exponential search blowup; the public API gates n first
func Rounds(g *graph.Digraph, mode gossip.Mode) [][]graph.Arc {
	if g.N() > maxSearchN {
		panic(fmt.Sprintf("search: instance too large (n=%d > %d)", g.N(), maxSearchN))
	}
	var units [][]graph.Arc // activation units: single arcs or opposite pairs
	switch mode {
	case gossip.FullDuplex:
		for _, e := range g.Edges() {
			units = append(units, []graph.Arc{e, {From: e.To, To: e.From}})
		}
	default:
		for _, a := range g.Arcs() {
			units = append(units, []graph.Arc{a})
		}
	}
	var rounds [][]graph.Arc
	seen := make(map[string]struct{})
	var build func(start int, busy int, cur []graph.Arc)
	build = func(start int, busy int, cur []graph.Arc) {
		extended := false
		for i := start; i < len(units); i++ {
			mask := 0
			ok := true
			for _, a := range units[i] {
				bit := (1 << a.From) | (1 << a.To)
				if busy&bit != 0 {
					ok = false
					break
				}
				mask |= bit
			}
			if !ok {
				continue
			}
			extended = true
			build(i+1, busy|mask, append(cur, units[i]...))
		}
		// Also check whether any earlier unit could extend cur: if none can,
		// cur is maximal.
		if !extended {
			maximal := true
			for i := 0; i < start; i++ {
				ok := true
				for _, a := range units[i] {
					if busy&((1<<a.From)|(1<<a.To)) != 0 {
						ok = false
						break
					}
				}
				if ok {
					maximal = false
					break
				}
			}
			if maximal && len(cur) > 0 {
				key := roundKey(cur)
				if _, dup := seen[key]; !dup {
					seen[key] = struct{}{}
					rounds = append(rounds, append([]graph.Arc(nil), cur...))
				}
			}
		}
	}
	build(0, 0, nil)
	return rounds
}

func roundKey(round []graph.Arc) string {
	arcs := append([]graph.Arc(nil), round...)
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	var sb strings.Builder
	for _, a := range arcs {
		fmt.Fprintf(&sb, "%d>%d;", a.From, a.To)
	}
	return sb.String()
}

// state is the packed knowledge configuration: word v holds the item set of
// processor v in its low n bits.
type state []uint64

func initialState(n int) state {
	s := make(state, n)
	for v := 0; v < n; v++ {
		s[v] = 1 << v
	}
	return s
}

func (s state) complete(n int) bool {
	full := uint64(1)<<n - 1
	for _, w := range s {
		if w != full {
			return false
		}
	}
	return true
}

func (s state) apply(round []graph.Arc) state {
	out := make(state, len(s))
	copy(out, s)
	for _, a := range round {
		out[a.To] |= s[a.From]
	}
	return out
}

func (s state) key() string {
	var sb strings.Builder
	for _, w := range s {
		fmt.Fprintf(&sb, "%x,", w)
	}
	return sb.String()
}

// minRoundsNeeded is the admissible pruning heuristic. Two facts are sound
// (a single receiver can jump straight to n items, so per-vertex doubling is
// NOT sound): the maximum count at most doubles per round (a receiver gains
// at most the sender's count, which is at most the maximum), and the total
// knowledge at most doubles per round (senders in a matching are distinct,
// so the summed gains are at most the current total).
func (s state) minRoundsNeeded(n int) int {
	maxCount, total := 0, 0
	for _, w := range s {
		c := bits.OnesCount64(w)
		total += c
		if c > maxCount {
			maxCount = c
		}
	}
	need1 := 0
	for m := maxCount; m < n; m <<= 1 {
		need1++
	}
	need2 := 0
	for m := total; m < n*n; m <<= 1 {
		need2++
	}
	if need2 > need1 {
		return need2
	}
	return need1
}

// OptimalGossipTime returns the exact minimum number of rounds needed to
// complete gossip on g in the given mode, searched by iterative deepening
// with memoized states, or an error if maxT rounds do not suffice.
func OptimalGossipTime(g *graph.Digraph, mode gossip.Mode, maxT int) (int, error) {
	n := g.N()
	if n <= 1 {
		return 0, nil
	}
	rounds := Rounds(g, mode)
	if len(rounds) == 0 {
		return 0, fmt.Errorf("search: no activations available")
	}
	for T := 1; T <= maxT; T++ {
		visited := make(map[string]int)
		if dfs(initialState(n), n, T, rounds, visited) {
			return T, nil
		}
	}
	return 0, fmt.Errorf("search: gossip needs more than %d rounds", maxT)
}

func dfs(s state, n, remaining int, rounds [][]graph.Arc, visited map[string]int) bool {
	if s.complete(n) {
		return true
	}
	if remaining <= 0 || s.minRoundsNeeded(n) > remaining {
		return false
	}
	k := s.key()
	if best, ok := visited[k]; ok && best >= remaining {
		return false // already failed from this state with ≥ budget
	}
	visited[k] = remaining
	for _, round := range rounds {
		next := s.apply(round)
		if dfs(next, n, remaining-1, rounds, visited) {
			return true
		}
	}
	return false
}

// OptimalSystolicGossipTime returns the exact minimum completion time over
// all s-systolic protocols on g (every choice of s rounds from the round
// catalog, repeated cyclically), up to maxT rounds. The search is
// exponential in s; intended for s ≤ 3 and tiny graphs.
func OptimalSystolicGossipTime(g *graph.Digraph, mode gossip.Mode, s, maxT int) (int, error) {
	n := g.N()
	if n <= 1 {
		return 0, nil
	}
	if s < 1 {
		return 0, fmt.Errorf("search: period must be ≥ 1")
	}
	rounds := Rounds(g, mode)
	best := -1
	idx := make([]int, s)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == s {
			t := simulatePeriodic(g, rounds, idx, maxT)
			if t > 0 && (best < 0 || t < best) {
				best = t
			}
			return
		}
		for i := range rounds {
			idx[pos] = i
			rec(pos + 1)
		}
	}
	rec(0)
	if best < 0 {
		return 0, fmt.Errorf("search: no %d-systolic protocol completes within %d rounds", s, maxT)
	}
	return best, nil
}

func simulatePeriodic(g *graph.Digraph, rounds [][]graph.Arc, idx []int, maxT int) int {
	n := g.N()
	s := initialState(n)
	for t := 0; t < maxT; t++ {
		s = s.apply(rounds[idx[t%len(idx)]])
		if s.complete(n) {
			return t + 1
		}
	}
	return 0
}
