package search

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/gossip"
	"repro/internal/topology"
)

func TestRoundsAreMaximalMatchings(t *testing.T) {
	g := topology.Path(4)
	rounds := Rounds(g, gossip.HalfDuplex)
	if len(rounds) == 0 {
		t.Fatal("no rounds enumerated")
	}
	for _, r := range rounds {
		busy := map[int]bool{}
		for _, a := range r {
			if busy[a.From] || busy[a.To] {
				t.Fatalf("round %v not a matching", r)
			}
			busy[a.From] = true
			busy[a.To] = true
		}
	}
	// P4 arcs: 0-1,1-2,2-3 both directions. Maximal matchings over arcs:
	// {0->1 or 1->0} × {2->3 or 3->2} (4 combos) plus the middle edge alone
	// (2 orientations) = 6.
	if len(rounds) != 6 {
		t.Errorf("P4 half-duplex maximal rounds = %d, want 6", len(rounds))
	}
}

func TestRoundsFullDuplexPairs(t *testing.T) {
	g := topology.Path(3)
	rounds := Rounds(g, gossip.FullDuplex)
	// Edges {0,1},{1,2} share vertex 1: maximal matchings are each single
	// edge → 2 rounds, each with both orientations.
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rounds))
	}
	for _, r := range rounds {
		if len(r) != 2 {
			t.Errorf("full-duplex round %v should hold an opposite pair", r)
		}
	}
}

func TestOptimalGossipP3(t *testing.T) {
	// P3 half-duplex: one active arc per round, optimum is 4 (see the
	// counting argument: after round 2 at most one endpoint is complete).
	g := topology.Path(3)
	got, err := OptimalGossipTime(g, gossip.HalfDuplex, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("optimal gossip on P3 = %d, want 4", got)
	}
}

func TestOptimalGossipK4FullDuplex(t *testing.T) {
	// K4 full-duplex: two disjoint exchanges per round, classical optimum
	// log₂(4) = 2.
	g := topology.Complete(4)
	got, err := OptimalGossipTime(g, gossip.FullDuplex, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("optimal full-duplex gossip on K4 = %d, want 2", got)
	}
}

func TestOptimalGossipC4FullDuplex(t *testing.T) {
	// C4 full-duplex = K4 minus a perfect matching; the two disjoint edge
	// pairs still allow gossip in 2 rounds.
	g := topology.Cycle(4)
	got, err := OptimalGossipTime(g, gossip.FullDuplex, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("optimal full-duplex gossip on C4 = %d, want 2", got)
	}
}

func TestOptimalGossipK4HalfDuplex(t *testing.T) {
	// Half-duplex K4: the 1.4404·log₂(n) bound gives ≥ 2.88 → ≥ 3 rounds.
	g := topology.Complete(4)
	got, err := OptimalGossipTime(g, gossip.HalfDuplex, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got < 3 {
		t.Errorf("optimal half-duplex gossip on K4 = %d, below the 1.44·log n bound", got)
	}
	if got > 4 {
		t.Errorf("optimal half-duplex gossip on K4 = %d, suspiciously high", got)
	}
	t.Logf("exact g(K4) half-duplex = %d (bound: ≥ 3)", got)
}

func TestOptimalRespectsInformationBound(t *testing.T) {
	// Exhaustive optimum can never beat ⌈log₂ n⌉ in any mode.
	for _, n := range []int{4, 5, 6} {
		g := topology.Complete(n)
		got, err := OptimalGossipTime(g, gossip.FullDuplex, 8)
		if err != nil {
			t.Fatal(err)
		}
		lg := 0
		for m := 1; m < n; m <<= 1 {
			lg++
		}
		if got < lg {
			t.Errorf("K%d: optimum %d beats log bound %d", n, got, lg)
		}
	}
}

func TestOptimalSystolicDirectedCycle(t *testing.T) {
	// Directed C4, 2-systolic: the Section 4 remark gives ≥ n−1 = 3 rounds.
	// Exhaustive search shows the true optimum is 4 (after 3 rounds the
	// last item has crossed the cycle but two vertices still miss one item
	// each), so the n−1 bound is sound and off by exactly one here.
	g := topology.DirectedCycle(4)
	got, err := OptimalSystolicGossipTime(g, gossip.Directed, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got < bounds.STwoLowerBound(4) {
		t.Errorf("optimal 2-systolic on directed C4 = %d beats the n−1 bound", got)
	}
	if got != 4 {
		t.Errorf("optimal 2-systolic on directed C4 = %d, exhaustive expectation 4", got)
	}
}

func TestOptimalSystolicNeverBeatsUnrestricted(t *testing.T) {
	g := topology.Path(4)
	free, err := OptimalGossipTime(g, gossip.HalfDuplex, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 3} {
		sys, err := OptimalSystolicGossipTime(g, gossip.HalfDuplex, s, 30)
		if err != nil {
			continue // some periods cannot complete (e.g. one fixed matching)
		}
		if sys < free {
			t.Errorf("s=%d systolic optimum %d beats unrestricted optimum %d", s, sys, free)
		}
	}
}

// TestSystolizationGapExactP4: the exact systolization cost on P4 — the
// unrestricted optimum vs the best s-systolic protocols. This reproduces,
// at toy scale, the phenomenon from [8] the introduction discusses
// (systolic gossip on paths is strictly costlier). Exact facts emerge: no
// 2- or 3-systolic protocol completes at all — the middle arcs 1→2 and 2→1
// only occur in singleton matchings, so covering all 6 arcs (which path
// gossip requires) needs period ≥ 4 — and the best 4-systolic protocol is
// measured against the unrestricted optimum.
func TestSystolizationGapExactP4(t *testing.T) {
	g := topology.Path(4)
	free, err := OptimalGossipTime(g, gossip.HalfDuplex, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 3} {
		if _, err := OptimalSystolicGossipTime(g, gossip.HalfDuplex, s, 30); err == nil {
			t.Errorf("a %d-systolic protocol completed on P4 — impossible, the period cannot cover all arcs", s)
		}
	}
	sys4, err := OptimalSystolicGossipTime(g, gossip.HalfDuplex, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("P4 half-duplex: unrestricted optimum %d, best 4-systolic %d (s ≤ 3 impossible)", free, sys4)
	if sys4 < free {
		t.Errorf("4-systolic optimum %d beats unrestricted %d — impossible", sys4, free)
	}
}

func TestOptimalGossipTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized instance")
		}
	}()
	Rounds(topology.Path(9), gossip.HalfDuplex)
}

func TestOptimalGossipBudgetExceeded(t *testing.T) {
	g := topology.Path(4)
	if _, err := OptimalGossipTime(g, gossip.HalfDuplex, 2); err == nil {
		t.Error("2-round budget should not suffice on P4")
	}
}
