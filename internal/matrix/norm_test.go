package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNorm2Diagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 2}})
	if got := Norm2(m); math.Abs(got-3) > 1e-9 {
		t.Errorf("‖diag(3,2)‖ = %g, want 3", got)
	}
}

func TestNorm2RankOne(t *testing.T) {
	// For a rank-one matrix u·vᵀ the spectral norm is |u|·|v|.
	u := Vector{1, 2, 2}
	v := Vector{3, 4}
	m := NewDense(3, 2)
	for i := range u {
		for j := range v {
			m.Set(i, j, u[i]*v[j])
		}
	}
	want := u.Norm2() * v.Norm2() // 3 * 5
	if got := Norm2(m); math.Abs(got-want) > 1e-9 {
		t.Errorf("rank-one norm = %g, want %g", got, want)
	}
}

func TestNorm2KnownSymmetric(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	if got := Norm2(m); math.Abs(got-3) > 1e-9 {
		t.Errorf("‖[[2,1],[1,2]]‖ = %g, want 3", got)
	}
}

func TestNorm2Zero(t *testing.T) {
	if got := Norm2(NewDense(4, 4)); got != 0 {
		t.Errorf("norm of zero matrix = %g", got)
	}
}

func TestSpectralRadiusKnown(t *testing.T) {
	// ρ of [[0,1],[1,1]] is the golden ratio φ.
	m := FromRows([][]float64{{0, 1}, {1, 1}})
	phi := (1 + math.Sqrt(5)) / 2
	if got := SpectralRadius(m); math.Abs(got-phi) > 1e-9 {
		t.Errorf("ρ = %g, want φ = %g", got, phi)
	}
}

func TestSpectralRadiusDiag(t *testing.T) {
	m := FromRows([][]float64{{0.5, 0}, {0, 0.25}})
	if got := SpectralRadius(m); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ρ = %g, want 0.5", got)
	}
}

// TestNormTriangleInequality checks property 5 of Section 2 on random
// non-negative matrices.
func TestNormTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(rng, 5, 5, true)
		b := randomMatrix(rng, 5, 5, true)
		if Norm2(a.Add(b)) > Norm2(a)+Norm2(b)+1e-9 {
			t.Fatalf("triangle inequality violated on trial %d", trial)
		}
	}
}

// TestNormSubmultiplicative checks property 6: ‖MN‖ ≤ ‖M‖·‖N‖.
func TestNormSubmultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(rng, 4, 6, true)
		b := randomMatrix(rng, 6, 3, true)
		if Norm2(a.Mul(b)) > Norm2(a)*Norm2(b)+1e-9 {
			t.Fatalf("submultiplicativity violated on trial %d", trial)
		}
	}
}

// TestNormMonotone checks property 4: 0 ≤ M ≤ N entrywise ⇒ ‖M‖ ≤ ‖N‖.
func TestNormMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		m := randomMatrix(rng, 5, 5, true)
		n := m.Clone()
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				n.Set(i, j, n.At(i, j)+rng.Float64())
			}
		}
		if Norm2(m) > Norm2(n)+1e-9 {
			t.Fatalf("monotonicity violated on trial %d", trial)
		}
	}
}

// TestNormScaling checks property 3 via testing/quick: ‖aM‖ = |a|·‖M‖.
func TestNormScaling(t *testing.T) {
	base := FromRows([][]float64{{1, 0.5, 0}, {0, 1, 0.25}, {0.75, 0, 1}})
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		return math.Abs(Norm2(base.Scale(a))-math.Abs(a)*Norm2(base)) < 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNormEqualsSqrtGramRadius cross-checks ‖M‖ = √ρ(MᵀM) with the two
// independent implementations.
func TestNormEqualsSqrtGramRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		m := randomMatrix(rng, 6, 4, true)
		n1 := Norm2(m)
		n2 := math.Sqrt(SpectralRadius(m.Gram()))
		if math.Abs(n1-n2) > 1e-7*(1+n1) {
			t.Fatalf("‖M‖=%g but √ρ(MᵀM)=%g", n1, n2)
		}
	}
}

// TestSemiEigenLemma21 checks Lemma 2.1: for non-negative M and strictly
// positive x, ρ(M) ≤ the tightest semi-eigenvalue of x.
func TestSemiEigenLemma21(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 50; trial++ {
		m := randomMatrix(rng, 5, 5, true)
		x := make(Vector, 5)
		for i := range x {
			x[i] = 0.1 + rng.Float64()
		}
		e := SemiEigenvalue(m, x)
		if rho := SpectralRadius(m); rho > e+1e-8 {
			t.Fatalf("Lemma 2.1 violated: ρ=%g > e=%g", rho, e)
		}
		if !IsSemiEigenvector(m, x, e, 1e-12) {
			t.Fatal("SemiEigenvalue did not produce a valid semi-eigenvalue")
		}
		if IsSemiEigenvector(m, x, e*0.9-1e-9, 0) && e > 1e-9 {
			t.Fatal("semi-eigenvalue not tight")
		}
	}
}

// TestBlockDiagNorm checks property 8: block-diagonal norm = max block norm.
func TestBlockDiagNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomMatrix(rng, 3, 2, true)
	b := randomMatrix(rng, 2, 4, true)
	// Assemble the block-diagonal matrix explicitly.
	big := NewDense(5, 6)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			big.Set(i, j, a.At(i, j))
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			big.Set(3+i, 2+j, b.At(i, j))
		}
	}
	want := math.Max(Norm2(a), Norm2(b))
	if got := Norm2(big); math.Abs(got-want) > 1e-8 {
		t.Errorf("block-diag norm = %g, want %g", got, want)
	}
	if got := BlockDiagNorm2([]*Dense{a, b}); math.Abs(got-want) > 1e-8 {
		t.Errorf("BlockDiagNorm2 = %g, want %g", got, want)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4}
	if v.Norm2() != 5 {
		t.Errorf("|v| = %g, want 5", v.Norm2())
	}
	if v.Dot(Vector{1, 1}) != 7 {
		t.Error("dot wrong")
	}
	if v.NormInf() != 4 {
		t.Error("inf norm wrong")
	}
	w := v.Clone()
	if err := w.Normalize(); err != nil || math.Abs(w.Norm2()-1) > 1e-12 {
		t.Error("normalize failed")
	}
	if err := NewVector(3).Normalize(); err == nil {
		t.Error("normalizing zero vector should fail")
	}
	if !Ones(3).IsPositive() || !Ones(3).IsNonNegative() {
		t.Error("ones vector predicates wrong")
	}
	s := v.Add(Vector{1, 2}).Sub(Vector{1, 2})
	if s[0] != 3 || s[1] != 4 {
		t.Error("add/sub wrong")
	}
}
