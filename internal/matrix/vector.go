// Package matrix provides the dense and sparse linear-algebra substrate used
// by the systolic-gossip lower-bound machinery: Euclidean (spectral) matrix
// norms, spectral radii of non-negative matrices, and the semi-eigenvector
// relaxation of Flammini–Pérennès (Definition 2.2 of the paper).
//
// Everything is implemented with the standard library only. Norms and
// spectral radii are computed with power iteration, which converges for the
// non-negative matrices that arise from delay digraphs.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a column vector of float64 components.
type Vector []float64

// NewVector returns a zero vector with n components.
func NewVector(n int) Vector { return make(Vector, n) }

// Ones returns the all-ones vector with n components.
func Ones(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w. It panics if the lengths differ.
//
//gossip:allowpanic shape guard: dimension mismatches are programming errors, not input errors
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: dot of vectors with lengths %d and %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	// Scaled accumulation avoids overflow for very large components.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute component of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every component of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Normalize scales v to unit Euclidean norm in place. It returns an error if
// v is the zero vector.
func (v Vector) Normalize() error {
	n := v.Norm2()
	if n == 0 {
		//gossip:allowalloc cold error branch: only the zero vector allocates
		return errors.New("matrix: cannot normalize zero vector")
	}
	v.Scale(1 / n)
	return nil
}

// Add returns v + w as a new vector.
//
//gossip:allowpanic shape guard: dimension mismatches are programming errors, not input errors
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: add of vectors with lengths %d and %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v − w as a new vector.
//
//gossip:allowpanic shape guard: dimension mismatches are programming errors, not input errors
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: sub of vectors with lengths %d and %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// IsPositive reports whether every component of v is strictly positive.
func (v Vector) IsPositive() bool {
	for _, x := range v {
		if x <= 0 {
			return false
		}
	}
	return true
}

// IsNonNegative reports whether every component of v is ≥ 0.
func (v Vector) IsNonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}
