package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestCSRBasic(t *testing.T) {
	m := NewCSR(3, 3, []Triplet{
		{Row: 0, Col: 1, Val: 2},
		{Row: 2, Col: 0, Val: 5},
		{Row: 1, Col: 1, Val: -1},
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 1) != 2 || m.At(2, 0) != 5 || m.At(1, 1) != -1 || m.At(0, 0) != 0 {
		t.Error("At values wrong")
	}
}

func TestCSRDuplicatesSummed(t *testing.T) {
	m := NewCSR(2, 2, []Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 0, Col: 0, Val: 2.5},
	})
	if m.At(0, 0) != 3.5 || m.NNZ() != 1 {
		t.Errorf("duplicate handling wrong: At=%g NNZ=%d", m.At(0, 0), m.NNZ())
	}
}

func TestCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSR(2, 2, []Triplet{{Row: 2, Col: 0, Val: 1}})
}

func TestCSRMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var ts []Triplet
	for k := 0; k < 40; k++ {
		ts = append(ts, Triplet{Row: rng.Intn(8), Col: rng.Intn(6), Val: rng.Float64()})
	}
	m := NewCSR(8, 6, ts)
	d := m.Dense()
	v := make(Vector, 6)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	got, want := m.MulVec(v), d.MulVec(v)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d]: %g vs %g", i, got[i], want[i])
		}
	}
	w := make(Vector, 8)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	got, want = m.TransposeMulVec(w), d.TransposeMulVec(w)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("TransposeMulVec[%d]: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestCSRNorm2AgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		var ts []Triplet
		for k := 0; k < 25; k++ {
			ts = append(ts, Triplet{Row: rng.Intn(7), Col: rng.Intn(7), Val: rng.Float64()})
		}
		m := NewCSR(7, 7, ts)
		n1, n2 := m.Norm2(), Norm2(m.Dense())
		if math.Abs(n1-n2) > 1e-8*(1+n1) {
			t.Fatalf("sparse norm %g vs dense norm %g", n1, n2)
		}
	}
}

func TestCSREmptyNorm(t *testing.T) {
	if NewCSR(5, 5, nil).Norm2() != 0 {
		t.Error("empty CSR should have norm 0")
	}
}
