package matrix

import (
	"math"
)

// Power-iteration parameters. The matrices arising from delay digraphs are
// non-negative, so power iteration on MᵀM (a non-negative symmetric PSD
// matrix) converges to the dominant eigenvalue; a small identity shift keeps
// convergence safe when the dominant eigenvalue is nearly degenerate.
const (
	defaultMaxIter = 10000
	defaultTol     = 1e-12
)

// Norm2 returns the Euclidean (spectral) matrix norm ‖m‖₂ = √ρ(mᵀm) computed
// by power iteration on the Gram operator. The result is exact in the limit;
// with the default tolerance it is accurate to ≈1e-10 for the well-behaved
// non-negative matrices used in this repository.
func Norm2(m *Dense) float64 {
	var s NormScratch
	return m.Norm2Scratch(&s)
}

// Norm2Scratch computes ‖m‖₂ like Norm2 while drawing every power-iteration
// vector from the scratch — repeated evaluations (the λ loops of the bound
// root finders and the certification pipeline) perform zero steady-state
// allocations. The result is bit-identical to Norm2.
//
//gossip:hotpath
func (m *Dense) Norm2Scratch(s *NormScratch) float64 {
	if m.Rows() == 0 || m.Cols() == 0 {
		return 0
	}
	rho := gramSpectralRadiusScratch(m, m.Rows(), m.Cols(), s)
	return math.Sqrt(rho)
}

// NormScratch holds the three power-iteration vectors of one norm
// computation so callers evaluating many matrices (or one matrix at many λ)
// can reuse them. The zero value is ready to use; buffers grow on demand and
// are kept for the next call. A NormScratch is not safe for concurrent use —
// give each goroutine its own.
type NormScratch struct {
	x, y, t Vector
}

// ensure sizes the buffers for a rows×cols operator and returns them.
func (s *NormScratch) ensure(rows, cols int) (x, y, t Vector) {
	s.x = growVec(s.x, cols)
	s.y = growVec(s.y, cols)
	s.t = growVec(s.t, rows)
	return s.x, s.y, s.t
}

func growVec(v Vector, n int) Vector {
	if cap(v) < n {
		//gossip:allowalloc amortized: scratch grows to the high-water mark once and is reused
		return make(Vector, n)
	}
	return v[:n]
}

// vecMulOps is the pair of matrix-vector products power iteration needs;
// *Dense and *CSR both implement it, so one routine serves both without
// allocating method-value closures.
type vecMulOps interface {
	MulVecTo(dst, v Vector) Vector
	TransposeMulVecTo(dst, v Vector) Vector
}

// gramSpectralRadiusScratch runs power iteration on x ↦ Mᵀ(Mx) using only
// the two matrix-vector products, drawing every vector from the scratch.
// The arithmetic is identical to the historical allocating implementation,
// so results are bit-for-bit unchanged.
func gramSpectralRadiusScratch(m vecMulOps, rows, cols int, s *NormScratch) float64 {
	if cols == 0 {
		return 0
	}
	x, y, t := s.ensure(rows, cols)
	// Deterministic, strictly positive start vector: guaranteed not to be
	// orthogonal to the Perron vector of a non-negative operator.
	for i := range x {
		x[i] = 1 + float64(i%7)/8
	}
	if err := x.Normalize(); err != nil {
		return 0
	}
	var prev float64 = -1
	for iter := 0; iter < defaultMaxIter; iter++ {
		m.MulVecTo(t, x)
		m.TransposeMulVecTo(y, t)
		lambda := x.Dot(y) // Rayleigh quotient estimate of ρ(MᵀM)
		ny := y.Norm2()
		if ny == 0 {
			return 0
		}
		y.Scale(1 / ny)
		x, y = y, x
		if prev >= 0 && math.Abs(lambda-prev) <= defaultTol*(1+math.Abs(lambda)) {
			return lambda
		}
		prev = lambda
	}
	return prev
}

// SpectralRadius returns ρ(m) for a square non-negative matrix m, computed by
// power iteration with an identity shift (ρ(m+I) = ρ(m)+1 for non-negative m,
// and the shift makes the dominant eigenvalue simple and positive).
//
// It panics if m is not square; callers must pass non-negative matrices.
//
//gossip:allowpanic shape guard: dimension mismatches are programming errors, not input errors
func SpectralRadius(m *Dense) float64 {
	n := m.Rows()
	if n != m.Cols() {
		panic("matrix: SpectralRadius of non-square matrix")
	}
	if n == 0 {
		return 0
	}
	x := make(Vector, n)
	for i := range x {
		x[i] = 1 + float64(i%5)/8
	}
	_ = x.Normalize()
	var prev float64 = -1
	for iter := 0; iter < defaultMaxIter; iter++ {
		y := m.MulVec(x)
		for i := range y {
			y[i] += x[i] // shift by identity
		}
		lambda := x.Dot(y)
		ny := y.Norm2()
		if ny == 0 {
			return 0
		}
		y.Scale(1 / ny)
		x = y
		if prev >= 0 && math.Abs(lambda-prev) <= defaultTol*(1+math.Abs(lambda)) {
			return lambda - 1
		}
		prev = lambda
	}
	return prev - 1
}

// SemiEigenvalue returns the smallest e such that m·x ≤ e·x holds
// componentwise, i.e. the tightest semi-eigenvalue of the strictly positive
// semi-eigenvector x for m (Definition 2.2). By Lemma 2.1, ρ(m) ≤ e for any
// non-negative m and strictly positive x.
//
// It panics if x has a non-positive component or the shapes mismatch.
//
//gossip:allowpanic shape guard: dimension mismatches are programming errors, not input errors
func SemiEigenvalue(m *Dense, x Vector) float64 {
	if m.Rows() != m.Cols() || m.Cols() != len(x) {
		panic("matrix: SemiEigenvalue shape mismatch")
	}
	if !x.IsPositive() {
		panic("matrix: SemiEigenvalue requires a strictly positive vector")
	}
	y := m.MulVec(x)
	var e float64
	for i := range y {
		if r := y[i] / x[i]; r > e {
			e = r
		}
	}
	return e
}

// IsSemiEigenvector reports whether m·x ≤ e·x componentwise within tol
// (Definition 2.2 of the paper).
func IsSemiEigenvector(m *Dense, x Vector, e, tol float64) bool {
	y := m.MulVec(x)
	for i := range y {
		if y[i] > e*x[i]+tol {
			return false
		}
	}
	return true
}

// BlockDiagNorm2 returns max over the blocks of ‖block‖₂; by norm property 8
// of Section 2 this equals the norm of the block-diagonal matrix assembled
// from the blocks.
func BlockDiagNorm2(blocks []*Dense) float64 {
	var s NormScratch
	return BlockDiagNorm2Scratch(blocks, &s)
}

// BlockDiagNorm2Scratch is BlockDiagNorm2 with every block's power iteration
// drawing from one reusable scratch; repeated evaluations over a fixed block
// structure perform zero steady-state allocations.
//
//gossip:hotpath
func BlockDiagNorm2Scratch(blocks []*Dense, s *NormScratch) float64 {
	var max float64
	for _, b := range blocks {
		if n := b.Norm2Scratch(s); n > max {
			max = n
		}
	}
	return max
}
