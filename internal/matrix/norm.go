package matrix

import (
	"math"
)

// Power-iteration parameters. The matrices arising from delay digraphs are
// non-negative, so power iteration on MᵀM (a non-negative symmetric PSD
// matrix) converges to the dominant eigenvalue; a small identity shift keeps
// convergence safe when the dominant eigenvalue is nearly degenerate.
const (
	defaultMaxIter = 10000
	defaultTol     = 1e-12
)

// Norm2 returns the Euclidean (spectral) matrix norm ‖m‖₂ = √ρ(mᵀm) computed
// by power iteration on the Gram operator. The result is exact in the limit;
// with the default tolerance it is accurate to ≈1e-10 for the well-behaved
// non-negative matrices used in this repository.
func Norm2(m *Dense) float64 {
	if m.Rows() == 0 || m.Cols() == 0 {
		return 0
	}
	rho := gramSpectralRadius(m.MulVec, m.TransposeMulVec, m.Cols())
	return math.Sqrt(rho)
}

// gramSpectralRadius runs power iteration on x ↦ Mᵀ(Mx) using only the two
// matrix-vector products, so the same routine serves Dense and CSR matrices.
func gramSpectralRadius(mul, tmul func(Vector) Vector, n int) float64 {
	if n == 0 {
		return 0
	}
	// Deterministic, strictly positive start vector: guaranteed not to be
	// orthogonal to the Perron vector of a non-negative operator.
	x := make(Vector, n)
	for i := range x {
		x[i] = 1 + float64(i%7)/8
	}
	if err := x.Normalize(); err != nil {
		return 0
	}
	var prev float64 = -1
	for iter := 0; iter < defaultMaxIter; iter++ {
		y := tmul(mul(x))
		lambda := x.Dot(y) // Rayleigh quotient estimate of ρ(MᵀM)
		ny := y.Norm2()
		if ny == 0 {
			return 0
		}
		y.Scale(1 / ny)
		x = y
		if prev >= 0 && math.Abs(lambda-prev) <= defaultTol*(1+math.Abs(lambda)) {
			return lambda
		}
		prev = lambda
	}
	return prev
}

// SpectralRadius returns ρ(m) for a square non-negative matrix m, computed by
// power iteration with an identity shift (ρ(m+I) = ρ(m)+1 for non-negative m,
// and the shift makes the dominant eigenvalue simple and positive).
//
// It panics if m is not square; callers must pass non-negative matrices.
func SpectralRadius(m *Dense) float64 {
	n := m.Rows()
	if n != m.Cols() {
		panic("matrix: SpectralRadius of non-square matrix")
	}
	if n == 0 {
		return 0
	}
	x := make(Vector, n)
	for i := range x {
		x[i] = 1 + float64(i%5)/8
	}
	_ = x.Normalize()
	var prev float64 = -1
	for iter := 0; iter < defaultMaxIter; iter++ {
		y := m.MulVec(x)
		for i := range y {
			y[i] += x[i] // shift by identity
		}
		lambda := x.Dot(y)
		ny := y.Norm2()
		if ny == 0 {
			return 0
		}
		y.Scale(1 / ny)
		x = y
		if prev >= 0 && math.Abs(lambda-prev) <= defaultTol*(1+math.Abs(lambda)) {
			return lambda - 1
		}
		prev = lambda
	}
	return prev - 1
}

// SemiEigenvalue returns the smallest e such that m·x ≤ e·x holds
// componentwise, i.e. the tightest semi-eigenvalue of the strictly positive
// semi-eigenvector x for m (Definition 2.2). By Lemma 2.1, ρ(m) ≤ e for any
// non-negative m and strictly positive x.
//
// It panics if x has a non-positive component or the shapes mismatch.
func SemiEigenvalue(m *Dense, x Vector) float64 {
	if m.Rows() != m.Cols() || m.Cols() != len(x) {
		panic("matrix: SemiEigenvalue shape mismatch")
	}
	if !x.IsPositive() {
		panic("matrix: SemiEigenvalue requires a strictly positive vector")
	}
	y := m.MulVec(x)
	var e float64
	for i := range y {
		if r := y[i] / x[i]; r > e {
			e = r
		}
	}
	return e
}

// IsSemiEigenvector reports whether m·x ≤ e·x componentwise within tol
// (Definition 2.2 of the paper).
func IsSemiEigenvector(m *Dense, x Vector, e, tol float64) bool {
	y := m.MulVec(x)
	for i := range y {
		if y[i] > e*x[i]+tol {
			return false
		}
	}
	return true
}

// BlockDiagNorm2 returns max over the blocks of ‖block‖₂; by norm property 8
// of Section 2 this equals the norm of the block-diagonal matrix assembled
// from the blocks.
func BlockDiagNorm2(blocks []*Dense) float64 {
	var max float64
	for _, b := range blocks {
		if n := Norm2(b); n > max {
			max = n
		}
	}
	return max
}
