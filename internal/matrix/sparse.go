package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Triplet is a single (row, col, value) entry used to assemble a CSR matrix.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a sparse matrix in compressed-sparse-row format. Delay matrices of
// large protocols have Θ(s) entries per row, so CSR keeps the norm
// computation linear in the number of activations.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewCSR assembles a rows×cols CSR matrix from triplets. Duplicate (row,col)
// entries are summed. The input slice is sorted in place.
func NewCSR(rows, cols int, ts []Triplet) *CSR {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("matrix: triplet (%d,%d) out of range %dx%d", t.Row, t.Col, rows, cols))
		}
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Row != ts[j].Row {
			return ts[i].Row < ts[j].Row
		}
		return ts[i].Col < ts[j].Col
	})
	m := &CSR{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int, rows+1),
	}
	for i := 0; i < len(ts); {
		j := i
		v := 0.0
		for j < len(ts) && ts[j].Row == ts[i].Row && ts[j].Col == ts[i].Col {
			v += ts[j].Val
			j++
		}
		m.colIdx = append(m.colIdx, ts[i].Col)
		m.vals = append(m.vals, v)
		m.rowPtr[ts[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the entry at (i, j); absent entries are 0.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// MulVec returns m·v.
func (m *CSR) MulVec(v Vector) Vector {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: %dx%d CSR times vector of length %d", m.rows, m.cols, len(v)))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * v[m.colIdx[k]]
		}
		out[i] = s
	}
	return out
}

// TransposeMulVec returns mᵀ·v.
func (m *CSR) TransposeMulVec(v Vector) Vector {
	if len(v) != m.rows {
		panic(fmt.Sprintf("matrix: %dx%d CSR transpose times vector of length %d", m.rows, m.cols, len(v)))
	}
	out := make(Vector, m.cols)
	for i := 0; i < m.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[m.colIdx[k]] += m.vals[k] * vi
		}
	}
	return out
}

// Norm2 returns ‖m‖₂ = √ρ(mᵀm) via power iteration using only sparse
// matrix-vector products.
func (m *CSR) Norm2() float64 {
	if m.rows == 0 || m.cols == 0 || m.NNZ() == 0 {
		return 0
	}
	rho := gramSpectralRadius(m.MulVec, m.TransposeMulVec, m.cols)
	if rho < 0 {
		return 0
	}
	return math.Sqrt(rho)
}

// Dense converts m to a dense matrix (intended for small matrices in tests).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}
